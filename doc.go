// Package falvolt is a from-scratch Go reproduction of "Improving
// Reliability of Spiking Neural Networks through Fault Aware Threshold
// Voltage Optimization" (Siddique & Hoque, DATE 2023).
//
// The library spans the full stack the paper depends on: a fixed-point
// systolic-array SNN accelerator simulator with stuck-at fault injection
// and bypass (internal/systolic, internal/fixed, internal/faults), a
// surrogate-gradient PLIF-SNN training framework (internal/snn,
// internal/tensor), fault-to-weight mapping (internal/mapping), synthetic
// stand-ins for MNIST / N-MNIST / DVS Gesture (internal/datasets), the
// FalVolt mitigation algorithm with its FaP and FaPIT baselines
// (internal/core), per-figure experiment harnesses
// (internal/experiments), a sharded fault-sweep campaign engine with
// deterministic resume and bit-reproducible merging (internal/campaign),
// a distributed campaign cluster — HTTP coordinator, leased shards,
// worker daemons — that runs any campaign across machines with
// byte-identical output (internal/cluster), and a declarative
// experiment-spec layer (internal/spec): one versioned, JSON-serializable
// Spec describes any run, a registry builds the campaign from it in one
// place per kind, every cmd tool compiles its flags to a Spec
// (-spec / -dump-spec round-trip), and cluster coordinators ship the
// canonical Spec to spec-free workers at registration. See README.md
// and DESIGN.md.
//
// All heavy math runs on a pluggable compute engine
// (internal/tensor.Backend) with serial and multi-core worker-pool
// implementations that are bit-identical; every cmd tool selects one via
// -backend or the FALVOLT_BACKEND environment variable.
package falvolt
