package spec

import (
	"sort"
	"testing"
)

func TestMitigationKindsSorted(t *testing.T) {
	kinds := MitigationKinds()
	if !sort.StringsAreSorted(kinds) {
		t.Fatalf("MitigationKinds() = %v not sorted", kinds)
	}
	if len(kinds) < 4 {
		t.Fatalf("only %d mitigation kinds — the zoo needs at least 4", len(kinds))
	}
}

func TestMitigationSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		m    MitigationSpec
		ok   bool
	}{
		{"empty defaults to falvolt", MitigationSpec{}, true},
		{"falvolt with budget", MitigationSpec{Kind: "falvolt", Epochs: 5, LR: 0.02}, true},
		{"fapit with vth", MitigationSpec{Kind: "fapit", Epochs: 3, Vth: 0.5}, true},
		{"rescuesnn with bypass bit", MitigationSpec{Kind: "rescuesnn", BypassBit: 20}, true},
		{"plain zero-retraining kinds", MitigationSpec{Kind: "respawn"}, true},
		{"unknown kind", MitigationSpec{Kind: "lobotomy"}, false},
		{"negative epochs", MitigationSpec{Kind: "falvolt", Epochs: -1}, false},
		{"negative lr", MitigationSpec{Kind: "falvolt", LR: -0.1}, false},
		{"negative vth", MitigationSpec{Kind: "fapit", Vth: -1}, false},
		{"bypass bit out of range", MitigationSpec{Kind: "rescuesnn", BypassBit: 32}, false},
		{"epochs on non-retraining kind", MitigationSpec{Kind: "fap", Epochs: 2}, false},
		{"lr on non-retraining kind", MitigationSpec{Kind: "softsnn", LR: 0.1}, false},
		{"vth on non-fapit kind", MitigationSpec{Kind: "falvolt", Vth: 0.5}, false},
		{"bypass bit on non-rescuesnn kind", MitigationSpec{Kind: "respawn", BypassBit: 8}, false},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	if got := (MitigationSpec{}).EffectiveKind(); got != "falvolt" {
		t.Errorf("EffectiveKind() = %q, want falvolt", got)
	}
}

func TestSalvageCampaignSpecValidate(t *testing.T) {
	if err := (SalvageCampaignSpec{}).Validate(); err != nil {
		t.Fatalf("zero spec must validate via defaults: %v", err)
	}
	d := SalvageCampaignSpec{}.Defaulted()
	if len(d.Models) == 0 || len(d.Mitigations) == 0 || len(d.Rates) == 0 {
		t.Fatalf("defaults left an axis empty: %+v", d)
	}
	if d.Repeats != 2 || d.Array != 16 || d.BaseEpochs != 2 || d.Epochs != 2 || d.Batch != 32 {
		t.Fatalf("unexpected defaults: %+v", d)
	}

	cases := []struct {
		name string
		s    SalvageCampaignSpec
		ok   bool
	}{
		{"explicit valid", SalvageCampaignSpec{
			Models:      []string{"stuckat", "transient"},
			Mitigations: []MitigationSpec{{Kind: "fap"}, {Kind: "falvolt", Epochs: 1}},
			Rates:       []float64{0.05},
			Repeats:     1, Array: 8,
		}, true},
		{"unknown fault model", SalvageCampaignSpec{Models: []string{"gamma-ray"}}, false},
		{"bad mitigation", SalvageCampaignSpec{Mitigations: []MitigationSpec{{Kind: "nosuch"}}}, false},
		{"rate above 1", SalvageCampaignSpec{Rates: []float64{1.5}}, false},
		{"negative rate", SalvageCampaignSpec{Rates: []float64{-0.1}}, false},
		{"negative repeats", SalvageCampaignSpec{Repeats: -1}, false},
		{"array too small", SalvageCampaignSpec{Array: 1}, false},
		{"array too large", SalvageCampaignSpec{Array: 512}, false},
		{"negative epochs", SalvageCampaignSpec{Epochs: -1}, false},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestSiteSweepSpecValidate(t *testing.T) {
	if err := (SiteSweepSpec{}).Validate(); err != nil {
		t.Fatalf("zero spec must validate via defaults: %v", err)
	}
	d := SiteSweepSpec{}.Defaulted()
	if d.Array != 8 || d.Pols != "both" || d.Batch != 4 || d.Timesteps != 2 || d.Density != 0.3 {
		t.Fatalf("unexpected defaults: %+v", d)
	}

	cases := []struct {
		name string
		s    SiteSweepSpec
		ok   bool
	}{
		{"explicit valid", SiteSweepSpec{Array: 4, Bits: []uint{0, 15, 31}, Pols: "sa1", Sample: 12}, true},
		{"bit out of range", SiteSweepSpec{Bits: []uint{32}}, false},
		{"unknown polarity", SiteSweepSpec{Pols: "sa2"}, false},
		{"negative sample", SiteSweepSpec{Sample: -1}, false},
		{"array too small", SiteSweepSpec{Array: 1}, false},
		{"density above 1", SiteSweepSpec{Density: 1.5}, false},
		{"negative density", SiteSweepSpec{Density: -0.2}, false},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// TestSalvageSpecRoundTrip pins canonicalization: a salvage spec decodes,
// canonicalizes and fingerprints stably, and defaults spelled out
// explicitly fingerprint differently from an omitted field (literal
// semantics).
func TestSalvageSpecRoundTrip(t *testing.T) {
	raw := []byte(`{
  "version": 1,
  "kind": "salvage",
  "seed": 42,
  "salvage": {
    "models": ["stuckat"],
    "mitigations": [{"kind": "fap"}, {"kind": "falvolt", "epochs": 2}],
    "rates": [0.1],
    "repeats": 1,
    "array": 8
  }
}`)
	s, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	fp1, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := s2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint unstable: %s vs %s", fp1, fp2)
	}
	// Spelling out a default changes the canonical bytes.
	s3, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	s3.Salvage.Batch = 32
	fp3, err := s3.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("explicit default should fingerprint differently (literal spec semantics)")
	}
}

func TestSiteSweepSpecRoundTrip(t *testing.T) {
	raw := []byte(`{
  "version": 1,
  "kind": "sitesweep",
  "seed": 7,
  "siteSweep": {"array": 4, "bits": [0, 31], "pols": "both"}
}`)
	s, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.SiteSweep == nil {
		t.Fatal("siteSweep section did not decode")
	}
	if len(s.SiteSweep.Bits) != 2 {
		t.Fatalf("bits = %v", s.SiteSweep.Bits)
	}
}
