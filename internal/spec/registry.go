package spec

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"falvolt/internal/campaign"
)

// The registry maps spec kinds to builders, so "spec -> runnable
// campaign" construction exists in exactly one place per kind. Packages
// that own a campaign register it from init: experiments registers the
// figure sweeps, core registers "yield", this package registers
// "selftest". Any binary that links the owning package can build the
// kind — locally, at a coordinator, or at a spec-free cluster worker.

// BuildOpts carries the execution-local resources a builder may use.
// Nothing here affects results: two builds of the same canonical spec
// with different opts produce campaigns with identical trials, results
// and metadata.
type BuildOpts struct {
	// CacheDir persists trained baselines between runs ("" disables).
	CacheDir string
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// Built is a campaign constructed from a Spec, plus its output
// renderers. Build fills nil renderers with canonical-result-JSON
// fallbacks, so callers can use them unconditionally.
type Built struct {
	// Campaign is the runnable campaign. Its checkpoint metadata
	// includes the canonical spec under the "spec" key, so any merged
	// checkpoint can be re-rendered by Build alone.
	Campaign campaign.Campaign
	// Render writes the kind's human-readable report (figures, yield
	// report) for a complete merged result set.
	Render func(w io.Writer, results []campaign.Result) error
	// JSON returns the kind's structured artifact (figures, yield
	// report) for -json outputs.
	JSON func(results []campaign.Result) (any, error)
}

// Builder constructs a campaign (and its renderers) from a validated
// spec of the registered kind.
type Builder func(s *Spec, opt BuildOpts) (*Built, error)

var (
	regMu    sync.Mutex
	registry = map[string]Builder{}
)

// Register binds a kind to its builder. It panics on a duplicate or
// empty kind: registration happens from package init, so a collision is
// a programming error, not a runtime condition.
func Register(kind string, b Builder) {
	if kind == "" || b == nil {
		panic("spec: Register needs a kind and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("spec: kind %q registered twice", kind))
	}
	registry[kind] = b
}

// Kinds lists the registered campaign kinds, sorted.
func Kinds() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// specMetaCampaign augments a built campaign's checkpoint metadata with
// the canonical spec, so every checkpoint header written through Build
// records the exact experiment it belongs to — resume/merge
// compatibility compares it, and `campaign merge` rebuilds the
// renderers from it without any matching flags.
type specMetaCampaign struct {
	campaign.Campaign
	meta map[string]string
}

// Meta implements campaign.MetaProvider.
func (c specMetaCampaign) Meta() map[string]string { return c.meta }

// Build validates the spec, dispatches to the kind's registered
// builder, embeds the canonical spec into the campaign's metadata, and
// fills renderer fallbacks. It is the single construction path shared
// by every cmd tool, coordinator and cluster worker.
func Build(s *Spec, opt BuildOpts) (*Built, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	regMu.Lock()
	b, ok := registry[s.Kind]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("spec: unknown kind %q (registered: %s)", s.Kind, strings.Join(Kinds(), " "))
	}
	built, err := b(s, opt)
	if err != nil {
		return nil, err
	}
	canonical, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	meta := map[string]string{"spec": string(canonical)}
	if mp, ok := built.Campaign.(campaign.MetaProvider); ok {
		for k, v := range mp.Meta() {
			meta[k] = v
		}
		meta["spec"] = string(canonical)
	}
	built.Campaign = specMetaCampaign{Campaign: built.Campaign, meta: meta}
	if built.Render == nil {
		built.Render = func(w io.Writer, results []campaign.Result) error {
			b, err := campaign.MarshalResults(results)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, string(b))
			return err
		}
	}
	if built.JSON == nil {
		built.JSON = func(results []campaign.Result) (any, error) {
			return campaign.SortedResults(results), nil
		}
	}
	return built, nil
}

// FromMeta rebuilds a campaign's spec from checkpoint-header metadata
// (the "spec" key Build embeds). It is how `campaign merge` recovers
// renderers from shard files alone.
func FromMeta(meta map[string]string) (*Spec, error) {
	raw, ok := meta["spec"]
	if !ok || raw == "" {
		return nil, fmt.Errorf("spec: checkpoint metadata carries no spec (written by a pre-spec build?)")
	}
	return Decode([]byte(raw))
}

func init() {
	Register("selftest", func(s *Spec, opt BuildOpts) (*Built, error) {
		n, delay := 24, 0
		if s.Selftest != nil {
			if s.Selftest.Trials > 0 {
				n = s.Selftest.Trials
			}
			if s.Selftest.DelayMillis < 0 {
				return nil, fmt.Errorf("spec: selftest delayMillis must be >= 0, got %d", s.Selftest.DelayMillis)
			}
			delay = s.Selftest.DelayMillis
		}
		return &Built{Campaign: campaign.SyntheticWithDelay(n, s.EffectiveSeed(), delay)}, nil
	})
}
