package spec_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"

	// Register every campaign kind, exactly as the cmd tools do.
	_ "falvolt/internal/core"
	_ "falvolt/internal/experiments"
)

// Golden-file tests for the spec JSON schema: spec files are the
// durable, hand-editable description of a run (checked into CI scripts,
// submitted to coordinators), so schema drift must break CI instead of
// them. Regenerate with
//
//	go test ./internal/spec/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// representative returns one fully populated example spec per kind —
// the shape the cmd tools compile from their default-ish flags.
func representative() map[string]*spec.Spec {
	suite := func(kind string) *spec.Spec {
		return &spec.Spec{
			Version: spec.Version, Kind: kind, Seed: 7,
			Suite: &spec.SuiteSpec{
				Quick: true, Array: 64, Epochs: 6, Repeats: 3, Eval: 64,
				Training: &spec.TrainSpec{Replicas: 2, MicroBatch: 8},
			},
		}
	}
	out := map[string]*spec.Spec{
		"fig2": suite("fig2"), "fig5a": suite("fig5a"), "fig5b": suite("fig5b"),
		"fig5c": suite("fig5c"), "mitigation": suite("mitigation"),
		"yield": {
			Version: spec.Version, Kind: "yield", Seed: 7,
			Yield: &spec.YieldSpec{
				Chips: 12, MeanFaulty: 60, Alpha: 1.0, Clustered: true,
				Threshold: 0.85, Method: "falvolt", MitEpochs: 4, BaseEpochs: 12,
				Array: 64,
			},
		},
		"selftest": {
			Version: spec.Version, Kind: "selftest", Seed: 7,
			Name:     "smoke-sweep",
			Labels:   map[string]string{"team": "reliability", "tier": "smoke"},
			Selftest: &spec.SelftestSpec{Trials: 24},
		},
		"falvolt": {
			Version: spec.Version, Kind: "falvolt", Seed: 7,
			Pipeline: &spec.PipelineSpec{
				Dataset: "mnist", Rate: 0.3, Method: "falvolt", Array: 64,
				BaseEpochs: 12, Epochs: 8, Train: 320, Test: 128, Quick: true,
			},
		},
		"faultsim": {
			Version: spec.Version, Kind: "faultsim", Seed: 7,
			FaultSim: &spec.FaultSimSpec{
				Dataset: "mnist", Sweep: "bits", Array: 64, Faults: 16,
				Repeats: 3, BaseEpochs: 12, Train: 320, Test: 128,
				Training: &spec.TrainSpec{Batch: 16, LR: 0.02, Loss: "mse", Replicas: 2, MicroBatch: 8},
			},
		},
		"faultmodel": {
			Version: spec.Version, Kind: "faultmodel", Seed: 7,
			FaultModel: &spec.FaultModelCampaignSpec{
				Model: spec.FaultModelSpec{Kind: "bitflip", Profile: "decay"},
				Array: 16, Rates: []float64{0.01, 0.05, 0.2}, Repeats: 2,
				Batch: 4, Timesteps: 3, Density: 0.3,
			},
		},
		"salvage": {
			Version: spec.Version, Kind: "salvage", Seed: 7,
			Salvage: &spec.SalvageCampaignSpec{
				Models: []string{"stuckat", "transient"},
				Mitigations: []spec.MitigationSpec{
					{Kind: "falvolt", Training: &spec.TrainSpec{Epochs: 2, Replicas: 2}}, {Kind: "respawn"},
					{Kind: "rescuesnn", BypassBit: 20}, {Kind: "softsnn"},
				},
				Rates: []float64{0.05, 0.1}, Repeats: 2, Array: 16,
				BaseEpochs: 2, Epochs: 2, Batch: 32,
			},
		},
		"sitesweep": {
			Version: spec.Version, Kind: "sitesweep", Seed: 7,
			SiteSweep: &spec.SiteSweepSpec{
				Array: 8, Bits: []uint{0, 16, 31}, Pols: "both",
				Sample: 48, Batch: 4, Timesteps: 2, Density: 0.3,
			},
		},
	}
	return out
}

// TestGoldenSpecs pins the encoded JSON of every kind's representative
// spec, and asserts the encode -> decode -> encode round trip is
// byte-identical.
func TestGoldenSpecs(t *testing.T) {
	for kind, s := range representative() {
		t.Run(kind, func(t *testing.T) {
			enc, err := s.Encode()
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", kind+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(enc, want) {
				t.Errorf("spec JSON drifted from golden schema:\n--- got ---\n%s--- want ---\n%s", enc, want)
			}
			// encode -> decode -> encode byte identity.
			dec, err := spec.Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			re, err := dec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, re) {
				t.Errorf("encode->decode->encode not byte-identical:\n--- first ---\n%s--- second ---\n%s", enc, re)
			}
		})
	}
}

// TestFingerprintStability: the fingerprint is a function of the
// experiment, not of JSON formatting, field order, or execution
// placement (backend/shard).
func TestFingerprintStability(t *testing.T) {
	s := representative()["yield"]
	want, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Same fields, different textual order and formatting.
	reordered := `{
		"yield": {"array": 64, "baseEpochs": 12, "mitEpochs": 4,
		          "method": "falvolt", "threshold": 0.85, "clustered": true,
		          "alpha": 1.0, "meanFaulty": 60, "chips": 12},
		"seed": 7, "kind": "yield", "version": 1}`
	r, err := spec.Decode([]byte(reordered))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Fingerprint(); got != want {
		t.Fatalf("fingerprint changed under field reordering: %s vs %s", got, want)
	}

	// Execution placement must not perturb identity.
	placed := *s
	placed.Backend, placed.Shard = "parallel:4", "1/2"
	placed.Planner = "balance:timing.jsonl"
	if got, _ := placed.Fingerprint(); got != want {
		t.Fatal("backend/shard/planner leaked into the fingerprint")
	}

	// Catalog identity (name, labels) must not perturb identity either:
	// two submissions of one experiment under different names merge.
	named := *s
	named.Name = "overnight-yield-a"
	named.Labels = map[string]string{"team": "reliability", "ticket": "FV-812"}
	if got, _ := named.Fingerprint(); got != want {
		t.Fatal("name/labels leaked into the fingerprint")
	}

	// A genuinely different experiment must fingerprint differently.
	changed := *s
	y := *s.Yield
	y.Chips = 13
	changed.Yield = &y
	if got, _ := changed.Fingerprint(); got == want {
		t.Fatal("different experiments share a fingerprint")
	}
}

// TestDecodeRejections: unsupported versions, unknown kinds, unknown
// fields, missing kinds and trailing garbage all fail loudly.
func TestDecodeRejections(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"future version", `{"version": 99, "kind": "selftest"}`, "version 99 unsupported"},
		{"zero version", `{"kind": "selftest"}`, "version 0 unsupported"},
		{"missing kind", `{"version": 1}`, "missing kind"},
		{"unknown field", `{"version": 1, "kind": "selftest", "trails": 5}`, "unknown field"},
		{"bad shard", `{"version": 1, "kind": "selftest", "shard": "2"}`, "shard"},
		{"bad planner", `{"version": 1, "kind": "selftest", "planner": "fastest"}`, "unknown planner"},
		{"balance without source", `{"version": 1, "kind": "selftest", "planner": "balance:"}`, "unknown planner"},
		{"trailing garbage", `{"version": 1, "kind": "selftest"} {"again": true}`, "trailing data"},
		{"name with newline", `{"version": 1, "kind": "selftest", "name": "a\nb"}`, "control character"},
		{"overlong name", fmt.Sprintf(`{"version": 1, "kind": "selftest", "name": %q}`, strings.Repeat("x", 200)), "longer than"},
		{"empty label key", `{"version": 1, "kind": "selftest", "labels": {"": "v"}}`, "empty label key"},
		{"label value with control char", `{"version": 1, "kind": "selftest", "labels": {"k": "a\tb"}}`, "control character"},
		{"section/kind mismatch", `{"version": 1, "kind": "selftest", "yield": {"chips": 3}}`, "does not use the yield section"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := spec.Decode([]byte(tc.json))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Decode(%s) err = %v, want substring %q", tc.json, err, tc.wantErr)
			}
		})
	}

	// Unknown kind passes Decode (the envelope is fine) but must be
	// rejected by Build, which owns the registry.
	s, err := spec.Decode([]byte(`{"version": 1, "kind": "martian"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(s, spec.BuildOpts{}); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("Build of unknown kind: err = %v, want unknown kind", err)
	}
}

// TestEveryKindConstructible: each registered campaign kind builds from
// its representative spec via the registry, enumerates a dense
// non-empty trial list without touching expensive resources, and
// carries the canonical spec in its checkpoint metadata.
func TestEveryKindConstructible(t *testing.T) {
	reps := representative()
	kinds := spec.Kinds()
	if len(kinds) < 7 {
		t.Fatalf("expected at least 7 registered kinds, got %v", kinds)
	}
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			s, ok := reps[kind]
			if !ok {
				t.Fatalf("no representative spec for registered kind %q — add one", kind)
			}
			built, err := spec.Build(s, spec.BuildOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if built.Render == nil || built.JSON == nil {
				t.Fatal("Build left a renderer nil")
			}
			trials, err := built.Campaign.Trials()
			if err != nil {
				t.Fatal(err)
			}
			if len(trials) == 0 {
				t.Fatal("campaign enumerates no trials")
			}
			for i, tr := range trials {
				if tr.ID != i {
					t.Fatalf("trial %d has id %d (ids must be dense)", i, tr.ID)
				}
			}
			mp, ok := built.Campaign.(campaign.MetaProvider)
			if !ok {
				t.Fatal("built campaign carries no metadata")
			}
			canonical, err := s.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if mp.Meta()["spec"] != string(canonical) {
				t.Fatalf("campaign metadata spec = %q, want canonical %q", mp.Meta()["spec"], canonical)
			}
			// Round-trip through metadata, as `campaign merge` does.
			back, err := spec.FromMeta(mp.Meta())
			if err != nil {
				t.Fatal(err)
			}
			fp1, _ := s.Fingerprint()
			fp2, _ := back.Fingerprint()
			if fp1 != fp2 {
				t.Fatal("spec does not survive the checkpoint-metadata round trip")
			}
		})
	}
}

// TestSelftestBuildMatchesSynthetic: the registry's selftest build is
// the same campaign the engine's Synthetic constructor makes — merged
// results byte-identical.
func TestSelftestBuildMatchesSynthetic(t *testing.T) {
	s := &spec.Spec{Version: spec.Version, Kind: "selftest", Seed: 3,
		Selftest: &spec.SelftestSpec{Trials: 16}}
	built, err := spec.Build(s, spec.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := campaign.Run(built.Campaign, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := campaign.Run(campaign.Synthetic(16, 3), campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := campaign.MarshalResults(fromSpec.Results)
	b, _ := campaign.MarshalResults(direct.Results)
	if !bytes.Equal(a, b) {
		t.Fatal("spec-built selftest differs from campaign.Synthetic")
	}
}

// TestSelftestDelayIsResultNeutral: the scheduling-smoke delay knob
// slows trials without perturbing results (merges stay byte-identical),
// and a negative delay is refused at build time.
func TestSelftestDelayIsResultNeutral(t *testing.T) {
	run := func(delay int) []byte {
		s := &spec.Spec{Version: spec.Version, Kind: "selftest", Seed: 3,
			Selftest: &spec.SelftestSpec{Trials: 8, DelayMillis: delay}}
		built, err := spec.Build(s, spec.BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := campaign.Run(built.Campaign, campaign.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := campaign.MarshalResults(rr.Results)
		return b
	}
	if !bytes.Equal(run(0), run(5)) {
		t.Fatal("delayMillis changed merged results")
	}
	bad := &spec.Spec{Version: spec.Version, Kind: "selftest",
		Selftest: &spec.SelftestSpec{Trials: 8, DelayMillis: -1}}
	if _, err := spec.Build(bad, spec.BuildOpts{}); err == nil || !strings.Contains(err.Error(), "delayMillis") {
		t.Fatalf("negative delayMillis accepted: %v", err)
	}
}

// TestFaultModelSpecValidation: the model-selection section rejects
// unknown kinds, out-of-range bits, unknown modes, and any knob its
// kind would silently ignore — at Decode time, since Spec.Validate
// checks nested fault-model sections in the envelope.
func TestFaultModelSpecValidation(t *testing.T) {
	good := []spec.FaultModelSpec{
		{},
		{Kind: "stuckat", Bit: 30, Pol: "sa0"},
		{Kind: "stuckat", BitMode: "random", PolMode: "random"},
		{Kind: "bitflip"},
		{Kind: "bitflip", Profile: "msb"},
		{Kind: "transient", Strike: 2, Decay: 3},
		{Kind: "transient", Bit: 24, Pol: "sa1"},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("valid model %+v rejected: %v", f, err)
		}
		if _, err := f.FaultModel(); err != nil {
			t.Errorf("valid model %+v failed to construct: %v", f, err)
		}
	}
	bad := []struct {
		f       spec.FaultModelSpec
		wantErr string
	}{
		{spec.FaultModelSpec{Kind: "cosmic"}, "unknown fault model kind"},
		{spec.FaultModelSpec{Bit: 32}, "outside [0,32)"},
		{spec.FaultModelSpec{Bit: -1}, "outside [0,32)"},
		{spec.FaultModelSpec{BitMode: "lsb"}, "unknown bitMode"},
		{spec.FaultModelSpec{Bit: 5, BitMode: "msb"}, "drop one"},
		{spec.FaultModelSpec{Pol: "sa2"}, "unknown polarity"},
		{spec.FaultModelSpec{PolMode: "alternating"}, "unknown polMode"},
		{spec.FaultModelSpec{PolMode: "random", Pol: "sa1"}, "drop one"},
		{spec.FaultModelSpec{Kind: "bitflip", Profile: "gaussian"}, "unknown bit profile"},
		{spec.FaultModelSpec{Strike: -1, Kind: "transient"}, "negative"},
		{spec.FaultModelSpec{Decay: -1, Kind: "transient"}, "negative"},
		{spec.FaultModelSpec{Kind: "stuckat", Profile: "decay"}, "does not use profile"},
		{spec.FaultModelSpec{Kind: "stuckat", Strike: 1}, "does not use strike/decay"},
		{spec.FaultModelSpec{Kind: "bitflip", Bit: 3}, "does not use bit"},
		{spec.FaultModelSpec{Kind: "bitflip", Decay: 2}, "does not use strike/decay"},
		{spec.FaultModelSpec{Kind: "transient", Profile: "uniform"}, "does not use profile"},
	}
	for _, tc := range bad {
		err := tc.f.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Validate(%+v) err = %v, want substring %q", tc.f, err, tc.wantErr)
		}
	}

	// The envelope rejects a bad nested model at Decode time, for both
	// the faultModel campaign section and faultsim's model field.
	decodeBad := []string{
		`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"kind": "cosmic"}}}`,
		`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"bit": 99}}}`,
		`{"version": 1, "kind": "faultsim", "faultsim": {"model": {"kind": "bitflip", "bit": 3}}}`,
	}
	for _, js := range decodeBad {
		if _, err := spec.Decode([]byte(js)); err == nil {
			t.Errorf("Decode accepted invalid fault model: %s", js)
		}
	}
}

// TestFaultModelFingerprintRoundTrip: for each model kind, the
// encode -> decode -> encode round trip preserves the spec fingerprint,
// and distinct model configurations fingerprint differently.
func TestFaultModelFingerprintRoundTrip(t *testing.T) {
	mk := func(m spec.FaultModelSpec) *spec.Spec {
		return &spec.Spec{
			Version: spec.Version, Kind: "faultmodel", Seed: 7,
			FaultModel: &spec.FaultModelCampaignSpec{Model: m, Array: 16},
		}
	}
	variants := []spec.FaultModelSpec{
		{Kind: "stuckat"},
		{Kind: "stuckat", Bit: 30},
		{Kind: "bitflip", Profile: "decay"},
		{Kind: "bitflip", Profile: "msb"},
		{Kind: "transient", Strike: 1, Decay: 2},
	}
	prints := make(map[string]string)
	for _, m := range variants {
		s := mk(m)
		want, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := spec.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("model %+v: fingerprint changed across encode/decode: %s vs %s", m, got, want)
		}
		if prev, dup := prints[want]; dup {
			t.Errorf("models %s and %+v share fingerprint %s", prev, m, want)
		}
		prints[want] = fmt.Sprintf("%+v", m)
	}
}

// TestZeroSeedMeansDefault: an omitted seed resolves to spec.DefaultSeed
// uniformly across kinds (here checked on selftest, the cheapest).
func TestZeroSeedMeansDefault(t *testing.T) {
	zero := &spec.Spec{Version: spec.Version, Kind: "selftest",
		Selftest: &spec.SelftestSpec{Trials: 8}}
	pinned := &spec.Spec{Version: spec.Version, Kind: "selftest", Seed: spec.DefaultSeed,
		Selftest: &spec.SelftestSpec{Trials: 8}}
	run := func(s *spec.Spec) []byte {
		built, err := spec.Build(s, spec.BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := campaign.Run(built.Campaign, campaign.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := campaign.MarshalResults(rr.Results)
		return b
	}
	if !bytes.Equal(run(zero), run(pinned)) {
		t.Fatal("seed 0 does not resolve to the default seed")
	}
}
