package spec

import "fmt"

// TrainSpec is the unified training section: every spec surface that
// configures a gradient-descent loop — the figure suite's retraining,
// a mitigation strategy's retraining, cmd/faultsim's baseline — points
// its training knobs at one shape instead of growing ad-hoc per-kind
// fields. Zero values defer to the consuming loop's documented
// defaults, and each consumer validates strictly: a knob the loop
// would silently ignore (or that duplicates a legacy flat field) is
// rejected at Decode time.
//
// Replicas is execution placement, like Spec.Backend: snn.Train routes
// every configuration (Replicas 0 included) through the data-parallel
// replica engine, which reduces gradients in fixed micro-batch order
// and derives dropout masks per micro-batch, so the lane count never
// changes results — only wall-clock — and it is cleared from the
// canonical form (snn's TestTrainDefaultConfigIsReplicaEngine pins
// this, dropout included). MicroBatch, by contrast, changes the
// loss-averaging partition and therefore the results, so it is part of
// the experiment's identity and stays — except when it equals the
// effective batch, where the partition is a no-op and canonical()
// clears it.
type TrainSpec struct {
	// Epochs is the training budget (0 = the consuming loop's default).
	Epochs int `json:"epochs,omitempty"`
	// Batch is the global batch size (0 = the loop's default, 16).
	Batch int `json:"batch,omitempty"`
	// LR is the learning rate (0 = the loop's default).
	LR float64 `json:"lr,omitempty"`
	// ClipNorm caps the global gradient norm. 0 always means the
	// consuming loop's default (the paper's clip of 5) — clipping
	// cannot be disabled through a spec, only retuned; library callers
	// that need it off use snn.TrainConfig directly, where 0 disables.
	ClipNorm float64 `json:"clipNorm,omitempty"`
	// Loss is the training objective: "mse" (the paper's, default) or
	// "crossentropy". Resolved by snn.LossByName.
	Loss string `json:"loss,omitempty"`
	// Replicas is the data-parallel training lane count (0 = one lane;
	// every count runs the same replica engine). Execution-only:
	// cleared from the canonical form, because the deterministic
	// fixed-order reduction and per-micro-batch dropout seeding make
	// results bit-identical at any lane count.
	Replicas int `json:"replicas,omitempty"`
	// MicroBatch is the per-replica micro-batch size (0 = the whole
	// batch). Result-affecting: part of the canonical form, unless it
	// equals the effective batch (a no-op partition, cleared by
	// canonical()). It must not exceed the effective batch.
	MicroBatch int `json:"microBatch,omitempty"`
}

// DefaultBatch is the global batch size every consuming loop falls back
// to when Batch is 0 — the paper's batch of 16, shared by
// core.BaselineConfig, mitigation retraining and cmd/faultsim. It is
// the batch MicroBatch is validated against (and normalized by) when
// the spec leaves Batch unset.
const DefaultBatch = 16

// TrainLosses lists the addressable training objectives, mirroring
// snn.LossByName (spelled out here so the spec layer stays free of the
// snn dependency tree; a test in this package asserts they match).
func TrainLosses() []string {
	return []string{"crossentropy", "mse"}
}

// Validate checks field sanity: non-negative budgets, a known loss,
// and a micro-batch that fits the batch it partitions.
func (t *TrainSpec) Validate() error {
	if t == nil {
		return nil
	}
	if t.Epochs < 0 {
		return fmt.Errorf("spec: training epochs %d negative", t.Epochs)
	}
	if t.Batch < 0 {
		return fmt.Errorf("spec: training batch %d negative", t.Batch)
	}
	if t.LR < 0 {
		return fmt.Errorf("spec: training lr %v negative", t.LR)
	}
	if t.ClipNorm < 0 {
		return fmt.Errorf("spec: training clipNorm %v negative", t.ClipNorm)
	}
	known := false
	for _, l := range append(TrainLosses(), "") {
		if t.Loss == l {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("spec: unknown training loss %q (want %v)", t.Loss, TrainLosses())
	}
	if t.Replicas < 0 {
		return fmt.Errorf("spec: training replicas %d negative", t.Replicas)
	}
	if t.MicroBatch < 0 {
		return fmt.Errorf("spec: training microBatch %d negative", t.MicroBatch)
	}
	if eb := t.effectiveBatch(); t.MicroBatch > eb {
		if t.Batch > 0 {
			return fmt.Errorf("spec: training microBatch %d exceeds batch %d", t.MicroBatch, t.Batch)
		}
		return fmt.Errorf("spec: training microBatch %d exceeds the default batch %d (set batch explicitly)", t.MicroBatch, eb)
	}
	return nil
}

// effectiveBatch is the batch size the consuming loop will actually run
// — Batch, or every consumer's shared DefaultBatch when unset.
func (t *TrainSpec) effectiveBatch() int {
	if t.Batch > 0 {
		return t.Batch
	}
	return DefaultBatch
}

// canonical returns the spec with the execution-only Replicas knob
// cleared, along with a MicroBatch that matches the effective batch (a
// one-micro-batch-per-step partition, identical to MicroBatch 0 — the
// knob would otherwise differentiate fingerprints of bit-identical
// runs). It copies only when something changes, so canonicalization
// never mutates the source spec (nil stays nil).
func (t *TrainSpec) canonical() *TrainSpec {
	if t == nil {
		return t
	}
	noopMB := t.MicroBatch > 0 && t.MicroBatch >= t.effectiveBatch()
	if t.Replicas == 0 && !noopMB {
		return t
	}
	c := *t
	c.Replicas = 0
	if noopMB {
		c.MicroBatch = 0
	}
	return &c
}
