package spec

import (
	"fmt"

	"falvolt/internal/fixed"
)

// MitigationSpec selects and configures one pluggable salvage strategy
// (mitigation.Mitigation) by name — the mitigation counterpart of
// FaultModelSpec. Fields are literal, like every other section: the
// canonical form preserves exactly what was written, so a spec that
// spells out a default and one that omits it are conservatively
// distinct experiments.
//
// Which knobs a kind reads is validated strictly — a retraining budget
// on a zero-retraining strategy, or a bypass bit on anything but
// rescuesnn, is almost certainly a mis-edited kind and fails loudly.
type MitigationSpec struct {
	// Kind is the strategy: "fap", "fapit", "falvolt", "respawn",
	// "rescuesnn" or "softsnn" ("" = "falvolt").
	Kind string `json:"kind,omitempty"`
	// Epochs is the retraining budget (fapit/falvolt only; 0 = the
	// consuming campaign's budget). FaP and the zero-retraining
	// strategies reject it.
	Epochs int `json:"epochs,omitempty"`
	// LR is the retraining learning rate (fapit/falvolt only; 0 = the
	// Algorithm-1 default).
	LR float64 `json:"lr,omitempty"`
	// Vth forces a fixed threshold voltage before retraining (fapit
	// only — falvolt learns thresholds, the rest never touch them).
	Vth float64 `json:"vth,omitempty"`
	// BypassBit is rescuesnn's severity threshold: PEs with a stuck bit
	// at or above this position are bypassed (0 = the array format's
	// first integer bit).
	BypassBit int `json:"bypassBit,omitempty"`
	// Training is the unified training section for the retraining loop
	// (fapit/falvolt only). Its epochs and lr alias the legacy flat
	// knobs (setting both spellings is an error); batch, clipNorm,
	// replicas and microBatch configure the loop directly; loss is
	// rejected — retraining keeps the paper's objective. Omitted on old
	// specs, so historical fingerprints are unchanged.
	Training *TrainSpec `json:"training,omitempty"`
}

// MitigationKinds lists the addressable mitigation names, sorted. It is
// spelled out here rather than imported so the spec layer stays free of
// the snn/systolic dependency tree; a test in internal/mitigation
// asserts it matches mitigation.Names().
func MitigationKinds() []string {
	return []string{"falvolt", "fap", "fapit", "rescuesnn", "respawn", "softsnn"}
}

// EffectiveKind resolves the strategy kind ("" = "falvolt").
func (m MitigationSpec) EffectiveKind() string {
	if m.Kind == "" {
		return "falvolt"
	}
	return m.Kind
}

// retrains reports whether the kind runs the retraining loop (so Epochs
// and LR mean something).
func (m MitigationSpec) retrains() bool {
	switch m.EffectiveKind() {
	case "fapit", "falvolt":
		return true
	}
	return false
}

// Validate checks the strategy selection: known kind, in-range knobs,
// and no knob the kind would silently ignore.
func (m MitigationSpec) Validate() error {
	kind := m.EffectiveKind()
	known := false
	for _, k := range MitigationKinds() {
		if kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("spec: unknown mitigation kind %q (want %v)", m.Kind, MitigationKinds())
	}
	if m.Epochs < 0 {
		return fmt.Errorf("spec: mitigation epochs %d negative", m.Epochs)
	}
	if m.LR < 0 {
		return fmt.Errorf("spec: mitigation lr %v negative", m.LR)
	}
	if m.Vth < 0 {
		return fmt.Errorf("spec: mitigation vth %v negative", m.Vth)
	}
	if m.BypassBit < 0 || m.BypassBit >= fixed.WordBits {
		return fmt.Errorf("spec: mitigation bypassBit %d outside [0,%d)", m.BypassBit, fixed.WordBits)
	}
	if !m.retrains() && (m.Epochs != 0 || m.LR != 0) {
		return fmt.Errorf("spec: mitigation %q does not retrain — drop epochs/lr", kind)
	}
	if kind != "fapit" && m.Vth != 0 {
		return fmt.Errorf("spec: mitigation %q does not use vth (fapit only)", kind)
	}
	if kind != "rescuesnn" && m.BypassBit != 0 {
		return fmt.Errorf("spec: mitigation %q does not use bypassBit (rescuesnn only)", kind)
	}
	if t := m.Training; t != nil {
		if err := t.Validate(); err != nil {
			return err
		}
		if !m.retrains() {
			return fmt.Errorf("spec: mitigation %q does not retrain — drop the training section", kind)
		}
		if t.Epochs > 0 && m.Epochs > 0 {
			return fmt.Errorf("spec: mitigation sets both epochs and training.epochs — drop one")
		}
		if t.LR != 0 && m.LR != 0 {
			return fmt.Errorf("spec: mitigation sets both lr and training.lr — drop one")
		}
		if t.Loss != "" {
			return fmt.Errorf("spec: mitigation training does not use loss (retraining keeps the paper's objective)")
		}
	}
	return nil
}

// EffectiveEpochs resolves the retraining budget from whichever knob
// is set (0 = the consuming campaign's budget).
func (m MitigationSpec) EffectiveEpochs() int {
	if m.Training != nil && m.Training.Epochs > 0 {
		return m.Training.Epochs
	}
	return m.Epochs
}

// EffectiveLR resolves the retraining learning rate from whichever
// knob is set (0 = the Algorithm-1 default).
func (m MitigationSpec) EffectiveLR() float64 {
	if m.Training != nil && m.Training.LR != 0 {
		return m.Training.LR
	}
	return m.LR
}

// TrainingOrZero returns the training section, or a zero value when
// absent, so consumers can read the replica knobs without nil checks.
func (m MitigationSpec) TrainingOrZero() TrainSpec {
	if m.Training == nil {
		return TrainSpec{}
	}
	return *m.Training
}

// SalvageCampaignSpec sizes the head-to-head salvage benchmark (kind
// "salvage"): every (fault model × rate × mitigation × repeat) cell
// injects the model into a small trained SNN's array, applies the
// mitigation, and measures accuracy recovered, retraining epochs spent
// and per-inference MAC-cycle overhead.
type SalvageCampaignSpec struct {
	// Models is the fault-model axis, by faults.ModelByName name
	// (nil = stuckat, bitflip, transient).
	Models []string `json:"models,omitempty"`
	// Mitigations is the strategy axis (nil = falvolt, respawn,
	// rescuesnn, softsnn).
	Mitigations []MitigationSpec `json:"mitigations,omitempty"`
	// Rates is the severity axis (nil = 0.05, 0.10).
	Rates []float64 `json:"rates,omitempty"`
	// Repeats is the seed-addressed fault instances per cell (0 = 2).
	Repeats int `json:"repeats,omitempty"`
	// Array is the systolic array side (0 = 16).
	Array int `json:"array,omitempty"`
	// BaseEpochs is the shared baseline training budget (0 = 2).
	BaseEpochs int `json:"baseEpochs,omitempty"`
	// Epochs is the retraining budget for retrain-family cells whose
	// MitigationSpec leaves it 0 (0 = 2).
	Epochs int `json:"epochs,omitempty"`
	// Batch is the evaluation batch size (0 = 32).
	Batch int `json:"batch,omitempty"`
}

// DefaultSalvageModels is the fault-model axis a nil Models resolves to.
func DefaultSalvageModels() []string {
	return []string{"stuckat", "bitflip", "transient"}
}

// DefaultSalvageMitigations is the strategy axis a nil Mitigations
// resolves to: the paper's contribution plus the three zero/low-cost
// literature baselines.
func DefaultSalvageMitigations() []MitigationSpec {
	return []MitigationSpec{
		{Kind: "falvolt"},
		{Kind: "respawn"},
		{Kind: "rescuesnn"},
		{Kind: "softsnn"},
	}
}

// Defaulted returns a copy with every zero field replaced by its
// documented default.
func (s SalvageCampaignSpec) Defaulted() SalvageCampaignSpec {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	if s.Models == nil {
		s.Models = DefaultSalvageModels()
	}
	if s.Mitigations == nil {
		s.Mitigations = DefaultSalvageMitigations()
	}
	if s.Rates == nil {
		s.Rates = []float64{0.05, 0.10}
	}
	def(&s.Repeats, 2)
	def(&s.Array, 16)
	def(&s.BaseEpochs, 2)
	def(&s.Epochs, 2)
	def(&s.Batch, 32)
	return s
}

// Validate checks the campaign section: known fault models, valid
// mitigation specs, in-range sweep axes.
func (s SalvageCampaignSpec) Validate() error {
	d := s.Defaulted()
	for _, m := range d.Models {
		switch m {
		case "stuckat", "bitflip", "transient":
		default:
			return fmt.Errorf("spec: salvage fault model %q unknown (want stuckat, bitflip or transient)", m)
		}
	}
	if len(d.Models) == 0 {
		return fmt.Errorf("spec: salvage models empty")
	}
	if len(d.Mitigations) == 0 {
		return fmt.Errorf("spec: salvage mitigations empty")
	}
	for i, m := range d.Mitigations {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("spec: salvage mitigation %d: %w", i, err)
		}
	}
	if len(d.Rates) == 0 {
		return fmt.Errorf("spec: salvage rates empty")
	}
	for _, r := range d.Rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("spec: salvage rate %v outside [0,1]", r)
		}
	}
	if d.Repeats < 1 {
		return fmt.Errorf("spec: salvage repeats %d < 1", d.Repeats)
	}
	if d.Array < 2 || d.Array > 256 {
		return fmt.Errorf("spec: salvage array side %d outside [2,256]", d.Array)
	}
	if d.BaseEpochs < 1 || d.Epochs < 0 || d.Batch < 1 {
		return fmt.Errorf("spec: salvage baseEpochs %d / epochs %d / batch %d out of range",
			d.BaseEpochs, d.Epochs, d.Batch)
	}
	return nil
}

// SiteSweepSpec sizes the exhaustive single-site vulnerability sweep
// (kind "sitesweep"): one trial per (PE row, PE column, bit, polarity)
// stuck-at site from faults.EnumerateSites, each injecting exactly that
// site into a systolic array and measuring output corruption against a
// clean twin over a short fixed spiking workload — the model-free map
// of which physical sites matter.
type SiteSweepSpec struct {
	// Array is the systolic array side (0 = 8).
	Array int `json:"array,omitempty"`
	// Bits restricts the swept bit positions (nil = all word bits).
	Bits []uint `json:"bits,omitempty"`
	// Pols is the polarity axis: "both" (default), "sa0" or "sa1".
	Pols string `json:"pols,omitempty"`
	// Sample caps the sweep at a seed-addressed random subset of the
	// enumerated sites (0 = exhaustive).
	Sample int `json:"sample,omitempty"`
	// Batch is the input vectors per forward pass (0 = 4).
	Batch int `json:"batch,omitempty"`
	// Timesteps is the inference horizon each trial steps through
	// (0 = 2).
	Timesteps int `json:"timesteps,omitempty"`
	// Density is the input spike density (0 = 0.3).
	Density float64 `json:"density,omitempty"`
}

// Defaulted returns a copy with every zero field replaced by its
// documented default.
func (s SiteSweepSpec) Defaulted() SiteSweepSpec {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&s.Array, 8)
	if s.Pols == "" {
		s.Pols = "both"
	}
	def(&s.Batch, 4)
	def(&s.Timesteps, 2)
	if s.Density == 0 {
		s.Density = 0.3
	}
	return s
}

// Validate checks the sweep section: in-range array, bits and axes.
func (s SiteSweepSpec) Validate() error {
	d := s.Defaulted()
	if d.Array < 2 || d.Array > 256 {
		return fmt.Errorf("spec: sitesweep array side %d outside [2,256]", d.Array)
	}
	for _, b := range d.Bits {
		if b >= fixed.WordBits {
			return fmt.Errorf("spec: sitesweep bit %d outside [0,%d)", b, fixed.WordBits)
		}
	}
	switch d.Pols {
	case "both", "sa0", "sa1":
	default:
		return fmt.Errorf("spec: sitesweep pols %q unknown (want both, sa0 or sa1)", s.Pols)
	}
	if d.Sample < 0 {
		return fmt.Errorf("spec: sitesweep sample %d negative", d.Sample)
	}
	if d.Batch < 1 || d.Timesteps < 1 {
		return fmt.Errorf("spec: sitesweep batch %d / timesteps %d < 1", d.Batch, d.Timesteps)
	}
	if d.Density < 0 || d.Density > 1 {
		return fmt.Errorf("spec: sitesweep density %v outside [0,1]", d.Density)
	}
	return nil
}
