package spec_test

import (
	"strings"
	"testing"

	"falvolt/internal/snn"
	"falvolt/internal/spec"
)

// TestTrainLossesMatchSNN: every loss name the spec layer advertises
// must resolve in snn, and vice versa stay rejected — the two lists are
// spelled out separately to keep spec free of the snn dependency tree.
func TestTrainLossesMatchSNN(t *testing.T) {
	for _, name := range spec.TrainLosses() {
		if _, err := snn.LossByName(name); err != nil {
			t.Errorf("spec.TrainLosses advertises %q but snn.LossByName rejects it: %v", name, err)
		}
	}
	if _, err := snn.LossByName("hinge"); err == nil {
		t.Error("snn.LossByName accepted a loss the spec layer does not advertise")
	}
}

// TestTrainSpecValidation: the unified training section rejects unknown
// losses, negative knobs, a micro-batch that exceeds its batch, knobs
// that duplicate a legacy flat field, and placement on strategies or
// kinds that would silently ignore it — all at Decode time.
func TestTrainSpecValidation(t *testing.T) {
	good := []string{
		`{"version": 1, "kind": "mitigation", "suite": {"training": {"epochs": 4, "replicas": 8, "microBatch": 4}}}`,
		`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"epochs": 3, "batch": 16, "lr": 0.05, "clipNorm": 1, "loss": "crossentropy", "replicas": 2, "microBatch": 8}}}`,
		`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "falvolt", "training": {"epochs": 2, "lr": 0.01, "batch": 8, "replicas": 4}}}}`,
		`{"version": 1, "kind": "salvage", "salvage": {"mitigations": [{"kind": "fapit", "vth": 0.55, "training": {"epochs": 2}}]}}`,
	}
	for _, js := range good {
		if _, err := spec.Decode([]byte(js)); err != nil {
			t.Errorf("valid training spec rejected: %v\n%s", err, js)
		}
	}
	bad := []struct {
		json, wantErr string
	}{
		{`{"version": 1, "kind": "mitigation", "suite": {"training": {"loss": "hinge"}}}`, "unknown training loss"},
		{`{"version": 1, "kind": "mitigation", "suite": {"training": {"epochs": -1}}}`, "negative"},
		{`{"version": 1, "kind": "mitigation", "suite": {"training": {"replicas": -2}}}`, "negative"},
		{`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"batch": 8, "microBatch": 16}}}`, "exceeds batch"},
		// With batch unset every consumer runs spec.DefaultBatch, so an
		// oversized micro-batch would be silently clamped — reject it.
		{`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"microBatch": 64}}}`, "exceeds the default batch"},
		{`{"version": 1, "kind": "mitigation", "suite": {"training": {"microBatch": 17}}}`, "exceeds the default batch"},
		{`{"version": 1, "kind": "mitigation", "suite": {"epochs": 6, "training": {"epochs": 4}}}`, "drop one"},
		{`{"version": 1, "kind": "mitigation", "suite": {"training": {"lr": 0.1}}}`, "epochs/replicas/microBatch only"},
		{`{"version": 1, "kind": "faultsim", "faultsim": {"baseEpochs": 12, "training": {"epochs": 4}}}`, "drop one"},
		{`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "fap", "training": {"epochs": 2}}}}`, "does not retrain"},
		{`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "falvolt", "epochs": 2, "training": {"epochs": 4}}}}`, "drop one"},
		{`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "falvolt", "lr": 0.1, "training": {"lr": 0.2}}}}`, "drop one"},
		{`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "falvolt", "training": {"loss": "mse"}}}}`, "does not use loss"},
	}
	for _, tc := range bad {
		_, err := spec.Decode([]byte(tc.json))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Decode(%s) err = %v, want substring %q", tc.json, err, tc.wantErr)
		}
	}
}

// TestTrainSpecReplicasAreExecutionOnly: the replica count never
// changes results (the engine reduces gradients in fixed micro-batch
// order), so like Backend and Shard it must not perturb the spec's
// identity — on any surface a training section appears. The micro-batch
// partition DOES change results and must.
func TestTrainSpecReplicasAreExecutionOnly(t *testing.T) {
	cases := []struct {
		name           string
		base, replicas string
	}{
		{
			"suite",
			`{"version": 1, "kind": "mitigation", "suite": {"training": {"microBatch": 8}}}`,
			`{"version": 1, "kind": "mitigation", "suite": {"training": {"microBatch": 8, "replicas": 8}}}`,
		},
		{
			"faultsim",
			`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"microBatch": 8}}}`,
			`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"microBatch": 8, "replicas": 8}}}`,
		},
		{
			"faultsim mitigate",
			`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "falvolt", "training": {"microBatch": 8}}}}`,
			`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "falvolt", "training": {"microBatch": 8, "replicas": 8}}}}`,
		},
		{
			"salvage mitigations",
			`{"version": 1, "kind": "salvage", "salvage": {"mitigations": [{"kind": "falvolt", "training": {"microBatch": 8}}]}}`,
			`{"version": 1, "kind": "salvage", "salvage": {"mitigations": [{"kind": "falvolt", "training": {"microBatch": 8, "replicas": 8}}]}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := spec.Decode([]byte(tc.base))
			if err != nil {
				t.Fatal(err)
			}
			b, err := spec.Decode([]byte(tc.replicas))
			if err != nil {
				t.Fatal(err)
			}
			fa, _ := a.Fingerprint()
			fb, _ := b.Fingerprint()
			if fa != fb {
				t.Errorf("training replicas leaked into the fingerprint: %s vs %s", fa, fb)
			}
			// Canonicalization must not mutate the decoded spec.
			if _, err := b.Canonical(); err != nil {
				t.Fatal(err)
			}
			enc, err := b.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(enc), `"replicas": 8`) {
				t.Error("Canonical mutated the source spec's replica count")
			}
		})
	}

	// The micro-batch partition is part of the experiment's identity.
	a, err := spec.Decode([]byte(`{"version": 1, "kind": "mitigation", "suite": {"training": {"microBatch": 8}}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Decode([]byte(`{"version": 1, "kind": "mitigation", "suite": {"training": {"microBatch": 4}}}`))
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := a.Fingerprint()
	fb, _ := b.Fingerprint()
	if fa == fb {
		t.Error("microBatch does not affect the fingerprint, but it changes results")
	}
}

// TestTrainSpecNoopMicroBatchIsCanonicalized: a micro-batch equal to
// the effective batch is a one-micro-batch-per-step partition —
// bit-identical to leaving MicroBatch unset — so it must not
// differentiate fingerprints, whether the batch is explicit or the
// consumers' shared spec.DefaultBatch.
func TestTrainSpecNoopMicroBatchIsCanonicalized(t *testing.T) {
	cases := []struct {
		name       string
		noop, bare string
	}{
		{
			"explicit batch",
			`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"batch": 8, "microBatch": 8}}}`,
			`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"batch": 8}}}`,
		},
		{
			"default batch",
			`{"version": 1, "kind": "mitigation", "suite": {"training": {"microBatch": 16}}}`,
			`{"version": 1, "kind": "mitigation", "suite": {"training": {}}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := spec.Decode([]byte(tc.noop))
			if err != nil {
				t.Fatal(err)
			}
			b, err := spec.Decode([]byte(tc.bare))
			if err != nil {
				t.Fatal(err)
			}
			fa, _ := a.Fingerprint()
			fb, _ := b.Fingerprint()
			if fa != fb {
				t.Errorf("no-op microBatch differentiates bit-identical runs: %s vs %s", fa, fb)
			}
			// Canonicalization must not mutate the decoded spec.
			if _, err := a.Canonical(); err != nil {
				t.Fatal(err)
			}
			enc, err := a.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(enc), `"microBatch"`) {
				t.Error("Canonical mutated the source spec's microBatch")
			}
		})
	}
	// An effective micro-batch smaller than the batch stays, of course.
	a, _ := spec.Decode([]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"batch": 8, "microBatch": 4}}}`))
	b, _ := spec.Decode([]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"batch": 8}}}`))
	fa, _ := a.Fingerprint()
	fb, _ := b.Fingerprint()
	if fa == fb {
		t.Error("effective microBatch canonicalized away")
	}
}

// TestTrainSpecFingerprintStability: specs written before the training
// section existed must fingerprint exactly as they always did — the
// new field is omitempty everywhere, so unchanged specs canonicalize
// to unchanged bytes.
func TestTrainSpecFingerprintStability(t *testing.T) {
	js := `{"version": 1, "kind": "mitigation", "suite": {"quick": true, "epochs": 6}}`
	s, err := spec.Decode([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), "training") {
		t.Errorf("canonical form of a training-free spec mentions training:\n%s", canon)
	}
	// A spec that spells training knobs only via replicas canonicalizes
	// identically to one with no training section at all? No — the
	// section object itself stays (field values are literal); only the
	// replica count inside it is cleared.
	withReplicas, err := spec.Decode([]byte(`{"version": 1, "kind": "mitigation", "suite": {"quick": true, "epochs": 6, "training": {"replicas": 4}}}`))
	if err != nil {
		t.Fatal(err)
	}
	emptyTraining, err := spec.Decode([]byte(`{"version": 1, "kind": "mitigation", "suite": {"quick": true, "epochs": 6, "training": {}}}`))
	if err != nil {
		t.Fatal(err)
	}
	fr, _ := withReplicas.Fingerprint()
	fe, _ := emptyTraining.Fingerprint()
	if fr != fe {
		t.Errorf("replicas-only training section perturbs identity: %s vs %s", fr, fe)
	}
}

// TestTrainSpecResolution: the Effective* helpers resolve legacy flat
// knobs and the unified section consistently.
func TestTrainSpecResolution(t *testing.T) {
	m := spec.MitigationSpec{Kind: "falvolt", Epochs: 3, LR: 0.05}
	if m.EffectiveEpochs() != 3 || m.EffectiveLR() != 0.05 {
		t.Errorf("legacy knobs: got epochs %d lr %v", m.EffectiveEpochs(), m.EffectiveLR())
	}
	m = spec.MitigationSpec{Kind: "falvolt", Training: &spec.TrainSpec{Epochs: 4, LR: 0.01}}
	if m.EffectiveEpochs() != 4 || m.EffectiveLR() != 0.01 {
		t.Errorf("training knobs: got epochs %d lr %v", m.EffectiveEpochs(), m.EffectiveLR())
	}
	ss := spec.SuiteSpec{Epochs: 6}
	if ss.RetrainEpochs() != 6 {
		t.Errorf("suite legacy epochs: got %d", ss.RetrainEpochs())
	}
	ss = spec.SuiteSpec{Training: &spec.TrainSpec{Epochs: 9}}
	if ss.RetrainEpochs() != 9 {
		t.Errorf("suite training epochs: got %d", ss.RetrainEpochs())
	}
	f := spec.FaultSimSpec{}
	if f.EffectiveBaseEpochs() != 12 {
		t.Errorf("faultsim default baseEpochs: got %d", f.EffectiveBaseEpochs())
	}
	f = spec.FaultSimSpec{Training: &spec.TrainSpec{Epochs: 5}}
	if f.EffectiveBaseEpochs() != 5 {
		t.Errorf("faultsim training epochs: got %d", f.EffectiveBaseEpochs())
	}
}
