// Package spec is the declarative experiment-spec layer: one versioned,
// JSON-serializable Spec value fully describes any run of this
// repository — which campaign kind (a figure sweep, the yield study,
// the synthetic selftest), the model/suite scale, the fault model, the
// mitigation method, the seeds — plus execution placement (backend,
// shard). Every cmd tool compiles its flags into a Spec (and accepts
// -spec / -dump-spec to round-trip it), a registry turns a Spec into a
// runnable campaign.Campaign in exactly one place per kind, and cluster
// coordinators ship their canonical Spec to workers at registration, so
// a worker cannot be misconfigured: it builds from the bytes it was
// handed, not from flags that happen to match.
//
// The canonical form — Canonical() — is the Spec's identity: execution
// placement (Backend, Shard) is cleared, and the remaining fields
// marshal in fixed struct order, so the same spec fields always produce
// the same bytes and the same Fingerprint regardless of how the JSON
// was originally formatted or ordered. Field values are taken literally
// and NOT semantically normalized: a spec that spells out a documented
// default (e.g. "trials": 24) and one that omits it build the same
// campaign but are conservatively treated as distinct experiments —
// shards intended to merge must come from byte-equal canonical specs,
// which dump-spec/-spec round-trips guarantee.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"falvolt/internal/campaign"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
)

// Version is the current spec schema version. Decode rejects any other
// value: a spec written by a future schema must not be silently
// misinterpreted by an older build.
const Version = 1

// Spec declares one experiment run. Exactly the section matching Kind
// is consulted by the registry builder; Backend and Shard are execution
// placement and excluded from Canonical/Fingerprint (two shards of one
// campaign, or the same campaign on different engines, are the same
// experiment).
type Spec struct {
	// Version is the schema version (see Version).
	Version int `json:"version"`
	// Kind names the campaign builder: "fig2", "fig5a", "fig5b",
	// "fig5c", "mitigation", "yield", "selftest" (registry kinds), or
	// the tool-private "falvolt" / "faultsim" pipelines.
	Kind string `json:"kind"`
	// Seed drives all randomness of the run. 0 means the default seed
	// (7) for every kind — flag-compiled specs always pin it explicitly.
	Seed int64 `json:"seed,omitempty"`

	// Backend selects the compute engine ("", "serial", "parallel",
	// "parallel:N"). Execution-only: excluded from the canonical form.
	Backend string `json:"backend,omitempty"`
	// Shard restricts execution to the i-th of n interleaved trial
	// subsets ("i/n"). Execution-only: excluded from the canonical form.
	Shard string `json:"shard,omitempty"`
	// Planner selects the shard-planning policy of a distributed serve:
	// "uniform" (default) or "balance:<timing-source>" for shards that
	// equalize predicted wall-clock from a prior run's per-key timing
	// (campaign.PlannerByName). Execution-only, like Backend and Shard:
	// any plan of the same experiment merges byte-identically, so the
	// planner is excluded from the canonical form.
	Planner string `json:"planner,omitempty"`
	// Name is a human-readable run name for service catalogs (`campaign
	// submit -name`). Execution-only, like Backend/Shard/Planner: two
	// submissions of the same experiment under different names are the
	// same experiment, so the name is excluded from the canonical form.
	Name string `json:"name,omitempty"`
	// Labels are free-form key=value catalog annotations ("team",
	// "sweep", "ticket", ...). Execution-only: excluded from the
	// canonical form and the fingerprint, like Name.
	Labels map[string]string `json:"labels,omitempty"`

	// Suite configures the figure campaigns (fig2, fig5a-c, mitigation).
	Suite *SuiteSpec `json:"suite,omitempty"`
	// Yield configures the manufacturing-yield study.
	Yield *YieldSpec `json:"yield,omitempty"`
	// Selftest configures the model-free synthetic smoke campaign.
	Selftest *SelftestSpec `json:"selftest,omitempty"`
	// Pipeline configures the single end-to-end run of cmd/falvolt.
	Pipeline *PipelineSpec `json:"pipeline,omitempty"`
	// FaultSim configures the unmitigated sweeps of cmd/faultsim.
	FaultSim *FaultSimSpec `json:"faultsim,omitempty"`
	// FaultModel configures the systolic-level fault-model
	// characterization campaign (kind "faultmodel").
	FaultModel *FaultModelCampaignSpec `json:"faultModel,omitempty"`
	// Salvage configures the head-to-head (fault model × mitigation)
	// salvage benchmark (kind "salvage").
	Salvage *SalvageCampaignSpec `json:"salvage,omitempty"`
	// SiteSweep configures the exhaustive single-site vulnerability
	// sweep (kind "sitesweep").
	SiteSweep *SiteSweepSpec `json:"siteSweep,omitempty"`
}

// SuiteSpec scales the experiment suite behind the figure campaigns.
// Zero values select the mode defaults (experiments.DefaultOptions, or
// QuickOptions when Quick is set), matching the 0-means-default
// semantics the cmd flags always had.
type SuiteSpec struct {
	// Quick selects the reduced model/dataset sizes.
	Quick bool `json:"quick,omitempty"`
	// Array is the systolic array side (NxN); 0 = default (64).
	Array int `json:"array,omitempty"`
	// Epochs is the mitigation retraining budget (0 = mode default).
	Epochs int `json:"epochs,omitempty"`
	// Repeats is the fault maps averaged per vulnerability point
	// (0 = mode default).
	Repeats int `json:"repeats,omitempty"`
	// Eval caps test samples per deployed evaluation (0 = mode default).
	Eval int `json:"eval,omitempty"`
	// Training is the unified training section. The suite consumes its
	// epochs (the retraining budget — an alias of the legacy Epochs
	// knob, setting both is an error), replicas and microBatch; the
	// remaining knobs are pinned by the figure campaigns and rejected.
	// Omitted on old specs, so historical fingerprints are unchanged.
	Training *TrainSpec `json:"training,omitempty"`
}

// validateTraining checks the suite's unified training section against
// the legacy flat knobs.
func (ss *SuiteSpec) validateTraining() error {
	t := ss.Training
	if t == nil {
		return nil
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Epochs > 0 && ss.Epochs > 0 {
		return fmt.Errorf("spec: suite sets both epochs and training.epochs — drop one")
	}
	if t.Batch != 0 || t.LR != 0 || t.ClipNorm != 0 || t.Loss != "" {
		return fmt.Errorf("spec: suite training consumes epochs/replicas/microBatch only (the figure campaigns pin the paper's batch, LR, clip norm and loss)")
	}
	return nil
}

// RetrainEpochs resolves the suite's retraining budget from whichever
// knob is set (0 = mode default).
func (ss *SuiteSpec) RetrainEpochs() int {
	if ss.Training != nil && ss.Training.Epochs > 0 {
		return ss.Training.Epochs
	}
	return ss.Epochs
}

// YieldSpec describes a manufacturing-yield study population and its
// salvage policy. Zero values select the documented defaults (the
// historical cmd/yield flag defaults), except Clustered, which is a
// plain bool: a spec that wants clustered defect maps must say so.
type YieldSpec struct {
	// Chips is the number of simulated dies (0 = 12).
	Chips int `json:"chips,omitempty"`
	// MeanFaulty is the mean faulty PEs per die (0 = 60).
	MeanFaulty float64 `json:"meanFaulty,omitempty"`
	// Alpha is the defect clustering parameter (0 = 1.0).
	Alpha float64 `json:"alpha,omitempty"`
	// Clustered draws spatially clustered fault maps.
	Clustered bool `json:"clustered,omitempty"`
	// Threshold is the minimum shipping accuracy (0 = 0.85).
	Threshold float64 `json:"threshold,omitempty"`
	// Method is the salvage policy: "fap", "fapit" or "falvolt"
	// ("" = "falvolt").
	Method string `json:"method,omitempty"`
	// MitEpochs is the retraining budget per salvaged die (0 = 4).
	MitEpochs int `json:"mitEpochs,omitempty"`
	// BaseEpochs is the baseline training budget (0 = 12).
	BaseEpochs int `json:"baseEpochs,omitempty"`
	// Array is the systolic array side (0 = 64).
	Array int `json:"array,omitempty"`
	// Eval caps evaluation samples per die (0 = 96).
	Eval int `json:"eval,omitempty"`
}

// SelftestSpec sizes the synthetic smoke campaign.
type SelftestSpec struct {
	// Trials is the synthetic trial count (0 = 24).
	Trials int `json:"trials,omitempty"`
	// DelayMillis adds an artificial per-trial delay in milliseconds,
	// so scheduling smoke tests (lease reassignment, coordinator
	// kill-and-restart) can interrupt a campaign deterministically.
	// Results are unaffected: merges stay byte-identical to the
	// instant variant of the same (trials, seed).
	DelayMillis int `json:"delayMillis,omitempty"`
}

// PipelineSpec describes the single end-to-end FalVolt pipeline of
// cmd/falvolt: train a baseline, inject one fault map, mitigate. Rate
// and Quick are taken literally (like YieldSpec.Clustered): an omitted
// rate means a fault-free run, not the `falvolt` flag default of 0.30 —
// flag-compiled specs always spell both out.
type PipelineSpec struct {
	// Dataset is "mnist", "nmnist" or "dvsgesture" ("" = "mnist").
	Dataset string `json:"dataset,omitempty"`
	// Rate is the fraction of faulty PEs (literal: 0 injects nothing).
	Rate float64 `json:"rate,omitempty"`
	// Method is "fap", "fapit" or "falvolt" ("" = "falvolt").
	Method string `json:"method,omitempty"`
	// Array is the systolic array side (0 = 64).
	Array int `json:"array,omitempty"`
	// BaseEpochs is the baseline training budget (0 = 12).
	BaseEpochs int `json:"baseEpochs,omitempty"`
	// Epochs is the mitigation retraining budget (0 = 8).
	Epochs int `json:"epochs,omitempty"`
	// Train and Test are the dataset sizes (0 = 320 / 128).
	Train int `json:"train,omitempty"`
	Test  int `json:"test,omitempty"`
	// Quick selects the reduced model sizes (literal: omitted = full
	// size, though the `falvolt` flag defaults it to true).
	Quick bool `json:"quick,omitempty"`
}

// FaultSimSpec describes an unmitigated vulnerability sweep of
// cmd/faultsim.
type FaultSimSpec struct {
	// Dataset is "mnist", "nmnist" or "dvsgesture" ("" = "mnist").
	Dataset string `json:"dataset,omitempty"`
	// Sweep is "bits", "count", "size" or "model" ("" = "bits").
	Sweep string `json:"sweep,omitempty"`
	// Model selects the fault model for the "model" sweep (nil =
	// default stuck-at). Other sweeps do not read it.
	Model *FaultModelSpec `json:"model,omitempty"`
	// Array is the array side for bits/count sweeps (0 = 64).
	Array int `json:"array,omitempty"`
	// Faults is the faulty-PE count for bits/size sweeps (0 = 16).
	Faults int `json:"faults,omitempty"`
	// Repeats is the fault maps averaged per point (0 = 3).
	Repeats int `json:"repeats,omitempty"`
	// BaseEpochs is the baseline training budget (0 = 12).
	BaseEpochs int `json:"baseEpochs,omitempty"`
	// Train and Test are the dataset sizes (0 = 320 / 128).
	Train int `json:"train,omitempty"`
	Test  int `json:"test,omitempty"`
	// Mitigate, when set, salvages the deployment with the selected
	// strategy before each measurement instead of sweeping unmitigated
	// (`faultsim -mitigate`). Omitted on old specs, so historical
	// fingerprints are unchanged.
	Mitigate *MitigationSpec `json:"mitigate,omitempty"`
	// Training is the unified training section for the baseline loop.
	// Its epochs alias the legacy BaseEpochs knob (setting both is an
	// error); batch, lr, clipNorm, loss, replicas and microBatch
	// configure the loop directly. Omitted on old specs, so historical
	// fingerprints are unchanged.
	Training *TrainSpec `json:"training,omitempty"`
}

// validateTraining checks the sweep's unified training section against
// the legacy flat knob.
func (f *FaultSimSpec) validateTraining() error {
	t := f.Training
	if t == nil {
		return nil
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Epochs > 0 && f.BaseEpochs > 0 {
		return fmt.Errorf("spec: faultsim sets both baseEpochs and training.epochs — drop one")
	}
	return nil
}

// EffectiveBaseEpochs resolves the baseline training budget from
// whichever knob is set, applying the documented default (12).
func (f *FaultSimSpec) EffectiveBaseEpochs() int {
	if f.Training != nil && f.Training.Epochs > 0 {
		return f.Training.Epochs
	}
	if f.BaseEpochs > 0 {
		return f.BaseEpochs
	}
	return 12
}

// Defaulted returns a copy with every zero field replaced by its
// documented default. It is THE definition of the yield defaults:
// builders resolve through it and the cmd tools register their flag
// defaults from it, so the three surfaces cannot drift. (Clustered is a
// literal bool and stays as written; the flags default it to true.)
func (y YieldSpec) Defaulted() YieldSpec {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&y.Chips, 12)
	deff(&y.MeanFaulty, 60)
	deff(&y.Alpha, 1.0)
	deff(&y.Threshold, 0.85)
	if y.Method == "" {
		y.Method = "falvolt"
	}
	def(&y.MitEpochs, 4)
	def(&y.BaseEpochs, 12)
	def(&y.Array, 64)
	def(&y.Eval, 96)
	return y
}

// Defaulted returns a copy with every zero numeric/string field
// replaced by its documented default (Rate and Quick are literal — see
// the type comment).
func (p PipelineSpec) Defaulted() PipelineSpec {
	if p.Dataset == "" {
		p.Dataset = "mnist"
	}
	if p.Method == "" {
		p.Method = "falvolt"
	}
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.Array, 64)
	def(&p.BaseEpochs, 12)
	def(&p.Epochs, 8)
	def(&p.Train, 320)
	def(&p.Test, 128)
	return p
}

// Defaulted returns a copy with every zero field replaced by its
// documented default.
func (f FaultSimSpec) Defaulted() FaultSimSpec {
	if f.Dataset == "" {
		f.Dataset = "mnist"
	}
	if f.Sweep == "" {
		f.Sweep = "bits"
	}
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&f.Array, 64)
	def(&f.Faults, 16)
	def(&f.Repeats, 3)
	def(&f.BaseEpochs, 12)
	def(&f.Train, 320)
	def(&f.Test, 128)
	return f
}

// FaultModelSpec selects and configures one pluggable fault model
// (faults.FaultModel) by name — the spec-level address of a fault
// class, the way Backend addresses a compute engine. Fields are
// literal, like every other section: the canonical form (and thus the
// fingerprint) preserves exactly what was written, so two specs that
// spell the same model differently (one relying on a default, one
// spelling it out) are conservatively distinct experiments.
//
// Which knobs a kind reads is validated strictly — a profile on a
// stuck-at model, or a strike timestep on a bit-flip model, is almost
// certainly a mis-edited kind and fails loudly.
type FaultModelSpec struct {
	// Kind is the model: "stuckat", "bitflip" or "transient"
	// ("" = "stuckat").
	Kind string `json:"kind,omitempty"`
	// Bit pins the affected bit position (stuckat/transient). Setting
	// it implies BitMode "fixed"; combining it with another explicit
	// BitMode is an error. To pin bit 0, spell out bitMode: "fixed".
	Bit int `json:"bit,omitempty"`
	// BitMode picks bit positions (stuckat/transient): "msb" (default,
	// the paper's worst-case high-order bits), "fixed" or "random".
	BitMode string `json:"bitMode,omitempty"`
	// Pol is the forced polarity (stuckat/transient): "sa1" (default)
	// or "sa0"; ignored — and rejected — when PolMode is "random".
	Pol string `json:"pol,omitempty"`
	// PolMode is "fixed" (default) or "random" (stuckat/transient).
	PolMode string `json:"polMode,omitempty"`
	// Profile shapes the per-bit SRAM flip rates (bitflip only):
	// "decay" (default), "uniform" or "msb".
	Profile string `json:"profile,omitempty"`
	// Strike is the timestep the soft-error burst lands on (transient
	// only; default 0).
	Strike int `json:"strike,omitempty"`
	// Decay bounds each strike's duration in timesteps (transient
	// only; 0 = faults.DefaultMaxDuration).
	Decay int `json:"decay,omitempty"`
}

// EffectiveKind resolves the model kind ("" = "stuckat").
func (f FaultModelSpec) EffectiveKind() string {
	if f.Kind == "" {
		return "stuckat"
	}
	return f.Kind
}

// Validate checks the model selection: known kind, in-range bit, known
// modes, and no knob that the kind would silently ignore.
func (f FaultModelSpec) Validate() error {
	kind := f.EffectiveKind()
	switch kind {
	case "stuckat", "bitflip", "transient":
	default:
		return fmt.Errorf("spec: unknown fault model kind %q (want stuckat, bitflip or transient)", f.Kind)
	}
	if f.Bit < 0 || f.Bit >= fixed.WordBits {
		return fmt.Errorf("spec: fault model bit %d outside [0,%d)", f.Bit, fixed.WordBits)
	}
	switch f.BitMode {
	case "", "fixed", "random", "msb":
	default:
		return fmt.Errorf("spec: unknown bitMode %q (want fixed, random or msb)", f.BitMode)
	}
	if f.Bit != 0 && f.BitMode != "" && f.BitMode != "fixed" {
		return fmt.Errorf("spec: bit %d is ignored under bitMode %q — drop one", f.Bit, f.BitMode)
	}
	switch f.Pol {
	case "", "sa0", "sa1":
	default:
		return fmt.Errorf("spec: unknown polarity %q (want sa0 or sa1)", f.Pol)
	}
	switch f.PolMode {
	case "", "fixed", "random":
	default:
		return fmt.Errorf("spec: unknown polMode %q (want fixed or random)", f.PolMode)
	}
	if f.PolMode == "random" && f.Pol != "" {
		return fmt.Errorf("spec: pol %q is ignored under polMode random — drop one", f.Pol)
	}
	if _, err := faults.ParseBitProfile(f.Profile); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if f.Strike < 0 {
		return fmt.Errorf("spec: strike timestep %d negative", f.Strike)
	}
	if f.Decay < 0 {
		return fmt.Errorf("spec: decay bound %d negative", f.Decay)
	}
	// Reject knobs the kind would silently ignore.
	switch kind {
	case "stuckat", "transient":
		if f.Profile != "" {
			return fmt.Errorf("spec: fault model %q does not use profile (bitflip only)", kind)
		}
		if kind == "stuckat" && (f.Strike != 0 || f.Decay != 0) {
			return fmt.Errorf("spec: fault model stuckat does not use strike/decay (transient only)")
		}
	case "bitflip":
		if f.Bit != 0 || f.BitMode != "" || f.Pol != "" || f.PolMode != "" {
			return fmt.Errorf("spec: fault model bitflip does not use bit/bitMode/pol/polMode (its per-bit behaviour comes from profile)")
		}
		if f.Strike != 0 || f.Decay != 0 {
			return fmt.Errorf("spec: fault model bitflip does not use strike/decay (transient only)")
		}
	}
	return nil
}

// genSpec resolves the bit/polarity knobs into a faults.GenSpec.
func (f FaultModelSpec) genSpec() faults.GenSpec {
	gs := faults.GenSpec{Bit: uint(f.Bit)}
	switch f.BitMode {
	case "fixed":
		gs.BitMode = faults.FixedBit
	case "random":
		gs.BitMode = faults.RandomBit
	case "msb":
		gs.BitMode = faults.MSBBits
	default: // "" — fixed if a bit was pinned, the msb regime otherwise
		if f.Bit != 0 {
			gs.BitMode = faults.FixedBit
		} else {
			gs.BitMode = faults.MSBBits
		}
	}
	switch {
	case f.PolMode == "random":
		gs.PolMode = faults.RandomPol
	case f.Pol == "sa0":
		gs.Pol = faults.StuckAt0
	default: // "" or "sa1"
		gs.Pol = faults.StuckAt1
	}
	return gs
}

// FaultModel validates the spec and constructs the configured
// faults.FaultModel it addresses.
func (f FaultModelSpec) FaultModel() (faults.FaultModel, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	switch f.EffectiveKind() {
	case "bitflip":
		profile, err := faults.ParseBitProfile(f.Profile)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		return faults.BitFlipModel{Profile: profile}, nil
	case "transient":
		return faults.TransientModel{Gen: f.genSpec(), Start: f.Strike, MaxDuration: f.Decay}, nil
	}
	return faults.StuckAtModel{Gen: f.genSpec()}, nil
}

// FaultModelCampaignSpec sizes the model-free fault-model
// characterization campaign (kind "faultmodel"): every (rate × repeat)
// cell injects the model into a systolic array at a seed-addressed
// instance and measures output corruption against a clean twin over a
// short spiking inference — no trained network needed, so the cluster
// can grind large (model × rate × seed) grids cheaply.
type FaultModelCampaignSpec struct {
	// Model selects and configures the fault model under test.
	Model FaultModelSpec `json:"model"`
	// Array is the systolic array side (0 = 32).
	Array int `json:"array,omitempty"`
	// Rates is the severity axis (nil = the default ladder).
	Rates []float64 `json:"rates,omitempty"`
	// Repeats is the seed-addressed instances per rate (0 = 4).
	Repeats int `json:"repeats,omitempty"`
	// Batch is the input vectors per forward pass (0 = 8).
	Batch int `json:"batch,omitempty"`
	// Timesteps is the inference horizon each trial steps through —
	// the axis transient strikes decay along (0 = 4).
	Timesteps int `json:"timesteps,omitempty"`
	// Density is the input spike density (0 = 0.3).
	Density float64 `json:"density,omitempty"`
}

// DefaultFaultModelRates is the rate ladder a nil Rates resolves to.
func DefaultFaultModelRates() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.1, 0.2}
}

// Defaulted returns a copy with every zero field replaced by its
// documented default.
func (f FaultModelCampaignSpec) Defaulted() FaultModelCampaignSpec {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&f.Array, 32)
	if f.Rates == nil {
		f.Rates = DefaultFaultModelRates()
	}
	def(&f.Repeats, 4)
	def(&f.Batch, 8)
	def(&f.Timesteps, 4)
	if f.Density == 0 {
		f.Density = 0.3
	}
	return f
}

// Validate checks the campaign section: a valid model and in-range
// sweep axes.
func (f FaultModelCampaignSpec) Validate() error {
	if err := f.Model.Validate(); err != nil {
		return err
	}
	d := f.Defaulted()
	if d.Array < 2 || d.Array > 1024 {
		return fmt.Errorf("spec: faultModel array side %d outside [2,1024]", d.Array)
	}
	if len(d.Rates) == 0 {
		return fmt.Errorf("spec: faultModel rates empty")
	}
	for _, r := range d.Rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("spec: faultModel rate %v outside [0,1]", r)
		}
	}
	if d.Repeats < 1 {
		return fmt.Errorf("spec: faultModel repeats %d < 1", d.Repeats)
	}
	if d.Batch < 1 || d.Timesteps < 1 {
		return fmt.Errorf("spec: faultModel batch %d / timesteps %d < 1", d.Batch, d.Timesteps)
	}
	if d.Density < 0 || d.Density > 1 {
		return fmt.Errorf("spec: faultModel density %v outside [0,1]", d.Density)
	}
	return nil
}

// DefaultSeed is what a zero Spec.Seed resolves to, uniformly across
// kinds.
const DefaultSeed = 7

// EffectiveSeed resolves the run's seed (0 = DefaultSeed).
func (s *Spec) EffectiveSeed() int64 {
	if s.Seed == 0 {
		return DefaultSeed
	}
	return s.Seed
}

// sectionFor names the configuration section a kind consumes. Kinds
// without a dedicated section (the figure campaigns, and any future
// registry kind) use the suite section.
func sectionFor(kind string) string {
	switch kind {
	case "yield":
		return "yield"
	case "selftest":
		return "selftest"
	case "falvolt":
		return "pipeline"
	case "faultsim":
		return "faultsim"
	case "faultmodel":
		return "faultModel"
	case "salvage":
		return "salvage"
	case "sitesweep":
		return "siteSweep"
	}
	return "suite"
}

// Validate checks the spec's envelope: supported version, a kind, a
// parseable shard, and that no section is configured which the kind
// would silently ignore (a yield section on a selftest spec is almost
// certainly a mis-edited kind, and must fail loudly like any other
// typo). Section contents are validated by the kind's builder (Build),
// which knows the semantics.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: version %d unsupported (this build speaks version %d)", s.Version, Version)
	}
	if s.Kind == "" {
		return fmt.Errorf("spec: missing kind")
	}
	if _, err := campaign.ParseShard(s.Shard); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if err := campaign.ValidatePlannerName(s.Planner); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if err := validateRunName(s.Name); err != nil {
		return err
	}
	if err := validateLabels(s.Labels); err != nil {
		return err
	}
	want := sectionFor(s.Kind)
	for name, present := range map[string]bool{
		"suite":      s.Suite != nil,
		"yield":      s.Yield != nil,
		"selftest":   s.Selftest != nil,
		"pipeline":   s.Pipeline != nil,
		"faultsim":   s.FaultSim != nil,
		"faultModel": s.FaultModel != nil,
		"salvage":    s.Salvage != nil,
		"siteSweep":  s.SiteSweep != nil,
	} {
		if present && name != want {
			return fmt.Errorf("spec: kind %q does not use the %s section (it reads %s) — wrong kind or leftover section?",
				s.Kind, name, want)
		}
	}
	// Training sections validate at the envelope so a bad knob (an
	// unknown loss, a duplicated epoch budget) is rejected at Decode
	// time, not first at build/run time.
	if s.Suite != nil {
		if err := s.Suite.validateTraining(); err != nil {
			return err
		}
	}
	if s.FaultSim != nil {
		if err := s.FaultSim.validateTraining(); err != nil {
			return err
		}
	}
	// Fault-model selections validate at the envelope so a bad model
	// (unknown kind, out-of-range bit) is rejected at Decode time, not
	// first at build/run time.
	if s.FaultSim != nil && s.FaultSim.Model != nil {
		if err := s.FaultSim.Model.Validate(); err != nil {
			return err
		}
	}
	if s.FaultSim != nil && s.FaultSim.Mitigate != nil {
		if err := s.FaultSim.Mitigate.Validate(); err != nil {
			return err
		}
	}
	if s.FaultModel != nil {
		if err := s.FaultModel.Validate(); err != nil {
			return err
		}
	}
	if s.Salvage != nil {
		if err := s.Salvage.Validate(); err != nil {
			return err
		}
	}
	if s.SiteSweep != nil {
		if err := s.SiteSweep.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Catalog-field limits. Names and labels travel through service
// catalogs, log lines and status tables; bound them so a pasted blob
// or a control character cannot wreck a listing or a journal line.
const (
	maxNameLen       = 128
	maxLabelKeyLen   = 64
	maxLabelValueLen = 256
	maxLabels        = 32
)

// validateRunName bounds the catalog name: printable, single-line,
// at most maxNameLen bytes.
func validateRunName(name string) error {
	if len(name) > maxNameLen {
		return fmt.Errorf("spec: name longer than %d bytes", maxNameLen)
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("spec: name contains control character %q", r)
		}
	}
	return nil
}

// validateLabels bounds the catalog labels: non-empty printable keys,
// printable single-line values, at most maxLabels entries.
func validateLabels(labels map[string]string) error {
	if len(labels) > maxLabels {
		return fmt.Errorf("spec: more than %d labels", maxLabels)
	}
	for k, v := range labels {
		if k == "" {
			return fmt.Errorf("spec: empty label key")
		}
		if len(k) > maxLabelKeyLen {
			return fmt.Errorf("spec: label key %q longer than %d bytes", k[:maxLabelKeyLen], maxLabelKeyLen)
		}
		if len(v) > maxLabelValueLen {
			return fmt.Errorf("spec: label %q value longer than %d bytes", k, maxLabelValueLen)
		}
		for _, r := range k + v {
			if r < 0x20 || r == 0x7f {
				return fmt.Errorf("spec: label %q contains control character %q", k, r)
			}
		}
	}
	return nil
}

// Canonical returns the spec's identity bytes: execution placement
// (Backend, Shard, Planner) and catalog identity (Name, Labels)
// cleared, compact JSON in fixed struct-field order. Two specs
// describing the same experiment canonicalize identically however
// their JSON source was ordered or indented.
func (s *Spec) Canonical() ([]byte, error) {
	c := *s
	c.Backend, c.Shard, c.Planner = "", "", ""
	c.Name, c.Labels = "", nil
	// Training replica counts are execution placement too — the
	// deterministic reduction makes results bit-identical at any lane
	// count — so clear them wherever a training section appears, on
	// copies: canonicalization never mutates the source spec.
	if su := c.Suite; su != nil && su.Training.canonical() != su.Training {
		cp := *su
		cp.Training = cp.Training.canonical()
		c.Suite = &cp
	}
	if fs := c.FaultSim; fs != nil {
		tr := fs.Training.canonical()
		mit := fs.Mitigate
		if mit != nil && mit.Training.canonical() != mit.Training {
			mcp := *mit
			mcp.Training = mcp.Training.canonical()
			mit = &mcp
		}
		if tr != fs.Training || mit != fs.Mitigate {
			cp := *fs
			cp.Training, cp.Mitigate = tr, mit
			c.FaultSim = &cp
		}
	}
	if sa := c.Salvage; sa != nil {
		for i := range sa.Mitigations {
			if sa.Mitigations[i].Training.canonical() == sa.Mitigations[i].Training {
				continue
			}
			cp := *sa
			cp.Mitigations = make([]MitigationSpec, len(sa.Mitigations))
			copy(cp.Mitigations, sa.Mitigations)
			for j := range cp.Mitigations {
				cp.Mitigations[j].Training = cp.Mitigations[j].Training.canonical()
			}
			c.Salvage = &cp
			break
		}
	}
	b, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("spec: canonicalize: %w", err)
	}
	return b, nil
}

// Fingerprint digests the canonical form into a short hex id — the
// cluster registration fingerprint and the stable name of "this exact
// experiment".
func (s *Spec) Fingerprint() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:16], nil
}

// Encode renders the full spec (execution fields included) as indented
// JSON with a trailing newline — the -dump-spec output, editable and
// loadable by -spec.
func (s *Spec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses and validates spec JSON. Unknown fields are rejected —
// a typoed knob in a hand-edited spec must fail loudly, not silently
// fall back to a default — as are unsupported versions and trailing
// garbage.
func Decode(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("spec: decode: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and decodes a spec file; path "-" reads stdin (so tools
// compose as `tool -dump-spec | tool -spec -`).
func Load(path string) (*Spec, error) {
	var (
		data []byte
		err  error
	)
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, fmt.Errorf("spec: load: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadOverride is Load plus the execution-backend override every cmd
// tool applies: a non-empty -backend flag wins over the spec file's.
func LoadOverride(path, backend string) (*Spec, error) {
	s, err := Load(path)
	if err != nil {
		return nil, err
	}
	if backend != "" {
		s.Backend = backend
	}
	return s, nil
}

// Dump writes the encoded spec to w — the shared -dump-spec output
// path.
func (s *Spec) Dump(w io.Writer) error {
	b, err := s.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
