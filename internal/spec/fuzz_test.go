package spec_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"falvolt/internal/spec"

	_ "falvolt/internal/core"
	_ "falvolt/internal/experiments"
)

// Native fuzz targets for the decode surface: spec files arrive from
// hand edits, cmd flags, cluster coordinators and checkpoint metadata,
// so malformed input of any shape must produce an error, never a panic
// — and whatever Decode does accept must round-trip stably. Seed
// corpora live in testdata/fuzz; CI runs each target briefly on every
// PR (the fuzz-smoke job) and `go test` replays the corpora always.

// FuzzDecode: arbitrary bytes through the strict spec decoder. Accepted
// specs must re-encode, re-decode, and fingerprint identically.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"version": 1, "kind": "selftest", "selftest": {"trials": 4}}`),
		[]byte(`{"version": 1, "kind": "selftest", "name": "smoke", "labels": {"team": "rel"}}`),
		[]byte(`{"version": 1, "kind": "selftest", "name": "a\u0000b"}`),
		[]byte(`{"version": 1, "kind": "selftest", "labels": {"": "v"}}`),
		[]byte(`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"kind": "bitflip"}}}`),
		[]byte(`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"kind": "transient", "strike": 2, "decay": 3}, "rates": [0.1]}}`),
		[]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"dataset": "mnist", "sweep": "model", "model": {"kind": "stuckat", "bit": 30}}}`),
		[]byte(`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"bit": 99}}}`),
		[]byte(`{"version": 99}`),
		[]byte(`{"version": 1, "kind": "selftest"} trailing`),
		[]byte(`not json at all`),
		[]byte(``),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := spec.Decode(data)
		if err != nil {
			return // rejected is fine; panicking is the bug
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		back, err := spec.Decode(enc)
		if err != nil {
			t.Fatalf("accepted spec failed to re-decode its own encoding: %v\n%s", err, enc)
		}
		re, err := back.Encode()
		if err != nil {
			t.Fatalf("re-decoded spec failed to encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("encode->decode->encode not stable:\n--- first ---\n%s--- second ---\n%s", enc, re)
		}
		fp1, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("accepted spec failed to fingerprint: %v", err)
		}
		fp2, err := back.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Fatalf("fingerprint changed across round trip: %s vs %s", fp1, fp2)
		}
	})
}

// FuzzFaultModelSpec: arbitrary field combinations through the model
// section's validator. Validate must never panic; whatever it accepts
// must construct a working, deterministic FaultModel.
func FuzzFaultModelSpec(f *testing.F) {
	f.Add("stuckat", 30, "fixed", "sa1", "", "", 0, 0)
	f.Add("bitflip", 0, "", "", "", "decay", 0, 0)
	f.Add("bitflip", 0, "", "", "", "msb", 0, 0)
	f.Add("transient", 0, "msb", "", "random", "", 2, 3)
	f.Add("", 0, "", "", "", "", 0, 0)
	f.Add("cosmic", -1, "lsb", "sa2", "alternating", "gaussian", -5, -5)
	f.Add("stuckat", 32, "", "", "", "", 0, 0)
	f.Fuzz(func(t *testing.T, kind string, bit int, bitMode, pol, polMode, profile string, strike, decay int) {
		m := spec.FaultModelSpec{
			Kind: kind, Bit: bit, BitMode: bitMode, Pol: pol, PolMode: polMode,
			Profile: profile, Strike: strike, Decay: decay,
		}
		if err := m.Validate(); err != nil {
			// Rejected specs must also be rejected by the constructor.
			if _, err2 := m.FaultModel(); err2 == nil {
				t.Fatalf("Validate rejected %+v but FaultModel accepted it", m)
			}
			return
		}
		model, err := m.FaultModel()
		if err != nil {
			t.Fatalf("validated spec %+v failed to construct: %v", m, err)
		}
		a, err := model.Describe(8, 8, 0.25, 42)
		if err != nil {
			t.Fatalf("constructed model %+v failed to describe: %v", m, err)
		}
		b, err := model.Describe(8, 8, 0.25, 42)
		if err != nil {
			t.Fatal(err)
		}
		ja, jb := mustJSON(t, a), mustJSON(t, b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("model %+v described nondeterministically:\n%s\n%s", m, ja, jb)
		}
	})
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
