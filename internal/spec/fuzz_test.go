package spec_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"falvolt/internal/spec"

	_ "falvolt/internal/core"
	_ "falvolt/internal/experiments"
)

// Native fuzz targets for the decode surface: spec files arrive from
// hand edits, cmd flags, cluster coordinators and checkpoint metadata,
// so malformed input of any shape must produce an error, never a panic
// — and whatever Decode does accept must round-trip stably. Seed
// corpora live in testdata/fuzz; CI runs each target briefly on every
// PR (the fuzz-smoke job) and `go test` replays the corpora always.

// FuzzDecode: arbitrary bytes through the strict spec decoder. Accepted
// specs must re-encode, re-decode, and fingerprint identically.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"version": 1, "kind": "selftest", "selftest": {"trials": 4}}`),
		[]byte(`{"version": 1, "kind": "selftest", "name": "smoke", "labels": {"team": "rel"}}`),
		[]byte(`{"version": 1, "kind": "selftest", "name": "a\u0000b"}`),
		[]byte(`{"version": 1, "kind": "selftest", "labels": {"": "v"}}`),
		[]byte(`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"kind": "bitflip"}}}`),
		[]byte(`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"kind": "transient", "strike": 2, "decay": 3}, "rates": [0.1]}}`),
		[]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"dataset": "mnist", "sweep": "model", "model": {"kind": "stuckat", "bit": 30}}}`),
		[]byte(`{"version": 1, "kind": "faultmodel", "faultModel": {"model": {"bit": 99}}}`),
		[]byte(`{"version": 1, "kind": "mitigation", "suite": {"quick": true, "training": {"epochs": 4, "replicas": 2, "microBatch": 8}}}`),
		[]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"batch": 16, "lr": 0.02, "loss": "mse", "replicas": 4, "microBatch": 4}}}`),
		[]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"baseEpochs": 4, "training": {"epochs": 4}}}`),
		[]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"mitigate": {"kind": "fap", "training": {"epochs": 2}}}}`),
		[]byte(`{"version": 1, "kind": "salvage", "salvage": {"mitigations": [{"kind": "falvolt", "training": {"epochs": 2, "replicas": 8}}]}}`),
		[]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"batch": 8, "microBatch": 8, "replicas": 4}}}`),
		[]byte(`{"version": 1, "kind": "faultsim", "faultsim": {"training": {"microBatch": 64}}}`),
		[]byte(`{"version": 99}`),
		[]byte(`{"version": 1, "kind": "selftest"} trailing`),
		[]byte(`not json at all`),
		[]byte(``),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := spec.Decode(data)
		if err != nil {
			return // rejected is fine; panicking is the bug
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		back, err := spec.Decode(enc)
		if err != nil {
			t.Fatalf("accepted spec failed to re-decode its own encoding: %v\n%s", err, enc)
		}
		re, err := back.Encode()
		if err != nil {
			t.Fatalf("re-decoded spec failed to encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("encode->decode->encode not stable:\n--- first ---\n%s--- second ---\n%s", enc, re)
		}
		fp1, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("accepted spec failed to fingerprint: %v", err)
		}
		fp2, err := back.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Fatalf("fingerprint changed across round trip: %s vs %s", fp1, fp2)
		}
	})
}

// FuzzFaultModelSpec: arbitrary field combinations through the model
// section's validator. Validate must never panic; whatever it accepts
// must construct a working, deterministic FaultModel.
func FuzzFaultModelSpec(f *testing.F) {
	f.Add("stuckat", 30, "fixed", "sa1", "", "", 0, 0)
	f.Add("bitflip", 0, "", "", "", "decay", 0, 0)
	f.Add("bitflip", 0, "", "", "", "msb", 0, 0)
	f.Add("transient", 0, "msb", "", "random", "", 2, 3)
	f.Add("", 0, "", "", "", "", 0, 0)
	f.Add("cosmic", -1, "lsb", "sa2", "alternating", "gaussian", -5, -5)
	f.Add("stuckat", 32, "", "", "", "", 0, 0)
	f.Fuzz(func(t *testing.T, kind string, bit int, bitMode, pol, polMode, profile string, strike, decay int) {
		m := spec.FaultModelSpec{
			Kind: kind, Bit: bit, BitMode: bitMode, Pol: pol, PolMode: polMode,
			Profile: profile, Strike: strike, Decay: decay,
		}
		if err := m.Validate(); err != nil {
			// Rejected specs must also be rejected by the constructor.
			if _, err2 := m.FaultModel(); err2 == nil {
				t.Fatalf("Validate rejected %+v but FaultModel accepted it", m)
			}
			return
		}
		model, err := m.FaultModel()
		if err != nil {
			t.Fatalf("validated spec %+v failed to construct: %v", m, err)
		}
		a, err := model.Describe(8, 8, 0.25, 42)
		if err != nil {
			t.Fatalf("constructed model %+v failed to describe: %v", m, err)
		}
		b, err := model.Describe(8, 8, 0.25, 42)
		if err != nil {
			t.Fatal(err)
		}
		ja, jb := mustJSON(t, a), mustJSON(t, b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("model %+v described nondeterministically:\n%s\n%s", m, ja, jb)
		}
	})
}

// FuzzMitigationSpec: arbitrary field combinations through the
// mitigation section's validator. Validate must never panic; whatever
// it accepts must construct through the mitigation registry (checked
// indirectly: the kind must be one spec.MitigationKinds lists, which a
// test in internal/mitigation pins against mitigation.New).
func FuzzMitigationSpec(f *testing.F) {
	f.Add("falvolt", 4, 0.02, 0.0, 0)
	f.Add("fapit", 2, 0.01, 0.5, 0)
	f.Add("rescuesnn", 0, 0.0, 0.0, 20)
	f.Add("fap", 0, 0.0, 0.0, 0)
	f.Add("respawn", 0, 0.0, 0.0, 0)
	f.Add("softsnn", 0, 0.0, 0.0, 0)
	f.Add("", 0, 0.0, 0.0, 0)
	f.Add("lobotomy", -3, -0.5, -1.0, 99)
	f.Add("fap", 2, 0.0, 0.0, 0)
	f.Add("softsnn", 0, 0.1, 0.0, 0)
	f.Add("falvolt", 0, 0.0, 0.5, 0)
	f.Add("respawn", 0, 0.0, 0.0, 8)
	f.Fuzz(func(t *testing.T, kind string, epochs int, lr, vth float64, bypassBit int) {
		m := spec.MitigationSpec{Kind: kind, Epochs: epochs, LR: lr, Vth: vth, BypassBit: bypassBit}
		err := m.Validate()
		if err != nil {
			return // rejected is fine; panicking is the bug
		}
		// Accepted specs resolve to a registered kind with in-range knobs.
		known := false
		for _, k := range spec.MitigationKinds() {
			if m.EffectiveKind() == k {
				known = true
				break
			}
		}
		if !known {
			t.Fatalf("Validate accepted unknown kind %q", kind)
		}
		if m.Epochs < 0 || m.LR < 0 || m.Vth < 0 || m.BypassBit < 0 || m.BypassBit > 31 {
			t.Fatalf("Validate accepted out-of-range knobs: %+v", m)
		}
		// A salvage campaign wrapping the accepted mitigation must also
		// validate and enumerate deterministically.
		s := spec.SalvageCampaignSpec{Mitigations: []spec.MitigationSpec{m}}
		if err := s.Validate(); err != nil {
			t.Fatalf("salvage campaign rejected an accepted mitigation %+v: %v", m, err)
		}
	})
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
