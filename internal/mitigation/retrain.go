package mitigation

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"falvolt/internal/faults"
	"falvolt/internal/mapping"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// The paper's retraining family (Algorithm 1). This engine moved here
// verbatim from internal/core, which now aliases and delegates so the
// historical core.Mitigate API — and every figure built on it — is
// unchanged.

// Method selects the retraining-family strategy.
type Method int

const (
	// FaP is fault-aware pruning only.
	FaP Method = iota
	// FaPIT is fault-aware pruning with retraining, fixed threshold.
	FaPIT
	// FalVolt is fault-aware pruning with retraining and per-layer
	// threshold-voltage optimization.
	FalVolt
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case FaP:
		return "FaP"
	case FaPIT:
		return "FaPIT"
	case FalVolt:
		return "FalVolt"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod parses a retraining-family method name: "fap", "fapit"
// or "falvolt", case-insensitively (so both the flag spellings and the
// Method.String() forms parse). The empty name selects FalVolt.
func ParseMethod(name string) (Method, error) {
	switch strings.ToLower(name) {
	case "fap":
		return FaP, nil
	case "fapit":
		return FaPIT, nil
	case "falvolt", "":
		return FalVolt, nil
	}
	return 0, fmt.Errorf("mitigation: unknown method %q (want fap, fapit or falvolt)", name)
}

// Config controls a retraining-family mitigation run.
type Config struct {
	Method Method
	// Epochs is the retraining budget (ignored for FaP).
	Epochs int
	// BatchSize and LR configure the retraining loop.
	BatchSize int
	LR        float64
	// FixedVth, when non-zero, forces every spiking layer to this
	// threshold before retraining — the Fig. 2 fixed-threshold sweeps.
	// FaPIT conventionally uses 1.0 (the training default).
	FixedVth float64
	// ClipNorm caps the global gradient norm during retraining.
	ClipNorm float64
	// Rng drives batch shuffling. When nil, a generator seeded with Seed
	// is constructed, so runs are reproducible from the config alone —
	// never from the wall clock.
	Rng *rand.Rand
	// Seed seeds the default Rng (0 selects seed 1). Ignored when Rng is
	// supplied.
	Seed int64
	// Engine is the compute backend retraining and evaluation run on
	// (nil selects tensor.Default()). Mitigate installs it on the model's
	// network (part of the "model is modified in place" contract) and it
	// remains in effect afterwards; call Network.SetEngine to change it.
	// Results are bit-identical on every engine; only wall-clock changes.
	Engine tensor.Backend
	// TrackCurve records float-path test accuracy after every retraining
	// epoch (the Fig. 8 convergence curves). Costs one evaluation/epoch.
	TrackCurve bool
	// CurveEvalSize limits how many test samples the per-epoch curve uses
	// (0 = all).
	CurveEvalSize int
	// Replicas and MicroBatch configure the data-parallel replica
	// training engine for retraining (see snn.TrainConfig; every
	// configuration runs that engine — zero replicas means one lane).
	// Replica count never changes results, only wall-clock.
	Replicas   int
	MicroBatch int
	// Progress observes retraining (epoch, mean loss); nil is silent —
	// the library default. cmd tools install a printer.
	Progress func(epoch int, loss float64)
}

// EpochPoint is one point of a retraining convergence curve.
type EpochPoint struct {
	Epoch    int
	Loss     float64
	Accuracy float64
}

// Report summarises a retraining-family mitigation run.
type Report struct {
	Method    Method
	FaultRate float64
	// PrunedFraction is the overall fraction of weights pruned across all
	// GEMM layers (array reuse can make this exceed the PE fault rate).
	PrunedFraction float64
	// PrunedPerLayer gives the pruned fraction of each GEMM layer.
	PrunedPerLayer []float64
	// Accuracy is the final test accuracy on the faulty array with bypass
	// enabled and the retrained weights deployed.
	Accuracy float64
	// Vths is the per-spiking-layer threshold voltage after mitigation
	// (the Fig. 6 quantities).
	Vths []float64
	// Curve is the per-epoch convergence trace when TrackCurve is set.
	Curve []EpochPoint
	// RetrainDuration is the wall-clock time spent retraining.
	RetrainDuration time.Duration
}

// EpochsToReachTarget returns the first epoch at which a convergence curve
// reaches the target accuracy, or -1 if it never does — the quantity
// behind the paper's "FalVolt is 2x faster than FaPIT" claim (Fig. 8).
func EpochsToReachTarget(curve []EpochPoint, target float64) int {
	for _, p := range curve {
		if p.Accuracy >= target {
			return p.Epoch
		}
	}
	return -1
}

// Mitigate runs Algorithm 1 on model against the fault map, retraining on
// train and reporting accuracy on test. The model is modified in place
// (snapshot with Network.State first if the original is still needed).
// The array must have the same dimensions as the fault map; it is left
// fault-injected with bypass enabled and the network deployed onto it.
func Mitigate(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	train, test []snn.Sample, cfg Config) (*Report, error) {
	net := model.Net
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.Rng == nil {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		cfg.Rng = rand.New(rand.NewSource(seed))
	}
	eng := cfg.Engine
	if eng == nil {
		eng = tensor.Default()
	}
	net.SetEngine(eng)

	// Lines 1–2: derive pruned-weight indices from the fault map and zero
	// them. One mask per GEMM layer.
	gemms := net.GEMMLayers()
	masks := make([]*mapping.PruneMask, len(gemms))
	report := &Report{Method: cfg.Method, FaultRate: fm.FaultRate()}
	totalW, totalP := 0, 0
	for i, g := range gemms {
		m, k := g.GEMMShape()
		mask, err := mapping.Derive(fm, m, k)
		if err != nil {
			return nil, fmt.Errorf("mitigation: mask for layer %d: %w", i, err)
		}
		masks[i] = mask
		mask.Apply(g.WeightMatrix())
		report.PrunedPerLayer = append(report.PrunedPerLayer, mask.Fraction())
		totalW += m * k
		totalP += mask.Count()
	}
	if totalW > 0 {
		report.PrunedFraction = float64(totalP) / float64(totalW)
	}
	applyMasks := func() {
		for i, g := range gemms {
			masks[i].Apply(g.WeightMatrix())
		}
	}

	// Line 3: threshold-voltage initialization. FalVolt learns V per
	// layer; the others freeze it (optionally at a swept fixed value).
	net.SetLearnVth(cfg.Method == FalVolt)
	if cfg.FixedVth > 0 {
		net.SetVths(cfg.FixedVth)
	}

	// Lines 4–14: retraining with epoch-end re-pruning.
	epochs := cfg.Epochs
	if cfg.Method == FaP {
		epochs = 0
	}
	if epochs > 0 {
		curveTest := test
		if cfg.TrackCurve && cfg.CurveEvalSize > 0 && cfg.CurveEvalSize < len(test) {
			curveTest = test[:cfg.CurveEvalSize]
		}
		start := time.Now()
		_, err := snn.Train(net, train, snn.TrainConfig{
			Epochs:     epochs,
			BatchSize:  cfg.BatchSize,
			LR:         cfg.LR,
			Classes:    model.Spec.Classes,
			ClipNorm:   cfg.ClipNorm,
			Rng:        cfg.Rng,
			Engine:     eng,
			Replicas:   cfg.Replicas,
			MicroBatch: cfg.MicroBatch,
			Hooks: snn.TrainHooks{
				AfterEpoch: func(epoch int, loss float64) {
					// Algorithm 1 line 13: re-zero pruned weights.
					applyMasks()
					if cfg.TrackCurve {
						acc := snn.EvaluateWith(eng, net, curveTest, cfg.BatchSize)
						report.Curve = append(report.Curve, EpochPoint{Epoch: epoch, Loss: loss, Accuracy: acc})
					}
					if cfg.Progress != nil {
						cfg.Progress(epoch, loss)
					}
				},
			},
		})
		if err != nil {
			return nil, fmt.Errorf("mitigation: retraining: %w", err)
		}
		report.RetrainDuration = time.Since(start)
	}
	applyMasks()

	// Line 15: inference accuracy on the faulty hardware, bypass enabled.
	if err := arr.InjectFaults(fm); err != nil {
		return nil, fmt.Errorf("mitigation: inject faults: %w", err)
	}
	arr.SetBypass(true)
	restoreArr := installEngine(arr, cfg.Engine)
	defer restoreArr()
	net.Deploy(arr)
	net.Redeploy() // quantize the retrained weights
	report.Accuracy = snn.EvaluateWith(eng, net, test, cfg.BatchSize)
	report.Vths = net.Vths()
	return report, nil
}

// installEngine routes the array through eng (when non-nil), returning a
// restore function.
func installEngine(arr *systolic.Array, eng tensor.Backend) func() {
	if eng == nil {
		return func() {}
	}
	prev := arr.Config().Engine
	arr.SetEngine(eng)
	return func() { arr.SetEngine(prev) }
}

// retrainStrategy adapts the Algorithm-1 engine to the Mitigation
// interface. On a fully pristine array with an empty fault map it skips
// the engine entirely — no pruning, no retraining — and just deploys,
// which keeps the zoo-wide no-op invariant (fault-rate 0 leaves
// accuracy and spike counts bit-identical to baseline) without touching
// core.Mitigate's semantics, which the yield and mitigation-study
// campaigns depend on byte-for-byte.
type retrainStrategy struct {
	method Method
	opt    Options
}

func (s *retrainStrategy) Name() string { return strings.ToLower(s.method.String()) }

func (s *retrainStrategy) Describe() string {
	switch s.method {
	case FaP:
		return "fault-aware pruning, no retraining (Algorithm 1, trEpochs=0)"
	case FaPIT:
		return fmt.Sprintf("fault-aware pruning + %d-epoch retraining, threshold frozen", s.opt.Epochs)
	default:
		return fmt.Sprintf("fault-aware pruning + %d-epoch retraining with learned per-layer thresholds", s.opt.Epochs)
	}
}

func (s *retrainStrategy) Apply(model *snn.Model, arr *systolic.Array, fm *faults.Map) (*Outcome, error) {
	fm = ensureMap(arr, fm)
	out := &Outcome{Mitigation: s.Name()}
	if len(fm.Faults) == 0 && pristine(arr, fm) {
		if err := arr.InjectFaults(fm); err != nil {
			return nil, fmt.Errorf("mitigation: inject faults: %w", err)
		}
		arr.SetBypass(true)
		model.Net.Deploy(arr)
		model.Net.Redeploy()
		return out, nil
	}
	rng := s.opt.Rng
	if rng == nil {
		seed := s.opt.Seed
		if seed == 0 {
			seed = 1
		}
		rng = rand.New(rand.NewSource(seed))
	}
	rep, err := Mitigate(model, arr, fm, s.opt.Train, s.opt.Test, Config{
		Method:     s.method,
		Epochs:     s.opt.Epochs,
		BatchSize:  s.opt.BatchSize,
		LR:         s.opt.LR,
		FixedVth:   s.opt.FixedVth,
		ClipNorm:   s.opt.ClipNorm,
		Rng:        rng,
		Engine:     s.opt.Engine,
		Replicas:   s.opt.Replicas,
		MicroBatch: s.opt.MicroBatch,
		Progress:   s.opt.Progress,
	})
	if err != nil {
		return nil, err
	}
	out.PrunedFraction = rep.PrunedFraction
	out.Vths = rep.Vths
	out.Report = rep
	if s.method != FaP {
		out.RetrainEpochs = s.opt.Epochs
	}
	return out, nil
}
