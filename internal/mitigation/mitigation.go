package mitigation

import (
	"fmt"
	"math/rand"
	"sort"

	"falvolt/internal/faults"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// Mitigation salvages a trained network deployed on faulty hardware.
// Apply transforms the model and/or the array's deployment in place so
// that subsequent inference on arr tolerates the faults described by
// fm; it does not evaluate (callers measure accuracy before and after).
// fm is the concrete accumulator-output fault map, and may be nil or
// empty when the injected fault class is not PE-addressable (memory
// bit-flips, transient strikes) — strategies that need per-PE
// coordinates then degrade to their no-op or global behaviour.
type Mitigation interface {
	// Name returns the registry name ("falvolt", "respawn", ...).
	Name() string
	// Apply salvages model deployed on arr against fm, in place. The
	// model may be retrained (snapshot with Network.State first if the
	// original is still needed) and the network is left deployed on arr.
	Apply(model *snn.Model, arr *systolic.Array, fm *faults.Map) (*Outcome, error)
	// Describe returns a one-line human-readable summary.
	Describe() string
}

// Outcome summarises what a mitigation did — the per-cell quantities
// the salvage benchmark reports alongside recovered accuracy.
type Outcome struct {
	// Mitigation is the strategy's registry name.
	Mitigation string
	// RetrainEpochs is the number of retraining epochs spent (0 for the
	// zero-retraining strategies).
	RetrainEpochs int
	// PrunedFraction is the overall fraction of weights pruned (retrain
	// family only).
	PrunedFraction float64
	// RemappedLayers counts GEMM layers whose weight-to-PE mapping was
	// permuted (respawn/rescuesnn).
	RemappedLayers int
	// BypassedPEs counts PEs individually bypassed via the per-PE mux
	// mask (rescuesnn).
	BypassedPEs int
	// ClampedLayers counts GEMM layers given a range restriction
	// (softsnn).
	ClampedLayers int
	// Vths is the per-spiking-layer threshold voltage after mitigation,
	// when the strategy touches thresholds.
	Vths []float64
	// Report carries the full retraining report for the retrain family
	// (nil for the others).
	Report *Report
}

// Options carries the shared strategy configuration. Zero values select
// documented defaults; strategies ignore fields they do not use.
type Options struct {
	// Train and Test drive the retraining family. Test doubles as the
	// retrain family's final-evaluation set.
	Train, Test []snn.Sample
	// Epochs is the retraining budget (retrain family; forced to 0 for
	// FaP).
	Epochs int
	// BatchSize and LR configure the retraining loop (0 selects the
	// Algorithm-1 defaults, 16 and 1e-3).
	BatchSize int
	LR        float64
	// ClipNorm caps the global gradient norm during retraining.
	ClipNorm float64
	// FixedVth, when non-zero, forces every spiking layer to this
	// threshold before retraining (fapit only).
	FixedVth float64
	// Rng drives batch shuffling; when nil a generator seeded with Seed
	// is constructed (0 selects seed 1).
	Rng  *rand.Rand
	Seed int64
	// Engine is the compute backend (nil selects tensor.Default()).
	Engine tensor.Backend
	// BypassBit is rescuesnn's severity threshold: PEs with a stuck bit
	// at or above this position are bypassed. 0 selects the array
	// format's first integer bit (faults at or above the binary point
	// trigger bypass); fractional-bit-only faults are left to the remap.
	BypassBit int
	// Replicas and MicroBatch configure the data-parallel replica
	// training engine for the retraining family (see snn.TrainConfig;
	// every configuration runs that engine — zero replicas means one
	// lane). Replica count never changes results.
	Replicas   int
	MicroBatch int
	// Progress observes retraining (epoch, mean loss); nil is silent —
	// the library default. cmd tools install a printer.
	Progress func(epoch int, loss float64)
}

// Names lists the registered mitigation names, sorted — the mitigation
// counterpart of faults.ModelNames.
func Names() []string {
	names := []string{"fap", "fapit", "falvolt", "respawn", "rescuesnn", "softsnn"}
	sort.Strings(names)
	return names
}

// New constructs a mitigation by registry name — the counterpart of
// faults.ModelByName. The empty name selects "falvolt" (the paper's
// contribution).
func New(name string, opt Options) (Mitigation, error) {
	switch name {
	case "fap":
		return &retrainStrategy{method: FaP, opt: opt}, nil
	case "fapit":
		return &retrainStrategy{method: FaPIT, opt: opt}, nil
	case "", "falvolt":
		return &retrainStrategy{method: FalVolt, opt: opt}, nil
	case "respawn":
		return &respawn{opt: opt}, nil
	case "rescuesnn":
		return &rescueSNN{opt: opt}, nil
	case "softsnn":
		return &softSNN{opt: opt}, nil
	}
	return nil, fmt.Errorf("mitigation: unknown mitigation %q (want %v)", name, Names())
}

// pristine reports whether the array carries no fault state of any
// class, so a strategy's no-op fast path is safe.
func pristine(arr *systolic.Array, fm *faults.Map) bool {
	if fm != nil && len(fm.Faults) > 0 {
		return false
	}
	if w := arr.WeightFaultMap(); w != nil && len(w.Faults) > 0 {
		return false
	}
	if m := arr.MemoryFaults(); m != nil {
		for _, r := range m.BitRate {
			if r > 0 {
				return false
			}
		}
	}
	if t := arr.Transient(); t != nil && len(t.Strikes) > 0 {
		return false
	}
	return true
}

// ensureMap substitutes an empty array-shaped map for a nil fm so
// strategies can treat "no map" and "empty map" identically.
func ensureMap(arr *systolic.Array, fm *faults.Map) *faults.Map {
	if fm != nil {
		return fm
	}
	rows, cols := arr.Dims()
	return faults.NewMap(rows, cols)
}
