package mitigation_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/fixed"
	"falvolt/internal/mitigation"
	"falvolt/internal/snn"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// TestNamesMatchSpecKinds pins the contract between the spec layer and
// this package: spec.MitigationKinds spells out the registry by hand (so
// spec stays free of the snn/systolic dependency tree), and this test is
// what keeps the two lists from drifting.
func TestNamesMatchSpecKinds(t *testing.T) {
	if got, want := mitigation.Names(), spec.MitigationKinds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("mitigation.Names() = %v, spec.MitigationKinds() = %v — update spec/mitigation.go", got, want)
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := mitigation.New("nosuch", mitigation.Options{}); err == nil {
		t.Fatal("unknown mitigation name should error")
	}
	m, err := mitigation.New("", mitigation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "falvolt" {
		t.Fatalf("empty name resolved to %q, want falvolt", m.Name())
	}
	for _, name := range mitigation.Names() {
		m, err := mitigation.New(name, mitigation.Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, m.Name())
		}
		if m.Describe() == "" {
			t.Errorf("%s has no description", name)
		}
	}
}

// noopHarness is a small trained model shared by the no-op invariant
// runs; every evaluation restores the baseline before deploying.
type noopHarness struct {
	model    *snn.Model
	baseline *snn.NetworkState
	train    []snn.Sample
	test     []snn.Sample
}

var (
	noopShared *noopHarness
	noopErr    error
	noopOnce   sync.Once
)

func newNoopHarness(t *testing.T) *noopHarness {
	t.Helper()
	noopOnce.Do(func() {
		rng := rand.New(rand.NewSource(21))
		ms := snn.MNISTSpec()
		ms.T = 2
		ms.EncoderC = 4
		ms.BlockC = []int{8, 8}
		ms.FCHidden = 32
		model, err := snn.Build(ms, rng)
		if err != nil {
			noopErr = err
			return
		}
		ds, err := datasets.SyntheticMNIST(datasets.Config{Train: 64, Test: 32, T: ms.T, Seed: 9})
		if err != nil {
			noopErr = err
			return
		}
		if _, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
			Epochs: 1, LR: 0.02, Rng: rand.New(rand.NewSource(22)),
		}); err != nil {
			noopErr = err
			return
		}
		noopShared = &noopHarness{
			model: model, baseline: model.Net.State(),
			train: ds.Train, test: ds.Test,
		}
	})
	if noopErr != nil {
		t.Fatal(noopErr)
	}
	return noopShared
}

// spikeCounts snapshots every PE's internal spike counter.
func spikeCounts(arr *systolic.Array, side int) []uint64 {
	out := make([]uint64, 0, side*side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			out = append(out, arr.SpikeCount(r, c))
		}
	}
	return out
}

// TestNoOpInvariant is the zoo's safety property: at fault rate zero
// (an empty fault map on a pristine array), every mitigation must leave
// the deployment observationally identical to the unmitigated baseline —
// bit-identical accuracy AND bit-identical per-PE spike counts — across
// saturate/wraparound arithmetic and serial/parallel engines. Retraining
// strategies are handed a non-zero epoch budget precisely to prove they
// skip it when there is nothing to repair.
func TestNoOpInvariant(t *testing.T) {
	h := newNoopHarness(t)
	const side, batch = 8, 16
	engines := []struct {
		name string
		eng  tensor.Backend
	}{
		{"serial", tensor.Serial()},
		{"parallel", tensor.NewParallel(2)},
	}
	for _, sat := range []bool{true, false} {
		for _, e := range engines {
			cfg := systolic.Config{
				Rows: side, Cols: side, Format: fixed.Q16x16,
				Saturate: sat, CountSpikes: true, Engine: e.eng,
			}
			// Fresh array per evaluation: spike counters accumulate for the
			// array's lifetime, so comparisons need matched histories.
			eval := func(prep func(arr *systolic.Array) *mitigation.Outcome) (float64, []uint64) {
				arr, err := systolic.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				net := h.model.Net
				net.Undeploy()
				if err := net.LoadState(h.baseline); err != nil {
					t.Fatal(err)
				}
				out := prep(arr)
				if out != nil && out.RetrainEpochs != 0 {
					t.Errorf("pristine salvage spent %d retraining epochs", out.RetrainEpochs)
				}
				acc := snn.EvaluateWith(e.eng, net, h.test, batch)
				counts := spikeCounts(arr, side)
				net.Undeploy()
				return acc, counts
			}

			wantAcc, wantCounts := eval(func(arr *systolic.Array) *mitigation.Outcome {
				h.model.Net.Deploy(arr)
				return nil
			})
			for _, name := range mitigation.Names() {
				mit, err := mitigation.New(name, mitigation.Options{
					Train: h.train, Test: h.test,
					Epochs: 2, BatchSize: 16, LR: 0.01, ClipNorm: 5,
					Rng: rand.New(rand.NewSource(77)), Engine: e.eng,
				})
				if err != nil {
					t.Fatal(err)
				}
				acc, counts := eval(func(arr *systolic.Array) *mitigation.Outcome {
					out, err := mit.Apply(h.model, arr, nil)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					return out
				})
				if acc != wantAcc {
					t.Errorf("sat=%v engine=%s %s: accuracy %v != baseline %v at fault rate 0",
						sat, e.name, name, acc, wantAcc)
				}
				if !reflect.DeepEqual(counts, wantCounts) {
					t.Errorf("sat=%v engine=%s %s: per-PE spike counts diverge from baseline at fault rate 0",
						sat, e.name, name)
				}
			}
		}
	}
}
