// Package mitigation is the salvage-strategy zoo: pluggable ways to
// turn a trained SNN plus a concrete fault map into a deployment that
// still classifies, mirroring how internal/faults makes the fault side
// pluggable. Each strategy implements the Mitigation interface
// (Name/Apply/Describe) and is spec-addressable by name via New:
//
//   - "fap", "fapit", "falvolt" — the paper's retraining family
//     (Algorithm 1): fault-aware pruning, optionally retraining the
//     surviving weights, with FalVolt additionally learning per-layer
//     threshold voltages. The engine lives in this package; internal/core
//     re-exports it unchanged for the historical API.
//   - "respawn" — ReSpawn-style fault-aware weight-to-PE mapping
//     (Putra et al.): permute GEMM rows/columns so the most significant
//     weight lines land on the least-faulty PE lines. Zero retraining;
//     the permutation is undone on the way out so the network is
//     numerically unchanged where no fault intervenes.
//   - "rescuesnn" — RescueSNN-style mapping plus selective bypass
//     (arXiv:2304.04041): PEs with faults at or above the binary point
//     are individually bypassed (their products pruned), then the
//     remaining layout is remapped as in ReSpawn.
//   - "softsnn" — SoftSNN-style zero-retraining range restriction:
//     clamp each neuron's membrane-current contribution to the bounds
//     reachable by its fault-free weight row, so a fault can no longer
//     push an accumulator output outside physically-meaningful range.
//
// All strategies share the no-op invariant: applied to a fault-free
// array they leave accuracy and per-PE spike counts bit-identical to an
// unmitigated deployment. The salvage campaign in internal/core races
// every (fault model x rate x mitigation x seed) cell head-to-head.
package mitigation
