package mitigation

import (
	"fmt"
	"math"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// softSNN is SoftSNN-style zero-retraining range restriction: each
// output neuron's array contribution is clamped to the interval its
// fault-free weight row can actually produce under binary (spike)
// inputs — [sum of negative weights, sum of positive weights] in the
// array's fixed-point format. A stuck or flipped high bit that launches
// an accumulator output far outside that reachable range is pulled back
// to the boundary instead of swamping the membrane potential. Fault-free
// outputs are subset sums of the weight row and already lie inside the
// interval, so the clamp is exact there — the no-op invariant holds by
// construction. Only spike-input (binary) layers get a clamp; the
// analog-input encoder layer's reachable range is input-dependent.
type softSNN struct {
	opt Options
}

func (s *softSNN) Name() string { return "softsnn" }

func (s *softSNN) Describe() string {
	return "range restriction: per-neuron clamp to the fault-free reachable output interval, zero retraining"
}

func (s *softSNN) Apply(model *snn.Model, arr *systolic.Array, fm *faults.Map) (*Outcome, error) {
	fm = ensureMap(arr, fm)
	if err := arr.InjectFaults(fm); err != nil {
		return nil, fmt.Errorf("mitigation: inject faults: %w", err)
	}
	arr.SetBypass(false)
	if s.opt.Engine != nil {
		model.Net.SetEngine(s.opt.Engine)
	}
	model.Net.Deploy(arr)
	f := arr.Config().Format
	clamped := 0
	for _, g := range model.Net.GEMMLayers() {
		d := g.Deployment()
		if d == nil || !d.Binary {
			continue
		}
		m, k := g.GEMMShape()
		w := g.WeightMatrix()
		lo := make([]float32, m)
		hi := make([]float32, m)
		for mi := 0; mi < m; mi++ {
			var pos, neg int64
			row := w.Data[mi*k : (mi+1)*k]
			for _, v := range row {
				word := f.Quantize(float64(v))
				if word > 0 {
					pos += int64(word)
				} else {
					neg += int64(word)
				}
			}
			// The saturating accumulator can never leave the word's range,
			// so the reachable interval is capped there too.
			if pos > math.MaxInt32 {
				pos = math.MaxInt32
			}
			if neg < math.MinInt32 {
				neg = math.MinInt32
			}
			hi[mi] = float32(f.Dequantize(fixed.Word(pos)))
			lo[mi] = float32(f.Dequantize(fixed.Word(neg)))
		}
		d.ClampLo, d.ClampHi = lo, hi
		g.SetDeployment(d)
		clamped++
	}
	return &Outcome{Mitigation: s.Name(), ClampedLayers: clamped}, nil
}
