package mitigation

import (
	"fmt"

	"falvolt/internal/faults"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// rescueSNN is RescueSNN-style salvage (arXiv:2304.04041): PEs whose
// stuck bits reach the integer part of the accumulator word are
// individually bypassed via the per-PE mux mask — their products are
// pruned rather than catastrophically corrupted — and the surviving
// layout is then remapped ReSpawn-style against the full fault map, so
// the least significant weight lines are the ones steered onto the
// bypassed (pruned) and mildly-faulty cells. Zero retraining.
type rescueSNN struct {
	opt Options
}

func (r *rescueSNN) Name() string { return "rescuesnn" }

func (r *rescueSNN) Describe() string {
	return "selective per-PE bypass of catastrophically-faulty cells + fault-aware remapping, zero retraining"
}

func (r *rescueSNN) Apply(model *snn.Model, arr *systolic.Array, fm *faults.Map) (*Outcome, error) {
	fm = ensureMap(arr, fm)
	if err := arr.InjectFaults(fm); err != nil {
		return nil, fmt.Errorf("mitigation: inject faults: %w", err)
	}
	arr.SetBypass(false)
	bit := r.opt.BypassBit
	if bit <= 0 {
		bit = int(arr.Config().Format.FracBits)
	}
	rows, cols := arr.Dims()
	mask := make([]bool, rows*cols)
	masked := false
	for _, f := range fm.Faults {
		if int(f.Bit) >= bit {
			mask[f.Row*cols+f.Col] = true
			masked = true
		}
	}
	if masked {
		if err := arr.SetBypassMask(mask); err != nil {
			return nil, fmt.Errorf("mitigation: %w", err)
		}
	}
	if r.opt.Engine != nil {
		model.Net.SetEngine(r.opt.Engine)
	}
	model.Net.Deploy(arr)
	n, err := remapLayers(model.Net, arr, fm)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Mitigation:     r.Name(),
		RemappedLayers: n,
		BypassedPEs:    arr.BypassedPEs(),
	}, nil
}
