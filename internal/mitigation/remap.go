package mitigation

import (
	"fmt"

	"falvolt/internal/faults"
	"falvolt/internal/mapping"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// respawn is ReSpawn-style fault-aware weight-to-PE mapping (Putra et
// al.): each GEMM layer's rows and columns are permuted so the most
// significant weight lines (largest sum of |w|) land on the PE lines
// with the least fault severity (sum of 2^Bit over stuck bits). Faulty
// PEs keep computing — no bypass, no retraining — but they now corrupt
// the least important products. Zero retraining epochs; on a clean
// array the derived permutation is the identity and the deployment is
// bit-identical to baseline.
type respawn struct {
	opt Options
}

func (r *respawn) Name() string { return "respawn" }

func (r *respawn) Describe() string {
	return "fault-aware weight-to-PE remapping: significant rows/columns steered off faulty PEs, zero retraining"
}

func (r *respawn) Apply(model *snn.Model, arr *systolic.Array, fm *faults.Map) (*Outcome, error) {
	fm = ensureMap(arr, fm)
	if err := arr.InjectFaults(fm); err != nil {
		return nil, fmt.Errorf("mitigation: inject faults: %w", err)
	}
	arr.SetBypass(false)
	if r.opt.Engine != nil {
		model.Net.SetEngine(r.opt.Engine)
	}
	model.Net.Deploy(arr)
	n, err := remapLayers(model.Net, arr, fm)
	if err != nil {
		return nil, err
	}
	return &Outcome{Mitigation: r.Name(), RemappedLayers: n}, nil
}

// remapLayers derives and installs a fault-aware permutation for every
// deployed GEMM layer, returning how many layers were actually
// permuted. The network must already be deployed on arr.
func remapLayers(net *snn.Network, arr *systolic.Array, fm *faults.Map) (int, error) {
	remapped := 0
	for i, g := range net.GEMMLayers() {
		d := g.Deployment()
		if d == nil {
			return 0, fmt.Errorf("mitigation: layer %d not deployed", i)
		}
		m, k := g.GEMMShape()
		rm := mapping.DeriveRemap(fm, m, k, g.WeightMatrix())
		if rm.Identity() {
			continue
		}
		d.MPerm, d.KPerm = rm.MPerm, rm.KPerm
		g.SetDeployment(d) // reinstall: quantize into the permuted layout
		remapped++
	}
	return remapped, nil
}
