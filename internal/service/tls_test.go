package service

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
)

// writeTestCert mints a self-signed ECDSA cert for 127.0.0.1; the cert
// file doubles as the clients' CA bundle.
func writeTestCert(t *testing.T, dir string) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "falvolt-service-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile,
		pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile,
		pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

// TestServiceTLS runs a complete submit → execute → fetch cycle over
// HTTPS: the service serves with a self-signed cert, the catalog client
// trusts it via NewClientTLS, and the worker via WorkerConfig.TLSCA.
func TestServiceTLS(t *testing.T) {
	certFile, keyFile := writeTestCert(t, t.TempDir())
	svc, stop := startService(t, Config{
		StateDir: t.TempDir(), Shards: 2, LeaseTTL: 10 * time.Second,
		TLSCert: certFile, TLSKey: keyFile,
	})
	defer stop()
	if !strings.HasPrefix(svc.URL(), "https://") {
		t.Fatalf("TLS service URL = %q, want https://", svc.URL())
	}

	cl, err := NewClientTLS(svc.URL(), testToken, certFile)
	if err != nil {
		t.Fatal(err)
	}
	specJSON := selftestSpec(8, 1, "tls-run")
	sub, err := cl.Submit(specJSON, 0)
	if err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: svc.URL(),
		Token:       testToken,
		Name:        "tls-sw",
		Runner:      countingRunner{n: &executed, inner: campaign.PoolRunner{}},
		TLSCA:       certFile,
		Poll:        10 * time.Millisecond,
		Retries:     300,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	sum, err := cl.Watch(sub.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if sum.State != RunDone {
		t.Fatalf("run finished as %s, want done", sum.State)
	}
	assertIdentical(t, specJSON, cl, sub.RunID)

	// An untrusting client must be rejected by certificate verification.
	plain := NewClient(svc.URL(), testToken)
	if _, err := plain.List(); err == nil {
		t.Error("client without CA trust should fail against a self-signed https service")
	}
}
