package service_test

import (
	"testing"

	"falvolt/internal/service"

	_ "falvolt/internal/core"
	_ "falvolt/internal/experiments"
)

// FuzzDecodeSubmit: arbitrary bytes through the submit-endpoint
// decoder, the service's only write surface reachable from outside the
// worker protocol. Malformed envelopes and specs must be rejected with
// an error, never a panic, and whatever is accepted must satisfy the
// endpoint's invariants (a decoded spec, an in-bounds priority).
func FuzzDecodeSubmit(f *testing.F) {
	seeds := []string{
		`{"spec": {"version": 1, "kind": "selftest", "selftest": {"trials": 4}}}`,
		`{"spec": {"version": 1, "kind": "selftest", "name": "smoke", "labels": {"team": "rel"}}, "priority": 10}`,
		`{"spec": {"version": 1, "kind": "selftest", "name": "a\u0000b"}}`,
		`{"spec": {"version": 1, "kind": "faultmodel", "faultModel": {"model": {"kind": "bitflip"}}}, "priority": 100}`,
		`{"spec": {"version": 1, "kind": "selftest"}, "priority": 101}`,
		`{"spec": {"version": 1, "kind": "selftest"}, "priority": -101}`,
		`{"spec": {"version": 1, "kind": "selftest"}, "priority": -1}`,
		`{"spec": {"version": 1, "kind": "selftest"}, "unknown": true}`,
		`{"spec": {"version": 1, "kind": "selftest"}} trailing`,
		`{"spec": null}`,
		`{"priority": 5}`,
		`{}`,
		`not json`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, sp, err := service.DecodeSubmit(data)
		if err != nil {
			return // rejected is fine; panicking is the bug
		}
		if req == nil || sp == nil {
			t.Fatalf("accepted submit returned nil request/spec: %v / %v", req, sp)
		}
		if req.Priority < -service.MaxPriority || req.Priority > service.MaxPriority {
			t.Fatalf("accepted submit carries out-of-bounds priority %d", req.Priority)
		}
		if _, err := sp.Fingerprint(); err != nil {
			t.Fatalf("accepted spec does not fingerprint: %v", err)
		}
	})
}
