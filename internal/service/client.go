package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"falvolt/internal/cluster"
)

// Client talks to a campaign service's catalog endpoints (the worker
// protocol side lives in cluster.Worker). Used by the `campaign
// submit` / `campaign runs` / `campaign drain` subcommands and tests.
type Client struct {
	base  string
	token string
	hc    *http.Client
}

// NewClient builds a catalog client for one service.
func NewClient(base, token string) *Client {
	return &Client{
		base:  strings.TrimRight(base, "/"),
		token: token,
		// Generous timeout: watch long-polls hold the connection open
		// for up to 25s per round.
		hc: &http.Client{Timeout: 60 * time.Second},
	}
}

// NewClientTLS builds a catalog client that verifies an https:// service
// against the PEM CA bundle at caFile (empty = NewClient's behavior:
// system roots).
func NewClientTLS(base, token, caFile string) (*Client, error) {
	cl := NewClient(base, token)
	hc, err := cluster.HTTPClient(caFile, 60*time.Second)
	if err != nil {
		return nil, err
	}
	cl.hc = hc
	return cl, nil
}

// do sends one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses surface the server's message.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("service: marshal %s request: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("service: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("service: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("service: read %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		if e.Error != "" {
			return fmt.Errorf("service: %s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service: decode %s response: %w", path, err)
	}
	return nil
}

// Submit enqueues a spec and returns the admitted run.
func (c *Client) Submit(specJSON []byte, priority int) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.do("POST", "/v1/runs", SubmitRequest{Spec: specJSON, Priority: priority}, &resp)
	return resp, err
}

// List returns every catalog entry in submission order.
func (c *Client) List() (ListResponse, error) {
	var resp ListResponse
	err := c.do("GET", "/v1/runs", nil, &resp)
	return resp, err
}

// Get returns one run's summary.
func (c *Client) Get(id string) (RunSummary, error) {
	var resp RunSummary
	err := c.do("GET", "/v1/runs/"+url.PathEscape(id), nil, &resp)
	return resp, err
}

// Watch long-polls until the run reaches a terminal state.
func (c *Client) Watch(id string) (RunSummary, error) {
	for {
		var resp RunSummary
		if err := c.do("GET", "/v1/runs/"+url.PathEscape(id)+"?watch=25s", nil, &resp); err != nil {
			return RunSummary{}, err
		}
		if resp.State != RunRunning {
			return resp, nil
		}
	}
}

// Results fetches a completed run's checkpoint JSONL (header plus
// results sorted by trial ID) — mergeable like any shard file.
func (c *Client) Results(id string) ([]byte, error) {
	req, err := http.NewRequest("GET", c.base+"/v1/runs/"+url.PathEscape(id)+"/results", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: fetch results: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service: read results: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		if e.Error != "" {
			return nil, fmt.Errorf("service: fetch results: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("service: fetch results: HTTP %d", resp.StatusCode)
	}
	return data, nil
}

// Cancel cancels a run (idempotent) and returns its summary.
func (c *Client) Cancel(id string) (RunSummary, error) {
	var resp RunSummary
	err := c.do("POST", "/v1/runs/"+url.PathEscape(id)+"/cancel", struct{}{}, &resp)
	return resp, err
}

// Drain marks workers (by ID or display name) for graceful drain.
func (c *Client) Drain(worker string) (DrainResponse, error) {
	var resp DrainResponse
	err := c.do("POST", "/v1/drain", DrainRequest{Worker: worker}, &resp)
	return resp, err
}

// Status returns the service snapshot (catalog, fleet, scale advice).
func (c *Client) Status() (ServiceStatus, error) {
	var resp ServiceStatus
	err := c.do("GET", "/v1/status", nil, &resp)
	return resp, err
}
