package service

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/spec"
)

// accumulatedPlanner names the policy of plans derived from the
// service's accumulating cross-run timing (vs a file-backed
// "balance:<path>" source).
const accumulatedPlanner = "balance:accumulated"

// Config configures a campaign service.
type Config struct {
	// Addr is the listen address (":9191", "127.0.0.1:0" for tests).
	Addr string
	// StateDir roots the service's durable state: a lock file plus one
	// directory per run under <StateDir>/runs/. Required.
	StateDir string
	// Token is the bearer credential every endpoint requires. Required:
	// a multi-tenant catalog must not be world-writable.
	Token string
	// Shards is the per-run shard count (0 = cluster.DefaultShards,
	// clamped to each run's trial count).
	Shards int
	// LeaseTTL is how long a shard lease survives without a heartbeat
	// (0 = cluster.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// CacheDir persists trained baselines between runs; passed to the
	// spec builder.
	CacheDir string
	// Retain caps how many terminal (done/failed/cancelled) runs the
	// catalog keeps: beyond it, the oldest terminal run directories are
	// deleted from disk and dropped from the catalog, at every terminal
	// transition and at recovery. In-flight runs are never touched.
	// 0 keeps everything.
	Retain int
	// TLSCert/TLSKey, when set (both required together), serve the
	// service over HTTPS with this PEM certificate and private key.
	// Clients with a private CA pass its bundle to NewClientTLS (or the
	// -tls-ca flag).
	TLSCert string
	TLSKey  string
	// Build constructs a campaign from an admitted spec (nil selects
	// spec.Build with CacheDir and Log; tests inject counters here).
	Build func(s *spec.Spec) (*spec.Built, error)
	// Log receives progress lines (nil silences).
	Log io.Writer

	// now overrides the clock in tests.
	now func() time.Time
}

// workerState is one registered worker's fleet entry.
type workerState struct {
	name     string
	lastSeen time.Time
	drain    bool
}

// Service is the long-lived multi-tenant coordinator. Construct with
// New, then Run blocks until the context is cancelled; submissions,
// worker traffic and catalog queries all arrive over HTTP.
type Service struct {
	cfg Config

	ready chan struct{}
	url   string

	mu      sync.Mutex
	runs    map[string]*run
	order   []string // run IDs in submission order
	leases  *cluster.LeaseTable[runShard]
	workers map[string]*workerState
	wseq    int
	rseq    int
	watchCh chan struct{} // closed and replaced on every catalog change
	dirLock *os.File
	closed  bool
}

// New builds a campaign service.
func New(cfg Config) *Service {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = cluster.DefaultLeaseTTL
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Service{
		cfg:     cfg,
		ready:   make(chan struct{}),
		runs:    make(map[string]*run),
		workers: make(map[string]*workerState),
		watchCh: make(chan struct{}),
	}
}

// Ready is closed once the service is listening; URL is valid from then
// on.
func (s *Service) Ready() <-chan struct{} { return s.ready }

// URL returns the service's base URL ("http://host:port"). Valid only
// after Ready.
func (s *Service) URL() string { return s.url }

func (s *Service) now() time.Time { return s.cfg.now() }

func (s *Service) buildFunc() func(*spec.Spec) (*spec.Built, error) {
	if s.cfg.Build != nil {
		return s.cfg.Build
	}
	return func(sp *spec.Spec) (*spec.Built, error) {
		return spec.Build(sp, spec.BuildOpts{CacheDir: s.cfg.CacheDir, Log: s.cfg.Log})
	}
}

// Run recovers the catalog from StateDir, serves until ctx is
// cancelled, then shuts down cleanly (in-flight runs stay journaled and
// resume on the next start).
func (s *Service) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cfg.Token == "" {
		return fmt.Errorf("service: a bearer token is required (Config.Token)")
	}
	if s.cfg.StateDir == "" {
		return fmt.Errorf("service: a state directory is required (Config.StateDir)")
	}
	if err := os.MkdirAll(filepath.Join(s.cfg.StateDir, runsDirName), 0o755); err != nil {
		return fmt.Errorf("service: state dir: %w", err)
	}
	// One service per state dir, enforced the same way the single-run
	// coordinator does: an flock a SIGKILLed process releases by dying.
	lock, err := os.OpenFile(filepath.Join(s.cfg.StateDir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("service: state dir lock: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return fmt.Errorf("service: state dir %s is already served (%w); stop the other service first", s.cfg.StateDir, err)
	}
	s.dirLock = lock
	defer func() {
		s.mu.Lock()
		s.closed = true
		for _, r := range s.runs {
			if r.wal != nil {
				r.wal.Close()
				r.wal = nil
			}
		}
		s.mu.Unlock()
		lock.Close()
	}()

	s.mu.Lock()
	err = s.recoverLocked()
	recovered := len(s.runs)
	s.mu.Unlock()
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.cfg.Addr, err)
	}
	scheme := "http"
	if s.cfg.TLSCert != "" || s.cfg.TLSKey != "" {
		tc, err := cluster.TLSServerConfig(s.cfg.TLSCert, s.cfg.TLSKey)
		if err != nil {
			ln.Close()
			return err
		}
		ln = tls.NewListener(ln, tc)
		scheme = "https"
	}
	s.url = scheme + "://" + ln.Addr().String()
	close(s.ready)
	srv := &http.Server{Handler: s.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	s.logf("service: listening on %s (state %s, lease TTL %v, %d runs recovered)\n",
		s.url, s.cfg.StateDir, s.cfg.LeaseTTL, recovered)

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case err := <-serveErr:
		runErr = fmt.Errorf("service: server: %w", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	return runErr
}

// recoverLocked rebuilds the catalog from <StateDir>/runs/*: terminal
// runs are listed from their status.json (results.jsonl loaded for the
// timing model), in-flight runs replay their WAL exactly as a restarted
// single-run coordinator does — shard table from the journal, recorded
// results replayed, open leases invalidated.
func (s *Service) recoverLocked() error {
	s.leases = cluster.NewLeaseTable[runShard](s.cfg.LeaseTTL, s.cfg.now)
	runsDir := filepath.Join(s.cfg.StateDir, runsDirName)
	entries, err := os.ReadDir(runsDir)
	if err != nil {
		return fmt.Errorf("service: read runs dir: %w", err)
	}
	type rec struct {
		st  runStatus
		dir string
	}
	var recs []rec
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(runsDir, e.Name())
		st, err := readRunStatus(dir)
		if err != nil {
			return fmt.Errorf("service: run dir %s: %w", e.Name(), err)
		}
		if st.ID != e.Name() {
			return fmt.Errorf("service: run dir %s holds status for %s", e.Name(), st.ID)
		}
		recs = append(recs, rec{st, dir})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].st.Seq < recs[j].st.Seq })
	grants := 0
	for _, rc := range recs {
		if rc.st.Seq > s.rseq {
			s.rseq = rc.st.Seq
		}
		r := &run{
			id: rc.st.ID, seq: rc.st.Seq, name: rc.st.Name, labels: rc.st.Labels,
			kind: rc.st.Kind, fp: rc.st.Fingerprint, priority: rc.st.Priority,
			dir: rc.dir, state: rc.st.State, failure: rc.st.Failure,
			info: cluster.CampaignInfo{Campaign: rc.st.Kind, Trials: rc.st.Trials},
		}
		if r.terminal() {
			// Listing needs only status.json; results.jsonl (if the run
			// completed) feeds the timing model and the fetch endpoint.
			if rc.st.State == RunDone {
				if _, results, err := campaign.ReadCheckpoint(filepath.Join(rc.dir, resultsFileName)); err == nil {
					r.results = results
				}
			}
			s.runs[r.id] = r
			s.order = append(s.order, r.id)
			continue
		}
		g, err := s.recoverRunLocked(r)
		if err != nil {
			return fmt.Errorf("service: recover run %s: %w", r.id, err)
		}
		grants += g
		s.runs[r.id] = r
		s.order = append(s.order, r.id)
	}
	// Fresh lease IDs must never collide with journaled ones, across
	// every run's journal.
	s.leases.SetSeq(grants)
	// Retention applies at recovery too: a service restarted over a
	// catalog that outgrew Retain while it was down prunes on startup,
	// so the cap holds across restarts, not just across transitions.
	s.pruneLocked()
	return nil
}

// pruneLocked enforces Config.Retain: when more than Retain terminal
// runs exist, the oldest (by admission sequence) are deleted — run
// directory removed from disk, entry dropped from the catalog. Running
// runs never count against the cap and are never touched. A directory
// that fails to delete stays listed, so the operator sees it rather
// than a silently leaking orphan.
func (s *Service) pruneLocked() {
	if s.cfg.Retain <= 0 {
		return
	}
	var term []*run
	for _, id := range s.order {
		if s.runs[id].terminal() {
			term = append(term, s.runs[id])
		}
	}
	if len(term) <= s.cfg.Retain {
		return
	}
	sort.Slice(term, func(i, j int) bool { return term[i].seq < term[j].seq })
	pruned := make(map[string]bool)
	for _, r := range term[:len(term)-s.cfg.Retain] {
		if err := os.RemoveAll(r.dir); err != nil {
			s.logf("service: prune run %s: %v\n", r.id, err)
			continue
		}
		delete(s.runs, r.id)
		pruned[r.id] = true
		s.logf("service: pruned run %s (%s, %s) under -retain %d\n", r.id, r.kind, r.state, s.cfg.Retain)
	}
	if len(pruned) == 0 {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if !pruned[id] {
			keep = append(keep, id)
		}
	}
	s.order = keep
}

// recoverRunLocked replays one in-flight run's WAL and returns its
// journaled grant count (for the service-wide lease sequence).
func (s *Service) recoverRunLocked(r *run) (int, error) {
	hdr, results, leaseEvents, err := campaign.ReadWAL(campaign.WALPath(r.dir))
	if err != nil {
		return 0, err
	}
	if hdr.Fingerprint != r.fp {
		return 0, fmt.Errorf("WAL journals spec %s, status.json says %s", hdr.Fingerprint, r.fp)
	}
	sp, err := spec.Decode([]byte(hdr.Spec))
	if err != nil {
		return 0, fmt.Errorf("decode journaled spec: %w", err)
	}
	built, err := s.buildFunc()(sp)
	if err != nil {
		return 0, fmt.Errorf("rebuild campaign: %w", err)
	}
	info, err := cluster.InfoOf(built.Campaign)
	if err != nil {
		return 0, err
	}
	trials, err := built.Campaign.Trials()
	if err != nil {
		return 0, err
	}
	r.built, r.info, r.trials = built, info, trials
	r.specJSON = []byte(hdr.Spec)
	r.recorded = make(map[int][]byte)
	r.remaining = len(trials)
	byID := make(map[int]campaign.Trial, len(trials))
	for _, t := range trials {
		byID[t.ID] = t
	}
	planned := make([]campaign.PlannedShard, len(hdr.Shards))
	assigned := make(map[int]string)
	for i, ws := range hdr.Shards {
		ps := campaign.PlannedShard{Label: ws.Label}
		for _, id := range ws.Trials {
			t, ok := byID[id]
			if !ok {
				return 0, fmt.Errorf("WAL shard %s names unknown trial %d", ws.Label, id)
			}
			if prev, dup := assigned[id]; dup {
				return 0, fmt.Errorf("WAL assigns trial %d to both shard %s and %s", id, prev, ws.Label)
			}
			assigned[id] = ws.Label
			ps.Trials = append(ps.Trials, t)
		}
		planned[i] = ps
	}
	plannerName := hdr.Planner
	if plannerName == "" {
		plannerName = "uniform"
	}
	r.installPlan(planned, plannerName)
	if len(r.trialShard) != len(trials) {
		return 0, fmt.Errorf("WAL shard table covers %d of %d trials", len(r.trialShard), len(trials))
	}
	// Replay journaled results. r.wal is still nil, so recordRunLocked
	// does not re-journal them; a replay that completes the run writes
	// results.jsonl and flips status.json right here.
	for _, res := range results {
		accepted, err := s.recordRunLocked(r, res)
		if err != nil {
			return 0, fmt.Errorf("replay result for trial %d: %w", res.TrialID, err)
		}
		if accepted {
			r.recovered++
		}
	}
	grants := campaign.GrantCount(leaseEvents)
	if r.terminal() {
		return grants, nil
	}
	wal, err := campaign.OpenWALAppend(campaign.WALPath(r.dir))
	if err != nil {
		return 0, err
	}
	r.wal = wal
	open := campaign.OpenLeases(leaseEvents)
	for _, l := range open {
		if err := r.wal.AppendLease(campaign.WALLease{Event: campaign.LeaseInvalidated, ID: l.ID}); err != nil {
			return 0, fmt.Errorf("journal lease invalidation: %w", err)
		}
		for _, st := range r.shards {
			if st.label == l.Shard && !st.done && len(st.remaining) > 0 {
				r.reassigned++
				break
			}
		}
	}
	s.logf("service: recovered run %s: %d journaled results, %d stale leases invalidated, %d/%d trials pending\n",
		r.id, r.recovered, len(open), r.remaining, len(trials))
	return grants, nil
}

// admit plans and journals a newly submitted run, then revisits the
// plans of idle runs with the refreshed timing model. The campaign is
// built by the caller (outside the lock: builds can be slow and must
// not stall worker heartbeats).
func (s *Service) admit(req *SubmitRequest, sp *spec.Spec, built *spec.Built) (SubmitResponse, error) {
	canonical, err := sp.Canonical()
	if err != nil {
		return SubmitResponse{}, err
	}
	fp, err := sp.Fingerprint()
	if err != nil {
		return SubmitResponse{}, err
	}
	info, err := cluster.InfoOf(built.Campaign)
	if err != nil {
		return SubmitResponse{}, err
	}
	trials, err := built.Campaign.Trials()
	if err != nil {
		return SubmitResponse{}, err
	}
	if len(trials) == 0 {
		return SubmitResponse{}, fmt.Errorf("service: spec %s enumerates no trials", fp)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SubmitResponse{}, fmt.Errorf("service: shutting down")
	}
	s.rseq++
	r := &run{
		id:  fmt.Sprintf("r%d-%s", s.rseq, fp[:8]),
		seq: s.rseq, name: sp.Name, labels: sp.Labels, kind: sp.Kind,
		priority: req.Priority, fp: fp, specJSON: canonical,
		state: RunRunning, built: built, info: info, trials: trials,
		recorded: make(map[int][]byte), remaining: len(trials),
	}
	r.dir = filepath.Join(s.cfg.StateDir, runsDirName, r.id)
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return SubmitResponse{}, fmt.Errorf("service: run dir: %w", err)
	}

	// Admission is a planning boundary: the accumulated cross-run
	// timing (if any) flows through the Planner seam for the new run...
	timing := s.timingLocked()
	var planner campaign.Planner = campaign.UniformPlanner{}
	plannerName := "uniform"
	if len(timing) > 0 {
		planner = campaign.BalancedPlanner{Timing: timing}
		plannerName = accumulatedPlanner
	}
	planned, err := planner.Plan(trials, campaign.ResolveShards(s.cfg.Shards, cluster.DefaultShards, len(trials)))
	if err != nil {
		return SubmitResponse{}, err
	}
	r.installPlan(planned, plannerName)

	if err := r.writeStatus(); err != nil {
		return SubmitResponse{}, err
	}
	wal, err := campaign.CreateWAL(campaign.WALPath(r.dir), campaign.WALHeader{
		Campaign: info.Campaign, Trials: info.Trials, Fingerprint: fp,
		Spec: string(canonical), Planner: plannerName, Shards: r.walShards(),
	})
	if err != nil {
		return SubmitResponse{}, err
	}
	r.wal = wal
	s.runs[r.id] = r
	s.order = append(s.order, r.id)
	s.logf("service: admitted run %s (%s, %d trials, %d shards, priority %d, planner %s)\n",
		r.id, displayName(r), len(trials), len(r.shards), r.priority, plannerName)

	// ...and back into any running run that has no leases outstanding.
	s.replanIdleLocked(r.id)
	s.bumpLocked()
	return SubmitResponse{RunID: r.id, Fingerprint: fp, Trials: len(trials), Shards: len(r.shards)}, nil
}

// replanIdleLocked re-plans every running, currently-unleased run
// against the latest accumulated timing, journaling each new table as a
// WAL plan record so replay restores the plan actually in force. Only
// runs with zero active leases move: a worker mid-shard holds trial
// membership the service must not shuffle under it.
func (s *Service) replanIdleLocked(excludeID string) {
	timing := s.timingLocked()
	if len(timing) == 0 {
		return
	}
	planner := campaign.BalancedPlanner{Timing: timing}
	for _, id := range s.order {
		r := s.runs[id]
		if id == excludeID || r.state != RunRunning || r.remaining == 0 {
			continue
		}
		if s.activeLeasesLocked(r) > 0 {
			continue
		}
		planned, err := planner.Plan(r.trials, len(r.shards))
		if err != nil {
			continue // keep the current plan; planning is advisory
		}
		r.installPlan(planned, accumulatedPlanner)
		if r.wal != nil {
			if err := r.wal.AppendPlan(campaign.WALPlan{Planner: accumulatedPlanner, Shards: r.walShards()}); err != nil {
				s.failRunLocked(r, fmt.Sprintf("journal re-plan: %v", err))
				continue
			}
		}
		s.logf("service: re-planned run %s across %d shards from accumulated timing (%d keys)\n",
			r.id, len(r.shards), len(timing))
	}
}

// recordRunLocked folds one result into a run: exactly-once recording,
// duplicate verification, journaling, shard bookkeeping, completion.
// Mirrors the single-run coordinator's recordLocked, per run.
func (s *Service) recordRunLocked(r *run, res campaign.Result) (bool, error) {
	shard, planned := r.trialShard[res.TrialID]
	if !planned {
		return false, nil // outside the run's trial set (stale worker checkpoint)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		return false, fmt.Errorf("service: marshal result for trial %d: %w", res.TrialID, err)
	}
	if prev, ok := r.recorded[res.TrialID]; ok {
		if string(prev) != string(enc) {
			return false, fmt.Errorf("service: conflicting results for trial %d of run %s — workers disagree about the campaign", res.TrialID, r.id)
		}
		return false, nil
	}
	if r.wal != nil {
		if err := r.wal.AppendResult(res); err != nil {
			return false, fmt.Errorf("service: journal result for trial %d: %w", res.TrialID, err)
		}
	}
	r.recorded[res.TrialID] = enc
	r.results = append(r.results, res)
	st := r.shards[shard]
	delete(st.remaining, res.TrialID)
	r.remaining--
	if len(st.remaining) == 0 && !st.done {
		st.done = true
		if l := s.leases.Holder(runShard{r.id, shard}); l != nil {
			s.leases.Release(l.ID)
			r.wal.AppendLease(campaign.WALLease{Event: campaign.LeaseReleased, ID: l.ID})
		}
		s.logf("service: run %s shard %s complete (%d/%d trials)\n", r.id, st.label, len(r.recorded), r.info.Trials)
	}
	if r.remaining == 0 {
		if err := s.finishRunLocked(r); err != nil {
			return true, err
		}
	}
	return true, nil
}

// finishRunLocked completes a run: write the full results checkpoint
// atomically, flip status.json to done, close the journal.
func (s *Service) finishRunLocked(r *run) error {
	header := campaign.NewHeader(r.built.Campaign, r.info.Trials, campaign.Shard{})
	if err := campaign.WriteCheckpointAtomic(filepath.Join(r.dir, resultsFileName), header, campaign.SortedResults(r.results)); err != nil {
		s.failRunLocked(r, fmt.Sprintf("write results checkpoint: %v", err))
		return err
	}
	r.state = RunDone
	s.releaseRunLeasesLocked(r, campaign.LeaseReleased)
	if r.wal != nil {
		r.wal.Close()
		r.wal = nil
	}
	if err := r.writeStatus(); err != nil {
		s.logf("service: run %s: %v\n", r.id, err)
	}
	s.logf("service: run %s complete (%d trials) -> %s\n", r.id, len(r.results), filepath.Join(r.dir, resultsFileName))
	s.pruneLocked()
	s.bumpLocked()
	return nil
}

// failRunLocked aborts one run (the rest of the catalog keeps going).
func (s *Service) failRunLocked(r *run, msg string) {
	if r.terminal() {
		return
	}
	r.state = RunFailed
	r.failure = msg
	s.releaseRunLeasesLocked(r, campaign.LeaseInvalidated)
	if r.wal != nil {
		r.wal.Close()
		r.wal = nil
	}
	if err := r.writeStatus(); err != nil {
		s.logf("service: run %s: %v\n", r.id, err)
	}
	s.logf("service: run %s failed: %s\n", r.id, msg)
	s.pruneLocked()
	s.bumpLocked()
}

// cancelRunLocked cancels one run: leases are revoked (workers observe
// OK=false on their next heartbeat and abandon the shard).
func (s *Service) cancelRunLocked(r *run) {
	if r.terminal() {
		return
	}
	r.state = RunCancelled
	s.releaseRunLeasesLocked(r, campaign.LeaseInvalidated)
	if r.wal != nil {
		r.wal.Close()
		r.wal = nil
	}
	if err := r.writeStatus(); err != nil {
		s.logf("service: run %s: %v\n", r.id, err)
	}
	s.logf("service: run %s cancelled\n", r.id)
	s.pruneLocked()
	s.bumpLocked()
}

// releaseRunLeasesLocked drops every active lease on the run's shards,
// journaling each drop while the WAL is still open.
func (s *Service) releaseRunLeasesLocked(r *run, event string) {
	for i := range r.shards {
		if l := s.leases.Holder(runShard{r.id, i}); l != nil {
			s.leases.Release(l.ID)
			if r.wal != nil {
				r.wal.AppendLease(campaign.WALLease{Event: event, ID: l.ID})
			}
		}
	}
}

// sweepLocked expires dead leases across every run, journaling each
// expiry into the owning run's WAL.
func (s *Service) sweepLocked() {
	for _, l := range s.leases.Sweep() {
		r := s.runs[l.Key.run]
		if r == nil {
			continue
		}
		if r.wal != nil {
			r.wal.AppendLease(campaign.WALLease{Event: campaign.LeaseExpired, ID: l.ID})
		}
		if l.Key.shard < len(r.shards) {
			st := r.shards[l.Key.shard]
			if !st.done && len(st.remaining) > 0 {
				r.reassigned++
				s.logf("service: lease on run %s shard %s expired with %d trials pending; reassigning\n",
					r.id, st.label, len(st.remaining))
			}
		}
	}
}

// bumpLocked wakes every watch long-poll: the channel is closed (all
// waiters resume and re-check) and replaced.
func (s *Service) bumpLocked() {
	close(s.watchCh)
	s.watchCh = make(chan struct{})
}

// displayName renders a run's human name for logs.
func displayName(r *run) string {
	if r.name != "" {
		return fmt.Sprintf("%s %q", r.kind, r.name)
	}
	return r.kind
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format, args...)
	}
}

// runSummariesLocked renders the catalog in submission order.
func (s *Service) runSummariesLocked() []RunSummary {
	out := make([]RunSummary, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id].summary())
	}
	return out
}

// parseWatch parses the ?watch=<duration> long-poll parameter (empty =
// no watch; bare "1"/"true" = default 25s).
func parseWatch(q string) (time.Duration, bool, error) {
	switch q {
	case "":
		return 0, false, nil
	case "1", "true":
		return 25 * time.Second, true, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil {
		return 0, false, fmt.Errorf("bad watch duration %q", q)
	}
	if d <= 0 || d > 5*time.Minute {
		return 0, false, fmt.Errorf("watch duration %v outside (0, 5m]", d)
	}
	return d, true, nil
}
