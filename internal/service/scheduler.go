package service

import (
	"strconv"

	"falvolt/internal/campaign"
)

// runShard keys the service-wide lease table: one table covers every
// run's shards, so one sweep policy and one lease-ID sequence span the
// whole catalog (cluster.LeaseTable is generic over exactly this).
type runShard struct {
	run   string
	shard int
}

// String keeps journaled lease IDs readable ("l7-sr2-ab12cd34/1").
func (k runShard) String() string { return k.run + "/" + strconv.Itoa(k.shard) }

// freeShard returns the index of the run's first schedulable shard —
// pending work, no active lease — or -1.
func (s *Service) freeShardLocked(r *run) int {
	for i, st := range r.shards {
		if st.done || len(st.remaining) == 0 {
			continue
		}
		if s.leases.Holder(runShard{r.id, i}) == nil {
			return i
		}
	}
	return -1
}

// activeLeasesLocked counts the run's shards currently under lease.
func (s *Service) activeLeasesLocked(r *run) int {
	n := 0
	for i := range r.shards {
		if s.leases.Holder(runShard{r.id, i}) != nil {
			n++
		}
	}
	return n
}

// pickLocked is the fair-share scheduler: among running runs with a
// free shard, the highest priority band wins outright; within the band
// the largest deficit wins, ties broken by submission order. Granting
// charges the chosen run the shard's cost (its pending trial count) and
// credits the same cost equally across every contender — including the
// chosen one — so over time each same-priority run receives an equal
// share of granted work regardless of how its shards are sized.
func (s *Service) pickLocked() (*run, int) {
	var group []*run
	shard := make(map[string]int)
	for _, id := range s.order {
		r := s.runs[id]
		if r.state != RunRunning {
			continue
		}
		i := s.freeShardLocked(r)
		if i < 0 {
			continue
		}
		if len(group) > 0 {
			if r.priority > group[0].priority {
				group = group[:0]
			} else if r.priority < group[0].priority {
				continue
			}
		}
		group = append(group, r)
		shard[r.id] = i
	}
	if len(group) == 0 {
		return nil, -1
	}
	chosen := group[0]
	for _, r := range group[1:] {
		if r.deficit > chosen.deficit {
			chosen = r // ties keep the earlier submission (s.order)
		}
	}
	idx := shard[chosen.id]
	cost := float64(len(chosen.shards[idx].remaining))
	chosen.deficit -= cost
	share := cost / float64(len(group))
	for _, r := range group {
		r.deficit += share
	}
	return chosen, idx
}

// openShardsLocked counts schedulable shards (pending work, no holder)
// across every running run — the demand half of scale-up advice.
func (s *Service) openShardsLocked() int {
	n := 0
	for _, r := range s.runs {
		if r.state != RunRunning {
			continue
		}
		for i, st := range r.shards {
			if !st.done && len(st.remaining) > 0 && s.leases.Holder(runShard{r.id, i}) == nil {
				n++
			}
		}
	}
	return n
}

// scaleUpLocked is the advice carried in heartbeat responses and
// /v1/status: how many ADDITIONAL workers could be leasing work right
// now. Idle live workers (no lease, not draining, seen within two lease
// TTLs) are expected to pick up open shards on their next poll, so they
// subtract from the demand.
func (s *Service) scaleUpLocked() int {
	open := s.openShardsLocked()
	if open == 0 {
		return 0
	}
	idle := 0
	cutoff := s.now().Add(-2 * s.cfg.LeaseTTL)
	for id, ws := range s.workers {
		if !ws.drain && ws.lastSeen.After(cutoff) && s.leases.Held(id) == 0 {
			idle++
		}
	}
	if idle >= open {
		return 0
	}
	return open - idle
}

// timingLocked aggregates per-key wall-clock across every run's
// recorded results — the accumulating cost model behind admission-time
// re-planning. Terminal runs recovered from disk contribute too: their
// results.jsonl was loaded at startup.
func (s *Service) timingLocked() []campaign.KeyTiming {
	var all []campaign.Result
	for _, r := range s.runs {
		all = append(all, r.results...)
	}
	return campaign.TimingByKey(all)
}
