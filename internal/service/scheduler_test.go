package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
)

// newTestScheduler builds a Service with just enough state to exercise
// pickLocked directly (no HTTP, no disk).
func newTestScheduler() *Service {
	s := New(Config{Token: "t", StateDir: "unused", LeaseTTL: time.Minute})
	s.leases = cluster.NewLeaseTable[runShard](time.Minute, time.Now)
	return s
}

// addRun installs a synthetic running run whose shards hold the given
// pending-trial counts.
func addRun(s *Service, id string, priority int, shardTrials ...int) *run {
	r := &run{id: id, priority: priority, state: RunRunning, recorded: map[int][]byte{}}
	next := 0
	for _, n := range shardTrials {
		st := &shardState{
			label:     fmt.Sprintf("%s/%d", id, len(r.shards)),
			remaining: map[int]campaign.Trial{},
		}
		for i := 0; i < n; i++ {
			st.trials = append(st.trials, campaign.Trial{ID: next})
			st.remaining[next] = campaign.Trial{ID: next}
			next++
		}
		r.shards = append(r.shards, st)
		r.remaining += n
	}
	s.runs[id] = r
	s.order = append(s.order, id)
	return r
}

// grantNext picks and leases one shard, returning the chosen run's ID
// ("" when nothing is schedulable).
func grantNext(s *Service) string {
	r, idx := s.pickLocked()
	if r == nil {
		return ""
	}
	s.leases.Grant("w", runShard{r.id, idx})
	return r.id
}

// TestPickPriorityBand: a higher-priority run wins every grant while it
// has free shards, regardless of accumulated deficit.
func TestPickPriorityBand(t *testing.T) {
	s := newTestScheduler()
	addRun(s, "lo", 0, 5, 5, 5)
	addRun(s, "hi", 10, 1, 1)

	want := []string{"hi", "hi", "lo", "lo", "lo", ""}
	for i, w := range want {
		if got := grantNext(s); got != w {
			t.Fatalf("grant %d went to %q, want %q", i, got, w)
		}
	}
}

// TestPickDeficitFairShare: within one priority band, deficit round
// robin balances granted WORK (pending-trial cost), not grant count — a
// run with big shards cedes several turns to a run with small ones.
func TestPickDeficitFairShare(t *testing.T) {
	s := newTestScheduler()
	addRun(s, "big", 0, 10, 10, 10, 10)
	addRun(s, "small", 0, 2, 2, 2, 2)

	// First grant ties on deficit and goes to the earlier submission
	// ("big", cost 10); "small" then wins repeatedly until its credit is
	// spent, after which only "big" remains schedulable.
	want := []string{"big", "small", "small", "small", "small", "big", "big", "big", ""}
	for i, w := range want {
		if got := grantNext(s); got != w {
			t.Fatalf("grant %d went to %q, want %q", i, got, w)
		}
	}
}

// TestPickSkipsLeasedAndTerminal: held shards and non-running runs are
// never schedulable.
func TestPickSkipsLeasedAndTerminal(t *testing.T) {
	s := newTestScheduler()
	r := addRun(s, "only", 0, 3, 3)
	dead := addRun(s, "dead", 50, 3)
	dead.state = RunFailed

	if got := grantNext(s); got != "only" {
		t.Fatalf("first grant went to %q, want the running run", got)
	}
	if got := grantNext(s); got != "only" {
		t.Fatalf("second grant went to %q, want the running run's other shard", got)
	}
	if got := grantNext(s); got != "" {
		t.Fatalf("third grant went to %q, want none (all shards leased)", got)
	}
	// Releasing a lease reopens the shard.
	l := s.leases.Holder(runShard{r.id, 0})
	if l == nil {
		t.Fatal("shard 0 should be held")
	}
	s.leases.Release(l.ID)
	if got := grantNext(s); got != "only" {
		t.Fatalf("post-release grant went to %q, want the reopened shard", got)
	}
}

// TestReplanAtAdmission: once the catalog has accumulated timing,
// admission plans new runs with the balanced planner AND re-plans idle
// runs, journaling the new table as a WAL plan record that replay
// honors.
func TestReplanAtAdmission(t *testing.T) {
	state := t.TempDir()
	svc, stop := startService(t, Config{StateDir: state, Shards: 4, LeaseTTL: 10 * time.Second})
	defer stop()
	cl := NewClient(svc.URL(), testToken)

	// First run admits with no timing on file: uniform plan.
	subA, err := cl.Submit(selftestSpec(12, 1, "first"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum, err := cl.Get(subA.RunID); err != nil || sum.Planner != "uniform" {
		t.Fatalf("first admission planner %q (%v), want uniform", sum.Planner, err)
	}

	// Complete it so timing accumulates, then retire the fleet so later
	// runs sit idle (re-planning only touches lease-free runs).
	var n atomic.Int64
	w := startWorker(t, svc.URL(), "pw", t.TempDir(), &n)
	if sum, err := cl.Watch(subA.RunID); err != nil || sum.State != RunDone {
		t.Fatalf("first run: %+v, %v", sum, err)
	}
	if _, err := cl.Drain("pw"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}

	// Second run admits against accumulated timing.
	subB, err := cl.Submit(selftestSpec(12, 1, "second"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum, err := cl.Get(subB.RunID); err != nil || sum.Planner != accumulatedPlanner {
		t.Fatalf("second admission planner %q (%v), want %s", sum.Planner, err, accumulatedPlanner)
	}

	// A third admission re-plans the idle second run: its WAL gains a
	// plan record, and replay folds that table into the header.
	if _, err := cl.Submit(selftestSpec(12, 1, "third"), 0); err != nil {
		t.Fatal(err)
	}
	walPath := campaign.WALPath(filepath.Join(state, runsDirName, subB.RunID))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"plan"`) {
		t.Fatalf("run %s WAL has no plan record after a later admission", subB.RunID)
	}
	hdr, _, _, err := campaign.ReadWAL(walPath)
	if err != nil {
		t.Fatalf("WAL with plan record does not replay: %v", err)
	}
	if hdr.Planner != accumulatedPlanner {
		t.Fatalf("replayed planner %q, want %s", hdr.Planner, accumulatedPlanner)
	}
	seen := map[int]bool{}
	for _, sh := range hdr.Shards {
		for _, id := range sh.Trials {
			if seen[id] {
				t.Fatalf("trial %d appears in two shards of the replayed plan", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("replayed plan covers %d trials, want 12", len(seen))
	}
}
