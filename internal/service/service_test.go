package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/spec"
)

const testToken = "test-token-1"

// startService runs a service in the background and waits for it to
// listen. The returned stop function cancels it and waits for exit.
func startService(t *testing.T, cfg Config) (*Service, func()) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Token == "" {
		cfg.Token = testToken
	}
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	select {
	case <-s.Ready():
	case err := <-done:
		cancel()
		t.Fatalf("service died before listening: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("service never listened")
	}
	return s, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("service did not shut down")
		}
	}
}

// countingRunner counts completed trial executions (sink deliveries
// attempted), so tests can assert no completed trial ever re-ran.
type countingRunner struct {
	n     *atomic.Int64
	inner campaign.Runner
}

func (c countingRunner) Run(ctx context.Context, camp campaign.Campaign, trials []campaign.Trial, sink func(campaign.Result) error) error {
	return c.inner.Run(ctx, camp, trials, func(r campaign.Result) error {
		c.n.Add(1)
		return sink(r)
	})
}

// startWorker runs a service-mode worker in the background, returning a
// channel carrying its exit error.
func startWorker(t *testing.T, url, name, ckptDir string, n *atomic.Int64) chan error {
	t.Helper()
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator:   url,
		Token:         testToken,
		Name:          name,
		Runner:        countingRunner{n: n, inner: campaign.PoolRunner{}},
		CheckpointDir: ckptDir,
		Poll:          10 * time.Millisecond,
		Retries:       300,
	})
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	return done
}

func selftestSpec(trials, delayMS int, name string) []byte {
	return []byte(fmt.Sprintf(
		`{"version": 1, "kind": "selftest", "seed": 7, "name": %q, "selftest": {"trials": %d, "delayMillis": %d}}`,
		name, trials, delayMS))
}

// singleProcessResults runs a spec in-process — the byte-identity
// reference for service runs.
func singleProcessResults(t *testing.T, specJSON []byte) (campaign.Header, []campaign.Result) {
	t.Helper()
	sp, err := spec.Decode(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.Build(sp, spec.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := campaign.Run(built.Campaign, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rr.Header, rr.Results
}

// fetchResults pulls a completed run's checkpoint and parses it.
func fetchResults(t *testing.T, cl *Client, id string) (campaign.Header, []campaign.Result) {
	t.Helper()
	data, err := cl.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fetched.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	hdr, results, err := campaign.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, results
}

// assertIdentical asserts a service run's fetched results match the
// single-process reference byte-for-byte (canonical result JSON; wall
// clock is execution-local and excluded).
func assertIdentical(t *testing.T, specJSON []byte, cl *Client, runID string) {
	t.Helper()
	refHdr, refResults := singleProcessResults(t, specJSON)
	gotHdr, gotResults := fetchResults(t, cl, runID)
	if !gotHdr.Compatible(refHdr) {
		t.Fatalf("fetched header %+v is not merge-compatible with single-process header %+v", gotHdr, refHdr)
	}
	ref, err := campaign.MarshalResults(refResults)
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.MarshalResults(gotResults)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("run %s results differ from single-process execution (%d vs %d results)",
			runID, len(gotResults), len(refResults))
	}
}

// TestTwoRunsSharedFleet is the tentpole's core promise: two specs
// submitted concurrently complete over one shared 2-worker fleet, each
// byte-identical to a single-process run, with every trial executed
// exactly once.
func TestTwoRunsSharedFleet(t *testing.T) {
	svc, stop := startService(t, Config{StateDir: t.TempDir(), Shards: 4, LeaseTTL: 10 * time.Second})
	defer stop()
	cl := NewClient(svc.URL(), testToken)

	specA := selftestSpec(24, 1, "run-a")
	specB := selftestSpec(16, 1, "run-b")
	subA, err := cl.Submit(specA, 0)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := cl.Submit(specB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if subA.RunID == subB.RunID {
		t.Fatal("distinct submissions must get distinct run IDs")
	}

	var executed atomic.Int64
	w1 := startWorker(t, svc.URL(), "tw1", t.TempDir(), &executed)
	w2 := startWorker(t, svc.URL(), "tw2", t.TempDir(), &executed)

	sumA, err := cl.Watch(subA.RunID)
	if err != nil {
		t.Fatal(err)
	}
	sumB, err := cl.Watch(subB.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if sumA.State != RunDone || sumB.State != RunDone {
		t.Fatalf("runs finished as %s / %s, want done / done", sumA.State, sumB.State)
	}
	if sumA.Name != "run-a" || sumB.Name != "run-b" {
		t.Fatalf("catalog names %q / %q, want run-a / run-b", sumA.Name, sumB.Name)
	}

	assertIdentical(t, specA, cl, subA.RunID)
	assertIdentical(t, specB, cl, subB.RunID)

	if got := executed.Load(); got != 24+16 {
		t.Fatalf("fleet executed %d trials, want exactly %d (no reruns)", got, 24+16)
	}

	// Drain both workers: each must exit cleanly instead of polling
	// forever against a long-lived service.
	for _, name := range []string{"tw1", "tw2"} {
		if _, err := cl.Drain(name); err != nil {
			t.Fatalf("drain %s: %v", name, err)
		}
	}
	for i, done := range []chan error{w1, w2} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("worker %d exited with %v, want nil after drain", i+1, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d did not exit after drain", i+1)
		}
	}
}

// TestRestartRecovery kills the service mid-flight (two runs in
// progress) and restarts it on the same state dir: both runs must
// finish with no completed trial ever re-executed — the service replays
// its per-run WALs and the worker's local checkpoints cover the window
// between execution and a successful push. One worker keeps the
// no-rerun assertion exact: with several workers, a shard reassigned
// across the restart may land on a worker that lacks the original
// holder's local checkpoint, legitimately re-running the handful of
// trials that completed during the outage but were never recorded.
func TestRestartRecovery(t *testing.T) {
	state := t.TempDir()
	svc1, stop1 := startService(t, Config{StateDir: state, Shards: 4, LeaseTTL: 10 * time.Second})
	cl1 := NewClient(svc1.URL(), testToken)

	specA := selftestSpec(20, 20, "ra")
	specB := selftestSpec(12, 20, "rb")
	subA, err := cl1.Submit(specA, 0)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := cl1.Submit(specB, 0)
	if err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	w1 := startWorker(t, svc1.URL(), "rw1", t.TempDir(), &executed)

	// Let some trials land, then kill the service (ctx cancel releases
	// the flock exactly as process death would).
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl1.Status()
		if err == nil {
			done := 0
			for _, r := range st.Runs {
				done += r.Done
			}
			if done >= 4 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop1()

	// Restart on the same state dir AND the same address: the surviving
	// workers keep retrying the original URL and must re-register
	// against the new incarnation (their stale IDs 403, they rejoin).
	addr := strings.TrimPrefix(svc1.URL(), "http://")
	svc2, stop2 := startService(t, Config{Addr: addr, StateDir: state, Shards: 4, LeaseTTL: 10 * time.Second})
	defer stop2()
	cl2 := NewClient(svc2.URL(), testToken)

	sumA, err := cl2.Watch(subA.RunID)
	if err != nil {
		t.Fatal(err)
	}
	sumB, err := cl2.Watch(subB.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if sumA.State != RunDone || sumB.State != RunDone {
		t.Fatalf("after restart runs are %s / %s, want done / done", sumA.State, sumB.State)
	}
	if sumA.Recovered == 0 && sumB.Recovered == 0 {
		t.Fatal("restart recovered no journaled results; the WAL replay did nothing")
	}

	assertIdentical(t, specA, cl2, subA.RunID)
	assertIdentical(t, specB, cl2, subB.RunID)

	if got := executed.Load(); got != 20+12 {
		t.Fatalf("fleet executed %d trials across the restart, want exactly %d (no reruns)", got, 20+12)
	}

	if _, err := cl2.Drain("rw1"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-w1:
		if err != nil {
			t.Fatalf("worker exited with %v, want nil after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after drain")
	}
}

// TestAuth rejects every endpoint without the bearer token, and rejects
// workers carrying the wrong one at registration.
func TestAuth(t *testing.T) {
	svc, stop := startService(t, Config{StateDir: t.TempDir()})
	defer stop()

	// No token / wrong token on a catalog endpoint.
	for _, tok := range []string{"", "wrong"} {
		req, _ := http.NewRequest("GET", svc.URL()+"/v1/runs", nil)
		if tok != "" {
			req.Header.Set("Authorization", "Bearer "+tok)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: HTTP %d, want 401", tok, resp.StatusCode)
		}
	}

	// A worker with the wrong token must fail fast, not retry forever.
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: svc.URL(), Token: "wrong", Poll: 10 * time.Millisecond, Retries: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Run(ctx); err == nil || !strings.Contains(err.Error(), "bearer token") {
		t.Fatalf("worker with wrong token: err = %v, want bearer-token rejection", err)
	}

	// A service without a token must refuse to start.
	s := New(Config{Addr: "127.0.0.1:0", StateDir: t.TempDir()})
	if err := s.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "token") {
		t.Fatalf("tokenless service: err = %v, want a token requirement", err)
	}
}

// TestCancel cancels an in-flight run; the fleet must survive and serve
// the next submission.
func TestCancel(t *testing.T) {
	svc, stop := startService(t, Config{StateDir: t.TempDir(), Shards: 2, LeaseTTL: time.Second})
	defer stop()
	cl := NewClient(svc.URL(), testToken)

	// Slow run: 200ms per trial gives cancel a wide window.
	sub, err := cl.Submit(selftestSpec(50, 200, "doomed"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	w := startWorker(t, svc.URL(), "cw1", t.TempDir(), &executed)

	if _, err := cl.Cancel(sub.RunID); err != nil {
		t.Fatal(err)
	}
	sum, err := cl.Watch(sub.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if sum.State != RunCancelled {
		t.Fatalf("cancelled run is %s, want %s", sum.State, RunCancelled)
	}
	if _, err := cl.Results(sub.RunID); err == nil {
		t.Fatal("fetching results of a cancelled run must fail")
	}

	// The worker lives on: a fresh run completes on the same fleet.
	sub2, err := cl.Submit(selftestSpec(6, 1, "after"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum, err := cl.Watch(sub2.RunID); err != nil || sum.State != RunDone {
		t.Fatalf("post-cancel run: %+v, %v; want done", sum, err)
	}
	if _, err := cl.Drain("cw1"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-w:
		if err != nil {
			t.Fatalf("worker exited with %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
}

// TestBrokenSpecFailsOnlyItsRun: a spec that builds at admission but
// whose trials fail deterministically must fail ITS run; the worker and
// the rest of the catalog keep going.
func TestBrokenSpecFailsOnlyItsRun(t *testing.T) {
	build := func(sp *spec.Spec) (*spec.Built, error) {
		built, err := spec.Build(sp, spec.BuildOpts{})
		if err != nil {
			return nil, err
		}
		return built, nil
	}
	svc, stop := startService(t, Config{StateDir: t.TempDir(), Shards: 2, LeaseTTL: 10 * time.Second, Build: build})
	defer stop()
	cl := NewClient(svc.URL(), testToken)

	sub, err := cl.Submit(selftestSpec(8, 1, "ok"), 0)
	if err != nil {
		t.Fatal(err)
	}

	// The worker's build rejects this fingerprint, simulating a spec
	// that builds on the service but not on the fleet (missing dataset,
	// bad cache): the worker must fail THAT run and keep serving.
	badSpec := selftestSpec(4, 1, "broken")
	badFP := fingerprintOf(t, badSpec)
	var executed atomic.Int64
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: svc.URL(), Token: testToken, Name: "bw1",
		Runner: countingRunner{n: &executed, inner: campaign.PoolRunner{}},
		Build: func(sp *spec.Spec) (*spec.Built, error) {
			fp, _ := sp.Fingerprint()
			if fp == badFP {
				return nil, fmt.Errorf("synthetic build failure")
			}
			return spec.Build(sp, spec.BuildOpts{})
		},
		Poll: 10 * time.Millisecond, Retries: 300,
	})
	wdone := make(chan error, 1)
	go func() { wdone <- w.Run(context.Background()) }()

	subBad, err := cl.Submit(badSpec, 50) // higher priority: leased first
	if err != nil {
		t.Fatal(err)
	}
	if sum, err := cl.Watch(subBad.RunID); err != nil || sum.State != RunFailed {
		t.Fatalf("broken run: %+v, %v; want failed", sum, err)
	}
	if sum, err := cl.Watch(sub.RunID); err != nil || sum.State != RunDone {
		t.Fatalf("healthy run: %+v, %v; want done", sum, err)
	}
	if _, err := cl.Drain("bw1"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wdone:
		if err != nil {
			t.Fatalf("worker exited with %v; a broken run must not kill the fleet", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
}

func fingerprintOf(t *testing.T, specJSON []byte) string {
	t.Helper()
	sp, err := spec.Decode(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := sp.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}
