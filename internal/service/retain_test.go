package service

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitTerminalCount polls the catalog until exactly want runs remain,
// all terminal.
func waitTerminalCount(t *testing.T, cl *Client, want int) []RunSummary {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		lst, err := cl.List()
		if err == nil && len(lst.Runs) == want {
			allTerm := true
			for _, r := range lst.Runs {
				if r.State == RunRunning {
					allTerm = false
					break
				}
			}
			if allTerm {
				return lst.Runs
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatal(err)
			}
			t.Fatalf("catalog settled at %d runs, want %d: %+v", len(lst.Runs), want, lst.Runs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func runDirCount(t *testing.T, state string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(state, runsDirName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// TestRetentionPrunesTerminalRuns: with -retain 1, completing three runs
// leaves exactly the newest in the catalog and on disk, and its results
// stay fetchable.
func TestRetentionPrunesTerminalRuns(t *testing.T) {
	state := t.TempDir()
	svc, stop := startService(t, Config{
		StateDir: state, Shards: 2, LeaseTTL: 10 * time.Second, Retain: 1,
	})
	defer stop()
	cl := NewClient(svc.URL(), testToken)

	var subs []string
	for _, name := range []string{"keep-a", "keep-b", "keep-c"} {
		sub, err := cl.Submit(selftestSpec(6, 1, name), 0)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub.RunID)
	}
	var executed atomic.Int64
	startWorker(t, svc.URL(), "prune-w", t.TempDir(), &executed)
	for _, id := range subs {
		if _, err := cl.Watch(id); err != nil {
			// The run may have been pruned between finishing and our watch;
			// a not-found error is acceptable here.
			if !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "unknown run") {
				t.Fatal(err)
			}
		}
	}

	runs := waitTerminalCount(t, cl, 1)
	// The survivor is the newest submission still terminal: seq order is
	// submission order, so keep-c outlives keep-a/keep-b.
	if runs[0].Name != "keep-c" {
		t.Fatalf("survivor is %q, want keep-c (newest submission)", runs[0].Name)
	}
	if runs[0].State != RunDone {
		t.Fatalf("survivor state = %s", runs[0].State)
	}
	if n := runDirCount(t, state); n != 1 {
		t.Fatalf("%d run dirs on disk, want 1", n)
	}
	// Results of the survivor remain fetchable; pruned runs 404.
	if _, err := cl.Results(runs[0].ID); err != nil {
		t.Fatalf("survivor results: %v", err)
	}
	if _, err := cl.Results(subs[0]); err == nil {
		t.Fatal("pruned run's results should be gone")
	}
}

// TestRetentionEnforcedOnRestart: a service restarted with a tighter
// retention cap prunes the recovered catalog down to the cap before
// serving.
func TestRetentionEnforcedOnRestart(t *testing.T) {
	state := t.TempDir()
	svc1, stop1 := startService(t, Config{
		StateDir: state, Shards: 2, LeaseTTL: 10 * time.Second,
	})
	cl1 := NewClient(svc1.URL(), testToken)
	for _, name := range []string{"old-a", "old-b", "old-c"} {
		sub, err := cl1.Submit(selftestSpec(4, 1, name), 0)
		if err != nil {
			t.Fatal(err)
		}
		var executed atomic.Int64
		startWorker(t, svc1.URL(), "rr-"+name, t.TempDir(), &executed)
		if _, err := cl1.Watch(sub.RunID); err != nil {
			t.Fatal(err)
		}
	}
	if got := runDirCount(t, state); got != 3 {
		t.Fatalf("%d run dirs before restart, want 3 (no cap)", got)
	}
	stop1()

	svc2, stop2 := startService(t, Config{
		StateDir: state, Shards: 2, LeaseTTL: 10 * time.Second, Retain: 2,
	})
	defer stop2()
	cl2 := NewClient(svc2.URL(), testToken)
	runs := waitTerminalCount(t, cl2, 2)
	names := []string{runs[0].Name, runs[1].Name}
	for _, n := range names {
		if n == "old-a" {
			t.Fatalf("oldest run survived restart prune: %v", names)
		}
	}
	if got := runDirCount(t, state); got != 2 {
		t.Fatalf("%d run dirs after restart, want 2", got)
	}
}
