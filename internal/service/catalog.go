package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/spec"
)

// runsDirName is the catalog subdirectory of the service state dir;
// each run owns <StateDir>/runs/<runID>/.
const runsDirName = "runs"

// Per-run state files. wal.jsonl is campaign.WALFileName.
const (
	// statusFileName holds the run's catalog metadata and lifecycle
	// state, rewritten atomically on every transition.
	statusFileName = "status.json"
	// resultsFileName is the completed run's checkpoint (header plus
	// results sorted by trial ID), written atomically at completion and
	// served by GET /v1/runs/{id}/results. It merges like any shard
	// file and byte-identically to a single-process run.
	resultsFileName = "results.jsonl"
)

// run is one catalog entry: an admitted spec, its scheduling state, and
// its durability hooks. All fields are guarded by the service mutex.
type run struct {
	id       string
	seq      int
	name     string
	labels   map[string]string
	kind     string
	priority int
	fp       string
	specJSON []byte // canonical spec, shipped in lease grants
	dir      string

	state   string
	failure string

	// Execution state; nil/empty for terminal runs loaded at recovery.
	built      *spec.Built
	info       cluster.CampaignInfo
	trials     []campaign.Trial
	shards     []*shardState
	trialShard map[int]int // trial ID -> shard index
	recorded   map[int][]byte
	results    []campaign.Result
	remaining  int
	wal        *campaign.WAL
	planner    string

	deficit    float64
	recovered  int
	reassigned int
}

// shardState is one shard's scheduling state (the per-run analogue of
// the single-run coordinator's table).
type shardState struct {
	label     string
	trials    []campaign.Trial
	remaining map[int]campaign.Trial
	done      bool
}

// terminal reports whether the run reached a final state.
func (r *run) terminal() bool { return r.state != RunRunning }

// doneCount is the number of recorded results (terminal runs loaded
// from disk keep it in len(results)).
func (r *run) doneCount() int {
	if r.recorded != nil {
		return len(r.recorded)
	}
	return len(r.results)
}

// summary renders the run's catalog entry.
func (r *run) summary() RunSummary {
	return RunSummary{
		ID: r.id, Name: r.name, Labels: r.labels, Kind: r.kind,
		Fingerprint: r.fp, Priority: r.priority, State: r.state,
		Failure: r.failure, Trials: r.info.Trials, Done: r.doneCount(),
		Shards: len(r.shards), Recovered: r.recovered,
		Reassigned: r.reassigned, Planner: r.planner,
	}
}

// runStatus is the status.json schema: everything a restarted service
// needs to list the run without replaying its WAL. For in-flight runs
// the WAL stays authoritative for results and the shard table; Done
// here is only refreshed on state transitions.
type runStatus struct {
	ID          string            `json:"id"`
	Seq         int               `json:"seq"`
	Name        string            `json:"name,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
	Kind        string            `json:"kind"`
	Fingerprint string            `json:"fingerprint"`
	Priority    int               `json:"priority,omitempty"`
	Trials      int               `json:"trials"`
	State       string            `json:"state"`
	Failure     string            `json:"failure,omitempty"`
	Done        int               `json:"done"`
}

// writeStatus persists the run's catalog state atomically: a crash
// mid-transition leaves either the old record or the new one, never a
// torn file.
func (r *run) writeStatus() error {
	st := runStatus{
		ID: r.id, Seq: r.seq, Name: r.name, Labels: r.labels,
		Kind: r.kind, Fingerprint: r.fp, Priority: r.priority,
		Trials: r.info.Trials, State: r.state, Failure: r.failure,
		Done: r.doneCount(),
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("service: marshal run status: %w", err)
	}
	if err := campaign.WriteFileAtomic(filepath.Join(r.dir, statusFileName), append(b, '\n')); err != nil {
		return fmt.Errorf("service: write run status: %w", err)
	}
	return nil
}

// readRunStatus loads one run directory's status.json.
func readRunStatus(dir string) (runStatus, error) {
	data, err := os.ReadFile(filepath.Join(dir, statusFileName))
	if err != nil {
		return runStatus{}, err
	}
	var st runStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return runStatus{}, fmt.Errorf("service: parse %s: %w", filepath.Join(dir, statusFileName), err)
	}
	if st.ID == "" || st.State == "" {
		return runStatus{}, fmt.Errorf("service: %s is missing id or state", filepath.Join(dir, statusFileName))
	}
	return st, nil
}

// installPlan (re)builds the run's shard table from a planned split,
// re-deriving each shard's pending set from what is already recorded.
func (r *run) installPlan(planned []campaign.PlannedShard, plannerName string) {
	r.shards = r.shards[:0]
	r.trialShard = make(map[int]int, len(r.trials))
	for _, ps := range planned {
		st := &shardState{label: ps.Label, trials: ps.Trials, remaining: make(map[int]campaign.Trial)}
		for _, t := range ps.Trials {
			r.trialShard[t.ID] = len(r.shards)
			if _, done := r.recorded[t.ID]; !done {
				st.remaining[t.ID] = t
			}
		}
		st.done = len(st.remaining) == 0
		r.shards = append(r.shards, st)
	}
	r.planner = plannerName
}

// walShards renders the run's current shard table in journal form.
func (r *run) walShards() []campaign.WALShard {
	out := make([]campaign.WALShard, len(r.shards))
	for i, st := range r.shards {
		ids := make([]int, 0, len(st.trials))
		for _, t := range st.trials {
			ids = append(ids, t.ID)
		}
		sort.Ints(ids)
		out[i] = campaign.WALShard{Label: st.label, Trials: ids}
	}
	return out
}
