// Package service is the campaign-as-a-service layer: one long-lived,
// multi-tenant coordinator that multiplexes MANY concurrent experiment
// runs over a single shared worker fleet, where internal/cluster's
// Coordinator serves exactly one campaign and then exits.
//
// The split of responsibilities between the two layers:
//
//   - internal/cluster owns the mechanics of distributed execution: the
//     wire protocol (register/lease/heartbeat/results), the generic
//     lease table with heartbeat-renewed deadlines, the worker daemon
//     (local shard checkpoints, error taxonomy, resume), and the
//     single-run Coordinator that drops in as a campaign.Runner.
//   - internal/service owns multi-tenancy policy on top of those
//     mechanics: the run catalog (submit/list/get/watch/cancel, with
//     spec.Spec Name/Labels annotations), per-run durability, the
//     cross-run fair-share scheduler, admission-time re-planning, the
//     autoscaling hooks, and bearer-token auth. It reuses — not forks —
//     cluster's LeaseTable, protocol types and HTTP helpers, and
//     campaign's WAL.
//
// # Run catalog and durability
//
// Each submitted spec becomes a run: "r<seq>-<fingerprint[:8]>", with
// its own state directory <StateDir>/runs/<runID>/ holding
//
//   - status.json — catalog metadata (name, labels, priority, state),
//     rewritten atomically on every state transition, so a restarted
//     service can list terminal runs without replaying anything;
//   - wal.jsonl — the same coordinator WAL internal/cluster journals
//     (shard table, lease lifecycle, every accepted result), so restart
//     recovery for an in-flight run is exactly PR 5's replay, per run;
//   - results.jsonl — written atomically when the run completes: a
//     complete, ordinary checkpoint (header + results sorted by trial
//     ID) that `campaign merge` consumes like any shard file, and that
//     merges byte-identically to a single-process execution.
//
// A SIGKILLed service restarted on the same StateDir replays every
// in-flight run's WAL, invalidates the leases that were open at the
// crash, and carries on; workers re-register and resume from their
// local per-(run, shard) checkpoints, so completed trials never re-run.
//
// # Scheduling
//
// One cluster.LeaseTable keyed by (run, shard) covers the whole
// catalog. A lease request picks among runs that are running and have a
// free shard: the highest submission priority wins outright, and within
// a priority band a deficit counter — charged to the chosen run,
// credited equally to every contender — keeps long-term shard grants
// fair however uneven the shard sizes are.
//
// Plans are revisited at run-admission boundaries: every admission
// recomputes campaign.TimingByKey over all recorded results and feeds
// it through the campaign.Planner seam (BalancedPlanner), both for the
// new run and to re-plan any running run that currently has no leases
// outstanding; each re-plan is journaled as a WAL plan record so replay
// restores the table actually in force.
//
// # Autoscaling hooks
//
// Heartbeat responses carry scale-up advice (schedulable shards minus
// idle live workers) and graceful-drain directives; lease responses
// carry drain for idle workers. cluster.Worker honors both: a drained
// worker finishes its current shard, then exits instead of taking
// another lease. The advice is also exposed on GET /v1/status for
// external autoscalers.
//
// # Auth
//
// Every endpoint — worker protocol and catalog alike — requires the
// service's bearer token ("Authorization: Bearer <token>"), compared in
// constant time. A service refuses to start without one.
package service
