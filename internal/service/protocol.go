package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"falvolt/internal/spec"
)

// Run lifecycle states, as reported by the catalog endpoints and
// persisted in each run's status.json.
const (
	// RunRunning: the run is schedulable (it may still be waiting for
	// its first worker).
	RunRunning = "running"
	// RunDone: every trial has a result; results.jsonl is complete.
	RunDone = "done"
	// RunFailed: a deterministic trial error or result conflict aborted
	// the run; Failure carries the cause.
	RunFailed = "failed"
	// RunCancelled: the run was cancelled via the catalog; its leases
	// were revoked.
	RunCancelled = "cancelled"
)

// MaxPriority bounds submission priority to [-MaxPriority, MaxPriority]
// (0 is the default; higher schedules first).
const MaxPriority = 100

// SubmitRequest is the POST /v1/runs body: the experiment spec to
// enqueue plus scheduling priority. The spec's execution-only Name and
// Labels fields annotate the catalog entry.
type SubmitRequest struct {
	// Spec is the experiment spec JSON (internal/spec), decoded
	// strictly: unknown fields and invalid values are rejected at the
	// door, not at build time.
	Spec json.RawMessage `json:"spec"`
	// Priority orders runs in the scheduler; higher runs first. Bounded
	// to [-MaxPriority, MaxPriority].
	Priority int `json:"priority,omitempty"`
}

// DecodeSubmit strictly decodes a submit-endpoint body: unknown
// envelope fields, trailing data, a missing or invalid spec, and
// out-of-range priority are all errors. This is the service's
// untrusted-input surface (see FuzzDecodeSubmit).
func DecodeSubmit(data []byte) (*SubmitRequest, *spec.Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("service: decode submit request: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, nil, fmt.Errorf("service: decode submit request: trailing data after request object")
	}
	if len(req.Spec) == 0 {
		return nil, nil, fmt.Errorf("service: submit request has no spec")
	}
	if req.Priority < -MaxPriority || req.Priority > MaxPriority {
		return nil, nil, fmt.Errorf("service: priority %d outside [%d, %d]", req.Priority, -MaxPriority, MaxPriority)
	}
	sp, err := spec.Decode(req.Spec)
	if err != nil {
		return nil, nil, err
	}
	return &req, sp, nil
}

// SubmitResponse acknowledges an admitted run.
type SubmitResponse struct {
	RunID       string `json:"runID"`
	Fingerprint string `json:"fingerprint"`
	Trials      int    `json:"trials"`
	Shards      int    `json:"shards"`
}

// RunSummary is one catalog entry, as returned by list/get/watch.
type RunSummary struct {
	ID          string            `json:"id"`
	Name        string            `json:"name,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
	Kind        string            `json:"kind"`
	Fingerprint string            `json:"fingerprint"`
	Priority    int               `json:"priority,omitempty"`
	State       string            `json:"state"`
	Failure     string            `json:"failure,omitempty"`
	// Trials and Done count the run's full trial set and the results
	// recorded so far.
	Trials int `json:"trials"`
	Done   int `json:"done"`
	Shards int `json:"shards,omitempty"`
	// Recovered counts results this service epoch replayed from the
	// run's WAL after a restart.
	Recovered int `json:"recovered,omitempty"`
	// Reassigned counts lease expiries that put a shard with pending
	// work back on the queue.
	Reassigned int `json:"reassigned,omitempty"`
	// Planner names the policy behind the run's current shard table
	// ("uniform" or "balance:accumulated" after a re-plan).
	Planner string `json:"planner,omitempty"`
}

// ListResponse is the GET /v1/runs body: every catalog entry in
// submission order.
type ListResponse struct {
	Runs []RunSummary `json:"runs"`
}

// DrainRequest asks the service to gracefully drain workers: each
// finishes its current shard, then exits instead of leasing more work.
type DrainRequest struct {
	// Worker matches a worker ID ("w3-host-42") or display name; every
	// match drains.
	Worker string `json:"worker"`
}

// DrainResponse reports how many workers were marked for drain.
type DrainResponse struct {
	Drained int `json:"drained"`
}

// ServiceStatus is the GET /v1/status snapshot: catalog plus fleet and
// the same scale-up advice heartbeats carry, for external autoscalers.
type ServiceStatus struct {
	Runs    []RunSummary `json:"runs"`
	Workers int          `json:"workers"`
	// OpenShards counts schedulable shards with no lease holder across
	// all running runs.
	OpenShards int `json:"openShards"`
	// ScaleUp is max(0, OpenShards - idle live workers): how many
	// additional workers could lease work right now.
	ScaleUp int `json:"scaleUp"`
}
