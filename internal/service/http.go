package service

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
)

// mux wires every endpoint — the cluster worker protocol and the run
// catalog — behind the bearer-token check.
func (s *Service) mux() *http.ServeMux {
	m := http.NewServeMux()
	// Worker protocol (cluster wire types, service-mode fields).
	m.HandleFunc("POST /v1/register", s.auth(s.handleRegister))
	m.HandleFunc("POST /v1/lease", s.auth(s.handleLease))
	m.HandleFunc("POST /v1/heartbeat", s.auth(s.handleHeartbeat))
	m.HandleFunc("POST /v1/results", s.auth(s.handleResults))
	m.HandleFunc("GET /v1/status", s.auth(s.handleStatus))
	// Run catalog.
	m.HandleFunc("POST /v1/runs", s.auth(s.handleSubmit))
	m.HandleFunc("GET /v1/runs", s.auth(s.handleList))
	m.HandleFunc("GET /v1/runs/{id}", s.auth(s.handleGet))
	m.HandleFunc("GET /v1/runs/{id}/results", s.auth(s.handleFetchResults))
	m.HandleFunc("POST /v1/runs/{id}/cancel", s.auth(s.handleCancel))
	// Autoscaling hook: mark workers for graceful drain.
	m.HandleFunc("POST /v1/drain", s.auth(s.handleDrain))
	return m
}

// auth enforces the bearer token on an endpoint, comparing in constant
// time so the token is not recoverable by timing.
func (s *Service) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.Token)) != 1 {
			cluster.WriteJSONError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		h(w, r)
	}
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if !cluster.ReadJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Proto != cluster.ProtocolVersion {
		cluster.WriteJSONError(w, http.StatusConflict, fmt.Sprintf(
			"protocol version mismatch: worker %q speaks v%d, service v%d — rebuild the worker",
			req.Worker, req.Proto, cluster.ProtocolVersion))
		return
	}
	s.wseq++
	id := fmt.Sprintf("w%d-%s", s.wseq, req.Worker)
	s.workers[id] = &workerState{name: req.Worker, lastSeen: s.now()}
	s.logf("service: registered worker %s\n", id)
	cluster.WriteJSON(w, cluster.RegisterResponse{
		WorkerID:       id,
		LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
		Service:        true,
	})
}

// workerSeen authenticates a worker ID against the fleet table (403
// sends the worker back through registration) and refreshes its
// liveness timestamp.
func (s *Service) workerSeen(w http.ResponseWriter, id string) *workerState {
	ws, ok := s.workers[id]
	if !ok {
		cluster.WriteJSONError(w, http.StatusForbidden, fmt.Sprintf("unknown worker %q: register first", id))
		return nil
	}
	ws.lastSeen = s.now()
	return ws
}

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if !cluster.ReadJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		cluster.WriteJSONError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	ws := s.workerSeen(w, req.WorkerID)
	if ws == nil {
		return
	}
	s.sweepLocked()
	if ws.drain && s.leases.Held(req.WorkerID) == 0 {
		// Graceful scale-down completes here: the worker is idle, tell
		// it to exit and retire its fleet entry.
		delete(s.workers, req.WorkerID)
		s.logf("service: drained worker %s\n", req.WorkerID)
		cluster.WriteJSON(w, cluster.LeaseResponse{Status: cluster.StatusWait, Drain: true})
		return
	}
	run, shard := s.pickLocked()
	if run == nil {
		cluster.WriteJSON(w, cluster.LeaseResponse{Status: cluster.StatusWait})
		return
	}
	st := run.shards[shard]
	l := s.leases.Grant(req.WorkerID, runShard{run.id, shard})
	if run.wal != nil {
		if err := run.wal.AppendLease(campaign.WALLease{
			Event: campaign.LeaseGranted, ID: l.ID, Worker: req.WorkerID, Shard: st.label,
		}); err != nil {
			s.leases.Release(l.ID)
			s.failRunLocked(run, fmt.Sprintf("journal lease grant: %v", err))
			cluster.WriteJSON(w, cluster.LeaseResponse{Status: cluster.StatusWait})
			return
		}
	}
	pending := make([]campaign.Trial, 0, len(st.remaining))
	for _, t := range st.remaining {
		pending = append(pending, t)
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].ID < pending[b].ID })
	s.logf("service: leased run %s shard %s (%d trials pending) to %s as %s\n",
		run.id, st.label, len(pending), req.WorkerID, l.ID)
	cluster.WriteJSON(w, cluster.LeaseResponse{
		Status: cluster.StatusLease, LeaseID: l.ID, Shard: st.label, Trials: pending,
		RunID: run.id, Spec: json.RawMessage(run.specJSON), Fingerprint: run.fp,
	})
}

func (s *Service) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if !cluster.ReadJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.workerSeen(w, req.WorkerID)
	if ws == nil {
		return
	}
	cluster.WriteJSON(w, cluster.HeartbeatResponse{
		OK:      s.leases.Renew(req.LeaseID),
		Status:  cluster.StatusWait,
		Drain:   ws.drain,
		ScaleUp: s.scaleUpLocked(),
	})
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	var req cluster.ResultsRequest
	if !cluster.ReadJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		cluster.WriteJSONError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	if s.workerSeen(w, req.WorkerID) == nil {
		return
	}
	run := s.runs[req.RunID]
	if run == nil || run.terminal() {
		// A slow worker streaming into a run that is already over (or a
		// batch for an unknown run) is dropped, not an error: its trials
		// are deterministic duplicates of recorded ones.
		cluster.WriteJSON(w, cluster.ResultsResponse{OK: true})
		return
	}
	if req.TrialErr != "" {
		s.failRunLocked(run, fmt.Sprintf("worker %s: %s", req.WorkerID, req.TrialErr))
		cluster.WriteJSON(w, cluster.ResultsResponse{OK: true})
		return
	}
	for i, res := range req.Results {
		if i < len(req.Wall) {
			res.Wall = req.Wall[i]
		}
		if _, err := s.recordRunLocked(run, res); err != nil {
			s.failRunLocked(run, err.Error())
			break
		}
	}
	cluster.WriteJSON(w, cluster.ResultsResponse{OK: true})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cluster.WriteJSON(w, ServiceStatus{
		Runs:       s.runSummariesLocked(),
		Workers:    len(s.workers),
		OpenShards: s.openShardsLocked(),
		ScaleUp:    s.scaleUpLocked(),
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, cluster.MaxBodyBytes))
	if err != nil {
		cluster.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	req, sp, err := DecodeSubmit(data)
	if err != nil {
		cluster.WriteJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Built outside the service lock: a slow build (baseline training)
	// must not stall the fleet's heartbeats.
	built, err := s.buildFunc()(sp)
	if err != nil {
		cluster.WriteJSONError(w, http.StatusUnprocessableEntity, fmt.Sprintf("spec does not build: %v", err))
		return
	}
	resp, err := s.admit(req, sp, built)
	if err != nil {
		cluster.WriteJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	cluster.WriteJSON(w, resp)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cluster.WriteJSON(w, ListResponse{Runs: s.runSummariesLocked()})
}

// handleGet returns one run's summary; ?watch=<duration> long-polls
// until the run reaches a terminal state or the window expires (the
// caller loops).
func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	window, watching, err := parseWatch(r.URL.Query().Get("watch"))
	if err != nil {
		cluster.WriteJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	deadline := time.Now().Add(window)
	for {
		s.mu.Lock()
		run := s.runs[id]
		if run == nil {
			s.mu.Unlock()
			cluster.WriteJSONError(w, http.StatusNotFound, fmt.Sprintf("unknown run %q", id))
			return
		}
		sum := run.summary()
		done := run.terminal()
		ch := s.watchCh
		s.mu.Unlock()
		if !watching || done || !time.Now().Before(deadline) {
			cluster.WriteJSON(w, sum)
			return
		}
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleFetchResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	run := s.runs[id]
	var state, path string
	if run != nil {
		state = run.state
		path = filepath.Join(run.dir, resultsFileName)
	}
	s.mu.Unlock()
	if run == nil {
		cluster.WriteJSONError(w, http.StatusNotFound, fmt.Sprintf("unknown run %q", id))
		return
	}
	if state != RunDone {
		cluster.WriteJSONError(w, http.StatusConflict, fmt.Sprintf("run %s is %s; results are only served for completed runs", id, state))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		cluster.WriteJSONError(w, http.StatusInternalServerError, fmt.Sprintf("read results: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(data)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	run := s.runs[id]
	if run == nil {
		cluster.WriteJSONError(w, http.StatusNotFound, fmt.Sprintf("unknown run %q", id))
		return
	}
	s.cancelRunLocked(run) // idempotent: a terminal run is left as-is
	cluster.WriteJSON(w, run.summary())
}

func (s *Service) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if !cluster.ReadJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		cluster.WriteJSONError(w, http.StatusBadRequest, "drain needs a worker ID or name")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, ws := range s.workers {
		if id == req.Worker || ws.name == req.Worker {
			if !ws.drain {
				ws.drain = true
				s.logf("service: marked worker %s for drain\n", id)
			}
			n++
		}
	}
	if n == 0 {
		cluster.WriteJSONError(w, http.StatusNotFound, fmt.Sprintf("no worker matches %q", req.Worker))
		return
	}
	cluster.WriteJSON(w, DrainResponse{Drained: n})
}
