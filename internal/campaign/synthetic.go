package campaign

import (
	"fmt"
	"math/rand"
	"time"
)

// Synthetic returns a model-free campaign of n seed-addressed trials
// whose results are a pure function of each trial's seed. It exists for
// smoke-testing campaign infrastructure — shard merging, checkpoint
// resume, distributed coordinator/worker loops — without paying for SNN
// training: `cmd/campaign -c selftest` and the CI loopback-cluster job
// run it end to end. Like the real sweeps, identical (n, seed) configs
// enumerate identical trials and produce byte-identical merged results
// on any worker topology.
func Synthetic(n int, seed int64) Campaign { return SyntheticWithDelay(n, seed, 0) }

// SyntheticWithDelay is Synthetic with an artificial per-trial delay of
// delayMillis milliseconds. The delay never touches the result values —
// only wall-clock — so it gives scheduling tests (lease reassignment,
// coordinator kill-and-restart, load-aware planning) a campaign slow
// enough to interrupt deterministically while merges stay byte-identical
// to the instant variant of the same (n, seed).
func SyntheticWithDelay(n int, seed int64, delayMillis int) Campaign {
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{
			ID:   i,
			Key:  fmt.Sprintf("point%02d", i/4), // 4 repeats per key
			Seed: seed + int64(1000+i),
			Tags: map[string]string{"rep": fmt.Sprint(i % 4)},
		}
	}
	meta := map[string]string{"n": fmt.Sprint(n), "seed": fmt.Sprint(seed)}
	if delayMillis > 0 {
		meta["delayMillis"] = fmt.Sprint(delayMillis)
	}
	return NewWithMeta("selftest", meta, trials, func(lane int) (Worker, error) {
		return WorkerFunc(func(t Trial) (Result, error) {
			if delayMillis > 0 {
				time.Sleep(time.Duration(delayMillis) * time.Millisecond)
			}
			return RunSyntheticTrial(t)
		}), nil
	})
}

// RunSyntheticTrial computes a Synthetic trial's result from its seed
// alone (exported so cluster tests can count or wrap executions).
func RunSyntheticTrial(t Trial) (Result, error) {
	rng := rand.New(rand.NewSource(t.Seed))
	return Result{
		TrialID: t.ID,
		Key:     t.Key,
		Metrics: map[string]float64{"acc": rng.Float64(), "loss": rng.Float64()},
		Series:  map[string][]float64{"curve": {rng.Float64(), rng.Float64()}},
	}, nil
}
