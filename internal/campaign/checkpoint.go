package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
)

// Checkpoint files are JSONL: the first line is a header record
// identifying the campaign (name, trial count, shard, metadata), every
// following line is one completed trial's result. Appends are flushed
// per record, so a killed campaign loses at most the line being written;
// readers tolerate a truncated final line.

// checkpointVersion is bumped on incompatible schema changes; readers
// refuse newer files instead of misparsing them.
const checkpointVersion = 1

// Header identifies the campaign a checkpoint (or shard partial) belongs
// to. Resume and merge require Campaign, Trials and Meta to agree, so
// results from a differently configured run can never be mixed in.
type Header struct {
	Version  int               `json:"version"`
	Campaign string            `json:"campaign"`
	Trials   int               `json:"trials"`
	Shard    string            `json:"shard,omitempty"`
	Meta     map[string]string `json:"meta,omitempty"`
}

// NewHeader builds the checkpoint header for one shard of a campaign
// with trials total trials, including the campaign's metadata
// fingerprint. Every writer (campaign.Run, the cluster worker's local
// shard checkpoints) derives headers here so resume and merge
// compatibility checks compare like with like.
func NewHeader(c Campaign, trials int, shard Shard) Header {
	h := Header{
		Version:  checkpointVersion,
		Campaign: c.Name(),
		Trials:   trials,
		Shard:    shard.String(),
	}
	if mp, ok := c.(MetaProvider); ok {
		h.Meta = mp.Meta()
	}
	return h
}

// Compatible reports whether two headers describe the same campaign and
// configuration (shard may differ — that is the point of merging).
func (h Header) Compatible(other Header) bool { return h.compatible(other) }

// compatible reports whether two headers describe the same campaign
// (shard may differ — that is the point of merging).
func (h Header) compatible(other Header) bool {
	return h.Version == other.Version &&
		h.Campaign == other.Campaign &&
		h.Trials == other.Trials &&
		(len(h.Meta) == 0 && len(other.Meta) == 0 || reflect.DeepEqual(h.Meta, other.Meta))
}

// record is one checkpoint line: exactly one of Header/Result set.
type record struct {
	Header *Header `json:"header,omitempty"`
	Result *Result `json:"result,omitempty"`
	// Wall carries Result.Wall (seconds), which the result's canonical
	// JSON deliberately excludes: checkpoints preserve per-trial timing
	// without perturbing result identity or merge byte-reproducibility.
	Wall float64 `json:"wall,omitempty"`
}

// appendFile is the flush-per-record JSONL appender shared by
// Checkpoint and the coordinator WAL: create truncates, open truncates
// a torn final line (a record half-written when the process was
// killed) so later appends never fuse with it, and every appendJSON
// flushes through to the OS.
type appendFile struct {
	f *os.File
	w *bufio.Writer
}

func createAppendFile(path string) (*appendFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &appendFile{f: f, w: bufio.NewWriter(f)}, nil
}

func openAppendFile(path string) (*appendFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*appendFile, error) {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err != nil {
			return fail(err)
		}
		if last[0] != '\n' {
			data := make([]byte, st.Size())
			if _, err := f.ReadAt(data, 0); err != nil {
				return fail(err)
			}
			if err := f.Truncate(int64(bytes.LastIndexByte(data, '\n') + 1)); err != nil {
				return fail(err)
			}
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fail(err)
	}
	return &appendFile{f: f, w: bufio.NewWriter(f)}, nil
}

func (a *appendFile) appendJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("marshal record: %w", err)
	}
	if _, err := a.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return a.w.Flush()
}

// Close flushes and closes the file.
func (a *appendFile) Close() error {
	if err := a.w.Flush(); err != nil {
		a.f.Close()
		return err
	}
	return a.f.Close()
}

// Checkpoint appends results to a JSONL file as they complete.
type Checkpoint struct {
	af *appendFile
}

// CreateCheckpoint creates (truncating) a checkpoint file and writes its
// header line.
func CreateCheckpoint(path string, h Header) (*Checkpoint, error) {
	af, err := createAppendFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: create checkpoint: %w", err)
	}
	c := &Checkpoint{af: af}
	if err := c.append(record{Header: &h}); err != nil {
		af.Close()
		return nil, err
	}
	return c, nil
}

// OpenCheckpointAppend reopens an existing checkpoint for appending
// (resume path; the header is already on disk). A torn final line left
// by a killed run is truncated away first — ReadCheckpoint ignores such
// a tail, but appending after it would fuse it with the next record and
// corrupt the file for every later reader.
func OpenCheckpointAppend(path string) (*Checkpoint, error) {
	af, err := openAppendFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	return &Checkpoint{af: af}, nil
}

// Append writes one result line and flushes it to the OS, so results
// survive the process being killed.
func (c *Checkpoint) Append(r Result) error {
	return c.append(record{Result: &r, Wall: r.Wall})
}

func (c *Checkpoint) append(rec record) error {
	if err := c.af.appendJSON(rec); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	return nil
}

// Close flushes and closes the file.
func (c *Checkpoint) Close() error { return c.af.Close() }

// decodeJSONL parses a JSONL file's records, tolerating a truncated
// final line — the record being half-written when the process was
// killed. Corruption anywhere else is an error. Shared by checkpoint
// and WAL readers so the torn-tail semantics cannot drift.
func decodeJSONL[T any](data []byte, what, path string) ([]T, error) {
	lines := splitLines(data)
	out := make([]T, 0, len(lines))
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var rec T
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final write from a killed process
			}
			return nil, fmt.Errorf("campaign: %s %s line %d: %w", what, path, i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// ReadCheckpoint loads a checkpoint file: header plus every completed
// result, sorted by trial ID. A truncated final line (the record being
// written when a run was killed) is dropped; corruption anywhere else is
// an error.
func ReadCheckpoint(path string) (Header, []Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	recs, err := decodeJSONL[record](data, "checkpoint", path)
	if err != nil {
		return Header{}, nil, err
	}
	var (
		header    Header
		gotHeader bool
		results   []Result
	)
	for _, rec := range recs {
		switch {
		case rec.Header != nil:
			if gotHeader {
				return Header{}, nil, fmt.Errorf("campaign: checkpoint %s has multiple headers", path)
			}
			if rec.Header.Version > checkpointVersion {
				return Header{}, nil, fmt.Errorf("campaign: checkpoint %s version %d newer than supported %d",
					path, rec.Header.Version, checkpointVersion)
			}
			header = *rec.Header
			gotHeader = true
		case rec.Result != nil:
			if !gotHeader {
				return Header{}, nil, fmt.Errorf("campaign: checkpoint %s: result before header", path)
			}
			rec.Result.Wall = rec.Wall
			results = append(results, *rec.Result)
		}
	}
	if !gotHeader {
		return Header{}, nil, fmt.Errorf("campaign: checkpoint %s has no header", path)
	}
	sortResults(results)
	return header, results, nil
}

// splitLines splits on '\n' without dropping a trailing unterminated
// line (needed to detect torn writes).
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// WriteFileAtomic writes data to path crash-safely: the bytes go to a
// temp file in the same directory, are fsynced, and the temp file is
// renamed over path. An interrupted write never leaves a half-written
// artifact at path — readers see either the old content or the new,
// complete one.
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	fail := func(err error) error {
		tmp.Close()
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp's private 0600 would survive the rename; widen to the
	// conventional 0644 so other readers (artifact collectors, other
	// uids) keep working as they did with os.WriteFile.
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	return nil
}

// WriteCheckpointAtomic renders a complete checkpoint (header plus
// results sorted by trial ID) and writes it crash-safely via
// WriteFileAtomic. It is the output path of merges: unlike the
// incremental Checkpoint writer, which appends as trials finish, a
// merge has every record up front and must never leave a torn file.
func WriteCheckpointAtomic(path string, h Header, results []Result) error {
	rs := append([]Result(nil), results...)
	sortResults(rs)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(record{Header: &h}); err != nil {
		return fmt.Errorf("campaign: marshal checkpoint header: %w", err)
	}
	for i := range rs {
		if err := enc.Encode(record{Result: &rs[i], Wall: rs[i].Wall}); err != nil {
			return fmt.Errorf("campaign: marshal checkpoint record: %w", err)
		}
	}
	return WriteFileAtomic(path, buf.Bytes())
}

// MergeFiles reads several checkpoint files (typically one per shard),
// verifies they describe the same campaign, and merges their results.
// The returned header is the first file's with the shard cleared.
func MergeFiles(paths ...string) (Header, []Result, error) {
	if len(paths) == 0 {
		return Header{}, nil, fmt.Errorf("campaign: no checkpoint files to merge")
	}
	var (
		header Header
		sets   [][]Result
	)
	for i, p := range paths {
		h, rs, err := ReadCheckpoint(p)
		if err != nil {
			return Header{}, nil, err
		}
		if i == 0 {
			header = h
		} else if !header.compatible(h) {
			return Header{}, nil, fmt.Errorf("campaign: %s is from a different campaign or configuration than %s", p, paths[0])
		}
		sets = append(sets, rs)
	}
	merged, err := Merge(sets...)
	if err != nil {
		return Header{}, nil, err
	}
	header.Shard = ""
	return header, merged, nil
}
