package campaign

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"falvolt/internal/tensor"
)

// Golden-file test for the checkpoint JSONL schema: downstream parsers
// (shard mergers, external analysis) depend on this byte format, so
// schema drift must break CI instead of them. Regenerate with
//
//	go test ./internal/campaign/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestCheckpointGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	// Serial runner: completion order equals trial order, so the file
	// bytes are fully deterministic.
	rr, err := Run(testCampaign(8, nil), Options{
		Checkpoint: path,
		Runner:     PoolRunner{Engine: tensor.Serial()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Complete {
		t.Fatal("campaign incomplete")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "checkpoint.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("checkpoint JSONL drifted from golden schema:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
