package campaign

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"falvolt/internal/tensor"
)

// Golden-file test for the checkpoint JSONL schema: downstream parsers
// (shard mergers, external analysis) depend on this byte format, so
// schema drift must break CI instead of them. Regenerate with
//
//	go test ./internal/campaign/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// stripWall zeroes Result.Wall before results reach the sink: the
// schema under test is the record layout, and with omitempty a zero
// wall omits the field, keeping the golden bytes independent of how
// fast this machine ran the trials.
type stripWall struct{ inner Runner }

func (s stripWall) Run(ctx context.Context, c Campaign, trials []Trial, sink func(Result) error) error {
	return s.inner.Run(ctx, c, trials, func(r Result) error {
		r.Wall = 0
		return sink(r)
	})
}

func TestCheckpointGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	// Serial runner: completion order equals trial order, so the file
	// bytes are fully deterministic.
	rr, err := Run(testCampaign(8, nil), Options{
		Checkpoint: path,
		Runner:     stripWall{PoolRunner{Engine: tensor.Serial()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Complete {
		t.Fatal("campaign incomplete")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "checkpoint.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("checkpoint JSONL drifted from golden schema:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
