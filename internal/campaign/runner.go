package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"falvolt/internal/tensor"
)

// Runner executes a set of trials against a campaign, delivering each
// result to sink exactly once. Runners must serialize sink calls (sink
// implementations append to memory and checkpoint files) and must stop
// dispatching new trials promptly once ctx is cancelled, returning
// ctx.Err(); results already delivered stay valid, so a cancelled run
// resumes from its checkpoint. The in-process PoolRunner executes on
// compute-engine lanes; cluster.Coordinator implements the same
// interface across machines, with Shard as the unit of distribution.
type Runner interface {
	Run(ctx context.Context, c Campaign, trials []Trial, sink func(Result) error) error
}

// PoolRunner executes trials on an in-process worker pool: the lanes of
// a tensor.Backend's Map. Each lane gets a private Worker (built lazily,
// so unused lanes never pay for model construction) and trials are
// distributed dynamically across lanes for load balance.
type PoolRunner struct {
	// Engine supplies the lanes (nil selects tensor.Default()). Use
	// tensor.Serial() to force sequential execution — e.g. when the
	// campaign's workers cannot be replicated.
	Engine tensor.Backend
}

// Run implements Runner. Cancelling ctx (Ctrl-C, a lost cluster lease)
// stops new trials from starting — lanes skip the remaining queue — and
// Run returns ctx.Err(); trials already sunk are kept by the caller.
func (r PoolRunner) Run(ctx context.Context, c Campaign, trials []Trial, sink func(Result) error) error {
	if len(trials) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	eng := r.Engine
	if eng == nil {
		eng = tensor.Default()
	}
	workers := make([]Worker, eng.Workers())
	var (
		mu     sync.Mutex
		errs   = make([]error, len(trials))
		failed atomic.Bool
	)
	eng.Map(len(trials), func(lane, i int) {
		if failed.Load() || ctx.Err() != nil {
			return // cancelled or an earlier trial failed; drain the queue cheaply
		}
		// Lanes are slot-sequential, so workers[lane] is only touched by
		// one goroutine at a time.
		if workers[lane] == nil {
			w, err := c.NewWorker(lane)
			if err != nil {
				errs[i] = fmt.Errorf("campaign: worker for lane %d: %w", lane, err)
				failed.Store(true)
				return
			}
			workers[lane] = w
		}
		start := time.Now()
		res, err := workers[lane].RunTrial(trials[i])
		if err != nil {
			errs[i] = fmt.Errorf("campaign: trial %d (%s): %w", trials[i].ID, trials[i].Key, err)
			failed.Store(true)
			return
		}
		// Wall-clock is recorded per trial (groundwork for load-aware
		// shard sizing); it rides outside the result's canonical JSON.
		res.Wall = time.Since(start).Seconds()
		mu.Lock()
		err = sink(res)
		mu.Unlock()
		if err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("campaign: run cancelled: %w", err)
	}
	return nil
}
