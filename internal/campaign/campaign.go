// Package campaign is the fault-sweep campaign engine: it decomposes a
// vulnerability, mitigation or yield sweep into a deterministic list of
// seed-addressed Trials, executes them on a pluggable Runner (an
// in-process worker pool today; the Runner interface is the seam for
// multi-process or multi-machine sharding), and merges the results with
// an order-independent, bit-reproducible reduction.
//
// The contract that makes sharding trustworthy:
//
//   - Trials() is a pure function of the campaign configuration: the same
//     config enumerates the same trials (IDs, keys, seeds) on every
//     process, so shards agree on the work-list without coordination.
//   - Every trial is independently seed-addressed: its result depends
//     only on the trial, never on which worker ran it, in which order,
//     or on which shard.
//   - Reductions (Merge, GroupMean, report builders) consume results in
//     ascending trial-ID order, so the merged output is byte-identical
//     whether the campaign ran on 1 worker, 8 workers, or as separately
//     checkpointed shards.
//
// Checkpoints are JSONL files (one header line, then one result per
// line); an interrupted campaign resumes by skipping trial IDs already
// present in its checkpoint.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Trial is one unit of campaign work: a seed-addressed point of a sweep.
// IDs must be dense in [0, n) in enumeration order; Key names the figure
// point or report bucket the trial contributes to (several trials —
// e.g. repeats — may share a Key); Seed drives the trial's randomness
// (fault-map drawing, retraining shuffles) so the result is reproducible
// from the trial alone; Tags carry campaign-specific parameters.
type Trial struct {
	ID   int               `json:"id"`
	Key  string            `json:"key"`
	Seed int64             `json:"seed,omitempty"`
	Tags map[string]string `json:"tags,omitempty"`
}

// Result is the outcome of one trial. Metrics holds scalar outputs
// ("acc", "raw", ...); Series holds vector outputs (per-layer thresholds,
// convergence curves). Both marshal deterministically (encoding/json
// sorts map keys), so identical results are byte-identical on disk.
type Result struct {
	TrialID int                  `json:"trial"`
	Key     string               `json:"key"`
	Metrics map[string]float64   `json:"metrics,omitempty"`
	Series  map[string][]float64 `json:"series,omitempty"`

	// Wall is the trial's wall-clock execution time in seconds, as
	// measured by the runner that executed it. It is observability
	// metadata, NOT part of the result's identity: canonical result JSON
	// (json.Marshal, MarshalResults, the merge conflict checks) excludes
	// it, so two executions of the same trial merge bit-identically
	// however long each took. Checkpoint records and the cluster wire
	// protocol carry it out of band (see checkpoint.go, cluster).
	Wall float64 `json:"-"`
}

// Worker executes trials sequentially. One worker is private to one
// runner lane, so implementations may hold mutable state (model
// replicas, arrays) without locking.
type Worker interface {
	RunTrial(t Trial) (Result, error)
}

// WorkerFunc adapts a function to Worker.
type WorkerFunc func(Trial) (Result, error)

// RunTrial implements Worker.
func (f WorkerFunc) RunTrial(t Trial) (Result, error) { return f(t) }

// Campaign decomposes a sweep: a deterministic trial list plus a factory
// for per-lane workers. Trials must be cheap and pure (no training, no
// I/O) so `plan` and shard agreement stay free; expensive setup belongs
// in NewWorker, which is only called when trials actually execute.
type Campaign interface {
	// Name identifies the campaign ("fig5a", "yield", ...); checkpoints
	// record it and refuse to resume or merge across different names.
	Name() string
	// Trials enumerates the full campaign deterministically, IDs dense
	// in [0, n) — sharding and resume select subsets of this list.
	Trials() ([]Trial, error)
	// NewWorker builds the private worker for one runner lane. Lane ids
	// are dense in [0, runner lanes).
	NewWorker(lane int) (Worker, error)
}

// MetaProvider is an optional Campaign extension: key/value metadata
// recorded in checkpoint headers (array size, thresholds, option
// fingerprints). Resume and merge require metadata to match, catching
// shards run with different configurations.
type MetaProvider interface {
	Meta() map[string]string
}

// funcCampaign is the Campaign returned by New.
type funcCampaign struct {
	name      string
	trials    []Trial
	newWorker func(lane int) (Worker, error)
	meta      map[string]string
}

// New builds a Campaign from a trial list and a worker factory.
func New(name string, trials []Trial, newWorker func(lane int) (Worker, error)) Campaign {
	return &funcCampaign{name: name, trials: trials, newWorker: newWorker}
}

// NewWithMeta is New with checkpoint-header metadata attached.
func NewWithMeta(name string, meta map[string]string, trials []Trial,
	newWorker func(lane int) (Worker, error)) Campaign {
	return &funcCampaign{name: name, trials: trials, newWorker: newWorker, meta: meta}
}

// Name implements Campaign.
func (c *funcCampaign) Name() string { return c.name }

// Trials implements Campaign.
func (c *funcCampaign) Trials() ([]Trial, error) { return c.trials, nil }

// NewWorker implements Campaign.
func (c *funcCampaign) NewWorker(lane int) (Worker, error) { return c.newWorker(lane) }

// Meta implements MetaProvider.
func (c *funcCampaign) Meta() map[string]string { return c.meta }

// checkTrials validates the dense-ID contract Run and Shard rely on.
func checkTrials(trials []Trial) error {
	for i, t := range trials {
		if t.ID != i {
			return fmt.Errorf("campaign: trial %d has id %d (ids must be dense in enumeration order)", i, t.ID)
		}
	}
	return nil
}

// sortResults orders results by trial ID in place.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].TrialID < rs[j].TrialID })
}

// Merge combines result sets (e.g. shard partials) into one slice sorted
// by trial ID. A trial ID appearing in several sets must carry identical
// results — differing duplicates mean the shards disagree about the
// campaign and merging would silently corrupt the reduction.
func Merge(sets ...[]Result) ([]Result, error) {
	byID := make(map[int]Result)
	var out []Result
	for _, set := range sets {
		for _, r := range set {
			if prev, ok := byID[r.TrialID]; ok {
				if !sameResult(prev, r) {
					return nil, fmt.Errorf("campaign: conflicting results for trial %d", r.TrialID)
				}
				continue
			}
			byID[r.TrialID] = r
			out = append(out, r)
		}
	}
	sortResults(out)
	return out, nil
}

// sameResult compares results via their canonical JSON encoding.
func sameResult(a, b Result) bool {
	ja, errA := json.Marshal(a)
	jb, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(ja, jb)
}

// Missing returns the trial IDs of [0, n) absent from results (which must
// be sorted by ID, as Run and Merge return them).
func Missing(results []Result, n int) []int {
	have := make(map[int]bool, len(results))
	for _, r := range results {
		have[r.TrialID] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !have[i] {
			out = append(out, i)
		}
	}
	return out
}

// Complete reports whether results cover every trial of a campaign with n
// trials.
func Complete(results []Result, n int) bool { return len(Missing(results, n)) == 0 }

// GroupMean averages one metric per key. Accumulation runs in ascending
// trial-ID order, so the reduction is bit-reproducible regardless of
// worker count, execution order or sharding.
func GroupMean(results []Result, metric string) map[string]float64 {
	rs := append([]Result(nil), results...)
	sortResults(rs)
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, r := range rs {
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		sums[r.Key] += v
		counts[r.Key]++
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// GroupByKey buckets results per key, each bucket sorted by trial ID.
func GroupByKey(results []Result) map[string][]Result {
	rs := append([]Result(nil), results...)
	sortResults(rs)
	out := make(map[string][]Result)
	for _, r := range rs {
		out[r.Key] = append(out[r.Key], r)
	}
	return out
}

// SortedResults returns a copy of results sorted by trial ID — the
// canonical ordering of every serialized artifact.
func SortedResults(results []Result) []Result {
	rs := append([]Result(nil), results...)
	sortResults(rs)
	return rs
}

// MarshalResults renders results as canonical indented JSON sorted by
// trial ID: byte-identical across any two runs that produced identical
// results — the equality the determinism tests assert.
func MarshalResults(results []Result) ([]byte, error) {
	rs := append([]Result(nil), results...)
	sortResults(rs)
	return json.MarshalIndent(rs, "", "  ")
}
