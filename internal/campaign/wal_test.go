package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// walFixtureHeader is a fixed coordinator-journal header used by the
// golden and round-trip tests.
func walFixtureHeader() WALHeader {
	return WALHeader{
		Version:     walVersion,
		Campaign:    "selftest",
		Trials:      8,
		Fingerprint: "deadbeefcafe0123",
		Spec:        `{"version":1,"kind":"selftest","seed":7,"selftest":{"trials":8}}`,
		Planner:     "uniform",
		Shards: []WALShard{
			{Label: "0/2", Trials: []int{0, 2, 4, 6}},
			{Label: "1/2", Trials: []int{1, 3, 5, 7}},
		},
	}
}

// writeFixtureWAL journals a deterministic grant/result/release/expire
// sequence and returns the file path.
func writeFixtureWAL(t *testing.T, path string) {
	t.Helper()
	w, err := CreateWAL(path, walFixtureHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendLease := func(l WALLease) {
		if err := w.AppendLease(l); err != nil {
			t.Fatal(err)
		}
	}
	appendLease(WALLease{Event: LeaseGranted, ID: "l1-s0", Worker: "w1-a", Shard: "0/2"})
	appendLease(WALLease{Event: LeaseGranted, ID: "l2-s1", Worker: "w2-b", Shard: "1/2"})
	for id := 0; id < 4; id++ {
		if err := w.AppendResult(Result{
			TrialID: id, Key: "k",
			Metrics: map[string]float64{"acc": float64(id) / 8},
			Wall:    0.25,
		}); err != nil {
			t.Fatal(err)
		}
	}
	appendLease(WALLease{Event: LeaseExpired, ID: "l2-s1"})
	appendLease(WALLease{Event: LeaseGranted, ID: "l3-s1", Worker: "w1-a", Shard: "1/2"})
	appendLease(WALLease{Event: LeaseReleased, ID: "l1-s0"})
}

// TestWALGolden pins the journal's byte format: coordinator restart
// reads files written by earlier builds, so schema drift must break CI,
// not recovery. Regenerate with
//
//	go test ./internal/campaign/ -run WALGolden -update
func TestWALGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	writeFixtureWAL(t, path)
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "wal.golden.jsonl")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("WAL JSONL drifted from golden schema:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWALReplayRoundTrip: what was journaled is what replays — header,
// results (with out-of-band wall), lease events, and the open-lease
// fold a restarted coordinator invalidates.
func TestWALReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	writeFixtureWAL(t, path)
	hdr, results, leases, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hdr, walFixtureHeader()) {
		t.Fatalf("replayed header %+v differs from written %+v", hdr, walFixtureHeader())
	}
	if len(results) != 4 {
		t.Fatalf("replayed %d results, want 4", len(results))
	}
	for i, r := range results {
		if r.TrialID != i || r.Wall != 0.25 {
			t.Fatalf("result %d: id=%d wall=%v", i, r.TrialID, r.Wall)
		}
	}
	if len(leases) != 5 {
		t.Fatalf("replayed %d lease events, want 5", len(leases))
	}
	open := OpenLeases(leases)
	if len(open) != 1 || open[0].ID != "l3-s1" || open[0].Shard != "1/2" {
		t.Fatalf("open leases = %+v, want exactly l3-s1 on shard 1/2", open)
	}
}

// TestWALPlanRecord: a journaled re-plan supersedes the header's
// admission-time shard table on replay — the latest plan wins, its
// planner name is folded in, and results journaled before or after the
// re-plan replay identically. A plan before the header is rejected.
func TestWALPlanRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := CreateWAL(path, walFixtureHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendResult(Result{TrialID: 0, Key: "k", Wall: 0.5}); err != nil {
		t.Fatal(err)
	}
	stale := WALPlan{Planner: "balance:accumulated", Shards: []WALShard{
		{Label: "0/2", Trials: []int{0, 1, 2}},
		{Label: "1/2", Trials: []int{3, 4, 5, 6, 7}},
	}}
	final := WALPlan{Planner: "balance:accumulated", Shards: []WALShard{
		{Label: "0/2", Trials: []int{0, 1, 2, 3, 4}},
		{Label: "1/2", Trials: []int{5, 6, 7}},
	}}
	if err := w.AppendPlan(stale); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendResult(Result{TrialID: 5, Key: "k", Wall: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPlan(final); err != nil {
		t.Fatal(err)
	}
	w.Close()

	hdr, results, _, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hdr.Shards, final.Shards) {
		t.Fatalf("replayed shards %+v, want the latest plan %+v", hdr.Shards, final.Shards)
	}
	if hdr.Planner != "balance:accumulated" {
		t.Fatalf("replayed planner %q, want the re-plan's", hdr.Planner)
	}
	if len(results) != 2 || results[0].TrialID != 0 || results[1].TrialID != 5 {
		t.Fatalf("results drifted across plan records: %+v", results)
	}

	orphan := filepath.Join(t.TempDir(), "orphan.jsonl")
	if err := os.WriteFile(orphan, []byte(`{"plan":{"shards":[]}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadWAL(orphan); err == nil || !strings.Contains(err.Error(), "before header") {
		t.Fatalf("plan before header: err = %v", err)
	}
}

// TestOpenLeasesIDReuse: an ID granted, closed, and granted again (as
// journals written before coordinators advanced their lease sequence
// across restarts can contain) folds to exactly one open lease — the
// latest grant — never a duplicate.
func TestOpenLeasesIDReuse(t *testing.T) {
	events := []WALLease{
		{Event: LeaseGranted, ID: "l1-s0", Worker: "epoch1", Shard: "0/2"},
		{Event: LeaseInvalidated, ID: "l1-s0"},
		{Event: LeaseGranted, ID: "l1-s0", Worker: "epoch2", Shard: "0/2"},
	}
	open := OpenLeases(events)
	if len(open) != 1 || open[0].Worker != "epoch2" {
		t.Fatalf("open leases after ID reuse = %+v, want exactly the epoch2 grant", open)
	}
	if got := GrantCount(events); got != 2 {
		t.Fatalf("GrantCount = %d, want 2", got)
	}
}

// TestWALTornFinalRecord: a record half-written by a SIGKILL is dropped
// by ReadWAL, and OpenWALAppend truncates it so subsequent appends keep
// the file parseable.
func TestWALTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	writeFixtureWAL(t, path)
	whole, _, _, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"result":{"trial":7,"key":"k","metrics":{"ac`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	hdr, results, _, err := ReadWAL(path)
	if err != nil {
		t.Fatalf("torn final record should be tolerated: %v", err)
	}
	if !reflect.DeepEqual(hdr, whole) || len(results) != 4 {
		t.Fatalf("torn-tail replay drifted: %d results", len(results))
	}

	// Reopen-for-append truncates the tail; a fresh record then parses.
	w, err := OpenWALAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendResult(Result{TrialID: 7, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, results, _, err = ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || results[4].TrialID != 7 {
		t.Fatalf("post-truncate append lost: %d results", len(results))
	}
}

// TestWALRejections: corruption mid-file, a checkpoint masquerading as
// a WAL, future versions, and missing headers all fail loudly.
func TestWALRejections(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	hdr := `{"header":{"version":1,"campaign":"c","trials":2,"fingerprint":"ab","shards":[{"label":"0/1","trials":[0,1]}]}}`
	cases := []struct {
		name, content, want string
	}{
		{"mid-file corruption", hdr + "\n{garbage}\n{\"result\":{\"trial\":0,\"key\":\"k\"}}\n", "line 2"},
		{"checkpoint not wal", `{"header":{"version":1,"campaign":"c","trials":2}}` + "\n", "not a coordinator WAL"},
		{"future version", strings.Replace(hdr, `"version":1`, `"version":99`, 1) + "\n", "newer than supported"},
		{"no header", `{"result":{"trial":0,"key":"k"}}` + "\n", "before header"},
		{"empty", "", "no header"},
	}
	for _, tc := range cases {
		p := write(strings.ReplaceAll(tc.name, " ", "-")+".jsonl", tc.content)
		_, _, _, err := ReadWAL(p)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
