package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Coordinator write-ahead log. A distributed-campaign coordinator
// journals everything it would lose on a crash — which experiment it
// serves, how the trial list was split into shards, which leases it
// granted, and every result it accepted — as append-only JSONL, one
// record per line, flushed per append like checkpoints. A restarted
// coordinator replays the file (tolerating a torn final line from the
// kill), re-derives the trial bodies from the embedded spec, restores
// the exact shard table, treats journaled-but-open leases as
// invalidated, and carries on; workers re-register and resume from
// their local checkpoints. The WAL doubles as a timing source for
// load-aware planning (TimingFromFile) since result records carry the
// out-of-band per-trial wall-clock.

// walVersion is bumped on incompatible WAL schema changes; readers
// refuse newer files instead of misparsing them. Version 2 added plan
// records (mid-run re-planning journals a replacement shard table);
// version-1 files remain readable.
const walVersion = 2

// WALFileName is the journal's filename inside a coordinator state
// directory.
const WALFileName = "wal.jsonl"

// WALPath returns the journal path for a state directory.
func WALPath(stateDir string) string { return filepath.Join(stateDir, WALFileName) }

// WALHeader is the journal's first record: the run's identity and its
// shard plan. Fingerprint pins the canonical experiment spec — a
// restarted coordinator refuses a state dir whose fingerprint does not
// match the campaign it was asked to serve.
type WALHeader struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	// Trials is the campaign's FULL trial count (not just the pending
	// subset the coordinator was handed).
	Trials int `json:"trials"`
	// Fingerprint and Spec identify the experiment (spec.Fingerprint /
	// canonical spec JSON), making the state dir self-describing.
	Fingerprint string `json:"fingerprint"`
	Spec        string `json:"spec,omitempty"`
	// Planner names the policy that produced Shards (observability; the
	// table itself is authoritative on replay).
	Planner string `json:"planner,omitempty"`
	// Shards is the shard table: labels plus trial-ID membership. Trial
	// bodies are re-derived from the spec on replay, so the journal
	// stays small however fat the trials' tags are.
	Shards []WALShard `json:"shards"`
}

// WALShard is one journaled shard: label and membership by trial ID.
type WALShard struct {
	Label  string `json:"label"`
	Trials []int  `json:"trials"`
}

// Lease lifecycle events a coordinator journals.
const (
	// LeaseGranted: a worker was handed the shard.
	LeaseGranted = "grant"
	// LeaseReleased: the shard completed and the lease was dropped.
	LeaseReleased = "release"
	// LeaseExpired: the holder missed its heartbeat deadline; the shard
	// went back on the queue.
	LeaseExpired = "expire"
	// LeaseInvalidated: a restarted coordinator voided a lease that was
	// open when its predecessor died.
	LeaseInvalidated = "invalidate"
)

// WALLease journals one lease lifecycle event.
type WALLease struct {
	Event  string `json:"event"`
	ID     string `json:"id"`
	Worker string `json:"worker,omitempty"`
	Shard  string `json:"shard,omitempty"`
}

// WALPlan journals a replacement shard table: a coordinator that
// re-planned a run mid-flight (as accumulated timing data arrives)
// appends one so replay restores the plan actually in force, not the
// admission-time one. Only unleased, unfinished work may be moved, so
// the latest plan record is always authoritative.
type WALPlan struct {
	// Planner names the policy that produced this plan (observability).
	Planner string `json:"planner,omitempty"`
	// Shards is the full replacement shard table (same shape as the
	// header's).
	Shards []WALShard `json:"shards"`
}

// walRecord is one journal line: exactly one of Header/Plan/Lease/
// Result set. Wall carries Result.Wall out of band, as checkpoints do.
type walRecord struct {
	Header *WALHeader `json:"header,omitempty"`
	Plan   *WALPlan   `json:"plan,omitempty"`
	Lease  *WALLease  `json:"lease,omitempty"`
	Result *Result    `json:"result,omitempty"`
	Wall   float64    `json:"wall,omitempty"`
}

// WAL appends journal records with per-record flushing, so a SIGKILLed
// coordinator loses at most the line being written.
type WAL struct {
	af *appendFile
}

// CreateWAL creates (truncating) a journal and writes its header line,
// stamping the current schema version (callers never set it).
func CreateWAL(path string, h WALHeader) (*WAL, error) {
	h.Version = walVersion
	af, err := createAppendFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: create WAL: %w", err)
	}
	w := &WAL{af: af}
	if err := w.append(walRecord{Header: &h}); err != nil {
		af.Close()
		return nil, err
	}
	return w, nil
}

// OpenWALAppend reopens an existing journal for appending, truncating a
// torn final line first (as OpenCheckpointAppend does) so later records
// never fuse with the tail a killed coordinator left.
func OpenWALAppend(path string) (*WAL, error) {
	af, err := openAppendFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open WAL: %w", err)
	}
	return &WAL{af: af}, nil
}

// AppendResult journals one accepted result (wall-clock out of band).
func (w *WAL) AppendResult(r Result) error {
	return w.append(walRecord{Result: &r, Wall: r.Wall})
}

// AppendLease journals one lease lifecycle event.
func (w *WAL) AppendLease(l WALLease) error {
	return w.append(walRecord{Lease: &l})
}

// AppendPlan journals a replacement shard table (mid-run re-planning).
func (w *WAL) AppendPlan(p WALPlan) error {
	return w.append(walRecord{Plan: &p})
}

func (w *WAL) append(rec walRecord) error {
	if err := w.af.appendJSON(rec); err != nil {
		return fmt.Errorf("campaign: write WAL: %w", err)
	}
	return nil
}

// Close flushes and closes the journal.
func (w *WAL) Close() error { return w.af.Close() }

// ErrNotWAL marks a file that parses as JSONL but whose header is not
// a coordinator-WAL header — most likely a plain checkpoint passed by
// mistake. Callers that accept either format (TimingFromFile) branch
// on it; genuine WAL corruption is reported as itself.
var ErrNotWAL = errors.New("not a coordinator WAL")

// ReadWAL loads a journal: header, accepted results (sorted by trial
// ID, duplicates dropped), and every lease event in order. A truncated
// final line — the record being written when the coordinator was
// killed — is dropped; corruption anywhere else is an error, as is a
// file whose header is not a WAL header (ErrNotWAL).
func ReadWAL(path string) (WALHeader, []Result, []WALLease, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return WALHeader{}, nil, nil, fmt.Errorf("campaign: read WAL: %w", err)
	}
	return ReadWALBytes(data, path)
}

// ReadWALBytes is ReadWAL over an already-loaded journal; path only
// names the source in errors. It lets a caller that had to read the
// file anyway (a restarting coordinator probing for a torn header)
// avoid a second full read.
func ReadWALBytes(data []byte, path string) (WALHeader, []Result, []WALLease, error) {
	fail := func(err error) (WALHeader, []Result, []WALLease, error) {
		return WALHeader{}, nil, nil, err
	}
	recs, err := decodeJSONL[walRecord](data, "WAL", path)
	if err != nil {
		return fail(err)
	}
	var (
		header    WALHeader
		gotHeader bool
		results   []Result
		seen      = make(map[int]bool)
		leases    []WALLease
	)
	for _, rec := range recs {
		switch {
		case rec.Header != nil:
			if gotHeader {
				return fail(fmt.Errorf("campaign: WAL %s has multiple headers", path))
			}
			if rec.Header.Version > walVersion {
				return fail(fmt.Errorf("campaign: WAL %s version %d newer than supported %d",
					path, rec.Header.Version, walVersion))
			}
			if rec.Header.Fingerprint == "" || rec.Header.Shards == nil {
				return fail(fmt.Errorf("campaign: %s is %w (checkpoint file passed by mistake?)", path, ErrNotWAL))
			}
			header = *rec.Header
			gotHeader = true
		case rec.Plan != nil:
			if !gotHeader {
				return fail(fmt.Errorf("campaign: WAL %s: plan record before header", path))
			}
			// The latest plan supersedes the header's admission-time
			// shard table; fold it in so callers replay the plan that
			// was actually in force.
			header.Shards = rec.Plan.Shards
			if rec.Plan.Planner != "" {
				header.Planner = rec.Plan.Planner
			}
		case rec.Lease != nil:
			if !gotHeader {
				return fail(fmt.Errorf("campaign: WAL %s: lease event before header", path))
			}
			leases = append(leases, *rec.Lease)
		case rec.Result != nil:
			if !gotHeader {
				return fail(fmt.Errorf("campaign: WAL %s: result before header", path))
			}
			if seen[rec.Result.TrialID] {
				continue
			}
			seen[rec.Result.TrialID] = true
			rec.Result.Wall = rec.Wall
			results = append(results, *rec.Result)
		}
	}
	if !gotHeader {
		return fail(fmt.Errorf("campaign: WAL %s has no header", path))
	}
	sortResults(results)
	return header, results, leases, nil
}

// OpenLeases folds a journal's lease events and returns the leases
// still open at the end — granted but never released, expired or
// invalidated. A restarted coordinator invalidates exactly these. An
// ID granted, closed, and granted again (coordinators advance their
// lease sequence across restarts, but older journals may reuse IDs)
// yields one entry, the latest grant.
func OpenLeases(events []WALLease) []WALLease {
	open := make(map[string]WALLease)
	var order []string
	for _, ev := range events {
		switch ev.Event {
		case LeaseGranted:
			open[ev.ID] = ev
			order = append(order, ev.ID)
		case LeaseReleased, LeaseExpired, LeaseInvalidated:
			delete(open, ev.ID)
		}
	}
	var out []WALLease
	emitted := make(map[string]bool)
	for _, id := range order {
		if ev, ok := open[id]; ok && !emitted[id] {
			emitted[id] = true
			out = append(out, ev)
		}
	}
	return out
}

// GrantCount returns how many grant events a journal holds — the lease
// sequence a restarted coordinator resumes from so fresh lease IDs
// never collide with journaled ones.
func GrantCount(events []WALLease) int {
	n := 0
	for _, ev := range events {
		if ev.Event == LeaseGranted {
			n++
		}
	}
	return n
}
