package campaign

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"falvolt/internal/tensor"
)

// TestPoolRunnerConcurrencyStress exercises the PoolRunner's shared
// state under contention — lazy per-lane worker creation, serialized
// sink delivery, checkpoint appends — and is the campaign entry in the
// -race CI job. Each lane mutates private state without locks (the
// lane-sequential contract); the detector flags any violation.
func TestPoolRunnerConcurrencyStress(t *testing.T) {
	const n = 256
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{ID: i, Key: fmt.Sprintf("k%d", i%7), Seed: int64(i)}
	}
	var created atomic.Int32
	c := New("stress", trials, func(lane int) (Worker, error) {
		created.Add(1)
		private := 0 // per-lane state touched without locks
		return WorkerFunc(func(tr Trial) (Result, error) {
			private++
			return Result{
				TrialID: tr.ID,
				Key:     tr.Key,
				Metrics: map[string]float64{"v": float64(tr.Seed), "lanehits": float64(private)},
			}, nil
		}), nil
	})
	path := filepath.Join(t.TempDir(), "stress.jsonl")
	rr, err := Run(c, Options{
		Runner:     PoolRunner{Engine: tensor.NewParallel(8)},
		Checkpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Complete || len(rr.Results) != n {
		t.Fatalf("completed %d/%d", len(rr.Results), n)
	}
	if got := created.Load(); got < 1 || got > 8 {
		t.Errorf("created %d workers for an 8-lane engine", got)
	}
	// The checkpoint must hold exactly the same n results.
	_, rs, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Complete(rs, n) {
		t.Fatalf("checkpoint incomplete: missing %v", Missing(rs, n))
	}
	for _, r := range rs {
		if r.Metrics["v"] != float64(r.TrialID) {
			t.Fatalf("trial %d carries wrong payload %v", r.TrialID, r.Metrics["v"])
		}
	}
}

// TestConcurrentIndependentRuns runs several campaigns at once on the
// shared default engine, as cmd/experiments does for figure campaigns.
func TestConcurrentIndependentRuns(t *testing.T) {
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			rr, err := Run(testCampaign(40, nil), Options{Runner: PoolRunner{Engine: tensor.NewParallel(4)}})
			if err == nil && !rr.Complete {
				err = fmt.Errorf("incomplete")
			}
			done <- err
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
