package campaign

import (
	"context"
	"fmt"
	"io"
	"os"
)

// Options configures one Run invocation.
type Options struct {
	// Context cancels the run: dispatching stops promptly and Run
	// returns the context error; completed trials stay in the
	// checkpoint, so a cancelled run resumes where it stopped. Nil
	// means context.Background().
	Context context.Context
	// Runner executes the trials (nil selects PoolRunner on the
	// process-default engine).
	Runner Runner
	// Shard restricts this run to the Index-th of Count interleaved
	// trial subsets; partial results from all shards merge via
	// Merge/MergeFiles. Zero value runs the whole campaign.
	Shard Shard
	// Checkpoint is a JSONL path results are appended to as they
	// complete ("" disables). If the file already exists, trial IDs it
	// holds are skipped — an interrupted campaign resumes where it
	// stopped. The existing header must match this run's campaign,
	// trial count, shard and metadata.
	Checkpoint string
	// MaxNew caps how many new trials this invocation executes (0 = no
	// cap). With a checkpoint this turns one campaign into several
	// bounded sittings — and gives tests a deterministic "kill" point.
	MaxNew int
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// RunResult is the outcome of one Run invocation.
type RunResult struct {
	// Header describes the campaign (as written to the checkpoint).
	Header Header
	// Results are every completed trial of this shard — resumed and
	// newly executed — sorted by trial ID.
	Results []Result
	// Planned, Resumed and Executed count this shard's trials, those
	// skipped via the checkpoint, and those newly run.
	Planned, Resumed, Executed int
	// Complete reports whether every planned trial now has a result
	// (false after a MaxNew cutoff).
	Complete bool
}

// Run executes a campaign (or one shard of it) with checkpointed
// resume: enumerate trials, subtract those already in the checkpoint,
// execute the remainder on the runner, and return all completed results
// sorted by trial ID.
func Run(c Campaign, opt Options) (*RunResult, error) {
	if err := opt.Shard.Validate(); err != nil {
		return nil, err
	}
	trials, err := c.Trials()
	if err != nil {
		return nil, fmt.Errorf("campaign %s: enumerate: %w", c.Name(), err)
	}
	if err := checkTrials(trials); err != nil {
		return nil, err
	}
	header := NewHeader(c, len(trials), opt.Shard)
	mine := opt.Shard.Of(trials)

	// Resume: load completed trial IDs from an existing checkpoint.
	var resumed []Result
	resuming := false
	if opt.Checkpoint != "" {
		if _, err := os.Stat(opt.Checkpoint); err == nil {
			prev, rs, err := ReadCheckpoint(opt.Checkpoint)
			if err != nil {
				return nil, err
			}
			if !prev.compatible(header) || prev.Shard != header.Shard {
				return nil, fmt.Errorf("campaign %s: checkpoint %s is from a different campaign, configuration or shard",
					c.Name(), opt.Checkpoint)
			}
			resumed = rs
			resuming = true
		}
	}
	done := make(map[int]bool, len(resumed))
	for _, r := range resumed {
		done[r.TrialID] = true
	}
	var pending []Trial
	for _, t := range mine {
		if !done[t.ID] {
			pending = append(pending, t)
		}
	}
	if opt.MaxNew > 0 && len(pending) > opt.MaxNew {
		pending = pending[:opt.MaxNew]
	}
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "campaign %s: shard %s: %d trials, %d resumed, %d to run\n",
			c.Name(), header.Shard, len(mine), len(done), len(pending))
	}

	var ckpt *Checkpoint
	if opt.Checkpoint != "" {
		if resuming {
			ckpt, err = OpenCheckpointAppend(opt.Checkpoint)
		} else {
			ckpt, err = CreateCheckpoint(opt.Checkpoint, header)
		}
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}

	runner := opt.Runner
	if runner == nil {
		runner = PoolRunner{}
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var fresh []Result
	sink := func(r Result) error {
		fresh = append(fresh, r)
		if ckpt != nil {
			return ckpt.Append(r)
		}
		return nil
	}
	if len(pending) > 0 {
		if err := runner.Run(ctx, c, pending, sink); err != nil {
			return nil, err
		}
	}

	all, err := Merge(resumed, fresh)
	if err != nil {
		return nil, err
	}
	rr := &RunResult{
		Header:   header,
		Results:  all,
		Planned:  len(mine),
		Resumed:  len(resumed),
		Executed: len(fresh),
		Complete: len(all) == len(mine),
	}
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "campaign %s: shard %s: %d/%d complete\n",
			c.Name(), header.Shard, len(all), len(mine))
	}
	return rr, nil
}
