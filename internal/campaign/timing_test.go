package campaign

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"falvolt/internal/tensor"
)

// TestPoolRunnerRecordsWall: every executed trial carries a positive
// wall-clock duration.
func TestPoolRunnerRecordsWall(t *testing.T) {
	rr := mustRun(t, testCampaign(8, nil), Options{Runner: PoolRunner{Engine: tensor.Serial()}})
	for _, r := range rr.Results {
		if r.Wall <= 0 {
			t.Fatalf("trial %d has no recorded wall-clock", r.TrialID)
		}
	}
}

// TestWallExcludedFromCanonicalJSON: identical results with different
// timings marshal to identical canonical bytes — the merge
// byte-reproducibility contract must survive the timing field.
func TestWallExcludedFromCanonicalJSON(t *testing.T) {
	a := []Result{{TrialID: 0, Key: "k", Metrics: map[string]float64{"acc": 0.5}, Wall: 0.001}}
	b := []Result{{TrialID: 0, Key: "k", Metrics: map[string]float64{"acc": 0.5}, Wall: 42.0}}
	if !bytes.Equal(marshal(t, a), marshal(t, b)) {
		t.Fatal("Wall leaked into canonical result JSON")
	}
	if !sameResult(a[0], b[0]) {
		t.Fatal("Wall participates in result-identity comparison")
	}
}

// TestCheckpointPreservesWall: durations round-trip through checkpoint
// write and read (both the incremental writer and the atomic one).
func TestCheckpointPreservesWall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	rr := mustRun(t, testCampaign(6, nil), Options{
		Checkpoint: path, Runner: PoolRunner{Engine: tensor.Serial()},
	})
	_, rs, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Wall != rr.Results[i].Wall {
			t.Fatalf("trial %d: checkpoint wall %v, ran %v", r.TrialID, r.Wall, rr.Results[i].Wall)
		}
		if r.Wall <= 0 {
			t.Fatalf("trial %d lost its wall-clock through the checkpoint", r.TrialID)
		}
	}
	atomicPath := filepath.Join(t.TempDir(), "merged.jsonl")
	if err := WriteCheckpointAtomic(atomicPath, rr.Header, rr.Results); err != nil {
		t.Fatal(err)
	}
	_, rs2, err := ReadCheckpoint(atomicPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs2 {
		if r.Wall != rr.Results[i].Wall {
			t.Fatalf("atomic checkpoint dropped wall for trial %d", r.TrialID)
		}
	}
}

// TestTimingByKey: aggregation math and ordering (expensive keys first).
func TestTimingByKey(t *testing.T) {
	results := []Result{
		{TrialID: 0, Key: "cheap", Wall: 0.1},
		{TrialID: 1, Key: "cheap", Wall: 0.3},
		{TrialID: 2, Key: "dear", Wall: 2.0},
		{TrialID: 3, Key: "untimed"}, // e.g. from a pre-timing checkpoint
	}
	kts := TimingByKey(results)
	if len(kts) != 2 {
		t.Fatalf("got %d keys, want 2 (untimed results skipped)", len(kts))
	}
	if kts[0].Key != "dear" || kts[1].Key != "cheap" {
		t.Fatalf("keys not sorted by descending total: %+v", kts)
	}
	cheap := kts[1]
	if cheap.Count != 2 || math.Abs(cheap.Total-0.4) > 1e-12 || cheap.Max != 0.3 ||
		math.Abs(cheap.Mean()-0.2) > 1e-12 {
		t.Fatalf("cheap timing wrong: %+v", cheap)
	}
	var buf bytes.Buffer
	WriteTimingSummary(&buf, results)
	if buf.Len() == 0 {
		t.Fatal("summary empty despite timed results")
	}
	buf.Reset()
	WriteTimingSummary(&buf, []Result{{TrialID: 0, Key: "x"}})
	if buf.Len() != 0 {
		t.Fatal("summary printed for a result set with no durations")
	}
}
