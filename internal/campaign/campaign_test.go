package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"falvolt/internal/tensor"
)

// testCampaign is a deterministic synthetic sweep: every trial's result
// is a pure function of the trial, mimicking the seed-addressed fault
// evaluations of the real campaigns. runs counts trial executions so
// resume tests can assert no trial ever runs twice.
func testCampaign(n int, runs *atomic.Int64) Campaign {
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{
			ID:   i,
			Key:  fmt.Sprintf("point%02d", i/4), // 4 repeats per key
			Seed: int64(1000 + i),
			Tags: map[string]string{"rep": fmt.Sprint(i % 4)},
		}
	}
	return NewWithMeta("synthetic", map[string]string{"n": fmt.Sprint(n)}, trials,
		func(lane int) (Worker, error) {
			return WorkerFunc(func(t Trial) (Result, error) {
				if runs != nil {
					runs.Add(1)
				}
				rng := rand.New(rand.NewSource(t.Seed))
				return Result{
					TrialID: t.ID,
					Key:     t.Key,
					Metrics: map[string]float64{"acc": rng.Float64(), "loss": rng.Float64()},
					Series:  map[string][]float64{"curve": {rng.Float64(), rng.Float64()}},
				}, nil
			}), nil
		})
}

func mustRun(t *testing.T, c Campaign, opt Options) *RunResult {
	t.Helper()
	rr, err := Run(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rr
}

func marshal(t *testing.T, rs []Result) []byte {
	t.Helper()
	b, err := MarshalResults(rs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterminismAcrossWorkerCounts is the reduction-contract gate: the
// same campaign run with 1, 2 and 8 workers produces byte-identical
// result JSON.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const n = 37
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		c := testCampaign(n, nil)
		rr := mustRun(t, c, Options{Runner: PoolRunner{Engine: tensor.NewParallel(workers)}})
		if !rr.Complete || rr.Executed != n {
			t.Fatalf("workers=%d: executed %d/%d, complete=%v", workers, rr.Executed, n, rr.Complete)
		}
		got := marshal(t, rr.Results)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: result JSON differs from 1-worker run", workers)
		}
	}
	// Serial backend too (different Map implementation).
	rr := mustRun(t, testCampaign(n, nil), Options{Runner: PoolRunner{Engine: tensor.Serial()}})
	if got := marshal(t, rr.Results); !bytes.Equal(got, want) {
		t.Fatal("serial-backend run differs from parallel runs")
	}
}

// TestDeterminismAcrossShards: shard 0/2 + shard 1/2 merged from their
// checkpoint files is byte-identical to the single-process run.
func TestDeterminismAcrossShards(t *testing.T) {
	const n = 37
	dir := t.TempDir()

	whole := mustRun(t, testCampaign(n, nil), Options{})
	want := marshal(t, whole.Results)

	var paths []string
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		sh := Shard{Index: i, Count: 2}
		rr := mustRun(t, testCampaign(n, nil), Options{
			Shard:      sh,
			Checkpoint: path,
			Runner:     PoolRunner{Engine: tensor.NewParallel(4)},
		})
		if !rr.Complete {
			t.Fatalf("shard %d incomplete", i)
		}
		if rr.Planned >= n || rr.Planned == 0 {
			t.Fatalf("shard %d planned %d of %d trials", i, rr.Planned, n)
		}
		paths = append(paths, path)
	}
	h, merged, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if h.Campaign != "synthetic" || h.Trials != n || h.Shard != "" {
		t.Errorf("merged header = %+v", h)
	}
	if !Complete(merged, n) {
		t.Fatalf("merged results incomplete: missing %v", Missing(merged, n))
	}
	if got := marshal(t, merged); !bytes.Equal(got, want) {
		t.Fatal("merged shard results differ from single-process run")
	}
}

// TestCheckpointResume simulates a mid-run kill via the MaxNew cutoff:
// the resumed run must skip every completed trial (no re-runs) and the
// final merge must equal an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	const n, cut = 24, 7
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	var runs atomic.Int64
	rr := mustRun(t, testCampaign(n, &runs), Options{Checkpoint: path, MaxNew: cut})
	if rr.Complete {
		t.Fatal("cutoff run should be incomplete")
	}
	if rr.Executed != cut || runs.Load() != cut {
		t.Fatalf("cutoff run executed %d (worker saw %d), want %d", rr.Executed, runs.Load(), cut)
	}

	rr2 := mustRun(t, testCampaign(n, &runs), Options{Checkpoint: path})
	if !rr2.Complete {
		t.Fatal("resumed run should complete")
	}
	if rr2.Resumed != cut || rr2.Executed != n-cut {
		t.Fatalf("resumed %d / executed %d, want %d / %d", rr2.Resumed, rr2.Executed, cut, n-cut)
	}
	if runs.Load() != n {
		t.Fatalf("worker ran %d trials across both sittings, want exactly %d (no re-runs)", runs.Load(), n)
	}

	uninterrupted := mustRun(t, testCampaign(n, nil), Options{})
	if !bytes.Equal(marshal(t, rr2.Results), marshal(t, uninterrupted.Results)) {
		t.Fatal("resumed results differ from uninterrupted run")
	}

	// A third run over the complete checkpoint executes nothing.
	rr3 := mustRun(t, testCampaign(n, &runs), Options{Checkpoint: path})
	if rr3.Executed != 0 || !rr3.Complete || runs.Load() != n {
		t.Fatalf("no-op resume executed %d trials", rr3.Executed)
	}
}

// TestCheckpointTornFinalLine: a truncated last line (killed mid-write)
// is dropped and the campaign resumes from the surviving results.
func TestCheckpointTornFinalLine(t *testing.T) {
	const n = 10
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	mustRun(t, testCampaign(n, nil), Options{Checkpoint: path, MaxNew: 5})

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(bytes.TrimRight(data, "\n"), []byte("\n{\"result\":{\"trial\":9,\"key\":\"poi")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	h, rs, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Campaign != "synthetic" || len(rs) != 5 {
		t.Fatalf("recovered %d results from torn checkpoint, want 5", len(rs))
	}
	rr := mustRun(t, testCampaign(n, nil), Options{Checkpoint: path})
	if !rr.Complete || rr.Resumed != 5 {
		t.Fatalf("resume after torn write: resumed %d complete %v", rr.Resumed, rr.Complete)
	}
	// The resumed file must be fully readable again: appending must have
	// truncated the torn tail instead of fusing the next record onto it.
	_, rs2, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("re-read after torn-write resume: %v", err)
	}
	if !Complete(rs2, n) {
		t.Fatalf("post-resume checkpoint incomplete: missing %v", Missing(rs2, n))
	}
	if !bytes.Equal(marshal(t, rs2), marshal(t, mustRun(t, testCampaign(n, nil), Options{}).Results)) {
		t.Fatal("post-resume checkpoint differs from uninterrupted run")
	}
}

// TestCheckpointMismatchRejected: resuming or merging with a checkpoint
// from a different campaign, configuration or shard fails loudly.
func TestCheckpointMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")
	mustRun(t, testCampaign(10, nil), Options{Checkpoint: path})

	if _, err := Run(testCampaign(12, nil), Options{Checkpoint: path}); err == nil {
		t.Error("trial-count mismatch should refuse to resume")
	}
	if _, err := Run(testCampaign(10, nil), Options{Checkpoint: path, Shard: Shard{Index: 0, Count: 2}}); err == nil {
		t.Error("shard mismatch should refuse to resume")
	}
	other := filepath.Join(dir, "other.jsonl")
	mustRun(t, testCampaign(12, nil), Options{Checkpoint: other})
	if _, _, err := MergeFiles(path, other); err == nil {
		t.Error("merging different campaigns should fail")
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	a := []Result{{TrialID: 0, Key: "k", Metrics: map[string]float64{"acc": 0.5}}}
	b := []Result{{TrialID: 0, Key: "k", Metrics: map[string]float64{"acc": 0.6}}}
	if _, err := Merge(a, b); err == nil {
		t.Error("conflicting duplicate results should fail to merge")
	}
	// Identical duplicates are fine (shard overlap from re-runs).
	merged, err := Merge(a, a)
	if err != nil || len(merged) != 1 {
		t.Errorf("identical duplicates: merged=%v err=%v", merged, err)
	}
}

func TestShardPartition(t *testing.T) {
	trials := make([]Trial, 11)
	for i := range trials {
		trials[i] = Trial{ID: i}
	}
	seen := make(map[int]int)
	for i := 0; i < 3; i++ {
		for _, tr := range (Shard{Index: i, Count: 3}).Of(trials) {
			seen[tr.ID]++
		}
	}
	if len(seen) != 11 {
		t.Fatalf("shards cover %d of 11 trials", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("trial %d in %d shards", id, c)
		}
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"", Shard{}, true},
		{"0/1", Shard{0, 1}, true},
		{"1/2", Shard{1, 2}, true},
		{"2/2", Shard{}, false},
		{"-1/2", Shard{}, false},
		{"1", Shard{}, false},
		{"a/b", Shard{}, false},
	} {
		got, err := ParseShard(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if (Shard{}).String() != "0/1" || (Shard{1, 4}).String() != "1/4" {
		t.Error("Shard.String format")
	}
}

// TestShardCountExceedsTrials: more shards than trials leaves some
// shards empty; empty-shard runs complete trivially, write header-only
// checkpoints, and merge cleanly into the full campaign.
func TestShardCountExceedsTrials(t *testing.T) {
	const n, shards = 3, 5
	dir := t.TempDir()
	want := marshal(t, mustRun(t, testCampaign(n, nil), Options{}).Results)

	var paths []string
	for i := 0; i < shards; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		rr := mustRun(t, testCampaign(n, nil), Options{
			Shard: Shard{Index: i, Count: shards}, Checkpoint: path,
		})
		if !rr.Complete {
			t.Fatalf("shard %d/%d incomplete", i, shards)
		}
		if i >= n && (rr.Planned != 0 || rr.Executed != 0) {
			t.Fatalf("empty shard %d/%d planned %d, executed %d", i, shards, rr.Planned, rr.Executed)
		}
		// Resuming an empty shard is a no-op, not an error.
		rr2 := mustRun(t, testCampaign(n, nil), Options{
			Shard: Shard{Index: i, Count: shards}, Checkpoint: path,
		})
		if rr2.Executed != 0 {
			t.Fatalf("shard %d/%d re-ran %d trials on resume", i, shards, rr2.Executed)
		}
		paths = append(paths, path)
	}
	h, merged, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if h.Trials != n || !Complete(merged, n) {
		t.Fatalf("merge across empty shards: %d trials, missing %v", h.Trials, Missing(merged, n))
	}
	if got := marshal(t, merged); !bytes.Equal(got, want) {
		t.Fatal("merge across empty shards differs from single-process run")
	}
}

// TestSingleTrialCampaign: the degenerate one-trial sweep runs whole,
// sharded (one shard empty), and merges back byte-identically.
func TestSingleTrialCampaign(t *testing.T) {
	dir := t.TempDir()
	whole := mustRun(t, testCampaign(1, nil), Options{})
	if !whole.Complete || len(whole.Results) != 1 {
		t.Fatalf("single-trial run: %+v", whole)
	}
	want := marshal(t, whole.Results)

	var paths []string
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i))
		rr := mustRun(t, testCampaign(1, nil), Options{Shard: Shard{Index: i, Count: 2}, Checkpoint: path})
		if !rr.Complete {
			t.Fatalf("shard %d incomplete", i)
		}
		paths = append(paths, path)
	}
	_, merged, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(t, merged); !bytes.Equal(got, want) {
		t.Fatal("sharded single-trial campaign differs from whole run")
	}
}

// TestRunRejectsInvalidShard: out-of-range i/n configurations fail
// before any trial executes.
func TestRunRejectsInvalidShard(t *testing.T) {
	for _, sh := range []Shard{
		{Index: 2, Count: 2},
		{Index: -1, Count: 2},
		{Index: 0, Count: -3},
		{Index: 3, Count: 0},
	} {
		var runs atomic.Int64
		if _, err := Run(testCampaign(4, &runs), Options{Shard: sh}); err == nil {
			t.Errorf("shard %d/%d should be rejected", sh.Index, sh.Count)
		}
		if runs.Load() != 0 {
			t.Errorf("shard %d/%d executed %d trials despite being invalid", sh.Index, sh.Count, runs.Load())
		}
	}
}

// TestRunCancellation: cancelling the context stops dispatch promptly,
// Run surfaces context.Canceled, completed trials survive in the
// checkpoint, and a fresh run resumes to completion.
func TestRunCancellation(t *testing.T) {
	const n, cut = 20, 5
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ran atomic.Int64
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{ID: i, Key: fmt.Sprintf("k%d", i)}
	}
	c := New("cancelling", trials, func(int) (Worker, error) {
		return WorkerFunc(func(tr Trial) (Result, error) {
			if ran.Add(1) == cut {
				cancel() // simulated Ctrl-C mid-campaign
			}
			return Result{TrialID: tr.ID, Key: tr.Key}, nil
		}), nil
	})
	_, err := Run(c, Options{
		Context: ctx, Checkpoint: path,
		Runner: PoolRunner{Engine: tensor.Serial()},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != cut {
		t.Fatalf("ran %d trials after cancellation at %d (dispatch did not stop promptly)", got, cut)
	}

	resume := New("cancelling", trials, func(int) (Worker, error) {
		return WorkerFunc(func(tr Trial) (Result, error) {
			return Result{TrialID: tr.ID, Key: tr.Key}, nil
		}), nil
	})
	rr := mustRun(t, resume, Options{Checkpoint: path})
	if !rr.Complete || rr.Resumed != cut || rr.Executed != n-cut {
		t.Fatalf("resume after cancellation: complete=%v resumed=%d executed=%d", rr.Complete, rr.Resumed, rr.Executed)
	}

	// A context cancelled before Run starts executes nothing.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	var cold atomic.Int64
	if _, err := Run(testCampaign(8, &cold), Options{Context: dead}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v", err)
	}
	if cold.Load() != 0 {
		t.Fatalf("pre-cancelled run executed %d trials", cold.Load())
	}
}

// TestWriteCheckpointAtomic: the atomic writer produces a checkpoint
// byte-equivalent to the incremental one and leaves no temp debris.
func TestWriteCheckpointAtomic(t *testing.T) {
	const n = 9
	dir := t.TempDir()
	rr := mustRun(t, testCampaign(n, nil), Options{Checkpoint: filepath.Join(dir, "inc.jsonl")})

	out := filepath.Join(dir, "merged.jsonl")
	if err := WriteCheckpointAtomic(out, rr.Header, rr.Results); err != nil {
		t.Fatal(err)
	}
	h, rs, err := ReadCheckpoint(out)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Compatible(rr.Header) || !Complete(rs, n) {
		t.Fatalf("atomic checkpoint round-trip: header %+v, %d results", h, len(rs))
	}
	if !bytes.Equal(marshal(t, rs), marshal(t, rr.Results)) {
		t.Fatal("atomic checkpoint results differ")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("directory has %d entries (temp file left behind?)", len(entries))
	}
}

func TestGroupMeanOrderIndependent(t *testing.T) {
	rs := []Result{
		{TrialID: 2, Key: "a", Metrics: map[string]float64{"acc": 0.3}},
		{TrialID: 0, Key: "a", Metrics: map[string]float64{"acc": 0.1}},
		{TrialID: 1, Key: "a", Metrics: map[string]float64{"acc": 0.7}},
		{TrialID: 3, Key: "b", Metrics: map[string]float64{"acc": 1.0}},
	}
	shuffled := []Result{rs[3], rs[2], rs[0], rs[1]}
	m1 := GroupMean(rs, "acc")
	m2 := GroupMean(shuffled, "acc")
	if m1["a"] != m2["a"] || m1["b"] != m2["b"] {
		t.Fatal("GroupMean depends on input order")
	}
	want := (0.1 + 0.7 + 0.3) / 3 // ascending trial-ID accumulation order
	if m1["a"] != want {
		t.Errorf("mean = %v, want %v", m1["a"], want)
	}
	if m1["b"] != 1.0 {
		t.Errorf("singleton mean = %v", m1["b"])
	}
}

func TestRunRejectsNonDenseIDs(t *testing.T) {
	trials := []Trial{{ID: 0}, {ID: 2}}
	c := New("bad", trials, func(int) (Worker, error) {
		return WorkerFunc(func(t Trial) (Result, error) { return Result{TrialID: t.ID}, nil }), nil
	})
	if _, err := Run(c, Options{}); err == nil {
		t.Error("non-dense trial IDs should be rejected")
	}
}

func TestWorkerErrorPropagates(t *testing.T) {
	trials := make([]Trial, 8)
	for i := range trials {
		trials[i] = Trial{ID: i}
	}
	c := New("failing", trials, func(int) (Worker, error) {
		return WorkerFunc(func(t Trial) (Result, error) {
			if t.ID == 3 {
				return Result{}, fmt.Errorf("boom")
			}
			return Result{TrialID: t.ID}, nil
		}), nil
	})
	if _, err := Run(c, Options{Runner: PoolRunner{Engine: tensor.NewParallel(4)}}); err == nil {
		t.Error("worker error should propagate out of Run")
	}
}

func TestGroupByKeyOrdersByID(t *testing.T) {
	rs := []Result{
		{TrialID: 5, Key: "k"},
		{TrialID: 1, Key: "k"},
		{TrialID: 3, Key: "k"},
	}
	g := GroupByKey(rs)["k"]
	if len(g) != 3 || g[0].TrialID != 1 || g[1].TrialID != 3 || g[2].TrialID != 5 {
		t.Fatalf("GroupByKey order: %v", g)
	}
}
