package campaign

import (
	"fmt"
	"io"
	"sort"
)

// Per-trial wall-clock aggregation. Runners stamp Result.Wall as trials
// execute and checkpoints preserve it, so a merge can report where a
// campaign's time actually went — the input load-aware shard sizing
// needs (slow keys get smaller shards).

// KeyTiming aggregates the recorded wall-clock of one result key.
type KeyTiming struct {
	// Key is the figure point / report bucket.
	Key string
	// Count is how many of the key's results carried a recorded
	// duration (results from pre-timing checkpoints carry none).
	Count int
	// Total and Max are seconds across those results.
	Total float64
	Max   float64
}

// Mean returns the mean seconds per timed trial.
func (k KeyTiming) Mean() float64 {
	if k.Count == 0 {
		return 0
	}
	return k.Total / float64(k.Count)
}

// TimingByKey folds per-trial durations into per-key summaries, sorted
// by descending total (the expensive keys — the shard-sizing signal —
// come first). Results without a recorded duration are skipped.
func TimingByKey(results []Result) []KeyTiming {
	byKey := make(map[string]*KeyTiming)
	for _, r := range results {
		if r.Wall <= 0 {
			continue
		}
		kt := byKey[r.Key]
		if kt == nil {
			kt = &KeyTiming{Key: r.Key}
			byKey[r.Key] = kt
		}
		kt.Count++
		kt.Total += r.Wall
		if r.Wall > kt.Max {
			kt.Max = r.Wall
		}
	}
	out := make([]KeyTiming, 0, len(byKey))
	for _, kt := range byKey {
		out = append(out, *kt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// WriteTimingSummary prints the campaign-wide and per-key timing of a
// result set. Result sets with no recorded durations (old checkpoints)
// print nothing.
func WriteTimingSummary(w io.Writer, results []Result) {
	keys := TimingByKey(results)
	if len(keys) == 0 {
		return
	}
	var n int
	var total, max float64
	for _, kt := range keys {
		n += kt.Count
		total += kt.Total
		if kt.Max > max {
			max = kt.Max
		}
	}
	fmt.Fprintf(w, "timing: %d timed trials, total %.2fs, mean %.3fs, max %.3fs\n",
		n, total, total/float64(n), max)
	for _, kt := range keys {
		fmt.Fprintf(w, "  %-24s %4d trials  total %8.2fs  mean %7.3fs  max %7.3fs\n",
			kt.Key, kt.Count, kt.Total, kt.Mean(), kt.Max)
	}
}
