package campaign

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects the Index-th of Count interleaved slices of a campaign's
// trial list (trial.ID % Count == Index). Interleaving balances sweeps
// whose cost varies monotonically along the enumeration (e.g. faulty-PE
// counts) better than contiguous blocks would. The zero value means
// "whole campaign".
type Shard struct {
	Index, Count int
}

// ParseShard parses the "i/n" form of the --shard flag ("" or "0/1"
// selects the whole campaign).
func ParseShard(s string) (Shard, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Shard{}, nil
	}
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("campaign: shard %q not of the form i/n", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(count)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("campaign: shard %q not of the form i/n", s)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate checks 0 <= Index < Count (or the zero value).
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("campaign: invalid shard %d/%d", s.Index, s.Count)
	}
	return nil
}

// IsWhole reports whether the shard covers the entire campaign.
func (s Shard) IsWhole() bool { return s.Count <= 1 }

// String renders the "i/n" form ("0/1" for the whole campaign).
func (s Shard) String() string {
	if s.Count == 0 {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Of returns the trials belonging to this shard, preserving order.
func (s Shard) Of(trials []Trial) []Trial {
	if s.IsWhole() {
		return trials
	}
	var out []Trial
	for _, t := range trials {
		if t.ID%s.Count == s.Index {
			out = append(out, t)
		}
	}
	return out
}
