package campaign

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Shard planning. A coordinator (or anyone splitting a campaign across
// executors) turns the trial list into a shard table through a Planner.
// The historical behavior — interleaved, equal-count shards via
// Shard.Of — is UniformPlanner, the deterministic default.
// BalancedPlanner instead equalizes *predicted wall-clock* using the
// per-key timing summaries a prior run recorded (TimingByKey), so a
// sweep whose keys cost wildly different amounts no longer leaves one
// worker grinding a slow shard while the rest idle. Planning never
// affects results: trials are seed-addressed and reductions are
// order-independent, so any plan merges byte-identically.

// PlannedShard is one entry of a shard table: a label (campaign.Shard
// "i/n" form, used for worker checkpoint filenames and logs) plus the
// explicit trial membership — the generalization of Shard.Of that lets
// membership be chosen by cost, not only by ID modulus.
type PlannedShard struct {
	// Label identifies the shard ("2/8"). Labels are unique within a
	// plan; with non-uniform planners they no longer imply membership.
	Label string
	// Trials is the shard's membership, sorted by trial ID.
	Trials []Trial
	// PredictedSeconds is the planner's wall-clock estimate for the
	// shard (0 when the planner has no cost model).
	PredictedSeconds float64
}

// TrialIDs returns the shard's membership as IDs (journal form).
func (p PlannedShard) TrialIDs() []int {
	ids := make([]int, len(p.Trials))
	for i, t := range p.Trials {
		ids[i] = t.ID
	}
	return ids
}

// ResolveShards resolves a shard-count request: n <= 0 selects def,
// and the result is clamped to the trial count so no shard need be
// empty. The `plan` dry-run and a serving coordinator resolve through
// this one helper, so their shard tables cannot drift apart.
func ResolveShards(n, def, trials int) int {
	if n <= 0 {
		n = def
	}
	if n > trials {
		n = trials
	}
	return n
}

// Planner splits a trial list into at most n shards. Implementations
// must be deterministic (same inputs, same plan), return only non-empty
// shards with unique labels, and partition the input exactly: every
// trial in exactly one shard.
type Planner interface {
	Plan(trials []Trial, n int) ([]PlannedShard, error)
}

// UniformPlanner is the default plan: n interleaved shards of (near-)
// equal trial count via Shard.Of, labels "i/n". Shards that would be
// empty are dropped.
type UniformPlanner struct{}

// Plan implements Planner.
func (UniformPlanner) Plan(trials []Trial, n int) ([]PlannedShard, error) {
	if n < 1 {
		return nil, fmt.Errorf("campaign: plan needs at least 1 shard, got %d", n)
	}
	if n > len(trials) {
		n = len(trials)
	}
	var out []PlannedShard
	for i := 0; i < n; i++ {
		sh := Shard{Index: i, Count: n}
		mine := sh.Of(trials)
		if len(mine) == 0 {
			continue
		}
		out = append(out, PlannedShard{Label: sh.String(), Trials: mine})
	}
	return out, nil
}

// BalancedPlanner sizes shards by predicted wall-clock: each trial's
// cost is its key's mean recorded duration (keys the timing source
// never saw get the global mean; with no timing at all every trial
// costs 1, degenerating to count-balancing). Assignment is greedy
// longest-processing-time: trials sorted by descending predicted cost
// go to the currently lightest shard, ties broken deterministically by
// trial ID and shard index.
type BalancedPlanner struct {
	// Timing is the per-key cost model, as TimingByKey returns it.
	Timing []KeyTiming
}

// Plan implements Planner.
func (b BalancedPlanner) Plan(trials []Trial, n int) ([]PlannedShard, error) {
	if n < 1 {
		return nil, fmt.Errorf("campaign: plan needs at least 1 shard, got %d", n)
	}
	if n > len(trials) {
		n = len(trials)
	}
	if len(trials) == 0 {
		return nil, nil
	}
	meanByKey := make(map[string]float64, len(b.Timing))
	var total float64
	var count int
	for _, kt := range b.Timing {
		meanByKey[kt.Key] = kt.Mean()
		total += kt.Total
		count += kt.Count
	}
	global := 1.0
	if count > 0 && total > 0 {
		global = total / float64(count)
	}
	cost := func(t Trial) float64 {
		if c, ok := meanByKey[t.Key]; ok && c > 0 {
			return c
		}
		return global
	}

	// LPT: heaviest trials first, each to the lightest shard so far.
	order := make([]int, len(trials))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cost(trials[order[a]]), cost(trials[order[b]])
		if ca != cb {
			return ca > cb
		}
		return trials[order[a]].ID < trials[order[b]].ID
	})
	shards := make([]PlannedShard, n)
	for i := range shards {
		shards[i].Label = Shard{Index: i, Count: n}.String()
	}
	for _, idx := range order {
		best := 0
		for i := 1; i < n; i++ {
			if shards[i].PredictedSeconds < shards[best].PredictedSeconds {
				best = i
			}
		}
		shards[best].Trials = append(shards[best].Trials, trials[idx])
		shards[best].PredictedSeconds += cost(trials[idx])
	}
	for i := range shards {
		sort.Slice(shards[i].Trials, func(a, b int) bool {
			return shards[i].Trials[a].ID < shards[i].Trials[b].ID
		})
	}
	// n <= len(trials) and LPT fills empty (zero-load) shards first, so
	// no shard can be empty; keep the guarantee explicit anyway.
	out := shards[:0]
	for _, s := range shards {
		if len(s.Trials) > 0 {
			out = append(out, s)
		}
	}
	return out, nil
}

// balancePrefix is the planner-name form selecting BalancedPlanner:
// "balance:<timing-source>", where the source is a checkpoint JSONL, a
// coordinator WAL, or a coordinator state directory (its wal.jsonl).
const balancePrefix = "balance:"

// PlannerNameDoc documents the planner-name forms for flag help and
// spec docs.
const PlannerNameDoc = `"uniform" (default) or "balance:<timing-source>" (a checkpoint JSONL, coordinator WAL, or state dir with recorded per-trial timing)`

// ValidatePlannerName checks a planner name's form without touching the
// filesystem — the spec-validation path, which must work on machines
// that don't hold the timing file.
func ValidatePlannerName(name string) error {
	switch {
	case name == "" || name == "uniform":
		return nil
	case strings.HasPrefix(name, balancePrefix) && len(name) > len(balancePrefix):
		return nil
	}
	return fmt.Errorf("campaign: unknown planner %q (want %s)", name, PlannerNameDoc)
}

// PlannerByName resolves a planner name to a Planner, loading the
// timing source of a "balance:<path>" name. A balance source with no
// recorded durations is refused: silently count-balancing when the
// operator asked for load-awareness would hide a broken timing file.
func PlannerByName(name string) (Planner, error) {
	if err := ValidatePlannerName(name); err != nil {
		return nil, err
	}
	if name == "" || name == "uniform" {
		return UniformPlanner{}, nil
	}
	path := strings.TrimPrefix(name, balancePrefix)
	timing, err := TimingFromFile(path)
	if err != nil {
		return nil, err
	}
	if len(timing) == 0 {
		return nil, fmt.Errorf("campaign: timing source %s has no recorded durations (written by a pre-timing build?)", path)
	}
	return BalancedPlanner{Timing: timing}, nil
}

// TimingFromFile loads per-key timing summaries from a results file: a
// checkpoint JSONL, a coordinator WAL, or a state directory holding
// one (its wal.jsonl). A corrupt WAL is reported as itself (file and
// line), not as a failed checkpoint parse of the wrong format.
func TimingFromFile(path string) ([]KeyTiming, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = WALPath(path)
	}
	_, wResults, _, wErr := ReadWAL(path)
	if wErr == nil {
		return TimingByKey(wResults), nil
	}
	_, cResults, cErr := ReadCheckpoint(path)
	if cErr == nil {
		return TimingByKey(cResults), nil
	}
	// wErr/cErr are already package-prefixed; add only the role context.
	if errors.Is(wErr, ErrNotWAL) {
		return nil, fmt.Errorf("timing source %s: %w", path, cErr)
	}
	return nil, fmt.Errorf("timing source %s: %w", path, wErr)
}
