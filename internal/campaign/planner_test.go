package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"falvolt/internal/tensor"
)

// plannerTrials enumerates n trials whose keys repeat every 4 IDs, like
// the synthetic campaign.
func plannerTrials(n int) []Trial {
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{ID: i, Key: fmt.Sprintf("point%02d", i/4), Seed: int64(i)}
	}
	return trials
}

// syntheticTiming builds a deterministic, wildly skewed cost model:
// each key's mean grows superlinearly with its index, so balanced and
// uniform plans genuinely differ.
func syntheticTiming(trials []Trial, seed int64) []KeyTiming {
	rng := rand.New(rand.NewSource(seed))
	results := make([]Result, len(trials))
	for i, t := range trials {
		keyIdx := t.ID / 4
		results[i] = Result{
			TrialID: t.ID, Key: t.Key,
			Wall: float64(1+keyIdx*keyIdx) * (0.5 + rng.Float64()),
		}
	}
	return TimingByKey(results)
}

// assertPartition fails unless shards exactly partition trials: every
// trial in exactly one non-empty shard, membership sorted by ID, labels
// unique.
func assertPartition(t *testing.T, shards []PlannedShard, trials []Trial) {
	t.Helper()
	seen := make(map[int]string)
	labels := make(map[string]bool)
	for _, sh := range shards {
		if len(sh.Trials) == 0 {
			t.Fatalf("shard %s is empty", sh.Label)
		}
		if labels[sh.Label] {
			t.Fatalf("duplicate shard label %s", sh.Label)
		}
		labels[sh.Label] = true
		for i, tr := range sh.Trials {
			if i > 0 && sh.Trials[i-1].ID >= tr.ID {
				t.Fatalf("shard %s membership not sorted by ID", sh.Label)
			}
			if prev, dup := seen[tr.ID]; dup {
				t.Fatalf("trial %d in both shard %s and %s", tr.ID, prev, sh.Label)
			}
			seen[tr.ID] = sh.Label
		}
	}
	if len(seen) != len(trials) {
		t.Fatalf("shards cover %d trials, want %d", len(seen), len(trials))
	}
	for _, tr := range trials {
		if _, ok := seen[tr.ID]; !ok {
			t.Fatalf("trial %d missing from every shard", tr.ID)
		}
	}
}

// TestUniformPlannerMatchesShardOf: the default planner reproduces the
// historical Shard.Of split exactly — labels and membership.
func TestUniformPlannerMatchesShardOf(t *testing.T) {
	trials := plannerTrials(23)
	shards, err := (UniformPlanner{}).Plan(trials, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, shards, trials)
	if len(shards) != 5 {
		t.Fatalf("got %d shards, want 5", len(shards))
	}
	for i, sh := range shards {
		want := Shard{Index: i, Count: 5}
		if sh.Label != want.String() {
			t.Fatalf("shard %d label %s, want %s", i, sh.Label, want)
		}
		if !reflect.DeepEqual(sh.Trials, want.Of(trials)) {
			t.Fatalf("shard %s membership differs from Shard.Of", sh.Label)
		}
	}
}

// TestBalancedPlannerProperties: for a spread of trial counts and shard
// counts, balanced shards (a) exactly partition the trial set, (b) are
// deterministic for a fixed timing input, and (c) equalize predicted
// load to within one trial's cost (the LPT bound).
func TestBalancedPlannerProperties(t *testing.T) {
	for _, n := range []int{1, 4, 23, 64, 97} {
		for _, shards := range []int{1, 2, 5, 8, 200} {
			trials := plannerTrials(n)
			timing := syntheticTiming(trials, 42)
			p := BalancedPlanner{Timing: timing}
			plan, err := p.Plan(trials, shards)
			if err != nil {
				t.Fatal(err)
			}
			assertPartition(t, plan, trials)
			again, err := p.Plan(trials, shards)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plan, again) {
				t.Fatalf("n=%d shards=%d: plan is not deterministic", n, shards)
			}
			if len(plan) < 2 {
				continue
			}
			var minLoad, maxLoad, maxCost float64
			minLoad = plan[0].PredictedSeconds
			for _, sh := range plan {
				if sh.PredictedSeconds < minLoad {
					minLoad = sh.PredictedSeconds
				}
				if sh.PredictedSeconds > maxLoad {
					maxLoad = sh.PredictedSeconds
				}
			}
			for _, kt := range timing {
				if kt.Mean() > maxCost {
					maxCost = kt.Mean()
				}
			}
			if maxLoad-minLoad > maxCost+1e-9 {
				t.Fatalf("n=%d shards=%d: load spread %.3f exceeds the heaviest trial %.3f",
					n, shards, maxLoad-minLoad, maxCost)
			}
		}
	}
}

// TestBalancedPlannerNoTiming: with an empty cost model every trial
// costs the same, so the plan degenerates to count-balancing but still
// partitions exactly.
func TestBalancedPlannerNoTiming(t *testing.T) {
	trials := plannerTrials(17)
	plan, err := BalancedPlanner{}.Plan(trials, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, plan, trials)
	for _, sh := range plan {
		if len(sh.Trials) < 4 || len(sh.Trials) > 5 {
			t.Fatalf("count-degenerate plan gave shard %s %d trials", sh.Label, len(sh.Trials))
		}
	}
}

// runPlannedShards executes every shard of a plan independently (as
// distributed workers would) and merges the partials.
func runPlannedShards(t *testing.T, c Campaign, plan []PlannedShard) []Result {
	t.Helper()
	var sets [][]Result
	for _, sh := range plan {
		var rs []Result
		err := PoolRunner{Engine: tensor.Serial()}.Run(nil, c, sh.Trials, func(r Result) error {
			rs = append(rs, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, rs)
	}
	merged, err := Merge(sets...)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestBalancedMergesByteIdenticalToUniform is the planner acceptance
// gate: the same campaign run as balanced shards and as uniform shards
// merges to byte-identical canonical result JSON.
func TestBalancedMergesByteIdenticalToUniform(t *testing.T) {
	c := Synthetic(37, 5)
	trials, err := c.Trials()
	if err != nil {
		t.Fatal(err)
	}
	timing := syntheticTiming(trials, 7)
	uniform, err := UniformPlanner{}.Plan(trials, 6)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := BalancedPlanner{Timing: timing}.Plan(trials, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The plans must actually differ for the equivalence to mean much.
	if reflect.DeepEqual(uniform, balanced) {
		t.Fatal("balanced plan degenerated to the uniform plan despite skewed timing")
	}
	a, err := MarshalResults(runPlannedShards(t, c, uniform))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalResults(runPlannedShards(t, c, balanced))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("balanced and uniform plans merged to different bytes")
	}
}

// TestPlannerByName covers the name forms: uniform defaults, a balance
// source loaded from a timing-bearing checkpoint, and the rejections
// (bad name, source without recorded durations).
func TestPlannerByName(t *testing.T) {
	for _, name := range []string{"", "uniform"} {
		p, err := PlannerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.(UniformPlanner); !ok {
			t.Fatalf("PlannerByName(%q) = %T, want UniformPlanner", name, p)
		}
	}
	if _, err := PlannerByName("fastest"); err == nil || !strings.Contains(err.Error(), "unknown planner") {
		t.Fatalf("bad planner name accepted: %v", err)
	}
	if err := ValidatePlannerName("balance:"); err == nil {
		t.Fatal("balance with empty source validated")
	}

	// A checkpoint with recorded walls is a valid balance source (the
	// 1ms delay guarantees every trial records a nonzero wall-clock)...
	dir := t.TempDir()
	withTiming := filepath.Join(dir, "timed.jsonl")
	rr, err := Run(SyntheticWithDelay(8, 1, 1), Options{Checkpoint: withTiming, Runner: PoolRunner{Engine: tensor.Serial()}})
	if err != nil || !rr.Complete {
		t.Fatalf("run: %v (complete=%v)", err, rr != nil && rr.Complete)
	}
	p, err := PlannerByName("balance:" + withTiming)
	if err != nil {
		t.Fatal(err)
	}
	bp, ok := p.(BalancedPlanner)
	if !ok || len(bp.Timing) == 0 {
		t.Fatalf("balance source produced %T with %d timings", p, len(bp.Timing))
	}

	// ...a checkpoint without walls is refused.
	bare := filepath.Join(dir, "bare.jsonl")
	ck, err := CreateCheckpoint(bare, Header{Version: 1, Campaign: "x", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Append(Result{TrialID: 0, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if _, err := PlannerByName("balance:" + bare); err == nil || !strings.Contains(err.Error(), "no recorded durations") {
		t.Fatalf("timing-free source accepted: %v", err)
	}
}
