package tensor

import (
	"sync"
	"sync/atomic"
)

// workerPool is a shared pool of compute goroutines used by the Parallel
// backend. One pool serves every operation of its backend for the process
// lifetime, so hot loops pay no goroutine-spawn cost per call.
//
// Scheduling model: Run splits a job into `chunks` independent pieces
// identified by index. Idle workers and the calling goroutine race on an
// atomic cursor, so chunks are load-balanced dynamically. Hand-off to
// workers is non-blocking — if every worker is busy (e.g. a nested
// parallel call from inside a chunk), the caller simply executes all
// remaining chunks inline. That property makes nested Run calls
// deadlock-free by construction.
type workerPool struct {
	workers int // total lanes including the caller
	jobs    chan *poolJob
}

// poolJob is one Run invocation: a chunk function plus the shared cursor
// and completion group that workers drain.
type poolJob struct {
	fn   func(chunk int)
	next atomic.Int64
	n    int64
	wg   sync.WaitGroup
}

// newWorkerPool starts a pool with the given total parallelism. The pool
// spawns workers-1 background goroutines; the goroutine calling Run is
// always the remaining lane.
func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	p := &workerPool{workers: workers, jobs: make(chan *poolJob)}
	for w := 0; w < workers-1; w++ {
		go p.serve()
	}
	return p
}

func (p *workerPool) serve() {
	for j := range p.jobs {
		j.drain()
	}
}

// drain executes chunks from the job until the cursor is exhausted.
func (j *poolJob) drain() {
	for {
		c := j.next.Add(1) - 1
		if c >= j.n {
			return
		}
		j.fn(int(c))
		j.wg.Done()
	}
}

// Run executes fn(chunk) for every chunk in [0, chunks), returning when
// all chunks have completed. Chunks run concurrently on idle pool workers
// plus the calling goroutine; each chunk executes on exactly one
// goroutine. Panics inside fn propagate on the goroutine that ran the
// chunk (they are programming errors in this package, as with the serial
// loops).
func (p *workerPool) Run(chunks int, fn func(chunk int)) {
	if chunks <= 0 {
		return
	}
	if chunks == 1 || p.workers == 1 {
		for c := 0; c < chunks; c++ {
			fn(c)
		}
		return
	}
	j := &poolJob{fn: fn, n: int64(chunks)}
	j.wg.Add(chunks)
	// Wake at most workers-1 helpers without ever blocking: a full
	// channel means the pool is busy and the caller keeps the work.
	wake := p.workers - 1
	if wake > chunks-1 {
		wake = chunks - 1
	}
	for i := 0; i < wake; i++ {
		select {
		case p.jobs <- j:
		default:
			i = wake // no idle worker; stop offering
		}
	}
	j.drain()
	j.wg.Wait()
}

// scratchPool recycles float32 buffers across hot-path calls, removing
// the per-call allocations of im2col patch matrices and gradient
// staging buffers.
var scratchPool = sync.Pool{New: func() any { b := make([]float32, 0); return &b }}

// GetScratch returns a tensor of the given shape backed by a recycled
// buffer. Contents are UNSPECIFIED: every element must be written before
// it is read (all backend Into-style operations satisfy this). Pass the
// tensor to ReleaseScratch when it is dead to enable reuse.
func GetScratch(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	bp := scratchPool.Get().(*[]float32)
	if cap(*bp) < n {
		*bp = make([]float32, n)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: (*bp)[:n]}
}

// ReleaseScratch returns a tensor obtained from GetScratch to the pool.
// The tensor must not be used afterwards. Releasing a non-scratch tensor
// is also safe: its buffer simply joins the pool.
func ReleaseScratch(t *Tensor) {
	if t == nil || t.Data == nil {
		return
	}
	b := t.Data[:0]
	scratchPool.Put(&b)
	t.Data = nil
}
