// Package tensor provides a small dense float32 tensor library: the
// numerical substrate for the SNN framework. It supports arbitrary-rank
// row-major tensors with the handful of operations a conv-SNN needs —
// GEMM, im2col/col2im lowering, pooling, padding, elementwise arithmetic —
// implemented with plain loops over contiguous storage.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor. Data is contiguous; Shape
// gives the extent of each dimension. A Tensor with empty shape is a
// scalar holding one element.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, s := range t.Shape {
		if o.Shape[i] != s {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index (rank must match).
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// AddInPlace computes t += o elementwise; shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubInPlace computes t -= o elementwise; shapes must match.
func (t *Tensor) SubInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: SubInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor {
	r := t.Clone()
	r.AddInPlace(o)
	return r
}

// Mul returns the elementwise product as a new tensor.
func Mul(t, o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] *= v
	}
	return r
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Argmax returns the index of the maximum element of a 1-D view of row r in
// a [rows, cols] matrix; t must be rank 2.
func (t *Tensor) Argmax(r int) int {
	if t.Rank() != 2 {
		panic("tensor: Argmax requires a rank-2 tensor")
	}
	cols := t.Shape[1]
	row := t.Data[r*cols : (r+1)*cols]
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// RandNormal fills t with Gaussian noise of the given stddev using rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// RandUniform fills t with values uniform in [lo, hi) using rng.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// KaimingNormal fills t with Kaiming (He) initialization for the given
// fan-in, the standard init for layers followed by ReLU-like nonlinearity.
func (t *Tensor) KaimingNormal(rng *rand.Rand, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	std := math.Sqrt(2.0 / float64(fanIn))
	t.RandNormal(rng, std)
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
