package tensor

import "fmt"

// This file holds the allocation + delegation layer of the tensor ops:
// each package-level function allocates its result and routes the work
// through the process-default Backend (see backend.go). The row-range
// kernels at the bottom are shared by the Serial and Parallel engines;
// both partition work over output rows (or batch items) and run the same
// per-row loops, which is what makes the engines bit-identical.

// MatMul computes C = A·B for A of shape [m,k] and B of shape [k,n],
// returning a new [m,n] tensor. It is the reference float GEMM against
// which the systolic-array simulator is validated.
func MatMul(a, b *Tensor) *Tensor {
	return MatMulUsing(Default(), a, b)
}

// MatMulUsing is MatMul on an explicit backend.
func MatMulUsing(e Backend, a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[len(b.Shape)-1])
	e.MatMul(c, a, b)
	return c
}

// MatMulTransB computes C = A·Bᵀ for A [m,k] and B [n,k], returning [m,n].
// Used in backward passes where the weight matrix is consumed transposed.
func MatMulTransB(a, b *Tensor) *Tensor {
	return MatMulTransBUsing(Default(), a, b)
}

// MatMulTransBUsing is MatMulTransB on an explicit backend.
func MatMulTransBUsing(e Backend, a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[0])
	e.MatMulTransB(c, a, b)
	return c
}

// MatMulTransA computes C = Aᵀ·B for A [k,m] and B [k,n], returning [m,n].
// Used to accumulate weight gradients (inputᵀ · gradOut).
func MatMulTransA(a, b *Tensor) *Tensor {
	return MatMulTransAUsing(Default(), a, b)
}

// MatMulTransAUsing is MatMulTransA on an explicit backend.
func MatMulTransAUsing(e Backend, a, b *Tensor) *Tensor {
	c := New(a.Shape[len(a.Shape)-1], b.Shape[len(b.Shape)-1])
	e.MatMulTransA(c, a, b)
	return c
}

// ConvShape describes a 2-D convolution lowering: input [N,C,H,W] with a
// [OutC, C, KH, KW] kernel, stride and zero padding. It captures the sizes
// needed by Im2Col/Col2Im and by the systolic weight-mapping logic.
type ConvShape struct {
	InC, InH, InW  int // input channels and spatial extent
	OutC           int // output channels
	KH, KW         int // kernel extent
	Stride, Pad    int
	OutH, OutW     int // derived output extent
	K              int // reduction (GEMM inner) dimension = InC*KH*KW
	M              int // GEMM output dimension = OutC
	PatchesPerItem int // OutH*OutW columns per batch item
}

// NewConvShape validates and derives a convolution lowering.
func NewConvShape(inC, inH, inW, outC, kh, kw, stride, pad int) (ConvShape, error) {
	if stride <= 0 {
		return ConvShape{}, fmt.Errorf("tensor: stride must be positive, got %d", stride)
	}
	if pad < 0 {
		return ConvShape{}, fmt.Errorf("tensor: pad must be non-negative, got %d", pad)
	}
	outH := (inH+2*pad-kh)/stride + 1
	outW := (inW+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		return ConvShape{}, fmt.Errorf("tensor: conv output empty for input %dx%d kernel %dx%d stride %d pad %d", inH, inW, kh, kw, stride, pad)
	}
	return ConvShape{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, KH: kh, KW: kw,
		Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		K: inC * kh * kw, M: outC,
		PatchesPerItem: outH * outW,
	}, nil
}

// Im2Col lowers input x of shape [N, InC, InH, InW] into a matrix of shape
// [N*OutH*OutW, K] where each row is one receptive-field patch. Convolution
// then becomes patches · Wᵀ for W of shape [OutC, K].
func Im2Col(x *Tensor, cs ConvShape) *Tensor {
	return Im2ColUsing(Default(), x, cs)
}

// Im2ColUsing is Im2Col on an explicit backend.
func Im2ColUsing(e Backend, x *Tensor, cs ConvShape) *Tensor {
	out := New(x.Shape[0]*cs.PatchesPerItem, cs.K)
	e.Im2Col(out, x, cs)
	return out
}

// Col2Im scatters a patch-gradient matrix of shape [N*OutH*OutW, K] back to
// an input-gradient tensor [N, InC, InH, InW], summing overlapping patches.
// It is the adjoint of Im2Col.
func Col2Im(cols *Tensor, n int, cs ConvShape) *Tensor {
	return Col2ImUsing(Default(), cols, n, cs)
}

// Col2ImUsing is Col2Im on an explicit backend.
func Col2ImUsing(e Backend, cols *Tensor, n int, cs ConvShape) *Tensor {
	out := New(n, cs.InC, cs.InH, cs.InW)
	e.Col2Im(out, cols, cs)
	return out
}

// AvgPool2 performs non-overlapping 2x2 average pooling on [N,C,H,W]
// (H and W must be even) returning [N,C,H/2,W/2].
func AvgPool2(x *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("tensor: AvgPool2 needs even spatial dims, got %dx%d", h, w))
	}
	oh, ow := h/2, w/2
	out := New(n, c, oh, ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			ibase := (b*c + ch) * h * w
			obase := (b*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy, ix := oy*2, ox*2
					s := x.Data[ibase+iy*w+ix] + x.Data[ibase+iy*w+ix+1] +
						x.Data[ibase+(iy+1)*w+ix] + x.Data[ibase+(iy+1)*w+ix+1]
					out.Data[obase+oy*ow+ox] = s * 0.25
				}
			}
		}
	}
	return out
}

// AvgPool2Backward distributes output gradients of shape [N,C,H/2,W/2]
// uniformly back over the 2x2 input windows, returning [N,C,H,W].
func AvgPool2Backward(grad *Tensor, h, w int) *Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	oh, ow := grad.Shape[2], grad.Shape[3]
	if oh*2 != h || ow*2 != w {
		panic(fmt.Sprintf("tensor: AvgPool2Backward dims mismatch: grad %dx%d input %dx%d", oh, ow, h, w))
	}
	out := New(n, c, h, w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			gbase := (b*c + ch) * oh * ow
			obase := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad.Data[gbase+oy*ow+ox] * 0.25
					iy, ix := oy*2, ox*2
					out.Data[obase+iy*w+ix] += g
					out.Data[obase+iy*w+ix+1] += g
					out.Data[obase+(iy+1)*w+ix] += g
					out.Data[obase+(iy+1)*w+ix+1] += g
				}
			}
		}
	}
	return out
}

// --- row-range kernels shared by the Serial and Parallel backends ---
//
// Every kernel processes output rows [r0, r1) (or batch items for
// col2Im). Each output element is produced by exactly one kernel call and
// accumulated in the same inner-loop order regardless of how rows are
// partitioned, so any partition yields bit-identical results.
//
// Blocking scheme. The GEMM kernels are register-blocked over the j
// (output column) dimension with a kk-panel loop:
//
//   - matMulRows / matMulTransARows (axpy-style, kk-outer): per output
//     row, the nonzero kk positions (and their values) are collected once
//     — spike inputs are mostly zeros, and the old per-element zero test
//     cost a hard-to-predict branch per (kk, j) — then swept in panels of
//     gemmPanelK events. Each panel updates the row in register blocks of
//     gemmBlockJ columns, so b's panel rows stay cache-hot across the j
//     sweep and each b element is multiplied against a register, not a
//     memory-resident accumulator.
//   - matMulTransBRows (dot-product style): both operands stream
//     contiguously, so there is no panel to keep hot; it register-blocks
//     four output columns per pass to amortize the arow loads fourfold.
//
// Bit-identity contract: for every output element the sequence of
// floating-point additions is exactly the old scalar kernel's — kk
// ascending, zero entries skipped where the old kernel skipped them (and
// nowhere else). Register accumulators spill to dst between panels, which
// is exact in float32. Any future SIMD backend must preserve the same
// per-element accumulation order or switch the equivalence tests to
// tolerance-based comparison (see README "Performance").

const (
	// gemmPanelK is the kk-panel length: the number of (nonzero) reduction
	// steps applied to the whole output row before moving to the next
	// panel. 128 panel rows of b at typical n keep the panel inside L2.
	gemmPanelK = 128
	// gemmBlockJ is the register-block width over output columns.
	gemmBlockJ = 8
)

// gemmAxpyPanel computes crow[j] += Σ_t avs[t]·b[nz[t]][j] for one panel,
// register-blocked over j. Spilling crow between panels is exact, and
// within a panel each element accumulates in t (= kk) ascending order.
func gemmAxpyPanel(crow []float32, nz []int32, avs []float32, bdata []float32, n int) {
	j := 0
	for ; j+gemmBlockJ <= n; j += gemmBlockJ {
		c := crow[j : j+gemmBlockJ : j+gemmBlockJ]
		c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
		c4, c5, c6, c7 := c[4], c[5], c[6], c[7]
		for t, kk := range nz {
			av := avs[t]
			off := int(kk) * n
			bp := bdata[off+j : off+j+gemmBlockJ : off+j+gemmBlockJ]
			c0 += av * bp[0]
			c1 += av * bp[1]
			c2 += av * bp[2]
			c3 += av * bp[3]
			c4 += av * bp[4]
			c5 += av * bp[5]
			c6 += av * bp[6]
			c7 += av * bp[7]
		}
		c[0], c[1], c[2], c[3] = c0, c1, c2, c3
		c[4], c[5], c[6], c[7] = c4, c5, c6, c7
	}
	for ; j < n; j++ {
		s := crow[j]
		for t, kk := range nz {
			s += avs[t] * bdata[int(kk)*n+j]
		}
		crow[j] = s
	}
}

// matMulRows computes dst rows [r0, r1) of dst = a·b.
func matMulRows(dst, a, b *Tensor, k, n, r0, r1 int) {
	nz := make([]int32, 0, k)
	avs := make([]float32, 0, k)
	for i := r0; i < r1; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := dst.Data[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
		nz, avs = nz[:0], avs[:0]
		for kk, av := range arow {
			if av == 0 {
				continue // spike inputs are mostly zero; skip dead rows
			}
			nz = append(nz, int32(kk))
			avs = append(avs, av)
		}
		for p := 0; p < len(nz); p += gemmPanelK {
			q := min(p+gemmPanelK, len(nz))
			gemmAxpyPanel(crow, nz[p:q], avs[p:q], b.Data, n)
		}
	}
}

// matMulTransARows computes dst rows [r0, r1) of dst = aᵀ·b for a [k,m].
// For each output row i the reduction walks kk ascending, matching the
// serial kk-outer accumulation order element for element. Collecting the
// nonzero (kk, value) pairs up front also turns a's strided column reads
// into one pass instead of one per j-block.
func matMulTransARows(dst, a, b *Tensor, m, k, n, r0, r1 int) {
	nz := make([]int32, 0, k)
	avs := make([]float32, 0, k)
	for i := r0; i < r1; i++ {
		crow := dst.Data[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
		nz, avs = nz[:0], avs[:0]
		for kk := 0; kk < k; kk++ {
			av := a.Data[kk*m+i]
			if av == 0 {
				continue
			}
			nz = append(nz, int32(kk))
			avs = append(avs, av)
		}
		for p := 0; p < len(nz); p += gemmPanelK {
			q := min(p+gemmPanelK, len(nz))
			gemmAxpyPanel(crow, nz[p:q], avs[p:q], b.Data, n)
		}
	}
}

// matMulTransBRows computes dst rows [r0, r1) of dst = a·bᵀ. Zero entries
// are NOT skipped (the old kernel didn't), so every element's addition
// sequence is the full kk range, four dot products per arow sweep.
func matMulTransBRows(dst, a, b *Tensor, k, n, r0, r1 int) {
	for i := r0; i < r1; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := dst.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			b3 := b.Data[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for kk, av := range arow {
				s0 += av * b0[kk]
				s1 += av * b1[kk]
				s2 += av * b2[kk]
				s3 += av * b3[kk]
			}
			crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for kk, av := range arow {
				s += av * brow[kk]
			}
			crow[j] = s
		}
	}
}

// im2ColRows fills dst patch rows [r0, r1); row = (b*OutH + oy)*OutW + ox.
func im2ColRows(dst, x *Tensor, cs ConvShape, r0, r1 int) {
	chanStride := cs.InH * cs.InW
	itemStride := cs.InC * chanStride
	for row := r0; row < r1; row++ {
		b := row / cs.PatchesPerItem
		rem := row - b*cs.PatchesPerItem
		oy := rem / cs.OutW
		ox := rem - oy*cs.OutW
		base := b * itemStride
		dstRow := dst.Data[row*cs.K : (row+1)*cs.K]
		col := 0
		for c := 0; c < cs.InC; c++ {
			cbase := base + c*chanStride
			for ky := 0; ky < cs.KH; ky++ {
				iy := oy*cs.Stride + ky - cs.Pad
				for kx := 0; kx < cs.KW; kx++ {
					ix := ox*cs.Stride + kx - cs.Pad
					if iy >= 0 && iy < cs.InH && ix >= 0 && ix < cs.InW {
						dstRow[col] = x.Data[cbase+iy*cs.InW+ix]
					} else {
						dstRow[col] = 0
					}
					col++
				}
			}
		}
	}
}

// col2ImItems scatters patches of batch items [b0, b1) into dst. Patches
// of one item overlap, so the per-item scatter stays sequential (in the
// serial patch order); distinct items never overlap.
func col2ImItems(dst, cols *Tensor, cs ConvShape, b0, b1 int) {
	chanStride := cs.InH * cs.InW
	itemStride := cs.InC * chanStride
	for b := b0; b < b1; b++ {
		base := b * itemStride
		item := dst.Data[base : base+itemStride]
		for i := range item {
			item[i] = 0
		}
		row := b * cs.PatchesPerItem
		for oy := 0; oy < cs.OutH; oy++ {
			for ox := 0; ox < cs.OutW; ox++ {
				src := cols.Data[row*cs.K : (row+1)*cs.K]
				col := 0
				for c := 0; c < cs.InC; c++ {
					cbase := base + c*chanStride
					for ky := 0; ky < cs.KH; ky++ {
						iy := oy*cs.Stride + ky - cs.Pad
						for kx := 0; kx < cs.KW; kx++ {
							ix := ox*cs.Stride + kx - cs.Pad
							if iy >= 0 && iy < cs.InH && ix >= 0 && ix < cs.InW {
								dst.Data[cbase+iy*cs.InW+ix] += src[col]
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
}

// addRange computes dst[lo:hi] += src[lo:hi].
func addRange(dst, src []float32, lo, hi int) {
	d, s := dst[lo:hi], src[lo:hi]
	for i, v := range s {
		d[i] += v
	}
}

// scaleRange computes data[lo:hi] *= s.
func scaleRange(data []float32, s float32, lo, hi int) {
	d := data[lo:hi]
	for i := range d {
		d[i] *= s
	}
}
