package tensor

import "fmt"

// MatMul computes C = A·B for A of shape [m,k] and B of shape [k,n],
// returning a new [m,n] tensor. It is the reference float GEMM against
// which the systolic-array simulator is validated.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims mismatch %d vs %d", k, k2))
	}
	c := New(m, n)
	// ikj loop order: stream B rows for cache locality.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue // spike inputs are mostly zero; skip dead rows
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A·Bᵀ for A [m,k] and B [n,k], returning [m,n].
// Used in backward passes where the weight matrix is consumed transposed.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims mismatch %d vs %d", k, k2))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for kk, av := range arow {
				s += av * brow[kk]
			}
			crow[j] = s
		}
	}
	return c
}

// MatMulTransA computes C = Aᵀ·B for A [k,m] and B [k,n], returning [m,n].
// Used to accumulate weight gradients (inputᵀ · gradOut).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims mismatch %d vs %d", k, k2))
	}
	c := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// ConvShape describes a 2-D convolution lowering: input [N,C,H,W] with a
// [OutC, C, KH, KW] kernel, stride and zero padding. It captures the sizes
// needed by Im2Col/Col2Im and by the systolic weight-mapping logic.
type ConvShape struct {
	InC, InH, InW  int // input channels and spatial extent
	OutC           int // output channels
	KH, KW         int // kernel extent
	Stride, Pad    int
	OutH, OutW     int // derived output extent
	K              int // reduction (GEMM inner) dimension = InC*KH*KW
	M              int // GEMM output dimension = OutC
	PatchesPerItem int // OutH*OutW columns per batch item
}

// NewConvShape validates and derives a convolution lowering.
func NewConvShape(inC, inH, inW, outC, kh, kw, stride, pad int) (ConvShape, error) {
	if stride <= 0 {
		return ConvShape{}, fmt.Errorf("tensor: stride must be positive, got %d", stride)
	}
	if pad < 0 {
		return ConvShape{}, fmt.Errorf("tensor: pad must be non-negative, got %d", pad)
	}
	outH := (inH+2*pad-kh)/stride + 1
	outW := (inW+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		return ConvShape{}, fmt.Errorf("tensor: conv output empty for input %dx%d kernel %dx%d stride %d pad %d", inH, inW, kh, kw, stride, pad)
	}
	return ConvShape{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, KH: kh, KW: kw,
		Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		K: inC * kh * kw, M: outC,
		PatchesPerItem: outH * outW,
	}, nil
}

// Im2Col lowers input x of shape [N, InC, InH, InW] into a matrix of shape
// [N*OutH*OutW, K] where each row is one receptive-field patch. Convolution
// then becomes patches · Wᵀ for W of shape [OutC, K].
func Im2Col(x *Tensor, cs ConvShape) *Tensor {
	n := x.Shape[0]
	if x.Rank() != 4 || x.Shape[1] != cs.InC || x.Shape[2] != cs.InH || x.Shape[3] != cs.InW {
		panic(fmt.Sprintf("tensor: Im2Col input shape %v does not match conv %+v", x.Shape, cs))
	}
	out := New(n*cs.PatchesPerItem, cs.K)
	chanStride := cs.InH * cs.InW
	itemStride := cs.InC * chanStride
	row := 0
	for b := 0; b < n; b++ {
		base := b * itemStride
		for oy := 0; oy < cs.OutH; oy++ {
			for ox := 0; ox < cs.OutW; ox++ {
				dst := out.Data[row*cs.K : (row+1)*cs.K]
				col := 0
				for c := 0; c < cs.InC; c++ {
					cbase := base + c*chanStride
					for ky := 0; ky < cs.KH; ky++ {
						iy := oy*cs.Stride + ky - cs.Pad
						for kx := 0; kx < cs.KW; kx++ {
							ix := ox*cs.Stride + kx - cs.Pad
							if iy >= 0 && iy < cs.InH && ix >= 0 && ix < cs.InW {
								dst[col] = x.Data[cbase+iy*cs.InW+ix]
							} else {
								dst[col] = 0
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// Col2Im scatters a patch-gradient matrix of shape [N*OutH*OutW, K] back to
// an input-gradient tensor [N, InC, InH, InW], summing overlapping patches.
// It is the adjoint of Im2Col.
func Col2Im(cols *Tensor, n int, cs ConvShape) *Tensor {
	if cols.Rank() != 2 || cols.Shape[0] != n*cs.PatchesPerItem || cols.Shape[1] != cs.K {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v does not match n=%d conv %+v", cols.Shape, n, cs))
	}
	out := New(n, cs.InC, cs.InH, cs.InW)
	chanStride := cs.InH * cs.InW
	itemStride := cs.InC * chanStride
	row := 0
	for b := 0; b < n; b++ {
		base := b * itemStride
		for oy := 0; oy < cs.OutH; oy++ {
			for ox := 0; ox < cs.OutW; ox++ {
				src := cols.Data[row*cs.K : (row+1)*cs.K]
				col := 0
				for c := 0; c < cs.InC; c++ {
					cbase := base + c*chanStride
					for ky := 0; ky < cs.KH; ky++ {
						iy := oy*cs.Stride + ky - cs.Pad
						for kx := 0; kx < cs.KW; kx++ {
							ix := ox*cs.Stride + kx - cs.Pad
							if iy >= 0 && iy < cs.InH && ix >= 0 && ix < cs.InW {
								out.Data[cbase+iy*cs.InW+ix] += src[col]
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// AvgPool2 performs non-overlapping 2x2 average pooling on [N,C,H,W]
// (H and W must be even) returning [N,C,H/2,W/2].
func AvgPool2(x *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("tensor: AvgPool2 needs even spatial dims, got %dx%d", h, w))
	}
	oh, ow := h/2, w/2
	out := New(n, c, oh, ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			ibase := (b*c + ch) * h * w
			obase := (b*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy, ix := oy*2, ox*2
					s := x.Data[ibase+iy*w+ix] + x.Data[ibase+iy*w+ix+1] +
						x.Data[ibase+(iy+1)*w+ix] + x.Data[ibase+(iy+1)*w+ix+1]
					out.Data[obase+oy*ow+ox] = s * 0.25
				}
			}
		}
	}
	return out
}

// AvgPool2Backward distributes output gradients of shape [N,C,H/2,W/2]
// uniformly back over the 2x2 input windows, returning [N,C,H,W].
func AvgPool2Backward(grad *Tensor, h, w int) *Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	oh, ow := grad.Shape[2], grad.Shape[3]
	if oh*2 != h || ow*2 != w {
		panic(fmt.Sprintf("tensor: AvgPool2Backward dims mismatch: grad %dx%d input %dx%d", oh, ow, h, w))
	}
	out := New(n, c, h, w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			gbase := (b*c + ch) * oh * ow
			obase := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad.Data[gbase+oy*ow+ox] * 0.25
					iy, ix := oy*2, ox*2
					out.Data[obase+iy*w+ix] += g
					out.Data[obase+iy*w+ix+1] += g
					out.Data[obase+(iy+1)*w+ix] += g
					out.Data[obase+(iy+1)*w+ix+1] += g
				}
			}
		}
	}
	return out
}
