package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Errorf("Len = %d, want 24", a.Len())
	}
	if a.Rank() != 3 {
		t.Errorf("Rank = %d, want 3", a.Rank())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New tensor must be zero-filled")
		}
	}
}

func TestAtSet(t *testing.T) {
	a := New(2, 3)
	a.Set(7, 1, 2)
	if got := a.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if got := a.Data[1*3+2]; got != 7 {
		t.Errorf("row-major layout wrong: Data[5] = %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range should panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Error("Reshape must share underlying data")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reshape volume mismatch should panic")
		}
	}()
	a.Reshape(5)
}

func TestCloneIndependent(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.AddInPlace(b)
	if a.Data[2] != 33 {
		t.Errorf("AddInPlace: got %v", a.Data)
	}
	a.SubInPlace(b)
	if a.Data[2] != 3 {
		t.Errorf("SubInPlace: got %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 2 {
		t.Errorf("Scale: got %v", a.Data)
	}
}

func TestSumMeanMaxAbs(t *testing.T) {
	a := FromSlice([]float32{-4, 1, 3}, 3)
	if a.Sum() != 0 {
		t.Errorf("Sum = %v, want 0", a.Sum())
	}
	if a.Mean() != 0 {
		t.Errorf("Mean = %v, want 0", a.Mean())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v, want 4", a.MaxAbs())
	}
}

func TestArgmax(t *testing.T) {
	a := FromSlice([]float32{0, 5, 2, 9, 1, 1}, 2, 3)
	if got := a.Argmax(0); got != 1 {
		t.Errorf("Argmax row0 = %d, want 1", got)
	}
	if got := a.Argmax(1); got != 0 {
		t.Errorf("Argmax row1 = %d, want 0", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransBMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(3, 4)
	a.RandNormal(rng, 1)
	b := New(4, 5)
	b.RandNormal(rng, 1)
	// Build Bᵀ explicitly and compare MatMulTransB(a, bT) with MatMul(a, b).
	bt := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	c1 := MatMul(a, b)
	c2 := MatMulTransB(a, bt)
	for i := range c1.Data {
		if math.Abs(float64(c1.Data[i]-c2.Data[i])) > 1e-5 {
			t.Fatalf("MatMulTransB mismatch at %d: %v vs %v", i, c1.Data[i], c2.Data[i])
		}
	}
}

func TestMatMulTransAMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(4, 3) // Aᵀ is 3x4
	a.RandNormal(rng, 1)
	b := New(4, 5)
	b.RandNormal(rng, 1)
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	c1 := MatMul(at, b)
	c2 := MatMulTransA(a, b)
	for i := range c1.Data {
		if math.Abs(float64(c1.Data[i]-c2.Data[i])) > 1e-5 {
			t.Fatalf("MatMulTransA mismatch at %d: %v vs %v", i, c1.Data[i], c2.Data[i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := New(n, n)
		a.RandNormal(rng, 1)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		c := MatMul(a, id)
		for i := range a.Data {
			if math.Abs(float64(a.Data[i]-c.Data[i])) > 1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestConvShapeDerivation(t *testing.T) {
	cs, err := NewConvShape(2, 8, 8, 4, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.OutH != 8 || cs.OutW != 8 {
		t.Errorf("same-pad 3x3 stride1 should preserve extent, got %dx%d", cs.OutH, cs.OutW)
	}
	if cs.K != 2*3*3 {
		t.Errorf("K = %d, want 18", cs.K)
	}
	if _, err := NewConvShape(1, 2, 2, 1, 5, 5, 1, 0); err == nil {
		t.Error("kernel larger than input without pad should error")
	}
	if _, err := NewConvShape(1, 4, 4, 1, 3, 3, 0, 0); err == nil {
		t.Error("zero stride should error")
	}
	if _, err := NewConvShape(1, 4, 4, 1, 3, 3, 1, -1); err == nil {
		t.Error("negative pad should error")
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1x1x3x3 input, 2x2 kernel, stride 1, no pad -> 4 patches of 4 values.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	cs, err := NewConvShape(1, 3, 3, 1, 2, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cols := Im2Col(x, cs)
	if cols.Shape[0] != 4 || cols.Shape[1] != 4 {
		t.Fatalf("cols shape = %v, want [4 4]", cols.Shape)
	}
	want := [][]float32{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for r, wr := range want {
		for c, wv := range wr {
			if got := cols.At(r, c); got != wv {
				t.Errorf("cols[%d][%d] = %v, want %v", r, c, got, wv)
			}
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	cs, err := NewConvShape(1, 2, 2, 1, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cols := Im2Col(x, cs)
	// First patch centered at (0,0): top row and left column are padding.
	first := cols.Data[0:9]
	want := []float32{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i, wv := range want {
		if first[i] != wv {
			t.Errorf("padded patch[%d] = %v, want %v", i, first[i], wv)
		}
	}
}

func TestCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property.
	rng := rand.New(rand.NewSource(3))
	cs, err := NewConvShape(2, 5, 5, 3, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	x := New(n, cs.InC, cs.InH, cs.InW)
	x.RandNormal(rng, 1)
	y := New(n*cs.PatchesPerItem, cs.K)
	y.RandNormal(rng, 1)

	cols := Im2Col(x, cs)
	var lhs float64
	for i := range cols.Data {
		lhs += float64(cols.Data[i]) * float64(y.Data[i])
	}
	back := Col2Im(y, n, cs)
	var rhs float64
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(back.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-2*(1+math.Abs(lhs)) {
		t.Errorf("adjoint property violated: %v vs %v", lhs, rhs)
	}
}

func TestAvgPool2(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := AvgPool2(x)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, wv := range want {
		if p.Data[i] != wv {
			t.Errorf("pool[%d] = %v, want %v", i, p.Data[i], wv)
		}
	}
}

func TestAvgPool2BackwardAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := New(2, 3, 6, 6)
	x.RandNormal(rng, 1)
	g := New(2, 3, 3, 3)
	g.RandNormal(rng, 1)
	p := AvgPool2(x)
	var lhs float64
	for i := range p.Data {
		lhs += float64(p.Data[i]) * float64(g.Data[i])
	}
	back := AvgPool2Backward(g, 6, 6)
	var rhs float64
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(back.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
		t.Errorf("pool adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length should panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestKaimingNormalStd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(10000)
	a.KaimingNormal(rng, 50)
	var sum, sq float64
	for _, v := range a.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	mean := sum / float64(a.Len())
	std := math.Sqrt(sq/float64(a.Len()) - mean*mean)
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(std-want) > 0.01 {
		t.Errorf("Kaiming std = %v, want ~%v", std, want)
	}
}
