package tensor

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Backend is a pluggable compute engine for the tensor operations on the
// framework's hot paths: GEMM (plain and transposed variants), the
// im2col/col2im convolution lowering, elementwise arithmetic, and generic
// parallel iteration. Implementations MUST be bit-identical to the Serial
// reference for every operation — callers are free to mix backends and
// results may never depend on the engine or its worker count.
//
// All destination-style operations ("dst" first) fully overwrite dst, so
// dst may come from GetScratch. Backends are safe for concurrent use by
// multiple goroutines.
//
// The Serial and Parallel engines here are the seam where future SIMD,
// cgo or GPU backends plug in (see ROADMAP).
type Backend interface {
	// Name identifies the backend ("serial", "parallel").
	Name() string
	// Workers returns the maximum concurrency of the engine (1 for serial).
	Workers() int

	// MatMul computes dst = a·b for a [m,k], b [k,n], dst [m,n].
	MatMul(dst, a, b *Tensor)
	// MatMulTransA computes dst = aᵀ·b for a [k,m], b [k,n], dst [m,n].
	MatMulTransA(dst, a, b *Tensor)
	// MatMulTransB computes dst = a·bᵀ for a [m,k], b [n,k], dst [m,n].
	MatMulTransB(dst, a, b *Tensor)

	// Im2Col lowers x [N, InC, InH, InW] into dst [N*OutH*OutW, K].
	Im2Col(dst, x *Tensor, cs ConvShape)
	// Col2Im scatters cols [N*OutH*OutW, K] into dst [N, InC, InH, InW],
	// the adjoint of Im2Col. dst is overwritten.
	Col2Im(dst, cols *Tensor, cs ConvShape)

	// AddInPlace computes dst += src elementwise; shapes must match.
	AddInPlace(dst, src *Tensor)
	// Scale multiplies every element of t by s.
	Scale(t *Tensor, s float32)

	// For runs fn over a partition of [0, n): each call receives a
	// half-open range [lo, hi); ranges are disjoint and cover [0, n).
	// fn may run concurrently on different ranges, so iterations must be
	// independent (disjoint writes).
	For(n int, fn func(lo, hi int))
	// Map runs fn(slot, i) once for every i in [0, n). Calls sharing a
	// slot value are executed sequentially on one goroutine, and slots
	// are dense in [0, Workers()), so slot can index private per-lane
	// resources (model replicas, scratch arenas).
	Map(n int, fn func(slot, i int))
}

// --- shape validation (shared by all backends) ---

func checkMatMul(dst, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k = a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims mismatch %d vs %d", k, k2))
	}
	checkDst(dst, m, n)
	return m, k, n
}

func checkMatMulTransA(dst, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 tensors")
	}
	k, m = a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims mismatch %d vs %d", k, k2))
	}
	checkDst(dst, m, n)
	return m, k, n
}

func checkMatMulTransB(dst, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 tensors")
	}
	m, k = a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims mismatch %d vs %d", k, k2))
	}
	checkDst(dst, m, n)
	return m, k, n
}

func checkDst(dst *Tensor, m, n int) {
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: GEMM dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
}

func checkIm2Col(dst, x *Tensor, cs ConvShape) int {
	n := x.Shape[0]
	if x.Rank() != 4 || x.Shape[1] != cs.InC || x.Shape[2] != cs.InH || x.Shape[3] != cs.InW {
		panic(fmt.Sprintf("tensor: Im2Col input shape %v does not match conv %+v", x.Shape, cs))
	}
	if dst.Rank() != 2 || dst.Shape[0] != n*cs.PatchesPerItem || dst.Shape[1] != cs.K {
		panic(fmt.Sprintf("tensor: Im2Col dst shape %v, want [%d %d]", dst.Shape, n*cs.PatchesPerItem, cs.K))
	}
	return n
}

func checkCol2Im(dst, cols *Tensor, cs ConvShape) int {
	if dst.Rank() != 4 || dst.Shape[1] != cs.InC || dst.Shape[2] != cs.InH || dst.Shape[3] != cs.InW {
		panic(fmt.Sprintf("tensor: Col2Im dst shape %v does not match conv %+v", dst.Shape, cs))
	}
	n := dst.Shape[0]
	if cols.Rank() != 2 || cols.Shape[0] != n*cs.PatchesPerItem || cols.Shape[1] != cs.K {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v does not match n=%d conv %+v", cols.Shape, n, cs))
	}
	return n
}

// --- serial reference backend ---

// serialBackend runs every operation as a plain single-threaded loop.
// It is the semantic reference: Parallel must match it bit for bit.
type serialBackend struct{}

var serialInstance Backend = serialBackend{}

// Serial returns the single-threaded reference backend.
func Serial() Backend { return serialInstance }

// Name implements Backend.
func (serialBackend) Name() string { return "serial" }

// Workers implements Backend.
func (serialBackend) Workers() int { return 1 }

// MatMul implements Backend.
func (serialBackend) MatMul(dst, a, b *Tensor) {
	_, k, n := checkMatMul(dst, a, b)
	matMulRows(dst, a, b, k, n, 0, dst.Shape[0])
}

// MatMulTransA implements Backend.
func (serialBackend) MatMulTransA(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransA(dst, a, b)
	matMulTransARows(dst, a, b, m, k, n, 0, m)
}

// MatMulTransB implements Backend.
func (serialBackend) MatMulTransB(dst, a, b *Tensor) {
	_, k, n := checkMatMulTransB(dst, a, b)
	matMulTransBRows(dst, a, b, k, n, 0, dst.Shape[0])
}

// Im2Col implements Backend.
func (serialBackend) Im2Col(dst, x *Tensor, cs ConvShape) {
	n := checkIm2Col(dst, x, cs)
	im2ColRows(dst, x, cs, 0, n*cs.PatchesPerItem)
}

// Col2Im implements Backend.
func (serialBackend) Col2Im(dst, cols *Tensor, cs ConvShape) {
	n := checkCol2Im(dst, cols, cs)
	col2ImItems(dst, cols, cs, 0, n)
}

// AddInPlace implements Backend.
func (serialBackend) AddInPlace(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", dst.Shape, src.Shape))
	}
	addRange(dst.Data, src.Data, 0, len(dst.Data))
}

// Scale implements Backend.
func (serialBackend) Scale(t *Tensor, s float32) {
	scaleRange(t.Data, s, 0, len(t.Data))
}

// For implements Backend: one call covering the whole range.
func (serialBackend) For(n int, fn func(lo, hi int)) {
	if n > 0 {
		fn(0, n)
	}
}

// Map implements Backend: sequential, slot 0.
func (serialBackend) Map(n int, fn func(slot, i int)) {
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

// --- default backend selection ---

var (
	defaultMu      sync.RWMutex
	defaultBackend Backend
)

// Default returns the process-default backend. On first use it is chosen
// from the FALVOLT_BACKEND environment variable ("serial", "parallel" or
// "parallel:N"); unset or "auto" selects Parallel when GOMAXPROCS > 1 and
// Serial otherwise. FALVOLT_WORKERS overrides the parallel worker count.
func Default() Backend {
	defaultMu.RLock()
	b := defaultBackend
	defaultMu.RUnlock()
	if b != nil {
		return b
	}
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultBackend == nil {
		b, err := backendByName(os.Getenv("FALVOLT_BACKEND"))
		if err != nil {
			// Do not re-consult the (invalid) environment: fall back to
			// the pure auto choice so Default never yields nil.
			fmt.Fprintf(os.Stderr, "falvolt: %v (falling back to auto)\n", err)
			b = autoBackend(envWorkers())
		}
		defaultBackend = b
	}
	return defaultBackend
}

// SetDefault installs b as the process-default backend.
func SetDefault(b Backend) {
	if b == nil {
		panic("tensor: SetDefault(nil)")
	}
	defaultMu.Lock()
	defaultBackend = b
	defaultMu.Unlock()
}

// SetDefaultByName selects the process-default backend by name. Accepted
// spellings: "" or "auto" (parallel iff GOMAXPROCS > 1), "serial",
// "parallel", "parallel:N" (N workers). It is the common handler behind
// the cmd/* -backend flags and the FALVOLT_BACKEND environment variable.
func SetDefaultByName(name string) error {
	b, err := backendByName(name)
	if err != nil {
		return err
	}
	SetDefault(b)
	return nil
}

func backendByName(name string) (Backend, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		// An unset flag defers to the environment; an explicit "auto"
		// overrides it.
		name = strings.ToLower(strings.TrimSpace(os.Getenv("FALVOLT_BACKEND")))
	}
	workers := 0
	if s, ok := strings.CutPrefix(name, "parallel:"); ok {
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tensor: bad worker count %q in backend name", s)
		}
		name, workers = "parallel", w
	}
	if workers == 0 {
		workers = envWorkers()
	}
	switch name {
	case "", "auto":
		return autoBackend(workers), nil
	case "serial":
		return Serial(), nil
	case "parallel":
		return NewParallel(workers), nil
	default:
		return nil, fmt.Errorf("tensor: unknown backend %q (want serial, parallel or auto)", name)
	}
}

// autoBackend picks Parallel when more than one core is available (or
// explicitly requested), Serial otherwise.
func autoBackend(workers int) Backend {
	if workers > 1 || (workers == 0 && runtime.GOMAXPROCS(0) > 1) {
		return NewParallel(workers)
	}
	return Serial()
}

// envWorkers parses FALVOLT_WORKERS (0 when unset or invalid).
func envWorkers() int {
	if s := os.Getenv("FALVOLT_WORKERS"); s != "" {
		if w, err := strconv.Atoi(s); err == nil && w >= 1 {
			return w
		}
	}
	return 0
}

// BackendFlagDoc is the shared help text for cmd/* -backend flags.
const BackendFlagDoc = "compute backend: auto | serial | parallel | parallel:N (also FALVOLT_BACKEND env)"
