package tensor

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// testWorkerCounts are the parallel configurations every equivalence test
// sweeps, per the acceptance criteria (1, 2 and 8 workers).
var testWorkerCounts = []int{1, 2, 8}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		// Mix sparsity in: the GEMM kernels have zero-skip fast paths.
		if rng.Float64() < 0.3 {
			continue
		}
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// assertBitIdentical fails unless a and b match bit for bit.
func assertBitIdentical(t *testing.T, ctx string, a, b *Tensor) {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("%s: shape %v vs %v", ctx, a.Shape, b.Shape)
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			t.Fatalf("%s: element %d differs: %v (%#08x) vs %v (%#08x)",
				ctx, i, a.Data[i], math.Float32bits(a.Data[i]), b.Data[i], math.Float32bits(b.Data[i]))
		}
	}
}

// gemmShapes deliberately includes odd, prime and degenerate extents.
var gemmShapes = [][3]int{ // m, k, n
	{1, 1, 1},
	{3, 5, 7},
	{17, 3, 9},
	{1, 64, 5},
	{33, 1, 13},
	{64, 33, 65},
	{7, 128, 1},
}

func TestParallelGEMMBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range testWorkerCounts {
		par := NewParallel(w)
		for _, s := range gemmShapes {
			m, k, n := s[0], s[1], s[2]
			a := randTensor(rng, m, k)
			b := randTensor(rng, k, n)
			at := randTensor(rng, k, m)
			bt := randTensor(rng, n, k)

			assertBitIdentical(t, "MatMul",
				MatMulUsing(Serial(), a, b), MatMulUsing(par, a, b))
			assertBitIdentical(t, "MatMulTransA",
				MatMulTransAUsing(Serial(), at, b), MatMulTransAUsing(par, at, b))
			assertBitIdentical(t, "MatMulTransB",
				MatMulTransBUsing(Serial(), a, bt), MatMulTransBUsing(par, a, bt))
		}
	}
}

func TestParallelGEMMIntoScratchDst(t *testing.T) {
	// Scratch destinations carry garbage; the kernels must fully
	// overwrite them.
	rng := rand.New(rand.NewSource(2))
	par := NewParallel(4)
	a := randTensor(rng, 9, 11)
	b := randTensor(rng, 11, 6)
	want := MatMulUsing(Serial(), a, b)
	dst := GetScratch(9, 6)
	for i := range dst.Data {
		dst.Data[i] = float32(math.NaN())
	}
	par.MatMul(dst, a, b)
	assertBitIdentical(t, "MatMul into scratch", want, dst)
	ReleaseScratch(dst)
}

func TestParallelIm2ColCol2ImBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	convs := []struct{ inC, inH, inW, outC, k, stride, pad, n int }{
		{1, 5, 5, 2, 3, 1, 1, 1},
		{3, 7, 5, 4, 3, 2, 1, 3},
		{2, 9, 9, 5, 5, 2, 2, 4},
		{4, 16, 16, 8, 3, 1, 1, 2},
	}
	for _, w := range testWorkerCounts {
		par := NewParallel(w)
		for _, c := range convs {
			cs, err := NewConvShape(c.inC, c.inH, c.inW, c.outC, c.k, c.k, c.stride, c.pad)
			if err != nil {
				t.Fatal(err)
			}
			x := randTensor(rng, c.n, c.inC, c.inH, c.inW)
			serialCols := Im2ColUsing(Serial(), x, cs)
			parCols := Im2ColUsing(par, x, cs)
			assertBitIdentical(t, "Im2Col", serialCols, parCols)

			g := randTensor(rng, c.n*cs.PatchesPerItem, cs.K)
			assertBitIdentical(t, "Col2Im",
				Col2ImUsing(Serial(), g, c.n, cs), Col2ImUsing(par, g, c.n, cs))
		}
	}
}

func TestParallelElementwiseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 257, 100_003} {
		a := randTensor(rng, n)
		b := randTensor(rng, n)
		for _, w := range testWorkerCounts {
			par := NewParallel(w)
			s1, s2 := a.Clone(), a.Clone()
			Serial().AddInPlace(s1, b)
			par.AddInPlace(s2, b)
			assertBitIdentical(t, "AddInPlace", s1, s2)
			Serial().Scale(s1, 0.37)
			par.Scale(s2, 0.37)
			assertBitIdentical(t, "Scale", s1, s2)
		}
	}
}

func TestForCoversRangeDisjointly(t *testing.T) {
	for _, w := range testWorkerCounts {
		par := NewParallel(w)
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]int32, n)
			par.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestMapCoversAllItemsWithValidSlots(t *testing.T) {
	for _, w := range testWorkerCounts {
		par := NewParallel(w)
		const n = 153
		hits := make([]int32, n)
		var badSlot atomic.Int32
		par.Map(n, func(slot, i int) {
			if slot < 0 || slot >= par.Workers() {
				badSlot.Store(1)
			}
			atomic.AddInt32(&hits[i], 1)
		})
		if badSlot.Load() != 0 {
			t.Fatalf("workers=%d: slot outside [0, %d)", w, par.Workers())
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", w, i, h)
			}
		}
	}
}

func TestNestedParallelCallsDoNotDeadlock(t *testing.T) {
	par := NewParallel(2)
	var count atomic.Int32
	par.Map(8, func(slot, i int) {
		// Nested fan-out from inside a lane must complete even with every
		// worker busy.
		par.For(64, func(lo, hi int) { count.Add(int32(hi - lo)) })
	})
	if got := count.Load(); got != 8*64 {
		t.Fatalf("nested For covered %d iterations, want %d", got, 8*64)
	}
}

func TestBackendSelectionByName(t *testing.T) {
	cases := []struct {
		name    string
		want    string
		workers int // 0 = don't check
		err     bool
	}{
		{name: "serial", want: "serial"},
		{name: "parallel", want: "parallel"},
		{name: "parallel:3", want: "parallel", workers: 3},
		{name: "Parallel:2", want: "parallel", workers: 2},
		{name: "parallel:x", err: true},
		{name: "gpu", err: true},
	}
	for _, c := range cases {
		b, err := backendByName(c.name)
		if c.err {
			if err == nil {
				t.Errorf("backendByName(%q): expected error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("backendByName(%q): %v", c.name, err)
			continue
		}
		if b.Name() != c.want {
			t.Errorf("backendByName(%q).Name() = %q, want %q", c.name, b.Name(), c.want)
		}
		if c.workers != 0 && b.Workers() != c.workers {
			t.Errorf("backendByName(%q).Workers() = %d, want %d", c.name, b.Workers(), c.workers)
		}
	}
	if err := SetDefaultByName("bogus"); err == nil {
		t.Error("SetDefaultByName(bogus): expected error")
	}
}

func TestDefaultFallsBackOnInvalidEnv(t *testing.T) {
	// An invalid FALVOLT_BACKEND must degrade to the auto choice, never
	// to a nil backend (which would panic at first use).
	t.Setenv("FALVOLT_BACKEND", "bogus")
	defaultMu.Lock()
	prev := defaultBackend
	defaultBackend = nil
	defaultMu.Unlock()
	defer SetDefault(func() Backend {
		if prev != nil {
			return prev
		}
		return Serial()
	}())
	b := Default()
	if b == nil {
		t.Fatal("Default() returned nil on invalid FALVOLT_BACKEND")
	}
	// Must be usable.
	b.For(4, func(lo, hi int) {})
}

func TestScratchRoundTrip(t *testing.T) {
	s := GetScratch(4, 5)
	if s.Len() != 20 || s.Shape[0] != 4 || s.Shape[1] != 5 {
		t.Fatalf("scratch shape %v len %d", s.Shape, s.Len())
	}
	for i := range s.Data {
		s.Data[i] = float32(i)
	}
	ReleaseScratch(s)
	if s.Data != nil {
		t.Fatal("ReleaseScratch must detach the buffer")
	}
	// Reuse path: a second scratch of smaller size must come back usable.
	s2 := GetScratch(3)
	if len(s2.Data) != 3 {
		t.Fatalf("scratch len %d, want 3", len(s2.Data))
	}
	ReleaseScratch(s2)
	ReleaseScratch(nil) // must not panic
}
