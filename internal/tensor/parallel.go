package tensor

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// parallelBackend executes the shared row-range kernels concurrently on a
// workerPool. Work is split into contiguous row panels pulled dynamically
// from an atomic cursor; because every output row is produced by exactly
// one panel with the same inner-loop order as the serial kernels, results
// are bit-identical to Serial for any worker count.
type parallelBackend struct {
	pool *workerPool
}

// chunksPerWorker over-decomposes parallel loops so the dynamic cursor
// can load-balance panels of uneven cost (e.g. spike-sparse GEMM rows).
const chunksPerWorker = 4

// minParallelWork is the smallest number of inner-loop operations worth
// fanning out; below it the hand-off overhead beats the speedup and the
// operation runs inline.
const minParallelWork = 1 << 13

// NewParallel constructs a multi-core backend with the given worker
// count; workers <= 0 selects GOMAXPROCS. The backend owns a shared pool
// of compute goroutines that lives as long as the backend is reachable;
// when the backend is garbage-collected a cleanup closes the pool and
// its goroutines exit, so transient backends (tests, reconfiguration)
// do not pin goroutines forever.
func NewParallel(workers int) Backend {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &parallelBackend{pool: newWorkerPool(workers)}
	runtime.AddCleanup(b, func(jobs chan *poolJob) { close(jobs) }, b.pool.jobs)
	return b
}

// Name implements Backend.
func (p *parallelBackend) Name() string { return "parallel" }

// Workers implements Backend.
func (p *parallelBackend) Workers() int { return p.pool.workers }

// split partitions [0, n) into roughly equal contiguous chunks and runs
// fn over them on the pool. serialCost gates tiny jobs onto the caller.
func (p *parallelBackend) split(n int, serialCost int, fn func(lo, hi int)) {
	if serialCost < minParallelWork {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	p.runChunks(n, fn)
}

// runChunks is the shared chunk partitioner behind split and For.
func (p *parallelBackend) runChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.pool.workers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	p.pool.Run(chunks, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
	// The GC cleanup closing the pool must not fire mid-Run.
	runtime.KeepAlive(p)
}

// MatMul implements Backend.
func (p *parallelBackend) MatMul(dst, a, b *Tensor) {
	m, k, n := checkMatMul(dst, a, b)
	p.split(m, m*k*n, func(r0, r1 int) { matMulRows(dst, a, b, k, n, r0, r1) })
}

// MatMulTransA implements Backend.
func (p *parallelBackend) MatMulTransA(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransA(dst, a, b)
	p.split(m, m*k*n, func(r0, r1 int) { matMulTransARows(dst, a, b, m, k, n, r0, r1) })
}

// MatMulTransB implements Backend.
func (p *parallelBackend) MatMulTransB(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(dst, a, b)
	p.split(m, m*k*n, func(r0, r1 int) { matMulTransBRows(dst, a, b, k, n, r0, r1) })
}

// Im2Col implements Backend.
func (p *parallelBackend) Im2Col(dst, x *Tensor, cs ConvShape) {
	n := checkIm2Col(dst, x, cs)
	rows := n * cs.PatchesPerItem
	p.split(rows, rows*cs.K, func(r0, r1 int) { im2ColRows(dst, x, cs, r0, r1) })
}

// Col2Im implements Backend. Parallelism is across batch items: patches
// of one item overlap (their scatter order must stay serial) but items
// write disjoint output regions.
func (p *parallelBackend) Col2Im(dst, cols *Tensor, cs ConvShape) {
	n := checkCol2Im(dst, cols, cs)
	p.split(n, cols.Len(), func(b0, b1 int) { col2ImItems(dst, cols, cs, b0, b1) })
}

// AddInPlace implements Backend. Chunks write disjoint ranges, so the
// parallel result is trivially bit-identical.
func (p *parallelBackend) AddInPlace(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", dst.Shape, src.Shape))
	}
	n := len(dst.Data)
	if n < minParallelWork {
		addRange(dst.Data, src.Data, 0, n)
		return
	}
	p.For(n, func(lo, hi int) { addRange(dst.Data, src.Data, lo, hi) })
}

// Scale implements Backend.
func (p *parallelBackend) Scale(t *Tensor, s float32) {
	n := len(t.Data)
	if n < minParallelWork {
		scaleRange(t.Data, s, 0, n)
		return
	}
	p.For(n, func(lo, hi int) { scaleRange(t.Data, s, lo, hi) })
}

// For implements Backend. No small-n gate: the per-iteration cost is the
// caller's and may be arbitrarily large even for tiny n (e.g. one chunk
// per output column of a systolic pass), and pool hand-off is
// non-blocking and cheap relative to any loop worth parallelizing.
func (p *parallelBackend) For(n int, fn func(lo, hi int)) {
	p.runChunks(n, fn)
}

// Map implements Backend. Items are pulled from a shared cursor by up to
// Workers() lanes; each lane runs on one goroutine, so slot safely
// indexes private per-lane resources.
func (p *parallelBackend) Map(n int, fn func(slot, i int)) {
	if n <= 0 {
		return
	}
	slots := p.pool.workers
	if slots > n {
		slots = n
	}
	if slots <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	p.pool.Run(slots, func(slot int) {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(slot, int(i))
		}
	})
	runtime.KeepAlive(p)
}
