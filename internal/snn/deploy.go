package snn

import (
	"fmt"

	"falvolt/internal/fixed"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// Deployment transforms: the mitigation zoo interposes on the layer ->
// array seam without touching the array's datapath. A plain deployment
// (no permutations, no clamp) takes exactly the pre-transform code
// path, so existing campaigns stay bit-identical.

// install quantizes the layer's weights for the deployment, storing
// them slot-permuted when a fault-aware remap is set. Permuting the
// quantized words equals quantizing the permuted float matrix — the
// quantizer is per-element — so the remapped GEMM computes the same
// logical products on different PEs.
func (d *Deployment) install(w *tensor.Tensor) {
	q := systolic.QuantizeMatrix(w, d.Array.Config().Format)
	if d.MPerm == nil && d.KPerm == nil {
		d.weights = q
		return
	}
	if d.MPerm != nil && len(d.MPerm) != q.M {
		panic(fmt.Sprintf("snn: MPerm length %d does not match GEMM M=%d", len(d.MPerm), q.M))
	}
	if d.KPerm != nil && len(d.KPerm) != q.K {
		panic(fmt.Sprintf("snn: KPerm length %d does not match GEMM K=%d", len(d.KPerm), q.K))
	}
	words := make([]fixed.Word, len(q.Words))
	for j := 0; j < q.M; j++ {
		src := j
		if d.MPerm != nil {
			src = d.MPerm[j]
		}
		srow := q.Words[src*q.K : (src+1)*q.K]
		drow := words[j*q.K : (j+1)*q.K]
		if d.KPerm == nil {
			copy(drow, srow)
		} else {
			for i, ki := range d.KPerm {
				drow[i] = srow[ki]
			}
		}
	}
	d.weights = &systolic.Matrix{M: q.M, K: q.K, Words: words, Format: q.Format}
}

// forward runs the deployed GEMM: permute the input onto the remapped
// rows, stream through the array, unpermute the outputs, then apply the
// range restriction. All transforms are identities when unset.
func (d *Deployment) forward(x *tensor.Tensor) *tensor.Tensor {
	if d.MPerm == nil && d.KPerm == nil && d.ClampLo == nil {
		return d.Array.Forward(x, d.weights, d.Binary)
	}
	in := x
	var scratch *tensor.Tensor
	if d.KPerm != nil {
		n, k := x.Shape[0], x.Shape[1]
		scratch = tensor.GetScratch(n, k)
		for b := 0; b < n; b++ {
			src := x.Data[b*k : (b+1)*k]
			dst := scratch.Data[b*k : (b+1)*k]
			for i, ki := range d.KPerm {
				dst[i] = src[ki]
			}
		}
		in = scratch
	}
	y := d.Array.Forward(in, d.weights, d.Binary)
	if scratch != nil {
		tensor.ReleaseScratch(scratch)
	}
	if d.MPerm != nil {
		n, m := y.Shape[0], y.Shape[1]
		out := tensor.New(n, m)
		for b := 0; b < n; b++ {
			src := y.Data[b*m : (b+1)*m]
			dst := out.Data[b*m : (b+1)*m]
			for j, mj := range d.MPerm {
				dst[mj] = src[j]
			}
		}
		y = out
	}
	if d.ClampLo != nil {
		n, m := y.Shape[0], y.Shape[1]
		for b := 0; b < n; b++ {
			row := y.Data[b*m : (b+1)*m]
			for i := range row {
				if row[i] < d.ClampLo[i] {
					row[i] = d.ClampLo[i]
				} else if row[i] > d.ClampHi[i] {
					row[i] = d.ClampHi[i]
				}
			}
		}
	}
	return y
}
