package snn

import (
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func tensorsBitIdentical(t *testing.T, ctx string, a, b *tensor.Tensor) {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("%s: shape %v vs %v", ctx, a.Shape, b.Shape)
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", ctx, i, a.Data[i], b.Data[i])
		}
	}
}

// TestConvForwardBackwardEngineEquivalence trains one step of a Conv2D on
// the serial and parallel engines and asserts outputs, input gradients
// and weight gradients are bit-identical, across odd shapes and worker
// counts.
func TestConvForwardBackwardEngineEquivalence(t *testing.T) {
	shapes := []struct{ n, inC, inH, inW, outC, k, stride, pad int }{
		{1, 1, 5, 5, 3, 3, 1, 1},
		{3, 2, 7, 9, 5, 3, 2, 1},
		{4, 3, 16, 16, 8, 3, 1, 1},
	}
	for _, workers := range []int{1, 2, 8} {
		par := tensor.NewParallel(workers)
		for _, sh := range shapes {
			mkConv := func() *Conv2D {
				c, err := NewConv2D(sh.inC, sh.inH, sh.inW, sh.outC, sh.k, sh.stride, sh.pad,
					true, rand.New(rand.NewSource(9)))
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			serialConv, parConv := mkConv(), mkConv()
			parConv.SetEngine(par)

			rng := rand.New(rand.NewSource(10))
			x := tensor.New(sh.n, sh.inC, sh.inH, sh.inW)
			x.RandNormal(rng, 1)
			g := tensor.New(sh.n, sh.outC, serialConv.Shape.OutH, serialConv.Shape.OutW)
			g.RandNormal(rng, 1)

			ys := serialConv.Forward(x, true)
			yp := parConv.Forward(x, true)
			tensorsBitIdentical(t, "conv forward", ys, yp)

			gs := serialConv.Backward(g)
			gp := parConv.Backward(g)
			tensorsBitIdentical(t, "conv input grad", gs, gp)
			tensorsBitIdentical(t, "conv weight grad",
				serialConv.weight.Grad, parConv.weight.Grad)

			// Inference path (scratch-backed) must agree with training path
			// activations.
			tensorsBitIdentical(t, "conv inference",
				serialConv.Forward(x, false), parConv.Forward(x, false))
		}
	}
}

// buildEvalFixture returns a small trained-ish model plus samples for
// evaluation equivalence tests.
func buildEvalFixture(t *testing.T) (*Model, []Sample) {
	t.Helper()
	spec := MNISTSpec()
	spec.T = 2
	spec.EncoderC, spec.BlockC, spec.FCHidden = 2, []int{4}, 16
	model, err := Build(spec, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var samples []Sample
	for i := 0; i < 37; i++ { // odd count: ragged final batch
		x := tensor.New(1, spec.InC, spec.InH, spec.InW)
		x.RandUniform(rng, 0, 1)
		samples = append(samples, Sample{
			Seq:   StaticSequence{X: x, T: spec.T},
			Label: i % spec.Classes,
		})
	}
	return model, samples
}

// TestEvaluateBatchParallelMatchesSerial checks the sharded evaluation
// path returns the exact serial accuracy, on the float path and deployed
// on a faulty bypassed systolic array.
func TestEvaluateBatchParallelMatchesSerial(t *testing.T) {
	model, samples := buildEvalFixture(t)

	want := EvaluateWith(tensor.Serial(), model.Net, samples, 8)
	for _, workers := range []int{1, 2, 8} {
		got := EvaluateWith(tensor.NewParallel(workers), model.Net, samples, 8)
		if got != want {
			t.Fatalf("float path workers=%d: accuracy %v, want %v", workers, got, want)
		}
	}

	arr := systolic.MustNew(systolic.Config{
		Rows: 16, Cols: 16, Format: fixed.Q16x16, Saturate: true,
	})
	fm, err := faults.Generate(16, 16, faults.GenSpec{
		NumFaulty: 32, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
	}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	arr.SetBypass(true)
	model.Net.Deploy(arr)
	defer model.Net.Undeploy()

	want = EvaluateWith(tensor.Serial(), model.Net, samples, 8)
	for _, workers := range []int{2, 8} {
		got := EvaluateWith(tensor.NewParallel(workers), model.Net, samples, 8)
		if got != want {
			t.Fatalf("deployed workers=%d: accuracy %v, want %v", workers, got, want)
		}
	}
}

// TestSetEnginePropagates asserts the engine seam reaches every GEMM
// layer and the clone keeps it.
func TestSetEnginePropagates(t *testing.T) {
	model, _ := buildEvalFixture(t)
	eng := tensor.NewParallel(2)
	model.Net.SetEngine(eng)
	if model.Net.Engine() != eng {
		t.Fatal("network engine not set")
	}
	for i, g := range model.Net.GEMMLayers() {
		switch l := g.(type) {
		case *Conv2D:
			if l.engine() != eng {
				t.Fatalf("conv layer %d engine not threaded", i)
			}
		case *Linear:
			if l.engine() != eng {
				t.Fatalf("linear layer %d engine not threaded", i)
			}
		}
	}
	clone := model.Net.InferenceClone()
	if clone.Engine() != eng {
		t.Fatal("inference clone lost the engine")
	}
	if len(clone.Layers) != len(model.Net.Layers) {
		t.Fatal("inference clone layer count mismatch")
	}
	// Clones share parameters with the original.
	for i := range clone.Layers {
		op := model.Net.Layers[i].Params()
		cp := clone.Layers[i].Params()
		if len(op) != len(cp) {
			t.Fatalf("layer %d: params %d vs %d", i, len(op), len(cp))
		}
		for j := range op {
			if op[j] != cp[j] {
				t.Fatalf("layer %d param %d not shared", i, j)
			}
		}
	}
}
