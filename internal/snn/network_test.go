package snn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"falvolt/internal/fixed"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func tinyModel(t *testing.T, seed int64) *Model {
	t.Helper()
	spec := MNISTSpec()
	spec.T = 2
	spec.EncoderC, spec.BlockC, spec.FCHidden = 2, []int{4, 4}, 16
	m, err := Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildModelStructure(t *testing.T) {
	m := tinyModel(t, 1)
	if got := len(m.SpikingNames); got != 5 {
		t.Errorf("spiking layers = %d, want 5 (Enc, Conv1, Conv2, FC1, FC2)", got)
	}
	if m.SpikingNames[0] != "Enc" || m.SpikingNames[4] != "FC2" {
		t.Errorf("names = %v", m.SpikingNames)
	}
	if got := len(m.HiddenLayerNames()); got != 4 {
		t.Errorf("hidden layers = %d, want 4", got)
	}
	if got := len(m.Net.GEMMLayers()); got != 5 {
		t.Errorf("GEMM layers = %d, want 5 (3 conv + 2 fc)", got)
	}
	if got := len(m.Net.SpikingLayers()); got != 5 {
		t.Errorf("SpikingLayers = %d, want 5", got)
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	spec := MNISTSpec()
	spec.BlockC = nil
	if _, err := Build(spec, rand.New(rand.NewSource(1))); err == nil {
		t.Error("no conv blocks should error")
	}
	spec2 := MNISTSpec()
	spec2.InH, spec2.InW = 18, 18 // 18 -> 9: second block not poolable
	spec2.BlockC = []int{4, 4}
	if _, err := Build(spec2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("non-poolable extent should error")
	}
}

func TestForwardRateShapeAndRange(t *testing.T) {
	m := tinyModel(t, 2)
	x := tensor.New(3, 1, 16, 16)
	x.RandUniform(rand.New(rand.NewSource(3)), 0, 1)
	rate := m.Net.Forward(StaticSequence{X: x, T: m.Net.T}, false)
	if rate.Shape[0] != 3 || rate.Shape[1] != 10 {
		t.Fatalf("rate shape %v, want [3 10]", rate.Shape)
	}
	for _, v := range rate.Data {
		if v < 0 || v > 1 {
			t.Errorf("firing rate %v outside [0,1]", v)
		}
	}
}

func TestNetworkDeterministicInference(t *testing.T) {
	m := tinyModel(t, 4)
	x := tensor.New(2, 1, 16, 16)
	x.RandUniform(rand.New(rand.NewSource(5)), 0, 1)
	seq := StaticSequence{X: x, T: m.Net.T}
	m.Net.ResetState()
	a := m.Net.Forward(seq, false)
	m.Net.ResetState()
	b := m.Net.Forward(seq, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("inference must be deterministic after ResetState")
		}
	}
}

func TestSetVthsAndVths(t *testing.T) {
	m := tinyModel(t, 6)
	m.Net.SetVths(0.6)
	for _, v := range m.Net.Vths() {
		if math.Abs(v-0.6) > 1e-6 {
			t.Errorf("Vths = %v, want all 0.6", m.Net.Vths())
		}
	}
}

func TestSetLearnVthChangesParamCount(t *testing.T) {
	m := tinyModel(t, 7)
	before := len(m.Net.Params())
	m.Net.SetLearnVth(true)
	after := len(m.Net.Params())
	if after != before+5 {
		t.Errorf("LearnVth should add one param per spiking layer: %d -> %d", before, after)
	}
}

func TestStateRoundTrip(t *testing.T) {
	m := tinyModel(t, 8)
	x := tensor.New(2, 1, 16, 16)
	x.RandUniform(rand.New(rand.NewSource(9)), 0, 1)
	seq := StaticSequence{X: x, T: m.Net.T}

	st := m.Net.State()
	m.Net.ResetState()
	want := m.Net.Forward(seq, false)

	// Perturb everything, then restore.
	for _, p := range m.Net.Params() {
		p.Value.Fill(0.123)
	}
	m.Net.SetVths(0.4)
	if err := m.Net.LoadState(st); err != nil {
		t.Fatal(err)
	}
	m.Net.ResetState()
	got := m.Net.Forward(seq, false)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("state restore did not reproduce outputs")
		}
	}
}

func TestStateFileRoundTrip(t *testing.T) {
	m := tinyModel(t, 10)
	st := m.Net.State()
	path := filepath.Join(t.TempDir(), "net.gob")
	if err := SaveStateFile(st, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Net.LoadState(back); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStateFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("loading missing file should error")
	}
	if _, err := os.Stat(path); err != nil {
		t.Error("state file missing after save")
	}
}

func TestLoadStateStructureMismatch(t *testing.T) {
	m := tinyModel(t, 11)
	other := tinyModel(t, 12)
	st := other.Net.State()
	st.Entries = st.Entries[:len(st.Entries)-1]
	if err := m.Net.LoadState(st); err == nil {
		t.Error("layer count mismatch should error")
	}
}

func TestDeployBinaryInference(t *testing.T) {
	m := tinyModel(t, 13)
	gemms := m.Net.GEMMLayers()
	arr := systolic.MustNew(systolic.Config{Rows: 32, Cols: 32, Format: fixed.Q16x16, Saturate: true})
	m.Net.Deploy(arr)
	// Encoder conv sees the raw image: analog path. Conv1 directly follows
	// the encoder PLIF: binary spikes. Conv2 and FC1 follow average
	// pooling, whose outputs are fractional: analog path. FC2 follows
	// Dropout (identity at inference) after a PLIF node: binary.
	wantBinary := []bool{false, true, false, false, true}
	for i, g := range gemms {
		d := g.Deployment()
		if d == nil {
			t.Fatalf("layer %d not deployed", i)
		}
		if d.Binary != wantBinary[i] {
			t.Errorf("layer %d Binary = %v, want %v", i, d.Binary, wantBinary[i])
		}
	}

	// Deployed fault-free inference must closely match the float path.
	x := tensor.New(2, 1, 16, 16)
	x.RandUniform(rand.New(rand.NewSource(14)), 0, 1)
	seq := StaticSequence{X: x, T: m.Net.T}
	m.Net.ResetState()
	deployed := m.Net.Forward(seq, false)
	m.Net.Undeploy()
	m.Net.ResetState()
	float := m.Net.Forward(seq, false)
	for i := range deployed.Data {
		if d := math.Abs(float64(deployed.Data[i] - float.Data[i])); d > 0.26 {
			t.Errorf("deployed rate differs from float at %d by %v", i, d)
		}
	}
}

func TestEventSequenceRepeatsLastFrame(t *testing.T) {
	f0 := tensor.New(1, 1, 2, 2)
	f1 := tensor.New(1, 1, 2, 2)
	f1.Fill(1)
	seq := EventSequence{Frames: []*tensor.Tensor{f0, f1}}
	if seq.At(5) != f1 {
		t.Error("EventSequence should repeat last frame beyond its length")
	}
	if seq.Steps() != 2 {
		t.Errorf("Steps = %d", seq.Steps())
	}
}

func TestMakeBatchConcatenates(t *testing.T) {
	x1 := tensor.New(1, 1, 4, 4)
	x1.Fill(1)
	x2 := tensor.New(1, 1, 4, 4)
	x2.Fill(2)
	seq, labels := MakeBatch([]Sample{
		{Seq: StaticSequence{X: x1, T: 2}, Label: 3},
		{Seq: StaticSequence{X: x2, T: 2}, Label: 7},
	})
	if labels[0] != 3 || labels[1] != 7 {
		t.Errorf("labels = %v", labels)
	}
	b := seq.At(0)
	if b.Shape[0] != 2 {
		t.Fatalf("batch dim = %d", b.Shape[0])
	}
	if b.Data[0] != 1 || b.Data[16] != 2 {
		t.Error("batch concatenation order wrong")
	}
}

func TestOneHotAndAccuracy(t *testing.T) {
	oh := OneHot([]int{1, 0}, 3)
	want := []float32{0, 1, 0, 1, 0, 0}
	for i, v := range want {
		if oh.Data[i] != v {
			t.Fatalf("OneHot wrong at %d", i)
		}
	}
	pred := tensor.FromSlice([]float32{0.1, 0.9, 0, 0.8, 0.1, 0.1}, 2, 3)
	if acc := Accuracy(pred, []int{1, 0}); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	if acc := Accuracy(pred, []int{2, 2}); acc != 0 {
		t.Errorf("accuracy = %v, want 0", acc)
	}
	defer func() {
		if recover() == nil {
			t.Error("OneHot with out-of-range label should panic")
		}
	}()
	OneHot([]int{5}, 3)
}

func TestLossesGradientDirection(t *testing.T) {
	pred := tensor.FromSlice([]float32{0.8, 0.2}, 1, 2)
	target := tensor.FromSlice([]float32{1, 0}, 1, 2)
	for _, loss := range []Loss{MSERate{}, CrossEntropy{}} {
		l, g := loss.Loss(pred, target)
		if l <= 0 {
			t.Errorf("%T loss should be positive for imperfect pred, got %v", loss, l)
		}
		if g.Data[0] >= 0 {
			t.Errorf("%T gradient for under-predicted true class should be negative, got %v", loss, g.Data[0])
		}
		if g.Data[1] <= 0 {
			t.Errorf("%T gradient for over-predicted wrong class should be positive, got %v", loss, g.Data[1])
		}
	}
}

func TestCrossEntropyMatchesKnownValue(t *testing.T) {
	pred := tensor.FromSlice([]float32{0, 0}, 1, 2) // uniform softmax
	target := tensor.FromSlice([]float32{1, 0}, 1, 2)
	l, _ := CrossEntropy{}.Loss(pred, target)
	if math.Abs(l-math.Log(2)) > 1e-5 {
		t.Errorf("CE of uniform over 2 classes = %v, want ln2", l)
	}
}

func TestTrainConfigValidation(t *testing.T) {
	bad := []TrainConfig{
		{Epochs: -1, BatchSize: 4, Classes: 2, LR: 0.1},
		{Epochs: 1, BatchSize: 0, Classes: 2, LR: 0.1},
		{Epochs: 1, BatchSize: 4, Classes: 0, LR: 0.1},
		{Epochs: 1, BatchSize: 4, Classes: 2, LR: 0},
	}
	for i, cfg := range bad {
		c := cfg
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	good := TrainConfig{Epochs: 1, BatchSize: 4, Classes: 2, LR: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if good.Loss == nil || good.Rng == nil {
		t.Error("Validate should fill Loss and Rng defaults")
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := NewDropout(0.5, rng)
	x := tensor.New(4, 100)
	x.Fill(1)
	// Eval: identity.
	if out := d.Forward(x, false); out != x {
		t.Error("eval dropout should be identity")
	}
	// Train: some zeros, survivors scaled by 2, mask constant across time.
	o1 := d.Forward(x, true)
	o2 := d.Forward(x, true)
	zeros := 0
	for i := range o1.Data {
		if o1.Data[i] == 0 {
			zeros++
		} else if o1.Data[i] != 2 {
			t.Fatalf("surviving activation should be scaled to 2, got %v", o1.Data[i])
		}
		if o1.Data[i] != o2.Data[i] {
			t.Fatal("dropout mask must be constant across timesteps within a sequence")
		}
	}
	if zeros < 100 || zeros > 300 {
		t.Errorf("dropped %d of 400, expected ~200", zeros)
	}
	// After reset, a new mask is drawn.
	d.ResetState()
	o3 := d.Forward(x, true)
	same := true
	for i := range o1.Data {
		if o1.Data[i] != o3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("mask should change between sequences")
	}
}

func TestOptimizersDecreaseQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)^2 with each optimizer.
	for _, name := range []string{"sgd", "sgdm", "adam"} {
		p := NewParam("w", tensor.FromSlice([]float32{0}, 1))
		var opt Optimizer
		switch name {
		case "sgd":
			opt = NewSGD([]*Param{p}, 0.1, 0)
		case "sgdm":
			opt = NewSGD([]*Param{p}, 0.05, 0.9)
		default:
			opt = NewAdam([]*Param{p}, 0.2)
		}
		for i := 0; i < 100; i++ {
			opt.ZeroGrad()
			p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
			opt.Step()
		}
		if math.Abs(float64(p.Value.Data[0])-3) > 0.1 {
			t.Errorf("%s failed to minimize: w = %v", name, p.Value.Data[0])
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(4))
	p.Grad.Fill(3) // norm = 6
	norm := ClipGradNorm([]*Param{p}, 3)
	if math.Abs(norm-6) > 1e-5 {
		t.Errorf("pre-clip norm = %v, want 6", norm)
	}
	var sq float64
	for _, g := range p.Grad.Data {
		sq += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(sq)-3) > 1e-4 {
		t.Errorf("post-clip norm = %v, want 3", math.Sqrt(sq))
	}
}
