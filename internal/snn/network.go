package snn

import (
	"fmt"

	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// Sequence supplies the network input for each simulated timestep.
type Sequence interface {
	// At returns the input tensor for timestep t, shaped [N, C, H, W].
	At(t int) *tensor.Tensor
	// Steps returns the native number of timesteps of the sequence.
	Steps() int
}

// StaticSequence presents the same frame at every timestep — the paper's
// treatment of static datasets such as MNIST, where the first convolution
// acts as a learned spike encoder.
type StaticSequence struct {
	X *tensor.Tensor
	T int
}

// At implements Sequence.
func (s StaticSequence) At(int) *tensor.Tensor { return s.X }

// Steps implements Sequence.
func (s StaticSequence) Steps() int { return s.T }

// EventSequence presents a different pre-binned event frame per timestep —
// the neuromorphic datasets (N-MNIST, DVS Gesture).
type EventSequence struct {
	Frames []*tensor.Tensor
}

// At implements Sequence. Sequences shorter than the network's horizon
// repeat their last frame.
func (s EventSequence) At(t int) *tensor.Tensor {
	if t >= len(s.Frames) {
		t = len(s.Frames) - 1
	}
	return s.Frames[t]
}

// Steps implements Sequence.
func (s EventSequence) Steps() int { return len(s.Frames) }

// Network is an SNN: an ordered stack of layers unrolled over T timesteps.
// The network output is the mean firing rate of the final layer over the
// horizon, shaped [N, classes].
type Network struct {
	Layers []Layer
	T      int

	eng tensor.Backend // nil = tensor.Default()
}

// engineLayer is implemented by layers whose hot loops run on a compute
// backend.
type engineLayer interface {
	SetEngine(tensor.Backend)
}

// SetEngine routes the network's compute through e (nil restores
// tensor.Default()), propagating to every layer with an engine seam.
// Results are bit-identical on every engine; only wall-clock changes.
func (n *Network) SetEngine(e tensor.Backend) {
	n.eng = e
	for _, l := range n.Layers {
		if el, ok := l.(engineLayer); ok {
			el.SetEngine(e)
		}
	}
}

// Engine returns the network's compute backend.
func (n *Network) Engine() tensor.Backend {
	if n.eng != nil {
		return n.eng
	}
	return tensor.Default()
}

// InferenceClone returns a replica network for concurrent inference:
// layers share parameters and deployments with the original but own
// private recurrent state and caches (see Layer.CloneInference).
func (n *Network) InferenceClone() *Network {
	ls := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		ls[i] = l.CloneInference()
	}
	return &Network{Layers: ls, T: n.T, eng: n.eng}
}

// TrainingClone returns a replica network for concurrent training: layers
// share parameter values with the original but own private gradient
// accumulators, recurrent state and caches (see Layer.CloneTraining).
// Clone Params() are index-aligned with the primary's, so the trainer can
// harvest a replica's gradients and reduce them into the primary's in a
// deterministic micro-batch order. Buffer ownership is Into-style: the
// clone writes only memory it allocated itself, so a device-offload
// backend can place replica gradients in its own arenas without touching
// the primary until the ordered reduction.
func (n *Network) TrainingClone() *Network {
	ls := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		ls[i] = l.CloneTraining()
	}
	return &Network{Layers: ls, T: n.T, eng: n.eng}
}

// NewNetwork constructs a network over a fixed simulation horizon.
func NewNetwork(t int, layers ...Layer) *Network {
	if t <= 0 {
		panic(fmt.Sprintf("snn: horizon must be positive, got %d", t))
	}
	return &Network{Layers: layers, T: t}
}

// Params returns all trainable parameters of all layers.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ResetState clears every layer's recurrent state and caches. Call between
// sequences (the trainer does this automatically).
func (n *Network) ResetState() {
	for _, l := range n.Layers {
		l.ResetState()
	}
}

// Forward runs the network over its horizon and returns the mean firing
// rate of the output layer, shaped [N, classes]. Each timestep is
// announced to every deployed systolic array first, so transient
// soft-error schedules strike and decay mid-inference at the right
// steps (a no-op for arrays without time-dependent faults).
func (n *Network) Forward(seq Sequence, train bool) *tensor.Tensor {
	eng := n.Engine()
	var rate *tensor.Tensor
	for t := 0; t < n.T; t++ {
		n.stepDeployments(t)
		x := seq.At(t)
		for _, l := range n.Layers {
			x = l.Forward(x, train)
		}
		if rate == nil {
			rate = x.Clone()
		} else {
			eng.AddInPlace(rate, x)
		}
	}
	eng.Scale(rate, 1/float32(n.T))
	return rate
}

// Backward propagates the gradient of the loss wrt the mean firing rate
// back through all T timesteps (BPTT). Forward must have been called with
// train=true on the same sequence.
func (n *Network) Backward(gradRate *tensor.Tensor) {
	perStep := gradRate.Clone()
	perStep.Scale(1 / float32(n.T))
	for t := n.T - 1; t >= 0; t-- {
		g := perStep
		for i := len(n.Layers) - 1; i >= 0; i-- {
			g = n.Layers[i].Backward(g)
		}
	}
}

// stepDeployments advances every deployed systolic array to inference
// timestep t. SetTimestep early-returns on arrays without a transient
// schedule, so the per-timestep cost is a few pointer loads unless
// time-dependent faults are actually injected.
func (n *Network) stepDeployments(t int) {
	for _, l := range n.Layers {
		if g, ok := l.(GEMMWeighted); ok {
			if d := g.Deployment(); d != nil {
				d.Array.SetTimestep(t)
			}
		}
	}
}

// timeFaulted reports whether any deployed array carries time-dependent
// fault state. Evaluation must not share such an array across
// concurrent replicas: each batch needs its own timestep sequence.
func (n *Network) timeFaulted() bool {
	for _, l := range n.Layers {
		if g, ok := l.(GEMMWeighted); ok {
			if d := g.Deployment(); d != nil && d.Array.TimeFaulted() {
				return true
			}
		}
	}
	return false
}

// SpikingLayers returns the PLIF neuron layers in network order.
func (n *Network) SpikingLayers() []*PLIFNode {
	var out []*PLIFNode
	for _, l := range n.Layers {
		if p, ok := l.(*PLIFNode); ok {
			out = append(out, p)
		}
	}
	return out
}

// GEMMLayers returns the layers whose weights map onto the systolic array
// (convolutions and fully-connected layers), in network order.
func (n *Network) GEMMLayers() []GEMMWeighted {
	var out []GEMMWeighted
	for _, l := range n.Layers {
		if g, ok := l.(GEMMWeighted); ok {
			out = append(out, g)
		}
	}
	return out
}

// SetLearnVth toggles threshold-voltage learning on every spiking layer —
// FalVolt switches this on for retraining; FaPIT leaves it off.
func (n *Network) SetLearnVth(on bool) {
	for _, p := range n.SpikingLayers() {
		p.SetLearnVth(on)
	}
}

// Vths returns the current threshold voltage of each spiking layer.
func (n *Network) Vths() []float64 {
	sp := n.SpikingLayers()
	out := make([]float64, len(sp))
	for i, p := range sp {
		out[i] = p.Vth()
	}
	return out
}

// SetVths sets every spiking layer's threshold voltage to v (the fixed-
// threshold retraining sweeps of the motivational study, Fig. 2).
func (n *Network) SetVths(v float64) {
	for _, p := range n.SpikingLayers() {
		p.SetVth(v)
	}
}

// Deploy routes every GEMM layer's inference through the given systolic
// array. Whether a layer's input is binary spikes is inferred from the
// network structure: a GEMM layer fed (through shape-preserving identity
// layers) by a PLIF node sees exact {0,1} spikes and uses the
// multiplier-less path; anything else (network input, pooled spikes)
// uses the quantized-product path.
func (n *Network) Deploy(arr *systolic.Array) {
	for i, l := range n.Layers {
		g, ok := l.(GEMMWeighted)
		if !ok {
			continue
		}
		g.SetDeployment(&Deployment{Array: arr, Binary: n.inputIsBinary(i)})
	}
}

// Undeploy restores the float reference path on every GEMM layer.
func (n *Network) Undeploy() {
	for _, g := range n.GEMMLayers() {
		g.SetDeployment(nil)
	}
}

// Redeploy requantizes deployed weights (call after retraining updates).
func (n *Network) Redeploy() {
	for _, g := range n.GEMMLayers() {
		if d := g.Deployment(); d != nil {
			g.SetDeployment(d)
		}
	}
}

// inputIsBinary walks backwards from layer index i over layers that
// preserve binariness at inference time: Flatten and Dropout are
// identities, and max pooling of binary spikes is itself binary (average
// pooling is not).
func (n *Network) inputIsBinary(i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch n.Layers[j].(type) {
		case *Flatten, *Dropout, *MaxPool2:
			continue
		case *PLIFNode:
			return true
		default:
			return false
		}
	}
	return false
}
