package snn

import (
	"fmt"
	"math/rand"

	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// Deployment routes a layer's GEMM through a (possibly faulty) systolic
// array instead of the float reference path. Weights are quantized to the
// array's fixed-point format when the deployment is installed.
type Deployment struct {
	Array *systolic.Array
	// Binary marks the layer's input as binary spikes (the multiplier-less
	// accumulate path); false uses the quantized-product path for the
	// analog encoder layer.
	Binary bool

	// MPerm, when non-nil, is a fault-aware permutation of the layer's M
	// output rows: physical slot j of the GEMM stores logical row
	// MPerm[j], steering significant weights away from faulty array
	// columns (ReSpawn-style mapping). Outputs are unpermuted on the way
	// back, so the layer's logical contract is unchanged.
	MPerm []int
	// KPerm permutes the K reduction dimension the same way across array
	// rows: physical slot i streams logical input KPerm[i]. The input
	// vector is permuted to match on every forward call.
	KPerm []int
	// ClampLo/ClampHi, when non-nil, bound each logical output row of the
	// GEMM result (SoftSNN-style range restriction): a fault-free output
	// always lies within the bounds, so clamping only clips corruption.
	ClampLo, ClampHi []float32

	weights *systolic.Matrix
}

// GEMMWeighted is implemented by layers whose weights are lowered onto the
// systolic array as an [M, K] GEMM; the mitigation pipeline uses it to
// derive prune masks and install deployments uniformly.
type GEMMWeighted interface {
	Layer
	// WeightMatrix returns the live [M, K] weight tensor (not a copy).
	WeightMatrix() *tensor.Tensor
	// GEMMShape returns (M, K): output and reduction dimensions.
	GEMMShape() (m, k int)
	// SetDeployment installs (or removes, with nil) a systolic deployment.
	SetDeployment(d *Deployment)
	// Deployment returns the active deployment, if any.
	Deployment() *Deployment
}

// Conv2D is a 2-D convolution lowered to im2col + GEMM. Weights are stored
// directly in GEMM form [OutC, InC*KH*KW], the same layout that is mapped
// onto the systolic array.
type Conv2D struct {
	Shape tensor.ConvShape

	weight *Param
	bias   *Param // nil when the conv is followed by batch norm

	deploy *Deployment
	eng    tensor.Backend // nil = tensor.Default()

	cols  cacheStack // cached im2col patches per timestep
	batch []int      // cached batch size per timestep
}

// NewConv2D constructs a convolution; bias is usually disabled because the
// paper's blocks pair each conv with batch normalization.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, bias bool, rng *rand.Rand) (*Conv2D, error) {
	cs, err := tensor.NewConvShape(inC, inH, inW, outC, k, k, stride, pad)
	if err != nil {
		return nil, err
	}
	c := &Conv2D{Shape: cs}
	w := tensor.New(cs.M, cs.K)
	w.KaimingNormal(rng, cs.K)
	c.weight = NewParam("conv.weight", w)
	if bias {
		c.bias = NewParam("conv.bias", tensor.New(cs.M))
	}
	return c, nil
}

// WeightMatrix implements GEMMWeighted.
func (c *Conv2D) WeightMatrix() *tensor.Tensor { return c.weight.Value }

// GEMMShape implements GEMMWeighted.
func (c *Conv2D) GEMMShape() (int, int) { return c.Shape.M, c.Shape.K }

// SetDeployment implements GEMMWeighted.
func (c *Conv2D) SetDeployment(d *Deployment) {
	c.deploy = d
	if d != nil {
		d.install(c.weight.Value)
	}
}

// Deployment implements GEMMWeighted.
func (c *Conv2D) Deployment() *Deployment { return c.deploy }

// SetEngine overrides the compute backend (nil restores tensor.Default()).
func (c *Conv2D) SetEngine(e tensor.Backend) { c.eng = e }

func (c *Conv2D) engine() tensor.Backend {
	if c.eng != nil {
		return c.eng
	}
	return tensor.Default()
}

// CloneInference implements Layer.
func (c *Conv2D) CloneInference() Layer {
	return &Conv2D{Shape: c.Shape, weight: c.weight, bias: c.bias, deploy: c.deploy, eng: c.eng}
}

// CloneTraining implements Layer: weight/bias values are shared with
// private gradient accumulators. The deployment is dropped — the training
// forward never routes through the systolic array, and sharing it would
// let concurrent replicas race on the array's timestep hook.
func (c *Conv2D) CloneTraining() Layer {
	return &Conv2D{Shape: c.Shape, weight: shadowParam(c.weight), bias: shadowParam(c.bias), eng: c.eng}
}

// Forward implements Layer. Input is [N, InC, InH, InW]; output
// [N, OutC, OutH, OutW].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("snn: Conv2D input must be rank 4, got %v", x.Shape))
	}
	eng := c.engine()
	n := x.Shape[0]
	// At inference the patch matrix dies inside this call, so it lives in
	// recycled scratch; during training it is cached for backward.
	var cols *tensor.Tensor
	if train {
		cols = tensor.Im2ColUsing(eng, x, c.Shape)
	} else {
		cols = tensor.GetScratch(n*c.Shape.PatchesPerItem, c.Shape.K)
		eng.Im2Col(cols, x, c.Shape)
	}
	var y2 *tensor.Tensor // [N*P, M]
	scratchY2 := false
	if c.deploy != nil && !train {
		y2 = c.deploy.forward(cols)
	} else {
		y2 = tensor.GetScratch(n*c.Shape.PatchesPerItem, c.Shape.M)
		scratchY2 = true
		eng.MatMulTransB(y2, cols, c.weight.Value)
	}
	if train {
		c.cols.push(cols)
		c.batch = append(c.batch, n)
	} else {
		tensor.ReleaseScratch(cols)
	}
	out := c.patchesToNCHW(y2, n)
	if scratchY2 {
		tensor.ReleaseScratch(y2)
	}
	return out
}

// patchesToNCHW converts a [N*P, M] GEMM result into [N, M, OH, OW],
// fanning out across batch items (items write disjoint output planes).
func (c *Conv2D) patchesToNCHW(y2 *tensor.Tensor, n int) *tensor.Tensor {
	p := c.Shape.PatchesPerItem
	m := c.Shape.M
	out := tensor.New(n, m, c.Shape.OutH, c.Shape.OutW)
	c.engine().For(n, func(b0, b1 int) {
		for b := b0; b < b1; b++ {
			for pi := 0; pi < p; pi++ {
				src := y2.Data[(b*p+pi)*m : (b*p+pi+1)*m]
				for mi, v := range src {
					out.Data[(b*m+mi)*p+pi] = v
				}
			}
			if c.bias != nil {
				for mi := 0; mi < m; mi++ {
					bv := c.bias.Value.Data[mi]
					row := out.Data[(b*m+mi)*p : (b*m+mi+1)*p]
					for i := range row {
						row[i] += bv
					}
				}
			}
		}
	})
	return out
}

// nchwToPatches converts a gradient [N, M, OH, OW] into [N*P, M].
func (c *Conv2D) nchwToPatches(dst, g *tensor.Tensor, n int) {
	p := c.Shape.PatchesPerItem
	m := c.Shape.M
	c.engine().For(n, func(b0, b1 int) {
		for b := b0; b < b1; b++ {
			for mi := 0; mi < m; mi++ {
				src := g.Data[(b*m+mi)*p : (b*m+mi+1)*p]
				for pi, v := range src {
					dst.Data[(b*p+pi)*m+mi] = v
				}
			}
		}
	})
}

// Backward implements Layer. The staging matrices (transposed gradient,
// weight gradient, patch gradient) all die within this call and come
// from recycled scratch.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	cols := c.cols.pop()
	n := c.batch[len(c.batch)-1]
	c.batch = c.batch[:len(c.batch)-1]
	eng := c.engine()

	g2 := tensor.GetScratch(n*c.Shape.PatchesPerItem, c.Shape.M)
	c.nchwToPatches(g2, grad, n) // [N*P, M]
	gw := tensor.GetScratch(c.Shape.M, c.Shape.K)
	eng.MatMulTransA(gw, g2, cols)
	c.weight.Grad.AddInPlace(gw)
	tensor.ReleaseScratch(gw)
	if c.bias != nil {
		p := c.Shape.PatchesPerItem
		for b := 0; b < n; b++ {
			for mi := 0; mi < c.Shape.M; mi++ {
				row := grad.Data[(b*c.Shape.M+mi)*p : (b*c.Shape.M+mi+1)*p]
				var s float32
				for _, v := range row {
					s += v
				}
				c.bias.Grad.Data[mi] += s
			}
		}
	}
	gcols := tensor.GetScratch(n*c.Shape.PatchesPerItem, c.Shape.K)
	eng.MatMul(gcols, g2, c.weight.Value) // [N*P, K]
	tensor.ReleaseScratch(g2)
	out := tensor.Col2ImUsing(eng, gcols, n, c.Shape)
	tensor.ReleaseScratch(gcols)
	return out
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.bias != nil {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// ResetState implements Layer.
func (c *Conv2D) ResetState() {
	c.cols.reset()
	c.batch = c.batch[:0]
}

// Linear is a fully-connected layer y = x·Wᵀ + b with weights in GEMM form
// [Out, In].
type Linear struct {
	In, Out int

	weight *Param
	bias   *Param

	deploy *Deployment
	eng    tensor.Backend // nil = tensor.Default()

	xs cacheStack
}

// NewLinear constructs a fully-connected layer with Kaiming init.
func NewLinear(in, out int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out}
	w := tensor.New(out, in)
	w.KaimingNormal(rng, in)
	l.weight = NewParam("linear.weight", w)
	if bias {
		l.bias = NewParam("linear.bias", tensor.New(out))
	}
	return l
}

// WeightMatrix implements GEMMWeighted.
func (l *Linear) WeightMatrix() *tensor.Tensor { return l.weight.Value }

// GEMMShape implements GEMMWeighted.
func (l *Linear) GEMMShape() (int, int) { return l.Out, l.In }

// SetDeployment implements GEMMWeighted.
func (l *Linear) SetDeployment(d *Deployment) {
	l.deploy = d
	if d != nil {
		d.install(l.weight.Value)
	}
}

// Deployment implements GEMMWeighted.
func (l *Linear) Deployment() *Deployment { return l.deploy }

// SetEngine overrides the compute backend (nil restores tensor.Default()).
func (l *Linear) SetEngine(e tensor.Backend) { l.eng = e }

func (l *Linear) engine() tensor.Backend {
	if l.eng != nil {
		return l.eng
	}
	return tensor.Default()
}

// CloneInference implements Layer.
func (l *Linear) CloneInference() Layer {
	return &Linear{In: l.In, Out: l.Out, weight: l.weight, bias: l.bias, deploy: l.deploy, eng: l.eng}
}

// CloneTraining implements Layer (see Conv2D.CloneTraining).
func (l *Linear) CloneTraining() Layer {
	return &Linear{In: l.In, Out: l.Out, weight: shadowParam(l.weight), bias: shadowParam(l.bias), eng: l.eng}
}

// Forward implements Layer. Input may be rank 2 [N, In] or rank 4 (it is
// flattened), matching how conv features feed the classifier head.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	flat := x
	if x.Rank() != 2 {
		flat = x.Reshape(n, x.Len()/n)
	}
	if flat.Shape[1] != l.In {
		panic(fmt.Sprintf("snn: Linear input dim %d, want %d", flat.Shape[1], l.In))
	}
	var y *tensor.Tensor
	if l.deploy != nil && !train {
		y = l.deploy.forward(flat)
	} else {
		y = tensor.MatMulTransBUsing(l.engine(), flat, l.weight.Value)
	}
	if l.bias != nil {
		for b := 0; b < n; b++ {
			row := y.Data[b*l.Out : (b+1)*l.Out]
			for i := range row {
				row[i] += l.bias.Value.Data[i]
			}
		}
	}
	if train {
		l.xs.push(flat)
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.xs.pop()
	eng := l.engine()
	gw := tensor.GetScratch(l.Out, l.In)
	eng.MatMulTransA(gw, grad, x)
	l.weight.Grad.AddInPlace(gw)
	tensor.ReleaseScratch(gw)
	if l.bias != nil {
		n := grad.Shape[0]
		for b := 0; b < n; b++ {
			row := grad.Data[b*l.Out : (b+1)*l.Out]
			for i, v := range row {
				l.bias.Grad.Data[i] += v
			}
		}
	}
	return tensor.MatMulUsing(eng, grad, l.weight.Value)
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.bias != nil {
		return []*Param{l.weight, l.bias}
	}
	return []*Param{l.weight}
}

// ResetState implements Layer.
func (l *Linear) ResetState() { l.xs.reset() }
