package snn

import (
	"encoding/gob"
	"fmt"
	"os"

	"falvolt/internal/tensor"
)

// NetworkState is a serializable snapshot of everything a trained network
// needs to be restored: parameter tensors, batch-norm running statistics,
// and neuron threshold/time-constant scalars (captured regardless of
// whether they are currently marked learnable).
type NetworkState struct {
	Entries []LayerState
}

// LayerState is the snapshot of one layer.
type LayerState struct {
	Kind    string
	Tensors [][]float32
	Shapes  [][]int
	Floats  [][]float64
}

func snapTensor(t *tensor.Tensor) ([]float32, []int) {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	s := append([]int(nil), t.Shape...)
	return d, s
}

// State captures a deep snapshot of the network.
func (n *Network) State() *NetworkState {
	st := &NetworkState{}
	for _, l := range n.Layers {
		var e LayerState
		switch v := l.(type) {
		case *Conv2D:
			e.Kind = "conv"
			for _, p := range v.Params() {
				d, s := snapTensor(p.Value)
				e.Tensors = append(e.Tensors, d)
				e.Shapes = append(e.Shapes, s)
			}
		case *Linear:
			e.Kind = "linear"
			for _, p := range v.Params() {
				d, s := snapTensor(p.Value)
				e.Tensors = append(e.Tensors, d)
				e.Shapes = append(e.Shapes, s)
			}
		case *BatchNorm2D:
			e.Kind = "batchnorm"
			for _, p := range []*Param{v.gamma, v.beta} {
				d, s := snapTensor(p.Value)
				e.Tensors = append(e.Tensors, d)
				e.Shapes = append(e.Shapes, s)
			}
			e.Floats = append(e.Floats,
				append([]float64(nil), v.runMean...),
				append([]float64(nil), v.runVar...))
		case *PLIFNode:
			e.Kind = "plif"
			e.Floats = append(e.Floats, []float64{
				float64(v.vth.Value.Data[0]),
				float64(v.tauW.Value.Data[0]),
			})
		default:
			e.Kind = "stateless"
		}
		st.Entries = append(st.Entries, e)
	}
	return st
}

// LoadState restores a snapshot taken from a structurally identical
// network.
func (n *Network) LoadState(st *NetworkState) error {
	if len(st.Entries) != len(n.Layers) {
		return fmt.Errorf("snn: state has %d layers, network has %d", len(st.Entries), len(n.Layers))
	}
	restore := func(e LayerState, params []*Param, kind string) error {
		if len(e.Tensors) != len(params) {
			return fmt.Errorf("snn: %s state has %d tensors, layer has %d params", kind, len(e.Tensors), len(params))
		}
		for i, p := range params {
			if len(e.Tensors[i]) != p.Value.Len() {
				return fmt.Errorf("snn: %s param %d size %d vs %d", kind, i, len(e.Tensors[i]), p.Value.Len())
			}
			copy(p.Value.Data, e.Tensors[i])
		}
		return nil
	}
	for i, l := range n.Layers {
		e := st.Entries[i]
		switch v := l.(type) {
		case *Conv2D:
			if e.Kind != "conv" {
				return fmt.Errorf("snn: layer %d kind %q, want conv", i, e.Kind)
			}
			if err := restore(e, v.Params(), "conv"); err != nil {
				return err
			}
		case *Linear:
			if e.Kind != "linear" {
				return fmt.Errorf("snn: layer %d kind %q, want linear", i, e.Kind)
			}
			if err := restore(e, v.Params(), "linear"); err != nil {
				return err
			}
		case *BatchNorm2D:
			if e.Kind != "batchnorm" {
				return fmt.Errorf("snn: layer %d kind %q, want batchnorm", i, e.Kind)
			}
			if err := restore(e, []*Param{v.gamma, v.beta}, "batchnorm"); err != nil {
				return err
			}
			if len(e.Floats) != 2 || len(e.Floats[0]) != len(v.runMean) {
				return fmt.Errorf("snn: batchnorm running stats mismatch at layer %d", i)
			}
			copy(v.runMean, e.Floats[0])
			copy(v.runVar, e.Floats[1])
		case *PLIFNode:
			if e.Kind != "plif" {
				return fmt.Errorf("snn: layer %d kind %q, want plif", i, e.Kind)
			}
			if len(e.Floats) != 1 || len(e.Floats[0]) != 2 {
				return fmt.Errorf("snn: plif state malformed at layer %d", i)
			}
			v.vth.Value.Data[0] = float32(e.Floats[0][0])
			v.tauW.Value.Data[0] = float32(e.Floats[0][1])
		}
	}
	return nil
}

// SaveStateFile writes a snapshot to path with encoding/gob.
func SaveStateFile(st *NetworkState, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snn: save state: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(st); err != nil {
		return fmt.Errorf("snn: encode state: %w", err)
	}
	return nil
}

// LoadStateFile reads a snapshot written by SaveStateFile.
func LoadStateFile(path string) (*NetworkState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snn: load state: %w", err)
	}
	defer f.Close()
	var st NetworkState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("snn: decode state: %w", err)
	}
	return &st, nil
}
