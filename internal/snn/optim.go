package snn

import (
	"fmt"
	"math"

	"falvolt/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; call ZeroGrad after.
	Step()
	// ZeroGrad clears all parameter gradients.
	ZeroGrad()
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	params   []*Param
	lr       float64
	momentum float64
	velocity []*tensor.Tensor
}

// NewSGD constructs the optimizer over params.
func NewSGD(params []*Param, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Value.Shape...)
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		if s.momentum != 0 {
			v := s.velocity[i]
			for j := range v.Data {
				v.Data[j] = float32(s.momentum)*v.Data[j] + p.Grad.Data[j]
				p.Value.Data[j] -= float32(s.lr) * v.Data[j]
			}
		} else {
			for j := range p.Value.Data {
				p.Value.Data[j] -= float32(s.lr) * p.Grad.Data[j]
			}
		}
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Adam is the Adam optimizer (Kingma & Ba), the default for SNN training.
type Adam struct {
	params       []*Param
	lr           float64
	beta1, beta2 float64
	eps          float64
	m, v         []*tensor.Tensor
	t            int
}

// NewAdam constructs Adam with standard hyperparameters (β1=0.9, β2=0.999).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Shape...)
		a.v[i] = tensor.New(p.Value.Shape...)
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			gf := float64(g)
			mj := a.beta1*float64(m.Data[j]) + (1-a.beta1)*gf
			vj := a.beta2*float64(v.Data[j]) + (1-a.beta2)*gf*gf
			m.Data[j] = float32(mj)
			v.Data[j] = float32(vj)
			update := a.lr * (mj / bc1) / (math.Sqrt(vj/bc2) + a.eps)
			p.Value.Data[j] -= float32(update)
		}
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// ClipGradNorm scales all gradients so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm. Guards BPTT against the
// occasional exploding surrogate gradient.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// ensure interfaces are satisfied.
var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)

// String implements fmt.Stringer for diagnostics.
func (a *Adam) String() string { return fmt.Sprintf("Adam(lr=%g, t=%d)", a.lr, a.t) }
