package snn

import (
	"fmt"
	"math"
	"math/rand"

	"falvolt/internal/tensor"
)

// BatchNorm2D normalizes each channel of a [N, C, H, W] tensor over the
// batch and spatial dimensions, with learnable scale γ and shift β, and
// running statistics for inference. In SNN training the statistics are
// computed per timestep (each Forward call is one timestep's batch).
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64

	gamma, beta *Param

	runMean, runVar []float64

	// logStats switches a training replica into stat-log mode: training
	// forward records each timestep's batch (mean, variance) per channel
	// into meanLog/varLog instead of EMA-updating the shared
	// runMean/runVar in place. The trainer drains the log per micro-batch
	// and the primary replays it in micro-batch index order (see
	// ReplayStats), reproducing the order-dependent EMA bit-exactly
	// regardless of how many replicas ran concurrently.
	logStats        bool
	meanLog, varLog [][]float64

	// Per-timestep caches.
	xhat  cacheStack
	stds  [][]float64
	means [][]float64
}

// NewBatchNorm2D constructs batch normalization over c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	g := tensor.New(c)
	g.Fill(1)
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		gamma:   NewParam("bn.gamma", g),
		beta:    NewParam("bn.beta", tensor.New(c)),
		runMean: make([]float64, c),
		runVar:  make([]float64, c),
	}
	for i := range bn.runVar {
		bn.runVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("snn: BatchNorm2D input %v, want [N %d H W]", x.Shape, bn.C))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	plane := h * w
	count := n * plane
	out := tensor.New(x.Shape...)

	if !train {
		for ch := 0; ch < c; ch++ {
			inv := 1 / math.Sqrt(bn.runVar[ch]+bn.Eps)
			g := float64(bn.gamma.Value.Data[ch])
			b := float64(bn.beta.Value.Data[ch])
			mean := bn.runMean[ch]
			for bi := 0; bi < n; bi++ {
				base := (bi*c + ch) * plane
				for i := 0; i < plane; i++ {
					out.Data[base+i] = float32((float64(x.Data[base+i])-mean)*inv*g + b)
				}
			}
		}
		return out
	}

	xhat := tensor.New(x.Shape...)
	means := make([]float64, c)
	stds := make([]float64, c)
	var logVars []float64
	if bn.logStats {
		logVars = make([]float64, c)
	}
	for ch := 0; ch < c; ch++ {
		var sum float64
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ch) * plane
			for i := 0; i < plane; i++ {
				sum += float64(x.Data[base+i])
			}
		}
		mean := sum / float64(count)
		var sq float64
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ch) * plane
			for i := 0; i < plane; i++ {
				d := float64(x.Data[base+i]) - mean
				sq += d * d
			}
		}
		variance := sq / float64(count)
		std := math.Sqrt(variance + bn.Eps)
		means[ch], stds[ch] = mean, std

		if bn.logStats {
			logVars[ch] = variance
		} else {
			bn.runMean[ch] = (1-bn.Momentum)*bn.runMean[ch] + bn.Momentum*mean
			bn.runVar[ch] = (1-bn.Momentum)*bn.runVar[ch] + bn.Momentum*variance
		}

		g := float64(bn.gamma.Value.Data[ch])
		b := float64(bn.beta.Value.Data[ch])
		inv := 1 / std
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ch) * plane
			for i := 0; i < plane; i++ {
				xh := (float64(x.Data[base+i]) - mean) * inv
				xhat.Data[base+i] = float32(xh)
				out.Data[base+i] = float32(xh*g + b)
			}
		}
	}
	bn.xhat.push(xhat)
	bn.means = append(bn.means, means)
	bn.stds = append(bn.stds, stds)
	if bn.logStats {
		// Backward only truncates bn.means, so the log can share the
		// per-timestep slice.
		bn.meanLog = append(bn.meanLog, means)
		bn.varLog = append(bn.varLog, logVars)
	}
	return out
}

// DrainStats returns and clears the (mean, variance) pairs logged by a
// training replica in stat-log mode, one entry per training timestep in
// forward order. The trainer hands them to the primary's ReplayStats.
func (bn *BatchNorm2D) DrainStats() (means, vars [][]float64) {
	means, vars = bn.meanLog, bn.varLog
	bn.meanLog, bn.varLog = nil, nil
	return means, vars
}

// ReplayStats applies logged batch statistics to the running mean and
// variance with the same EMA update the in-place training path uses. The
// logged statistics do not depend on the running values, so replaying
// micro-batch logs in index order reproduces the serial update sequence
// bit-exactly no matter which replica computed each log.
func (bn *BatchNorm2D) ReplayStats(means, vars [][]float64) {
	for t := range means {
		for ch := 0; ch < bn.C; ch++ {
			bn.runMean[ch] = (1-bn.Momentum)*bn.runMean[ch] + bn.Momentum*means[t][ch]
			bn.runVar[ch] = (1-bn.Momentum)*bn.runVar[ch] + bn.Momentum*vars[t][ch]
		}
	}
}

// Backward implements Layer (standard batch-norm gradient).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	xhat := bn.xhat.pop()
	stds := bn.stds[len(bn.stds)-1]
	bn.stds = bn.stds[:len(bn.stds)-1]
	bn.means = bn.means[:len(bn.means)-1]

	n, c := grad.Shape[0], grad.Shape[1]
	plane := grad.Shape[2] * grad.Shape[3]
	count := float64(n * plane)
	out := tensor.New(grad.Shape...)
	for ch := 0; ch < c; ch++ {
		var sumG, sumGX float64
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ch) * plane
			for i := 0; i < plane; i++ {
				g := float64(grad.Data[base+i])
				sumG += g
				sumGX += g * float64(xhat.Data[base+i])
			}
		}
		bn.beta.Grad.Data[ch] += float32(sumG)
		bn.gamma.Grad.Data[ch] += float32(sumGX)

		gamma := float64(bn.gamma.Value.Data[ch])
		inv := gamma / stds[ch]
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ch) * plane
			for i := 0; i < plane; i++ {
				g := float64(grad.Data[base+i])
				xh := float64(xhat.Data[base+i])
				out.Data[base+i] = float32(inv * (g - sumG/count - xh*sumGX/count))
			}
		}
	}
	return out
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.gamma, bn.beta} }

// CloneInference implements Layer: γ/β and the running statistics are
// shared (read-only at inference); caches are private.
func (bn *BatchNorm2D) CloneInference() Layer {
	return &BatchNorm2D{
		C: bn.C, Eps: bn.Eps, Momentum: bn.Momentum,
		gamma: bn.gamma, beta: bn.beta,
		runMean: bn.runMean, runVar: bn.runVar,
	}
}

// CloneTraining implements Layer: γ/β values are shared with private
// gradients; the clone runs in stat-log mode so the shared running
// statistics are never written concurrently (see DrainStats/ReplayStats).
func (bn *BatchNorm2D) CloneTraining() Layer {
	return &BatchNorm2D{
		C: bn.C, Eps: bn.Eps, Momentum: bn.Momentum,
		gamma: shadowParam(bn.gamma), beta: shadowParam(bn.beta),
		runMean: bn.runMean, runVar: bn.runVar,
		logStats: true,
	}
}

// ResetState implements Layer.
func (bn *BatchNorm2D) ResetState() {
	bn.xhat.reset()
	bn.means = bn.means[:0]
	bn.stds = bn.stds[:0]
	bn.meanLog = nil
	bn.varLog = nil
}

// AvgPool2 is non-overlapping 2x2 average pooling.
type AvgPool2 struct {
	hw [][2]int // cached input spatial dims per timestep
}

// NewAvgPool2 constructs the pooling layer.
func NewAvgPool2() *AvgPool2 { return &AvgPool2{} }

// Forward implements Layer.
func (p *AvgPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		p.hw = append(p.hw, [2]int{x.Shape[2], x.Shape[3]})
	}
	return tensor.AvgPool2(x)
}

// Backward implements Layer.
func (p *AvgPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	hw := p.hw[len(p.hw)-1]
	p.hw = p.hw[:len(p.hw)-1]
	return tensor.AvgPool2Backward(grad, hw[0], hw[1])
}

// Params implements Layer.
func (p *AvgPool2) Params() []*Param { return nil }

// CloneInference implements Layer.
func (p *AvgPool2) CloneInference() Layer { return NewAvgPool2() }

// CloneTraining implements Layer.
func (p *AvgPool2) CloneTraining() Layer { return NewAvgPool2() }

// ResetState implements Layer.
func (p *AvgPool2) ResetState() { p.hw = p.hw[:0] }

// Flatten reshapes [N, C, H, W] features to [N, C*H*W] for the classifier
// head, restoring the shape on the way back.
type Flatten struct {
	shapes [][]int
}

// NewFlatten constructs the layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.shapes = append(f.shapes, append([]int(nil), x.Shape...))
	}
	n := x.Shape[0]
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	shape := f.shapes[len(f.shapes)-1]
	f.shapes = f.shapes[:len(f.shapes)-1]
	return grad.Reshape(shape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// CloneInference implements Layer.
func (f *Flatten) CloneInference() Layer { return NewFlatten() }

// CloneTraining implements Layer.
func (f *Flatten) CloneTraining() Layer { return NewFlatten() }

// ResetState implements Layer.
func (f *Flatten) ResetState() { f.shapes = f.shapes[:0] }

// Dropout zeroes a random subset of activations during training. Following
// SNN practice, one mask is drawn per sequence (at the first timestep after
// a reset) and reused for all T timesteps, so the dropped subnetwork is
// consistent through time.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask  []float32
	depth int
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("snn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x
	}
	if d.mask == nil || len(d.mask) != x.Len() {
		d.mask = make([]float32, x.Len())
		scale := float32(1 / (1 - d.P))
		for i := range d.mask {
			if d.rng.Float64() >= d.P {
				d.mask[i] = scale
			}
		}
	}
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = v * d.mask[i]
	}
	d.depth++
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := tensor.New(grad.Shape...)
	for i, v := range grad.Data {
		out.Data[i] = v * d.mask[i]
	}
	d.depth--
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// CloneInference implements Layer: dropout is an identity at inference,
// so the clone only carries the configuration (the rng is shared but
// untouched by inference-mode Forward).
func (d *Dropout) CloneInference() Layer { return &Dropout{P: d.P, rng: d.rng} }

// CloneTraining implements Layer: the clone starts with no rng — the
// trainer must install a deterministically derived one via SetRng before
// each micro-batch, so the mask depends only on the micro-batch identity
// (never on which replica lane ran it, which would break replica-count
// bit-identity; sharing the primary's rng across concurrent replicas
// would be both racy and order-dependent).
func (d *Dropout) CloneTraining() Layer { return &Dropout{P: d.P} }

// SetRng replaces the mask source. The training engine derives one rng
// per (step, micro-batch, dropout-layer ordinal) so masks are a pure
// function of the micro-batch, independent of replica count.
func (d *Dropout) SetRng(rng *rand.Rand) { d.rng = rng }

// ResetState implements Layer: a fresh mask is drawn next sequence.
func (d *Dropout) ResetState() {
	d.mask = nil
	d.depth = 0
}
