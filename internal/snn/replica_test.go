package snn

import (
	"math/rand"
	"testing"

	"falvolt/internal/tensor"
)

// replicaNet builds a small network exercising every layer type the
// training-clone seam must handle: conv, batch norm, PLIF, max pool,
// average pool, dropout, flatten and linear.
func replicaNet(t *testing.T, rng *rand.Rand, dropP float64) *Network {
	t.Helper()
	conv, err := NewConv2D(1, 8, 8, 4, 3, 1, 1, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	return NewNetwork(2,
		conv,
		NewBatchNorm2D(4),
		NewPLIFNode(DefaultNeuronConfig()),
		NewMaxPool2(),
		NewAvgPool2(),
		NewDropout(dropP, rand.New(rand.NewSource(11))),
		NewFlatten(),
		NewLinear(4*2*2, 2, true, rng),
		NewPLIFNode(DefaultNeuronConfig()),
	)
}

func replicaSamples(n int, rng *rand.Rand) []Sample {
	out := make([]Sample, n)
	for i := range out {
		x := tensor.New(1, 1, 8, 8)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64())
			if i%2 == 1 {
				x.Data[j] += 0.5
			}
		}
		out[i] = Sample{Seq: StaticSequence{X: x, T: 2}, Label: i % 2}
	}
	return out
}

type trainRun struct {
	losses  []float64
	final   float64
	params  []*tensor.Tensor
	runMean [][]float64
	runVar  [][]float64
}

func runReplicaTraining(t *testing.T, eng tensor.Backend, replicas, microBatch int) trainRun {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	net := replicaNet(t, rng, 0.25)
	samples := replicaSamples(24, rand.New(rand.NewSource(5)))
	var run trainRun
	final, err := Train(net, samples, TrainConfig{
		Epochs: 2, BatchSize: 8, LR: 0.02, Classes: 2, ClipNorm: 5,
		Rng:    rand.New(rand.NewSource(7)),
		Engine: eng, Replicas: replicas, MicroBatch: microBatch,
		Hooks: TrainHooks{AfterEpoch: func(_ int, loss float64) {
			run.losses = append(run.losses, loss)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	run.final = final
	for _, p := range net.Params() {
		run.params = append(run.params, p.Value.Clone())
	}
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm2D); ok {
			run.runMean = append(run.runMean, append([]float64(nil), bn.runMean...))
			run.runVar = append(run.runVar, append([]float64(nil), bn.runVar...))
		}
	}
	return run
}

func assertRunsIdentical(t *testing.T, name string, want, got trainRun) {
	t.Helper()
	if want.final != got.final {
		t.Errorf("%s: final loss %v, want %v (bit-identical)", name, got.final, want.final)
	}
	for i := range want.losses {
		if want.losses[i] != got.losses[i] {
			t.Errorf("%s: epoch %d loss %v, want %v", name, i, got.losses[i], want.losses[i])
		}
	}
	for pi := range want.params {
		w, g := want.params[pi], got.params[pi]
		for i := range w.Data {
			if w.Data[i] != g.Data[i] {
				t.Errorf("%s: param %d differs at %d: %v vs %v", name, pi, i, g.Data[i], w.Data[i])
				break
			}
		}
	}
	for bi := range want.runMean {
		for i := range want.runMean[bi] {
			if want.runMean[bi][i] != got.runMean[bi][i] || want.runVar[bi][i] != got.runVar[bi][i] {
				t.Errorf("%s: BN %d running stats differ at channel %d", name, bi, i)
				break
			}
		}
	}
}

// TestTrainReplicasEngineBitIdentical is the deterministic-reduction
// property test: the replica engine must produce bit-identical loss
// curves, final parameters and batch-norm running statistics across 1, 2
// and 8 replicas, on both the serial and the parallel backend. The
// micro-batch partition is fixed, so only lane scheduling varies — and
// the fixed-order reduction makes that invisible.
func TestTrainReplicasEngineBitIdentical(t *testing.T) {
	ref := runReplicaTraining(t, tensor.Serial(), 1, 2)
	if len(ref.params) == 0 || len(ref.losses) != 2 {
		t.Fatalf("reference run incomplete: %d params, %d losses", len(ref.params), len(ref.losses))
	}
	engines := map[string]func() tensor.Backend{
		"serial":   tensor.Serial,
		"parallel": func() tensor.Backend { return tensor.NewParallel(4) },
	}
	for engName, mk := range engines {
		for _, replicas := range []int{0, 1, 2, 8} {
			name := engName + "/replicas=" + string(rune('0'+replicas))
			got := runReplicaTraining(t, mk(), replicas, 2)
			assertRunsIdentical(t, name, ref, got)
		}
	}
}

// TestTrainDefaultConfigIsReplicaEngine pins the replicas==0 ↔
// replicas>=1 boundary WITH dropout active: the zero TrainConfig
// (Replicas 0, MicroBatch 0) is the same replica engine with one lane
// and one micro-batch per step, not a separate serial code path, so its
// final weights and loss must be bit-identical to any explicit replica
// count sharing the same partition. This is the property that lets the
// spec layer clear Replicas from canonical fingerprints and the suite
// cache key unconditionally — dropout models included.
func TestTrainDefaultConfigIsReplicaEngine(t *testing.T) {
	train := func(replicas, microBatch int, eng tensor.Backend) trainRun {
		rng := rand.New(rand.NewSource(42))
		net := replicaNet(t, rng, 0.25)
		samples := replicaSamples(24, rand.New(rand.NewSource(5)))
		var run trainRun
		final, err := Train(net, samples, TrainConfig{
			Epochs: 2, BatchSize: 8, LR: 0.02, Classes: 2, ClipNorm: 5,
			Rng:    rand.New(rand.NewSource(7)),
			Engine: eng, Replicas: replicas, MicroBatch: microBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		run.final = final
		for _, p := range net.Params() {
			run.params = append(run.params, p.Value.Clone())
		}
		return run
	}
	def := train(0, 0, nil)
	for _, tc := range []struct {
		name                 string
		replicas, microBatch int
		eng                  tensor.Backend
	}{
		// MicroBatch == BatchSize is the same one-micro-batch partition
		// as MicroBatch == 0.
		{"one-lane", 1, 8, nil},
		{"eight-lane-parallel", 8, 8, tensor.NewParallel(4)},
	} {
		got := train(tc.replicas, tc.microBatch, tc.eng)
		if def.final != got.final {
			t.Errorf("%s: final loss %v, default-config %v (want bit-identical)", tc.name, got.final, def.final)
		}
		for pi := range def.params {
			w, g := def.params[pi], got.params[pi]
			for i := range w.Data {
				if w.Data[i] != g.Data[i] {
					t.Errorf("%s: param %d differs at %d: %v vs %v", tc.name, pi, i, g.Data[i], w.Data[i])
					break
				}
			}
		}
	}
}

// TestTrainEngineReplicaRace stress-drives concurrent training replicas
// for the CI race job: many tiny micro-batches over 8 lanes on the
// parallel backend, with dropout, batch-norm stat logging and gradient
// harvesting all active.
func TestTrainEngineReplicaRace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := replicaNet(t, rng, 0.25)
	samples := replicaSamples(32, rand.New(rand.NewSource(2)))
	if _, err := Train(net, samples, TrainConfig{
		Epochs: 2, BatchSize: 16, LR: 0.02, Classes: 2, ClipNorm: 5,
		Rng:    rand.New(rand.NewSource(3)),
		Engine: tensor.NewParallel(8), Replicas: 8, MicroBatch: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainBatchPoolSteadyStateAllocs asserts the per-step batching path
// — the gathered batch slices and the per-timestep concat tensors — is
// allocation-free once the pool is warm.
func TestTrainBatchPoolSteadyStateAllocs(t *testing.T) {
	samples := replicaSamples(16, rand.New(rand.NewSource(4)))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	pool := &batchPool{}
	warm := func() {
		seq, labels := pool.gather(samples, idx[:8])
		if len(labels) != 8 {
			t.Fatalf("gathered %d labels, want 8", len(labels))
		}
		for ts := 0; ts < 2; ts++ {
			if x := seq.At(ts); x.Shape[0] != 8 {
				t.Fatalf("batch rows %d, want 8", x.Shape[0])
			}
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(50, warm); allocs > 0 {
		t.Errorf("steady-state batching allocates %v objects per step, want 0", allocs)
	}
}
