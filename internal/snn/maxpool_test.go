package snn

import (
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/tensor"
)

func TestMaxPool2KnownValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := NewMaxPool2()
	out := p.Forward(x, false)
	want := []float32{6, 8, 14, 16}
	for i, wv := range want {
		if out.Data[i] != wv {
			t.Errorf("maxpool[%d] = %v, want %v", i, out.Data[i], wv)
		}
	}
}

func TestMaxPool2PreservesBinarySpikes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 3, 4, 4)
	for i := range x.Data {
		if rng.Float64() < 0.4 {
			x.Data[i] = 1
		}
	}
	out := NewMaxPool2().Forward(x, false)
	for _, v := range out.Data {
		if v != 0 && v != 1 {
			t.Fatalf("max pooling of spikes must stay binary, got %v", v)
		}
	}
}

func TestMaxPool2BackwardRoutesToArgmax(t *testing.T) {
	x := tensor.FromSlice([]float32{
		0, 9,
		1, 2,
	}, 1, 1, 2, 2)
	p := NewMaxPool2()
	p.Forward(x, true)
	g := tensor.FromSlice([]float32{5}, 1, 1, 1, 1)
	gx := p.Backward(g)
	want := []float32{0, 5, 0, 0}
	for i, wv := range want {
		if gx.Data[i] != wv {
			t.Errorf("grad[%d] = %v, want %v", i, gx.Data[i], wv)
		}
	}
}

func TestMaxPool2GradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(2, 2, 4, 4)
	x.RandNormal(rng, 1)
	checkLayerGrads(t, NewMaxPool2(), x, 0.02)
}

func TestMaxPool2PanicsOnOddDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd dims should panic")
		}
	}()
	NewMaxPool2().Forward(tensor.New(1, 1, 3, 3), false)
}

func TestPoolMaxModelKeepsBinaryPath(t *testing.T) {
	spec := MNISTSpec()
	spec.T = 2
	spec.EncoderC, spec.BlockC, spec.FCHidden = 2, []int{4, 4}, 16
	spec.PoolMax = true
	m, err := Build(spec, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// With max pooling, every GEMM layer after the encoder PLIF sees
	// binary spikes.
	idx := 0
	for i, l := range m.Net.Layers {
		if _, ok := l.(GEMMWeighted); !ok {
			continue
		}
		binary := m.Net.inputIsBinary(i)
		if idx == 0 && binary {
			t.Error("encoder conv sees the raw image, not spikes")
		}
		if idx > 0 && !binary {
			t.Errorf("GEMM layer %d should see binary spikes under max pooling", idx)
		}
		idx++
	}
	if idx != 5 {
		t.Fatalf("expected 5 GEMM layers, got %d", idx)
	}
}

func TestLayerShapesMatchModel(t *testing.T) {
	spec := MNISTSpec()
	spec.T = 4
	spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8}, 32
	m, err := Build(spec, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	shapes := m.LayerShapes(16)
	if len(shapes) != 5 {
		t.Fatalf("shapes = %d, want 5", len(shapes))
	}
	// Encoder: 16x16 output patches, K = 1*3*3, M = 4.
	if shapes[0].Name != "Enc" || shapes[0].B != 16*256 || shapes[0].K != 9 || shapes[0].M != 4 {
		t.Errorf("encoder shape wrong: %+v", shapes[0])
	}
	// FC2: batch vectors, K = 32 hidden, M = 10 classes.
	last := shapes[len(shapes)-1]
	if last.Name != "FC2" || last.B != 16 || last.K != 32 || last.M != 10 {
		t.Errorf("FC2 shape wrong: %+v", last)
	}
	for _, s := range shapes {
		if s.Timesteps != 4 {
			t.Errorf("layer %s timesteps %d, want 4", s.Name, s.Timesteps)
		}
	}
}

func TestPoolMaxModelTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := MNISTSpec()
	spec.T = 2
	spec.EncoderC, spec.BlockC, spec.FCHidden = 2, []int{4, 4}, 16
	spec.PoolMax = true
	m, err := Build(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 1, 16, 16)
	x.RandUniform(rng, 0, 1)
	seq := StaticSequence{X: x, T: 2}
	target := OneHot([]int{0, 1, 2, 3}, 10)
	m.Net.ResetState()
	rate := m.Net.Forward(seq, true)
	loss, grad := MSERate{}.Loss(rate, target)
	if math.IsNaN(loss) {
		t.Fatal("NaN loss")
	}
	m.Net.Backward(grad) // must not panic through the max-pool path
}
