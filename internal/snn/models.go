package snn

import (
	"fmt"
	"math/rand"

	"falvolt/internal/systolic"
)

// ModelSpec describes the paper's PLIF-SNN classifier family: a spike-
// encoding convolution + PLIF pair, a stack of {Conv, BatchNorm, PLIF,
// AvgPool} blocks (2 for MNIST/N-MNIST, 5 for DVS Gesture), and two
// {Dropout, FC, PLIF} head stages.
type ModelSpec struct {
	Name          string
	InC, InH, InW int
	Classes       int
	T             int
	EncoderC      int   // channels of the spike-encoder conv
	BlockC        []int // output channels of each conv block (each halves H,W)
	FCHidden      int
	DropoutP      float64
	Neuron        NeuronConfig
	// PoolMax selects 2x2 max pooling for the conv blocks instead of the
	// default average pooling. Max pooling preserves spike binariness, so
	// downstream layers keep the multiplier-less systolic path.
	PoolMax bool
}

// MNISTSpec is the scaled-down static-MNIST classifier (2 conv blocks).
func MNISTSpec() ModelSpec {
	return ModelSpec{
		Name: "mnist", InC: 1, InH: 16, InW: 16, Classes: 10, T: 4,
		EncoderC: 8, BlockC: []int{16, 16}, FCHidden: 64, DropoutP: 0.25,
		Neuron: DefaultNeuronConfig(),
	}
}

// NMNISTSpec is the neuromorphic N-MNIST classifier: same topology as
// MNIST but 2-polarity event input and a longer horizon.
func NMNISTSpec() ModelSpec {
	s := MNISTSpec()
	s.Name = "nmnist"
	s.InC = 2
	s.T = 8
	return s
}

// DVSGestureSpec is the DVS-Gesture classifier (5 conv blocks, 11 classes).
func DVSGestureSpec() ModelSpec {
	return ModelSpec{
		Name: "dvsgesture", InC: 2, InH: 32, InW: 32, Classes: 11, T: 8,
		EncoderC: 4, BlockC: []int{8, 8, 16, 16, 16}, FCHidden: 64, DropoutP: 0.25,
		Neuron: DefaultNeuronConfig(),
	}
}

// Model couples a built network with its spec and the names of its spiking
// layers (for per-layer threshold-voltage reporting, Fig. 6).
type Model struct {
	Net          *Network
	Spec         ModelSpec
	SpikingNames []string
}

// Build constructs the network for a spec using rng for weight init.
func Build(spec ModelSpec, rng *rand.Rand) (*Model, error) {
	if len(spec.BlockC) == 0 {
		return nil, fmt.Errorf("snn: spec %q needs at least one conv block", spec.Name)
	}
	var layers []Layer
	var names []string

	// Spike encoder: conv + BN + PLIF on the raw input. Batch norm keeps
	// the encoder's pre-activations near the threshold so spikes (and
	// surrogate gradients) flow from the first epoch, as in the reference
	// PLIF architecture of Fang et al. (ICCV'21).
	enc, err := NewConv2D(spec.InC, spec.InH, spec.InW, spec.EncoderC, 3, 1, 1, false, rng)
	if err != nil {
		return nil, fmt.Errorf("snn: encoder conv: %w", err)
	}
	layers = append(layers, enc, NewBatchNorm2D(spec.EncoderC), NewPLIFNode(spec.Neuron))
	names = append(names, "Enc")

	h, w, c := spec.InH, spec.InW, spec.EncoderC
	for i, outC := range spec.BlockC {
		conv, err := NewConv2D(c, h, w, outC, 3, 1, 1, false, rng)
		if err != nil {
			return nil, fmt.Errorf("snn: conv block %d: %w", i+1, err)
		}
		if h%2 != 0 || w%2 != 0 {
			return nil, fmt.Errorf("snn: block %d input %dx%d not poolable", i+1, h, w)
		}
		var pool Layer = NewAvgPool2()
		if spec.PoolMax {
			pool = NewMaxPool2()
		}
		layers = append(layers, conv, NewBatchNorm2D(outC), NewPLIFNode(spec.Neuron), pool)
		names = append(names, fmt.Sprintf("Conv%d", i+1))
		h, w, c = h/2, w/2, outC
	}

	layers = append(layers, NewFlatten())
	flat := c * h * w
	layers = append(layers,
		NewDropout(spec.DropoutP, rng),
		NewLinear(flat, spec.FCHidden, true, rng),
		NewPLIFNode(spec.Neuron),
	)
	names = append(names, "FC1")
	layers = append(layers,
		NewDropout(spec.DropoutP, rng),
		NewLinear(spec.FCHidden, spec.Classes, true, rng),
		NewPLIFNode(spec.Neuron),
	)
	names = append(names, "FC2")

	return &Model{
		Net:          NewNetwork(spec.T, layers...),
		Spec:         spec,
		SpikingNames: names,
	}, nil
}

// HiddenLayerNames returns the names of the non-encoder spiking layers,
// the set whose optimized thresholds the paper reports in Fig. 6.
func (m *Model) HiddenLayerNames() []string { return m.SpikingNames[1:] }

// LayerShapes lowers the model's GEMM layers to systolic workload shapes
// for the dataflow timing/energy model: per conv, one streamed vector per
// output patch per batch item; per FC, one vector per batch item. Each
// layer executes once per timestep of the horizon.
func (m *Model) LayerShapes(batch int) []systolic.LayerShape {
	var out []systolic.LayerShape
	convIdx, fcIdx := 0, 0
	for _, g := range m.Net.GEMMLayers() {
		mm, k := g.GEMMShape()
		var shape systolic.LayerShape
		switch l := g.(type) {
		case *Conv2D:
			name := "Enc"
			if convIdx > 0 {
				name = fmt.Sprintf("Conv%d", convIdx)
			}
			convIdx++
			shape = systolic.LayerShape{
				Name: name, B: batch * l.Shape.PatchesPerItem, K: k, M: mm,
				Timesteps: m.Spec.T,
			}
		default:
			fcIdx++
			shape = systolic.LayerShape{
				Name: fmt.Sprintf("FC%d", fcIdx), B: batch, K: k, M: mm,
				Timesteps: m.Spec.T,
			}
		}
		out = append(out, shape)
	}
	return out
}
