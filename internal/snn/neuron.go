package snn

import (
	"fmt"
	"math"

	"falvolt/internal/tensor"
)

// SurrogateGamma is the default peak γ of the triangular surrogate gradient
// ∂o/∂z = γ·max(0, 1−|z|) used in place of the discontinuous Heaviside
// derivative (paper eq. 2).
const SurrogateGamma = 1.0

// NeuronConfig configures a (P)LIF spiking neuron layer.
type NeuronConfig struct {
	// VThreshold is the initial threshold voltage V. A neuron fires when
	// its membrane potential reaches V (z = v/V − 1 > 0, paper eq. 1).
	VThreshold float64
	// LearnVth makes V a trainable per-layer scalar updated by
	// backpropagation (paper eq. 3–4) — the FalVolt mechanism.
	LearnVth bool
	// InitTau is the initial membrane time constant τ. The effective
	// leak is 1/τ = sigmoid(w); PLIF trains w, plain LIF freezes it.
	InitTau float64
	// LearnTau enables the PLIF learnable time constant (Fang et al.).
	LearnTau bool
	// Gamma is the surrogate peak; zero selects SurrogateGamma.
	Gamma float64
	// Width is the half-support of the triangular surrogate in z units:
	// ∂o/∂z = γ·max(0, 1−|z|/Width). The paper's eq. (2) is Width = 1,
	// but the resting state sits exactly at z = −1 where a width-1
	// triangle gives zero gradient, so deep stacks cannot begin learning;
	// the default Width = 2 keeps the resting state inside the support.
	// Set Width = 1 explicitly to ablate with the paper's exact form.
	Width float64
	// PaperVthGrad uses the paper's closed-form eq. (4) threshold-voltage
	// gradient ∆V = Σ_t ∂L/∂o·∂o/∂z·(−V·o_{t−1}−v_t)/V² instead of the
	// exact autodiff gradient. Kept as an ablation knob; both recover
	// accuracy, the exact gradient is the default.
	PaperVthGrad bool
}

// DefaultNeuronConfig mirrors the paper's initial training setup: V = 1.0,
// τ = 2.0 with PLIF learnable time constants, fixed threshold.
func DefaultNeuronConfig() NeuronConfig {
	return NeuronConfig{VThreshold: 1.0, InitTau: 2.0, LearnTau: true, Gamma: SurrogateGamma, Width: 2}
}

// PLIFNode is a layer of parametric leaky-integrate-and-fire neurons with
// hard reset and an optional learnable per-layer threshold voltage.
//
// Dynamics per timestep (elementwise over the layer's neurons):
//
//	a   = sigmoid(w)                  // learnable leak 1/τ
//	H_t = v_{t−1} + a·(X_t − v_{t−1}) // charge
//	z_t = H_t/V − 1                   // normalized drive (paper eq. 1)
//	o_t = Θ(z_t)                      // spike
//	v_t = H_t·(1 − o_t)               // hard reset to 0
type PLIFNode struct {
	cfg NeuronConfig

	// vth and tauW are per-layer scalars stored as 1-element tensors so
	// the optimizer treats them uniformly with weight parameters.
	vth  *Param
	tauW *Param

	v *tensor.Tensor // membrane potential carried across timesteps

	// Per-timestep caches for BPTT.
	zs   cacheStack // z_t
	hs   cacheStack // H_t
	xmvs cacheStack // X_t − v_{t−1}
	os   cacheStack // o_t (needed by the paper-form Vth gradient)

	// gradV carries dL/dv_t from timestep t+1 backward to t.
	gradV *tensor.Tensor
}

// NewPLIFNode constructs a neuron layer from cfg.
func NewPLIFNode(cfg NeuronConfig) *PLIFNode {
	if cfg.VThreshold <= 0 {
		panic(fmt.Sprintf("snn: threshold voltage must be positive, got %v", cfg.VThreshold))
	}
	if cfg.InitTau <= 1 {
		panic(fmt.Sprintf("snn: init tau must exceed 1, got %v", cfg.InitTau))
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = SurrogateGamma
	}
	if cfg.Width <= 0 {
		cfg.Width = 2
	}
	n := &PLIFNode{cfg: cfg}
	n.vth = NewParam("vth", tensor.FromSlice([]float32{float32(cfg.VThreshold)}, 1))
	// sigmoid(w) = 1/τ  ⇒  w = -ln(τ − 1).
	w := -math.Log(cfg.InitTau - 1)
	n.tauW = NewParam("tau_w", tensor.FromSlice([]float32{float32(w)}, 1))
	return n
}

// Vth returns the current threshold voltage.
func (n *PLIFNode) Vth() float64 { return float64(n.vth.Value.Data[0]) }

// SetVth overrides the threshold voltage (used by fixed-threshold sweeps).
func (n *PLIFNode) SetVth(v float64) {
	if v <= 0 {
		panic(fmt.Sprintf("snn: threshold voltage must be positive, got %v", v))
	}
	n.vth.Value.Data[0] = float32(v)
}

// Tau returns the current membrane time constant τ = 1/sigmoid(w).
func (n *PLIFNode) Tau() float64 {
	return 1 / sigmoid(float64(n.tauW.Value.Data[0]))
}

// Config returns the neuron configuration.
func (n *PLIFNode) Config() NeuronConfig { return n.cfg }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward implements Layer.
func (n *PLIFNode) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if n.v == nil || !n.v.SameShape(x) {
		n.v = tensor.New(x.Shape...)
	}
	a := float32(sigmoid(float64(n.tauW.Value.Data[0])))
	vth := n.vth.Value.Data[0]
	invV := 1 / vth

	h := tensor.New(x.Shape...)
	z := tensor.New(x.Shape...)
	o := tensor.New(x.Shape...)
	xmv := tensor.New(x.Shape...)
	vNew := tensor.New(x.Shape...)
	for i, xi := range x.Data {
		d := xi - n.v.Data[i]
		xmv.Data[i] = d
		hi := n.v.Data[i] + a*d
		h.Data[i] = hi
		zi := hi*invV - 1
		z.Data[i] = zi
		if zi > 0 {
			o.Data[i] = 1
			// hard reset: v stays 0
		} else {
			vNew.Data[i] = hi
		}
	}
	n.v = vNew
	if train {
		n.zs.push(z)
		n.hs.push(h)
		n.xmvs.push(xmv)
		n.os.push(o)
	}
	return o
}

// Backward implements Layer. grad is dL/do_t for the timestep being popped.
func (n *PLIFNode) Backward(grad *tensor.Tensor) *tensor.Tensor {
	z := n.zs.pop()
	h := n.hs.pop()
	xmv := n.xmvs.pop()
	o := n.os.pop()
	if n.gradV == nil || !n.gradV.SameShape(grad) {
		n.gradV = tensor.New(grad.Shape...)
	}

	aw := float64(n.tauW.Value.Data[0])
	a := sigmoid(aw)
	dadw := a * (1 - a)
	vth := float64(n.vth.Value.Data[0])
	invV := 1 / vth
	gamma := n.cfg.Gamma
	invW := 1 / n.cfg.Width

	gradX := tensor.New(grad.Shape...)
	gradVPrev := tensor.New(grad.Shape...)
	var dW, dVth float64
	for i := range grad.Data {
		zi := float64(z.Data[i])
		hi := float64(h.Data[i])
		oi := float64(o.Data[i])
		gO := float64(grad.Data[i])
		gV := float64(n.gradV.Data[i])

		// Triangular surrogate ∂o/∂z (paper eq. 2, widened to Width).
		sg := 0.0
		if abs := math.Abs(zi) * invW; abs < 1 {
			sg = gamma * (1 - abs)
		}

		// dL/dz: spike path plus reset path v = H(1−o).
		dz := gO*sg + gV*(-hi)*sg
		// dL/dH: through z = H/V − 1 and through the reset's (1−o) factor.
		dH := dz*invV + gV*(1-oi)

		// Threshold-voltage gradient (the FalVolt signal, paper eq. 3–4).
		if n.cfg.LearnVth {
			if n.cfg.PaperVthGrad {
				// Closed form from eq. (4); o_{t−1} is the previous spike,
				// reconstructable from the cache below this one — the paper
				// folds the reset term in via −V·o_{t−1}.
				oPrev := 0.0
				if d := n.os.depth(); d > 0 {
					oPrev = float64(n.os.items[d-1].Data[i])
				}
				dVth += gO * sg * (-vth*oPrev - hi) * invV * invV
			} else {
				// Exact autodiff: z depends on V as −H/V².
				dVth += dz * (-hi) * invV * invV
			}
		}

		// H = v_prev + a·(X − v_prev).
		gradX.Data[i] = float32(dH * a)
		gradVPrev.Data[i] = float32(dH * (1 - a))
		if n.cfg.LearnTau {
			dW += dH * float64(xmv.Data[i]) * dadw
		}
	}
	n.gradV = gradVPrev
	if n.cfg.LearnTau {
		n.tauW.Grad.Data[0] += float32(dW)
	}
	if n.cfg.LearnVth {
		n.vth.Grad.Data[0] += float32(dVth)
	}
	return gradX
}

// Params implements Layer: the threshold and time-constant scalars are
// trainable only when their learn flags are set.
func (n *PLIFNode) Params() []*Param {
	var ps []*Param
	if n.cfg.LearnVth {
		ps = append(ps, n.vth)
	}
	if n.cfg.LearnTau {
		ps = append(ps, n.tauW)
	}
	return ps
}

// CloneInference implements Layer: the threshold and time-constant
// parameters are shared (read-only at inference); the membrane state and
// BPTT caches are private to the clone.
func (n *PLIFNode) CloneInference() Layer {
	return &PLIFNode{cfg: n.cfg, vth: n.vth, tauW: n.tauW}
}

// CloneTraining implements Layer: threshold and time-constant values are
// shared with private gradient scalars; membrane state and BPTT caches
// are private. cfg is copied, so the clone's Params() ordering matches
// the primary's.
func (n *PLIFNode) CloneTraining() Layer {
	return &PLIFNode{cfg: n.cfg, vth: shadowParam(n.vth), tauW: shadowParam(n.tauW)}
}

// ResetState implements Layer.
func (n *PLIFNode) ResetState() {
	n.v = nil
	n.gradV = nil
	n.zs.reset()
	n.hs.reset()
	n.xmvs.reset()
	n.os.reset()
}

// SetLearnVth toggles threshold-voltage learning (FalVolt enables this on
// every spiking layer before retraining).
func (n *PLIFNode) SetLearnVth(on bool) { n.cfg.LearnVth = on }

// SetConfig replaces the neuron's surrogate and learning configuration in
// place (for ablations). The live threshold and time-constant parameter
// values are preserved — VThreshold/InitTau in cfg do not reset them; use
// SetVth to change the threshold.
func (n *PLIFNode) SetConfig(cfg NeuronConfig) {
	if cfg.Gamma == 0 {
		cfg.Gamma = SurrogateGamma
	}
	if cfg.Width <= 0 {
		cfg.Width = 2
	}
	cfg.VThreshold = float64(n.vth.Value.Data[0])
	n.cfg = cfg
}
