package snn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"falvolt/internal/tensor"
)

func TestPLIFSpikesAboveThreshold(t *testing.T) {
	n := NewPLIFNode(NeuronConfig{VThreshold: 1.0, InitTau: 2.0})
	// With tau=2 (a=0.5) and v0=0: H = 0.5*x. x=3 -> H=1.5 > 1 -> spike.
	x := tensor.FromSlice([]float32{3, 0.5}, 1, 2)
	o := n.Forward(x, false)
	if o.Data[0] != 1 {
		t.Error("strong input should spike")
	}
	if o.Data[1] != 0 {
		t.Error("weak input should not spike")
	}
}

func TestPLIFHardReset(t *testing.T) {
	n := NewPLIFNode(NeuronConfig{VThreshold: 1.0, InitTau: 2.0})
	x := tensor.FromSlice([]float32{4}, 1, 1)
	o1 := n.Forward(x, false)
	if o1.Data[0] != 1 {
		t.Fatal("expected first spike")
	}
	// After a spike, v resets to 0; same charge pattern repeats.
	o2 := n.Forward(x, false)
	if o2.Data[0] != 1 {
		t.Error("membrane should have reset and recharged identically")
	}
}

func TestPLIFMembraneIntegration(t *testing.T) {
	n := NewPLIFNode(NeuronConfig{VThreshold: 1.0, InitTau: 2.0})
	// Subthreshold input accumulates: H1 = 0.5*0.8 = 0.4, v1 = 0.4;
	// H2 = 0.4 + 0.5*(0.8-0.4) = 0.6 ... converges to 0.8 < 1: no spike.
	x := tensor.FromSlice([]float32{0.8}, 1, 1)
	for i := 0; i < 10; i++ {
		o := n.Forward(x, false)
		if o.Data[0] != 0 {
			t.Fatalf("input below threshold must never spike (step %d)", i)
		}
	}
	// Input above threshold eventually spikes even from rest.
	n2 := NewPLIFNode(NeuronConfig{VThreshold: 1.0, InitTau: 2.0})
	x2 := tensor.FromSlice([]float32{1.5}, 1, 1)
	spiked := false
	for i := 0; i < 10; i++ {
		if n2.Forward(x2, false).Data[0] == 1 {
			spiked = true
			break
		}
	}
	if !spiked {
		t.Error("suprathreshold input should spike within a few steps")
	}
}

func TestLowerVthSpikesMore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(8, 16)
	x.RandUniform(rng, 0, 2)
	count := func(vth float64) float64 {
		n := NewPLIFNode(NeuronConfig{VThreshold: vth, InitTau: 2.0})
		var total float64
		for step := 0; step < 4; step++ {
			total += n.Forward(x, false).Sum()
		}
		return total
	}
	lo, hi := count(0.5), count(1.5)
	if lo <= hi {
		t.Errorf("lower threshold should fire more: vth=0.5 -> %v spikes, vth=1.5 -> %v", lo, hi)
	}
}

func TestPLIFOutputsAreBinary(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewPLIFNode(DefaultNeuronConfig())
		x := tensor.New(4, 8)
		x.RandNormal(rng, 2)
		for step := 0; step < 3; step++ {
			o := n.Forward(x, false)
			for _, v := range o.Data {
				if v != 0 && v != 1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestPLIFConfigValidation(t *testing.T) {
	for _, bad := range []NeuronConfig{
		{VThreshold: 0, InitTau: 2},
		{VThreshold: -1, InitTau: 2},
		{VThreshold: 1, InitTau: 1},
		{VThreshold: 1, InitTau: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", bad)
				}
			}()
			NewPLIFNode(bad)
		}()
	}
}

func TestSetVthValidation(t *testing.T) {
	n := NewPLIFNode(DefaultNeuronConfig())
	n.SetVth(0.7)
	if math.Abs(n.Vth()-0.7) > 1e-6 {
		t.Errorf("Vth = %v, want 0.7", n.Vth())
	}
	defer func() {
		if recover() == nil {
			t.Error("SetVth(0) should panic")
		}
	}()
	n.SetVth(0)
}

func TestTauRoundTrip(t *testing.T) {
	n := NewPLIFNode(NeuronConfig{VThreshold: 1, InitTau: 3.5})
	if math.Abs(n.Tau()-3.5) > 1e-5 {
		t.Errorf("Tau() = %v, want 3.5", n.Tau())
	}
}

func TestParamsExposureFollowsFlags(t *testing.T) {
	n := NewPLIFNode(NeuronConfig{VThreshold: 1, InitTau: 2})
	if len(n.Params()) != 0 {
		t.Errorf("no learnable flags -> no params, got %d", len(n.Params()))
	}
	n2 := NewPLIFNode(NeuronConfig{VThreshold: 1, InitTau: 2, LearnTau: true})
	if len(n2.Params()) != 1 {
		t.Errorf("LearnTau -> 1 param, got %d", len(n2.Params()))
	}
	n2.SetLearnVth(true)
	if len(n2.Params()) != 2 {
		t.Errorf("LearnTau+LearnVth -> 2 params, got %d", len(n2.Params()))
	}
}

func TestResetStateClearsMembrane(t *testing.T) {
	n := NewPLIFNode(NeuronConfig{VThreshold: 1, InitTau: 2})
	x := tensor.FromSlice([]float32{0.9}, 1, 1)
	n.Forward(x, false) // charges membrane
	n.ResetState()
	// After reset, the trajectory restarts identically.
	a := NewPLIFNode(NeuronConfig{VThreshold: 1, InitTau: 2})
	oa := a.Forward(x, false)
	ob := n.Forward(x, false)
	if oa.Data[0] != ob.Data[0] {
		t.Error("ResetState did not clear membrane potential")
	}
}

func TestBackwardCacheUnderflowPanics(t *testing.T) {
	n := NewPLIFNode(DefaultNeuronConfig())
	defer func() {
		if recover() == nil {
			t.Error("Backward without Forward should panic on cache underflow")
		}
	}()
	n.Backward(tensor.New(1, 1))
}

func TestPaperVthGradRuns(t *testing.T) {
	// The paper-form eq. (4) gradient must produce a finite, usually
	// non-zero threshold gradient on an active layer.
	rng := rand.New(rand.NewSource(3))
	cfg := NeuronConfig{VThreshold: 1, InitTau: 2, LearnVth: true, PaperVthGrad: true}
	n := NewPLIFNode(cfg)
	x := tensor.New(8, 8)
	x.RandUniform(rng, 0, 2.5)
	var outs []*tensor.Tensor
	for step := 0; step < 3; step++ {
		outs = append(outs, n.Forward(x, true))
	}
	g := tensor.New(8, 8)
	g.Fill(0.1)
	for step := 2; step >= 0; step-- {
		n.Backward(g)
	}
	var vth *Param
	for _, p := range n.Params() {
		if p.Name == "vth" {
			vth = p
		}
	}
	if vth == nil {
		t.Fatal("vth param missing")
	}
	got := float64(vth.Grad.Data[0])
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("paper-form Vth gradient not finite: %v", got)
	}
	if got == 0 {
		t.Error("paper-form Vth gradient unexpectedly zero on an active layer")
	}
	_ = outs
}

func TestSurrogateWidthAblation(t *testing.T) {
	// Width=1 (paper exact) must zero the gradient at the resting state;
	// the default width=2 must not.
	mk := func(width float64) float64 {
		n := NewPLIFNode(NeuronConfig{VThreshold: 1, InitTau: 2, Width: width})
		x := tensor.New(1, 1) // zero input -> H=0 -> z=-1 exactly
		n.Forward(x, true)
		g := tensor.FromSlice([]float32{1}, 1, 1)
		gx := n.Backward(g)
		return float64(gx.Data[0])
	}
	if g := mk(1.0); g != 0 {
		t.Errorf("width-1 surrogate at rest should be 0, got %v", g)
	}
	if g := mk(2.0); g == 0 {
		t.Error("width-2 surrogate at rest should be non-zero")
	}
}
