package snn

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"falvolt/internal/tensor"
)

// Sample is one labelled sequence.
type Sample struct {
	Seq   Sequence
	Label int
}

// batchSequence concatenates the frames of several samples along the batch
// dimension, lazily per timestep.
type batchSequence struct {
	seqs []Sequence
	t    int
}

// At implements Sequence.
func (b batchSequence) At(t int) *tensor.Tensor {
	first := b.seqs[0].At(t)
	shape := append([]int(nil), first.Shape...)
	per := first.Len() / first.Shape[0]
	shape[0] = 0
	for _, s := range b.seqs {
		shape[0] += s.At(t).Shape[0]
	}
	out := tensor.New(shape...)
	off := 0
	for _, s := range b.seqs {
		x := s.At(t)
		copy(out.Data[off:], x.Data)
		off += x.Shape[0] * per
	}
	return out
}

// Steps implements Sequence.
func (b batchSequence) Steps() int { return b.t }

// MakeBatch combines samples into one batched sequence plus labels.
func MakeBatch(samples []Sample) (Sequence, []int) {
	seqs := make([]Sequence, len(samples))
	labels := make([]int, len(samples))
	steps := 0
	for i, s := range samples {
		seqs[i] = s.Seq
		labels[i] = s.Label
		if n := s.Seq.Steps(); n > steps {
			steps = n
		}
	}
	return batchSequence{seqs: seqs, t: steps}, labels
}

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Classes   int
	Loss      Loss
	Rng       *rand.Rand
	// ClipNorm caps the global gradient norm (0 disables clipping).
	ClipNorm float64
	// AfterStep runs after each optimizer step (e.g. to re-apply masks).
	AfterStep func()
	// AfterEpoch runs at the end of each epoch with the mean train loss;
	// Algorithm 1 re-applies the prune mask here.
	AfterEpoch func(epoch int, trainLoss float64)
	// Silent suppresses progress output to stdout.
	Silent bool
	// Engine is the compute backend training runs on (nil keeps the
	// network's current engine). A non-nil engine is installed on the
	// network via SetEngine and remains in effect after Train returns.
	// Training results are bit-identical on every engine; only
	// wall-clock changes.
	Engine tensor.Backend
}

// Validate fills defaults and rejects unusable configurations.
func (c *TrainConfig) Validate() error {
	if c.Epochs < 0 {
		return fmt.Errorf("snn: negative epochs %d", c.Epochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("snn: batch size must be positive, got %d", c.BatchSize)
	}
	if c.Classes <= 0 {
		return fmt.Errorf("snn: classes must be positive, got %d", c.Classes)
	}
	if c.LR <= 0 {
		return fmt.Errorf("snn: learning rate must be positive, got %g", c.LR)
	}
	if c.Loss == nil {
		c.Loss = MSERate{}
	}
	if c.Rng == nil {
		c.Rng = rand.New(rand.NewSource(0))
	}
	return nil
}

// Train runs the training loop over samples, updating net in place, and
// returns the mean training loss of the final epoch.
func Train(net *Network, samples []Sample, cfg TrainConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("snn: no training samples")
	}
	if cfg.Engine != nil {
		net.SetEngine(cfg.Engine)
	}
	opt := NewAdam(net.Params(), cfg.LR)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := make([]Sample, 0, end-start)
			for _, i := range idx[start:end] {
				batch = append(batch, samples[i])
			}
			seq, labels := MakeBatch(batch)
			target := OneHot(labels, cfg.Classes)

			net.ResetState()
			opt.ZeroGrad()
			rate := net.Forward(seq, true)
			loss, grad := cfg.Loss.Loss(rate, target)
			net.Backward(grad)
			if cfg.ClipNorm > 0 {
				ClipGradNorm(net.Params(), cfg.ClipNorm)
			}
			opt.Step()
			if cfg.AfterStep != nil {
				cfg.AfterStep()
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.AfterEpoch != nil {
			cfg.AfterEpoch(epoch, lastLoss)
		}
		if !cfg.Silent {
			fmt.Printf("epoch %3d  loss %.5f\n", epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// Evaluate returns classification accuracy of net on samples, running in
// inference mode (which uses any installed systolic deployment). On a
// multi-worker engine the batches are sharded across inference replicas
// of the network (see EvaluateWith).
func Evaluate(net *Network, samples []Sample, batchSize int) float64 {
	return EvaluateWith(nil, net, samples, batchSize)
}

// EvaluateWith is Evaluate on an explicit engine (nil selects the
// network's engine). A non-nil engine is installed on the network for
// the duration of the call and the previous engine is restored before
// returning, so all layer compute — not just batch sharding — runs on
// it. When the engine has more than one worker and there is more than
// one batch, whole batches are dispatched concurrently onto per-lane
// inference clones of net — batch-parallel inference. Layer parameters
// and any systolic deployment are shared by the clones (Array.Forward is
// safe for concurrent calls); per-batch correct counts are summed, so
// the accuracy is identical to the serial order.
func EvaluateWith(eng tensor.Backend, net *Network, samples []Sample, batchSize int) float64 {
	if len(samples) == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	if eng == nil {
		eng = net.Engine()
	} else if eng != net.eng {
		prev := net.eng
		net.SetEngine(eng)
		defer net.SetEngine(prev)
	}
	numBatches := (len(samples) + batchSize - 1) / batchSize
	evalBatch := func(n *Network, b int) int {
		start := b * batchSize
		end := start + batchSize
		if end > len(samples) {
			end = len(samples)
		}
		seq, labels := MakeBatch(samples[start:end])
		n.ResetState()
		rate := n.Forward(seq, false)
		correct := 0
		for i, l := range labels {
			if rate.Argmax(i) == l {
				correct++
			}
		}
		return correct
	}

	// Inference replicas share deployed systolic arrays, which is fine
	// for stateless fault classes but not for time-dependent ones: each
	// batch must drive the array through its own timestep sequence, and
	// concurrent SetTimestep calls would interleave. Serialize instead.
	if eng.Workers() <= 1 || numBatches <= 1 || net.timeFaulted() {
		correct := 0
		for b := 0; b < numBatches; b++ {
			correct += evalBatch(net, b)
		}
		return float64(correct) / float64(len(samples))
	}

	lanes := eng.Workers()
	if lanes > numBatches {
		lanes = numBatches
	}
	replicas := make([]*Network, lanes)
	for i := range replicas {
		replicas[i] = net.InferenceClone()
	}
	var correct atomic.Int64
	eng.Map(numBatches, func(slot, b int) {
		correct.Add(int64(evalBatch(replicas[slot], b)))
	})
	return float64(correct.Load()) / float64(len(samples))
}
