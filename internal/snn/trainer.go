package snn

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"falvolt/internal/tensor"
)

// Sample is one labelled sequence.
type Sample struct {
	Seq   Sequence
	Label int
}

// batchSequence concatenates the frames of several samples along the batch
// dimension, lazily per timestep. When backed by a batchPool the
// per-timestep concat tensors are recycled across steps; otherwise each At
// call allocates.
type batchSequence struct {
	seqs []Sequence
	t    int
	pool *batchPool
}

// At implements Sequence.
func (b batchSequence) At(t int) *tensor.Tensor {
	first := b.seqs[0].At(t)
	per := first.Len() / first.Shape[0]
	rows := 0
	for _, s := range b.seqs {
		rows += s.At(t).Shape[0]
	}
	var out *tensor.Tensor
	if b.pool != nil {
		out = b.pool.buf(t, first.Shape, rows)
	} else {
		shape := append([]int(nil), first.Shape...)
		shape[0] = rows
		out = tensor.New(shape...)
	}
	off := 0
	for _, s := range b.seqs {
		x := s.At(t)
		copy(out.Data[off:], x.Data)
		off += x.Shape[0] * per
	}
	return out
}

// Steps implements Sequence.
func (b batchSequence) Steps() int { return b.t }

// MakeBatch combines samples into one batched sequence plus labels.
func MakeBatch(samples []Sample) (Sequence, []int) {
	seqs := make([]Sequence, len(samples))
	labels := make([]int, len(samples))
	steps := 0
	for i, s := range samples {
		seqs[i] = s.Seq
		labels[i] = s.Label
		if n := s.Seq.Steps(); n > steps {
			steps = n
		}
	}
	return batchSequence{seqs: seqs, t: steps}, labels
}

// batchPool recycles the per-step batching buffers: the gathered
// sequence/label slices and one concat tensor per timestep. Safe to reuse
// across optimizer steps because no layer retains a timestep's input
// beyond its own Backward within the same step; each concurrent training
// lane owns a private pool.
type batchPool struct {
	seqs   []Sequence
	labels []int
	bufs   []*tensor.Tensor
	shape  []int
	seq    batchSequence // reused so gather returns a pointer (no boxing alloc)
}

// gather assembles samples[idx[0]], samples[idx[1]], ... into one batched
// sequence plus labels, reusing the pool's buffers (the counterpart of
// MakeBatch with zero steady-state allocations).
func (p *batchPool) gather(samples []Sample, idx []int) (Sequence, []int) {
	p.seqs = p.seqs[:0]
	p.labels = p.labels[:0]
	steps := 0
	for _, i := range idx {
		s := samples[i]
		p.seqs = append(p.seqs, s.Seq)
		p.labels = append(p.labels, s.Label)
		if n := s.Seq.Steps(); n > steps {
			steps = n
		}
	}
	p.seq = batchSequence{seqs: p.seqs, t: steps, pool: p}
	return &p.seq, p.labels
}

// buf returns the pooled concat tensor for timestep t shaped like
// frameShape with the batch dimension replaced by rows, allocating only
// when the element count changes (e.g. the ragged final batch).
func (p *batchPool) buf(t int, frameShape []int, rows int) *tensor.Tensor {
	p.shape = append(p.shape[:0], frameShape...)
	p.shape[0] = rows
	n := 1
	for _, d := range p.shape {
		n *= d
	}
	for len(p.bufs) <= t {
		p.bufs = append(p.bufs, nil)
	}
	b := p.bufs[t]
	if b == nil || len(b.Data) != n || len(b.Shape) != len(p.shape) {
		b = tensor.New(p.shape...)
		p.bufs[t] = b
		return b
	}
	copy(b.Shape, p.shape)
	return b
}

// TrainHooks collects the training loop's observation callbacks. Every
// hook runs on the caller's goroutine between optimizer steps; nil hooks
// are skipped, so the zero value trains silently (library default — cmd
// tools install a Progress printer).
type TrainHooks struct {
	// Progress reports the mean training loss at the end of each epoch.
	Progress func(epoch int, loss float64)
	// AfterStep runs after each optimizer step (e.g. to re-apply prune
	// masks to the shared weights).
	AfterStep func()
	// AfterEpoch runs at the end of each epoch with the mean train loss;
	// Algorithm 1 re-applies the prune mask here.
	AfterEpoch func(epoch int, trainLoss float64)
}

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Classes   int
	Loss      Loss
	Rng       *rand.Rand
	// ClipNorm caps the global gradient norm (0 disables clipping).
	ClipNorm float64
	// Hooks observe the loop; the zero value trains silently.
	Hooks TrainHooks
	// Engine is the compute backend training runs on (nil keeps the
	// network's current engine). A non-nil engine is installed on the
	// network via SetEngine and remains in effect after Train returns.
	// Training results are bit-identical on every engine; only
	// wall-clock changes.
	Engine tensor.Backend
	// Replicas is the concurrent lane count of the data-parallel
	// replica engine: each global batch is split into micro-batches
	// dispatched onto up to Replicas training clones of the network
	// (clamped to the engine's worker count), with per-replica gradient
	// accumulation and a deterministic fixed-order reduction into the
	// primary's gradients before each optimizer step. ALL training runs
	// this engine — 0 means one lane, not a different code path — so
	// Replicas never affects results, only wall-clock: loss curves and
	// final weights (dropout included) are bit-identical across 0/1/2/8
	// replicas on any backend.
	Replicas int
	// MicroBatch is the micro-batch size (0 = BatchSize, one
	// micro-batch per step). The micro-batch partition is a function of
	// (BatchSize, MicroBatch) only — never of Replicas or the engine —
	// which is what makes the replica count result-neutral. Unlike
	// Replicas, MicroBatch changes the loss-averaging partition and
	// therefore the results.
	MicroBatch int
}

// Validate fills defaults and rejects unusable configurations.
func (c *TrainConfig) Validate() error {
	if c.Epochs < 0 {
		return fmt.Errorf("snn: negative epochs %d", c.Epochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("snn: batch size must be positive, got %d", c.BatchSize)
	}
	if c.Classes <= 0 {
		return fmt.Errorf("snn: classes must be positive, got %d", c.Classes)
	}
	if c.LR <= 0 {
		return fmt.Errorf("snn: learning rate must be positive, got %g", c.LR)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("snn: negative replicas %d", c.Replicas)
	}
	if c.MicroBatch < 0 {
		return fmt.Errorf("snn: negative micro-batch %d", c.MicroBatch)
	}
	if c.Loss == nil {
		c.Loss = MSERate{}
	}
	if c.Rng == nil {
		c.Rng = rand.New(rand.NewSource(0))
	}
	return nil
}

// Train runs the training loop over samples, updating net in place, and
// returns the mean training loss of the final epoch. Every
// configuration runs the data-parallel replica engine (see
// trainReplicas) — the zero config is one lane with one micro-batch per
// step — so the trained result is a pure function of the
// result-affecting knobs (Epochs, BatchSize, MicroBatch, LR, ClipNorm,
// Loss, Rng), never of Replicas or Engine.
func Train(net *Network, samples []Sample, cfg TrainConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("snn: no training samples")
	}
	if cfg.Engine != nil {
		net.SetEngine(cfg.Engine)
	}
	return trainReplicas(net, samples, cfg)
}

// replicaLane is one concurrent training lane: a training clone of the
// primary network plus the lane's private batching buffers and the
// clone's layer handles the engine needs direct access to.
type replicaLane struct {
	net    *Network
	pool   *batchPool
	params []*Param       // index-aligned with the primary's Params()
	drops  []*Dropout     // clone dropout layers in network order
	bns    []*BatchNorm2D // clone batch-norm layers in network order
}

func newReplicaLane(primary *Network) *replicaLane {
	n := primary.TrainingClone()
	lane := &replicaLane{net: n, pool: &batchPool{}, params: n.Params()}
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dropout:
			lane.drops = append(lane.drops, v)
		case *BatchNorm2D:
			lane.bns = append(lane.bns, v)
		}
	}
	return lane
}

// mbResult holds one micro-batch's training contribution — harvested from
// whichever lane happened to run it, then reduced in micro-batch index
// order. The buffers are Into-style: the lane writes only this slot, so a
// device-offload backend can stage replica gradients in its own arenas
// and copy them here without touching the primary until the reduction.
type mbResult struct {
	loss    float64          // micro-batch loss, weighted by its batch share
	grads   []*tensor.Tensor // one per Param, index-aligned with Params()
	bnMeans [][][]float64    // per BN layer: per-timestep per-channel means
	bnVars  [][][]float64    // per BN layer: per-timestep per-channel variances
}

// trainReplicas is the data-parallel training engine — the only
// training loop; Train routes every configuration here. Each global
// batch is partitioned into fixed micro-batches (a function of
// BatchSize and MicroBatch only), dispatched onto training clones over
// up to cfg.Replicas concurrent lanes (minimum one), and the
// per-micro-batch gradients are summed into the primary's Param
// gradients in micro-batch index order — never lane completion order —
// before each optimizer step. Because the partition, the
// per-micro-batch float work (dropout masks included: see deriveSeed)
// and the reduction order are all independent of the lane count,
// results are bit-identical across replica counts and backends; only
// wall-clock changes. Per-micro-batch losses are weighted by their
// share of the batch, and batch-norm running statistics logged by the
// clones are replayed on the primary in the same fixed order (see
// BatchNorm2D.ReplayStats).
func trainReplicas(net *Network, samples []Sample, cfg TrainConfig) (float64, error) {
	eng := net.Engine()
	params := net.Params()
	opt := NewAdam(params, cfg.LR)

	mbSize := cfg.MicroBatch
	if mbSize <= 0 || mbSize > cfg.BatchSize {
		mbSize = cfg.BatchSize
	}
	maxMB := (cfg.BatchSize + mbSize - 1) / mbSize
	lanes := max(cfg.Replicas, 1)
	lanes = min(lanes, eng.Workers(), maxMB)
	lanes = max(lanes, 1)

	reps := make([]*replicaLane, lanes)
	for i := range reps {
		reps[i] = newReplicaLane(net)
	}
	var bns []*BatchNorm2D
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm2D); ok {
			bns = append(bns, bn)
		}
	}

	// One result slot per micro-batch of a full batch; the gradient
	// buffers are recycled every step.
	results := make([]*mbResult, maxMB)
	for i := range results {
		g := make([]*tensor.Tensor, len(params))
		for pi, p := range params {
			g[pi] = tensor.New(p.Value.Shape...)
		}
		results[i] = &mbResult{grads: g}
	}

	// Dropout clones need a derived rng per (step, micro-batch, layer);
	// the per-step seed is only drawn when an active dropout layer
	// exists, so dropout-free training consumes cfg.Rng for batch
	// shuffling only (preserving the shuffle stream of the pre-engine
	// serial loop, which never drew from cfg.Rng inside a step).
	activeDropout := false
	for _, l := range net.Layers {
		if d, ok := l.(*Dropout); ok && d.P > 0 {
			activeDropout = true
		}
	}

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(idx))
			bidx := idx[start:end]
			numMB := (len(bidx) + mbSize - 1) / mbSize
			// One dropout seed per optimizer step, drawn from the shuffle
			// rng in step order so the whole run is a deterministic
			// function of cfg.Rng regardless of lane scheduling.
			var stepSeed int64
			if activeDropout {
				stepSeed = cfg.Rng.Int63()
			}

			runLanes(lanes, numMB, func(slot, mb int) {
				lane := reps[slot]
				lo := mb * mbSize
				hi := min(lo+mbSize, len(bidx))
				seq, labels := lane.pool.gather(samples, bidx[lo:hi])
				target := OneHot(labels, cfg.Classes)
				if activeDropout {
					for di, d := range lane.drops {
						d.SetRng(rand.New(rand.NewSource(deriveSeed(stepSeed, int64(mb), int64(di)))))
					}
				}
				lane.net.ResetState()
				for _, p := range lane.params {
					p.ZeroGrad()
				}
				rate := lane.net.Forward(seq, true)
				loss, grad := cfg.Loss.Loss(rate, target)
				w := float64(hi-lo) / float64(len(bidx))
				if w != 1 {
					grad.Scale(float32(w))
				}
				lane.net.Backward(grad)

				res := results[mb]
				res.loss = w * loss
				for pi, p := range lane.params {
					copy(res.grads[pi].Data, p.Grad.Data)
				}
				res.bnMeans = res.bnMeans[:0]
				res.bnVars = res.bnVars[:0]
				for _, bn := range lane.bns {
					m, v := bn.DrainStats()
					res.bnMeans = append(res.bnMeans, m)
					res.bnVars = append(res.bnVars, v)
				}
			})

			// Deterministic fixed-order reduction: micro-batch index
			// order, never lane completion order — float addition does
			// not associate, so the order is part of the contract.
			opt.ZeroGrad()
			var stepLoss float64
			for mb := 0; mb < numMB; mb++ {
				res := results[mb]
				stepLoss += res.loss
				for pi, p := range params {
					p.Grad.AddInPlace(res.grads[pi])
				}
				for bi, bn := range bns {
					bn.ReplayStats(res.bnMeans[bi], res.bnVars[bi])
				}
			}
			if cfg.ClipNorm > 0 {
				ClipGradNorm(params, cfg.ClipNorm)
			}
			opt.Step()
			if cfg.Hooks.AfterStep != nil {
				cfg.Hooks.AfterStep()
			}
			epochLoss += stepLoss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Hooks.AfterEpoch != nil {
			cfg.Hooks.AfterEpoch(epoch, lastLoss)
		}
		if cfg.Hooks.Progress != nil {
			cfg.Hooks.Progress(epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// runLanes dispatches n micro-batches over lanes concurrent workers with
// a shared cursor (slots are dense in [0, lanes)). One lane runs in
// micro-batch order on the caller's goroutine — the serial reference
// order. Which lane runs which micro-batch never matters: each
// micro-batch writes only its own result slot and the reduction happens
// afterwards in index order.
func runLanes(lanes, n int, fn func(slot, i int)) {
	if lanes > n {
		lanes = n
	}
	if lanes <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(lanes)
	for s := 0; s < lanes; s++ {
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(slot, i)
			}
		}(s)
	}
	wg.Wait()
}

// deriveSeed hashes (step seed, micro-batch index, dropout ordinal) into
// an independent rng seed (splitmix64 finalizer), making dropout masks a
// pure function of the micro-batch identity — independent of the lane
// that runs it and of the replica count.
func deriveSeed(step, mb, ordinal int64) int64 {
	z := uint64(step) ^ 0x9e3779b97f4a7c15*uint64(mb+1) ^ 0xd1b54a32d192ed03*uint64(ordinal+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Evaluate returns classification accuracy of net on samples, running in
// inference mode (which uses any installed systolic deployment). On a
// multi-worker engine the batches are sharded across inference replicas
// of the network (see EvaluateWith).
func Evaluate(net *Network, samples []Sample, batchSize int) float64 {
	return EvaluateWith(nil, net, samples, batchSize)
}

// EvaluateWith is Evaluate on an explicit engine (nil selects the
// network's engine). A non-nil engine is installed on the network for
// the duration of the call and the previous engine is restored before
// returning, so all layer compute — not just batch sharding — runs on
// it. When the engine has more than one worker and there is more than
// one batch, whole batches are dispatched concurrently onto per-lane
// inference clones of net — batch-parallel inference. Layer parameters
// and any systolic deployment are shared by the clones (Array.Forward is
// safe for concurrent calls); per-batch correct counts are summed, so
// the accuracy is identical to the serial order.
func EvaluateWith(eng tensor.Backend, net *Network, samples []Sample, batchSize int) float64 {
	if len(samples) == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	if eng == nil {
		eng = net.Engine()
	} else if eng != net.eng {
		prev := net.eng
		net.SetEngine(eng)
		defer net.SetEngine(prev)
	}
	numBatches := (len(samples) + batchSize - 1) / batchSize
	evalBatch := func(n *Network, b int) int {
		start := b * batchSize
		end := start + batchSize
		if end > len(samples) {
			end = len(samples)
		}
		seq, labels := MakeBatch(samples[start:end])
		n.ResetState()
		rate := n.Forward(seq, false)
		correct := 0
		for i, l := range labels {
			if rate.Argmax(i) == l {
				correct++
			}
		}
		return correct
	}

	// Inference replicas share deployed systolic arrays, which is fine
	// for stateless fault classes but not for time-dependent ones: each
	// batch must drive the array through its own timestep sequence, and
	// concurrent SetTimestep calls would interleave. Serialize instead.
	if eng.Workers() <= 1 || numBatches <= 1 || net.timeFaulted() {
		correct := 0
		for b := 0; b < numBatches; b++ {
			correct += evalBatch(net, b)
		}
		return float64(correct) / float64(len(samples))
	}

	lanes := eng.Workers()
	if lanes > numBatches {
		lanes = numBatches
	}
	replicas := make([]*Network, lanes)
	for i := range replicas {
		replicas[i] = net.InferenceClone()
	}
	var correct atomic.Int64
	eng.Map(numBatches, func(slot, b int) {
		correct.Add(int64(evalBatch(replicas[slot], b)))
	})
	return float64(correct.Load()) / float64(len(samples))
}
