package snn

import (
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/tensor"
)

// Spiking outputs are piecewise constant in every parameter, so the usual
// small-eps finite-difference check is meaningless through a Heaviside.
// Strategy here:
//   - layers below the spike (Conv2D, BatchNorm2D, Linear, AvgPool2,
//     Flatten) are checked exactly with a smooth quadratic loss;
//   - the PLIF surrogate pathway is checked behaviourally: macro-scale
//     finite differences over a large batch (where the rate loss is
//     quasi-smooth) must agree in sign and rough magnitude, and training
//     a tiny network must reduce the loss.

// quadLoss is L = Σ y² with dL/dy = 2y.
func quadLoss(y *tensor.Tensor) (float64, *tensor.Tensor) {
	var l float64
	g := tensor.New(y.Shape...)
	for i, v := range y.Data {
		l += float64(v) * float64(v)
		g.Data[i] = 2 * v
	}
	return l, g
}

// checkLayerGrads verifies analytic parameter and input gradients of a
// single differentiable layer against central differences.
func checkLayerGrads(t *testing.T, layer Layer, x *tensor.Tensor, relTol float64) {
	t.Helper()
	forward := func() float64 {
		layer.ResetState()
		y := layer.Forward(x, true)
		l, _ := quadLoss(y)
		layer.ResetState()
		return l
	}

	layer.ResetState()
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	y := layer.Forward(x, true)
	_, gy := quadLoss(y)
	gx := layer.Backward(gy)

	const eps = 1e-2
	numeric := func(data []float32, i int) float64 {
		orig := data[i]
		data[i] = orig + eps
		lp := forward()
		data[i] = orig - eps
		lm := forward()
		data[i] = orig
		return (lp - lm) / (2 * eps)
	}
	compare := func(name string, got, want float64) {
		diff := math.Abs(got - want)
		scale := math.Max(0.05, math.Max(math.Abs(got), math.Abs(want)))
		if diff/scale > relTol {
			t.Errorf("%s: analytic %v vs numeric %v", name, got, want)
		}
	}

	for _, p := range layer.Params() {
		n := p.Value.Len()
		stride := 1
		if n > 8 {
			stride = n / 8
		}
		for i := 0; i < n; i += stride {
			compare(p.Name, float64(p.Grad.Data[i]), numeric(p.Value.Data, i))
		}
	}
	nx := x.Len()
	stride := 1
	if nx > 8 {
		stride = nx / 8
	}
	for i := 0; i < nx; i += stride {
		compare("input", float64(gx.Data[i]), numeric(x.Data, i))
	}
}

func TestGradCheckConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv, err := NewConv2D(2, 5, 5, 3, 3, 1, 1, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 2, 5, 5)
	x.RandNormal(rng, 1)
	checkLayerGrads(t, conv, x, 0.02)
}

func TestGradCheckLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lin := NewLinear(6, 4, true, rng)
	x := tensor.New(3, 6)
	x.RandNormal(rng, 1)
	checkLayerGrads(t, lin, x, 0.02)
}

func TestGradCheckBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bn := NewBatchNorm2D(3)
	// Non-trivial gamma/beta so their gradients are exercised.
	bn.gamma.Value.Data[1] = 1.5
	bn.beta.Value.Data[2] = -0.3
	x := tensor.New(4, 3, 3, 3)
	x.RandNormal(rng, 2)
	checkLayerGrads(t, bn, x, 0.03)
}

func TestGradCheckAvgPoolAndFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(2, 2, 4, 4)
	x.RandNormal(rng, 1)
	checkLayerGrads(t, NewAvgPool2(), x, 0.02)
	checkLayerGrads(t, NewFlatten(), x, 0.02)
}

func TestGradCheckConvNoBias(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv, err := NewConv2D(1, 4, 4, 2, 3, 1, 0, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv.Params()) != 1 {
		t.Fatalf("bias-free conv should expose 1 param, got %d", len(conv.Params()))
	}
	x := tensor.New(2, 1, 4, 4)
	x.RandNormal(rng, 1)
	checkLayerGrads(t, conv, x, 0.02)
}

// TestVthGradientMacroScale: over a large batch the rate loss is
// quasi-smooth in the threshold voltage; the surrogate gradient must agree
// in sign with a macro finite difference.
func TestVthGradientMacroScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ncfg := NeuronConfig{VThreshold: 1.0, LearnVth: true, InitTau: 2.0, LearnTau: false, Gamma: 1.0}
	node := NewPLIFNode(ncfg)
	lin := NewLinear(8, 6, true, rng)
	net := NewNetwork(4, lin, node)
	x := tensor.New(64, 8)
	x.RandUniform(rng, 0, 2)
	seq := StaticSequence{X: x, T: 4}
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 6
	}
	target := OneHot(labels, 6)
	loss := MSERate{}

	lossAt := func(v float64) float64 {
		node.SetVth(v)
		net.ResetState()
		rate := net.Forward(seq, false)
		l, _ := loss.Loss(rate, target)
		return l
	}

	node.SetVth(1.0)
	net.ResetState()
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	rate := net.Forward(seq, true)
	_, grad := loss.Loss(rate, target)
	net.Backward(grad)
	var analytic float64
	for _, p := range node.Params() {
		if p.Name == "vth" {
			analytic = float64(p.Grad.Data[0])
		}
	}
	net.ResetState()

	const h = 0.15
	macro := (lossAt(1.0+h) - lossAt(1.0-h)) / (2 * h)
	if analytic == 0 {
		t.Fatal("vth surrogate gradient is identically zero")
	}
	if macro != 0 && math.Signbit(analytic) != math.Signbit(macro) {
		t.Errorf("vth gradient sign mismatch: surrogate %v, macro finite difference %v", analytic, macro)
	}
}

// TestTrainingReducesLoss is the end-to-end gradient check: BPTT with the
// surrogate must be able to fit a small separable problem.
func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ncfg := DefaultNeuronConfig()
	lin1 := NewLinear(10, 24, true, rng)
	lin2 := NewLinear(24, 3, true, rng)
	net := NewNetwork(4, lin1, NewPLIFNode(ncfg), lin2, NewPLIFNode(ncfg))

	// Three well-separated prototype patterns plus noise.
	var samples []Sample
	for i := 0; i < 60; i++ {
		class := i % 3
		x := tensor.New(1, 10)
		for j := 0; j < 10; j++ {
			base := float32(0.1)
			if j >= class*3 && j < class*3+3 {
				base = 1.5
			}
			x.Data[j] = base + float32(rng.NormFloat64()*0.05)
		}
		samples = append(samples, Sample{Seq: StaticSequence{X: x, T: 4}, Label: class})
	}

	first := Evaluate(net, samples, 16)
	lastLoss, err := Train(net, samples, TrainConfig{
		Epochs: 12, BatchSize: 16, LR: 0.02, Classes: 3,
		Rng: rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(net, samples, 16)
	if acc < 0.9 {
		t.Errorf("training failed to fit separable toy: accuracy %.2f (was %.2f), loss %.4f", acc, first, lastLoss)
	}
}
