package snn

import (
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/tensor"
)

func TestPoissonEncoderRateMatchesIntensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewPoissonEncoder(1, rng)
	x := tensor.New(1, 1000)
	x.Fill(0.3)
	var total float64
	const steps = 50
	for s := 0; s < steps; s++ {
		total += e.Encode(x, s).Sum()
	}
	rate := total / (1000 * steps)
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("empirical rate %.3f, want ~0.3", rate)
	}
}

func TestPoissonEncoderBinaryAndClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewPoissonEncoder(10, rng) // heavy gain: everything clamps to p=1
	x := tensor.New(1, 64)
	x.Fill(0.5)
	out := e.Encode(x, 0)
	for _, v := range out.Data {
		if v != 1 {
			t.Fatal("p clamped to 1 must always fire")
		}
	}
	x.Fill(-1)
	out = e.Encode(x, 0)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("negative intensity must never fire")
		}
	}
}

func TestLatencyEncoderOrdering(t *testing.T) {
	e := NewLatencyEncoder(8)
	bright := e.spikeStep(1.0)
	mid := e.spikeStep(0.5)
	dim := e.spikeStep(0.1)
	if bright != 0 {
		t.Errorf("brightest pixel should fire at step 0, got %d", bright)
	}
	if !(bright < mid && mid < dim) {
		t.Errorf("latency must decrease with intensity: %d %d %d", bright, mid, dim)
	}
	if e.spikeStep(0) != -1 {
		t.Error("zero intensity must never fire")
	}
}

func TestLatencyEncoderSingleSpikePerPixel(t *testing.T) {
	e := NewLatencyEncoder(6)
	x := tensor.New(1, 32)
	rng := rand.New(rand.NewSource(3))
	x.RandUniform(rng, 0, 1)
	counts := make([]float64, 32)
	for s := 0; s < 6; s++ {
		out := e.Encode(x, s)
		for i, v := range out.Data {
			counts[i] += float64(v)
		}
	}
	for i, c := range counts {
		if c > 1 {
			t.Errorf("pixel %d spiked %v times, max 1", i, c)
		}
		if x.Data[i] > 0.05 && c == 0 {
			t.Errorf("bright pixel %d (%.2f) never spiked", i, x.Data[i])
		}
	}
}

func TestNewLatencyEncoderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive horizon should panic")
		}
	}()
	NewLatencyEncoder(0)
}

func TestEncodeDatasetWrapsSamples(t *testing.T) {
	x := tensor.New(1, 1, 4, 4)
	x.Fill(0.8)
	samples := []Sample{{Seq: StaticSequence{X: x, T: 4}, Label: 3}}
	enc := EncodeDataset(samples, NewLatencyEncoder(4), 4)
	if enc[0].Label != 3 {
		t.Error("label lost")
	}
	if enc[0].Seq.Steps() != 4 {
		t.Errorf("steps = %d", enc[0].Seq.Steps())
	}
	frame := enc[0].Seq.At(0)
	for _, v := range frame.Data {
		if v != 0 && v != 1 {
			t.Fatal("encoded frames must be binary")
		}
	}
}

func TestEncoderNames(t *testing.T) {
	if NewPoissonEncoder(1, nil).Name() != "poisson-rate" {
		t.Error("poisson name")
	}
	if NewLatencyEncoder(4).Name() != "latency" {
		t.Error("latency name")
	}
}
