package snn

import (
	"fmt"
	"math/rand"

	"falvolt/internal/tensor"
)

// Spike encoders: alternatives to the learned convolutional spike encoder
// for converting static inputs into spike trains. The SNN fault-resilience
// literature (Guo et al., cited by the paper) shows the coding scheme
// changes fault sensitivity, so the encoders are provided for ablation.

// Encoder converts a static frame into a spike sequence of T steps.
type Encoder interface {
	// Encode returns the spike frame for timestep t of the given input.
	Encode(x *tensor.Tensor, t int) *tensor.Tensor
	// Name identifies the coding scheme.
	Name() string
}

// PoissonEncoder implements rate coding: each pixel fires independently
// each timestep with probability proportional to its intensity. Gain
// scales intensities (values are clamped to [0,1] after scaling).
type PoissonEncoder struct {
	Gain float64
	Rng  *rand.Rand
}

// NewPoissonEncoder constructs the encoder (gain 1 if non-positive).
func NewPoissonEncoder(gain float64, rng *rand.Rand) *PoissonEncoder {
	if gain <= 0 {
		gain = 1
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0))
	}
	return &PoissonEncoder{Gain: gain, Rng: rng}
}

// Encode implements Encoder.
func (e *PoissonEncoder) Encode(x *tensor.Tensor, _ int) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		p := float64(v) * e.Gain
		if p > 1 {
			p = 1
		}
		if p > 0 && e.Rng.Float64() < p {
			out.Data[i] = 1
		}
	}
	return out
}

// Name implements Encoder.
func (e *PoissonEncoder) Name() string { return "poisson-rate" }

// LatencyEncoder implements time-to-first-spike coding over a horizon of
// T steps: brighter pixels spike earlier, and each pixel spikes at most
// once. Pixels at or below zero never spike.
type LatencyEncoder struct {
	T int
}

// NewLatencyEncoder constructs the encoder for a horizon of t steps.
func NewLatencyEncoder(t int) *LatencyEncoder {
	if t <= 0 {
		panic(fmt.Sprintf("snn: latency encoder horizon must be positive, got %d", t))
	}
	return &LatencyEncoder{T: t}
}

// spikeStep returns the step at which intensity v (clamped to [0,1])
// fires: step 0 for v = 1, step T-1 for the dimmest firing pixels, -1 for
// non-firing. Linear latency: step = round((1-v)*(T-1)).
func (e *LatencyEncoder) spikeStep(v float32) int {
	if v <= 0 {
		return -1
	}
	if v > 1 {
		v = 1
	}
	return int(float64(1-v)*float64(e.T-1) + 0.5)
}

// Encode implements Encoder.
func (e *LatencyEncoder) Encode(x *tensor.Tensor, t int) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if e.spikeStep(v) == t {
			out.Data[i] = 1
		}
	}
	return out
}

// Name implements Encoder.
func (e *LatencyEncoder) Name() string { return "latency" }

// EncodedSequence adapts an Encoder to the Sequence interface, encoding a
// static frame on the fly at each timestep.
type EncodedSequence struct {
	X   *tensor.Tensor
	Enc Encoder
	T   int
}

// At implements Sequence.
func (s EncodedSequence) At(t int) *tensor.Tensor { return s.Enc.Encode(s.X, t) }

// Steps implements Sequence.
func (s EncodedSequence) Steps() int { return s.T }

// EncodeDataset wraps every sample's static frame with the encoder,
// producing spike-input samples (for coding-scheme ablations).
func EncodeDataset(samples []Sample, enc Encoder, t int) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		out[i] = Sample{
			Seq:   EncodedSequence{X: s.Seq.At(0), Enc: enc, T: t},
			Label: s.Label,
		}
	}
	return out
}
