package snn

import (
	"fmt"

	"falvolt/internal/tensor"
)

// MaxPool2 is non-overlapping 2x2 max pooling. Unlike average pooling it
// is spike-preserving: max of binary spikes is itself binary, so layers
// fed through it keep the multiplier-less systolic path at deployment.
type MaxPool2 struct {
	// Per-timestep argmax caches for gradient routing.
	argmax [][]int
	shapes [][2]int
}

// NewMaxPool2 constructs the pooling layer.
func NewMaxPool2() *MaxPool2 { return &MaxPool2{} }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("snn: MaxPool2 input must be rank 4, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("snn: MaxPool2 needs even spatial dims, got %dx%d", h, w))
	}
	oh, ow := h/2, w/2
	out := tensor.New(n, c, oh, ow)
	var arg []int
	if train {
		arg = make([]int, out.Len())
	}
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			ibase := (b*c + ch) * h * w
			obase := (b*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy, ix := oy*2, ox*2
					idx := ibase + iy*w + ix
					best, bestIdx := x.Data[idx], idx
					for _, cand := range [3]int{idx + 1, idx + w, idx + w + 1} {
						if x.Data[cand] > best {
							best, bestIdx = x.Data[cand], cand
						}
					}
					o := obase + oy*ow + ox
					out.Data[o] = best
					if train {
						arg[o] = bestIdx
					}
				}
			}
		}
	}
	if train {
		p.argmax = append(p.argmax, arg)
		p.shapes = append(p.shapes, [2]int{h, w})
	}
	return out
}

// Backward implements Layer: the gradient routes to the argmax position
// of each window.
func (p *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	arg := p.argmax[len(p.argmax)-1]
	p.argmax = p.argmax[:len(p.argmax)-1]
	hw := p.shapes[len(p.shapes)-1]
	p.shapes = p.shapes[:len(p.shapes)-1]
	n, c := grad.Shape[0], grad.Shape[1]
	out := tensor.New(n, c, hw[0], hw[1])
	for i, g := range grad.Data {
		out.Data[arg[i]] += g
	}
	return out
}

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// CloneInference implements Layer.
func (p *MaxPool2) CloneInference() Layer { return NewMaxPool2() }

// CloneTraining implements Layer.
func (p *MaxPool2) CloneTraining() Layer { return NewMaxPool2() }

// ResetState implements Layer.
func (p *MaxPool2) ResetState() {
	p.argmax = p.argmax[:0]
	p.shapes = p.shapes[:0]
}
