package snn

import (
	"fmt"
	"math"

	"falvolt/internal/tensor"
)

// Loss maps predictions and one-hot targets (both [N, C]) to a scalar loss
// and the gradient of the loss wrt the predictions.
type Loss interface {
	Loss(pred, target *tensor.Tensor) (float64, *tensor.Tensor)
}

// MSERate is the mean-squared error between the output firing rate and the
// one-hot target — the loss the paper trains with ("cross entropy loss
// defined by the mean square error", §IV), standard for rate-coded SNNs.
type MSERate struct{}

// Loss implements Loss.
func (MSERate) Loss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("snn: MSERate shapes %v vs %v", pred.Shape, target.Shape))
	}
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape...)
	var sum float64
	for i := range pred.Data {
		d := float64(pred.Data[i] - target.Data[i])
		sum += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return sum / n, grad
}

// CrossEntropy is softmax cross-entropy over firing rates; provided as an
// alternative training objective.
type CrossEntropy struct{}

// Loss implements Loss.
func (CrossEntropy) Loss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("snn: CrossEntropy shapes %v vs %v", pred.Shape, target.Shape))
	}
	n, c := pred.Shape[0], pred.Shape[1]
	grad := tensor.New(pred.Shape...)
	var total float64
	for b := 0; b < n; b++ {
		row := pred.Data[b*c : (b+1)*c]
		trow := target.Data[b*c : (b+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var z float64
		probs := make([]float64, c)
		for i, v := range row {
			e := math.Exp(float64(v - maxv))
			probs[i] = e
			z += e
		}
		for i := range probs {
			probs[i] /= z
			if trow[i] > 0 {
				total -= float64(trow[i]) * math.Log(math.Max(probs[i], 1e-12))
			}
			grad.Data[b*c+i] = float32((probs[i] - float64(trow[i])) / float64(n))
		}
	}
	return total / float64(n), grad
}

// LossByName resolves a training objective by its spec name: "mse"
// (MSERate, the paper's objective and the default for "") or
// "crossentropy". The set of names is mirrored by spec.TrainLosses so
// the spec layer can validate without importing this package.
func LossByName(name string) (Loss, error) {
	switch name {
	case "", "mse":
		return MSERate{}, nil
	case "crossentropy":
		return CrossEntropy{}, nil
	}
	return nil, fmt.Errorf("snn: unknown loss %q (want mse or crossentropy)", name)
}

// OneHot encodes integer labels as a [N, classes] one-hot tensor.
func OneHot(labels []int, classes int) *tensor.Tensor {
	t := tensor.New(len(labels), classes)
	for i, l := range labels {
		if l < 0 || l >= classes {
			panic(fmt.Sprintf("snn: label %d outside [0,%d)", l, classes))
		}
		t.Data[i*classes+l] = 1
	}
	return t
}

// Accuracy returns the fraction of rows of pred whose argmax matches the
// label.
func Accuracy(pred *tensor.Tensor, labels []int) float64 {
	if pred.Shape[0] != len(labels) {
		panic(fmt.Sprintf("snn: %d predictions vs %d labels", pred.Shape[0], len(labels)))
	}
	correct := 0
	for i, l := range labels {
		if pred.Argmax(i) == l {
			correct++
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return float64(correct) / float64(len(labels))
}
