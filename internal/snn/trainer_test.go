package snn

import (
	"math/rand"
	"testing"

	"falvolt/internal/tensor"
)

// toySamples builds a linearly separable 2-class problem.
func toySamples(n int, rng *rand.Rand) []Sample {
	out := make([]Sample, n)
	for i := range out {
		class := i % 2
		x := tensor.New(1, 6)
		for j := 0; j < 6; j++ {
			base := float32(0.1)
			if (class == 0 && j < 3) || (class == 1 && j >= 3) {
				base = 1.4
			}
			x.Data[j] = base + float32(rng.NormFloat64()*0.05)
		}
		out[i] = Sample{Seq: StaticSequence{X: x, T: 3}, Label: class}
	}
	return out
}

func toyNet(rng *rand.Rand) *Network {
	return NewNetwork(3,
		NewLinear(6, 12, true, rng), NewPLIFNode(DefaultNeuronConfig()),
		NewLinear(12, 2, true, rng), NewPLIFNode(DefaultNeuronConfig()),
	)
}

func TestTrainHooksFire(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := toyNet(rng)
	samples := toySamples(32, rng)
	var steps, epochs int
	var lastLoss float64
	_, err := Train(net, samples, TrainConfig{
		Epochs: 2, BatchSize: 8, LR: 0.01, Classes: 2,
		Rng: rand.New(rand.NewSource(2)),
		Hooks: TrainHooks{
			AfterStep: func() { steps++ },
			AfterEpoch: func(epoch int, loss float64) {
				epochs++
				lastLoss = loss
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 8 { // 32 samples / 8 per batch * 2 epochs
		t.Errorf("AfterStep fired %d times, want 8", steps)
	}
	if epochs != 2 {
		t.Errorf("AfterEpoch fired %d times, want 2", epochs)
	}
	if lastLoss <= 0 {
		t.Errorf("epoch loss %v should be positive", lastLoss)
	}
}

func TestTrainRejectsEmptyData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := toyNet(rng)
	if _, err := Train(net, nil, TrainConfig{Epochs: 1, BatchSize: 4, LR: 0.1, Classes: 2}); err == nil {
		t.Error("training with no samples should error")
	}
}

func TestTrainZeroEpochsIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := toyNet(rng)
	samples := toySamples(8, rng)
	before := net.Params()[0].Value.Clone()
	if _, err := Train(net, samples, TrainConfig{
		Epochs: 0, BatchSize: 4, LR: 0.1, Classes: 2,
	}); err != nil {
		t.Fatal(err)
	}
	after := net.Params()[0].Value
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("zero epochs must not modify weights")
		}
	}
}

func TestEvaluatePartialBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := toyNet(rng)
	samples := toySamples(10, rng) // not divisible by batch size
	acc := Evaluate(net, samples, 4)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %v out of range", acc)
	}
	if got := Evaluate(net, nil, 4); got != 0 {
		t.Errorf("empty evaluation should be 0, got %v", got)
	}
	// Default batch size path.
	if acc2 := Evaluate(net, samples, 0); acc2 != acc {
		t.Errorf("default batch size changed accuracy: %v vs %v", acc2, acc)
	}
}

func TestTrainConvergesOnToy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := toyNet(rng)
	samples := toySamples(48, rng)
	if _, err := Train(net, samples, TrainConfig{
		Epochs: 10, BatchSize: 8, LR: 0.02, Classes: 2, ClipNorm: 5,
		Rng: rand.New(rand.NewSource(7)),
	}); err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(net, samples, 16); acc < 0.9 {
		t.Errorf("toy accuracy %v, want >= 0.9", acc)
	}
}

func TestMakeBatchMixedLengthEventSequences(t *testing.T) {
	f := func(v float32) *tensor.Tensor {
		x := tensor.New(1, 1, 2, 2)
		x.Fill(v)
		return x
	}
	short := EventSequence{Frames: []*tensor.Tensor{f(1)}}
	long := EventSequence{Frames: []*tensor.Tensor{f(2), f(3)}}
	seq, _ := MakeBatch([]Sample{{Seq: short, Label: 0}, {Seq: long, Label: 1}})
	if seq.Steps() != 2 {
		t.Fatalf("batch steps = %d, want max(1,2) = 2", seq.Steps())
	}
	// At t=1 the short sequence repeats its last frame.
	b := seq.At(1)
	if b.Data[0] != 1 || b.Data[4] != 3 {
		t.Errorf("t=1 batch = %v, want short-repeat then long[1]", b.Data[:8])
	}
}
