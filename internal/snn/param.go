// Package snn is a from-scratch spiking-neural-network framework with
// surrogate-gradient backpropagation through time (BPTT). It provides the
// PLIF-SNN architectures of the paper — convolution, batch normalization,
// average pooling, dropout, fully-connected layers and parametric
// leaky-integrate-and-fire (PLIF) neurons with a learnable per-layer
// threshold voltage — plus optimizers, losses and a training loop.
//
// Layers are stateful across a simulated sequence of T timesteps: Forward
// is called once per timestep (caching what the backward pass needs) and
// Backward is called T times in reverse order. ResetState clears membrane
// potentials and caches between sequences.
package snn

import (
	"fmt"

	"falvolt/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a named parameter with a zero gradient of equal shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// String implements fmt.Stringer.
func (p *Param) String() string {
	return fmt.Sprintf("Param(%s %v)", p.Name, p.Value.Shape)
}

// Layer is one stage of an SNN executed over T timesteps.
//
// The contract: within one sequence, Forward is invoked exactly T times
// (t = 0..T-1) and then Backward exactly T times in reverse (t = T-1..0).
// Each Forward pushes whatever it needs onto an internal cache stack; each
// Backward pops. ResetState must drop all caches and recurrent state.
type Layer interface {
	// Forward maps this timestep's input to output. train enables
	// training-only behaviour (dropout masks, batch statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward maps the gradient wrt this timestep's output to the
	// gradient wrt its input, accumulating parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
	// ResetState clears membrane potentials, dropout masks and caches.
	ResetState()
	// CloneInference returns a replica for concurrent inference: it
	// shares parameters (weights, thresholds, running statistics,
	// deployments) with the receiver but owns private recurrent state
	// and caches. Concurrent Forward(train=false) calls on distinct
	// clones are safe; training a clone is not supported.
	CloneInference() Layer
}

// cacheStack is a helper for per-timestep tensors pushed during forward
// and popped in reverse during backward.
type cacheStack struct{ items []*tensor.Tensor }

func (s *cacheStack) push(t *tensor.Tensor) { s.items = append(s.items, t) }

func (s *cacheStack) pop() *tensor.Tensor {
	if len(s.items) == 0 {
		panic("snn: backward called more times than forward (cache underflow)")
	}
	t := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return t
}

func (s *cacheStack) reset() { s.items = s.items[:0] }

func (s *cacheStack) depth() int { return len(s.items) }
