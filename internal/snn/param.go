// Package snn is a from-scratch spiking-neural-network framework with
// surrogate-gradient backpropagation through time (BPTT). It provides the
// PLIF-SNN architectures of the paper — convolution, batch normalization,
// average pooling, dropout, fully-connected layers and parametric
// leaky-integrate-and-fire (PLIF) neurons with a learnable per-layer
// threshold voltage — plus optimizers, losses and a training loop.
//
// Layers are stateful across a simulated sequence of T timesteps: Forward
// is called once per timestep (caching what the backward pass needs) and
// Backward is called T times in reverse order. ResetState clears membrane
// potentials and caches between sequences.
//
// Training runs either as the classic serial mini-batch loop or on the
// data-parallel replica engine (TrainConfig.Replicas/MicroBatch): each
// global batch is split into fixed micro-batches trained on replicas
// that share parameter values but hold private gradients
// (Layer.CloneTraining), and the per-replica gradients are reduced in
// micro-batch index order before each optimizer step — so trained
// weights are bit-identical at any replica count on any engine. See
// trainer.go for the engine and replica_test.go for the enforced
// contract.
package snn

import (
	"fmt"

	"falvolt/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a named parameter with a zero gradient of equal shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// shadowParam returns a parameter that shares p's value tensor but owns a
// private, zeroed gradient accumulator — the training-replica seam: every
// replica reads the same live weights while accumulating gradients
// independently, so the trainer can reduce them in a deterministic order.
func shadowParam(p *Param) *Param {
	if p == nil {
		return nil
	}
	return &Param{Name: p.Name, Value: p.Value, Grad: tensor.New(p.Value.Shape...)}
}

// String implements fmt.Stringer.
func (p *Param) String() string {
	return fmt.Sprintf("Param(%s %v)", p.Name, p.Value.Shape)
}

// Layer is one stage of an SNN executed over T timesteps.
//
// The contract: within one sequence, Forward is invoked exactly T times
// (t = 0..T-1) and then Backward exactly T times in reverse (t = T-1..0).
// Each Forward pushes whatever it needs onto an internal cache stack; each
// Backward pops. ResetState must drop all caches and recurrent state.
type Layer interface {
	// Forward maps this timestep's input to output. train enables
	// training-only behaviour (dropout masks, batch statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward maps the gradient wrt this timestep's output to the
	// gradient wrt its input, accumulating parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
	// ResetState clears membrane potentials, dropout masks and caches.
	ResetState()
	// CloneInference returns a replica for concurrent inference: it
	// shares parameters (weights, thresholds, running statistics,
	// deployments) with the receiver but owns private recurrent state
	// and caches. Concurrent Forward(train=false) calls on distinct
	// clones are safe; training a clone is not supported.
	CloneInference() Layer
	// CloneTraining returns a replica for concurrent training: it shares
	// parameter *values* with the receiver but owns private gradient
	// accumulators (see shadowParam), private recurrent state and caches,
	// and never mutates shared mutable state (batch-norm running
	// statistics are logged for ordered replay instead of updated in
	// place; systolic deployments are dropped — the training path never
	// uses them). Concurrent Forward(train=true)/Backward on distinct
	// clones are safe; the trainer harvests each clone's gradients and
	// reduces them into the primary network in micro-batch index order.
	CloneTraining() Layer
}

// cacheStack is a helper for per-timestep tensors pushed during forward
// and popped in reverse during backward.
type cacheStack struct{ items []*tensor.Tensor }

func (s *cacheStack) push(t *tensor.Tensor) { s.items = append(s.items, t) }

func (s *cacheStack) pop() *tensor.Tensor {
	if len(s.items) == 0 {
		panic("snn: backward called more times than forward (cache underflow)")
	}
	t := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return t
}

func (s *cacheStack) reset() { s.items = s.items[:0] }

func (s *cacheStack) depth() int { return len(s.items) }
