package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
)

// DefaultPoll is the idle poll / retry interval when WorkerConfig.Poll
// is 0.
const DefaultPoll = 500 * time.Millisecond

// defaultRetries bounds consecutive transport failures (coordinator not
// yet listening at startup, restarting mid-campaign) before the worker
// gives up.
const defaultRetries = 60

// heartbeatMisses is how many consecutive failed heartbeats a worker
// tolerates before treating its lease as lost.
const heartbeatMisses = 3

// errLeaseLost marks a shard abandoned because the coordinator revoked
// or expired the lease; the worker returns to the lease loop.
var errLeaseLost = errors.New("cluster: lease lost")

// errPush tags a failed result upload. Unlike a trial failure it is not
// deterministic — the coordinator may be restarting or the network
// flaky — so the worker abandons the shard (keeping its local
// checkpoint) and rejoins the lease loop, whose retry budget decides
// whether the coordinator is truly gone. It must never abort the whole
// campaign via TrialErr.
var errPush = errors.New("cluster: pushing results failed")

// errLocal tags a local checkpoint write failure (disk full,
// permissions): fatal to THIS worker, but not a reason to abort the
// campaign — the lease expires and another worker takes the shard.
var errLocal = errors.New("cluster: local checkpoint write failed")

// errCampaignDone is runShard's signal that the campaign completed
// (observed via heartbeat) while the shard was running; the worker
// exits cleanly without another lease round-trip.
var errCampaignDone = errors.New("cluster: campaign completed")

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:9090").
	Coordinator string
	// Name is the worker's display name (default "host-pid").
	Name string
	// Runner executes leased trials locally (nil selects
	// campaign.PoolRunner on the process-default engine).
	Runner campaign.Runner
	// CheckpointDir, when non-empty, keeps one local JSONL checkpoint
	// per leased shard: a restarted worker that is re-granted a shard
	// resumes from disk and streams the completed records instead of
	// re-running them.
	CheckpointDir string
	// CacheDir persists trained baselines between runs; it is passed to
	// the spec builder (execution-local, never affects results).
	CacheDir string
	// Build constructs the campaign from the spec the coordinator ships
	// at registration. Nil selects spec.Build with this worker's
	// CacheDir and Log — the production path. Tests inject wrappers
	// (trial counters, simulated deaths) here.
	Build func(s *spec.Spec) (*spec.Built, error)
	// Poll is the idle poll and retry interval (0 = DefaultPoll).
	Poll time.Duration
	// Retries bounds consecutive transport failures before giving up
	// (0 = a built-in default generous enough for a coordinator that
	// starts after its workers).
	Retries int
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// Worker executes shards of a campaign leased from a coordinator. It
// needs no campaign configuration of its own: registration hands it the
// coordinator's canonical experiment spec, and it builds the campaign
// from those bytes (expensive resources like trained baselines still
// load lazily on first trial). A worker therefore cannot be
// misconfigured relative to its coordinator.
type Worker struct {
	cfg WorkerConfig
	cl  *client
}

// NewWorker builds a worker daemon for one coordinator.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Runner == nil {
		cfg.Runner = campaign.PoolRunner{}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Retries <= 0 {
		cfg.Retries = defaultRetries
	}
	return &Worker{cfg: cfg, cl: newClient(cfg.Coordinator)}
}

// Run registers with the coordinator, builds the campaign from the
// spec received at registration, and processes shard leases until the
// campaign completes (nil), fails, or ctx is cancelled. A coordinator
// restart (the worker's ID is rejected as unknown) triggers
// re-registration: the worker keeps its built campaign — the restarted
// coordinator must ship a spec with the same fingerprint — and resumes
// from its local checkpoints under the fresh worker ID.
func (w *Worker) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workerID, ttl, sp, err := w.register(ctx)
	if err != nil {
		return err
	}
	fp, err := sp.Fingerprint()
	if err != nil {
		return fmt.Errorf("cluster: fingerprint received spec: %w", err)
	}
	build := w.cfg.Build
	if build == nil {
		build = func(s *spec.Spec) (*spec.Built, error) {
			return spec.Build(s, spec.BuildOpts{CacheDir: w.cfg.CacheDir, Log: w.cfg.Log})
		}
	}
	built, err := build(sp)
	if err != nil {
		return fmt.Errorf("cluster: build campaign from coordinator spec: %w", err)
	}
	c := built.Campaign
	info, err := InfoOf(c)
	if err != nil {
		return err
	}
	hbEvery := ttl / 3
	if hbEvery <= 0 {
		hbEvery = w.cfg.Poll
	}
	w.logf("worker %s: registered for campaign %s (%d trials), heartbeat every %v\n",
		workerID, info.Campaign, info.Trials, hbEvery)

	fails := 0
	reregs := 0
	for {
		if err := sleepCtx(ctx, 0); err != nil {
			return err
		}
		lr, err := w.cl.lease(LeaseRequest{WorkerID: workerID})
		if err != nil {
			var se *statusError
			if errors.As(err, &se) && se.code == http.StatusForbidden {
				// "unknown worker": the coordinator restarted and its
				// worker table is gone. Re-register — refusing to switch
				// experiments mid-run — and rejoin the queue; leased
				// shards resume from the local checkpoints. Consecutive
				// re-registrations (reset by any successful lease call)
				// share the transport retry budget, so a crash-looping
				// coordinator fails its workers instead of spinning them
				// forever.
				reregs++
				if reregs > w.cfg.Retries {
					return fmt.Errorf("cluster: coordinator rejected this worker %d times in a row; giving up", reregs)
				}
				if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
					return err
				}
				newID, newTTL, sp2, rerr := w.register(ctx)
				if rerr != nil {
					return fmt.Errorf("cluster: re-register after coordinator restart: %w", rerr)
				}
				fp2, rerr := sp2.Fingerprint()
				if rerr != nil {
					return fmt.Errorf("cluster: fingerprint re-received spec: %w", rerr)
				}
				if fp2 != fp {
					return fmt.Errorf("cluster: restarted coordinator serves spec %s, but this worker joined for %s", fp2, fp)
				}
				workerID = newID
				if newTTL/3 > 0 {
					hbEvery = newTTL / 3
				}
				w.logf("worker %s: re-registered after coordinator restart\n", workerID)
				continue
			}
			if errors.As(err, &se) && se.code != http.StatusServiceUnavailable {
				return err // deliberate rejection, not a transient fault
			}
			// Transport failures AND 503 "shutting down" are transient: a
			// restarting coordinator answers 503 during its shutdown
			// grace, and treating that as fatal would turn every
			// restart into a timing lottery for its workers.
			fails++
			if fails > w.cfg.Retries {
				return fmt.Errorf("cluster: coordinator unreachable after %d attempts: %w", fails, err)
			}
			if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
				return err
			}
			continue
		}
		fails, reregs = 0, 0
		switch lr.Status {
		case StatusDone:
			w.logf("worker %s: campaign complete\n", workerID)
			return nil
		case StatusFailed:
			return fmt.Errorf("cluster: campaign failed at coordinator: %s", lr.Error)
		case StatusWait:
			if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
				return err
			}
		case StatusLease:
			err := w.runShard(ctx, c, info, workerID, hbEvery, lr)
			switch {
			case errors.Is(err, errLeaseLost):
				w.logf("worker %s: lease %s lost; rejoining the queue\n", workerID, lr.LeaseID)
			case errors.Is(err, errCampaignDone):
				w.logf("worker %s: campaign completed elsewhere; exiting\n", workerID)
				return nil
			case err != nil:
				return err
			}
		default:
			return fmt.Errorf("cluster: coordinator sent unknown lease status %q", lr.Status)
		}
	}
}

// register enrolls the worker — retrying transport failures so workers
// may start before their coordinator listens — and returns the
// experiment spec the coordinator shipped, verified against its
// fingerprint.
func (w *Worker) register(ctx context.Context) (string, time.Duration, *spec.Spec, error) {
	req := RegisterRequest{Worker: w.cfg.Name, Proto: protocolVersion}
	for attempt := 1; ; attempt++ {
		resp, err := w.cl.register(req)
		if err == nil {
			sp, err := spec.Decode(resp.Spec)
			if err != nil {
				return "", 0, nil, fmt.Errorf("cluster: coordinator shipped an unreadable spec: %w", err)
			}
			fp, err := sp.Fingerprint()
			if err != nil {
				return "", 0, nil, fmt.Errorf("cluster: fingerprint received spec: %w", err)
			}
			if resp.Fingerprint != "" && fp != resp.Fingerprint {
				return "", 0, nil, fmt.Errorf("cluster: received spec fingerprint %s does not match coordinator's %s", fp, resp.Fingerprint)
			}
			return resp.WorkerID, time.Duration(resp.LeaseTTLMillis) * time.Millisecond, sp, nil
		}
		var se *statusError
		if errors.As(err, &se) {
			return "", 0, nil, err // protocol mismatch or malformed request
		}
		if attempt > w.cfg.Retries {
			return "", 0, nil, fmt.Errorf("cluster: register failed after %d attempts: %w", attempt, err)
		}
		if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
			return "", 0, nil, err
		}
	}
}

// runShard executes one leased shard: resume from the local checkpoint,
// run the pending trials on the local runner, stream each result back,
// heartbeat until done.
func (w *Worker) runShard(ctx context.Context, c campaign.Campaign, info CampaignInfo,
	workerID string, hbEvery time.Duration, lr LeaseResponse) error {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Local shard checkpoint: resume completed trials from disk and
	// stream them to the coordinator (it deduplicates).
	done := make(map[int]bool)
	var ckpt *campaign.Checkpoint
	if w.cfg.CheckpointDir != "" {
		var err error
		ckpt, done, err = w.openShardCheckpoint(c, info, workerID, lr)
		if err != nil {
			if errors.Is(err, errPush) {
				// Streaming the resumed records failed transiently;
				// abandon the lease and retry from the loop like any
				// other push failure.
				w.logf("worker %s: shard %s: %v\n", workerID, lr.Shard, err)
				return errLeaseLost
			}
			return err
		}
		defer ckpt.Close()
	}
	var pending []campaign.Trial
	for _, t := range lr.Trials {
		if !done[t.ID] {
			pending = append(pending, t)
		}
	}
	w.logf("worker %s: leased shard %s: %d trials, %d resumed locally\n",
		workerID, lr.Shard, len(lr.Trials), len(lr.Trials)-len(pending))

	// Heartbeat until the shard run finishes (the deferred cancel stops
	// the goroutine). A revoked lease cancels the shard context, which
	// aborts the runner promptly; a terminal campaign status observed
	// on the heartbeat (failed/done elsewhere in the fleet) does the
	// same and is remembered, so the worker reports the real outcome
	// instead of burning its retry budget against a dead socket.
	var terminal atomic.Value // string: StatusFailed or StatusDone
	go func() {
		ticker := time.NewTicker(hbEvery)
		defer ticker.Stop()
		misses := 0
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-ticker.C:
			}
			resp, err := w.cl.heartbeat(HeartbeatRequest{WorkerID: workerID, LeaseID: lr.LeaseID})
			switch {
			case err != nil:
				misses++
				if misses >= heartbeatMisses {
					cancel()
					return
				}
			case resp.Status == StatusFailed || resp.Status == StatusDone:
				terminal.Store(resp.Status)
				cancel()
				return
			case !resp.OK:
				cancel()
				return
			default:
				misses = 0
			}
		}
	}()

	// One POST per trial keeps progress reporting and durability simple;
	// real campaign trials cost seconds to minutes of SNN compute, so
	// the round-trip is noise (micro-batching is the lever if trials
	// ever get RTT-bound).
	sink := func(r campaign.Result) error {
		if ckpt != nil {
			if err := ckpt.Append(r); err != nil {
				return fmt.Errorf("%w: %v", errLocal, err)
			}
		}
		if _, err := w.cl.results(ResultsRequest{
			WorkerID: workerID, LeaseID: lr.LeaseID,
			Results: []campaign.Result{r}, Wall: []float64{r.Wall},
		}); err != nil {
			return fmt.Errorf("%w: %v", errPush, err)
		}
		w.logf("worker %s: shard %s: trial %d (%s) done\n", workerID, lr.Shard, r.TrialID, r.Key)
		return nil
	}
	err := w.cfg.Runner.Run(shardCtx, c, pending, sink)
	if st, _ := terminal.Load().(string); st != "" && ctx.Err() == nil {
		// The fleet finished (or failed) while this shard ran; report
		// the observed outcome directly instead of polling a
		// coordinator that may already be gone.
		if st == StatusFailed {
			return fmt.Errorf("cluster: campaign failed at coordinator (observed via heartbeat)")
		}
		return errCampaignDone
	}
	switch {
	case err == nil:
		w.logf("worker %s: shard %s complete\n", workerID, lr.Shard)
		return nil
	case shardCtx.Err() != nil && ctx.Err() == nil:
		return errLeaseLost
	case ctx.Err() != nil:
		return err
	case errors.Is(err, errPush):
		// Transient upload failure, not a bad trial: the completed
		// results survive in the local checkpoint; rejoin the lease
		// loop, whose retry budget decides if the coordinator is gone.
		w.logf("worker %s: shard %s: %v\n", workerID, lr.Shard, err)
		return errLeaseLost
	case errors.Is(err, errLocal):
		// This worker can no longer checkpoint durably; let it die
		// without aborting the campaign — the lease will expire and the
		// shard will be reassigned.
		return err
	default:
		// A deterministic trial (or worker-construction) failure:
		// another worker would fail the same way, so tell the
		// coordinator to abort the campaign (best effort).
		w.cl.results(ResultsRequest{WorkerID: workerID, LeaseID: lr.LeaseID, TrialErr: err.Error()})
		return err
	}
}

// openShardCheckpoint opens (or creates) the local checkpoint for a
// leased shard, returning the writer, the completed trial IDs, and —
// when resuming — streaming the completed records to the coordinator.
func (w *Worker) openShardCheckpoint(c campaign.Campaign, info CampaignInfo,
	workerID string, lr LeaseResponse) (*campaign.Checkpoint, map[int]bool, error) {
	shard, err := campaign.ParseShard(lr.Shard)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: coordinator sent bad shard label %q: %w", lr.Shard, err)
	}
	header := campaign.NewHeader(c, info.Trials, shard)
	path := filepath.Join(w.cfg.CheckpointDir, shardFileName(info.Campaign, lr.Shard))
	done := make(map[int]bool)
	if _, err := os.Stat(path); err == nil {
		prev, results, err := campaign.ReadCheckpoint(path)
		if err != nil {
			return nil, nil, err
		}
		if !prev.Compatible(header) || prev.Shard != header.Shard {
			return nil, nil, fmt.Errorf("cluster: local checkpoint %s is from a different campaign, configuration or shard", path)
		}
		if len(results) > 0 {
			walls := make([]float64, len(results))
			for i, r := range results {
				walls[i] = r.Wall
			}
			if _, err := w.cl.results(ResultsRequest{
				WorkerID: workerID, LeaseID: lr.LeaseID, Results: results, Wall: walls,
			}); err != nil {
				return nil, nil, fmt.Errorf("%w: %v", errPush, err)
			}
			w.logf("worker %s: shard %s: streamed %d checkpointed results\n", workerID, lr.Shard, len(results))
		}
		for _, r := range results {
			done[r.TrialID] = true
		}
		ckpt, err := campaign.OpenCheckpointAppend(path)
		return ckpt, done, err
	}
	if err := os.MkdirAll(w.cfg.CheckpointDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
	}
	ckpt, err := campaign.CreateCheckpoint(path, header)
	return ckpt, done, err
}

// shardFileName renders the local checkpoint filename for a shard
// ("yield-shard3of8.jsonl").
func shardFileName(name, shard string) string {
	return fmt.Sprintf("%s-shard%s.jsonl", name, strings.ReplaceAll(shard, "/", "of"))
}

// sleepCtx waits d (or just checks cancellation when d is 0).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		fmt.Fprintf(w.cfg.Log, format, args...)
	}
}
