package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
)

// DefaultPoll is the idle poll / retry interval when WorkerConfig.Poll
// is 0.
const DefaultPoll = 500 * time.Millisecond

// defaultRetries bounds consecutive transport failures (coordinator not
// yet listening at startup, restarting mid-campaign) before the worker
// gives up.
const defaultRetries = 60

// heartbeatMisses is how many consecutive failed heartbeats a worker
// tolerates before treating its lease as lost.
const heartbeatMisses = 3

// errLeaseLost marks a shard abandoned because the coordinator revoked
// or expired the lease; the worker returns to the lease loop.
var errLeaseLost = errors.New("cluster: lease lost")

// errPush tags a failed result upload. Unlike a trial failure it is not
// deterministic — the coordinator may be restarting or the network
// flaky — so the worker abandons the shard (keeping its local
// checkpoint) and rejoins the lease loop, whose retry budget decides
// whether the coordinator is truly gone. It must never abort the whole
// campaign via TrialErr.
var errPush = errors.New("cluster: pushing results failed")

// errLocal tags a local checkpoint write failure (disk full,
// permissions): fatal to THIS worker, but not a reason to abort the
// campaign — the lease expires and another worker takes the shard.
var errLocal = errors.New("cluster: local checkpoint write failed")

// errCampaignDone is runShard's signal that the campaign completed
// (observed via heartbeat) while the shard was running; the worker
// exits cleanly without another lease round-trip.
var errCampaignDone = errors.New("cluster: campaign completed")

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:9090").
	Coordinator string
	// Token is the bearer credential sent on every request. Campaign
	// services (internal/service) require one; single-run coordinators
	// ignore it.
	Token string
	// Name is the worker's display name (default "host-pid").
	Name string
	// Runner executes leased trials locally (nil selects
	// campaign.PoolRunner on the process-default engine).
	Runner campaign.Runner
	// CheckpointDir, when non-empty, keeps one local JSONL checkpoint
	// per leased shard: a restarted worker that is re-granted a shard
	// resumes from disk and streams the completed records instead of
	// re-running them.
	CheckpointDir string
	// CacheDir persists trained baselines between runs; it is passed to
	// the spec builder (execution-local, never affects results).
	CacheDir string
	// TLSCA, when non-empty, is a PEM CA bundle HTTPS connections verify
	// against instead of the system roots — for an https:// coordinator
	// served with a privately-issued certificate.
	TLSCA string
	// Build constructs the campaign from the spec the coordinator ships
	// at registration. Nil selects spec.Build with this worker's
	// CacheDir and Log — the production path. Tests inject wrappers
	// (trial counters, simulated deaths) here.
	Build func(s *spec.Spec) (*spec.Built, error)
	// Poll is the idle poll and retry interval (0 = DefaultPoll).
	Poll time.Duration
	// Retries bounds consecutive transport failures before giving up
	// (0 = a built-in default generous enough for a coordinator that
	// starts after its workers).
	Retries int
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// Worker executes shards of a campaign leased from a coordinator. It
// needs no campaign configuration of its own: registration hands it the
// coordinator's canonical experiment spec, and it builds the campaign
// from those bytes (expensive resources like trained baselines still
// load lazily on first trial). A worker therefore cannot be
// misconfigured relative to its coordinator.
type Worker struct {
	cfg WorkerConfig
	cl  *client
}

// NewWorker builds a worker daemon for one coordinator.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Runner == nil {
		cfg.Runner = campaign.PoolRunner{}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Retries <= 0 {
		cfg.Retries = defaultRetries
	}
	return &Worker{cfg: cfg, cl: newClient(cfg.Coordinator, cfg.Token, cfg.TLSCA)}
}

// Run registers with the coordinator and processes shard leases until
// the work is over or ctx is cancelled. Against a single-run
// coordinator it builds the campaign from the spec received at
// registration and exits when that campaign completes (nil) or fails.
// Against a campaign service (RegisterResponse.Service) it serves MANY
// runs — each lease grant carries its run's spec, campaigns are built
// once per distinct fingerprint — and exits only on a drain directive
// or cancellation. A coordinator restart (the worker's ID is rejected
// as unknown) triggers re-registration; leased shards resume from the
// local checkpoints.
func (w *Worker) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := w.register(ctx)
	if err != nil {
		return err
	}
	hbEvery := time.Duration(resp.LeaseTTLMillis) * time.Millisecond / 3
	if hbEvery <= 0 {
		hbEvery = w.cfg.Poll
	}
	if resp.Service {
		return w.serviceLoop(ctx, resp.WorkerID, hbEvery)
	}
	return w.singleLoop(ctx, resp, hbEvery)
}

// buildFunc resolves the campaign builder (cfg.Build, or spec.Build
// with this worker's cache/log — the production path).
func (w *Worker) buildFunc() func(s *spec.Spec) (*spec.Built, error) {
	if w.cfg.Build != nil {
		return w.cfg.Build
	}
	return func(s *spec.Spec) (*spec.Built, error) {
		return spec.Build(s, spec.BuildOpts{CacheDir: w.cfg.CacheDir, Log: w.cfg.Log})
	}
}

// decodeShipped decodes and fingerprint-verifies a spec payload
// received from the coordinator (registration or lease grant).
func decodeShipped(raw []byte, wantFP string) (*spec.Spec, string, error) {
	sp, err := spec.Decode(raw)
	if err != nil {
		return nil, "", fmt.Errorf("cluster: coordinator shipped an unreadable spec: %w", err)
	}
	fp, err := sp.Fingerprint()
	if err != nil {
		return nil, "", fmt.Errorf("cluster: fingerprint received spec: %w", err)
	}
	if wantFP != "" && fp != wantFP {
		return nil, "", fmt.Errorf("cluster: received spec fingerprint %s does not match coordinator's %s", fp, wantFP)
	}
	return sp, fp, nil
}

// singleLoop is the classic one-campaign worker life: build the
// registration spec, lease shards until the campaign is over.
func (w *Worker) singleLoop(ctx context.Context, reg RegisterResponse, hbEvery time.Duration) error {
	workerID := reg.WorkerID
	sp, fp, err := decodeShipped(reg.Spec, reg.Fingerprint)
	if err != nil {
		return err
	}
	built, err := w.buildFunc()(sp)
	if err != nil {
		return fmt.Errorf("cluster: build campaign from coordinator spec: %w", err)
	}
	c := built.Campaign
	info, err := InfoOf(c)
	if err != nil {
		return err
	}
	w.logf("worker %s: registered for campaign %s (%d trials), heartbeat every %v\n",
		workerID, info.Campaign, info.Trials, hbEvery)

	fails := 0
	reregs := 0
	for {
		if err := sleepCtx(ctx, 0); err != nil {
			return err
		}
		lr, err := w.cl.lease(LeaseRequest{WorkerID: workerID})
		if err != nil {
			var se *statusError
			if errors.As(err, &se) && se.code == http.StatusForbidden {
				// "unknown worker": the coordinator restarted and its
				// worker table is gone. Re-register — refusing to switch
				// experiments mid-run — and rejoin the queue; leased
				// shards resume from the local checkpoints. Consecutive
				// re-registrations (reset by any successful lease call)
				// share the transport retry budget, so a crash-looping
				// coordinator fails its workers instead of spinning them
				// forever.
				reregs++
				if reregs > w.cfg.Retries {
					return fmt.Errorf("cluster: coordinator rejected this worker %d times in a row; giving up", reregs)
				}
				if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
					return err
				}
				resp, rerr := w.register(ctx)
				if rerr != nil {
					return fmt.Errorf("cluster: re-register after coordinator restart: %w", rerr)
				}
				if resp.Service {
					return fmt.Errorf("cluster: coordinator at %s restarted as a campaign service; restart this worker against it", w.cfg.Coordinator)
				}
				if _, fp2, rerr := decodeShipped(resp.Spec, resp.Fingerprint); rerr != nil {
					return fmt.Errorf("cluster: re-register after coordinator restart: %w", rerr)
				} else if fp2 != fp {
					return fmt.Errorf("cluster: restarted coordinator serves spec %s, but this worker joined for %s", fp2, fp)
				}
				workerID = resp.WorkerID
				if d := time.Duration(resp.LeaseTTLMillis) * time.Millisecond / 3; d > 0 {
					hbEvery = d
				}
				w.logf("worker %s: re-registered after coordinator restart\n", workerID)
				continue
			}
			if errors.As(err, &se) && se.code != http.StatusServiceUnavailable {
				return err // deliberate rejection, not a transient fault
			}
			// Transport failures AND 503 "shutting down" are transient: a
			// restarting coordinator answers 503 during its shutdown
			// grace, and treating that as fatal would turn every
			// restart into a timing lottery for its workers.
			fails++
			if fails > w.cfg.Retries {
				return fmt.Errorf("cluster: coordinator unreachable after %d attempts: %w", fails, err)
			}
			if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
				return err
			}
			continue
		}
		fails, reregs = 0, 0
		switch lr.Status {
		case StatusDone:
			w.logf("worker %s: campaign complete\n", workerID)
			return nil
		case StatusFailed:
			return fmt.Errorf("cluster: campaign failed at coordinator: %s", lr.Error)
		case StatusWait:
			if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
				return err
			}
		case StatusLease:
			env := shardEnv{c: c, info: info, ckptName: info.Campaign}
			err := w.runShard(ctx, env, workerID, hbEvery, lr)
			switch {
			case errors.Is(err, errLeaseLost):
				w.logf("worker %s: lease %s lost; rejoining the queue\n", workerID, lr.LeaseID)
			case errors.Is(err, errCampaignDone):
				w.logf("worker %s: campaign completed elsewhere; exiting\n", workerID)
				return nil
			case err != nil:
				return err
			}
		default:
			return fmt.Errorf("cluster: coordinator sent unknown lease status %q", lr.Status)
		}
	}
}

// serviceLoop is the multi-run worker life against a campaign service:
// lease shards of whatever run the service schedules, building (and
// caching) one campaign per distinct spec fingerprint. Individual runs
// finishing, failing or being cancelled never stop the worker; only a
// drain directive (graceful scale-down), an unrecoverable local fault,
// or ctx cancellation do.
func (w *Worker) serviceLoop(ctx context.Context, workerID string, hbEvery time.Duration) error {
	w.logf("worker %s: registered with campaign service, heartbeat every %v\n", workerID, hbEvery)
	build := w.buildFunc()
	type cached struct {
		c    campaign.Campaign
		info CampaignInfo
	}
	builds := make(map[string]*cached) // spec fingerprint -> built campaign
	var drain atomic.Bool              // set by a heartbeat drain directive mid-shard
	fails, reregs := 0, 0
	for {
		if drain.Load() {
			w.logf("worker %s: drained; exiting\n", workerID)
			return nil
		}
		if err := sleepCtx(ctx, 0); err != nil {
			return err
		}
		lr, err := w.cl.lease(LeaseRequest{WorkerID: workerID})
		if err != nil {
			var se *statusError
			if errors.As(err, &se) && se.code == http.StatusForbidden {
				// The service restarted and lost its worker table (or this
				// worker's registration aged out): re-register. Built
				// campaigns are keyed by spec fingerprint, not worker ID,
				// so the cache survives.
				reregs++
				if reregs > w.cfg.Retries {
					return fmt.Errorf("cluster: service rejected this worker %d times in a row; giving up", reregs)
				}
				if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
					return err
				}
				resp, rerr := w.register(ctx)
				if rerr != nil {
					return fmt.Errorf("cluster: re-register after service restart: %w", rerr)
				}
				if !resp.Service {
					return fmt.Errorf("cluster: coordinator at %s is no longer a campaign service; restart this worker against it", w.cfg.Coordinator)
				}
				workerID = resp.WorkerID
				if d := time.Duration(resp.LeaseTTLMillis) * time.Millisecond / 3; d > 0 {
					hbEvery = d
				}
				w.logf("worker %s: re-registered after service restart\n", workerID)
				continue
			}
			if errors.As(err, &se) && se.code != http.StatusServiceUnavailable {
				return err
			}
			fails++
			if fails > w.cfg.Retries {
				return fmt.Errorf("cluster: service unreachable after %d attempts: %w", fails, err)
			}
			if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
				return err
			}
			continue
		}
		fails, reregs = 0, 0
		if lr.Drain {
			// Idle-side drain: no shard in flight, exit immediately.
			w.logf("worker %s: drain directive received; exiting\n", workerID)
			return nil
		}
		switch lr.Status {
		case StatusWait:
			if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
				return err
			}
		case StatusDone:
			w.logf("worker %s: service closed its queue; exiting\n", workerID)
			return nil
		case StatusFailed:
			return fmt.Errorf("cluster: campaign service failed: %s", lr.Error)
		case StatusLease:
			br, ok := builds[lr.Fingerprint]
			if !ok {
				sp, _, err := decodeShipped(lr.Spec, lr.Fingerprint)
				var built *spec.Built
				if err == nil {
					built, err = build(sp)
				}
				var info CampaignInfo
				if err == nil {
					info, err = InfoOf(built.Campaign)
				}
				if err != nil {
					// A spec that will not build is deterministically broken
					// for every worker: fail THAT RUN (routed by RunID) and
					// keep serving the rest of the catalog.
					w.logf("worker %s: run %s: %v\n", workerID, lr.RunID, err)
					w.cl.results(ResultsRequest{WorkerID: workerID, LeaseID: lr.LeaseID, RunID: lr.RunID, TrialErr: err.Error()})
					continue
				}
				br = &cached{c: built.Campaign, info: info}
				builds[lr.Fingerprint] = br
				w.logf("worker %s: built campaign %s (spec %s) for run %s\n",
					workerID, info.Campaign, lr.Fingerprint, lr.RunID)
			}
			env := shardEnv{
				c: br.c, info: br.info,
				// The run ID prefixes the checkpoint name: two runs of equal
				// shard labels (even of the same experiment) must never
				// share a local file.
				ckptName: lr.RunID + "-" + br.info.Campaign,
				runID:    lr.RunID,
				service:  true,
				drain:    &drain,
			}
			err := w.runShard(ctx, env, workerID, hbEvery, lr)
			switch {
			case errors.Is(err, errLeaseLost):
				w.logf("worker %s: lease %s lost; rejoining the queue\n", workerID, lr.LeaseID)
			case errors.Is(err, errCampaignDone):
				// The run finished under this shard's feet — fine; there
				// may be more runs to serve.
			case errors.Is(err, errLocal):
				return err // this worker can no longer checkpoint durably
			case ctx.Err() != nil:
				return err
			case err != nil:
				// Deterministic trial failure: already reported to the
				// service with this run's ID (it fails the run, not the
				// fleet); keep serving other runs.
				w.logf("worker %s: run %s failed: %v\n", workerID, lr.RunID, err)
			}
		default:
			return fmt.Errorf("cluster: service sent unknown lease status %q", lr.Status)
		}
	}
}

// register enrolls the worker — retrying transport failures so workers
// may start before their coordinator listens.
func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	req := RegisterRequest{Worker: w.cfg.Name, Proto: ProtocolVersion}
	for attempt := 1; ; attempt++ {
		resp, err := w.cl.register(req)
		if err == nil {
			return resp, nil
		}
		var se *statusError
		if errors.As(err, &se) {
			return RegisterResponse{}, err // protocol mismatch, bad token, malformed request
		}
		if attempt > w.cfg.Retries {
			return RegisterResponse{}, fmt.Errorf("cluster: register failed after %d attempts: %w", attempt, err)
		}
		if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
			return RegisterResponse{}, err
		}
	}
}

// shardEnv is everything runShard needs to execute one lease beyond
// the lease grant itself: which campaign to run, what to name the
// local checkpoint, and — in service mode — which run results route to
// and where mid-shard drain directives land.
type shardEnv struct {
	c    campaign.Campaign
	info CampaignInfo
	// ckptName prefixes the local checkpoint filename (the campaign
	// name in single mode; runID-campaign in service mode so concurrent
	// runs of the same experiment never share a file).
	ckptName string
	// runID routes result batches in service mode ("" in single mode).
	runID string
	// service marks service-mode semantics: a terminal heartbeat status
	// means THIS RUN is over, not the worker's life.
	service bool
	// drain, when non-nil, receives heartbeat drain directives: finish
	// this shard, then exit at the top of the lease loop.
	drain *atomic.Bool
}

// runShard executes one leased shard: resume from the local checkpoint,
// run the pending trials on the local runner, stream each result back,
// heartbeat until done.
func (w *Worker) runShard(ctx context.Context, env shardEnv,
	workerID string, hbEvery time.Duration, lr LeaseResponse) error {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Local shard checkpoint: resume completed trials from disk and
	// stream them to the coordinator (it deduplicates).
	done := make(map[int]bool)
	var ckpt *campaign.Checkpoint
	if w.cfg.CheckpointDir != "" {
		var err error
		ckpt, done, err = w.openShardCheckpoint(env, workerID, lr)
		if err != nil {
			if errors.Is(err, errPush) {
				// Streaming the resumed records failed transiently;
				// abandon the lease and retry from the loop like any
				// other push failure.
				w.logf("worker %s: shard %s: %v\n", workerID, lr.Shard, err)
				return errLeaseLost
			}
			return err
		}
		defer ckpt.Close()
	}
	var pending []campaign.Trial
	for _, t := range lr.Trials {
		if !done[t.ID] {
			pending = append(pending, t)
		}
	}
	w.logf("worker %s: leased shard %s: %d trials, %d resumed locally\n",
		workerID, lr.Shard, len(lr.Trials), len(lr.Trials)-len(pending))

	// Heartbeat until the shard run finishes (the deferred cancel stops
	// the goroutine). A revoked lease cancels the shard context, which
	// aborts the runner promptly; a terminal campaign status observed
	// on the heartbeat (failed/done elsewhere in the fleet) does the
	// same and is remembered, so the worker reports the real outcome
	// instead of burning its retry budget against a dead socket. In
	// service mode terminal statuses belong to individual runs, so they
	// never stop the worker; drain directives and scale-up advice ride
	// the heartbeat responses instead.
	var terminal atomic.Value // string: StatusFailed or StatusDone
	var lastAdvice atomic.Int64
	go func() {
		ticker := time.NewTicker(hbEvery)
		defer ticker.Stop()
		misses := 0
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-ticker.C:
			}
			resp, err := w.cl.heartbeat(HeartbeatRequest{WorkerID: workerID, LeaseID: lr.LeaseID})
			if err == nil {
				if resp.Drain && env.drain != nil && !env.drain.Load() {
					env.drain.Store(true)
					w.logf("worker %s: drain directive received; will exit after this shard\n", workerID)
				}
				if adv := int64(resp.ScaleUp); adv != lastAdvice.Swap(adv) {
					w.logf("worker %s: service advises %+d workers\n", workerID, adv)
				}
			}
			switch {
			case err != nil:
				misses++
				if misses >= heartbeatMisses {
					cancel()
					return
				}
			case !env.service && (resp.Status == StatusFailed || resp.Status == StatusDone):
				terminal.Store(resp.Status)
				cancel()
				return
			case !resp.OK:
				cancel()
				return
			default:
				misses = 0
			}
		}
	}()

	// One POST per trial keeps progress reporting and durability simple;
	// real campaign trials cost seconds to minutes of SNN compute, so
	// the round-trip is noise (micro-batching is the lever if trials
	// ever get RTT-bound).
	sink := func(r campaign.Result) error {
		if ckpt != nil {
			if err := ckpt.Append(r); err != nil {
				return fmt.Errorf("%w: %v", errLocal, err)
			}
		}
		if _, err := w.cl.results(ResultsRequest{
			WorkerID: workerID, LeaseID: lr.LeaseID, RunID: env.runID,
			Results: []campaign.Result{r}, Wall: []float64{r.Wall},
		}); err != nil {
			return fmt.Errorf("%w: %v", errPush, err)
		}
		w.logf("worker %s: shard %s: trial %d (%s) done\n", workerID, lr.Shard, r.TrialID, r.Key)
		return nil
	}
	err := w.cfg.Runner.Run(shardCtx, env.c, pending, sink)
	if st, _ := terminal.Load().(string); st != "" && ctx.Err() == nil {
		// The fleet finished (or failed) while this shard ran; report
		// the observed outcome directly instead of polling a
		// coordinator that may already be gone.
		if st == StatusFailed {
			return fmt.Errorf("cluster: campaign failed at coordinator (observed via heartbeat)")
		}
		return errCampaignDone
	}
	switch {
	case err == nil:
		w.logf("worker %s: shard %s complete\n", workerID, lr.Shard)
		return nil
	case shardCtx.Err() != nil && ctx.Err() == nil:
		return errLeaseLost
	case ctx.Err() != nil:
		return err
	case errors.Is(err, errPush):
		// Transient upload failure, not a bad trial: the completed
		// results survive in the local checkpoint; rejoin the lease
		// loop, whose retry budget decides if the coordinator is gone.
		w.logf("worker %s: shard %s: %v\n", workerID, lr.Shard, err)
		return errLeaseLost
	case errors.Is(err, errLocal):
		// This worker can no longer checkpoint durably; let it die
		// without aborting the campaign — the lease will expire and the
		// shard will be reassigned.
		return err
	default:
		// A deterministic trial (or worker-construction) failure:
		// another worker would fail the same way, so tell the
		// coordinator to abort the campaign (single mode) or just this
		// run (service mode, routed by RunID) — best effort.
		w.cl.results(ResultsRequest{WorkerID: workerID, LeaseID: lr.LeaseID, RunID: env.runID, TrialErr: err.Error()})
		return err
	}
}

// openShardCheckpoint opens (or creates) the local checkpoint for a
// leased shard, returning the writer, the completed trial IDs, and —
// when resuming — streaming the completed records to the coordinator.
func (w *Worker) openShardCheckpoint(env shardEnv,
	workerID string, lr LeaseResponse) (*campaign.Checkpoint, map[int]bool, error) {
	shard, err := campaign.ParseShard(lr.Shard)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: coordinator sent bad shard label %q: %w", lr.Shard, err)
	}
	header := campaign.NewHeader(env.c, env.info.Trials, shard)
	path := filepath.Join(w.cfg.CheckpointDir, shardFileName(env.ckptName, lr.Shard))
	done := make(map[int]bool)
	if _, err := os.Stat(path); err == nil {
		prev, results, err := campaign.ReadCheckpoint(path)
		if err != nil {
			return nil, nil, err
		}
		if !prev.Compatible(header) || prev.Shard != header.Shard {
			return nil, nil, fmt.Errorf("cluster: local checkpoint %s is from a different campaign, configuration or shard", path)
		}
		if len(results) > 0 {
			walls := make([]float64, len(results))
			for i, r := range results {
				walls[i] = r.Wall
			}
			if _, err := w.cl.results(ResultsRequest{
				WorkerID: workerID, LeaseID: lr.LeaseID, RunID: env.runID,
				Results: results, Wall: walls,
			}); err != nil {
				return nil, nil, fmt.Errorf("%w: %v", errPush, err)
			}
			w.logf("worker %s: shard %s: streamed %d checkpointed results\n", workerID, lr.Shard, len(results))
		}
		for _, r := range results {
			done[r.TrialID] = true
		}
		ckpt, err := campaign.OpenCheckpointAppend(path)
		return ckpt, done, err
	}
	if err := os.MkdirAll(w.cfg.CheckpointDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
	}
	ckpt, err := campaign.CreateCheckpoint(path, header)
	return ckpt, done, err
}

// shardFileName renders the local checkpoint filename for a shard
// ("yield-shard3of8.jsonl").
func shardFileName(name, shard string) string {
	return fmt.Sprintf("%s-shard%s.jsonl", name, strings.ReplaceAll(shard, "/", "of"))
}

// sleepCtx waits d (or just checks cancellation when d is 0).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		fmt.Fprintf(w.cfg.Log, format, args...)
	}
}
