package cluster

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"os"
	"time"
)

// TLSServerConfig loads a PEM certificate/key pair for a coordinator or
// service listener. Both paths are required together: a cert without its
// key (or vice versa) is a misconfiguration worth failing on at startup.
func TLSServerConfig(certFile, keyFile string) (*tls.Config, error) {
	if certFile == "" || keyFile == "" {
		return nil, fmt.Errorf("cluster: TLS needs both a certificate and a key (got cert %q, key %q)", certFile, keyFile)
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("cluster: load TLS key pair: %w", err)
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}, nil
}

// TLSClientConfig builds a client-side TLS configuration trusting the CA
// bundle at caFile — the worker/submit-side counterpart of a coordinator
// served with a private certificate. An empty path returns nil (system
// roots), so callers can pass the flag through unconditionally.
func TLSClientConfig(caFile string) (*tls.Config, error) {
	if caFile == "" {
		return nil, nil
	}
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("cluster: read TLS CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("cluster: %s holds no usable CA certificates", caFile)
	}
	return &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}, nil
}

// HTTPClient builds an HTTP client that trusts the CA bundle at caFile
// (empty = default transport and system roots).
func HTTPClient(caFile string, timeout time.Duration) (*http.Client, error) {
	hc := &http.Client{Timeout: timeout}
	tc, err := TLSClientConfig(caFile)
	if err != nil {
		return nil, err
	}
	if tc != nil {
		hc.Transport = &http.Transport{TLSClientConfig: tc}
	}
	return hc, nil
}
