package cluster

import (
	"fmt"
	"time"
)

// lease is one worker's time-bounded claim on one shard.
type lease struct {
	id       string
	worker   string // worker ID
	shard    int    // shard index into the coordinator's shard table
	deadline time.Time
}

// leaseTable tracks active leases with heartbeat-renewed deadlines. It
// is not self-locking: the coordinator serializes access under its own
// mutex. Time is injectable so expiry is unit-testable without
// sleeping.
type leaseTable struct {
	ttl time.Duration
	now func() time.Time
	seq int
	// byID holds active (possibly expired-but-unswept) leases; byShard
	// indexes the same leases by shard.
	byID    map[string]*lease
	byShard map[int]*lease
}

func newLeaseTable(ttl time.Duration, now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	return &leaseTable{
		ttl:     ttl,
		now:     now,
		byID:    make(map[string]*lease),
		byShard: make(map[int]*lease),
	}
}

// grant leases a shard to a worker. The shard must not be actively
// leased (callers sweep first).
func (t *leaseTable) grant(worker string, shard int) *lease {
	if l, ok := t.byShard[shard]; ok {
		panic(fmt.Sprintf("cluster: shard %d already leased as %s", shard, l.id))
	}
	t.seq++
	l := &lease{
		id:       fmt.Sprintf("l%d-s%d", t.seq, shard),
		worker:   worker,
		shard:    shard,
		deadline: t.now().Add(t.ttl),
	}
	t.byID[l.id] = l
	t.byShard[shard] = l
	return l
}

// renew extends a lease's deadline. It returns false — the worker must
// abandon the shard — when the lease is unknown, was released, or has
// already expired (renewing past the deadline would resurrect a shard
// that may have been reassigned).
func (t *leaseTable) renew(id string) bool {
	l, ok := t.byID[id]
	if !ok || t.expired(l) {
		return false
	}
	l.deadline = t.now().Add(t.ttl)
	return true
}

// release drops a lease (shard finished or campaign over).
func (t *leaseTable) release(id string) {
	if l, ok := t.byID[id]; ok {
		delete(t.byID, id)
		delete(t.byShard, l.shard)
	}
}

// holder returns the active lease on a shard, nil if none.
func (t *leaseTable) holder(shard int) *lease {
	return t.byShard[shard]
}

// expired reports whether a lease's deadline has passed.
func (t *leaseTable) expired(l *lease) bool {
	return t.now().After(l.deadline)
}

// sweep removes every expired lease and returns them — their shards
// are now eligible for reassignment, and the coordinator journals each
// expiry by lease ID.
func (t *leaseTable) sweep() []*lease {
	var freed []*lease
	for id, l := range t.byID {
		if t.expired(l) {
			delete(t.byID, id)
			delete(t.byShard, l.shard)
			freed = append(freed, l)
		}
	}
	return freed
}
