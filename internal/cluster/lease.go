package cluster

import (
	"fmt"
	"time"
)

// Lease is one worker's time-bounded claim on one unit of schedulable
// work. The key type is whatever the owner schedules over: the
// single-run coordinator leases shard indexes (int), the multi-run
// service leases (run, shard) pairs — one table, one expiry policy,
// shared by both layers.
type Lease[K comparable] struct {
	// ID is the journaled lease identity ("l<seq>-s<key>").
	ID string
	// Worker is the holder's worker ID.
	Worker string
	// Key is the leased work unit.
	Key K

	deadline time.Time
}

// LeaseTable tracks active leases with heartbeat-renewed deadlines. It
// is not self-locking: the owner serializes access under its own mutex.
// Time is injectable so expiry is unit-testable without sleeping.
type LeaseTable[K comparable] struct {
	ttl time.Duration
	now func() time.Time
	seq int
	// byID holds active (possibly expired-but-unswept) leases; byKey
	// indexes the same leases by work unit.
	byID  map[string]*Lease[K]
	byKey map[K]*Lease[K]
}

// NewLeaseTable builds a table with the given TTL; a nil now means
// time.Now (tests inject fake clocks).
func NewLeaseTable[K comparable](ttl time.Duration, now func() time.Time) *LeaseTable[K] {
	if now == nil {
		now = time.Now
	}
	return &LeaseTable[K]{
		ttl:   ttl,
		now:   now,
		byID:  make(map[string]*Lease[K]),
		byKey: make(map[K]*Lease[K]),
	}
}

// Grant leases a work unit to a worker. The unit must not be actively
// leased (callers sweep first).
func (t *LeaseTable[K]) Grant(worker string, key K) *Lease[K] {
	if l, ok := t.byKey[key]; ok {
		panic(fmt.Sprintf("cluster: %v already leased as %s", key, l.ID))
	}
	t.seq++
	l := &Lease[K]{
		ID:       fmt.Sprintf("l%d-s%v", t.seq, key),
		Worker:   worker,
		Key:      key,
		deadline: t.now().Add(t.ttl),
	}
	t.byID[l.ID] = l
	t.byKey[key] = l
	return l
}

// Renew extends a lease's deadline. It returns false — the worker must
// abandon the work — when the lease is unknown, was released, or has
// already expired (renewing past the deadline would resurrect a unit
// that may have been reassigned).
func (t *LeaseTable[K]) Renew(id string) bool {
	l, ok := t.byID[id]
	if !ok || t.expired(l) {
		return false
	}
	l.deadline = t.now().Add(t.ttl)
	return true
}

// Release drops a lease (work finished or run over).
func (t *LeaseTable[K]) Release(id string) {
	if l, ok := t.byID[id]; ok {
		delete(t.byID, id)
		delete(t.byKey, l.Key)
	}
}

// Holder returns the active lease on a work unit, nil if none.
func (t *LeaseTable[K]) Holder(key K) *Lease[K] {
	return t.byKey[key]
}

// ByID returns the active lease with the given ID, nil if none — how a
// service routes a heartbeat's lease ID back to its (run, shard).
func (t *LeaseTable[K]) ByID(id string) *Lease[K] {
	return t.byID[id]
}

// Held returns the number of active leases a worker holds — the
// idle-worker signal behind scale-up advice.
func (t *LeaseTable[K]) Held(worker string) int {
	n := 0
	for _, l := range t.byID {
		if l.Worker == worker {
			n++
		}
	}
	return n
}

// SetSeq resumes the lease sequence (restarted owners continue past
// their journal's GrantCount so fresh IDs never collide with journaled
// ones).
func (t *LeaseTable[K]) SetSeq(n int) {
	if n > t.seq {
		t.seq = n
	}
}

// expired reports whether a lease's deadline has passed.
func (t *LeaseTable[K]) expired(l *Lease[K]) bool {
	return t.now().After(l.deadline)
}

// Sweep removes every expired lease and returns them — their work
// units are now eligible for reassignment, and the owner journals each
// expiry by lease ID.
func (t *LeaseTable[K]) Sweep() []*Lease[K] {
	var freed []*Lease[K]
	for id, l := range t.byID {
		if t.expired(l) {
			delete(t.byID, id)
			delete(t.byKey, l.Key)
			freed = append(freed, l)
		}
	}
	return freed
}
