package cluster

import (
	"testing"
	"time"
)

// TestLeaseTable exercises grant/renew/expiry/sweep on a fake clock.
func TestLeaseTable(t *testing.T) {
	now := time.Unix(0, 0)
	tab := NewLeaseTable[int](10*time.Second, func() time.Time { return now })

	l := tab.Grant("w1", 0)
	if tab.Holder(0) != l {
		t.Fatal("holder should return the granted lease")
	}
	if tab.ByID(l.ID) != l {
		t.Fatal("ByID should route the lease ID back to the lease")
	}
	now = now.Add(9 * time.Second)
	if !tab.Renew(l.ID) {
		t.Fatal("renew before the deadline should succeed")
	}
	now = now.Add(9 * time.Second) // 18s total, but renewed at 9s -> deadline 19s
	if !tab.Renew(l.ID) {
		t.Fatal("renew after an earlier renewal should succeed")
	}
	now = now.Add(11 * time.Second)
	if tab.Renew(l.ID) {
		t.Fatal("renew past the deadline must fail")
	}
	freed := tab.Sweep()
	if len(freed) != 1 || freed[0].Key != 0 || freed[0].ID != l.ID {
		t.Fatalf("sweep freed %v, want lease %s on shard 0", freed, l.ID)
	}
	if tab.Holder(0) != nil {
		t.Fatal("swept shard should have no holder")
	}
	l2 := tab.Grant("w2", 0)
	if l2.ID == l.ID {
		t.Fatal("regrant must mint a fresh lease ID")
	}
	if tab.Renew(l.ID) {
		t.Fatal("the old lease ID must stay dead after regrant")
	}

	tab.Release(l2.ID)
	if tab.Holder(0) != nil || tab.Renew(l2.ID) {
		t.Fatal("released lease should be gone")
	}
}

// TestLeaseTableTwoRunsInFlight exercises the multi-run keyspace a
// campaign service schedules over: two runs' shards leased from ONE
// table, one worker dying while holding leases in both runs. Expiry
// must free exactly the dead worker's keys — in both runs — while the
// surviving worker's leases (including one on the same shard index of
// the other run) stay live, and the freed shards regrant cleanly.
func TestLeaseTableTwoRunsInFlight(t *testing.T) {
	type runShard struct {
		Run   string
		Shard int
	}
	now := time.Unix(0, 0)
	tab := NewLeaseTable[runShard](10*time.Second, func() time.Time { return now })

	// Worker w1 holds shard 0 of both runs; w2 holds shard 1 of run A.
	a0 := tab.Grant("w1", runShard{"rA", 0})
	b0 := tab.Grant("w1", runShard{"rB", 0})
	a1 := tab.Grant("w2", runShard{"rA", 1})
	if got := tab.Held("w1"); got != 2 {
		t.Fatalf("Held(w1) = %d, want 2", got)
	}
	if a0.ID == b0.ID {
		t.Fatal("the same shard index of two runs must mint distinct lease IDs")
	}

	// Only w2 heartbeats; w1 dies. Both of w1's leases — across both
	// runs — expire on one sweep; w2's lease survives.
	now = now.Add(8 * time.Second)
	if !tab.Renew(a1.ID) {
		t.Fatal("w2's renew should succeed")
	}
	now = now.Add(4 * time.Second) // w1's deadlines (10s) passed; w2's (18s) not
	freed := tab.Sweep()
	if len(freed) != 2 {
		t.Fatalf("sweep freed %d leases, want w1's 2 (one per run)", len(freed))
	}
	freedRuns := map[string]bool{}
	for _, l := range freed {
		if l.Worker != "w1" {
			t.Fatalf("sweep freed %s held by %s, want only w1's leases", l.ID, l.Worker)
		}
		freedRuns[l.Key.Run] = true
	}
	if !freedRuns["rA"] || !freedRuns["rB"] {
		t.Fatalf("expiry must free the dead worker's shards in BOTH runs, got %v", freedRuns)
	}
	if tab.Holder(runShard{"rA", 1}) != a1 {
		t.Fatal("the surviving worker's lease must not be swept")
	}

	// Both freed shards are independently regrantable to the survivor.
	ra := tab.Grant("w2", runShard{"rA", 0})
	rb := tab.Grant("w2", runShard{"rB", 0})
	if ra.ID == a0.ID || rb.ID == b0.ID {
		t.Fatal("regrants must mint fresh lease IDs")
	}
	if tab.Renew(a0.ID) || tab.Renew(b0.ID) {
		t.Fatal("the dead worker's lease IDs must stay dead in both runs")
	}
	if got := tab.Held("w2"); got != 3 {
		t.Fatalf("Held(w2) = %d, want 3", got)
	}
}
