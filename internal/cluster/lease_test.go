package cluster

import (
	"testing"
	"time"
)

// TestLeaseTable exercises grant/renew/expiry/sweep on a fake clock.
func TestLeaseTable(t *testing.T) {
	now := time.Unix(0, 0)
	tab := newLeaseTable(10*time.Second, func() time.Time { return now })

	l := tab.grant("w1", 0)
	if tab.holder(0) != l {
		t.Fatal("holder should return the granted lease")
	}
	now = now.Add(9 * time.Second)
	if !tab.renew(l.id) {
		t.Fatal("renew before the deadline should succeed")
	}
	now = now.Add(9 * time.Second) // 18s total, but renewed at 9s -> deadline 19s
	if !tab.renew(l.id) {
		t.Fatal("renew after an earlier renewal should succeed")
	}
	now = now.Add(11 * time.Second)
	if tab.renew(l.id) {
		t.Fatal("renew past the deadline must fail")
	}
	freed := tab.sweep()
	if len(freed) != 1 || freed[0].shard != 0 || freed[0].id != l.id {
		t.Fatalf("sweep freed %v, want lease %s on shard 0", freed, l.id)
	}
	if tab.holder(0) != nil {
		t.Fatal("swept shard should have no holder")
	}
	l2 := tab.grant("w2", 0)
	if l2.id == l.id {
		t.Fatal("regrant must mint a fresh lease ID")
	}
	if tab.renew(l.id) {
		t.Fatal("the old lease ID must stay dead after regrant")
	}

	tab.release(l2.id)
	if tab.holder(0) != nil || tab.renew(l2.id) {
		t.Fatal("released lease should be gone")
	}
}
