package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// MaxBodyBytes bounds request/response bodies. Lease grants carry at
// most one shard's trial list and results stream in small batches, so
// 64 MiB is far above any legitimate message.
const MaxBodyBytes = 64 << 20

// client is the worker side of the wire protocol. A non-empty token is
// sent as a bearer credential on every request (campaign services
// require one; single-run coordinators ignore it). A non-empty caFile
// makes HTTPS connections verify against that CA bundle instead of the
// system roots; a bundle that fails to load is surfaced on every call
// rather than at construction, so NewWorker stays infallible.
type client struct {
	base  string
	token string
	hc    *http.Client
	err   error
}

func newClient(base, token, caFile string) *client {
	cl := &client{base: strings.TrimRight(base, "/"), token: token}
	cl.hc, cl.err = HTTPClient(caFile, 30*time.Second)
	return cl
}

// statusError is a non-2xx protocol reply — a deliberate rejection
// (fingerprint mismatch, unknown worker), as opposed to a transport
// error worth retrying.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.msg, e.code)
	}
	return fmt.Sprintf("HTTP %d", e.code)
}

// post sends one JSON request and decodes the JSON response. Non-2xx
// responses come back as *statusError carrying the server's message;
// other errors are transport failures.
func (cl *client) post(path string, in, out any) error {
	if cl.err != nil {
		return cl.err
	}
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s request: %w", path, err)
	}
	req, err := http.NewRequest(http.MethodPost, cl.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if cl.token != "" {
		req.Header.Set("Authorization", "Bearer "+cl.token)
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return fmt.Errorf("cluster: read %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		return fmt.Errorf("cluster: %s: %w", path, &statusError{code: resp.StatusCode, msg: e.Error})
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: decode %s response: %w", path, err)
	}
	return nil
}

func (cl *client) register(req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := cl.post("/v1/register", req, &resp)
	return resp, err
}

func (cl *client) lease(req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := cl.post("/v1/lease", req, &resp)
	return resp, err
}

func (cl *client) heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := cl.post("/v1/heartbeat", req, &resp)
	return resp, err
}

func (cl *client) results(req ResultsRequest) (ResultsResponse, error) {
	var resp ResultsResponse
	err := cl.post("/v1/results", req, &resp)
	return resp, err
}

// ReadJSON decodes a request body, replying 400 on malformed input.
func ReadJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes))
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return false
	}
	return true
}

// WriteJSON replies 200 with a JSON body.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// WriteJSONError replies with a JSON {"error": ...} body.
func WriteJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
