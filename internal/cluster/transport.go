package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxBodyBytes bounds request/response bodies. Lease grants carry at
// most one shard's trial list and results stream in small batches, so
// 64 MiB is far above any legitimate message.
const maxBodyBytes = 64 << 20

// client is the worker side of the wire protocol.
type client struct {
	base string
	hc   *http.Client
}

func newClient(base string) *client {
	return &client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// statusError is a non-2xx protocol reply — a deliberate rejection
// (fingerprint mismatch, unknown worker), as opposed to a transport
// error worth retrying.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.msg, e.code)
	}
	return fmt.Sprintf("HTTP %d", e.code)
}

// post sends one JSON request and decodes the JSON response. Non-2xx
// responses come back as *statusError carrying the server's message;
// other errors are transport failures.
func (cl *client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s request: %w", path, err)
	}
	resp, err := cl.hc.Post(cl.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("cluster: read %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		return fmt.Errorf("cluster: %s: %w", path, &statusError{code: resp.StatusCode, msg: e.Error})
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: decode %s response: %w", path, err)
	}
	return nil
}

func (cl *client) register(req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := cl.post("/v1/register", req, &resp)
	return resp, err
}

func (cl *client) lease(req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := cl.post("/v1/lease", req, &resp)
	return resp, err
}

func (cl *client) heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := cl.post("/v1/heartbeat", req, &resp)
	return resp, err
}

func (cl *client) results(req ResultsRequest) (ResultsResponse, error) {
	var resp ResultsResponse
	err := cl.post("/v1/results", req, &resp)
	return resp, err
}

// readJSON decodes a request body, replying 400 on malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return false
	}
	return true
}

// writeJSON replies 200 with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeJSONError replies with a JSON {"error": ...} body.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
