package cluster

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"falvolt/internal/campaign"
)

// writeSelfSignedCert mints a short-lived ECDSA certificate for
// 127.0.0.1 and writes cert/key PEM files into dir, returning their
// paths. The cert file doubles as the client CA bundle.
func writeSelfSignedCert(t *testing.T, dir string) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "falvolt-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(certFile, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

func TestTLSConfigHelpers(t *testing.T) {
	dir := t.TempDir()
	certFile, keyFile := writeSelfSignedCert(t, dir)

	if _, err := TLSServerConfig(certFile, ""); err == nil {
		t.Error("missing key file should error")
	}
	if _, err := TLSServerConfig("", keyFile); err == nil {
		t.Error("missing cert file should error")
	}
	tc, err := TLSServerConfig(certFile, keyFile)
	if err != nil {
		t.Fatal(err)
	}
	if tc.MinVersion < 0x0303 { // TLS 1.2
		t.Errorf("MinVersion = %#x, want at least TLS 1.2", tc.MinVersion)
	}

	cc, err := TLSClientConfig("")
	if err != nil || cc != nil {
		t.Errorf("empty CA should mean system roots (nil config), got %v/%v", cc, err)
	}
	if _, err := TLSClientConfig(filepath.Join(dir, "nope.pem")); err == nil {
		t.Error("missing CA file should error")
	}
	junk := filepath.Join(dir, "junk.pem")
	if err := os.WriteFile(junk, []byte("not a pem"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := TLSClientConfig(junk); err == nil {
		t.Error("junk CA file should error")
	}
	cc, err = TLSClientConfig(certFile)
	if err != nil {
		t.Fatal(err)
	}
	if cc == nil || cc.RootCAs == nil {
		t.Fatal("CA bundle did not produce a root pool")
	}
}

// TestDistributedEquivalenceTLS reruns the distributed acceptance gate
// over HTTPS: coordinator serves with a self-signed cert, the worker
// trusts it via TLSCA, and the merged results stay byte-identical to
// the single-process run.
func TestDistributedEquivalenceTLS(t *testing.T) {
	certFile, keyFile := writeSelfSignedCert(t, t.TempDir())
	const n = 19
	sp := selftestSpec(n, 11)
	want := singleProcessWant(t, buildFromSpec(t, sp))

	_, url, out := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Shards: 2, LeaseTTL: 2 * time.Second, TLSCert: certFile, TLSKey: keyFile},
		campaign.Options{})
	if !strings.HasPrefix(url, "https://") {
		t.Fatalf("TLS coordinator URL = %q, want https://", url)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(t, WorkerConfig{Coordinator: url, Name: "tls-w0", TLSCA: certFile}, ctx)

	oc := <-out
	if oc.err != nil {
		t.Fatal(oc.err)
	}
	got, err := campaign.MarshalResults(oc.rr.Results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("TLS-distributed results differ from single-process run")
	}

	// A worker without the CA bundle must fail fast: the self-signed cert
	// does not verify against system roots.
	w := NewWorker(WorkerConfig{Coordinator: url, Name: "tls-untrusted", Retries: 2,
		Poll: 10 * time.Millisecond})
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := w.Run(wctx); err == nil {
		t.Error("worker without CA trust should fail against a self-signed https coordinator")
	}
}
