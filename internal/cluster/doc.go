// Package cluster runs fault-sweep campaigns across machines: a
// coordinator plans a campaign into interleaved shards
// (campaign.Shard), leases them to worker daemons over HTTP+JSON, and
// folds the streamed-back results through the campaign engine's
// order-independent merge. Coordinator implements campaign.Runner, so
// any sweep that runs on the in-process PoolRunner — the figure
// campaigns of cmd/experiments, the yield study of cmd/yield — runs on
// a fleet by swapping the runner (`cmd/campaign serve` / `cmd/campaign
// work`, or the -coordinator flag on the sweep tools).
//
// Determinism guarantee: distribution never changes results. Every
// trial is seed-addressed — its result is a pure function of the trial,
// not of which worker ran it, when, or after how many lease
// reassignments — and the coordinator delivers each trial's result to
// the campaign sink exactly once, with reductions consuming them in
// ascending trial-ID order. A campaign distributed across any number of
// workers (including workers that die mid-shard and have their leases
// reassigned) therefore produces figure and report JSON byte-identical
// to a single-process run; the cluster tests assert exactly that.
//
// Fault tolerance: leases carry heartbeat-renewed deadlines. A worker
// that misses its deadline (crash, network partition) loses the lease,
// and the shard's remaining trials — those whose results never arrived
// — are reassigned to the next idle worker. Workers keep a local JSONL
// checkpoint per shard, so a restarted worker re-registers, resumes its
// shard from disk, and streams the already-completed records instead of
// re-running them.
//
// Durability: with CoordinatorConfig.StateDir set (`campaign serve
// -state <dir>`), the coordinator survives its own death too. It
// journals the canonical spec, the shard table, lease grants/expiries
// and every accepted result to an append-only WAL (campaign.WAL,
// flushed per record, torn-tail tolerant); a restarted coordinator
// replays the journal, restores the exact shard table, re-delivers
// results the caller lost, invalidates leases open at the crash, and
// refuses a state dir whose spec fingerprint mismatches the campaign it
// was asked to serve. Workers notice only a rejected worker ID: they
// re-register automatically (pinned to the same spec fingerprint) and
// resume from their local checkpoints.
//
// Shard planning is a campaign.Planner seam: the uniform interleaved
// split by default, or — `serve -balance <timing-source>` — shards
// sized to equalize predicted wall-clock from a prior run's recorded
// per-key timing. Any plan merges byte-identically.
//
// Safety: workers carry no campaign configuration of their own. At
// registration the coordinator ships the canonical experiment spec
// (internal/spec) and the worker builds its campaign from exactly those
// bytes via the spec registry — `campaign work -coordinator <url>` is
// all it takes to join a fleet. The misconfigured-worker failure mode
// the old flag-matching + fingerprint scheme could only detect is
// therefore unrepresentable; registration still rejects wire-protocol
// version mismatches up front, and the spec fingerprint names the
// experiment in logs and /v1/status.
//
// # Ownership split with internal/service
//
// This package owns the MECHANICS of distribution, deliberately
// single-campaign and policy-free:
//
//   - the wire protocol (protocol.go) — register/lease/heartbeat/
//     results, shared verbatim by both control planes;
//   - LeaseTable — generic over its shard key, so one table can span
//     shards of one run (Coordinator) or of a whole catalog (service);
//   - Worker — the one worker binary for both worlds. Registration
//     tells it which it joined: a single-run coordinator ships the spec
//     up front and the worker pins its fingerprint for life, while a
//     campaign service (RegisterResponse.Service) ships a spec per
//     LEASE, and the worker builds per fingerprint on demand, caches
//     builds, isolates per-run failures, and honors drain directives;
//   - Coordinator — the ephemeral control plane: one campaign, runs as
//     a campaign.Runner inside `campaign serve`, exits with its run.
//
// internal/service owns the POLICY a long-lived fleet needs on top:
// the durable run catalog (submit/list/watch/cancel, one WAL-journaled
// state dir per run), priority + deficit fair-share scheduling across
// runs, re-planning at admission boundaries from accumulated timing,
// autoscaling hooks (drain + scale-up advice), and bearer-token auth.
// Nothing there reimplements a mechanism here: the service composes
// LeaseTable, the WAL, and this protocol. When changing a behavior,
// place it by that test — every fleet needs it: cluster; only a
// multi-run catalog needs it: service.
package cluster
