package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"falvolt/internal/campaign"
)

// The wire protocol is deliberately small: four POST endpoints under
// /v1/ (register, lease, heartbeat, results) plus a GET /v1/status
// snapshot, all JSON. Trials travel coordinator -> worker inside lease
// grants; results stream back worker -> coordinator one record per
// completed trial. Campaign configuration never travels: each side
// builds the campaign locally and registration compares fingerprints.

// protocolVersion is bumped on incompatible wire changes; registration
// rejects mismatched versions via the fingerprint.
const protocolVersion = 1

// Lease-response statuses.
const (
	// StatusLease: a shard lease was granted; Trials holds the work.
	StatusLease = "lease"
	// StatusWait: all shards are leased or done but the campaign is not
	// finished; poll again.
	StatusWait = "wait"
	// StatusDone: every trial has a result; the worker can exit.
	StatusDone = "done"
	// StatusFailed: the campaign aborted (trial error, sink error,
	// result conflict); Error carries the cause.
	StatusFailed = "failed"
)

// CampaignInfo identifies a campaign configuration: the same fields a
// checkpoint Header carries, which the fingerprint hashes.
type CampaignInfo struct {
	Version  int               `json:"version"`
	Campaign string            `json:"campaign"`
	Trials   int               `json:"trials"`
	Meta     map[string]string `json:"meta,omitempty"`
}

// InfoOf extracts a campaign's identity (name, full trial count,
// metadata fingerprint).
func InfoOf(c campaign.Campaign) (CampaignInfo, error) {
	trials, err := c.Trials()
	if err != nil {
		return CampaignInfo{}, fmt.Errorf("cluster: enumerate %s: %w", c.Name(), err)
	}
	info := CampaignInfo{Version: protocolVersion, Campaign: c.Name(), Trials: len(trials)}
	if mp, ok := c.(campaign.MetaProvider); ok {
		info.Meta = mp.Meta()
	}
	return info, nil
}

// Fingerprint hashes the campaign identity into a short hex digest.
// Coordinator and worker compute it independently from their own
// configuration; registration rejects a mismatch, so shard results from
// a differently configured worker can never reach the merge.
func (ci CampaignInfo) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s|%d", ci.Version, ci.Campaign, ci.Trials)
	keys := make([]string, 0, len(ci.Meta))
	for k := range ci.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "|%s=%s", k, ci.Meta[k])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// RegisterRequest enrolls a worker for the coordinator's campaign.
type RegisterRequest struct {
	// Worker is a self-chosen display name (host:pid by default).
	Worker string `json:"worker"`
	// Fingerprint is CampaignInfo.Fingerprint() of the worker's locally
	// built campaign.
	Fingerprint string `json:"fingerprint"`
}

// RegisterResponse acknowledges registration.
type RegisterResponse struct {
	WorkerID string `json:"workerID"`
	// LeaseTTLMillis tells the worker how often to heartbeat (a third
	// of the TTL).
	LeaseTTLMillis int64 `json:"leaseTTLMillis"`
}

// LeaseRequest asks for a shard of work.
type LeaseRequest struct {
	WorkerID string `json:"workerID"`
}

// LeaseResponse grants a shard (StatusLease) or reports the campaign
// state (StatusWait / StatusDone / StatusFailed).
type LeaseResponse struct {
	Status  string `json:"status"`
	LeaseID string `json:"leaseID,omitempty"`
	// Shard labels the granted shard in campaign.Shard "i/n" form; the
	// worker's local checkpoint header records it, so a restarted
	// worker resumes iff it is re-granted the same shard.
	Shard string `json:"shard,omitempty"`
	// Trials are the shard's trials still missing results at the
	// coordinator, sorted by ID — a reassigned shard only re-runs what
	// its dead worker never delivered.
	Trials []campaign.Trial `json:"trials,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	WorkerID string `json:"workerID"`
	LeaseID  string `json:"leaseID"`
}

// HeartbeatResponse reports whether the lease is still held. OK=false
// means the lease expired or was reassigned: the worker must abandon
// the shard (its results so far are kept).
type HeartbeatResponse struct {
	OK     bool   `json:"ok"`
	Status string `json:"status"`
}

// ResultsRequest streams completed trial results (or a fatal trial
// error) back to the coordinator.
type ResultsRequest struct {
	WorkerID string            `json:"workerID"`
	LeaseID  string            `json:"leaseID,omitempty"`
	Results  []campaign.Result `json:"results,omitempty"`
	// TrialErr aborts the whole campaign: trials are deterministic, so
	// another worker would fail the same way.
	TrialErr string `json:"trialErr,omitempty"`
}

// ResultsResponse acknowledges a results batch.
type ResultsResponse struct {
	OK bool `json:"ok"`
}

// ShardStatus is one shard's entry in a status snapshot.
type ShardStatus struct {
	Shard     string `json:"shard"`
	Trials    int    `json:"trials"`
	Remaining int    `json:"remaining"`
	Worker    string `json:"worker,omitempty"`
	Done      bool   `json:"done"`
}

// StatusResponse is the GET /v1/status snapshot.
type StatusResponse struct {
	Campaign    CampaignInfo  `json:"campaign"`
	Fingerprint string        `json:"fingerprint"`
	Planned     int           `json:"planned"`
	Done        int           `json:"done"`
	Workers     int           `json:"workers"`
	Reassigned  int           `json:"reassigned"`
	Shards      []ShardStatus `json:"shards"`
	Failed      string        `json:"failed,omitempty"`
	Complete    bool          `json:"complete"`
}
