package cluster

import (
	"encoding/json"
	"fmt"

	"falvolt/internal/campaign"
)

// The wire protocol is deliberately small: four POST endpoints under
// /v1/ (register, lease, heartbeat, results) plus a GET /v1/status
// snapshot, all JSON. Trials travel coordinator -> worker inside lease
// grants; results stream back worker -> coordinator one record per
// completed trial. The campaign configuration travels exactly once, as
// the canonical experiment spec (internal/spec) inside the registration
// response: workers build their campaign from the received bytes, so a
// worker cannot be configured differently from its coordinator — the
// misconfiguration class the old flag-matching + fingerprint scheme
// could only detect is unrepresentable.

// ProtocolVersion is bumped on incompatible wire changes; registration
// rejects mismatched versions up front. Version 3 added service mode:
// a multi-run coordinator registers workers without shipping a spec
// (RegisterResponse.Service), ships each run's spec inside its lease
// grants instead (LeaseResponse.RunID/Spec/Fingerprint), routes result
// batches by run (ResultsRequest.RunID), and carries autoscaling
// directives (HeartbeatResponse.Drain/ScaleUp, LeaseResponse.Drain).
const ProtocolVersion = 3

// Lease-response statuses.
const (
	// StatusLease: a shard lease was granted; Trials holds the work.
	StatusLease = "lease"
	// StatusWait: all shards are leased or done but the campaign is not
	// finished; poll again.
	StatusWait = "wait"
	// StatusDone: every trial has a result; the worker can exit.
	StatusDone = "done"
	// StatusFailed: the campaign aborted (trial error, sink error,
	// result conflict); Error carries the cause.
	StatusFailed = "failed"
)

// CampaignInfo identifies a campaign configuration: the same fields a
// checkpoint Header carries, which the fingerprint hashes.
type CampaignInfo struct {
	Version  int               `json:"version"`
	Campaign string            `json:"campaign"`
	Trials   int               `json:"trials"`
	Meta     map[string]string `json:"meta,omitempty"`
}

// InfoOf extracts a campaign's identity (name, full trial count,
// metadata fingerprint).
func InfoOf(c campaign.Campaign) (CampaignInfo, error) {
	trials, err := c.Trials()
	if err != nil {
		return CampaignInfo{}, fmt.Errorf("cluster: enumerate %s: %w", c.Name(), err)
	}
	info := CampaignInfo{Version: ProtocolVersion, Campaign: c.Name(), Trials: len(trials)}
	if mp, ok := c.(campaign.MetaProvider); ok {
		info.Meta = mp.Meta()
	}
	return info, nil
}

// RegisterRequest enrolls a worker for the coordinator's campaign. The
// worker brings nothing but a name and its protocol version — the
// campaign configuration flows the other way, in the response.
type RegisterRequest struct {
	// Worker is a self-chosen display name (host:pid by default).
	Worker string `json:"worker"`
	// Proto is the worker's wire-protocol version; the coordinator
	// rejects mismatches at registration instead of failing obscurely
	// mid-campaign.
	Proto int `json:"proto"`
}

// RegisterResponse acknowledges registration and ships the experiment.
type RegisterResponse struct {
	WorkerID string `json:"workerID"`
	// LeaseTTLMillis tells the worker how often to heartbeat (a third
	// of the TTL).
	LeaseTTLMillis int64 `json:"leaseTTLMillis"`
	// Spec is the canonical JSON of the experiment spec this
	// coordinator serves (internal/spec). The worker builds its
	// campaign from exactly these bytes via the spec registry. Empty
	// in service mode, where every lease grant carries its run's spec.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Fingerprint is the spec's digest (spec.Fingerprint), echoed so
	// the worker can verify the payload arrived intact and logs can
	// name the experiment. Empty in service mode.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Service marks a multi-run campaign service: the worker must not
	// expect a registration spec, builds one campaign per distinct
	// fingerprint it is leased, and keeps polling when individual runs
	// finish (only a drain directive or cancellation stops it).
	Service bool `json:"service,omitempty"`
}

// LeaseRequest asks for a shard of work.
type LeaseRequest struct {
	WorkerID string `json:"workerID"`
}

// LeaseResponse grants a shard (StatusLease) or reports the campaign
// state (StatusWait / StatusDone / StatusFailed).
type LeaseResponse struct {
	Status  string `json:"status"`
	LeaseID string `json:"leaseID,omitempty"`
	// Shard labels the granted shard in campaign.Shard "i/n" form; the
	// worker's local checkpoint header records it, so a restarted
	// worker resumes iff it is re-granted the same shard.
	Shard string `json:"shard,omitempty"`
	// Trials are the shard's trials still missing results at the
	// coordinator, sorted by ID — a reassigned shard only re-runs what
	// its dead worker never delivered.
	Trials []campaign.Trial `json:"trials,omitempty"`
	Error  string           `json:"error,omitempty"`

	// RunID names the catalog run this lease belongs to (service mode;
	// echoed back in ResultsRequest so results route to the right run).
	RunID string `json:"runID,omitempty"`
	// Spec is the run's canonical spec JSON (service mode: the per-run
	// analogue of RegisterResponse.Spec). Workers cache built campaigns
	// by Fingerprint, so a fleet serving N concurrent runs builds each
	// distinct experiment once.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Fingerprint digests Spec (service mode).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Drain tells an idle worker to exit now instead of polling again:
	// the graceful scale-down half of the autoscaling hooks.
	Drain bool `json:"drain,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	WorkerID string `json:"workerID"`
	LeaseID  string `json:"leaseID"`
}

// HeartbeatResponse reports whether the lease is still held. OK=false
// means the lease expired or was reassigned: the worker must abandon
// the shard (its results so far are kept).
type HeartbeatResponse struct {
	OK     bool   `json:"ok"`
	Status string `json:"status"`
	// Drain asks the worker to finish its current shard, then exit
	// instead of taking another lease (graceful scale-down). Unlike
	// OK=false it never aborts in-flight work.
	Drain bool `json:"drain,omitempty"`
	// ScaleUp is the coordinator's scale-up advice: how many ADDITIONAL
	// workers could be leasing work right now (schedulable shards with
	// no holder, minus idle registered workers). Pure advice — workers
	// log it and external autoscalers act on it via /v1/status.
	ScaleUp int `json:"scaleUp,omitempty"`
}

// ResultsRequest streams completed trial results (or a fatal trial
// error) back to the coordinator.
type ResultsRequest struct {
	WorkerID string `json:"workerID"`
	LeaseID  string `json:"leaseID,omitempty"`
	// RunID routes the batch to its catalog run (service mode; echoed
	// from the lease grant).
	RunID   string            `json:"runID,omitempty"`
	Results []campaign.Result `json:"results,omitempty"`
	// Wall carries Results[i].Wall (seconds), which canonical result
	// JSON excludes, so coordinator checkpoints keep per-trial timing.
	Wall []float64 `json:"wall,omitempty"`
	// TrialErr aborts the whole campaign: trials are deterministic, so
	// another worker would fail the same way.
	TrialErr string `json:"trialErr,omitempty"`
}

// ResultsResponse acknowledges a results batch.
type ResultsResponse struct {
	OK bool `json:"ok"`
}

// ShardStatus is one shard's entry in a status snapshot.
type ShardStatus struct {
	Shard     string `json:"shard"`
	Trials    int    `json:"trials"`
	Remaining int    `json:"remaining"`
	Worker    string `json:"worker,omitempty"`
	Done      bool   `json:"done"`
}

// StatusResponse is the GET /v1/status snapshot.
type StatusResponse struct {
	Campaign    CampaignInfo `json:"campaign"`
	Fingerprint string       `json:"fingerprint"`
	Planned     int          `json:"planned"`
	Done        int          `json:"done"`
	// Recovered counts results a restarted coordinator replayed from
	// its WAL directly into this run's sink (0 without -state).
	Recovered  int           `json:"recovered,omitempty"`
	Workers    int           `json:"workers"`
	Reassigned int           `json:"reassigned"`
	Shards     []ShardStatus `json:"shards"`
	Failed     string        `json:"failed,omitempty"`
	Complete   bool          `json:"complete"`
}
