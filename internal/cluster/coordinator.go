package cluster

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
)

// DefaultShards is the shard count when CoordinatorConfig.Shards is 0:
// a few shards per expected worker, so a small fleet load-balances
// without making shards so fine that lease traffic dominates.
const DefaultShards = 8

// DefaultLeaseTTL is the lease deadline when CoordinatorConfig.LeaseTTL
// is 0. Workers heartbeat at a third of the TTL, so a worker death is
// detected within one TTL while three missed heartbeats are tolerated.
const DefaultLeaseTTL = 15 * time.Second

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Addr is the listen address (":9090", "127.0.0.1:0" for an
	// ephemeral test port).
	Addr string
	// Spec is the experiment this coordinator serves. Its canonical
	// JSON is shipped to every worker at registration — workers build
	// their campaign from these bytes — and its fingerprint names the
	// run in logs and /v1/status. Required: Run fails without it.
	Spec *spec.Spec
	// Shards is the number of shards the trial list is split into
	// (0 = DefaultShards, clamped to the trial count). More shards than
	// workers lets fast workers take extra shards and bounds the work
	// lost to a lease reassignment.
	Shards int
	// PlannerName selects how trials are split into shards:
	// ""/"uniform" for interleaved equal-count shards, or
	// "balance:<timing-source>" for shards equalizing predicted
	// wall-clock from a prior run's per-key timing
	// (campaign.PlannerByName). Resolved when Run starts.
	PlannerName string
	// Planner, when non-nil, overrides PlannerName with an explicit
	// policy (tests inject cost models here).
	Planner campaign.Planner
	// StateDir, when non-empty, makes the coordinator durable: it
	// journals its spec header, shard table, lease grants/expiries and
	// every accepted result to an append-only WAL (<StateDir>/wal.jsonl,
	// flushed per record). A coordinator restarted with the same
	// StateDir replays the journal, restores the exact shard table,
	// invalidates leases that were open at the crash, and refuses a
	// state dir whose spec fingerprint mismatches the campaign it was
	// asked to serve. Workers re-register and resume from their local
	// checkpoints.
	StateDir string
	// LeaseTTL is how long a shard lease survives without a heartbeat
	// (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// TLSCert/TLSKey, when set (both required together), serve the
	// coordinator over HTTPS with this PEM certificate and private key;
	// URL then reports an https:// base. Workers with a private CA pass
	// its bundle via WorkerConfig.TLSCA.
	TLSCert string
	TLSKey  string
	// Linger keeps the server answering StatusDone after completion so
	// idle workers observe the result instead of a dead socket
	// (default 1s; tests shorten it).
	Linger time.Duration
	// Log receives progress lines (nil silences).
	Log io.Writer

	// now overrides the clock in tests.
	now func() time.Time
}

// Coordinator distributes one campaign run across HTTP workers. It
// implements campaign.Runner, so it drops into campaign.Options.Runner
// anywhere a PoolRunner would go; Run blocks until every trial has a
// result, the context is cancelled, or the campaign fails. A
// Coordinator is single-use: make a new one per Run.
type Coordinator struct {
	cfg CoordinatorConfig

	ready chan struct{} // closed once listening; url is then valid
	url   string

	mu         sync.Mutex
	started    bool
	info       CampaignInfo
	specJSON   []byte // canonical spec, shipped at registration
	fp         string
	shards     []*shardState
	trialShard map[int]int // trial ID -> owning shard index
	leases     *LeaseTable[int]
	recorded   map[int][]byte // trial ID -> canonical result JSON (conflict check)
	remaining  int            // trials without results, across all shards
	sink       func(campaign.Result) error
	wal        *campaign.WAL     // non-nil iff StateDir is set (after plan/restore)
	dirLock    *os.File          // flock on the state dir (released on Close/death)
	recovered  int               // results replayed from the WAL into the sink
	workers    map[string]string // worker ID -> display name
	wseq       int
	reassigned int
	failure    error
	closed     bool          // Run has returned; handlers must not touch the sink
	done       chan struct{} // closed on completion or failure
	doneOnce   sync.Once
}

// shardState is one shard's scheduling state.
type shardState struct {
	label     string // campaign.Shard "i/n" form
	trials    []campaign.Trial
	remaining map[int]campaign.Trial // trial ID -> trial, results pending
	done      bool
}

// NewCoordinator builds a single-use coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Shards < 0 {
		cfg.Shards = 0
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Linger <= 0 {
		cfg.Linger = time.Second
	}
	return &Coordinator{cfg: cfg, ready: make(chan struct{}), done: make(chan struct{})}
}

// Ready is closed once the coordinator is listening; URL is valid from
// then on.
func (co *Coordinator) Ready() <-chan struct{} { return co.ready }

// URL returns the coordinator's base URL ("http://host:port"). Valid
// only after Ready.
func (co *Coordinator) URL() string { return co.url }

// Stats snapshots scheduling counters (used by tests and /v1/status).
func (co *Coordinator) Stats() StatusResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.statusLocked()
}

// Run implements campaign.Runner: serve the trial set to registered
// workers and deliver each result to sink exactly once. It returns when
// every trial has a result (nil), when ctx is cancelled (ctx.Err()), or
// when the campaign fails (trial error, result conflict, sink error).
func (co *Coordinator) Run(ctx context.Context, c campaign.Campaign, trials []campaign.Trial, sink func(campaign.Result) error) error {
	if len(trials) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if co.cfg.Spec == nil {
		return fmt.Errorf("cluster: coordinator needs CoordinatorConfig.Spec (workers build their campaign from it)")
	}
	canonical, err := co.cfg.Spec.Canonical()
	if err != nil {
		return err
	}
	fp, err := co.cfg.Spec.Fingerprint()
	if err != nil {
		return err
	}
	info, err := InfoOf(c)
	if err != nil {
		return err
	}
	// The campaign's own metadata records the canonical spec it was
	// built from (spec.Build embeds it). If the caller wired a
	// different Spec into the coordinator, workers would build — and
	// return results for — a different experiment than the one whose
	// checkpoint header this run writes; refuse up front instead.
	if embedded, ok := info.Meta["spec"]; ok && embedded != string(canonical) {
		return fmt.Errorf("cluster: CoordinatorConfig.Spec does not match the campaign's spec (%s vs campaign %s)",
			fp, c.Name())
	}
	co.mu.Lock()
	if co.started {
		co.mu.Unlock()
		return fmt.Errorf("cluster: coordinator is single-use; make a new one per run")
	}
	co.started = true
	co.info = info
	co.specJSON = canonical
	co.fp = fp
	co.sink = sink
	co.recorded = make(map[int][]byte)
	co.workers = make(map[string]string)
	co.leases = NewLeaseTable[int](co.cfg.LeaseTTL, co.cfg.now)
	co.remaining = len(trials)
	if co.cfg.StateDir != "" {
		err = co.openStateLocked(c, trials)
	} else {
		err = co.planLocked(trials)
	}
	co.mu.Unlock()
	// Registered before the error check: openStateLocked may have opened
	// the WAL (and taken the state-dir lock) before failing.
	defer func() {
		if co.wal != nil {
			co.wal.Close()
		}
		if co.dirLock != nil {
			co.dirLock.Close()
		}
	}()
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", co.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", co.cfg.Addr, err)
	}
	scheme := "http"
	if co.cfg.TLSCert != "" || co.cfg.TLSKey != "" {
		tc, err := TLSServerConfig(co.cfg.TLSCert, co.cfg.TLSKey)
		if err != nil {
			ln.Close()
			return err
		}
		ln = tls.NewListener(ln, tc)
		scheme = "https"
	}
	co.url = scheme + "://" + ln.Addr().String()
	close(co.ready)
	srv := &http.Server{Handler: co.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	co.logf("coordinator: serving campaign %s (%d trials, %d shards, lease TTL %v) on %s\n",
		info.Campaign, len(trials), len(co.shards), co.cfg.LeaseTTL, co.url)

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case <-co.done:
		co.mu.Lock()
		runErr = co.failure
		co.mu.Unlock()
		// Let idle workers observe StatusDone / StatusFailed from their
		// next poll before the socket dies; otherwise they burn their
		// transport-retry budget against a dead address and report
		// "unreachable" instead of the real outcome.
		select {
		case <-time.After(co.cfg.Linger):
		case <-ctx.Done():
		}
	case err := <-serveErr:
		runErr = fmt.Errorf("cluster: coordinator server: %w", err)
	}
	// Bar handlers from the sink before returning: Shutdown's grace can
	// expire with a results POST still in flight, and once Run returns
	// the caller owns its result set and checkpoint again. Taking the
	// mutex also waits out any handler currently inside recordLocked.
	co.mu.Lock()
	co.closed = true
	co.mu.Unlock()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	return runErr
}

// planLocked splits the trial set into shards via the configured
// planner (the uniform default reproduces the historical interleaved
// split; a balanced planner equalizes predicted wall-clock instead of
// count). The planner — including a balance timing source on disk — is
// resolved here, only on the fresh-plan path: a WAL restore takes its
// shard table from the journal and must not depend on a timing file
// that may be long gone.
func (co *Coordinator) planLocked(trials []campaign.Trial) error {
	planner := co.cfg.Planner
	if planner == nil {
		var err error
		planner, err = campaign.PlannerByName(co.cfg.PlannerName)
		if err != nil {
			return err
		}
	}
	planned, err := planner.Plan(trials, campaign.ResolveShards(co.cfg.Shards, DefaultShards, len(trials)))
	if err != nil {
		return err
	}
	co.trialShard = make(map[int]int, len(trials))
	for _, ps := range planned {
		st := &shardState{label: ps.Label, trials: ps.Trials, remaining: make(map[int]campaign.Trial, len(ps.Trials))}
		for _, t := range ps.Trials {
			st.remaining[t.ID] = t
			co.trialShard[t.ID] = len(co.shards)
		}
		co.shards = append(co.shards, st)
	}
	return nil
}

// openStateLocked makes the coordinator durable: restore from an
// existing WAL in the state dir, or plan fresh and start journaling.
func (co *Coordinator) openStateLocked(c campaign.Campaign, trials []campaign.Trial) error {
	if err := os.MkdirAll(co.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("cluster: state dir: %w", err)
	}
	// Exclusive advisory lock for the life of this run: two coordinators
	// appending to one journal would interleave records and double-serve
	// the campaign. flock (not a pid file) so a SIGKILLed coordinator
	// releases it automatically.
	lock, err := os.OpenFile(filepath.Join(co.cfg.StateDir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: state dir lock: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return fmt.Errorf("cluster: state dir %s is already served by another coordinator (%w); stop it first", co.cfg.StateDir, err)
	}
	co.dirLock = lock
	walPath := campaign.WALPath(co.cfg.StateDir)
	if _, err := os.Stat(walPath); err == nil {
		data, err := os.ReadFile(walPath)
		if err != nil {
			return fmt.Errorf("cluster: read WAL: %w", err)
		}
		// A journal with no complete line (0 bytes, or only a torn
		// header from a serve killed before its first flush landed)
		// journaled nothing: plan fresh and overwrite, instead of
		// failing every restart until the operator deletes the dir. A
		// journal with complete-but-unreadable records is genuine
		// corruption and must keep failing loudly below.
		if bytes.ContainsRune(data, '\n') {
			return co.restoreLocked(c, trials, walPath, data)
		}
		co.logf("coordinator: state dir %s holds an empty journal (killed before the first flush?); planning fresh\n", co.cfg.StateDir)
	}
	if err := co.planLocked(trials); err != nil {
		return err
	}
	plannerName := co.cfg.PlannerName
	if plannerName == "" {
		plannerName = "uniform"
	}
	hdr := campaign.WALHeader{
		Campaign:    co.info.Campaign,
		Trials:      co.info.Trials,
		Fingerprint: co.fp,
		Spec:        string(co.specJSON),
		Planner:     plannerName,
		Shards:      make([]campaign.WALShard, len(co.shards)),
	}
	for i, st := range co.shards {
		ids := make([]int, 0, len(st.trials))
		for _, t := range st.trials {
			ids = append(ids, t.ID)
		}
		hdr.Shards[i] = campaign.WALShard{Label: st.label, Trials: ids}
	}
	wal, err := campaign.CreateWAL(walPath, hdr)
	if err != nil {
		return err
	}
	co.wal = wal
	co.logf("coordinator: journaling state to %s\n", walPath)
	return nil
}

// restoreLocked replays an existing WAL: verify it describes the
// requested experiment, restore the exact shard table (trial bodies
// re-derived from the campaign), deliver journaled results the caller
// has not already resumed, and invalidate leases that were open when
// the previous coordinator died — their workers re-register and resume
// from local checkpoints.
func (co *Coordinator) restoreLocked(c campaign.Campaign, trials []campaign.Trial, walPath string, data []byte) error {
	hdr, results, leases, err := campaign.ReadWALBytes(data, walPath)
	if err != nil {
		return err
	}
	if hdr.Fingerprint != co.fp {
		return fmt.Errorf("cluster: state dir %s journals spec %s, but this campaign is %s — wrong -state dir or wrong configuration",
			co.cfg.StateDir, hdr.Fingerprint, co.fp)
	}
	if hdr.Campaign != co.info.Campaign || hdr.Trials != co.info.Trials {
		return fmt.Errorf("cluster: state dir %s journals campaign %s (%d trials), want %s (%d)",
			co.cfg.StateDir, hdr.Campaign, hdr.Trials, co.info.Campaign, co.info.Trials)
	}
	full, err := c.Trials()
	if err != nil {
		return err
	}
	byID := make(map[int]campaign.Trial, len(full))
	for _, t := range full {
		byID[t.ID] = t
	}
	current := make(map[int]bool, len(trials))
	for _, t := range trials {
		current[t.ID] = true
	}
	co.trialShard = make(map[int]int, len(trials))
	assigned := make(map[int]string)
	for _, ws := range hdr.Shards {
		st := &shardState{label: ws.Label, remaining: make(map[int]campaign.Trial)}
		for _, id := range ws.Trials {
			t, ok := byID[id]
			if !ok {
				return fmt.Errorf("cluster: WAL shard %s names unknown trial %d", ws.Label, id)
			}
			if prev, dup := assigned[id]; dup {
				return fmt.Errorf("cluster: WAL assigns trial %d to both shard %s and %s", id, prev, ws.Label)
			}
			assigned[id] = ws.Label
			st.trials = append(st.trials, t)
			if current[id] {
				st.remaining[id] = t
				co.trialShard[id] = len(co.shards)
			}
		}
		st.done = len(st.remaining) == 0
		co.shards = append(co.shards, st)
	}
	for id := range current {
		if _, ok := co.trialShard[id]; !ok {
			// The trial was already complete — resumed from a pre-existing
			// -o checkpoint — when this journal was created, so only that
			// checkpoint holds its result; the journal cannot supply it.
			return fmt.Errorf("cluster: WAL shard table does not cover pending trial %d: it was complete before journaling began, and the checkpoint that held its result is no longer supplying it — restore the original -o checkpoint or start a fresh -state dir", id)
		}
	}
	// Replay accepted results. Those still pending here — the caller
	// runs without a checkpoint, or lost it — are delivered to the sink
	// now; the rest were already resumed upstream and take the
	// out-of-scope drop path.
	for _, r := range results {
		accepted, err := co.recordLocked(r)
		if err != nil {
			return fmt.Errorf("cluster: replay WAL result for trial %d: %w", r.TrialID, err)
		}
		if accepted {
			co.recovered++
		}
	}
	wal, err := campaign.OpenWALAppend(walPath)
	if err != nil {
		return err
	}
	co.wal = wal
	// Continue the lease sequence where the journal left off, so this
	// epoch's lease IDs never collide with journaled ones (OpenLeases
	// tolerates reuse, but unique IDs keep the audit trail unambiguous).
	co.leases.SetSeq(campaign.GrantCount(leases))
	open := campaign.OpenLeases(leases)
	for _, l := range open {
		if err := co.wal.AppendLease(campaign.WALLease{Event: campaign.LeaseInvalidated, ID: l.ID}); err != nil {
			return fmt.Errorf("cluster: journal lease invalidation: %w", err)
		}
		for _, st := range co.shards {
			if st.label == l.Shard && !st.done && len(st.remaining) > 0 {
				co.reassigned++
				break
			}
		}
	}
	co.logf("coordinator: restored state from %s: %d journaled results (%d recovered into this run), %d stale leases invalidated\n",
		walPath, len(results), co.recovered, len(open))
	return nil
}

// mux wires the protocol endpoints.
func (co *Coordinator) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/register", co.handleRegister)
	m.HandleFunc("POST /v1/lease", co.handleLease)
	m.HandleFunc("POST /v1/heartbeat", co.handleHeartbeat)
	m.HandleFunc("POST /v1/results", co.handleResults)
	m.HandleFunc("GET /v1/status", co.handleStatus)
	return m
}

func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !ReadJSON(w, r, &req) {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if req.Proto != ProtocolVersion {
		WriteJSONError(w, http.StatusConflict, fmt.Sprintf(
			"protocol version mismatch: worker %q speaks v%d, coordinator v%d — rebuild the worker",
			req.Worker, req.Proto, ProtocolVersion))
		return
	}
	co.wseq++
	id := fmt.Sprintf("w%d-%s", co.wseq, req.Worker)
	co.workers[id] = req.Worker
	co.logf("coordinator: registered worker %s (shipping spec %s)\n", id, co.fp)
	WriteJSON(w, RegisterResponse{
		WorkerID:       id,
		LeaseTTLMillis: co.cfg.LeaseTTL.Milliseconds(),
		Spec:           json.RawMessage(co.specJSON),
		Fingerprint:    co.fp,
	})
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !ReadJSON(w, r, &req) {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		WriteJSONError(w, http.StatusServiceUnavailable, "coordinator shutting down")
		return
	}
	if !co.knownWorker(w, req.WorkerID) {
		return
	}
	if resp, over := co.runOverLocked(); over {
		WriteJSON(w, resp)
		return
	}
	if err := co.sweepLocked(); err != nil {
		co.failLocked(err)
	}
	if resp, over := co.runOverLocked(); over {
		WriteJSON(w, resp)
		return
	}
	for i, st := range co.shards {
		if st.done || co.leases.Holder(i) != nil {
			continue
		}
		l := co.leases.Grant(req.WorkerID, i)
		if err := co.journalLeaseLocked(campaign.WALLease{
			Event: campaign.LeaseGranted, ID: l.ID, Worker: req.WorkerID, Shard: st.label,
		}); err != nil {
			co.failLocked(err)
			resp, _ := co.runOverLocked()
			WriteJSON(w, resp)
			return
		}
		pending := make([]campaign.Trial, 0, len(st.remaining))
		for _, t := range st.remaining {
			pending = append(pending, t)
		}
		sort.Slice(pending, func(a, b int) bool { return pending[a].ID < pending[b].ID })
		co.logf("coordinator: leased shard %s (%d trials pending) to %s as %s\n",
			st.label, len(pending), req.WorkerID, l.ID)
		WriteJSON(w, LeaseResponse{Status: StatusLease, LeaseID: l.ID, Shard: st.label, Trials: pending})
		return
	}
	WriteJSON(w, LeaseResponse{Status: StatusWait})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !ReadJSON(w, r, &req) {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if !co.knownWorker(w, req.WorkerID) {
		return
	}
	status := StatusWait
	if resp, over := co.runOverLocked(); over {
		status = resp.Status
	}
	WriteJSON(w, HeartbeatResponse{OK: co.leases.Renew(req.LeaseID), Status: status})
}

func (co *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	if !ReadJSON(w, r, &req) {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		WriteJSONError(w, http.StatusServiceUnavailable, "coordinator shutting down")
		return
	}
	if !co.knownWorker(w, req.WorkerID) {
		return
	}
	if req.TrialErr != "" {
		co.failLocked(fmt.Errorf("cluster: worker %s: %s", req.WorkerID, req.TrialErr))
		WriteJSON(w, ResultsResponse{OK: true})
		return
	}
	// Results are accepted from any registered worker (every worker
	// runs the campaign built from the coordinator's own spec), even
	// one whose lease has lapsed: a slow worker's trials are as
	// deterministic as a fast one's, and the conflict check catches
	// genuine disagreement. Leases only schedule work.
	for i, res := range req.Results {
		if i < len(req.Wall) {
			// Re-attach the out-of-band wall-clock (identity-neutral).
			res.Wall = req.Wall[i]
		}
		if _, err := co.recordLocked(res); err != nil {
			co.failLocked(err)
			WriteJSON(w, ResultsResponse{OK: true})
			return
		}
	}
	WriteJSON(w, ResultsResponse{OK: true})
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	defer co.mu.Unlock()
	WriteJSON(w, co.statusLocked())
}

// recordLocked folds one streamed (or WAL-replayed) result in:
// exactly-once sink delivery, duplicate verification, journaling, shard
// bookkeeping, completion. It reports whether the result was newly
// accepted (false for out-of-scope records and identical duplicates).
func (co *Coordinator) recordLocked(res campaign.Result) (bool, error) {
	shard, planned := co.trialShard[res.TrialID]
	if !planned {
		// Outside this run's trial set — e.g. a restarted worker's local
		// checkpoint covering trials the coordinator already resumed
		// from its own. The sink must see each planned trial exactly
		// once, so out-of-scope records are dropped, not re-sunk.
		return false, nil
	}
	enc, err := json.Marshal(res)
	if err != nil {
		return false, fmt.Errorf("cluster: marshal result for trial %d: %w", res.TrialID, err)
	}
	if prev, ok := co.recorded[res.TrialID]; ok {
		if !bytes.Equal(prev, enc) {
			return false, fmt.Errorf("cluster: conflicting results for trial %d — workers disagree about the campaign", res.TrialID)
		}
		return false, nil // duplicate from a reassigned or resumed shard
	}
	if err := co.sink(res); err != nil {
		return false, err
	}
	// Journal after the sink accepted: "in the WAL" means "delivered",
	// so replay can re-deliver journaled results the caller lost. A
	// crash between the two leaves the result in the caller's
	// checkpoint only, which resume handles (it never re-enters the
	// pending set).
	if co.wal != nil {
		if err := co.wal.AppendResult(res); err != nil {
			return false, fmt.Errorf("cluster: journal result for trial %d: %w", res.TrialID, err)
		}
	}
	co.recorded[res.TrialID] = enc
	st := co.shards[shard]
	delete(st.remaining, res.TrialID)
	co.remaining--
	if len(st.remaining) == 0 && !st.done {
		st.done = true
		if l := co.leases.Holder(shard); l != nil {
			co.leases.Release(l.ID)
			if err := co.journalLeaseLocked(campaign.WALLease{Event: campaign.LeaseReleased, ID: l.ID}); err != nil {
				return true, err
			}
		}
		co.logf("coordinator: shard %s complete (%d/%d trials done)\n",
			st.label, len(co.recorded), co.info.Trials)
	}
	if co.remaining == 0 {
		co.logf("coordinator: campaign %s complete\n", co.info.Campaign)
		co.doneOnce.Do(func() { close(co.done) })
	}
	return true, nil
}

// sweepLocked expires dead leases, journaling each expiry and counting
// shards that go back on the queue with work still pending as
// reassignments.
func (co *Coordinator) sweepLocked() error {
	for _, l := range co.leases.Sweep() {
		st := co.shards[l.Key]
		if !st.done && len(st.remaining) > 0 {
			co.reassigned++
			co.logf("coordinator: lease on shard %s expired with %d trials pending; reassigning\n",
				st.label, len(st.remaining))
		}
		if err := co.journalLeaseLocked(campaign.WALLease{Event: campaign.LeaseExpired, ID: l.ID}); err != nil {
			return err
		}
	}
	return nil
}

// journalLeaseLocked appends a lease lifecycle event to the WAL (no-op
// without a state dir).
func (co *Coordinator) journalLeaseLocked(ev campaign.WALLease) error {
	if co.wal == nil {
		return nil
	}
	if err := co.wal.AppendLease(ev); err != nil {
		return fmt.Errorf("cluster: journal lease %s %s: %w", ev.Event, ev.ID, err)
	}
	return nil
}

// failLocked aborts the run.
func (co *Coordinator) failLocked(err error) {
	if co.failure == nil {
		co.failure = err
		co.logf("coordinator: campaign failed: %v\n", err)
	}
	co.doneOnce.Do(func() { close(co.done) })
}

// runOverLocked returns the terminal lease response once the campaign
// has completed or failed.
func (co *Coordinator) runOverLocked() (LeaseResponse, bool) {
	if co.failure != nil {
		return LeaseResponse{Status: StatusFailed, Error: co.failure.Error()}, true
	}
	if co.remaining == 0 {
		return LeaseResponse{Status: StatusDone}, true
	}
	return LeaseResponse{}, false
}

// knownWorker rejects requests from unregistered worker IDs (a worker
// that raced a coordinator restart must re-register).
func (co *Coordinator) knownWorker(w http.ResponseWriter, id string) bool {
	if _, ok := co.workers[id]; !ok {
		WriteJSONError(w, http.StatusForbidden, fmt.Sprintf("unknown worker %q: register first", id))
		return false
	}
	return true
}

func (co *Coordinator) statusLocked() StatusResponse {
	st := StatusResponse{
		Campaign:    co.info,
		Fingerprint: co.fp,
		Planned:     co.info.Trials,
		Done:        len(co.recorded),
		Recovered:   co.recovered,
		Workers:     len(co.workers),
		Reassigned:  co.reassigned,
		Complete:    co.started && co.remaining == 0,
	}
	if co.failure != nil {
		st.Failed = co.failure.Error()
	}
	for i, sh := range co.shards {
		s := ShardStatus{Shard: sh.label, Trials: len(sh.trials), Remaining: len(sh.remaining), Done: sh.done}
		if l := co.leases.Holder(i); l != nil {
			s.Worker = l.Worker
		}
		st.Shards = append(st.Shards, s)
	}
	return st
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Log != nil {
		fmt.Fprintf(co.cfg.Log, format, args...)
	}
}
