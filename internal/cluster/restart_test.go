package cluster

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
	"falvolt/internal/tensor"
)

// Coordinator durability tests: the in-process counterpart of the CI
// kill-and-restart gauntlet. "Kill" here is context cancellation of the
// coordinator's Run — from the fleet's perspective the same event as a
// SIGKILL (the socket dies, worker IDs are forgotten), while the WAL on
// disk is what the next incarnation has to work with.

// delayedSelftestSpec declares a selftest slow enough (per-trial delay)
// to interrupt mid-campaign deterministically.
func delayedSelftestSpec(n int, seed int64, delayMS int) *spec.Spec {
	return &spec.Spec{
		Version: spec.Version, Kind: "selftest", Seed: seed,
		Selftest: &spec.SelftestSpec{Trials: n, DelayMillis: delayMS},
	}
}

// hostPort strips the scheme from a coordinator URL so a restarted
// coordinator can bind the same address its predecessor used — which
// is what lets the surviving workers find it again.
func hostPort(url string) string { return strings.TrimPrefix(url, "http://") }

// waitForDone polls a coordinator's stats until at least want results
// were accepted.
func waitForDone(t *testing.T, co *Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for co.Stats().Done < want {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never reached %d accepted results", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordinatorRestartResumesFromWAL is the durability acceptance
// gate, checkpoint variant (what `campaign serve -state -o` does): kill
// the coordinator mid-campaign, restart it on the same state dir,
// checkpoint and address, and the fleet finishes with byte-identical
// merged output and no trial executed twice — the surviving worker
// re-registers on its own.
func TestCoordinatorRestartResumesFromWAL(t *testing.T) {
	const n, killAfter = 24, 5
	sp := delayedSelftestSpec(n, 7, 20)
	want := singleProcessWant(t, buildFromSpec(t, sp))

	state := t.TempDir()
	ckpt := filepath.Join(t.TempDir(), "coordinator.jsonl")

	// Life 1: durable coordinator, killed once killAfter results landed.
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	co1, url, out1 := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Shards: 4, LeaseTTL: 300 * time.Millisecond, StateDir: state},
		campaign.Options{Checkpoint: ckpt, Context: ctx1})

	var runs atomic.Int64
	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	w := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "survivor", CheckpointDir: t.TempDir(), Retries: 1000,
		Runner: countingRunner{inner: campaign.PoolRunner{Engine: tensor.Serial()}, runs: &runs},
	}, wctx)

	waitForDone(t, co1, killAfter)
	kill()
	if res := <-out1; res.err == nil {
		t.Fatal("killed coordinator run should report cancellation")
	}
	done1 := co1.Stats().Done
	if done1 >= n {
		t.Fatalf("campaign completed (%d/%d) before the kill; raise the delay", done1, n)
	}

	// Life 2: same state dir, same checkpoint, same address. The worker
	// was never told anything happened.
	co2, _, out2 := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Addr: hostPort(url), Shards: 4, LeaseTTL: 300 * time.Millisecond, StateDir: state},
		campaign.Options{Checkpoint: ckpt})

	res := <-out2
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-w; err != nil {
		t.Fatalf("surviving worker exited with error: %v", err)
	}
	if !res.rr.Complete {
		t.Fatalf("restarted run incomplete: %d/%d", len(res.rr.Results), n)
	}
	got, err := campaign.MarshalResults(res.rr.Results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged output after coordinator restart differs from single-process run")
	}
	if runs.Load() != n {
		t.Fatalf("workers executed %d trials across the restart, want exactly %d", runs.Load(), n)
	}
	// The checkpoint already carried the pre-kill results, so nothing
	// needed recovering from the WAL itself.
	if st := co2.Stats(); st.Recovered != 0 || !st.Complete {
		t.Fatalf("restarted stats: %+v", st)
	}
	// And the WAL round-trips as a complete record of the run.
	hdr, walResults, _, err := campaign.ReadWAL(campaign.WALPath(state))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Trials != n || !campaign.Complete(walResults, n) {
		t.Fatalf("final WAL covers %d/%d trials", len(walResults), n)
	}
}

// TestCoordinatorRestartRecoversWALResults is the checkpoint-less
// variant: with no -o file to resume from, every result the previous
// incarnation accepted must be recovered from the WAL alone.
func TestCoordinatorRestartRecoversWALResults(t *testing.T) {
	const n, killAfter = 16, 4
	sp := delayedSelftestSpec(n, 3, 20)
	want := singleProcessWant(t, buildFromSpec(t, sp))

	state := t.TempDir()
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	co1, url, out1 := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Shards: 2, LeaseTTL: 300 * time.Millisecond, StateDir: state},
		campaign.Options{Context: ctx1})

	var runs atomic.Int64
	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	w := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "survivor", CheckpointDir: t.TempDir(), Retries: 1000,
		Runner: countingRunner{inner: campaign.PoolRunner{Engine: tensor.Serial()}, runs: &runs},
	}, wctx)

	waitForDone(t, co1, killAfter)
	kill()
	if res := <-out1; res.err == nil {
		t.Fatal("killed coordinator run should report cancellation")
	}
	done1 := co1.Stats().Done
	if done1 >= n {
		t.Fatalf("campaign completed (%d/%d) before the kill; raise the delay", done1, n)
	}

	co2, _, out2 := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Addr: hostPort(url), Shards: 2, LeaseTTL: 300 * time.Millisecond, StateDir: state},
		campaign.Options{})

	res := <-out2
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-w; err != nil {
		t.Fatalf("surviving worker exited with error: %v", err)
	}
	got, err := campaign.MarshalResults(res.rr.Results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("WAL-recovered merged output differs from single-process run")
	}
	if st := co2.Stats(); st.Recovered != done1 {
		t.Fatalf("recovered %d results from the WAL, want every accepted pre-kill result (%d)", st.Recovered, done1)
	}
	if runs.Load() != n {
		t.Fatalf("workers executed %d trials across the restart, want exactly %d", runs.Load(), n)
	}
}

// TestRestartSurvivesMissingBalanceSource: the WAL's shard table is
// authoritative on replay, so a coordinator started with
// -balance <timing-file> must restart fine after that file is gone.
func TestRestartSurvivesMissingBalanceSource(t *testing.T) {
	const n = 12
	// 1ms delay guarantees the timing checkpoint records nonzero walls
	// even on coarse clocks, so the balance planner accepts it.
	sp := delayedSelftestSpec(n, 7, 1)
	want := singleProcessWant(t, buildFromSpec(t, sp))

	// A timing source: one completed run of the same campaign.
	timingDir := t.TempDir()
	timing := filepath.Join(timingDir, "timing.jsonl")
	if _, err := campaign.Run(buildFromSpec(t, sp), campaign.Options{Checkpoint: timing}); err != nil {
		t.Fatal(err)
	}

	state := t.TempDir()
	ctx1, kill := context.WithCancel(context.Background())
	_, url, out1 := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{StateDir: state, PlannerName: "balance:" + timing, LeaseTTL: time.Second},
		campaign.Options{Context: ctx1})
	kill() // WAL header (with the balanced shard table) is already on disk
	if res := <-out1; res.err == nil {
		t.Fatal("killed coordinator run should report cancellation")
	}

	// The timing source vanishes (rotated away, different machine...).
	if err := os.RemoveAll(timingDir); err != nil {
		t.Fatal(err)
	}

	// Restart with the same flags must restore from the WAL, not
	// re-resolve the planner.
	co2, url2, out2 := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Addr: hostPort(url), StateDir: state, PlannerName: "balance:" + timing, LeaseTTL: time.Second},
		campaign.Options{})
	wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer wcancel()
	w := startWorker(t, WorkerConfig{Coordinator: url2, Name: "w", CheckpointDir: t.TempDir()}, wctx)
	res := <-out2
	if res.err != nil {
		t.Fatalf("restart with missing balance source failed: %v", res.err)
	}
	if err := <-w; err != nil {
		t.Fatalf("worker exited with error: %v", err)
	}
	if got, _ := campaign.MarshalResults(res.rr.Results); !bytes.Equal(got, want) {
		t.Fatal("balanced restart merged output differs from single-process run")
	}
	if st := co2.Stats(); !st.Complete {
		t.Fatalf("restarted stats: %+v", st)
	}
}

// TestTornHeaderWALPlansFresh: a serve SIGKILLed before its journal
// header durably landed leaves a 0-byte or newline-less wal.jsonl;
// restarting with the same flags must plan fresh and overwrite instead
// of failing until the operator deletes the state dir.
func TestTornHeaderWALPlansFresh(t *testing.T) {
	const n = 8
	sp := delayedSelftestSpec(n, 7, 0)
	want := singleProcessWant(t, buildFromSpec(t, sp))
	for name, torn := range map[string]string{"empty": "", "torn header": `{"header":{"version":1,"campaig`} {
		state := t.TempDir()
		if err := os.WriteFile(campaign.WALPath(state), []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		co, url, out := startCoordinator(t, buildFromSpec(t, sp), sp,
			CoordinatorConfig{StateDir: state, LeaseTTL: time.Second},
			campaign.Options{})
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		w := startWorker(t, WorkerConfig{Coordinator: url, Name: "w"}, ctx)
		res := <-out
		if res.err != nil {
			t.Fatalf("%s WAL: restart did not plan fresh: %v", name, res.err)
		}
		if err := <-w; err != nil {
			t.Fatalf("%s WAL: worker exited with error: %v", name, err)
		}
		if got, _ := campaign.MarshalResults(res.rr.Results); !bytes.Equal(got, want) {
			t.Fatalf("%s WAL: merged output differs from single-process run", name)
		}
		if st := co.Stats(); !st.Complete {
			t.Fatalf("%s WAL: stats %+v", name, st)
		}
		// The overwritten journal is a complete, readable record now.
		if _, rs, _, err := campaign.ReadWAL(campaign.WALPath(state)); err != nil || !campaign.Complete(rs, n) {
			t.Fatalf("%s WAL: rewritten journal unreadable or incomplete: %v", name, err)
		}
		cancel()
	}
}

// TestStateDirDoubleServeRefused: a second coordinator on a live state
// dir must be refused up front — two journal writers would interleave
// records and double-serve the campaign.
func TestStateDirDoubleServeRefused(t *testing.T) {
	state := t.TempDir()
	sp := delayedSelftestSpec(12, 7, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, out := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{StateDir: state, LeaseTTL: time.Second},
		campaign.Options{Context: ctx})

	co2 := NewCoordinator(CoordinatorConfig{
		Addr: "127.0.0.1:0", Spec: sp, StateDir: state, Linger: 50 * time.Millisecond,
	})
	_, err := campaign.Run(buildFromSpec(t, sp), campaign.Options{Runner: co2})
	if err == nil || !strings.Contains(err.Error(), "already served by another coordinator") {
		t.Fatalf("second coordinator on a live state dir accepted: %v", err)
	}
	cancel()
	if res := <-out; res.err == nil {
		t.Fatal("first coordinator should report cancellation")
	}

	// With the first coordinator gone, the lock is free again.
	co3 := NewCoordinator(CoordinatorConfig{
		Addr: "127.0.0.1:0", Spec: sp, StateDir: state, Linger: 50 * time.Millisecond,
	})
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	if _, err := campaign.Run(buildFromSpec(t, sp), campaign.Options{Runner: co3, Context: ctx3}); err == nil ||
		strings.Contains(err.Error(), "already served") {
		t.Fatalf("lock not released after the first coordinator exited: %v", err)
	}
}

// TestStateDirSpecMismatchRefused: a restarted coordinator must refuse
// a state dir journaled by a different experiment instead of quietly
// mixing runs.
func TestStateDirSpecMismatchRefused(t *testing.T) {
	state := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	sp := delayedSelftestSpec(12, 7, 0)
	_, _, out := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{StateDir: state, LeaseTTL: time.Second},
		campaign.Options{Context: ctx})
	cancel() // no workers; the WAL header is written at Run start
	if res := <-out; res.err == nil {
		t.Fatal("cancelled coordinator run should report cancellation")
	}

	other := delayedSelftestSpec(30, 7, 0)
	co := NewCoordinator(CoordinatorConfig{
		Addr: "127.0.0.1:0", Spec: other, StateDir: state, Linger: 50 * time.Millisecond,
	})
	_, err := campaign.Run(buildFromSpec(t, other), campaign.Options{Runner: co})
	if err == nil || !strings.Contains(err.Error(), "journals spec") {
		t.Fatalf("mismatched state dir accepted: %v", err)
	}
}
