package cluster

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
	"falvolt/internal/tensor"
)

// selftestSpec declares the synthetic smoke campaign the way a cmd tool
// would compile it from flags.
func selftestSpec(n int, seed int64) *spec.Spec {
	return &spec.Spec{
		Version: spec.Version, Kind: "selftest", Seed: seed,
		Selftest: &spec.SelftestSpec{Trials: n},
	}
}

// buildFromSpec constructs the campaign a spec describes — the same
// path coordinators, workers and cmd tools share.
func buildFromSpec(t *testing.T, sp *spec.Spec) campaign.Campaign {
	t.Helper()
	built, err := spec.Build(sp, spec.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return built.Campaign
}

// countingRunner wraps a Runner and counts delivered results, so tests
// can assert how many trials actually executed on workers (resumed
// checkpoint records are streamed without passing through the runner,
// so they are not counted — exactly the "no re-runs" property under
// test).
type countingRunner struct {
	inner campaign.Runner
	runs  *atomic.Int64
}

func (r countingRunner) Run(ctx context.Context, c campaign.Campaign, trials []campaign.Trial,
	sink func(campaign.Result) error) error {
	return r.inner.Run(ctx, c, trials, func(res campaign.Result) error {
		r.runs.Add(1)
		return sink(res)
	})
}

// cancelAfter wraps a runner and cancels a context once `after` results
// have been delivered — a deterministic simulated worker death
// mid-shard (the worker stops executing and heartbeating at once).
type cancelAfter struct {
	inner  campaign.Runner
	after  int64
	count  atomic.Int64
	cancel context.CancelFunc
}

func (r *cancelAfter) Run(ctx context.Context, c campaign.Campaign, trials []campaign.Trial,
	sink func(campaign.Result) error) error {
	wrapped := func(res campaign.Result) error {
		if err := sink(res); err != nil {
			return err
		}
		if r.count.Add(1) >= r.after {
			r.cancel()
		}
		return nil
	}
	return r.inner.Run(ctx, c, trials, wrapped)
}

// startCoordinator runs campaign.Run with a Coordinator runner in the
// background and returns the coordinator, its URL, and a channel with
// the run outcome. sp is the spec the coordinator ships to workers.
func startCoordinator(t *testing.T, c campaign.Campaign, sp *spec.Spec, cfg CoordinatorConfig,
	opt campaign.Options) (*Coordinator, string, <-chan runOutcome) {
	t.Helper()
	cfg.Spec = sp
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Linger == 0 {
		cfg.Linger = 50 * time.Millisecond
	}
	co := NewCoordinator(cfg)
	opt.Runner = co
	if opt.Context == nil {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		t.Cleanup(cancel)
		opt.Context = ctx
	}
	out := make(chan runOutcome, 1)
	go func() {
		rr, err := campaign.Run(c, opt)
		out <- runOutcome{rr: rr, err: err}
	}()
	select {
	case <-co.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never started listening")
	}
	return co, co.URL(), out
}

type runOutcome struct {
	rr  *campaign.RunResult
	err error
}

// startWorker launches a worker daemon. Unless the test injects a
// Build hook, the worker is spec-free: everything it knows about the
// campaign arrives from the coordinator at registration.
func startWorker(t *testing.T, cfg WorkerConfig, ctx context.Context) <-chan error {
	t.Helper()
	if cfg.Poll == 0 {
		cfg.Poll = 20 * time.Millisecond
	}
	if cfg.Runner == nil {
		cfg.Runner = campaign.PoolRunner{Engine: tensor.NewParallel(2)}
	}
	done := make(chan error, 1)
	go func() { done <- NewWorker(cfg).Run(ctx) }()
	return done
}

func singleProcessWant(t *testing.T, c campaign.Campaign) []byte {
	t.Helper()
	rr, err := campaign.Run(c, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.MarshalResults(rr.Results)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedEquivalence is the acceptance gate: a campaign
// distributed across two loopback workers launched spec-free (the
// coordinator ships the canonical spec at registration) produces
// byte-identical merged result JSON to the single-process PoolRunner
// run, with every trial executed exactly once.
func TestDistributedEquivalence(t *testing.T) {
	const n = 37
	sp := selftestSpec(n, 7)
	want := singleProcessWant(t, buildFromSpec(t, sp))

	ckpt := filepath.Join(t.TempDir(), "coordinator.jsonl")
	co, url, out := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Shards: 4, LeaseTTL: 2 * time.Second},
		campaign.Options{Checkpoint: ckpt})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var runs atomic.Int64
	counting := func() campaign.Runner {
		return countingRunner{inner: campaign.PoolRunner{Engine: tensor.NewParallel(2)}, runs: &runs}
	}
	// w1 is fully spec-free; w2 additionally records what arrived, to
	// pin down that the campaign really came over the wire.
	var gotKind atomic.Value
	w1 := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "w1", CheckpointDir: t.TempDir(), Runner: counting(),
	}, ctx)
	w2 := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "w2", CheckpointDir: t.TempDir(), Runner: counting(),
		Build: func(s *spec.Spec) (*spec.Built, error) {
			gotKind.Store(s.Kind)
			return spec.Build(s, spec.BuildOpts{})
		},
	}, ctx)

	res := <-out
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !res.rr.Complete || res.rr.Executed != n {
		t.Fatalf("distributed run executed %d/%d, complete=%v", res.rr.Executed, n, res.rr.Complete)
	}
	got, err := campaign.MarshalResults(res.rr.Results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("distributed result JSON differs from single-process run")
	}
	if runs.Load() != n {
		t.Fatalf("workers executed %d trials, want exactly %d", runs.Load(), n)
	}
	for i, w := range []<-chan error{w1, w2} {
		if err := <-w; err != nil {
			t.Fatalf("worker %d exited with error: %v", i+1, err)
		}
	}
	if k, _ := gotKind.Load().(string); k != "selftest" {
		t.Fatalf("worker 2 received spec kind %q, want %q", k, "selftest")
	}

	// The coordinator's checkpoint holds each trial exactly once, keeps
	// the wire-carried wall-clock, and merges to the same bytes.
	h, rs, err := campaign.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Campaign != "selftest" || len(rs) != n || !campaign.Complete(rs, n) {
		t.Fatalf("coordinator checkpoint: campaign %q, %d results (complete=%v)",
			h.Campaign, len(rs), campaign.Complete(rs, n))
	}
	if sjson, err := spec.FromMeta(h.Meta); err != nil || sjson.Kind != "selftest" {
		t.Fatalf("checkpoint header spec metadata: %v (kind %v)", err, sjson)
	}
	// At least some trials must carry a wire-delivered wall-clock; not
	// all, because a sub-clock-tick synthetic trial can legitimately
	// measure zero on coarse monotonic clocks.
	timed := 0
	for _, r := range rs {
		if r.Wall > 0 {
			timed++
		}
	}
	if timed == 0 {
		t.Fatal("no trial reached the coordinator checkpoint with a wall-clock")
	}
	if b, _ := campaign.MarshalResults(rs); !bytes.Equal(b, want) {
		t.Fatal("coordinator checkpoint differs from single-process run")
	}
	if st := co.Stats(); st.Reassigned != 0 || !st.Complete {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWorkerDeathReassignment kills a worker mid-shard: its lease must
// expire, the shard's remaining trials must be reassigned to the
// surviving worker, no trial may execute twice, and the merged output
// stays byte-identical.
func TestWorkerDeathReassignment(t *testing.T) {
	const n, dieAfter = 24, 3
	sp := selftestSpec(n, 7)
	want := singleProcessWant(t, buildFromSpec(t, sp))

	ckpt := filepath.Join(t.TempDir(), "coordinator.jsonl")
	co, url, out := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Shards: 2, LeaseTTL: 150 * time.Millisecond},
		campaign.Options{Checkpoint: ckpt})

	// Worker A dies (stops running AND heartbeating) after 3 results.
	var runs atomic.Int64
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	ra := &cancelAfter{
		inner:  countingRunner{inner: campaign.PoolRunner{Engine: tensor.Serial()}, runs: &runs},
		after:  dieAfter,
		cancel: cancelA,
	}
	wa := startWorker(t, WorkerConfig{Coordinator: url, Name: "doomed", Runner: ra, CheckpointDir: t.TempDir()}, ctxA)

	// Let A claim a shard and push its 3 results before B exists, so
	// the reassignment path is actually exercised.
	deadline := time.Now().Add(30 * time.Second)
	for co.Stats().Done < dieAfter {
		if time.Now().After(deadline) {
			t.Fatal("worker A never delivered its first results")
		}
		time.Sleep(10 * time.Millisecond)
	}
	<-wa // A is dead (context cancelled)

	ctxB, cancelB := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelB()
	wb := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "survivor", CheckpointDir: t.TempDir(),
		Runner: countingRunner{inner: campaign.PoolRunner{Engine: tensor.Serial()}, runs: &runs},
	}, ctxB)

	res := <-out
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-wb; err != nil {
		t.Fatalf("surviving worker exited with error: %v", err)
	}
	got, err := campaign.MarshalResults(res.rr.Results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged output after reassignment differs from single-process run")
	}
	if runs.Load() != n {
		t.Fatalf("workers executed %d trials across the death+reassignment, want exactly %d", runs.Load(), n)
	}
	if st := co.Stats(); st.Reassigned < 1 {
		t.Fatalf("expected at least one lease reassignment, stats: %+v", st)
	}
	// Surviving checkpoint: every trial exactly once.
	_, rs, err := campaign.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != n || !campaign.Complete(rs, n) {
		t.Fatalf("surviving checkpoint has %d records for %d trials", len(rs), n)
	}
}

// TestRestartedWorkerResumesLocalCheckpoint: a worker that dies and
// comes back with the same checkpoint directory is re-granted the shard
// and resumes from disk — streamed records are deduplicated and no
// trial re-runs.
func TestRestartedWorkerResumesLocalCheckpoint(t *testing.T) {
	const n, dieAfter = 16, 5
	sp := selftestSpec(n, 3)
	want := singleProcessWant(t, buildFromSpec(t, sp))

	var runs atomic.Int64
	_, url, out := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{Shards: 1, LeaseTTL: 150 * time.Millisecond},
		campaign.Options{})

	dir := t.TempDir() // shared across the worker's two lives
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	ra := &cancelAfter{
		inner:  countingRunner{inner: campaign.PoolRunner{Engine: tensor.Serial()}, runs: &runs},
		after:  dieAfter,
		cancel: cancelA,
	}
	wa := startWorker(t, WorkerConfig{Coordinator: url, Name: "flaky", Runner: ra, CheckpointDir: dir}, ctxA)
	<-wa

	ctxB, cancelB := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelB()
	wb := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "flaky", CheckpointDir: dir,
		Runner: countingRunner{inner: campaign.PoolRunner{Engine: tensor.Serial()}, runs: &runs},
	}, ctxB)

	res := <-out
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-wb; err != nil {
		t.Fatalf("restarted worker exited with error: %v", err)
	}
	if got, _ := campaign.MarshalResults(res.rr.Results); !bytes.Equal(got, want) {
		t.Fatal("post-restart merged output differs from single-process run")
	}
	if runs.Load() != n {
		t.Fatalf("executed %d trials across restart, want exactly %d (local checkpoint must prevent re-runs)", runs.Load(), n)
	}
	// The local shard checkpoint is complete and re-readable.
	_, rs, err := campaign.ReadCheckpoint(filepath.Join(dir, shardFileName("selftest", "0/1")))
	if err != nil {
		t.Fatal(err)
	}
	if !campaign.Complete(rs, n) {
		t.Fatalf("local shard checkpoint incomplete: missing %v", campaign.Missing(rs, n))
	}
}

// TestProtocolMismatchRejected: a worker speaking an older wire
// protocol is refused at registration with a deliberate (non-retried)
// rejection.
func TestProtocolMismatchRejected(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sp := selftestSpec(20, 1)
	_, url, out := startCoordinator(t, buildFromSpec(t, sp), sp,
		CoordinatorConfig{LeaseTTL: time.Second},
		campaign.Options{Context: ctx})

	cl := newClient(url, "", "")
	_, err := cl.register(RegisterRequest{Worker: "stale-build", Proto: ProtocolVersion - 1})
	if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Fatalf("stale worker registered anyway: err=%v", err)
	}
	cancel() // nothing will finish the campaign
	if res := <-out; res.err == nil {
		t.Fatal("coordinator run should report cancellation")
	}
}

// TestUnknownSpecKindFailsWorker: a worker handed a spec whose kind its
// build has no registered builder for fails cleanly at build time
// instead of looping or corrupting anything.
func TestUnknownSpecKindFailsWorker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sp := &spec.Spec{Version: spec.Version, Kind: "martian"}
	_, url, out := startCoordinator(t, campaign.Synthetic(8, 1), sp,
		CoordinatorConfig{LeaseTTL: time.Second},
		campaign.Options{Context: ctx})

	err := NewWorker(WorkerConfig{
		Coordinator: url, Name: "confused", Poll: 10 * time.Millisecond,
	}).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("worker with unbuildable spec should fail with unknown kind, got: %v", err)
	}
	cancel()
	if res := <-out; res.err == nil {
		t.Fatal("coordinator run should report cancellation")
	}
}

// TestHeartbeatKeepsSlowShardAlive: a trial taking several lease TTLs
// must not be reassigned while its worker heartbeats.
func TestHeartbeatKeepsSlowShardAlive(t *testing.T) {
	const n = 3
	trials := make([]campaign.Trial, n)
	for i := range trials {
		trials[i] = campaign.Trial{ID: i, Key: fmt.Sprintf("slow%d", i)}
	}
	slow := campaign.New("slow", trials, func(lane int) (campaign.Worker, error) {
		return campaign.WorkerFunc(func(tr campaign.Trial) (campaign.Result, error) {
			time.Sleep(350 * time.Millisecond) // > 2x lease TTL
			return campaign.Result{TrialID: tr.ID, Key: tr.Key,
				Metrics: map[string]float64{"v": float64(tr.ID)}}, nil
		}), nil
	})

	var runs atomic.Int64
	co, url, out := startCoordinator(t, slow, selftestSpec(n, 1),
		CoordinatorConfig{Shards: 1, LeaseTTL: 150 * time.Millisecond},
		campaign.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "slowpoke",
		Runner: countingRunner{inner: campaign.PoolRunner{Engine: tensor.Serial()}, runs: &runs},
		// The test campaign is not spec-buildable; inject it directly.
		Build: func(*spec.Spec) (*spec.Built, error) { return &spec.Built{Campaign: slow}, nil },
	}, ctx)

	res := <-out
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-w; err != nil {
		t.Fatalf("worker exited with error: %v", err)
	}
	if runs.Load() != n {
		t.Fatalf("executed %d trials, want %d (reassignment would re-run)", runs.Load(), n)
	}
	if st := co.Stats(); st.Reassigned != 0 {
		t.Fatalf("slow shard was reassigned despite heartbeats: %+v", st)
	}
}

// TestTrialErrorAbortsCampaign: a deterministic trial failure on a
// worker fails the whole run instead of spinning on reassignment.
func TestTrialErrorAbortsCampaign(t *testing.T) {
	trials := make([]campaign.Trial, 8)
	for i := range trials {
		trials[i] = campaign.Trial{ID: i, Key: "k"}
	}
	failing := campaign.New("failing", trials, func(lane int) (campaign.Worker, error) {
		return campaign.WorkerFunc(func(tr campaign.Trial) (campaign.Result, error) {
			if tr.ID == 5 {
				return campaign.Result{}, fmt.Errorf("injected fault")
			}
			return campaign.Result{TrialID: tr.ID, Key: tr.Key}, nil
		}), nil
	})

	_, url, out := startCoordinator(t, failing, selftestSpec(8, 1),
		CoordinatorConfig{Shards: 2, LeaseTTL: time.Second},
		campaign.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := startWorker(t, WorkerConfig{
		Coordinator: url, Name: "unlucky",
		Runner: campaign.PoolRunner{Engine: tensor.Serial()},
		Build:  func(*spec.Spec) (*spec.Built, error) { return &spec.Built{Campaign: failing}, nil },
	}, ctx)

	res := <-out
	if res.err == nil || !strings.Contains(res.err.Error(), "injected fault") {
		t.Fatalf("coordinator run error = %v, want the injected trial fault", res.err)
	}
	if err := <-w; err == nil {
		t.Fatal("worker should surface the trial failure")
	}
}
