package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatString(t *testing.T) {
	if got := Q16x16.String(); got != "Q16.16" {
		t.Errorf("Q16x16.String() = %q, want Q16.16", got)
	}
	if got := Q8x24.String(); got != "Q8.24" {
		t.Errorf("Q8x24.String() = %q, want Q8.24", got)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	f := Q16x16
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.1415926, -2.718, 100.25, -100.25}
	for _, x := range cases {
		w := f.Quantize(x)
		back := f.Dequantize(w)
		if math.Abs(back-x) > f.Scale() {
			t.Errorf("round trip %v -> %v -> %v exceeds one LSB", x, w, back)
		}
	}
}

func TestQuantizeSaturation(t *testing.T) {
	f := Q16x16
	if w := f.Quantize(1e9); w != math.MaxInt32 {
		t.Errorf("Quantize(+huge) = %d, want MaxInt32", w)
	}
	if w := f.Quantize(-1e9); w != math.MinInt32 {
		t.Errorf("Quantize(-huge) = %d, want MinInt32", w)
	}
	if w := f.Quantize(math.NaN()); w != 0 {
		t.Errorf("Quantize(NaN) = %d, want 0", w)
	}
}

func TestQuantizeExactValues(t *testing.T) {
	f := Q16x16
	if w := f.Quantize(1.0); w != 1<<16 {
		t.Errorf("Quantize(1.0) = %d, want %d", w, 1<<16)
	}
	if w := f.Quantize(-1.0); w != -(1 << 16) {
		t.Errorf("Quantize(-1.0) = %d, want %d", w, -(1 << 16))
	}
	if w := f.Quantize(0.5); w != 1<<15 {
		t.Errorf("Quantize(0.5) = %d, want %d", w, 1<<15)
	}
}

func TestAddSat(t *testing.T) {
	if got := AddSat(math.MaxInt32, 1); got != math.MaxInt32 {
		t.Errorf("AddSat overflow = %d, want saturation", got)
	}
	if got := AddSat(math.MinInt32, -1); got != math.MinInt32 {
		t.Errorf("AddSat underflow = %d, want saturation", got)
	}
	if got := AddSat(2, 3); got != 5 {
		t.Errorf("AddSat(2,3) = %d, want 5", got)
	}
}

func TestSubSat(t *testing.T) {
	if got := SubSat(math.MinInt32, 1); got != math.MinInt32 {
		t.Errorf("SubSat underflow = %d, want saturation", got)
	}
	if got := SubSat(math.MaxInt32, -1); got != math.MaxInt32 {
		t.Errorf("SubSat overflow = %d, want saturation", got)
	}
	if got := SubSat(5, 3); got != 2 {
		t.Errorf("SubSat(5,3) = %d, want 2", got)
	}
}

func TestAddWrap(t *testing.T) {
	if got := AddWrap(math.MaxInt32, 1); got != math.MinInt32 {
		t.Errorf("AddWrap(MaxInt32,1) = %d, want MinInt32 (wraparound)", got)
	}
	if got := AddWrap(10, 20); got != 30 {
		t.Errorf("AddWrap(10,20) = %d, want 30", got)
	}
}

func TestForceBit(t *testing.T) {
	var w Word = 0
	w = ForceBit(w, 0, true)
	if w != 1 {
		t.Errorf("ForceBit(0, bit0, high) = %d, want 1", w)
	}
	w = ForceBit(w, 0, false)
	if w != 0 {
		t.Errorf("ForceBit(1, bit0, low) = %d, want 0", w)
	}
	// Forcing the sign bit high makes the word negative.
	w = ForceBit(0, 31, true)
	if w >= 0 {
		t.Errorf("ForceBit sign high should be negative, got %d", w)
	}
	// Out of range bit is a no-op.
	if got := ForceBit(42, 99, true); got != 42 {
		t.Errorf("ForceBit out-of-range changed value: %d", got)
	}
}

func TestForceBitIdempotent(t *testing.T) {
	err := quick.Check(func(w Word, bitRaw uint8, high bool) bool {
		bit := uint(bitRaw) % WordBits
		once := ForceBit(w, bit, high)
		twice := ForceBit(once, bit, high)
		return once == twice
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestForceBitOnlyTouchesOneBit(t *testing.T) {
	err := quick.Check(func(w Word, bitRaw uint8, high bool) bool {
		bit := uint(bitRaw) % WordBits
		forced := ForceBit(w, bit, high)
		diff := uint32(forced) ^ uint32(w)
		// Either no change or exactly the targeted bit flipped.
		return diff == 0 || diff == uint32(1)<<bit
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestForceBits(t *testing.T) {
	// Force bit 3 high and bit 1 low on 0b0010 -> 0b1000.
	got := ForceBits(0b0010, 1<<3, 1<<1)
	if got != 0b1000 {
		t.Errorf("ForceBits = %b, want 1000", got)
	}
}

func TestBit(t *testing.T) {
	if !Bit(4, 2) {
		t.Error("Bit(4,2) should be set")
	}
	if Bit(4, 1) {
		t.Error("Bit(4,1) should be clear")
	}
	if Bit(4, 99) {
		t.Error("Bit out of range should be false")
	}
	if !Bit(-1, 31) {
		t.Error("Bit(-1,31) sign bit should be set")
	}
}

func TestQuantizeMonotonic(t *testing.T) {
	f := Q16x16
	err := quick.Check(func(a, b float32) bool {
		x, y := float64(a), float64(b)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return f.Quantize(x) <= f.Quantize(y)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAddSatCommutative(t *testing.T) {
	err := quick.Check(func(a, b Word) bool {
		return AddSat(a, b) == AddSat(b, a)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDequantizeQuantizeExact(t *testing.T) {
	// Every word should survive dequantize->quantize exactly (fixed-point
	// values are exactly representable as float64).
	f := Q16x16
	err := quick.Check(func(w Word) bool {
		return f.Quantize(f.Dequantize(w)) == w
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFormatRanges(t *testing.T) {
	if Q16x16.MaxValue() < 32767 || Q16x16.MaxValue() >= 32768 {
		t.Errorf("Q16.16 max = %v, want ~32768", Q16x16.MaxValue())
	}
	if Q16x16.MinValue() != -32768 {
		t.Errorf("Q16.16 min = %v, want -32768", Q16x16.MinValue())
	}
	if !Q16x16.Valid() || !Q8x24.Valid() || !Q24x8.Valid() {
		t.Error("standard formats must be valid")
	}
	if (Format{FracBits: 32}).Valid() {
		t.Error("FracBits=32 must be invalid")
	}
}
