// Package fixed implements the signed fixed-point arithmetic used by the
// processing elements (PEs) of a systolic-array SNN accelerator.
//
// The paper's PE datapath (Fig. 3a) is a 32-bit fixed-point adder–subtractor
// feeding an accumulator register. Stuck-at faults are injected on single
// output bits of that register, so this package exposes both the arithmetic
// (quantize, add, saturate) and the bit-level view (ForceBit) of a word.
//
// Words are two's-complement int32 in a configurable Q-format: IntBits
// integer bits (including sign) and FracBits fractional bits, with
// IntBits+FracBits == 32. The default format, Q16.16, comfortably holds the
// partial sums of a 256-row systolic column of SNN weights (|w| ≲ 4).
package fixed

import (
	"fmt"
	"math"
)

// Word is a single two's-complement fixed-point value as stored in a PE
// accumulator. Its numeric meaning depends on the Format that produced it.
type Word = int32

// WordBits is the width of a PE accumulator word in bits.
const WordBits = 32

// Format describes a Q-format fixed-point encoding of a 32-bit word.
type Format struct {
	// FracBits is the number of fractional bits (the binary point position).
	// Valid range is 0..31; the remaining 32-FracBits bits are integer bits
	// including the sign bit.
	FracBits uint
}

// Q16x16 is the default PE accumulator format: 16 integer bits (incl. sign)
// and 16 fractional bits, range [-32768, 32768) with resolution 2^-16.
var Q16x16 = Format{FracBits: 16}

// Q8x24 trades range for precision: range [-128, 128), resolution 2^-24.
var Q8x24 = Format{FracBits: 24}

// Q24x8 trades precision for range: range [-2^23, 2^23), resolution 2^-8.
var Q24x8 = Format{FracBits: 8}

// Scale returns the value of one least-significant bit, 2^-FracBits.
func (f Format) Scale() float64 { return math.Ldexp(1, -int(f.FracBits)) }

// MaxValue returns the largest representable value.
func (f Format) MaxValue() float64 { return float64(math.MaxInt32) * f.Scale() }

// MinValue returns the smallest (most negative) representable value.
func (f Format) MinValue() float64 { return float64(math.MinInt32) * f.Scale() }

// Valid reports whether the format is usable (FracBits in 0..31).
func (f Format) Valid() bool { return f.FracBits < WordBits }

// String implements fmt.Stringer, e.g. "Q16.16".
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d", WordBits-int(f.FracBits), f.FracBits)
}

// Quantize converts a float to the nearest representable fixed-point word,
// saturating at the format's range limits. NaN quantizes to zero, matching
// the behaviour of a hardware datapath that never produces NaNs.
func (f Format) Quantize(x float64) Word {
	if math.IsNaN(x) {
		return 0
	}
	scaled := math.Round(math.Ldexp(x, int(f.FracBits)))
	if scaled >= float64(math.MaxInt32) {
		return math.MaxInt32
	}
	if scaled <= float64(math.MinInt32) {
		return math.MinInt32
	}
	return Word(scaled)
}

// Dequantize converts a fixed-point word back to a float.
func (f Format) Dequantize(w Word) float64 {
	return math.Ldexp(float64(w), -int(f.FracBits))
}

// QuantizeSlice quantizes a float32 slice into a freshly allocated word slice.
func (f Format) QuantizeSlice(xs []float32) []Word {
	ws := make([]Word, len(xs))
	for i, x := range xs {
		ws[i] = f.Quantize(float64(x))
	}
	return ws
}

// DequantizeSlice converts words back into a freshly allocated float32 slice.
func (f Format) DequantizeSlice(ws []Word) []float32 {
	xs := make([]float32, len(ws))
	for i, w := range ws {
		xs[i] = float32(f.Dequantize(w))
	}
	return xs
}

// AddSat returns a+b with two's-complement saturation, mirroring a hardware
// saturating adder. Overflow clamps to MaxInt32/MinInt32.
func AddSat(a, b Word) Word {
	s := int64(a) + int64(b)
	switch {
	case s > math.MaxInt32:
		return math.MaxInt32
	case s < math.MinInt32:
		return math.MinInt32
	default:
		return Word(s)
	}
}

// AddWrap returns a+b with two's-complement wraparound, the behaviour of a
// plain binary adder with no overflow detection.
func AddWrap(a, b Word) Word {
	return Word(uint32(a) + uint32(b)) //nolint:gosec // intentional wraparound
}

// SubSat returns a-b with saturation; the PE's adder–subtractor uses the
// same datapath for signed-weight subtraction.
func SubSat(a, b Word) Word {
	s := int64(a) - int64(b)
	switch {
	case s > math.MaxInt32:
		return math.MaxInt32
	case s < math.MinInt32:
		return math.MinInt32
	default:
		return Word(s)
	}
}

// ForceBit returns w with bit position bit (0 = LSB, 31 = MSB/sign) forced
// to the given stuck value. This is the elementary stuck-at fault transform
// applied to an accumulator output register.
func ForceBit(w Word, bit uint, stuckHigh bool) Word {
	if bit >= WordBits {
		return w
	}
	mask := uint32(1) << bit
	u := uint32(w)
	if stuckHigh {
		u |= mask
	} else {
		u &^= mask
	}
	return Word(u)
}

// ForceBits applies several stuck-at transforms at once: bits set in orMask
// are forced high, bits set in andClearMask are forced low. A PE with
// multiple stuck bits composes into a single mask pair.
func ForceBits(w Word, orMask, andClearMask uint32) Word {
	return Word((uint32(w) | orMask) &^ andClearMask)
}

// Bit reports the value of bit position bit in w.
func Bit(w Word, bit uint) bool {
	if bit >= WordBits {
		return false
	}
	return uint32(w)&(uint32(1)<<bit) != 0
}
