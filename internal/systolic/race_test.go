package systolic

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

// TestTileCacheConcurrentMutationStress hammers the compiled-tile cache
// from many goroutines at once: one shared Matrix serves a fleet of
// arrays whose owners race Forward calls against fault-state generation
// bumps (InjectFaults / InjectMemoryFaults / InjectTransient /
// ClearFaults / SetBypass) on their own array, while another pack of
// goroutines runs concurrent Forwards on one clean shared array. The
// cache's invalidation sweep reads every array's generation under the
// matrix lock, so cross-array traffic exercises it constantly. Run
// under -race in CI; the output checks also pin that a view compiled
// for one array's fault state never leaks into another's result.
func TestTileCacheConcurrentMutationStress(t *testing.T) {
	const rows, cols, b, k, m = 8, 8, 3, 20, 12
	const owners, iters = 6, 30
	rng := rand.New(rand.NewSource(13))
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.5)
	wm := QuantizeMatrix(w, fixed.Q16x16)
	x := randSpikeInput(rng, b, k, 0.4)

	mk := func(eng tensor.Backend) *Array {
		a, err := New(Config{Rows: rows, Cols: cols, Format: fixed.Q16x16, Saturate: true, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	// Fault phases every owner cycles through, and the per-phase expected
	// outputs (computed serially up front on a scratch array — each
	// owner's seed is its goroutine index, so phase outputs differ
	// between owners and a cross-owner tile mixup cannot cancel out).
	type phase struct {
		name   string
		mutate func(a *Array, seed int64)
	}
	phases := []phase{
		{"stuckat", func(a *Array, seed int64) {
			model := faults.StuckAtModel{Gen: faults.GenSpec{BitMode: faults.MSBBits, Pol: faults.StuckAt1}}
			if err := model.Inject(a, 0.25, seed); err != nil {
				t.Error(err)
			}
		}},
		{"bitflip", func(a *Array, seed int64) {
			model := faults.BitFlipModel{Profile: faults.ProfileUniform}
			if err := model.Inject(a, 0.1, seed); err != nil {
				t.Error(err)
			}
		}},
		{"transient", func(a *Array, seed int64) {
			model := faults.TransientModel{Gen: faults.GenSpec{BitMode: faults.MSBBits, Pol: faults.StuckAt1}}
			if err := model.Inject(a, 0.25, seed); err != nil {
				t.Error(err)
			}
		}},
		{"bypass", func(a *Array, seed int64) { a.SetBypass(true) }},
		{"clear", func(a *Array, seed int64) { a.ClearFaults(); a.SetBypass(false) }},
	}
	expected := make([][]*tensor.Tensor, owners)
	scratch := mk(tensor.Serial())
	for o := 0; o < owners; o++ {
		scratch.ClearFaults()
		scratch.SetBypass(false)
		expected[o] = make([]*tensor.Tensor, len(phases))
		for p, ph := range phases {
			ph.mutate(scratch, int64(o))
			expected[o][p] = scratch.Forward(x, wm, true)
		}
	}

	var wg sync.WaitGroup
	for o := 0; o < owners; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			arr := mk(tensor.Serial())
			for it := 0; it < iters; it++ {
				for p, ph := range phases {
					ph.mutate(arr, int64(o))
					got := arr.Forward(x, wm, true)
					want := expected[o][p]
					for i := range want.Data {
						if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
							t.Errorf("owner %d iter %d phase %s: y[%d] = %v, want %v",
								o, it, ph.name, i, got.Data[i], want.Data[i])
							return
						}
					}
				}
			}
		}(o)
	}

	// Concurrent Forwards on one clean shared array (the batch-parallel
	// evaluation pattern) against the same shared Matrix.
	shared := mk(tensor.NewParallel(2))
	scratch.ClearFaults()
	scratch.SetBypass(false)
	wantClean := scratch.Forward(x, wm, true)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				got := shared.Forward(x, wm, true)
				for i := range wantClean.Data {
					if math.Float32bits(wantClean.Data[i]) != math.Float32bits(got.Data[i]) {
						t.Errorf("shared reader %d iter %d: y[%d] = %v, want %v",
							g, it, i, got.Data[i], wantClean.Data[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
