package systolic

import (
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
)

// PE is an explicit register-level model of one processing element,
// mirroring the paper's Fig. 3: a fixed-point adder–subtractor, an
// accumulator register whose output bits can be stuck, an internal spike
// counter, and (Fig. 3b) a bypass multiplexer that forwards the incoming
// partial sum unchanged.
//
// The vectorized Array implements the same semantics with per-PE masks
// for speed; PE exists as the readable reference — the equivalence of the
// two is locked in by tests (TestArrayMatchesPEReference).
type PE struct {
	// Weight is the pre-stored filter word (weight-stationary dataflow).
	Weight fixed.Word
	// Faults are the stuck bits of the accumulator output register.
	orMask, clearMask uint32
	// Bypass engages the Fig. 3b multiplexer.
	Bypass bool
	// Saturate selects the adder's overflow behaviour.
	Saturate bool

	// SpikeCount is the internal counter of input spikes observed.
	SpikeCount uint64
}

// AddFault sticks one accumulator output bit.
func (p *PE) AddFault(bit uint, pol faults.Polarity) {
	mask := uint32(1) << bit
	if pol == faults.StuckAt1 {
		p.orMask |= mask
	} else {
		p.clearMask |= mask
	}
}

// Faulty reports whether any bit is stuck.
func (p *PE) Faulty() bool { return p.orMask != 0 || p.clearMask != 0 }

// Step processes one beat: the partial sum arriving from the PE above
// (preSum) and the input spike arriving from the left. It returns the
// partial sum passed to the PE below.
//
// With bypass engaged, the pre-sum is routed around the PE untouched and
// the weight contributes nothing. Otherwise the accumulator adds the
// gated weight and its (possibly stuck) register output propagates.
func (p *PE) Step(preSum fixed.Word, spike bool) fixed.Word {
	if spike {
		p.SpikeCount++
	}
	if p.Bypass {
		return preSum
	}
	var add fixed.Word
	if spike {
		add = p.Weight
	}
	var acc fixed.Word
	if p.Saturate {
		acc = fixed.AddSat(preSum, add)
	} else {
		acc = fixed.AddWrap(preSum, add)
	}
	return fixed.ForceBits(acc, p.orMask, p.clearMask)
}

// StepAnalog processes one beat with an analog (non-spike) input: the
// contribution is the quantized product input*weight — the datapath used
// by the first (encoder) layer.
func (p *PE) StepAnalog(preSum fixed.Word, input float64, f fixed.Format) fixed.Word {
	if p.Bypass {
		return preSum
	}
	var add fixed.Word
	if input != 0 {
		add = f.Quantize(input * f.Dequantize(p.Weight))
	}
	var acc fixed.Word
	if p.Saturate {
		acc = fixed.AddSat(preSum, add)
	} else {
		acc = fixed.AddWrap(preSum, add)
	}
	return fixed.ForceBits(acc, p.orMask, p.clearMask)
}

// Column is a vertical chain of PEs: the reference implementation of one
// systolic column pass.
type Column struct {
	PEs      []*PE
	Saturate bool
}

// NewColumn builds a column of n PEs holding the given weights.
func NewColumn(weights []fixed.Word, saturate bool) *Column {
	c := &Column{Saturate: saturate}
	for _, w := range weights {
		c.PEs = append(c.PEs, &PE{Weight: w, Saturate: saturate})
	}
	return c
}

// Pass streams one spike vector down the column and returns the final
// partial sum (the reference for Array.columnPass).
func (c *Column) Pass(spikes []float32) fixed.Word {
	var sum fixed.Word
	for i, pe := range c.PEs {
		spike := i < len(spikes) && spikes[i] != 0
		sum = pe.Step(sum, spike)
	}
	return sum
}
