package systolic

import (
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

// newTestArray builds an array on an explicit engine with optional
// accumulator faults, weight faults and bypass.
func newTestArray(t *testing.T, rows, cols int, eng tensor.Backend,
	fm, wfm *faults.Map, bypass, countSpikes bool) *Array {
	t.Helper()
	a, err := New(Config{
		Rows: rows, Cols: cols, Format: fixed.Q16x16, Saturate: true,
		CountSpikes: countSpikes, Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fm != nil {
		if err := a.InjectFaults(fm); err != nil {
			t.Fatal(err)
		}
	}
	if wfm != nil {
		if err := a.InjectWeightFaults(wfm); err != nil {
			t.Fatal(err)
		}
	}
	a.SetBypass(bypass)
	return a
}

func randSpikeInput(rng *rand.Rand, b, k int, density float64) *tensor.Tensor {
	x := tensor.New(b, k)
	for i := range x.Data {
		if rng.Float64() < density {
			x.Data[i] = 1
		}
	}
	return x
}

func randAnalogInput(rng *rand.Rand, b, k int) *tensor.Tensor {
	x := tensor.New(b, k)
	for i := range x.Data {
		if rng.Float64() < 0.6 {
			x.Data[i] = float32(rng.NormFloat64())
		}
	}
	return x
}

// TestForwardParallelBitIdenticalToSerial sweeps fault scenarios, input
// modes, odd shapes and worker counts, asserting the parallel array
// reproduces the serial array bit for bit — outputs, statistics and
// per-PE spike counters.
func TestForwardParallelBitIdenticalToSerial(t *testing.T) {
	type scenario struct {
		name           string
		faults, wfault bool
		bypass         bool
	}
	scenarios := []scenario{
		{name: "clean"},
		{name: "faulty", faults: true},
		{name: "bypassed", faults: true, bypass: true},
		{name: "weightfaults", wfault: true},
		{name: "allfaults-bypassed", faults: true, wfault: true, bypass: true},
	}
	shapes := []struct{ rows, cols, b, k, m int }{
		{8, 8, 1, 8, 8},      // single vector, exact tile
		{8, 8, 3, 19, 13},    // ragged K and M tiles
		{5, 7, 4, 23, 11},    // odd non-square grid
		{16, 16, 32, 64, 40}, // multi-tile batch
	}
	for _, sc := range scenarios {
		for _, sh := range shapes {
			rng := rand.New(rand.NewSource(77))
			var fm, wfm *faults.Map
			var err error
			if sc.faults {
				fm, err = faults.Generate(sh.rows, sh.cols, faults.GenSpec{
					NumFaulty: sh.rows * sh.cols / 4, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
			}
			if sc.wfault {
				wfm, err = faults.Generate(sh.rows, sh.cols, faults.GenSpec{
					NumFaulty: sh.rows * sh.cols / 8, BitMode: faults.MSBBits, Pol: faults.StuckAt0,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
			}
			w := tensor.New(sh.m, sh.k)
			w.RandNormal(rng, 0.5)
			wm := QuantizeMatrix(w, fixed.Q16x16)
			spikes := randSpikeInput(rng, sh.b, sh.k, 0.4)
			analog := randAnalogInput(rng, sh.b, sh.k)

			ref := newTestArray(t, sh.rows, sh.cols, tensor.Serial(), fm, wfm, sc.bypass, true)
			refBin := ref.Forward(spikes, wm, true)
			refAna := ref.Forward(analog, wm, false)

			for _, workers := range []int{1, 2, 8} {
				par := newTestArray(t, sh.rows, sh.cols, tensor.NewParallel(workers), fm, wfm, sc.bypass, true)
				gotBin := par.Forward(spikes, wm, true)
				gotAna := par.Forward(analog, wm, false)

				for i := range refBin.Data {
					if math.Float32bits(refBin.Data[i]) != math.Float32bits(gotBin.Data[i]) {
						t.Fatalf("%s %dx%d w=%d binary: y[%d] = %v, want %v",
							sc.name, sh.rows, sh.cols, workers, i, gotBin.Data[i], refBin.Data[i])
					}
				}
				for i := range refAna.Data {
					if math.Float32bits(refAna.Data[i]) != math.Float32bits(gotAna.Data[i]) {
						t.Fatalf("%s %dx%d w=%d analog: y[%d] = %v, want %v",
							sc.name, sh.rows, sh.cols, workers, i, gotAna.Data[i], refAna.Data[i])
					}
				}
				if ref.Stats() != par.Stats() {
					t.Fatalf("%s %dx%d w=%d: stats %+v, want %+v",
						sc.name, sh.rows, sh.cols, workers, par.Stats(), ref.Stats())
				}
				for r := 0; r < sh.rows; r++ {
					for c := 0; c < sh.cols; c++ {
						if ref.SpikeCount(r, c) != par.SpikeCount(r, c) {
							t.Fatalf("%s %dx%d w=%d: spikeCount(%d,%d) = %d, want %d",
								sc.name, sh.rows, sh.cols, workers,
								r, c, par.SpikeCount(r, c), ref.SpikeCount(r, c))
						}
					}
				}
			}
		}
	}
}

// TestForwardConcurrentCallsAreSafe exercises simultaneous Forward calls
// on one array (the batch-parallel evaluation pattern): outputs must be
// per-call correct and merged statistics exact.
func TestForwardConcurrentCallsAreSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fm, err := faults.Generate(8, 8, faults.GenSpec{
		NumFaulty: 16, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.New(12, 24)
	w.RandNormal(rng, 0.5)
	wm := QuantizeMatrix(w, fixed.Q16x16)
	x := randSpikeInput(rng, 6, 24, 0.4)

	ref := newTestArray(t, 8, 8, tensor.Serial(), fm, nil, true, true)
	want := ref.Forward(x, wm, true)
	wantStats := ref.Stats()

	eng := tensor.NewParallel(4)
	arr := newTestArray(t, 8, 8, eng, fm, nil, true, true)
	const calls = 8
	results := make([]*tensor.Tensor, calls)
	eng.Map(calls, func(_, i int) {
		results[i] = arr.Forward(x, wm, true)
	})
	for c, y := range results {
		for i := range want.Data {
			if math.Float32bits(want.Data[i]) != math.Float32bits(y.Data[i]) {
				t.Fatalf("concurrent call %d: y[%d] = %v, want %v", c, i, y.Data[i], want.Data[i])
			}
		}
	}
	got := arr.Stats()
	if got.Accumulations != calls*wantStats.Accumulations ||
		got.BypassedSteps != calls*wantStats.BypassedSteps ||
		got.TilePasses != calls*wantStats.TilePasses {
		t.Fatalf("merged stats %+v, want %d x %+v", got, calls, wantStats)
	}
}
