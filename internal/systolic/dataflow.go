package systolic

import (
	"fmt"
	"math"
)

// Dataflow timing and energy model.
//
// Forward() simulates the arithmetic of the array functionally; this file
// models *when* things happen and what they cost: the wavefront schedule
// of a weight-stationary systolic pass, per-layer latency, PE utilization,
// and a first-order energy estimate. The paper motivates bypass over
// re-execution by latency/energy overheads (§I); this model quantifies
// both for a given network shape.

// LayerShape describes one GEMM workload streamed through the array:
// B input vectors of reduction length K producing M outputs, repeated
// once per timestep.
type LayerShape struct {
	Name    string
	B, K, M int
	// Timesteps the layer executes per inference (SNN horizon).
	Timesteps int
}

// Validate checks the shape.
func (l LayerShape) Validate() error {
	if l.B <= 0 || l.K <= 0 || l.M <= 0 {
		return fmt.Errorf("systolic: layer %q has non-positive dims B=%d K=%d M=%d", l.Name, l.B, l.K, l.M)
	}
	if l.Timesteps <= 0 {
		return fmt.Errorf("systolic: layer %q has non-positive timesteps %d", l.Name, l.Timesteps)
	}
	return nil
}

// LayerTiming is the schedule of one layer on a given array.
type LayerTiming struct {
	Name string
	// KTiles and MTiles are the tiling factors (array reuse counts).
	KTiles, MTiles int
	// FillCycles is the pipeline fill latency per tile pass (Rows+Cols-2).
	FillCycles uint64
	// StreamCycles is the beat count streaming B vectors through one tile.
	StreamCycles uint64
	// WeightLoadCycles reloads the tile's weights (Rows beats per tile).
	WeightLoadCycles uint64
	// TotalCycles covers all tile passes and timesteps.
	TotalCycles uint64
	// Utilization is the fraction of PE-cycles doing useful accumulation.
	Utilization float64
}

// EnergyParams are first-order per-event energies in picojoules. Defaults
// are representative of a nanometer-CMOS fixed-point datapath; they feed
// relative comparisons (bypass vs re-execution), not absolute claims.
type EnergyParams struct {
	AccumulatePJ  float64 // one fixed-point accumulate
	WeightLoadPJ  float64 // one weight register load
	SpikeMovePJ   float64 // moving one spike across one PE
	LeakPJPerCyc  float64 // static leakage per PE per cycle
	BypassMuxPJ   float64 // one bypass multiplexer traversal
	ClockTreePJpc float64 // clock tree per cycle for the whole array
}

// DefaultEnergyParams returns the representative defaults.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{
		AccumulatePJ:  0.9,
		WeightLoadPJ:  0.6,
		SpikeMovePJ:   0.08,
		LeakPJPerCyc:  0.002,
		BypassMuxPJ:   0.05,
		ClockTreePJpc: 1.5,
	}
}

// Schedule computes the wavefront timing of one layer on the array.
//
// Per (K-tile, M-tile) pass: the tile's weights are pre-loaded (Rows
// beats), then B spike vectors stream in skewed order; the last result
// drains after Rows+Cols-2 fill beats plus B streaming beats.
func (a *Array) Schedule(l LayerShape) (LayerTiming, error) {
	if err := l.Validate(); err != nil {
		return LayerTiming{}, err
	}
	rows, cols := a.cfg.Rows, a.cfg.Cols
	kt := (l.K + rows - 1) / rows
	mt := (l.M + cols - 1) / cols
	fill := uint64(rows + cols - 2)
	stream := uint64(l.B)
	load := uint64(rows)
	perTile := load + fill + stream
	passes := uint64(kt*mt) * uint64(l.Timesteps)
	total := perTile * passes

	// Useful work: every (k, m, b, t) accumulation is one useful PE-cycle.
	useful := float64(l.K) * float64(l.M) * float64(l.B) * float64(l.Timesteps)
	capacity := float64(total) * float64(rows*cols)
	util := 0.0
	if capacity > 0 {
		util = useful / capacity
	}
	return LayerTiming{
		Name:   l.Name,
		KTiles: kt, MTiles: mt,
		FillCycles:       fill,
		StreamCycles:     stream,
		WeightLoadCycles: load,
		TotalCycles:      total,
		Utilization:      math.Min(util, 1),
	}, nil
}

// InferenceTiming aggregates layer schedules for a whole network.
type InferenceTiming struct {
	Layers      []LayerTiming
	TotalCycles uint64
	// MeanUtilization is cycle-weighted across layers.
	MeanUtilization float64
}

// ScheduleNetwork schedules a sequence of layers (one inference).
func (a *Array) ScheduleNetwork(layers []LayerShape) (InferenceTiming, error) {
	var out InferenceTiming
	var weightedUtil float64
	for _, l := range layers {
		t, err := a.Schedule(l)
		if err != nil {
			return InferenceTiming{}, err
		}
		out.Layers = append(out.Layers, t)
		out.TotalCycles += t.TotalCycles
		weightedUtil += t.Utilization * float64(t.TotalCycles)
	}
	if out.TotalCycles > 0 {
		out.MeanUtilization = weightedUtil / float64(out.TotalCycles)
	}
	return out, nil
}

// EnergyReport is a first-order energy estimate for a workload.
type EnergyReport struct {
	AccumulatePJ float64
	WeightLoadPJ float64
	SpikeMovePJ  float64
	LeakagePJ    float64
	BypassPJ     float64
	ClockPJ      float64
}

// TotalPJ sums all components.
func (e EnergyReport) TotalPJ() float64 {
	return e.AccumulatePJ + e.WeightLoadPJ + e.SpikeMovePJ + e.LeakagePJ + e.BypassPJ + e.ClockPJ
}

// Energy estimates the energy of a scheduled workload from the array's
// accumulated Stats (arithmetic events) and an InferenceTiming (cycles).
// spikeRate is the mean input spike density (fraction of non-zero inputs).
func (a *Array) Energy(t InferenceTiming, p EnergyParams, spikeRate float64) EnergyReport {
	st := a.stats
	pes := float64(a.cfg.Rows * a.cfg.Cols)
	var rep EnergyReport
	rep.AccumulatePJ = float64(st.Accumulations) * p.AccumulatePJ
	var loads uint64
	for _, l := range t.Layers {
		loads += l.WeightLoadCycles * uint64(l.KTiles*l.MTiles)
	}
	rep.WeightLoadPJ = float64(loads) * float64(a.cfg.Rows) * p.WeightLoadPJ
	rep.SpikeMovePJ = float64(st.Accumulations) * spikeRate * p.SpikeMovePJ
	rep.LeakagePJ = float64(t.TotalCycles) * pes * p.LeakPJPerCyc
	rep.BypassPJ = float64(st.BypassedSteps) * p.BypassMuxPJ
	rep.ClockPJ = float64(t.TotalCycles) * p.ClockTreePJpc
	return rep
}

// ReexecutionOverhead compares fault mitigation by bypass against
// mitigation by full redundant re-execution (running every inference
// twice and voting), the alternative the paper dismisses for its latency
// and energy overheads. Returned values are multiplicative overheads of
// re-execution relative to single execution (bypass adds neither).
func ReexecutionOverhead() (latency, energy float64) {
	// Dual modular redundancy with comparison: 2x compute; the compare
	// and restart logic adds a few percent on top.
	return 2.05, 2.1
}
