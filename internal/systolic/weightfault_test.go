package systolic

import (
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/tensor"
)

func TestWeightFaultCorruptsColumn(t *testing.T) {
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	// Stuck-at-1 on a high weight bit of PE(0,0): weight w[m=0][k=0]
	// becomes hugely wrong whenever a spike gates it in.
	_ = fm.Add(faults.StuckAtFault{Row: 0, Col: 0, Bit: 30, Pol: faults.StuckAt1})
	if err := a.InjectWeightFaults(fm); err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{1, 0, 0, 0, 0, 0, 0, 0}, 1, 8)
	w := tensor.New(8, 8)
	w.Fill(0.25)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	// Column 0 corrupted: 0.25 with bit 30 forced = 0.25 + 2^30*2^-16.
	wantCorrupt := 0.25 + math.Ldexp(1, 30-16)
	if d := math.Abs(float64(got.At(0, 0)) - wantCorrupt); d > 1e-3 {
		t.Errorf("weight fault column = %v, want %v", got.At(0, 0), wantCorrupt)
	}
	// Other columns untouched.
	if d := math.Abs(float64(got.At(0, 1)) - 0.25); d > 1e-3 {
		t.Errorf("clean column = %v, want 0.25", got.At(0, 1))
	}
}

func TestWeightFaultOnlyFiresWithSpike(t *testing.T) {
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	_ = fm.Add(faults.StuckAtFault{Row: 2, Col: 0, Bit: 30, Pol: faults.StuckAt1})
	if err := a.InjectWeightFaults(fm); err != nil {
		t.Fatal(err)
	}
	// No spike at k=2: the corrupted weight is never accumulated, unlike
	// an accumulator fault which corrupts every passing partial sum.
	x := tensor.FromSlice([]float32{1, 1, 0, 1, 0, 0, 0, 0}, 1, 8)
	w := tensor.New(8, 8)
	w.Fill(0.125)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	if d := math.Abs(float64(got.At(0, 0)) - 0.375); d > 1e-3 {
		t.Errorf("weight fault fired without a spike: %v", got.At(0, 0))
	}
}

func TestWeightFaultBypassed(t *testing.T) {
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	_ = fm.Add(faults.StuckAtFault{Row: 0, Col: 0, Bit: 30, Pol: faults.StuckAt1})
	if err := a.InjectWeightFaults(fm); err != nil {
		t.Fatal(err)
	}
	a.SetBypass(true)
	x := tensor.FromSlice([]float32{1, 1, 0, 0, 0, 0, 0, 0}, 1, 8)
	w := tensor.New(8, 8)
	w.Fill(0.5)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	// PE(0,0) bypassed: only the k=1 weight contributes to column 0.
	if d := math.Abs(float64(got.At(0, 0)) - 0.5); d > 1e-3 {
		t.Errorf("bypassed weight fault column = %v, want 0.5", got.At(0, 0))
	}
}

func TestWeightFaultAnalogPath(t *testing.T) {
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	// Stuck-at-0 on all relevant bits of a weight: weight becomes ~0 so
	// the analog product vanishes.
	for bit := uint(0); bit < 31; bit++ {
		_ = fm.Add(faults.StuckAtFault{Row: 0, Col: 0, Bit: bit, Pol: faults.StuckAt0})
	}
	if err := a.InjectWeightFaults(fm); err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{0.5, 0, 0, 0, 0, 0, 0, 0}, 1, 8)
	w := tensor.New(8, 8)
	w.Fill(0.5)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), false)
	if math.Abs(float64(got.At(0, 0))) > 1e-3 {
		t.Errorf("zeroed weight should kill analog product, got %v", got.At(0, 0))
	}
}

func TestInjectWeightFaultsDimensionMismatch(t *testing.T) {
	a := MustNew(smallConfig())
	if err := a.InjectWeightFaults(faults.NewMap(4, 4)); err == nil {
		t.Error("mismatched dimensions should error")
	}
}

func TestScanTestWeightsRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := MustNew(smallConfig())
	fm, err := faults.Generate(8, 8, faults.GenSpec{
		NumFaulty: 10, BitMode: faults.RandomBit, PolMode: faults.RandomPol,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InjectWeightFaults(fm); err != nil {
		t.Fatal(err)
	}
	rec := a.ScanTestWeights()
	key := func(f faults.StuckAtFault) [4]int {
		return [4]int{f.Row, f.Col, int(f.Bit), int(f.Pol)}
	}
	want := make(map[[4]int]bool)
	for _, f := range fm.Faults {
		want[key(f)] = true
	}
	if len(rec.Faults) != len(want) {
		t.Fatalf("recovered %d stuck bits, want %d", len(rec.Faults), len(want))
	}
	for _, f := range rec.Faults {
		if !want[key(f)] {
			t.Errorf("spurious recovered fault %v", f)
		}
	}
	// The accumulator scan must NOT see weight faults.
	if acc := a.ScanTest(); len(acc.Faults) != 0 {
		t.Errorf("accumulator scan picked up weight faults: %v", acc.Faults)
	}
}

func TestBothRegisterFaultsCoexist(t *testing.T) {
	a := MustNew(smallConfig())
	accFm := faults.NewMap(8, 8)
	_ = accFm.Add(faults.StuckAtFault{Row: 1, Col: 1, Bit: 29, Pol: faults.StuckAt1})
	wFm := faults.NewMap(8, 8)
	_ = wFm.Add(faults.StuckAtFault{Row: 2, Col: 2, Bit: 28, Pol: faults.StuckAt1})
	if err := a.InjectWeightFaults(wFm); err != nil {
		t.Fatal(err)
	}
	if err := a.InjectFaults(accFm); err != nil {
		t.Fatal(err)
	}
	if a.WeightFaultMap() == nil || a.FaultMap() == nil {
		t.Fatal("both maps should be installed")
	}
	// Both PEs must be bypassable.
	a.SetBypass(true)
	x := tensor.New(1, 8)
	x.Fill(1)
	w := tensor.New(8, 8)
	w.Fill(0.125)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	// Columns 1 and 2 each lose exactly one 0.125 contribution.
	if d := math.Abs(float64(got.At(0, 1)) - 0.875); d > 1e-3 {
		t.Errorf("column 1 = %v, want 0.875", got.At(0, 1))
	}
	if d := math.Abs(float64(got.At(0, 2)) - 0.875); d > 1e-3 {
		t.Errorf("column 2 = %v, want 0.875", got.At(0, 2))
	}
	a.ClearFaults()
	if a.WeightFaultMap() != nil || a.FaultMap() != nil {
		t.Error("ClearFaults must drop both maps")
	}
}
