package systolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

func TestPEStepAccumulates(t *testing.T) {
	p := &PE{Weight: 100, Saturate: true}
	if got := p.Step(0, true); got != 100 {
		t.Errorf("Step(0, spike) = %d, want 100", got)
	}
	if got := p.Step(100, false); got != 100 {
		t.Errorf("no spike must pass pre-sum through adder unchanged, got %d", got)
	}
	if p.SpikeCount != 1 {
		t.Errorf("SpikeCount = %d, want 1", p.SpikeCount)
	}
}

func TestPEStuckBitForcing(t *testing.T) {
	p := &PE{Weight: 0b0110, Saturate: true}
	p.AddFault(0, faults.StuckAt1)
	if got := p.Step(0, true); got != 0b0111 {
		t.Errorf("stuck-at-1 LSB: got %b, want 0111", got)
	}
	if !p.Faulty() {
		t.Error("Faulty() should be true")
	}
}

func TestPEBypassSkipsEverything(t *testing.T) {
	p := &PE{Weight: 500, Saturate: true}
	p.AddFault(31, faults.StuckAt1)
	p.Bypass = true
	if got := p.Step(42, true); got != 42 {
		t.Errorf("bypassed PE must forward pre-sum unchanged, got %d", got)
	}
	// Spike counter still observes traffic (the counter sits on the spike
	// path, not the accumulator).
	if p.SpikeCount != 1 {
		t.Errorf("SpikeCount = %d, want 1", p.SpikeCount)
	}
}

func TestPEAnalogStep(t *testing.T) {
	f := fixed.Q16x16
	p := &PE{Weight: f.Quantize(0.5), Saturate: true}
	got := p.StepAnalog(0, 0.5, f)
	want := f.Quantize(0.25)
	if got != want {
		t.Errorf("analog 0.5*0.5 = %d, want %d", got, want)
	}
	if got := p.StepAnalog(7, 0, f); got != 7 {
		t.Errorf("zero input adds nothing, got %d", got)
	}
}

func TestColumnPassMatchesManualSum(t *testing.T) {
	f := fixed.Q16x16
	ws := []fixed.Word{f.Quantize(0.25), f.Quantize(-0.5), f.Quantize(1.0)}
	c := NewColumn(ws, true)
	sum := c.Pass([]float32{1, 0, 1})
	want := fixed.AddSat(ws[0], ws[2])
	if sum != want {
		t.Errorf("column pass = %d, want %d", sum, want)
	}
}

// TestArrayMatchesPEReference locks the vectorized Array implementation to
// the register-level PE chain for random weights, spikes and fault maps.
func TestArrayMatchesPEReference(t *testing.T) {
	err := quick.Check(func(seed int64, bypass bool) bool {
		rng := rand.New(rand.NewSource(seed))
		const k, rows = 8, 8
		cfg := Config{Rows: rows, Cols: 4, Format: fixed.Q16x16, Saturate: true}
		a := MustNew(cfg)
		fm, err := faults.Generate(rows, 4, faults.GenSpec{
			NumFaulty: 1 + rng.Intn(8), BitMode: faults.RandomBit, PolMode: faults.RandomPol,
		}, rng)
		if err != nil {
			return false
		}
		if err := a.InjectFaults(fm); err != nil {
			return false
		}
		a.SetBypass(bypass)

		w := tensor.New(4, k)
		w.RandNormal(rng, 0.5)
		wm := QuantizeMatrix(w, cfg.Format)
		x := tensor.New(1, k)
		for i := range x.Data {
			if rng.Float64() < 0.5 {
				x.Data[i] = 1
			}
		}
		got := a.Forward(x, wm, true)

		// Reference: one explicit PE column per output.
		for m := 0; m < 4; m++ {
			col := NewColumn(wm.Words[m*k:(m+1)*k], true)
			for i, pe := range col.PEs {
				for _, fl := range fm.Faults {
					if fl.Row == i && fl.Col == m {
						pe.AddFault(fl.Bit, fl.Pol)
					}
				}
				pe.Bypass = bypass && pe.Faulty()
			}
			// Mirror Forward's exact fixed->float conversion so the
			// comparison is bit-exact.
			want := float32(int64(col.Pass(x.Data))) * float32(cfg.Format.Scale())
			if got.At(0, m) != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}
