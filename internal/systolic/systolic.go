// Package systolic is a functional simulator of an NxN systolic-array SNN
// accelerator ("systolicSNN") as described in the paper: a dense grid of
// processing elements (PEs), each a fixed-point adder–subtractor plus
// accumulator register and internal spike counter (Fig. 3a). Binary input
// spikes stream across rows; filter weights are pre-stored in the PEs
// (weight-stationary); partial sums flow down columns.
//
// Permanent stuck-at faults are injected on single output bits of PE
// accumulator registers and corrupt every accumulation step of every tile
// pass — the array is reused across layers, timesteps and samples, so a
// single fault recurs constantly. A bypass multiplexer (Fig. 3b) can route
// the incoming partial sum around a faulty PE, which skips its weight's
// contribution (equivalent to pruning that weight) and stops the
// corruption.
package systolic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

// Config describes an accelerator instance.
type Config struct {
	// Rows, Cols give the PE grid extent (paper default 256x256).
	Rows, Cols int
	// Format is the fixed-point encoding of weights and accumulators.
	Format fixed.Format
	// Saturate selects a saturating adder; false gives two's-complement
	// wraparound (a plain binary adder).
	Saturate bool
	// CountSpikes enables the per-PE internal spike counters (costs time).
	CountSpikes bool
	// Engine is the compute backend Forward fans out on (nil selects
	// tensor.Default()). Results are bit-identical on every engine; only
	// wall-clock changes.
	Engine tensor.Backend
}

// DefaultConfig is the paper's 256x256 array with Q16.16 saturating PEs.
func DefaultConfig() Config {
	return Config{Rows: 256, Cols: 256, Format: fixed.Q16x16, Saturate: true}
}

// Array is a systolic accelerator with optional injected faults: a
// permanent stuck-at map, weight-SRAM bit-flips, and/or a transient
// soft-error schedule (see the faults package for the three models).
// The zero value is not usable; construct with New.
type Array struct {
	cfg Config

	// Permanent accumulator stuck bits (from the injected fault map),
	// indexed row*Cols+col.
	pOr    []uint32
	pClear []uint32

	// EFFECTIVE per-PE accumulator fault state at the current timestep:
	// the permanent bits plus any transient strikes active right now.
	// All datapath loops (dense and sparse) read only these.
	orMask     []uint32 // bits forced high
	clearMask  []uint32 // bits forced low
	faulty     []bool   // any effective stuck bit on this PE (either register)
	permFaulty []bool   // any permanent stuck bit (either register)
	bypassed   []bool   // permanently faulty PE with bypass mux engaged;
	// transient upsets are invisible to post-fab testing, so the bypass
	// mux can never be programmed around them

	// Per-PE weight-register fault state: stuck bits in the pre-stored
	// filter word rather than the accumulator output. An extension to the
	// paper's model — both registers exist in the Fig. 3a datapath.
	wOrMask    []uint32
	wClearMask []uint32
	wFaulty    []bool

	bypassOn bool
	// bypMask optionally programs bypass muxes per PE (row-major):
	// independent of the global bypassOn switch, a permanently faulty PE
	// with its mask entry set is bypassed. RescueSNN-style selective
	// bypass engages only the PEs whose faults are worth pruning.
	bypMask []bool
	fmap    *faults.Map
	wmap    *faults.Map

	// Weight-SRAM bit-flips (faults.BitFlipModel): applied to stored
	// words on the compiled-tile path (compile.go) and per element on
	// the dense reference path.
	mem *faults.MemoryFaults

	// Transient soft-error schedule (faults.TransientModel) and the
	// current inference timestep it is evaluated at; tOr/tClear are the
	// scratch masks ActiveMasks fills on each SetTimestep.
	transient   *faults.TransientSchedule
	step        int
	tOr, tClear []uint32

	// Per-column summaries for inner-loop fast paths.
	colClean    []bool // no faulty, non-bypassed PE in column
	colBypassed []bool // column contains at least one bypassed PE

	// Column-major ([col*Rows+row]) mirrors of the accumulator fault
	// state. The faulty-column slow path walks one column at a time, so
	// these keep its per-PE loads on contiguous cache lines instead of
	// striding by Cols through the row-major arrays above.
	bypT    []bool
	faultyT []bool
	orT     []uint32
	clearT  []uint32

	// gen counts fault-state changes (InjectFaults, InjectWeightFaults,
	// InjectMemoryFaults, InjectTransient, ClearFaults, SetBypass).
	// Compiled weight tiles cache against it. SetTimestep deliberately
	// does NOT bump it: transient strikes hit accumulator outputs only,
	// never the stored weights, so tiles stay valid across timesteps.
	gen atomic.Uint64

	// denseRef forces the pre-event-list scalar forward path; see
	// SetDenseReference.
	denseRef bool

	// Internal spike counters (one per PE), active when cfg.CountSpikes.
	spikeCount []uint64

	stats Stats
}

// Stats aggregates datapath activity for cycle/energy reporting.
type Stats struct {
	// Accumulations is the number of adder operations performed.
	Accumulations uint64
	// BypassedSteps counts partial sums routed around faulty PEs.
	BypassedSteps uint64
	// TilePasses counts (K-tile, M-tile) array configurations streamed.
	TilePasses uint64
	// MACCycles estimates pipelined systolic cycles: per tile pass over a
	// batch of B vectors, Rows+Cols+B-2 beats.
	MACCycles uint64
}

// New constructs an array; the configuration is validated once here so the
// hot loops can assume it is sound.
func New(cfg Config) (*Array, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("systolic: invalid grid %dx%d", cfg.Rows, cfg.Cols)
	}
	if !cfg.Format.Valid() {
		return nil, fmt.Errorf("systolic: invalid fixed-point format %v", cfg.Format)
	}
	n := cfg.Rows * cfg.Cols
	a := &Array{
		cfg:         cfg,
		pOr:         make([]uint32, n),
		pClear:      make([]uint32, n),
		orMask:      make([]uint32, n),
		clearMask:   make([]uint32, n),
		faulty:      make([]bool, n),
		permFaulty:  make([]bool, n),
		bypassed:    make([]bool, n),
		wOrMask:     make([]uint32, n),
		wClearMask:  make([]uint32, n),
		wFaulty:     make([]bool, n),
		colClean:    make([]bool, cfg.Cols),
		colBypassed: make([]bool, cfg.Cols),
		bypT:        make([]bool, n),
		faultyT:     make([]bool, n),
		orT:         make([]uint32, n),
		clearT:      make([]uint32, n),
	}
	if cfg.CountSpikes {
		a.spikeCount = make([]uint64, n)
	}
	a.refresh()
	return a, nil
}

// Array satisfies the model-driven injection surface.
var _ faults.Target = (*Array)(nil)

// MustNew is New but panics on error; for tests and examples.
func MustNew(cfg Config) *Array {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// SetEngine overrides the compute backend used by Forward (nil restores
// tensor.Default()).
func (a *Array) SetEngine(e tensor.Backend) { a.cfg.Engine = e }

func (a *Array) engine() tensor.Backend {
	if a.cfg.Engine != nil {
		return a.cfg.Engine
	}
	return tensor.Default()
}

// Stats returns a copy of the accumulated datapath statistics. The read
// is atomic per counter, so polling while Forward calls are in flight is
// safe (each counter is exact; the set is a momentary snapshot).
func (a *Array) Stats() Stats {
	return Stats{
		Accumulations: atomic.LoadUint64(&a.stats.Accumulations),
		BypassedSteps: atomic.LoadUint64(&a.stats.BypassedSteps),
		TilePasses:    atomic.LoadUint64(&a.stats.TilePasses),
		MACCycles:     atomic.LoadUint64(&a.stats.MACCycles),
	}
}

// ResetStats zeroes the datapath statistics.
func (a *Array) ResetStats() {
	atomic.StoreUint64(&a.stats.Accumulations, 0)
	atomic.StoreUint64(&a.stats.BypassedSteps, 0)
	atomic.StoreUint64(&a.stats.TilePasses, 0)
	atomic.StoreUint64(&a.stats.MACCycles, 0)
}

// FaultMap returns the currently injected fault map (nil if fault-free).
func (a *Array) FaultMap() *faults.Map { return a.fmap }

// InjectFaults installs an accumulator-output fault map, replacing any
// previous accumulator faults (weight-register faults are kept; use
// ClearFaults to remove everything). The map's dimensions must match the
// array.
func (a *Array) InjectFaults(m *faults.Map) error {
	if m.Rows != a.cfg.Rows || m.Cols != a.cfg.Cols {
		return fmt.Errorf("systolic: fault map %dx%d does not match array %dx%d",
			m.Rows, m.Cols, a.cfg.Rows, a.cfg.Cols)
	}
	a.fmap = m.Clone()
	or, clear := m.Masks()
	copy(a.pOr, or)
	copy(a.pClear, clear)
	a.refresh()
	return nil
}

// InjectWeightFaults installs stuck bits on PE weight registers (the
// pre-stored filter words) instead of accumulator outputs. Accumulator
// faults, if any, are kept; call ClearFaults to remove both kinds.
// A PE with a faulty weight register counts as faulty for bypass.
func (a *Array) InjectWeightFaults(m *faults.Map) error {
	if m.Rows != a.cfg.Rows || m.Cols != a.cfg.Cols {
		return fmt.Errorf("systolic: weight fault map %dx%d does not match array %dx%d",
			m.Rows, m.Cols, a.cfg.Rows, a.cfg.Cols)
	}
	a.wmap = m.Clone()
	or, clear := m.Masks()
	copy(a.wOrMask, or)
	copy(a.wClearMask, clear)
	for i := range a.wFaulty {
		a.wFaulty[i] = or[i] != 0 || clear[i] != 0
	}
	a.refresh()
	return nil
}

// WeightFaultMap returns the injected weight-register fault map, if any.
func (a *Array) WeightFaultMap() *faults.Map { return a.wmap }

// InjectMemoryFaults installs weight-SRAM bit-flips: every stored
// weight word is read through the instance's per-(word, bit) flip
// decisions. Flips are applied where the accelerator actually stores
// weights — the compiled-tile path (and per element on the dense
// reference path) — replacing any previous memory faults. Other fault
// classes are kept; use ClearFaults to remove everything.
func (a *Array) InjectMemoryFaults(m *faults.MemoryFaults) error {
	if err := m.Validate(); err != nil {
		return err
	}
	a.mem = m.Clone()
	a.refresh()
	return nil
}

// MemoryFaults returns the injected weight-SRAM flip instance, if any.
func (a *Array) MemoryFaults() *faults.MemoryFaults { return a.mem }

// InjectTransient installs a soft-error strike schedule and rewinds the
// array to timestep 0. Strikes corrupt accumulator outputs only while
// active at the current timestep (see SetTimestep); they are not
// bypassable — post-fab testing cannot see them, so the bypass mux is
// never programmed around them. The schedule's dimensions must match
// the array. Other fault classes are kept; ClearFaults removes all.
func (a *Array) InjectTransient(s *faults.TransientSchedule) error {
	if s.Rows != a.cfg.Rows || s.Cols != a.cfg.Cols {
		return fmt.Errorf("systolic: transient schedule %dx%d does not match array %dx%d",
			s.Rows, s.Cols, a.cfg.Rows, a.cfg.Cols)
	}
	if err := s.Validate(); err != nil {
		return err
	}
	a.transient = s.Clone()
	a.step = 0
	if a.tOr == nil {
		n := a.cfg.Rows * a.cfg.Cols
		a.tOr = make([]uint32, n)
		a.tClear = make([]uint32, n)
	}
	a.refresh()
	return nil
}

// Transient returns the injected soft-error schedule, if any.
func (a *Array) Transient() *faults.TransientSchedule { return a.transient }

// TimeFaulted reports whether the array carries time-dependent fault
// state, i.e. Forward results depend on SetTimestep. Callers that share
// one array across concurrent evaluations must serialize when this is
// true (snn.EvaluateWith does).
func (a *Array) TimeFaulted() bool { return a.transient != nil }

// SetTimestep advances the array to inference timestep t, activating
// and decaying transient strikes. Without a transient schedule it is a
// no-op, so per-timestep callers (snn.Network.Forward) pay nothing in
// the common case. It never invalidates compiled weight tiles:
// transient upsets live on accumulator outputs, not in stored weights.
func (a *Array) SetTimestep(t int) {
	if a.transient == nil {
		return
	}
	if t < 0 {
		t = 0
	}
	if t == a.step {
		return
	}
	a.step = t
	a.refreshState()
}

// Timestep returns the timestep the array is currently configured for.
func (a *Array) Timestep() int { return a.step }

// Dims returns the PE grid extent (the faults.Target surface).
func (a *Array) Dims() (rows, cols int) { return a.cfg.Rows, a.cfg.Cols }

// ClearFaults removes all fault state — stuck-at maps in both
// registers, memory flips, transient schedules — and disengages bypass.
func (a *Array) ClearFaults() {
	for i := range a.faulty {
		a.pOr[i], a.pClear[i] = 0, 0
		a.wOrMask[i], a.wClearMask[i] = 0, 0
		a.wFaulty[i] = false
	}
	a.fmap = nil
	a.wmap = nil
	a.mem = nil
	a.transient = nil
	a.step = 0
	a.bypMask = nil
	a.refresh()
}

// SetBypass engages (or disengages) the bypass multiplexer on every faulty
// PE. With bypass on, faulty PEs neither contribute their weight nor
// corrupt the passing partial sum.
func (a *Array) SetBypass(on bool) {
	a.bypassOn = on
	a.refresh()
}

// BypassEnabled reports whether faulty PEs are currently bypassed.
func (a *Array) BypassEnabled() bool { return a.bypassOn }

// SetBypassMask programs the bypass multiplexers individually: a
// permanently faulty PE i (row-major) is bypassed iff mask[i] is set or
// the global SetBypass switch is on. Entries on healthy PEs are inert —
// a bypass mux only exists to route around its own PE. A nil mask
// removes per-PE selection; ClearFaults also clears it, so campaign
// workers that clear-and-reinject between trials cannot leak a stale
// mask across fault scenarios.
func (a *Array) SetBypassMask(mask []bool) error {
	if mask != nil && len(mask) != a.cfg.Rows*a.cfg.Cols {
		return fmt.Errorf("systolic: bypass mask length %d does not match %dx%d array",
			len(mask), a.cfg.Rows, a.cfg.Cols)
	}
	if mask == nil {
		a.bypMask = nil
	} else {
		a.bypMask = append([]bool(nil), mask...)
	}
	a.refresh()
	return nil
}

// BypassedPEs returns how many PEs currently have their bypass mux
// engaged (the per-inference pruning cost a salvage report records).
func (a *Array) BypassedPEs() int {
	n := 0
	for _, b := range a.bypassed {
		if b {
			n++
		}
	}
	return n
}

// refreshState recomputes the effective per-PE fault state (permanent
// masks plus transient strikes active at the current timestep), the
// bypass flags, the per-column summaries and the column-major mirrors.
// It does not touch the tile generation — SetTimestep calls it every
// timestep and must not force a weight recompile.
func (a *Array) refreshState() {
	rows, cols := a.cfg.Rows, a.cfg.Cols
	if a.transient != nil {
		a.transient.ActiveMasks(a.step, a.tOr, a.tClear)
	}
	for i := range a.faulty {
		or, cl := a.pOr[i], a.pClear[i]
		pf := or != 0 || cl != 0 || a.wFaulty[i]
		a.permFaulty[i] = pf
		a.bypassed[i] = pf && (a.bypassOn || (a.bypMask != nil && a.bypMask[i]))
		if a.transient != nil {
			or |= a.tOr[i]
			cl |= a.tClear[i]
		}
		a.orMask[i], a.clearMask[i] = or, cl
		a.faulty[i] = pf || or != 0 || cl != 0
	}
	for j := 0; j < cols; j++ {
		clean, byp := true, false
		base := j * rows
		for i := 0; i < rows; i++ {
			idx := i*cols + j
			if a.bypassed[idx] {
				byp = true
			} else if a.faulty[idx] {
				clean = false
			}
			a.bypT[base+i] = a.bypassed[idx]
			a.faultyT[base+i] = a.faulty[idx]
			a.orT[base+i] = a.orMask[idx]
			a.clearT[base+i] = a.clearMask[idx]
		}
		a.colClean[j] = clean
		a.colBypassed[j] = byp
	}
}

// refresh is refreshState plus tile invalidation — the path every
// fault-state mutation (as opposed to a timestep advance) goes through.
func (a *Array) refresh() {
	a.refreshState()
	// Invalidate every compiled weight-tile view of this array.
	a.gen.Add(1)
}

// SetDenseReference forces the pre-event-list dense scalar forward path,
// which walks every PE of every column. It is kept as the bit-identity
// reference for the sparse data plane: equivalence tests and the
// Dense/Sparse benchmark pairs run the same Forward contract on both
// paths. Production code never needs it.
func (a *Array) SetDenseReference(on bool) { a.denseRef = on }

// SpikeCount returns the internal spike counter of PE (row, col); zero if
// counting is disabled.
func (a *Array) SpikeCount(row, col int) uint64 {
	if a.spikeCount == nil {
		return 0
	}
	return a.spikeCount[row*a.cfg.Cols+col]
}

// Matrix is a weight matrix pre-quantized to the array's fixed-point
// format, shaped [M, K] row-major: M output neurons, K reduction inputs.
// Weight w[m][k] is pre-stored in PE(k mod Rows, m mod Cols) for the tile
// covering (k, m). Words must not be mutated after construction: Forward
// caches compiled per-array views of them (see compile.go).
type Matrix struct {
	M, K   int
	Words  []fixed.Word
	Format fixed.Format

	// Compiled per-array views (weight-fault forcing pre-applied,
	// weights pre-dequantized for the analog path), keyed by array and
	// validated against the array's fault-state generation.
	mu    sync.Mutex
	tiles map[*Array]*weightTiles
}

// QuantizeMatrix converts a float [M, K] weight tensor into a Matrix.
func QuantizeMatrix(w *tensor.Tensor, f fixed.Format) *Matrix {
	if w.Rank() != 2 {
		panic("systolic: QuantizeMatrix requires a rank-2 weight tensor")
	}
	return &Matrix{
		M:      w.Shape[0],
		K:      w.Shape[1],
		Words:  f.QuantizeSlice(w.Data),
		Format: f,
	}
}

// Dequantize converts the matrix back to a float tensor (for inspection).
func (m *Matrix) Dequantize() *tensor.Tensor {
	return tensor.FromSlice(m.Format.DequantizeSlice(m.Words), m.M, m.K)
}

// passStats accumulates datapath activity privately per parallel chunk;
// chunks merge into the shared Stats with atomic adds once they finish.
// Integer sums are order-independent, so the merged totals are identical
// to a serial pass regardless of engine or worker count.
type passStats struct {
	accumulations uint64
	bypassedSteps uint64
}

func (ps *passStats) mergeInto(s *Stats) {
	if ps.accumulations != 0 {
		atomic.AddUint64(&s.Accumulations, ps.accumulations)
	}
	if ps.bypassedSteps != 0 {
		atomic.AddUint64(&s.BypassedSteps, ps.bypassedSteps)
	}
}

func (a *Array) add(x, y fixed.Word) fixed.Word {
	if a.cfg.Saturate {
		return fixed.AddSat(x, y)
	}
	return fixed.AddWrap(x, y)
}

// PERowCol returns the PE coordinates that hold weight w[m][k] under the
// weight-stationary mapping. Exported so the mapping package and the
// hardware simulator can never disagree.
func (a *Array) PERowCol(k, m int) (row, col int) {
	return k % a.cfg.Rows, m % a.cfg.Cols
}

// ScanWritePE models scan-chain access used by post-fabrication testing:
// it writes a word into the accumulator register of PE (row, col) and
// returns what the register's output presents, with any stuck bits
// forced. Only permanent faults are visible — scan testing happens on
// the tester, not mid-inference, so transient strikes never appear.
func (a *Array) ScanWritePE(row, col int, w fixed.Word) fixed.Word {
	idx := row*a.cfg.Cols + col
	return fixed.ForceBits(w, a.pOr[idx], a.pClear[idx])
}

// ScanWriteWeight models scan access to the weight register of PE
// (row, col): it writes a word and returns what the register presents,
// with any stuck weight bits forced.
func (a *Array) ScanWriteWeight(row, col int, w fixed.Word) fixed.Word {
	idx := row*a.cfg.Cols + col
	return fixed.ForceBits(w, a.wOrMask[idx], a.wClearMask[idx])
}

// ScanTestWeights marches all-0s/all-1s through every PE's weight
// register and reconstructs the weight-register fault map.
func (a *Array) ScanTestWeights() *faults.Map {
	m := faults.NewMap(a.cfg.Rows, a.cfg.Cols)
	for r := 0; r < a.cfg.Rows; r++ {
		for c := 0; c < a.cfg.Cols; c++ {
			zeros := uint32(a.ScanWriteWeight(r, c, 0))
			ones := uint32(a.ScanWriteWeight(r, c, -1))
			for bit := uint(0); bit < fixed.WordBits; bit++ {
				mask := uint32(1) << bit
				if zeros&mask != 0 {
					_ = m.Add(faults.StuckAtFault{Row: r, Col: c, Bit: bit, Pol: faults.StuckAt1})
				}
				if ones&mask == 0 {
					_ = m.Add(faults.StuckAtFault{Row: r, Col: c, Bit: bit, Pol: faults.StuckAt0})
				}
			}
		}
	}
	return m
}

// ScanTest runs the classic all-0s/all-1s march pattern over every PE via
// the scan chain and reconstructs the fault map, modelling how a real chip's
// fault map is obtained after fabrication. The reconstruction is exact for
// single- and multi-bit stuck-at faults.
func (a *Array) ScanTest() *faults.Map {
	m := faults.NewMap(a.cfg.Rows, a.cfg.Cols)
	for r := 0; r < a.cfg.Rows; r++ {
		for c := 0; c < a.cfg.Cols; c++ {
			zeros := uint32(a.ScanWritePE(r, c, 0))
			ones := uint32(a.ScanWritePE(r, c, -1))
			for bit := uint(0); bit < fixed.WordBits; bit++ {
				mask := uint32(1) << bit
				if zeros&mask != 0 {
					// Wrote 0, read 1: stuck at 1.
					_ = m.Add(faults.StuckAtFault{Row: r, Col: c, Bit: bit, Pol: faults.StuckAt1})
				}
				if ones&mask == 0 {
					// Wrote 1, read 0: stuck at 0.
					_ = m.Add(faults.StuckAtFault{Row: r, Col: c, Bit: bit, Pol: faults.StuckAt0})
				}
			}
		}
	}
	return m
}
