package systolic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

// assertForwardIdentical runs one Forward on the sparse array and the
// dense-reference array and asserts bit-identical outputs, statistics and
// per-PE spike counters.
func assertForwardIdentical(t *testing.T, label string, sparse, dense *Array, x *tensor.Tensor, wm *Matrix, binary bool) {
	t.Helper()
	got := sparse.Forward(x, wm, binary)
	want := dense.Forward(x, wm, binary)
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s: y[%d] = %v, want %v", label, i, got.Data[i], want.Data[i])
		}
	}
	if sparse.Stats() != dense.Stats() {
		t.Fatalf("%s: stats %+v, want %+v", label, sparse.Stats(), dense.Stats())
	}
	rows, cols := sparse.cfg.Rows, sparse.cfg.Cols
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if sparse.SpikeCount(r, c) != dense.SpikeCount(r, c) {
				t.Fatalf("%s: spikeCount(%d,%d) = %d, want %d",
					label, r, c, sparse.SpikeCount(r, c), dense.SpikeCount(r, c))
			}
		}
	}
}

// TestSparseForwardMatchesDenseReference sweeps spike density × fault
// scenario × engine × saturation × shape, asserting the event-list sparse
// forward is bit-identical to the pre-change dense reference path —
// outputs, Stats and spike counters alike.
func TestSparseForwardMatchesDenseReference(t *testing.T) {
	type scenario struct {
		name           string
		faults, wfault bool
		mem, trans     bool
		bypass         bool
	}
	scenarios := []scenario{
		{name: "clean"},
		{name: "pe-faulty", faults: true},
		{name: "weight-faulty", wfault: true},
		{name: "bypassed", faults: true, bypass: true},
		{name: "mixed-bypassed", faults: true, wfault: true, bypass: true},
		{name: "mem-bitflip", mem: true},
		{name: "mem-bitflip-pe-faulty", mem: true, faults: true},
		{name: "transient", trans: true},
		{name: "transient-bitflip", trans: true, mem: true},
		{name: "everything-bypassed", faults: true, wfault: true, mem: true, trans: true, bypass: true},
	}
	shapes := []struct{ rows, cols, b, k, m int }{
		{8, 8, 3, 19, 13},    // ragged K and M tiles
		{16, 8, 3, 9, 10},    // K < Rows: bottom PE rows unreachable
		{16, 16, 16, 64, 40}, // multi-tile batch
	}
	densities := []float64{0, 0.1, 0.5, 1.0}
	for _, sc := range scenarios {
		for _, sh := range shapes {
			rng := rand.New(rand.NewSource(42))
			var fm, wfm *faults.Map
			var err error
			if sc.faults {
				fm, err = faults.Generate(sh.rows, sh.cols, faults.GenSpec{
					NumFaulty: sh.rows * sh.cols / 4, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
			}
			if sc.wfault {
				wfm, err = faults.Generate(sh.rows, sh.cols, faults.GenSpec{
					NumFaulty: sh.rows * sh.cols / 8, BitMode: faults.MSBBits, Pol: faults.StuckAt0,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
			}
			var mem *faults.MemoryFaults
			if sc.mem {
				rates, err := faults.BitRates(faults.ProfileUniform, 0.03)
				if err != nil {
					t.Fatal(err)
				}
				mem = &faults.MemoryFaults{Seed: 99, BitRate: rates}
			}
			var ts *faults.TransientSchedule
			if sc.trans {
				ts, err = faults.GenerateTransient(sh.rows, sh.cols, faults.TransientSpec{
					Strikes: sh.rows * sh.cols / 4, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
					Start: 1, MaxDuration: 2, PolMode: faults.RandomPol,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
			}
			w := tensor.New(sh.m, sh.k)
			w.RandNormal(rng, 0.5)
			for _, sat := range []bool{true, false} {
				for _, eng := range []tensor.Backend{tensor.Serial(), tensor.NewParallel(4)} {
					mk := func(dense bool) *Array {
						a, err := New(Config{
							Rows: sh.rows, Cols: sh.cols, Format: fixed.Q16x16,
							Saturate: sat, CountSpikes: true, Engine: eng,
						})
						if err != nil {
							t.Fatal(err)
						}
						if fm != nil {
							if err := a.InjectFaults(fm); err != nil {
								t.Fatal(err)
							}
						}
						if wfm != nil {
							if err := a.InjectWeightFaults(wfm); err != nil {
								t.Fatal(err)
							}
						}
						if mem != nil {
							if err := a.InjectMemoryFaults(mem); err != nil {
								t.Fatal(err)
							}
						}
						if ts != nil {
							if err := a.InjectTransient(ts); err != nil {
								t.Fatal(err)
							}
							// Land inside the strike window so the transient
							// masks are live during the identity check.
							a.SetTimestep(1)
						}
						a.SetBypass(sc.bypass)
						a.SetDenseReference(dense)
						return a
					}
					sparse, dense := mk(false), mk(true)
					// One Matrix shared across both arrays and all
					// densities: the compiled-tile cache must keep the
					// two views (and the dense path's raw Words) apart.
					wm := QuantizeMatrix(w, fixed.Q16x16)
					for _, density := range densities {
						label := fmt.Sprintf("%s %dx%d sat=%v eng=%s d=%.0f%%",
							sc.name, sh.rows, sh.cols, sat, eng.Name(), 100*density)
						spikes := randSpikeInput(rng, sh.b, sh.k, density)
						assertForwardIdentical(t, label+" binary", sparse, dense, spikes, wm, true)
						analog := randAnalogInput(rng, sh.b, sh.k)
						for i := range analog.Data {
							if rng.Float64() >= density {
								analog.Data[i] = 0
							}
						}
						assertForwardIdentical(t, label+" analog", sparse, dense, analog, wm, false)
					}
				}
			}
		}
	}
}

// TestCompiledTilesRecompileOnFaultChange asserts the compiled weight-tile
// cache is invalidated by every fault-state mutation: a Matrix first used
// on a clean array must observe weight faults injected afterwards, their
// clearing, and bypass toggles — matching the dense reference at each
// step.
func TestCompiledTilesRecompileOnFaultChange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const rows, cols, b, k, m = 8, 8, 4, 24, 12
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.5)
	wm := QuantizeMatrix(w, fixed.Q16x16)
	x := randSpikeInput(rng, b, k, 0.4)
	analog := randAnalogInput(rng, b, k)

	fm, err := faults.Generate(rows, cols, faults.GenSpec{
		NumFaulty: 12, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	wfm, err := faults.Generate(rows, cols, faults.GenSpec{
		NumFaulty: 10, BitMode: faults.MSBBits, Pol: faults.StuckAt0,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}

	sparse := newTestArray(t, rows, cols, tensor.Serial(), nil, nil, false, true)
	dense := newTestArray(t, rows, cols, tensor.Serial(), nil, nil, false, true)
	dense.SetDenseReference(true)

	step := func(label string, mutate func(a *Array)) {
		t.Helper()
		mutate(sparse)
		mutate(dense)
		assertForwardIdentical(t, label+" binary", sparse, dense, x, wm, true)
		assertForwardIdentical(t, label+" analog", sparse, dense, analog, wm, false)
	}
	rates, err := faults.BitRates(faults.ProfileDecay, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mem := &faults.MemoryFaults{Seed: 3, BitRate: rates}
	ts, err := faults.GenerateTransient(rows, cols, faults.TransientSpec{
		Strikes: 10, BitMode: faults.MSBBits, Pol: faults.StuckAt1, Start: 1, MaxDuration: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}

	step("clean", func(a *Array) {})
	step("inject-acc", func(a *Array) {
		if err := a.InjectFaults(fm); err != nil {
			t.Fatal(err)
		}
	})
	step("inject-weight", func(a *Array) {
		if err := a.InjectWeightFaults(wfm); err != nil {
			t.Fatal(err)
		}
	})
	step("bypass-on", func(a *Array) { a.SetBypass(true) })
	step("bypass-off", func(a *Array) { a.SetBypass(false) })
	step("inject-mem", func(a *Array) {
		if err := a.InjectMemoryFaults(mem); err != nil {
			t.Fatal(err)
		}
	})
	step("swap-mem", func(a *Array) {
		if err := a.InjectMemoryFaults(&faults.MemoryFaults{Seed: 4, BitRate: rates}); err != nil {
			t.Fatal(err)
		}
	})
	step("inject-transient", func(a *Array) {
		if err := a.InjectTransient(ts); err != nil {
			t.Fatal(err)
		}
	})
	step("timestep-strike", func(a *Array) { a.SetTimestep(1) })
	step("timestep-decayed", func(a *Array) { a.SetTimestep(ts.Horizon()) })
	step("clear", func(a *Array) { a.ClearFaults() })
}

// TestTransientTimestepSweep drives an array with a soft-error schedule
// through every timestep from before the burst to past its horizon,
// asserting at each step that (1) sparse matches the dense reference bit
// for bit, (2) steps outside every strike window reproduce the clean
// output exactly, and (3) steps inside the burst corrupt it. It also
// pins the SetTimestep contract: advancing time never recompiles weight
// tiles, while every true fault mutation does.
func TestTransientTimestepSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rows, cols, b, k, m = 8, 8, 4, 20, 11
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.5)
	wm := QuantizeMatrix(w, fixed.Q16x16)
	x := randSpikeInput(rng, b, k, 0.5)

	// MSB strikes landing at t=2, decaying within 3 steps.
	ts, err := faults.GenerateTransient(rows, cols, faults.TransientSpec{
		Strikes: 16, BitMode: faults.MSBBits, Pol: faults.StuckAt1, Start: 2, MaxDuration: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ts.ActiveCount(2) != 16 {
		t.Fatalf("burst at t=2 has %d active strikes, want 16", ts.ActiveCount(2))
	}

	sparse := newTestArray(t, rows, cols, tensor.Serial(), nil, nil, false, true)
	dense := newTestArray(t, rows, cols, tensor.Serial(), nil, nil, false, true)
	dense.SetDenseReference(true)
	baseline := newTestArray(t, rows, cols, tensor.Serial(), nil, nil, false, false)
	clean := baseline.Forward(x, wm, true)

	for _, a := range []*Array{sparse, dense} {
		if err := a.InjectTransient(ts); err != nil {
			t.Fatal(err)
		}
	}
	genBefore := sparse.gen.Load()
	for step := 0; step <= ts.Horizon()+1; step++ {
		sparse.SetTimestep(step)
		dense.SetTimestep(step)
		label := fmt.Sprintf("t=%d", step)
		got := sparse.Forward(x, wm, true)
		want := dense.Forward(x, wm, true)
		same := true
		for i := range want.Data {
			if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
				t.Fatalf("%s: sparse y[%d] = %v, dense reference %v", label, i, got.Data[i], want.Data[i])
			}
			if math.Float32bits(clean.Data[i]) != math.Float32bits(got.Data[i]) {
				same = false
			}
		}
		if sparse.Stats() != dense.Stats() {
			t.Fatalf("%s: stats %+v, want %+v", label, sparse.Stats(), dense.Stats())
		}
		if active := ts.ActiveCount(step) > 0; active == same {
			t.Fatalf("%s: %d active strikes but output unchanged=%v", label, ts.ActiveCount(step), same)
		}
	}
	if gen := sparse.gen.Load(); gen != genBefore {
		t.Fatalf("SetTimestep sweep bumped tile generation %d -> %d; timestep advances must not recompile weights", genBefore, gen)
	}
	sparse.ClearFaults()
	if gen := sparse.gen.Load(); gen == genBefore {
		t.Fatal("ClearFaults did not bump tile generation")
	}
}
