package systolic

import "falvolt/internal/fixed"

// Compiled weight tiles: a per-array view of a Matrix with every
// per-element branch of the old inner loop hoisted out of the hot path.
//
//   - Weight-SRAM bit-flips (faults.MemoryFaults) corrupt each stored
//     word first — the SRAM returns the flipped word — so memory faults
//     hit exactly what the accelerator stores, once per compile.
//   - Weight-register stuck bits (wOrMask/wClearMask) are then
//     force-applied once per compile instead of per accumulation, so
//     the slow path never consults wFaulty.
//   - For the analog path, the effective weights are pre-dequantized to
//     float64, eliminating the Dequantize (Ldexp) call per element; the
//     per-element Quantize stays, keeping results bit-identical.
//
// Views cache on the Matrix keyed by *Array and are validated against the
// array's fault-state generation, so InjectFaults / InjectWeightFaults /
// InjectMemoryFaults / InjectTransient / ClearFaults / SetBypass (all of
// which bump the generation via refresh) transparently recompile on the
// next Forward. SetTimestep does not bump it: transient strikes live on
// accumulator outputs, so compiled weights stay valid across timesteps.

// weightTiles is one compiled view of a Matrix on one Array.
type weightTiles struct {
	gen uint64       // array fault-state generation at compile time
	eff []fixed.Word // weight-fault-forced words; aliases Matrix.Words when the array has no weight faults
	deq []float64    // eff dequantized in the array's format; built on first analog pass
}

// tilesFor returns the compiled view of w for array a, (re)building it if
// the cache is cold or the array's fault state changed. Safe for
// concurrent Forward calls: the Matrix mutex serializes compiles, and a
// returned view is immutable.
func (w *Matrix) tilesFor(a *Array, needDeq bool) *weightTiles {
	gen := a.gen.Load()
	w.mu.Lock()
	defer w.mu.Unlock()
	t := w.tiles[a]
	if t == nil || t.gen != gen {
		t = &weightTiles{gen: gen, eff: w.Words}
		if a.wmap != nil || a.mem != nil {
			t.eff = w.compileEffective(a)
		}
		if w.tiles == nil {
			w.tiles = make(map[*Array]*weightTiles)
		} else {
			// Drop views whose array has since changed fault state, so a
			// matrix swept across many short-lived arrays cannot grow the
			// cache without bound.
			for arr, tt := range w.tiles {
				if tt.gen != arr.gen.Load() {
					delete(w.tiles, arr)
				}
			}
		}
		w.tiles[a] = t
	}
	if needDeq && t.deq == nil {
		format := a.cfg.Format
		deq := make([]float64, len(t.eff))
		for i, wd := range t.eff {
			deq[i] = format.Dequantize(wd)
		}
		t.deq = deq
	}
	return t
}

// compileEffective applies the array's weight-path faults to every
// stored word: first the SRAM's bit-flips (addressed by the word's flat
// index m*K+k — what the memory actually stores), then the destination
// PE's weight-register stuck bits under the weight-stationary mapping
// (w[m][k] lives in PE(k mod Rows, m mod Cols)). The dense reference
// path applies the same two corruptions per element in the same order.
func (w *Matrix) compileEffective(a *Array) []fixed.Word {
	rows, cols := a.cfg.Rows, a.cfg.Cols
	eff := make([]fixed.Word, len(w.Words))
	for m := 0; m < w.M; m++ {
		col := m % cols
		src := w.Words[m*w.K : (m+1)*w.K]
		dst := eff[m*w.K : (m+1)*w.K]
		for k, wd := range src {
			if a.mem != nil {
				wd = a.mem.FlipWord(m*w.K+k, wd)
			}
			idx := (k%rows)*cols + col
			if a.wFaulty[idx] {
				wd = fixed.ForceBits(wd, a.wOrMask[idx], a.wClearMask[idx])
			}
			dst[k] = wd
		}
	}
	return eff
}
