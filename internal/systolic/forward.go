package systolic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

// The spike-sparse data plane. SNN spike trains are mostly zeros and the
// paper's multiplier-less PE either gates a weight into the accumulator or
// does nothing, so a fault-free, bypass-free column's pass is fully
// determined by the nonzero input positions. Forward therefore builds a
// CSR event list over the input once per call (cost B×K) and reuses it
// across all M output columns: clean columns iterate only over spikes.
// Columns holding a faulty or bypassed PE keep a slow path that walks
// every PE — stuck-bit forcing applies on every accumulation step and
// bypass skips must be counted — but on column-contiguous fault state and
// precompiled weights (compile.go), with no modulo, no per-element weight
// forcing and no float64 round-trip in the loop.
//
// Every path accumulates each output word in the exact per-element order
// of the dense reference (dense.go): skipping a zero add is exact because
// AddSat(acc, 0) == AddWrap(acc, 0) == acc, and stuck-bit forcing of
// faulty PEs is never skipped. The contract — bit-identical outputs,
// Stats and spike counters across paths, engines and worker counts — is
// what future SIMD backends must also satisfy.

// events is a per-call CSR index of the nonzero input entries, grouped by
// (batch row, K-tile) so per-tile fixed-point accumulation (and its
// saturation behaviour) is preserved exactly.
type events struct {
	idx  []int32 // ascending k of nonzero x entries, grouped by (bi, tile)
	offs []int32 // len b*numKTiles+1; group g spans idx[offs[g]:offs[g+1]]
	// rowTotals[r] counts nonzero inputs landing on PE row r, summed over
	// the whole batch; built only when per-PE spike counting is on. Every
	// output column m receives exactly these counts at PE column m%Cols.
	rowTotals []uint64
}

var eventPool = sync.Pool{New: func() any { return new(events) }}

// buildEvents scans x ([b, k]) once and fills a pooled events value.
func buildEvents(x *tensor.Tensor, k, rows int, wantTotals bool) *events {
	ev := eventPool.Get().(*events)
	b := x.Shape[0]
	ev.idx = ev.idx[:0]
	ev.offs = ev.offs[:0]
	ev.offs = append(ev.offs, 0)
	if wantTotals {
		if cap(ev.rowTotals) < rows {
			ev.rowTotals = make([]uint64, rows)
		}
		ev.rowTotals = ev.rowTotals[:rows]
		clear(ev.rowTotals)
	} else {
		ev.rowTotals = nil
	}
	for bi := 0; bi < b; bi++ {
		xrow := x.Data[bi*k : (bi+1)*k]
		for k0 := 0; k0 < k; k0 += rows {
			k1 := min(k0+rows, k)
			for kk := k0; kk < k1; kk++ {
				if xrow[kk] != 0 {
					ev.idx = append(ev.idx, int32(kk))
					if wantTotals {
						ev.rowTotals[kk-k0]++
					}
				}
			}
			ev.offs = append(ev.offs, int32(len(ev.idx)))
		}
	}
	return ev
}

// spikeBufPool recycles per-chunk spike-counter buffers (satellite of the
// sparse plane: one buffered merge per chunk replaces an atomic add per
// spiking element).
var spikeBufPool = sync.Pool{New: func() any { return new([]uint64) }}

func getSpikeBuf(n int) *[]uint64 {
	p := spikeBufPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

// Forward computes Y = X · Wᵀ on the (possibly faulty) array: X is
// [B, K] inputs, W is a quantized [M, K] matrix, and the result is a
// float [B, M] tensor dequantized from the fixed-point column sums.
//
// If binary is true, X is treated as spikes: any non-zero entry gates the
// weight into the accumulator (the paper's multiplier-less PE). If false,
// each contribution is the quantized product w*x (used for the analog
// encoder layer; same accumulator datapath, same fault exposure).
//
// The pass is parallelized across output columns on the array's engine:
// each output word y[b][m] is still produced by one sequential chain of
// accumulations in the serial order, so results (and all statistics) are
// bit-identical on every engine, and — by the event-list construction
// above — on the dense reference path. Concurrent Forward calls on one
// Array are safe; statistics and spike counters merge atomically.
func (a *Array) Forward(x *tensor.Tensor, w *Matrix, binary bool) *tensor.Tensor {
	if x.Rank() != 2 {
		panic("systolic: Forward requires rank-2 input")
	}
	if x.Shape[1] != w.K {
		panic(fmt.Sprintf("systolic: input K %d != weight K %d", x.Shape[1], w.K))
	}
	b := x.Shape[0]
	y := tensor.New(b, w.M)
	rows, cols := a.cfg.Rows, a.cfg.Cols
	numKTiles := (w.K + rows - 1) / rows
	numMTiles := (w.M + cols - 1) / cols
	atomic.AddUint64(&a.stats.TilePasses, uint64(numKTiles*numMTiles))
	atomic.AddUint64(&a.stats.MACCycles, uint64(numKTiles*numMTiles)*uint64(rows+cols+b-2))

	if a.denseRef {
		a.forwardDense(x, w, y, binary)
		return y
	}

	scale := float32(w.Format.Scale())
	format := a.cfg.Format
	sat := a.cfg.Saturate
	tiles := w.tilesFor(a, !binary)

	// Only PE rows < usedRows ever see an input: tiles are Rows-aligned,
	// so a K smaller than the grid leaves the bottom rows idle and their
	// faults unreachable. Column fast-path eligibility considers only
	// reachable PEs.
	usedRows := min(rows, w.K)
	fast := make([]bool, cols)
	anyFast := false
	usedCols := min(cols, w.M)
	for j := 0; j < usedCols; j++ {
		f := true
		if usedRows == rows {
			f = a.colClean[j] && !a.colBypassed[j]
		} else {
			for _, flt := range a.faultyT[j*rows : j*rows+usedRows] {
				if flt {
					f = false
					break
				}
			}
		}
		fast[j] = f
		anyFast = anyFast || f
	}

	counting := binary && a.spikeCount != nil
	var ev *events
	if anyFast || counting {
		ev = buildEvents(x, w.K, rows, counting)
	}

	a.engine().For(w.M, func(m0, m1 int) {
		var ps passStats
		var spikes *[]uint64
		if counting {
			spikes = getSpikeBuf(rows * cols)
		}
		for m := m0; m < m1; m++ {
			j := m % cols
			weff := tiles.eff[m*w.K : (m+1)*w.K]
			if fast[j] {
				if binary {
					fastBinaryColumn(y, ev, weff, x.Shape[0], numKTiles, m, w.M, scale, sat)
				} else {
					fastAnalogColumn(y, ev, x, tiles.deq[m*w.K:(m+1)*w.K], numKTiles, m, w.M, w.K, scale, format, sat)
				}
				ps.accumulations += uint64(b) * uint64(w.K)
			} else {
				a.slowColumn(y, x, weff, tiles.deq, m, j, w.M, w.K, scale, binary, &ps)
			}
			if counting {
				buf := *spikes
				for r, t := range ev.rowTotals[:usedRows] {
					if t != 0 {
						buf[r*cols+j] += t
					}
				}
			}
		}
		ps.mergeInto(&a.stats)
		if counting {
			for i, v := range *spikes {
				if v != 0 {
					atomic.AddUint64(&a.spikeCount[i], v)
				}
			}
			spikeBufPool.Put(spikes)
		}
	})

	if ev != nil {
		eventPool.Put(ev)
	}
	return y
}

// fastBinaryColumn fills output column m for a fault-free, bypass-free PE
// column: per (batch row, tile), a straight sum of the weights at spike
// positions — no per-element branches at all.
func fastBinaryColumn(y *tensor.Tensor, ev *events, weff []fixed.Word, b, numKTiles, m, mDim int, scale float32, sat bool) {
	if sat {
		for bi := 0; bi < b; bi++ {
			base := bi * numKTiles
			var total int64
			for kt := 0; kt < numKTiles; kt++ {
				var acc fixed.Word
				for _, kk := range ev.idx[ev.offs[base+kt]:ev.offs[base+kt+1]] {
					acc = fixed.AddSat(acc, weff[kk])
				}
				total += int64(acc)
			}
			y.Data[bi*mDim+m] = float32(total) * scale
		}
		return
	}
	for bi := 0; bi < b; bi++ {
		base := bi * numKTiles
		var total int64
		for kt := 0; kt < numKTiles; kt++ {
			var acc fixed.Word
			for _, kk := range ev.idx[ev.offs[base+kt]:ev.offs[base+kt+1]] {
				acc = fixed.AddWrap(acc, weff[kk])
			}
			total += int64(acc)
		}
		y.Data[bi*mDim+m] = float32(total) * scale
	}
}

// fastAnalogColumn is fastBinaryColumn for the analog encoder path: each
// spike contributes the quantized product of the input and the
// pre-dequantized effective weight.
func fastAnalogColumn(y *tensor.Tensor, ev *events, x *tensor.Tensor, deq []float64, numKTiles, m, mDim, kDim int, scale float32, format fixed.Format, sat bool) {
	b := x.Shape[0]
	for bi := 0; bi < b; bi++ {
		xrow := x.Data[bi*kDim : (bi+1)*kDim]
		base := bi * numKTiles
		var total int64
		for kt := 0; kt < numKTiles; kt++ {
			var acc fixed.Word
			for _, kk := range ev.idx[ev.offs[base+kt]:ev.offs[base+kt+1]] {
				add := format.Quantize(float64(xrow[kk]) * deq[kk])
				if sat {
					acc = fixed.AddSat(acc, add)
				} else {
					acc = fixed.AddWrap(acc, add)
				}
			}
			total += int64(acc)
		}
		y.Data[bi*mDim+m] = float32(total) * scale
	}
}

// slowColumn fills output column m for a PE column holding at least one
// faulty or bypassed PE. It walks every PE — stuck-bit forcing corrupts
// the accumulator on every step, spiking or not, and bypassed steps must
// be counted — but against column-contiguous fault state and precompiled
// weights, with the tile-local index doubling as the PE row. Two exact
// identities keep the walk branch-light: a no-spike step adds zero
// (AddSat(acc, 0) == AddWrap(acc, 0) == acc, so the spike gate becomes a
// conditional move), and a healthy PE's force masks are zero
// (ForceBits(acc, 0, 0) == acc, so forcing applies unconditionally).
func (a *Array) slowColumn(y, x *tensor.Tensor, weff []fixed.Word, deq []float64, m, j, mDim, kDim int, scale float32, binary bool, ps *passStats) {
	rows := a.cfg.Rows
	format := a.cfg.Format
	sat := a.cfg.Saturate
	base := j * rows
	byp := a.bypT[base : base+rows]
	orM := a.orT[base : base+rows]
	clM := a.clearT[base : base+rows]
	var deqrow []float64
	if !binary {
		deqrow = deq[m*kDim : (m+1)*kDim]
	}
	b := x.Shape[0]
	for bi := 0; bi < b; bi++ {
		xrow := x.Data[bi*kDim : (bi+1)*kDim]
		var total int64
		var bypassed uint64
		var steps uint64
		for k0 := 0; k0 < kDim; k0 += rows {
			k1 := k0 + rows
			if k1 > kDim {
				k1 = kDim
			}
			xs := xrow[k0:k1]
			steps += uint64(len(xs))
			var acc fixed.Word
			switch {
			case binary && sat:
				ws := weff[k0:k1]
				for i, xv := range xs {
					if byp[i] {
						bypassed++
						continue // pre-sum routed around the PE unchanged
					}
					wv := ws[i]
					if xv == 0 {
						wv = 0
					}
					acc = fixed.AddSat(acc, wv)
					acc = fixed.ForceBits(acc, orM[i], clM[i])
				}
			case binary:
				ws := weff[k0:k1]
				for i, xv := range xs {
					if byp[i] {
						bypassed++
						continue
					}
					wv := ws[i]
					if xv == 0 {
						wv = 0
					}
					acc = fixed.AddWrap(acc, wv)
					acc = fixed.ForceBits(acc, orM[i], clM[i])
				}
			default:
				dq := deqrow[k0:k1]
				for i, xv := range xs {
					if byp[i] {
						bypassed++
						continue
					}
					var add fixed.Word
					if xv != 0 {
						add = format.Quantize(float64(xv) * dq[i])
					}
					if sat {
						acc = fixed.AddSat(acc, add)
					} else {
						acc = fixed.AddWrap(acc, add)
					}
					acc = fixed.ForceBits(acc, orM[i], clM[i])
				}
			}
			total += int64(acc)
		}
		ps.bypassedSteps += bypassed
		ps.accumulations += steps - bypassed
		y.Data[bi*mDim+m] = float32(total) * scale
	}
}
