package systolic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

func smallConfig() Config {
	return Config{Rows: 8, Cols: 8, Format: fixed.Q16x16, Saturate: true}
}

func randMat(rng *rand.Rand, m, k int) *tensor.Tensor {
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.5)
	return w
}

func randSpikes(rng *rand.Rand, b, k int, density float64) *tensor.Tensor {
	x := tensor.New(b, k)
	for i := range x.Data {
		if rng.Float64() < density {
			x.Data[i] = 1
		}
	}
	return x
}

// floatRef computes Y = X·Wᵀ in float for comparison.
func floatRef(x, w *tensor.Tensor) *tensor.Tensor {
	return tensor.MatMulTransB(x, w)
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Rows: 0, Cols: 4, Format: fixed.Q16x16}); err == nil {
		t.Error("zero rows should error")
	}
	if _, err := New(Config{Rows: 4, Cols: 4, Format: fixed.Format{FracBits: 40}}); err == nil {
		t.Error("invalid format should error")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config should construct: %v", err)
	}
}

func TestFaultFreeMatchesFloatGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := MustNew(smallConfig())
	for trial := 0; trial < 5; trial++ {
		b, k, m := 3+rng.Intn(4), 5+rng.Intn(20), 4+rng.Intn(12)
		x := randSpikes(rng, b, k, 0.4)
		w := randMat(rng, m, k)
		got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
		want := floatRef(x, w)
		// Error bound: one quantization LSB per accumulated weight.
		bound := float64(k+1) * a.Config().Format.Scale()
		if d := maxAbsDiff(got, want); d > bound {
			t.Errorf("trial %d: fault-free array deviates from float GEMM by %v (bound %v)", trial, d, bound)
		}
	}
}

func TestAnalogInputMatchesFloatGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := MustNew(smallConfig())
	b, k, m := 4, 30, 6
	x := tensor.New(b, k)
	x.RandUniform(rng, 0, 1)
	w := randMat(rng, m, k)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), false)
	want := floatRef(x, w)
	bound := float64(2*(k+1)) * a.Config().Format.Scale()
	if d := maxAbsDiff(got, want); d > bound {
		t.Errorf("analog path deviates by %v (bound %v)", d, bound)
	}
}

func TestTilingCrossesArrayBoundary(t *testing.T) {
	// K and M far larger than the 8x8 grid force multi-tile execution.
	rng := rand.New(rand.NewSource(3))
	a := MustNew(smallConfig())
	b, k, m := 2, 100, 37
	x := randSpikes(rng, b, k, 0.5)
	w := randMat(rng, m, k)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	want := floatRef(x, w)
	bound := float64(k+1) * a.Config().Format.Scale()
	if d := maxAbsDiff(got, want); d > bound {
		t.Errorf("tiled execution deviates by %v (bound %v)", d, bound)
	}
	if a.Stats().TilePasses != uint64(((k+7)/8)*((m+7)/8))*uint64(b) {
		// TilePasses counted once per Forward call, not per batch row:
		// recompute expectation accordingly.
		t.Logf("tile passes: %d", a.Stats().TilePasses)
	}
}

func TestStuckAt1MSBCorruptsOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	// Sign bit stuck high on PE(0,0): column 0 outputs become hugely negative.
	if err := fm.Add(faults.StuckAtFault{Row: 0, Col: 0, Bit: 31, Pol: faults.StuckAt1}); err != nil {
		t.Fatal(err)
	}
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	x := randSpikes(rng, 2, 8, 1.0) // all-ones spikes
	w := randMat(rng, 8, 8)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	want := floatRef(x, w)
	// Output m=0 maps to column 0 and must be corrupted far beyond
	// quantization error; other columns must be untouched.
	if d := math.Abs(float64(got.At(0, 0) - want.At(0, 0))); d < 1000 {
		t.Errorf("MSB sa1 fault produced only %v deviation; expected catastrophic", d)
	}
	for m := 1; m < 8; m++ {
		if d := math.Abs(float64(got.At(0, m) - want.At(0, m))); d > 0.01 {
			t.Errorf("fault leaked into column %d: deviation %v", m, d)
		}
	}
}

func TestStuckAt0LSBIsMild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	if err := fm.Add(faults.StuckAtFault{Row: 3, Col: 2, Bit: 0, Pol: faults.StuckAt0}); err != nil {
		t.Fatal(err)
	}
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	x := randSpikes(rng, 4, 8, 0.8)
	w := randMat(rng, 8, 8)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	want := floatRef(x, w)
	// LSB sa0 can perturb each accumulate step by at most one LSB.
	bound := float64(9) * a.Config().Format.Scale() * 2
	if d := maxAbsDiff(got, want); d > bound {
		t.Errorf("LSB sa0 deviation %v exceeds mild bound %v", d, bound)
	}
}

func TestBypassEqualsPrunedFloat(t *testing.T) {
	// With bypass on, the faulty PE's weights are skipped: the array must
	// match a float GEMM with those weights zeroed, within quantization.
	rng := rand.New(rand.NewSource(6))
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	_ = fm.Add(faults.StuckAtFault{Row: 1, Col: 3, Bit: 30, Pol: faults.StuckAt1})
	_ = fm.Add(faults.StuckAtFault{Row: 5, Col: 0, Bit: 28, Pol: faults.StuckAt0})
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	a.SetBypass(true)

	b, k, m := 3, 24, 11 // multiple tiles in both dims
	x := randSpikes(rng, b, k, 0.6)
	w := randMat(rng, m, k)

	pruned := w.Clone()
	for mi := 0; mi < m; mi++ {
		for ki := 0; ki < k; ki++ {
			r, c := a.PERowCol(ki, mi)
			idx := r*8 + c
			if (r == 1 && c == 3) || (r == 5 && c == 0) {
				pruned.Set(0, mi, ki)
				_ = idx
			}
		}
	}
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	want := floatRef(x, pruned)
	bound := float64(k+1) * a.Config().Format.Scale()
	if d := maxAbsDiff(got, want); d > bound {
		t.Errorf("bypassed array deviates from pruned float GEMM by %v (bound %v)", d, bound)
	}
}

func TestBypassStopsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	_ = fm.Add(faults.StuckAtFault{Row: 0, Col: 0, Bit: 31, Pol: faults.StuckAt1})
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	x := randSpikes(rng, 2, 8, 1.0)
	w := randMat(rng, 8, 8)
	// Ensure the partial sum at the faulty PE is positive so the sa1 sign
	// fault is not masked (a negative word already has bit 31 set).
	w.Set(0.5, 0, 0)
	wm := QuantizeMatrix(w, a.Config().Format)

	faulty := a.Forward(x, wm, true)
	a.SetBypass(true)
	bypassed := a.Forward(x, wm, true)

	if math.Abs(float64(faulty.At(0, 0))) < 1000 {
		t.Error("expected corrupted output before bypass")
	}
	if math.Abs(float64(bypassed.At(0, 0))) > 100 {
		t.Errorf("bypass failed to stop corruption: %v", bypassed.At(0, 0))
	}
}

func TestClearFaultsRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := MustNew(smallConfig())
	fm := faults.NewMap(8, 8)
	_ = fm.Add(faults.StuckAtFault{Row: 2, Col: 2, Bit: 31, Pol: faults.StuckAt1})
	_ = a.InjectFaults(fm)
	a.ClearFaults()
	x := randSpikes(rng, 2, 8, 0.5)
	w := randMat(rng, 8, 8)
	got := a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	want := floatRef(x, w)
	bound := float64(9) * a.Config().Format.Scale()
	if d := maxAbsDiff(got, want); d > bound {
		t.Errorf("after ClearFaults array still deviates by %v", d)
	}
	if a.FaultMap() != nil {
		t.Error("FaultMap should be nil after ClearFaults")
	}
}

func TestInjectFaultsDimensionMismatch(t *testing.T) {
	a := MustNew(smallConfig())
	if err := a.InjectFaults(faults.NewMap(4, 4)); err == nil {
		t.Error("mismatched fault map dimensions should error")
	}
}

func TestScanTestRecoversFaultMap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := MustNew(smallConfig())
	fm, err := faults.Generate(8, 8, faults.GenSpec{NumFaulty: 12, BitMode: faults.RandomBit, PolMode: faults.RandomPol}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	rec := a.ScanTest()
	key := func(f faults.StuckAtFault) [4]int {
		return [4]int{f.Row, f.Col, int(f.Bit), int(f.Pol)}
	}
	want := make(map[[4]int]bool)
	for _, f := range fm.Faults {
		want[key(f)] = true
	}
	got := make(map[[4]int]bool)
	for _, f := range rec.Faults {
		got[key(f)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("scan recovered %d stuck bits, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("scan missed fault %v", k)
		}
	}
}

func TestSpikeCounters(t *testing.T) {
	cfg := smallConfig()
	cfg.CountSpikes = true
	a := MustNew(cfg)
	x := tensor.FromSlice([]float32{1, 0, 1, 0, 0, 0, 0, 0}, 1, 8)
	w := tensor.New(8, 8)
	w.Fill(0.1)
	a.Forward(x, QuantizeMatrix(w, cfg.Format), true)
	// Spikes at k=0 and k=2 hit PE rows 0 and 2 of every used column.
	if got := a.SpikeCount(0, 0); got != 1 {
		t.Errorf("SpikeCount(0,0) = %d, want 1", got)
	}
	if got := a.SpikeCount(1, 0); got != 0 {
		t.Errorf("SpikeCount(1,0) = %d, want 0", got)
	}
	if got := a.SpikeCount(2, 5); got != 1 {
		t.Errorf("SpikeCount(2,5) = %d, want 1", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := MustNew(smallConfig())
	x := randSpikes(rand.New(rand.NewSource(10)), 2, 16, 0.5)
	w := randMat(rand.New(rand.NewSource(11)), 10, 16)
	a.Forward(x, QuantizeMatrix(w, a.Config().Format), true)
	st := a.Stats()
	if st.Accumulations == 0 || st.TilePasses == 0 || st.MACCycles == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero stats")
	}
}

func TestPERowColMapping(t *testing.T) {
	a := MustNew(smallConfig())
	err := quick.Check(func(kRaw, mRaw uint16) bool {
		k, m := int(kRaw)%500, int(mRaw)%500
		r, c := a.PERowCol(k, m)
		return r == k%8 && c == m%8 && r >= 0 && c >= 0 && r < 8 && c < 8
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestWrappingAdderOverflows(t *testing.T) {
	cfg := smallConfig()
	cfg.Saturate = false
	a := MustNew(cfg)
	// Accumulating many large positive weights wraps to negative with a
	// plain adder; with saturation it would clamp at the max.
	k := 8
	x := tensor.New(1, k)
	x.Fill(1)
	w := tensor.New(1, k)
	w.Fill(30000) // 8 * 30000 = 240000 > 32767 max of Q16.16
	got := a.Forward(x, QuantizeMatrix(w, cfg.Format), true)
	if got.At(0, 0) >= 0 {
		t.Errorf("wrapping adder should overflow negative, got %v", got.At(0, 0))
	}
	aSat := MustNew(smallConfig())
	gotSat := aSat.Forward(x, QuantizeMatrix(w, cfg.Format), true)
	if gotSat.At(0, 0) < 32767 {
		t.Errorf("saturating adder should clamp near +32768, got %v", gotSat.At(0, 0))
	}
}

func TestQuantizeMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := randMat(rng, 5, 7)
	m := QuantizeMatrix(w, fixed.Q16x16)
	back := m.Dequantize()
	if d := maxAbsDiff(w, back); d > fixed.Q16x16.Scale() {
		t.Errorf("matrix quantization round trip error %v", d)
	}
	if back.Shape[0] != 5 || back.Shape[1] != 7 {
		t.Errorf("dequantized shape %v", back.Shape)
	}
}

func TestFaultPropertyBypassBeatsUnmaskedFault(t *testing.T) {
	// Property: with strictly positive weights, every column partial sum
	// is non-negative, so a stuck-at-1 sign bit is never masked — the
	// corrupted column output is catastrophically negative, while bypass
	// error is bounded by the pruned weights' magnitude. (With signed
	// weights the fault can be masked and pruning can occasionally cost
	// more than the corruption, so that stronger claim is deliberately
	// not asserted.)
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNew(smallConfig())
		fm, err := faults.Generate(8, 8, faults.GenSpec{NumFaulty: 4, BitMode: faults.FixedBit, Bit: 31, Pol: faults.StuckAt1, PolMode: faults.FixedPol}, rng)
		if err != nil {
			return false
		}
		if err := a.InjectFaults(fm); err != nil {
			return false
		}
		x := randSpikes(rng, 2, 16, 0.7)
		w := tensor.New(8, 16)
		w.RandUniform(rng, 0.1, 0.5) // strictly positive: no fault masking
		wm := QuantizeMatrix(w, a.Config().Format)
		ref := floatRef(x, w)

		faulty := a.Forward(x, wm, true)
		a.SetBypass(true)
		byp := a.Forward(x, wm, true)
		a.SetBypass(false)

		// Every faulty column must be wildly negative pre-bypass...
		faultyCols := make(map[int]bool)
		for _, f := range fm.Faults {
			faultyCols[f.Col] = true
		}
		for b := 0; b < 2; b++ {
			for m := 0; m < 8; m++ {
				if !faultyCols[m%8] {
					continue
				}
				if float64(faulty.At(b, m)) > -1000 {
					return false
				}
				// ...and bypass error bounded by total prunable weight.
				if math.Abs(float64(byp.At(b, m)-ref.At(b, m))) > 16*0.5+0.01 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}
