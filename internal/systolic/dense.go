package systolic

import (
	"sync/atomic"

	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

// This file preserves the pre-event-list dense forward path. It walks
// every PE of every column and is the semantic reference the sparse
// data plane (forward.go) must reproduce bit for bit — outputs, Stats
// and per-PE spike counters alike. SetDenseReference(true) routes
// Forward through it; the sparsity property tests and the Dense
// benchmark variants are its callers.
//
// Weight-SRAM bit-flips are applied here per element as each word is
// read (memWord), independently of the compiled-tile path that the
// sparse plane precomputes — so the bit-identity property test checks
// the compile-time application against a second implementation, not
// against itself. Transient strikes need no code here at all: they ride
// the effective orMask/clearMask/faulty state that SetTimestep
// recomputes.

// forwardDense computes y on the dense scalar path. The caller (Forward)
// has already validated shapes, allocated y and charged TilePasses /
// MACCycles.
func (a *Array) forwardDense(x *tensor.Tensor, w *Matrix, y *tensor.Tensor, binary bool) {
	b := x.Shape[0]
	rows, cols := a.cfg.Rows, a.cfg.Cols
	numKTiles := (w.K + rows - 1) / rows

	format := w.Format
	scale := float32(format.Scale())
	a.engine().For(w.M, func(m0, m1 int) {
		var ps passStats
		for m := m0; m < m1; m++ {
			j := m % cols
			wordBase := m * w.K
			wrow := w.Words[wordBase : wordBase+w.K]
			for bi := 0; bi < b; bi++ {
				xrow := x.Data[bi*w.K : (bi+1)*w.K]
				var total int64
				for kt := 0; kt < numKTiles; kt++ {
					k0 := kt * rows
					k1 := k0 + rows
					if k1 > w.K {
						k1 = w.K
					}
					total += int64(a.columnPass(xrow[k0:k1], wrow[k0:k1], k0, wordBase, j, binary, &ps))
				}
				y.Data[bi*w.M+m] = float32(total) * scale
			}
		}
		ps.mergeInto(&a.stats)
	})
}

// memWord reads one stored weight word through the (optional) faulty
// SRAM: idx is the word's flat index m*K+k in the stored matrix.
func (a *Array) memWord(idx int, w fixed.Word) fixed.Word {
	if a.mem == nil {
		return w
	}
	return a.mem.FlipWord(idx, w)
}

// columnPass streams one K-tile of one output column through the array and
// returns the resulting partial sum word. k0 is the global k offset of the
// tile (PE row for global index k is k mod Rows, which equals the local
// index within a full tile); wordBase is the flat index of the row's first
// stored word (m*K), so wordBase+k0+i addresses element i in the weight
// SRAM. Datapath activity lands in ps, the calling chunk's private
// accumulator.
func (a *Array) columnPass(xs []float32, ws []fixed.Word, k0, wordBase, col int, binary bool, ps *passStats) fixed.Word {
	cols := a.cfg.Cols
	format := a.cfg.Format

	// Fast path: a fault-free, bypass-free column is a plain integer sum.
	// Memory flips still apply — the SRAM is faulty, not the column.
	if a.colClean[col] && !a.colBypassed[col] {
		var acc fixed.Word
		if binary {
			for i, xv := range xs {
				if xv != 0 {
					acc = a.add(acc, a.memWord(wordBase+k0+i, ws[i]))
				}
			}
			ps.accumulations += uint64(len(xs))
			a.countSpikesDense(xs, k0, col)
			return acc
		}
		for i, xv := range xs {
			if xv != 0 {
				w := a.memWord(wordBase+k0+i, ws[i])
				acc = a.add(acc, format.Quantize(float64(xv)*format.Dequantize(w)))
			}
		}
		ps.accumulations += uint64(len(xs))
		return acc
	}

	// Slow path: walk every PE in the column, applying bypass or stuck-bit
	// forcing on the accumulator output register at each step. Per word,
	// the SRAM flip comes first, then the weight-register stuck bits —
	// the same order compileEffective bakes into the sparse plane's tiles.
	var acc fixed.Word
	for i, xv := range xs {
		row := (k0 + i) % a.cfg.Rows
		idx := row*cols + col
		if a.bypassed[idx] {
			ps.bypassedSteps++
			continue // pre-sum routed around the PE unchanged
		}
		var add fixed.Word
		if xv != 0 {
			w := a.memWord(wordBase+k0+i, ws[i])
			if a.wFaulty[idx] {
				w = fixed.ForceBits(w, a.wOrMask[idx], a.wClearMask[idx])
			}
			if binary {
				add = w
			} else {
				add = format.Quantize(float64(xv) * format.Dequantize(w))
			}
		}
		acc = a.add(acc, add)
		ps.accumulations++
		if a.faulty[idx] {
			acc = fixed.ForceBits(acc, a.orMask[idx], a.clearMask[idx])
		}
	}
	if binary {
		a.countSpikesDense(xs, k0, col)
	}
	return acc
}

// countSpikesDense bumps the per-PE spike counters with one atomic add per
// spiking element. The sparse plane buffers per chunk instead; totals are
// identical because integer addition commutes.
func (a *Array) countSpikesDense(xs []float32, k0, col int) {
	if a.spikeCount == nil {
		return
	}
	cols := a.cfg.Cols
	for i, xv := range xs {
		if xv != 0 {
			row := (k0 + i) % a.cfg.Rows
			atomic.AddUint64(&a.spikeCount[row*cols+col], 1)
		}
	}
}
