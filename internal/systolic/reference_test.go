package systolic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

// This file property-tests the whole forward contract — every fault
// model, both adder modes, both engines, both data planes — against
// scalarForward, a from-scratch triple-loop model of the architecture
// that shares no code with the production paths: masks are rebuilt from
// the raw fault structures, bit forcing is reimplemented inline, and
// tiles are walked in the plain textbook order. If the event-list
// plane, the compiled tiles, the dense path and this model all agree
// bit for bit, a bug would have to be replicated four independent ways
// to hide.

// scalarForward computes y = forward(x, wm) for a rows x cols array
// carrying the given fault state at timestep tstep.
func scalarForward(cfg Config, fm, wfm *faults.Map, mem *faults.MemoryFaults,
	ts *faults.TransientSchedule, tstep int, bypass bool,
	x *tensor.Tensor, wm *Matrix, binary bool) *tensor.Tensor {

	rows, cols := cfg.Rows, cfg.Cols
	n := rows * cols
	pOr := make([]uint32, n)
	pCl := make([]uint32, n)
	wOr := make([]uint32, n)
	wCl := make([]uint32, n)
	tOr := make([]uint32, n)
	tCl := make([]uint32, n)
	fill := func(m *faults.Map, or, cl []uint32) {
		if m == nil {
			return
		}
		for _, f := range m.Faults {
			idx := f.Row*cols + f.Col
			if f.Pol == faults.StuckAt1 {
				or[idx] |= 1 << f.Bit
			} else {
				cl[idx] |= 1 << f.Bit
			}
		}
	}
	fill(fm, pOr, pCl)
	fill(wfm, wOr, wCl)
	if ts != nil {
		for _, st := range ts.Strikes {
			if tstep < st.Start || tstep >= st.Start+st.Duration {
				continue
			}
			idx := st.Row*cols + st.Col
			if st.Pol == faults.StuckAt1 {
				tOr[idx] |= 1 << st.Bit
			} else {
				tCl[idx] |= 1 << st.Bit
			}
		}
	}
	// Effective accumulator forcing = permanent + active transient bits;
	// bypass covers permanently faulty PEs only (either register).
	or := make([]uint32, n)
	cl := make([]uint32, n)
	byp := make([]bool, n)
	for i := 0; i < n; i++ {
		or[i] = pOr[i] | tOr[i]
		cl[i] = pCl[i] | tCl[i]
		byp[i] = bypass && (pOr[i]|pCl[i]|wOr[i]|wCl[i] != 0)
	}

	add := func(a, v fixed.Word) fixed.Word {
		if cfg.Saturate {
			return fixed.AddSat(a, v)
		}
		return fixed.AddWrap(a, v)
	}
	b := x.Shape[0]
	y := tensor.New(b, wm.M)
	scale := float32(wm.Format.Scale())
	for bi := 0; bi < b; bi++ {
		for m := 0; m < wm.M; m++ {
			col := m % cols
			var total int64
			for k0 := 0; k0 < wm.K; k0 += rows {
				k1 := k0 + rows
				if k1 > wm.K {
					k1 = wm.K
				}
				var acc fixed.Word
				for k := k0; k < k1; k++ {
					idx := (k%rows)*cols + col
					if byp[idx] {
						continue
					}
					var v fixed.Word
					if xv := x.Data[bi*wm.K+k]; xv != 0 {
						w := wm.Words[m*wm.K+k]
						if mem != nil {
							w = mem.FlipWord(m*wm.K+k, w)
						}
						w = fixed.Word((uint32(w) | wOr[idx]) &^ wCl[idx])
						if binary {
							v = w
						} else {
							v = wm.Format.Quantize(float64(xv) * wm.Format.Dequantize(w))
						}
					}
					acc = add(acc, v)
					if or[idx]|cl[idx] != 0 {
						acc = fixed.Word((uint32(acc) | or[idx]) &^ cl[idx])
					}
				}
				total += int64(acc)
			}
			y.Data[bi*wm.M+m] = float32(total) * scale
		}
	}
	return y
}

// TestForwardMatchesScalarReference injects each fault model through its
// FaultModel seam at several rates and asserts the sparse and dense
// planes both reproduce the scalar model bit for bit, across saturating
// and wraparound adders, serial and parallel engines, binary and analog
// inputs, and timesteps before/during/after a transient burst.
func TestForwardMatchesScalarReference(t *testing.T) {
	models := []struct {
		name  string
		model faults.FaultModel
	}{
		{"stuckat", faults.StuckAtModel{Gen: faults.GenSpec{BitMode: faults.RandomBit, PolMode: faults.RandomPol}}},
		{"bitflip", faults.BitFlipModel{Profile: faults.ProfileUniform}},
		{"bitflip-decay", faults.BitFlipModel{Profile: faults.ProfileDecay}},
		{"transient", faults.TransientModel{Gen: faults.GenSpec{BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.RandomPol}, Start: 1, MaxDuration: 2}},
	}
	const rows, cols, b, k, m = 8, 8, 3, 19, 13
	rng := rand.New(rand.NewSource(21))
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.8)
	spikes := randSpikeInput(rng, b, k, 0.5)
	analog := randAnalogInput(rng, b, k)

	for _, mc := range models {
		for _, rate := range []float64{0, 0.1, 0.5} {
			for _, sat := range []bool{true, false} {
				for _, bypass := range []bool{false, true} {
					for _, eng := range []tensor.Backend{tensor.Serial(), tensor.NewParallel(4)} {
						for _, dense := range []bool{false, true} {
							cfg := Config{Rows: rows, Cols: cols, Format: fixed.Q16x16, Saturate: sat, Engine: eng}
							arr, err := New(cfg)
							if err != nil {
								t.Fatal(err)
							}
							if err := mc.model.Inject(arr, rate, 1234); err != nil {
								t.Fatal(err)
							}
							arr.SetBypass(bypass)
							arr.SetDenseReference(dense)
							// The scalar model reads the instance straight off
							// the array's getters — the same structures Inject
							// installed.
							fm, mem, ts := arr.FaultMap(), arr.MemoryFaults(), arr.Transient()
							wm := QuantizeMatrix(w, fixed.Q16x16)
							steps := []int{0}
							if ts != nil {
								steps = []int{0, 1, 2, ts.Horizon() + 1}
							}
							for _, step := range steps {
								arr.SetTimestep(step)
								label := fmt.Sprintf("%s rate=%g sat=%v byp=%v eng=%s dense=%v t=%d",
									mc.name, rate, sat, bypass, eng.Name(), dense, step)
								for _, binary := range []bool{true, false} {
									x := spikes
									if !binary {
										x = analog
									}
									got := arr.Forward(x, wm, binary)
									want := scalarForward(cfg, fm, nil, mem, ts, step, bypass, x, wm, binary)
									for i := range want.Data {
										if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
											t.Fatalf("%s binary=%v: y[%d] = %v, scalar reference %v",
												label, binary, i, got.Data[i], want.Data[i])
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestForwardMatchesScalarReferenceStacked layers all three model
// classes plus weight-register faults on one array — the worst case the
// datapath supports — and checks the scalar model still agrees on both
// planes and at every timestep around the burst.
func TestForwardMatchesScalarReferenceStacked(t *testing.T) {
	const rows, cols, b, k, m = 8, 8, 4, 24, 12
	rng := rand.New(rand.NewSource(31))
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.8)
	wm := QuantizeMatrix(w, fixed.Q16x16)
	spikes := randSpikeInput(rng, b, k, 0.5)

	wfm, err := faults.Generate(rows, cols, faults.GenSpec{
		NumFaulty: 8, BitMode: faults.MSBBits, Pol: faults.StuckAt0,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, sat := range []bool{true, false} {
		for _, bypass := range []bool{false, true} {
			for _, dense := range []bool{false, true} {
				cfg := Config{Rows: rows, Cols: cols, Format: fixed.Q16x16, Saturate: sat, Engine: tensor.Serial()}
				arr, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				stuck := faults.StuckAtModel{Gen: faults.GenSpec{BitMode: faults.RandomBit, PolMode: faults.RandomPol}}
				flip := faults.BitFlipModel{Profile: faults.ProfileDecay}
				trans := faults.TransientModel{Gen: faults.GenSpec{BitMode: faults.MSBBits, Pol: faults.StuckAt1}, Start: 1, MaxDuration: 3}
				for _, inject := range []error{
					stuck.Inject(arr, 0.25, 5),
					flip.Inject(arr, 0.3, 6),
					trans.Inject(arr, 0.25, 7),
					arr.InjectWeightFaults(wfm),
				} {
					if inject != nil {
						t.Fatal(inject)
					}
				}
				arr.SetBypass(bypass)
				arr.SetDenseReference(dense)
				fm, mem, ts := arr.FaultMap(), arr.MemoryFaults(), arr.Transient()
				for step := 0; step <= ts.Horizon()+1; step++ {
					arr.SetTimestep(step)
					got := arr.Forward(spikes, wm, true)
					want := scalarForward(cfg, fm, wfm, mem, ts, step, bypass, spikes, wm, true)
					for i := range want.Data {
						if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
							t.Fatalf("sat=%v byp=%v dense=%v t=%d: y[%d] = %v, scalar reference %v",
								sat, bypass, dense, step, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}
