package systolic

import (
	"math/rand"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/tensor"
)

func TestScheduleSingleTile(t *testing.T) {
	a := MustNew(Config{Rows: 8, Cols: 8, Format: fixed.Q16x16})
	lt, err := a.Schedule(LayerShape{Name: "l", B: 4, K: 8, M: 8, Timesteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lt.KTiles != 1 || lt.MTiles != 1 {
		t.Errorf("tiles = %dx%d, want 1x1", lt.KTiles, lt.MTiles)
	}
	// load(8) + fill(14) + stream(4) = 26 cycles.
	if lt.TotalCycles != 26 {
		t.Errorf("TotalCycles = %d, want 26", lt.TotalCycles)
	}
	if lt.Utilization <= 0 || lt.Utilization > 1 {
		t.Errorf("utilization %v out of (0,1]", lt.Utilization)
	}
}

func TestScheduleTilingMultiplies(t *testing.T) {
	a := MustNew(Config{Rows: 8, Cols: 8, Format: fixed.Q16x16})
	one, err := a.Schedule(LayerShape{Name: "s", B: 4, K: 8, M: 8, Timesteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := a.Schedule(LayerShape{Name: "m", B: 4, K: 16, M: 16, Timesteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if four.TotalCycles != 4*one.TotalCycles {
		t.Errorf("2x2 tiling should cost 4x cycles: %d vs %d", four.TotalCycles, one.TotalCycles)
	}
	// Timesteps multiply linearly too.
	t4, err := a.Schedule(LayerShape{Name: "t", B: 4, K: 8, M: 8, Timesteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if t4.TotalCycles != 4*one.TotalCycles {
		t.Errorf("4 timesteps should cost 4x cycles: %d vs %d", t4.TotalCycles, one.TotalCycles)
	}
}

func TestScheduleValidation(t *testing.T) {
	a := MustNew(Config{Rows: 8, Cols: 8, Format: fixed.Q16x16})
	if _, err := a.Schedule(LayerShape{B: 0, K: 1, M: 1, Timesteps: 1}); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := a.Schedule(LayerShape{B: 1, K: 1, M: 1, Timesteps: 0}); err == nil {
		t.Error("zero timesteps should error")
	}
}

func TestUtilizationImprovesWithBatch(t *testing.T) {
	// Streaming more vectors amortizes fill and weight-load overhead.
	a := MustNew(Config{Rows: 16, Cols: 16, Format: fixed.Q16x16})
	small, _ := a.Schedule(LayerShape{Name: "b1", B: 1, K: 16, M: 16, Timesteps: 1})
	big, _ := a.Schedule(LayerShape{Name: "b64", B: 64, K: 16, M: 16, Timesteps: 1})
	if big.Utilization <= small.Utilization {
		t.Errorf("larger batch should raise utilization: %v vs %v", big.Utilization, small.Utilization)
	}
}

func TestScheduleNetworkAggregates(t *testing.T) {
	a := MustNew(Config{Rows: 8, Cols: 8, Format: fixed.Q16x16})
	layers := []LayerShape{
		{Name: "conv1", B: 16, K: 72, M: 16, Timesteps: 4},
		{Name: "fc", B: 16, K: 64, M: 10, Timesteps: 4},
	}
	it, err := a.ScheduleNetwork(layers)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Layers) != 2 {
		t.Fatalf("layers = %d", len(it.Layers))
	}
	var sum uint64
	for _, l := range it.Layers {
		sum += l.TotalCycles
	}
	if it.TotalCycles != sum {
		t.Errorf("TotalCycles %d != sum %d", it.TotalCycles, sum)
	}
	if it.MeanUtilization <= 0 || it.MeanUtilization > 1 {
		t.Errorf("mean utilization %v", it.MeanUtilization)
	}
	if _, err := a.ScheduleNetwork([]LayerShape{{Name: "bad"}}); err == nil {
		t.Error("invalid layer should propagate error")
	}
}

func TestEnergyComponentsPositive(t *testing.T) {
	a := MustNew(Config{Rows: 8, Cols: 8, Format: fixed.Q16x16})
	fm := faults.NewMap(8, 8)
	_ = fm.Add(faults.StuckAtFault{Row: 1, Col: 1, Bit: 30, Pol: faults.StuckAt1})
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	a.SetBypass(true)

	rng := rand.New(rand.NewSource(1))
	x := tensor.New(8, 16)
	for i := range x.Data {
		if rng.Float64() < 0.5 {
			x.Data[i] = 1
		}
	}
	w := tensor.New(8, 16)
	w.RandNormal(rng, 0.5)
	a.Forward(x, QuantizeMatrix(w, fixed.Q16x16), true)

	it, err := a.ScheduleNetwork([]LayerShape{{Name: "l", B: 8, K: 16, M: 8, Timesteps: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rep := a.Energy(it, DefaultEnergyParams(), 0.5)
	if rep.AccumulatePJ <= 0 || rep.LeakagePJ <= 0 || rep.ClockPJ <= 0 {
		t.Errorf("expected positive energy components: %+v", rep)
	}
	if rep.BypassPJ <= 0 {
		t.Errorf("bypassed steps should cost mux energy: %+v", rep)
	}
	if rep.TotalPJ() <= rep.AccumulatePJ {
		t.Error("total must exceed any single component")
	}
}

func TestReexecutionOverheadDominatesBypass(t *testing.T) {
	lat, en := ReexecutionOverhead()
	if lat < 2 || en < 2 {
		t.Errorf("re-execution must at least double latency and energy: %v %v", lat, en)
	}
}
