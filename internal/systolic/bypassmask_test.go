package systolic

import (
	"math/rand"
	"reflect"
	"testing"

	"falvolt/internal/faults"
)

// TestSetBypassMask covers the selective bypass muxes RescueSNN-style
// salvage programs: per-PE selection composes with faults, is inert on
// healthy PEs, matches the global switch when it covers every faulty
// PE, and cannot leak across ClearFaults.
func TestSetBypassMask(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := a.Dims()

	if err := a.SetBypassMask(make([]bool, 3)); err == nil {
		t.Error("wrong-length mask should error")
	}

	fm := faults.NewMap(rows, cols)
	for _, f := range []faults.StuckAtFault{
		{Row: 0, Col: 1, Bit: 30, Pol: faults.StuckAt1},
		{Row: 2, Col: 3, Bit: 30, Pol: faults.StuckAt1},
	} {
		if err := fm.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	if got := a.BypassedPEs(); got != 0 {
		t.Fatalf("no mask, no switch: %d PEs bypassed", got)
	}

	// Selecting one faulty PE bypasses exactly it; healthy entries are
	// inert.
	mask := make([]bool, rows*cols)
	mask[0*cols+1] = true // faulty
	mask[5*cols+5] = true // healthy: a bypass mux only routes around its own PE
	if err := a.SetBypassMask(mask); err != nil {
		t.Fatal(err)
	}
	if got := a.BypassedPEs(); got != 1 {
		t.Fatalf("selective mask bypassed %d PEs, want 1", got)
	}

	// A mask covering every faulty PE reproduces the global switch
	// bit-for-bit on a real workload.
	rng := rand.New(rand.NewSource(3))
	x := randSpikes(rng, 4, rows, 0.5)
	w := randMat(rng, cols, rows)
	wm := QuantizeMatrix(w, a.Config().Format)

	mask[0*cols+1] = true
	mask[2*cols+3] = true
	if err := a.SetBypassMask(mask); err != nil {
		t.Fatal(err)
	}
	if got := a.BypassedPEs(); got != 2 {
		t.Fatalf("full mask bypassed %d PEs, want 2", got)
	}
	yMask := a.Forward(x, wm, true)

	if err := a.SetBypassMask(nil); err != nil {
		t.Fatal(err)
	}
	a.SetBypass(true)
	yGlobal := a.Forward(x, wm, true)
	a.SetBypass(false)
	if !reflect.DeepEqual(yMask.Data, yGlobal.Data) {
		t.Fatal("selective mask over all faulty PEs differs from the global bypass switch")
	}

	// ClearFaults drops the mask: a reinjection starts unbypassed.
	if err := a.SetBypassMask(mask); err != nil {
		t.Fatal(err)
	}
	a.ClearFaults()
	if err := a.InjectFaults(fm); err != nil {
		t.Fatal(err)
	}
	if got := a.BypassedPEs(); got != 0 {
		t.Fatalf("mask leaked across ClearFaults: %d PEs bypassed", got)
	}
}
