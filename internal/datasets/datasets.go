// Package datasets provides synthetic, procedurally generated stand-ins
// for the three datasets the paper evaluates on — MNIST, N-MNIST and
// DVS128 Gesture — since the environment is offline (see DESIGN.md §3 for
// the substitution rationale). Each generator is deterministic under a
// seed and produces falvolt/internal/snn.Sample values directly.
//
//   - SyntheticMNIST: rendered digit glyphs with random shift, intensity
//     and noise — a static image dataset (StaticSequence).
//   - SyntheticNMNIST: the same digits converted to ON/OFF event streams
//     by a simulated three-saccade micro-motion, mirroring how the real
//     N-MNIST was recorded from a moving sensor (EventSequence).
//   - SyntheticDVSGesture: moving-blob event streams in 11 motion classes
//     whose identity is only decodable from the event dynamics, mirroring
//     the role of DVS128 Gesture (EventSequence).
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"falvolt/internal/snn"
	"falvolt/internal/tensor"
)

// Config controls dataset generation.
type Config struct {
	// Train and Test are the number of samples per split.
	Train, Test int
	// H, W is the frame extent. MNIST-family generators require ≥ 14;
	// the gesture generator requires ≥ 16.
	H, W int
	// T is the number of event frames for neuromorphic sequences.
	T int
	// Seed makes generation reproducible; train and test splits use
	// derived, disjoint streams.
	Seed int64
	// NoiseStd is the pixel noise for static images (default 0.08) and
	// the spurious-event probability for event streams (scaled by 0.05).
	NoiseStd float64
}

// Dataset is a generated split pair.
type Dataset struct {
	Train, Test []snn.Sample
	Classes     int
	Name        string
}

func (c *Config) defaults(minHW int) error {
	if c.Train <= 0 || c.Test <= 0 {
		return fmt.Errorf("datasets: train/test sizes must be positive (%d/%d)", c.Train, c.Test)
	}
	if c.H == 0 {
		c.H = 16
	}
	if c.W == 0 {
		c.W = 16
	}
	if c.H < minHW || c.W < minHW {
		return fmt.Errorf("datasets: frame %dx%d below minimum %d", c.H, c.W, minHW)
	}
	if c.T == 0 {
		c.T = 8
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.08
	}
	return nil
}

// clamp01 clips to the unit interval.
func clamp01(v float64) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return float32(v)
}

// gauss2d renders an isotropic Gaussian blob of the given sigma centred at
// (cy, cx) into frame (h, w), additively.
func gauss2d(frame []float32, h, w int, cy, cx, sigma, amp float64) {
	r := int(3*sigma) + 1
	y0, y1 := int(cy)-r, int(cy)+r
	x0, x1 := int(cx)-r, int(cx)+r
	inv := 1 / (2 * sigma * sigma)
	for y := y0; y <= y1; y++ {
		if y < 0 || y >= h {
			continue
		}
		for x := x0; x <= x1; x++ {
			if x < 0 || x >= w {
				continue
			}
			dy, dx := float64(y)-cy, float64(x)-cx
			frame[y*w+x] += float32(amp * math.Exp(-(dy*dy+dx*dx)*inv))
		}
	}
}

// eventsFromFrames converts a sequence of luminance frames into 2-channel
// (ON/OFF) binary event frames by thresholded temporal differencing — the
// operating principle of a dynamic vision sensor.
func eventsFromFrames(frames [][]float32, h, w int, threshold float64, noiseP float64, rng *rand.Rand) []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, len(frames)-1)
	for t := 1; t < len(frames); t++ {
		ev := tensor.New(1, 2, h, w)
		on := ev.Data[:h*w]
		off := ev.Data[h*w : 2*h*w]
		for i := 0; i < h*w; i++ {
			d := float64(frames[t][i] - frames[t-1][i])
			switch {
			case d > threshold:
				on[i] = 1
			case d < -threshold:
				off[i] = 1
			}
			if noiseP > 0 && rng.Float64() < noiseP {
				if rng.Intn(2) == 0 {
					on[i] = 1
				} else {
					off[i] = 1
				}
			}
		}
		out = append(out, ev)
	}
	return out
}
