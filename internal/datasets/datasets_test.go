package datasets

import (
	"testing"

	"falvolt/internal/snn"
)

func TestSyntheticMNISTShapes(t *testing.T) {
	ds, err := SyntheticMNIST(Config{Train: 40, Test: 20, H: 16, W: 16, T: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 40 || len(ds.Test) != 20 {
		t.Fatalf("split sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	if ds.Classes != 10 {
		t.Errorf("classes = %d", ds.Classes)
	}
	s := ds.Train[0]
	x := s.Seq.At(0)
	if x.Rank() != 4 || x.Shape[1] != 1 || x.Shape[2] != 16 || x.Shape[3] != 16 {
		t.Errorf("frame shape %v", x.Shape)
	}
	// Static: same frame at every timestep.
	if s.Seq.At(0) != s.Seq.At(3) {
		t.Error("static sequence should reuse one frame")
	}
	for _, v := range x.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
}

func TestSyntheticMNISTClassBalanceAndVariation(t *testing.T) {
	ds, err := SyntheticMNIST(Config{Train: 100, Test: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, s := range ds.Train {
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d count %d, want 10 (balanced)", c, n)
		}
	}
	// Two samples of the same class must differ (augmentation).
	var a, b []float32
	for _, s := range ds.Train {
		if s.Label == 3 {
			if a == nil {
				a = s.Seq.At(0).Data
			} else {
				b = s.Seq.At(0).Data
				break
			}
		}
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("augmentation produced identical samples")
	}
}

func TestSyntheticMNISTDeterministic(t *testing.T) {
	a, _ := SyntheticMNIST(Config{Train: 10, Test: 5, Seed: 3})
	b, _ := SyntheticMNIST(Config{Train: 10, Test: 5, Seed: 3})
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("same seed produced different labels")
		}
		xa, xb := a.Train[i].Seq.At(0), b.Train[i].Seq.At(0)
		for j := range xa.Data {
			if xa.Data[j] != xb.Data[j] {
				t.Fatal("same seed produced different pixels")
			}
		}
	}
}

func TestSyntheticNMNISTEvents(t *testing.T) {
	ds, err := SyntheticNMNIST(Config{Train: 20, Test: 10, H: 16, W: 16, T: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Train[0]
	seq, ok := s.Seq.(snn.EventSequence)
	if !ok {
		t.Fatal("N-MNIST samples must be EventSequence")
	}
	if seq.Steps() != 6 {
		t.Errorf("steps = %d, want 6", seq.Steps())
	}
	totalEvents := 0.0
	for t2 := 0; t2 < seq.Steps(); t2++ {
		f := seq.At(t2)
		if f.Shape[1] != 2 {
			t.Fatalf("event frame needs 2 polarity channels, got %v", f.Shape)
		}
		for _, v := range f.Data {
			if v != 0 && v != 1 {
				t.Fatalf("event value %v not binary", v)
			}
			totalEvents += float64(v)
		}
	}
	if totalEvents == 0 {
		t.Error("saccade conversion emitted no events")
	}
}

func TestSyntheticDVSGesture(t *testing.T) {
	ds, err := SyntheticDVSGesture(Config{Train: 22, Test: 11, T: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 11 {
		t.Errorf("classes = %d, want 11", ds.Classes)
	}
	seen := make(map[int]bool)
	for _, s := range ds.Train {
		seen[s.Label] = true
		seq := s.Seq.(snn.EventSequence)
		f := seq.At(0)
		if f.Shape[1] != 2 || f.Shape[2] != 32 || f.Shape[3] != 32 {
			t.Fatalf("gesture frame shape %v", f.Shape)
		}
	}
	if len(seen) != 11 {
		t.Errorf("train split covers %d classes, want 11", len(seen))
	}
}

func TestGestureClassesAreDistinguishableByMotion(t *testing.T) {
	// Clockwise vs counter-clockwise circles share every static frame
	// statistic; verify their event streams differ substantially.
	ds, err := SyntheticDVSGesture(Config{Train: 44, Test: 11, T: 8, Seed: 6, NoiseStd: 0})
	if err != nil {
		t.Fatal(err)
	}
	var cw, ccw snn.Sample
	var haveCW, haveCCW bool
	for _, s := range ds.Train {
		if s.Label == 3 && !haveCW {
			cw, haveCW = s, true
		}
		if s.Label == 4 && !haveCCW {
			ccw, haveCCW = s, true
		}
	}
	if !haveCW || !haveCCW {
		t.Fatal("missing circle classes")
	}
	var diff float64
	for t2 := 0; t2 < 8; t2++ {
		a, b := cw.Seq.At(t2), ccw.Seq.At(t2)
		for i := range a.Data {
			diff += float64((a.Data[i] - b.Data[i]) * (a.Data[i] - b.Data[i]))
		}
	}
	if diff < 10 {
		t.Errorf("cw/ccw event streams nearly identical (dist² %v)", diff)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := SyntheticMNIST(Config{Train: 0, Test: 5}); err == nil {
		t.Error("zero train size should error")
	}
	if _, err := SyntheticMNIST(Config{Train: 5, Test: 5, H: 8, W: 8}); err == nil {
		t.Error("frame below minimum should error")
	}
	if _, err := SyntheticDVSGesture(Config{Train: 5, Test: 5, H: 8, W: 8}); err == nil {
		t.Error("gesture frame below minimum should error")
	}
}

func TestSaccadePathClosed(t *testing.T) {
	p := saccadePath(9)
	if p[0] != p[len(p)-1] {
		t.Errorf("saccade path should return to origin: %v vs %v", p[0], p[len(p)-1])
	}
}

func TestShiftFrameIdentity(t *testing.T) {
	src := make([]float32, 16)
	src[5] = 1
	dst := shiftFrame(src, 4, 4, 0, 0)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("zero shift changed frame at %d", i)
		}
	}
	// Integer shift moves the pixel exactly.
	dst = shiftFrame(src, 4, 4, 1, 0)
	if dst[9] != 1 || dst[5] != 0 {
		t.Errorf("shift by (1,0) wrong: %v", dst)
	}
}
