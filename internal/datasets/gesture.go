package datasets

import (
	"math"
	"math/rand"

	"falvolt/internal/snn"
)

// GestureClasses names the 11 motion classes, mirroring the 11 gestures of
// DVS128 Gesture. Each class is a distinct limb-motion pattern whose
// identity is only recoverable from the event dynamics, not from any
// single frame.
var GestureClasses = []string{
	"hand_clap",
	"rh_wave",
	"lh_wave",
	"rh_clockwise",
	"rh_counter_clockwise",
	"lh_clockwise",
	"lh_counter_clockwise",
	"arm_roll",
	"air_drums",
	"air_guitar",
	"other",
}

// blobTrack returns the centre positions over time of the moving blobs for
// one gesture class. Positions are in unit coordinates [0,1]²; phase and
// speed jitter provide intra-class variation.
func blobTrack(class, t, steps int, phase, speed float64) [][2]float64 {
	// Normalized time in [0, 1), scaled by per-sample speed.
	f := (float64(t)/float64(steps))*speed + phase
	w := 2 * math.Pi * f
	switch class {
	case 0: // hand_clap: two blobs approach and separate horizontally
		d := 0.18 + 0.14*math.Abs(math.Sin(w))
		return [][2]float64{{0.5, 0.5 - d}, {0.5, 0.5 + d}}
	case 1: // rh_wave: right-side blob sweeps left-right
		return [][2]float64{{0.45, 0.7 + 0.18*math.Sin(w)}}
	case 2: // lh_wave: left-side blob sweeps left-right
		return [][2]float64{{0.45, 0.3 + 0.18*math.Sin(w)}}
	case 3: // rh_clockwise: right blob circles clockwise
		return [][2]float64{{0.5 + 0.2*math.Sin(w), 0.68 + 0.2*math.Cos(w)}}
	case 4: // rh_counter_clockwise
		return [][2]float64{{0.5 + 0.2*math.Sin(-w), 0.68 + 0.2*math.Cos(-w)}}
	case 5: // lh_clockwise
		return [][2]float64{{0.5 + 0.2*math.Sin(w), 0.32 + 0.2*math.Cos(w)}}
	case 6: // lh_counter_clockwise
		return [][2]float64{{0.5 + 0.2*math.Sin(-w), 0.32 + 0.2*math.Cos(-w)}}
	case 7: // arm_roll: two blobs orbit a common centre in antiphase
		return [][2]float64{
			{0.5 + 0.16*math.Sin(w), 0.5 + 0.16*math.Cos(w)},
			{0.5 - 0.16*math.Sin(w), 0.5 - 0.16*math.Cos(w)},
		}
	case 8: // air_drums: two blobs bounce vertically in antiphase
		return [][2]float64{
			{0.45 + 0.18*math.Abs(math.Sin(w)), 0.35},
			{0.45 + 0.18*math.Abs(math.Cos(w)), 0.65},
		}
	case 9: // air_guitar: one blob strums a diagonal
		return [][2]float64{{0.5 + 0.15*math.Sin(w), 0.5 + 0.22*math.Sin(w+0.8)}}
	default: // other: slow drift along a Lissajous curve
		return [][2]float64{{0.5 + 0.22*math.Sin(0.7*w), 0.5 + 0.22*math.Sin(1.3*w+1.1)}}
	}
}

// SyntheticDVSGesture generates the 11-class moving-blob event dataset:
// EventSequence samples of T frames shaped [1, 2, H, W].
func SyntheticDVSGesture(cfg Config) (*Dataset, error) {
	if cfg.H == 0 {
		cfg.H = 32
	}
	if cfg.W == 0 {
		cfg.W = 32
	}
	if err := cfg.defaults(16); err != nil {
		return nil, err
	}
	classes := len(GestureClasses)
	gen := func(n int, rng *rand.Rand) []snn.Sample {
		out := make([]snn.Sample, n)
		for i := range out {
			class := i % classes
			phase := rng.Float64()
			speed := 0.8 + rng.Float64()*0.6
			sigma := 1.2 + rng.Float64()*0.6
			frames := make([][]float32, cfg.T+1)
			for t := 0; t <= cfg.T; t++ {
				frame := make([]float32, cfg.H*cfg.W)
				for _, p := range blobTrack(class, t, cfg.T, phase, speed) {
					gauss2d(frame, cfg.H, cfg.W, p[0]*float64(cfg.H), p[1]*float64(cfg.W), sigma, 1.0)
				}
				frames[t] = frame
			}
			evs := eventsFromFrames(frames, cfg.H, cfg.W, 0.08, cfg.NoiseStd*0.05, rng)
			out[i] = snn.Sample{Seq: snn.EventSequence{Frames: evs}, Label: class}
		}
		rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
		return out
	}
	return &Dataset{
		Train:   gen(cfg.Train, rand.New(rand.NewSource(cfg.Seed))),
		Test:    gen(cfg.Test, rand.New(rand.NewSource(cfg.Seed+1))),
		Classes: classes,
		Name:    "synthetic-dvsgesture",
	}, nil
}
