package datasets

import (
	"math/rand"

	"falvolt/internal/snn"
	"falvolt/internal/tensor"
)

// digitGlyphs are 8x10 bitmap prototypes of the ten digits; augmentation
// (shift, intensity, thickness, noise) turns them into a classification
// task with intra-class variation, standing in for MNIST.
var digitGlyphs = [10][]string{
	{ // 0
		"..####..",
		".#....#.",
		"#......#",
		"#......#",
		"#......#",
		"#......#",
		"#......#",
		"#......#",
		".#....#.",
		"..####..",
	},
	{ // 1
		"...#....",
		"..##....",
		".#.#....",
		"...#....",
		"...#....",
		"...#....",
		"...#....",
		"...#....",
		"...#....",
		".######.",
	},
	{ // 2
		"..####..",
		".#....#.",
		"......#.",
		"......#.",
		".....#..",
		"....#...",
		"...#....",
		"..#.....",
		".#......",
		".######.",
	},
	{ // 3
		"..####..",
		".#....#.",
		"......#.",
		"......#.",
		"...###..",
		"......#.",
		"......#.",
		"......#.",
		".#....#.",
		"..####..",
	},
	{ // 4
		".....#..",
		"....##..",
		"...#.#..",
		"..#..#..",
		".#...#..",
		"#....#..",
		"########",
		".....#..",
		".....#..",
		".....#..",
	},
	{ // 5
		".######.",
		".#......",
		".#......",
		".#......",
		".#####..",
		"......#.",
		"......#.",
		"......#.",
		".#....#.",
		"..####..",
	},
	{ // 6
		"..####..",
		".#....#.",
		".#......",
		".#......",
		".#####..",
		".#....#.",
		".#....#.",
		".#....#.",
		".#....#.",
		"..####..",
	},
	{ // 7
		".######.",
		"......#.",
		"......#.",
		".....#..",
		".....#..",
		"....#...",
		"....#...",
		"...#....",
		"...#....",
		"...#....",
	},
	{ // 8
		"..####..",
		".#....#.",
		".#....#.",
		".#....#.",
		"..####..",
		".#....#.",
		".#....#.",
		".#....#.",
		".#....#.",
		"..####..",
	},
	{ // 9
		"..####..",
		".#....#.",
		".#....#.",
		".#....#.",
		"..#####.",
		"......#.",
		"......#.",
		"......#.",
		".#....#.",
		"..####..",
	},
}

const (
	glyphW = 8
	glyphH = 10
)

// renderDigit draws an augmented digit into an h x w luminance frame:
// random placement (±2 px), per-sample stroke intensity, optional
// 1-px dilation ("thickness"), and Gaussian pixel noise.
func renderDigit(class, h, w int, noiseStd float64, rng *rand.Rand) []float32 {
	frame := make([]float32, h*w)
	offY := (h-glyphH)/2 + rng.Intn(5) - 2
	offX := (w-glyphW)/2 + rng.Intn(5) - 2
	amp := 0.7 + rng.Float64()*0.3
	thick := rng.Float64() < 0.35

	put := func(y, x int, v float64) {
		if y >= 0 && y < h && x >= 0 && x < w {
			if f := float32(v); f > frame[y*w+x] {
				frame[y*w+x] = f
			}
		}
	}
	for gy, row := range digitGlyphs[class] {
		for gx := 0; gx < glyphW && gx < len(row); gx++ {
			if row[gx] != '#' {
				continue
			}
			y, x := offY+gy, offX+gx
			put(y, x, amp)
			if thick {
				put(y, x+1, amp*0.8)
			}
		}
	}
	if noiseStd > 0 {
		for i := range frame {
			frame[i] = clamp01(float64(frame[i]) + rng.NormFloat64()*noiseStd)
		}
	}
	return frame
}

// SyntheticMNIST generates the static digit dataset. Samples are
// StaticSequence frames of shape [1, 1, H, W] presented for T timesteps
// (the network's spike encoder converts them to spikes, as in the paper).
func SyntheticMNIST(cfg Config) (*Dataset, error) {
	if err := cfg.defaults(14); err != nil {
		return nil, err
	}
	gen := func(n int, rng *rand.Rand) []snn.Sample {
		out := make([]snn.Sample, n)
		for i := range out {
			class := i % 10
			frame := renderDigit(class, cfg.H, cfg.W, cfg.NoiseStd, rng)
			x := tensor.FromSlice(frame, 1, 1, cfg.H, cfg.W)
			out[i] = snn.Sample{Seq: snn.StaticSequence{X: x, T: cfg.T}, Label: class}
		}
		rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
		return out
	}
	return &Dataset{
		Train:   gen(cfg.Train, rand.New(rand.NewSource(cfg.Seed))),
		Test:    gen(cfg.Test, rand.New(rand.NewSource(cfg.Seed+1))),
		Classes: 10,
		Name:    "synthetic-mnist",
	}, nil
}

// saccadePath is the three-saccade camera motion used by the N-MNIST
// conversion: the sensor sweeps along a triangle, so every edge of the
// static digit emits ON/OFF events as it moves across pixels.
func saccadePath(steps int) [][2]float64 {
	// Triangle vertices (in pixels of displacement).
	verts := [][2]float64{{0, 0}, {2.5, 1.5}, {0, 3}, {0, 0}}
	path := make([][2]float64, steps+1)
	for i := 0; i <= steps; i++ {
		// Position along the closed triangle, linear in arc index.
		f := float64(i) / float64(steps) * 3
		seg := int(f)
		if seg > 2 {
			seg = 2
		}
		frac := f - float64(seg)
		a, b := verts[seg], verts[seg+1]
		path[i] = [2]float64{a[0] + (b[0]-a[0])*frac, a[1] + (b[1]-a[1])*frac}
	}
	return path
}

// shiftFrame resamples a frame displaced by (dy, dx) with bilinear
// interpolation (zero outside).
func shiftFrame(src []float32, h, w int, dy, dx float64) []float32 {
	dst := make([]float32, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sy, sx := float64(y)-dy, float64(x)-dx
			y0, x0 := int(sy), int(sx)
			if sy < 0 {
				y0--
			}
			if sx < 0 {
				x0--
			}
			fy, fx := sy-float64(y0), sx-float64(x0)
			var v float64
			for _, p := range [4][3]float64{
				{float64(y0), float64(x0), (1 - fy) * (1 - fx)},
				{float64(y0), float64(x0 + 1), (1 - fy) * fx},
				{float64(y0 + 1), float64(x0), fy * (1 - fx)},
				{float64(y0 + 1), float64(x0 + 1), fy * fx},
			} {
				yy, xx := int(p[0]), int(p[1])
				if yy >= 0 && yy < h && xx >= 0 && xx < w {
					v += p[2] * float64(src[yy*w+xx])
				}
			}
			dst[y*w+x] = float32(v)
		}
	}
	return dst
}

// SyntheticNMNIST generates the saccade-converted event digit dataset:
// EventSequence samples of T frames shaped [1, 2, H, W] (ON/OFF polarity).
func SyntheticNMNIST(cfg Config) (*Dataset, error) {
	if err := cfg.defaults(14); err != nil {
		return nil, err
	}
	gen := func(n int, rng *rand.Rand) []snn.Sample {
		out := make([]snn.Sample, n)
		for i := range out {
			class := i % 10
			static := renderDigit(class, cfg.H, cfg.W, cfg.NoiseStd*0.5, rng)
			path := saccadePath(cfg.T)
			frames := make([][]float32, cfg.T+1)
			for t := 0; t <= cfg.T; t++ {
				frames[t] = shiftFrame(static, cfg.H, cfg.W, path[t][0], path[t][1])
			}
			evs := eventsFromFrames(frames, cfg.H, cfg.W, 0.12, cfg.NoiseStd*0.05, rng)
			out[i] = snn.Sample{Seq: snn.EventSequence{Frames: evs}, Label: class}
		}
		rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
		return out
	}
	return &Dataset{
		Train:   gen(cfg.Train, rand.New(rand.NewSource(cfg.Seed))),
		Test:    gen(cfg.Test, rand.New(rand.NewSource(cfg.Seed+1))),
		Classes: 10,
		Name:    "synthetic-nmnist",
	}, nil
}
