// Package experiments reproduces every figure of the paper's evaluation:
// the motivational fixed-threshold sweeps (Fig. 2), the stuck-at fault
// vulnerability analysis (Fig. 5a–c), the optimized per-layer threshold
// voltages (Fig. 6), the mitigation comparison (Fig. 7) and the
// convergence curves (Fig. 8). Each harness produces a Figure value whose
// Print output is the table of series behind the corresponding plot.
//
// The Suite lazily trains one baseline PLIF-SNN per dataset (synthetic
// MNIST, N-MNIST, DVS Gesture — see internal/datasets) and snapshots it so
// every experiment starts from the same fault-free weights, mirroring the
// paper's tool flow (Fig. 4).
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// Options scales the experiment suite.
type Options struct {
	// Quick selects reduced model/dataset sizes that run in minutes on a
	// laptop; the default (false) uses the larger configuration.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// ArrayRows/Cols give the accelerator grid. The default 64x64 is the
	// "paper-proportional" array for the scaled-down models: like the
	// paper's 256x256 under its full-size networks, every row and column
	// is exercised by at least one layer (see DESIGN.md).
	ArrayRows, ArrayCols int
	// CacheDir, when set, persists trained baselines between runs.
	CacheDir string
	// Log receives progress lines (nil silences).
	Log io.Writer
	// Repeats is the number of distinct fault maps averaged per
	// vulnerability point (paper: 8). Quick default: 3.
	Repeats int
	// RetrainEpochs is the mitigation retraining budget (Fig. 6–8).
	RetrainEpochs int
	// EvalSamples caps how many test samples deployed-array evaluations
	// use (0 = all).
	EvalSamples int
	// TrainReplicas and TrainMicroBatch configure the data-parallel
	// replica training engine for baseline training and mitigation
	// retraining (see snn.TrainConfig; every configuration runs that
	// engine — zero means one lane). Replica count never changes
	// results, only wall-clock; the micro-batch size changes the
	// loss-averaging partition and therefore results.
	TrainReplicas   int
	TrainMicroBatch int
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options {
	return Options{
		Seed: 7, ArrayRows: 64, ArrayCols: 64,
		Repeats: 8, RetrainEpochs: 20,
	}
}

// QuickOptions returns the reduced configuration used by tests and benches.
func QuickOptions() Options {
	return Options{
		Quick: true, Seed: 7, ArrayRows: 64, ArrayCols: 64,
		Repeats: 3, RetrainEpochs: 6, EvalSamples: 64,
	}
}

// Baseline is a trained fault-free model with its snapshot and data.
type Baseline struct {
	Name  string
	Model *snn.Model
	State *snn.NetworkState
	Data  *datasets.Dataset
	Acc   float64
	// BuildModel constructs a structurally identical fresh model (for
	// parallel workers that need private copies).
	BuildModel func() (*snn.Model, error)
}

// Suite owns lazily trained baselines and experiment-wide configuration.
type Suite struct {
	Opt Options

	mu        sync.Mutex
	baselines map[string]*Baseline

	// Cached Fig. 6/7/8 results (one shared computation).
	mitOnce sync.Once
	mitRes  *mitigationResults
	mitErr  error
}

// NewSuite builds a suite; zero-valued options are filled from defaults.
func NewSuite(opt Options) *Suite {
	def := DefaultOptions()
	if opt.ArrayRows == 0 {
		opt.ArrayRows = def.ArrayRows
	}
	if opt.ArrayCols == 0 {
		opt.ArrayCols = def.ArrayCols
	}
	if opt.Repeats == 0 {
		opt.Repeats = def.Repeats
	}
	if opt.RetrainEpochs == 0 {
		opt.RetrainEpochs = def.RetrainEpochs
	}
	if opt.Seed == 0 {
		opt.Seed = def.Seed
	}
	return &Suite{Opt: opt, baselines: make(map[string]*Baseline)}
}

func (s *Suite) logf(format string, args ...any) {
	if s.Opt.Log != nil {
		fmt.Fprintf(s.Opt.Log, format, args...)
	}
}

// NewArray constructs the suite's accelerator.
func (s *Suite) NewArray() *systolic.Array {
	return systolic.MustNew(systolic.Config{
		Rows: s.Opt.ArrayRows, Cols: s.Opt.ArrayCols,
		Format: fixed.Q16x16, Saturate: true,
	})
}

// datasetPlan bundles the generation and model parameters of one dataset.
type datasetPlan struct {
	name       string
	spec       snn.ModelSpec
	data       datasets.Config
	epochs     int
	lr         float64
	genData    func(datasets.Config) (*datasets.Dataset, error)
	quickSpec  func(*snn.ModelSpec)
	quickData  func(*datasets.Config)
	quickEpoch int
}

func (s *Suite) plans() []datasetPlan {
	return []datasetPlan{
		{
			name:   "MNIST",
			spec:   snn.MNISTSpec(),
			data:   datasets.Config{Train: 640, Test: 256, T: 4, Seed: s.Opt.Seed},
			epochs: 20, lr: 0.02,
			genData: datasets.SyntheticMNIST,
			quickSpec: func(m *snn.ModelSpec) {
				m.EncoderC, m.BlockC, m.FCHidden = 4, []int{8, 8}, 32
			},
			quickData:  func(c *datasets.Config) { c.Train, c.Test = 320, 128 },
			quickEpoch: 12,
		},
		{
			name:   "N-MNIST",
			spec:   snn.NMNISTSpec(),
			data:   datasets.Config{Train: 640, Test: 256, T: 8, Seed: s.Opt.Seed + 1},
			epochs: 20, lr: 0.02,
			genData: datasets.SyntheticNMNIST,
			quickSpec: func(m *snn.ModelSpec) {
				m.EncoderC, m.BlockC, m.FCHidden = 4, []int{8, 8}, 32
				m.T = 5
			},
			quickData:  func(c *datasets.Config) { c.Train, c.Test, c.T = 320, 128, 5 },
			quickEpoch: 12,
		},
		{
			name:   "DVSGesture",
			spec:   snn.DVSGestureSpec(),
			data:   datasets.Config{Train: 440, Test: 176, H: 32, W: 32, T: 8, Seed: s.Opt.Seed + 2},
			epochs: 30, lr: 0.02,
			genData: datasets.SyntheticDVSGesture,
			quickSpec: func(m *snn.ModelSpec) {
				// Quick mode shrinks the gesture pipeline to 16x16 input
				// with three conv blocks (full mode keeps the paper's five).
				m.InH, m.InW = 16, 16
				m.EncoderC, m.BlockC, m.FCHidden = 4, []int{8, 8, 16}, 32
				m.T = 6
			},
			quickData: func(c *datasets.Config) {
				c.H, c.W = 16, 16
				c.Train, c.Test, c.T = 220, 88, 6
			},
			quickEpoch: 16,
		},
	}
}

// Dataset returns the trained baseline for name ("MNIST", "N-MNIST",
// "DVSGesture"), training (or loading from cache) on first use.
func (s *Suite) Dataset(name string) (*Baseline, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.baselines[name]; ok {
		return b, nil
	}
	for _, p := range s.plans() {
		if p.name == name {
			b, err := s.trainBaseline(p)
			if err != nil {
				return nil, err
			}
			s.baselines[name] = b
			return b, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown dataset %q", name)
}

// AllDatasets returns all three baselines, training as needed.
func (s *Suite) AllDatasets() ([]*Baseline, error) {
	var out []*Baseline
	for _, p := range s.plans() {
		b, err := s.Dataset(p.name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func (s *Suite) trainBaseline(p datasetPlan) (*Baseline, error) {
	spec, dcfg, epochs := p.spec, p.data, p.epochs
	if s.Opt.Quick {
		p.quickSpec(&spec)
		p.quickData(&dcfg)
		epochs = p.quickEpoch
	}
	ds, err := p.genData(dcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", p.name, err)
	}
	buildModel := func() (*snn.Model, error) {
		return snn.Build(spec, rand.New(rand.NewSource(s.Opt.Seed+99)))
	}
	model, err := buildModel()
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", p.name, err)
	}

	b := &Baseline{Name: p.name, Model: model, Data: ds, BuildModel: buildModel}

	if path := s.cachePath(p.name); path != "" {
		if st, err := snn.LoadStateFile(path); err == nil {
			if err := model.Net.LoadState(st); err == nil {
				b.State = st
				b.Acc = snn.Evaluate(model.Net, ds.Test, 32)
				s.logf("loaded cached %s baseline (acc %.3f)\n", p.name, b.Acc)
				return b, nil
			}
		}
	}

	s.logf("training %s baseline (%d samples, %d epochs)...\n", p.name, len(ds.Train), epochs)
	start := time.Now()
	acc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
		Epochs: epochs, LR: p.lr, Rng: rand.New(rand.NewSource(s.Opt.Seed + 7)),
		Replicas: s.Opt.TrainReplicas, MicroBatch: s.Opt.TrainMicroBatch,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: train %s: %w", p.name, err)
	}
	b.Acc = acc
	b.State = model.Net.State()
	s.logf("%s baseline accuracy %.3f (%.1fs)\n", p.name, acc, time.Since(start).Seconds())
	if path := s.cachePath(p.name); path != "" {
		if err := snn.SaveStateFile(b.State, path); err != nil {
			s.logf("warning: cache write failed: %v\n", err)
		}
	}
	return b, nil
}

func (s *Suite) cachePath(name string) string {
	if s.Opt.CacheDir == "" {
		return ""
	}
	if err := os.MkdirAll(s.Opt.CacheDir, 0o755); err != nil {
		return ""
	}
	mode := "full"
	if s.Opt.Quick {
		mode = "quick"
	}
	// The filename keys every result-affecting training knob: the
	// micro-batch partition changes trained weights, so variants must
	// not share a cached baseline (TrainReplicas is execution-only and
	// rightly absent). The "t2" revision marks the unified replica
	// trainer — dropout masks now derive from the training rng instead
	// of the layers' own streams, so baselines cached by the pre-t2
	// serial loop are not comparable and must retrain.
	mb := ""
	if s.Opt.TrainMicroBatch > 0 {
		mb = fmt.Sprintf("-mb%d", s.Opt.TrainMicroBatch)
	}
	return filepath.Join(s.Opt.CacheDir, fmt.Sprintf("%s-%s-seed%d%s-t2.gob", name, mode, s.Opt.Seed, mb))
}

// Restore loads the baseline snapshot back into the model and removes any
// deployment, returning the model ready for a fresh experiment.
func (b *Baseline) Restore() error {
	b.Model.Net.Undeploy()
	return b.Model.Net.LoadState(b.State)
}

// TestSlice returns up to n test samples (all if n <= 0).
func (b *Baseline) TestSlice(n int) []snn.Sample {
	if n <= 0 || n >= len(b.Data.Test) {
		return b.Data.Test
	}
	return b.Data.Test[:n]
}
