package experiments

import (
	"fmt"
	"math/rand"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// Ablations of the design choices called out in DESIGN.md §5. Each runs a
// small controlled comparison on the MNIST pipeline and reports accuracy;
// none is a paper figure, but together they justify the defaults.

// ablationScale bundles the reduced training setup ablations share.
type ablationScale struct {
	train, test int
	epochs      int
	t           int
}

func (s *Suite) ablationScale() ablationScale {
	if s.Opt.Quick {
		return ablationScale{train: 200, test: 96, epochs: 8, t: 4}
	}
	return ablationScale{train: 480, test: 192, epochs: 14, t: 4}
}

func (s *Suite) ablationSpec() snn.ModelSpec {
	spec := snn.MNISTSpec()
	spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8}, 32
	return spec
}

// AblationSurrogateWidth compares training with the paper's exact width-1
// triangular surrogate against the default width-2 (which keeps the
// resting state inside the gradient support).
func (s *Suite) AblationSurrogateWidth() (*Figure, error) {
	sc := s.ablationScale()
	ds, err := datasets.SyntheticMNIST(datasets.Config{
		Train: sc.train, Test: sc.test, T: sc.t, Seed: s.Opt.Seed + 50,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Ablation-SurrogateWidth", Title: "Triangular surrogate support width",
		XLabel: "width", YLabel: "accuracy",
		Notes: []string{"same data, init and epochs; width 1 is the paper's exact eq. (2)"},
	}
	widths := []float64{1.0, 1.5, 2.0, 3.0}
	accs, err := runLocal("ablation-surrogate-width", len(widths), func(i int) (float64, error) {
		spec := s.ablationSpec()
		spec.Neuron.Width = widths[i]
		model, err := snn.Build(spec, rand.New(rand.NewSource(s.Opt.Seed+60)))
		if err != nil {
			return 0, err
		}
		acc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
			Epochs: sc.epochs, LR: 0.02, Rng: rand.New(rand.NewSource(s.Opt.Seed + 61)),
			Replicas: s.Opt.TrainReplicas, MicroBatch: s.Opt.TrainMicroBatch,
		})
		if err != nil {
			return 0, err
		}
		s.logf("ablation width %.1f: %.3f\n", widths[i], acc)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{Label: "accuracy", X: widths, Y: accs})
	return fig, nil
}

// AblationVthGradientForm compares FalVolt retraining with the exact
// autodiff threshold gradient against the paper's closed-form eq. (4).
func (s *Suite) AblationVthGradientForm() (*Figure, error) {
	bl, err := s.Dataset("MNIST")
	if err != nil {
		return nil, err
	}
	fm, err := s.mitigationFaultMap(0, 0.30)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Ablation-VthGrad", Title: "Threshold-voltage gradient form (FalVolt, 30% faults)",
		XLabel: "form", YLabel: "accuracy",
		XTicks: []string{"exact-autodiff", "paper-eq4"},
	}
	forms := []bool{false, true}
	accs, err := runLocal("ablation-vth-grad", len(forms), func(i int) (float64, error) {
		model, err := bl.BuildModel()
		if err != nil {
			return 0, err
		}
		if err := model.Net.LoadState(bl.State); err != nil {
			return 0, err
		}
		for _, node := range model.Net.SpikingLayers() {
			cfg := node.Config()
			cfg.PaperVthGrad = forms[i]
			node.SetConfig(cfg)
		}
		arr := s.NewArray()
		rep, err := core.Mitigate(model, arr, fm, bl.Data.Train, bl.TestSlice(s.Opt.EvalSamples), core.Config{
			Method: core.FalVolt, Epochs: s.Opt.RetrainEpochs, LR: 0.01, BatchSize: 16, ClipNorm: 5,
			Rng: rand.New(rand.NewSource(s.Opt.Seed + 70)),
		})
		if err != nil {
			return 0, err
		}
		s.logf("ablation vth-grad paperForm=%v: %.3f\n", forms[i], rep.Accuracy)
		return rep.Accuracy, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{Label: "accuracy", X: []float64{0, 1}, Y: accs})
	return fig, nil
}

// AblationBypass compares faulty inference with and without the bypass
// multiplexer at equal fault maps (FaP with bypass vs raw corruption).
func (s *Suite) AblationBypass() (*Figure, error) {
	bl, err := s.Dataset("MNIST")
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Ablation-Bypass", Title: "Bypass mux vs raw corruption (no retraining)",
		XLabel: "faultRate", YLabel: "accuracy",
	}
	rates := []float64{0.10, 0.30, 0.60}
	var raw, bypass []float64
	ws, err := s.newWorkers(bl, 1)
	if err != nil {
		return nil, err
	}
	w := ws[0]
	test := bl.TestSlice(s.Opt.EvalSamples)
	for i, rate := range rates {
		fm, err := s.mitigationFaultMap(0, rate)
		if err != nil {
			return nil, err
		}
		r, err := core.EvaluateFaulty(w.model, w.arr, fm, test, false, 32)
		if err != nil {
			return nil, err
		}
		b, err := core.EvaluateFaulty(w.model, w.arr, fm, test, true, 32)
		if err != nil {
			return nil, err
		}
		raw = append(raw, r)
		bypass = append(bypass, b)
		s.logf("ablation bypass rate %.0f%%: raw %.3f bypass %.3f\n", rate*100, r, b)
		_ = i
	}
	fig.Series = append(fig.Series,
		Series{Label: "corrupting", X: rates, Y: raw},
		Series{Label: "bypassed", X: rates, Y: bypass},
	)
	return fig, nil
}

// AblationQFormat compares deployed fault-free accuracy across PE
// accumulator Q-formats (quantization sensitivity of the datapath).
func (s *Suite) AblationQFormat() (*Figure, error) {
	bl, err := s.Dataset("MNIST")
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Ablation-QFormat", Title: "PE accumulator fixed-point format (fault-free deployment)",
		XLabel: "format", YLabel: "accuracy",
		XTicks: []string{"Q24.8", "Q16.16", "Q8.24"},
	}
	formats := []fixed.Format{fixed.Q24x8, fixed.Q16x16, fixed.Q8x24}
	accs, err := runLocal("ablation-qformat", len(formats), func(i int) (float64, error) {
		model, err := bl.BuildModel()
		if err != nil {
			return 0, err
		}
		if err := model.Net.LoadState(bl.State); err != nil {
			return 0, err
		}
		arr, err := systolic.New(systolic.Config{
			Rows: s.Opt.ArrayRows, Cols: s.Opt.ArrayCols, Format: formats[i], Saturate: true,
		})
		if err != nil {
			return 0, err
		}
		model.Net.Deploy(arr)
		acc := snn.Evaluate(model.Net, bl.TestSlice(s.Opt.EvalSamples), 32)
		s.logf("ablation qformat %v: %.3f\n", formats[i], acc)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{Label: "accuracy", X: []float64{0, 1, 2}, Y: accs})
	return fig, nil
}

// AblationLIFvsPLIF compares plain LIF (frozen time constant) against the
// PLIF learnable time constant used by the paper's architecture.
func (s *Suite) AblationLIFvsPLIF() (*Figure, error) {
	sc := s.ablationScale()
	ds, err := datasets.SyntheticMNIST(datasets.Config{
		Train: sc.train, Test: sc.test, T: sc.t, Seed: s.Opt.Seed + 51,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Ablation-LIFvsPLIF", Title: "Frozen vs learnable membrane time constant",
		XLabel: "variant", YLabel: "accuracy",
		XTicks: []string{"LIF", "PLIF"},
	}
	variants := []bool{false, true}
	accs, err := runLocal("ablation-lif-plif", len(variants), func(i int) (float64, error) {
		spec := s.ablationSpec()
		spec.Neuron.LearnTau = variants[i]
		model, err := snn.Build(spec, rand.New(rand.NewSource(s.Opt.Seed+62)))
		if err != nil {
			return 0, err
		}
		acc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
			Epochs: sc.epochs, LR: 0.02, Rng: rand.New(rand.NewSource(s.Opt.Seed + 63)),
			Replicas: s.Opt.TrainReplicas, MicroBatch: s.Opt.TrainMicroBatch,
		})
		if err != nil {
			return 0, err
		}
		s.logf("ablation learnTau=%v: %.3f\n", variants[i], acc)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{Label: "accuracy", X: []float64{0, 1}, Y: accs})
	return fig, nil
}

// AblationFaultSite compares stuck-at faults in the accumulator output
// register (the paper's model) against faults in the weight register at
// equal counts and bit positions. Accumulator faults corrupt every
// passing partial sum; weight faults only fire when a spike gates the
// corrupted weight, so they are milder.
func (s *Suite) AblationFaultSite() (*Figure, error) {
	bl, err := s.Dataset("MNIST")
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Ablation-FaultSite", Title: "Accumulator vs weight-register stuck-at faults",
		XLabel: "faultyPEs", YLabel: "accuracy",
		Notes: []string{"equal fault maps (MSB sa1), no mitigation"},
	}
	counts := []int{4, 8, 16, 32}
	ws, err := s.newWorkers(bl, 1)
	if err != nil {
		return nil, err
	}
	w := ws[0]
	test := bl.TestSlice(s.Opt.EvalSamples)
	var accAcc, wAcc []float64
	for i, n := range counts {
		fm, err := faults.Generate(s.Opt.ArrayRows, s.Opt.ArrayCols, faults.GenSpec{
			NumFaulty: n, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
		}, rand.New(rand.NewSource(s.Opt.Seed+int64(80+i))))
		if err != nil {
			return nil, err
		}
		a, err := core.EvaluateFaulty(w.model, w.arr, fm, test, false, 32)
		if err != nil {
			return nil, err
		}
		b, err := core.EvaluateWeightFaulty(w.model, w.arr, fm, test, false, 32)
		if err != nil {
			return nil, err
		}
		accAcc = append(accAcc, a)
		wAcc = append(wAcc, b)
		s.logf("ablation fault-site n=%d: accumulator %.3f weight %.3f\n", n, a, b)
	}
	xs := make([]float64, len(counts))
	for i, n := range counts {
		xs[i] = float64(n)
	}
	fig.Series = append(fig.Series,
		Series{Label: "accumulator", X: xs, Y: accAcc},
		Series{Label: "weight-register", X: xs, Y: wAcc},
	)
	return fig, nil
}

// Ablations runs every ablation and returns their figures.
func (s *Suite) Ablations() ([]*Figure, error) {
	var out []*Figure
	for _, fn := range []func() (*Figure, error){
		s.AblationSurrogateWidth,
		s.AblationVthGradientForm,
		s.AblationBypass,
		s.AblationQFormat,
		s.AblationLIFvsPLIF,
		s.AblationFaultSite,
	} {
		fig, err := fn()
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation: %w", err)
		}
		out = append(out, fig)
	}
	return out, nil
}
