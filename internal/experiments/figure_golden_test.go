package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file test for Figure serialization: cmd/campaign merge emits
// figures as JSON, so schema drift must break CI instead of downstream
// parsers. Regenerate with
//
//	go test ./internal/experiments/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestFigureJSONGolden(t *testing.T) {
	fig := &Figure{
		ID: "Fig5b", Title: "Accuracy vs number of faulty PEs",
		XLabel: "faultyPEs", YLabel: "accuracy",
		XTicks: []string{"none", "few", "many"},
		Notes:  []string{"MSB stuck-at-1 faults, 3 maps/point"},
		Series: []Series{
			{Label: "MNIST", X: []float64{0, 4, 8}, Y: []float64{0.975, 0.8125, 0.5}},
			{Label: "DVSGesture", X: []float64{0, 4, 8}, Y: []float64{0.9375, 0.75, 0.25}},
		},
	}
	got, err := json.MarshalIndent(fig, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "figure.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Figure JSON drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFigureJSONRoundTrip: the serialized form reloads to an identical
// figure (the merge tools round-trip figures through JSON).
func TestFigureJSONRoundTrip(t *testing.T) {
	fig := &Figure{
		ID: "FigX", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
	}
	b, err := json.Marshal(fig)
	if err != nil {
		t.Fatal(err)
	}
	var back Figure
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("figure does not round-trip: %s vs %s", b, b2)
	}
}
