package experiments

import (
	"fmt"
	"io"
	"sync"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
)

// Spec-registry integration: every figure campaign (fig2, fig5a-c, and
// the shared Fig. 6/7/8 "mitigation" study) is constructible from a
// declarative spec.Spec. Identically configured specs share one Suite
// per process, so a tool that runs several figure campaigns — or a
// cluster worker leasing shards of different figures of the same sweep
// configuration — trains each dataset baseline exactly once.

var (
	suiteCacheMu sync.Mutex
	suiteCache   = map[string]*Suite{}
)

// SuiteFromSpec resolves a spec's suite section into a Suite, applying
// the mode defaults (DefaultOptions, or QuickOptions when Quick is set)
// for zero values, exactly like the historical cmd flags. Suites are
// cached per resolved configuration (including the cache directory):
// repeated builds from equivalent specs return the same Suite and
// therefore share trained baselines. The log writer is fixed by
// whichever build populated the cache entry first — execution detail,
// never results.
func SuiteFromSpec(s *spec.Spec, opt spec.BuildOpts) (*Suite, error) {
	ss := s.Suite
	if ss == nil {
		return nil, fmt.Errorf("experiments: spec kind %q needs a suite section", s.Kind)
	}
	o := DefaultOptions()
	if ss.Quick {
		o = QuickOptions()
	}
	o.Seed = s.EffectiveSeed()
	if ss.Array > 0 {
		o.ArrayRows, o.ArrayCols = ss.Array, ss.Array
	}
	if e := ss.RetrainEpochs(); e > 0 {
		o.RetrainEpochs = e
	}
	if ss.Repeats > 0 {
		o.Repeats = ss.Repeats
	}
	if ss.Eval > 0 {
		o.EvalSamples = ss.Eval
	}
	if ss.Training != nil {
		o.TrainReplicas = ss.Training.Replicas
		o.TrainMicroBatch = ss.Training.MicroBatch
		// Mirror TrainSpec.canonical(): the suite trains at the shared
		// default batch, so a micro-batch covering the whole batch is
		// the same one-micro-batch partition as unset — normalize it so
		// the suite cache key (and disk baseline filename) agree with
		// the spec's fingerprint identity.
		if o.TrainMicroBatch >= spec.DefaultBatch {
			o.TrainMicroBatch = 0
		}
	}
	o.CacheDir = opt.CacheDir
	o.Log = opt.Log
	// TrainReplicas is execution-only and excluded from the key, like
	// the log writer: equivalent specs that differ only in replica
	// count share one Suite, and the first build's lane count wins.
	// This is sound because snn.Train routes EVERY configuration —
	// replicas 0 included — through the replica engine, whose results
	// (dropout included) are bit-identical at any lane count
	// (snn.TestTrainDefaultConfigIsReplicaEngine). The micro-batch
	// partition changes results and is part of the key.
	key := fmt.Sprintf("quick=%v seed=%d array=%dx%d repeats=%d epochs=%d eval=%d micro=%d cache=%q",
		o.Quick, o.Seed, o.ArrayRows, o.ArrayCols, o.Repeats, o.RetrainEpochs, o.EvalSamples, o.TrainMicroBatch, o.CacheDir)
	suiteCacheMu.Lock()
	defer suiteCacheMu.Unlock()
	if su, ok := suiteCache[key]; ok {
		return su, nil
	}
	su := NewSuite(o)
	suiteCache[key] = su
	return su, nil
}

func init() {
	for _, name := range CampaignNames() {
		spec.Register(name, buildFigureCampaign)
	}
}

// buildFigureCampaign is the registered builder for every figure kind:
// resolve the (shared) suite, construct the campaign, and render
// results as the kind's figures.
func buildFigureCampaign(s *spec.Spec, opt spec.BuildOpts) (*spec.Built, error) {
	suite, err := SuiteFromSpec(s, opt)
	if err != nil {
		return nil, err
	}
	cam, err := suite.Campaign(s.Kind)
	if err != nil {
		return nil, err
	}
	kind := s.Kind
	figures := func(results []campaign.Result) ([]*Figure, error) {
		return suite.Figures(kind, results)
	}
	return &spec.Built{
		Campaign: cam,
		Render: func(w io.Writer, results []campaign.Result) error {
			figs, err := figures(results)
			if err != nil {
				return err
			}
			for _, f := range figs {
				f.Print(w)
			}
			return nil
		},
		JSON: func(results []campaign.Result) (any, error) {
			return figures(results)
		},
	}, nil
}
