package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"falvolt/internal/campaign"
	"falvolt/internal/core"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// Campaign adapters: every figure sweep decomposes into a deterministic
// list of seed-addressed campaign.Trials, so any figure can run sharded
// across processes (cmd/experiments -shard, cmd/campaign run) and the
// merged results are bit-identical to a single-process run. Trial keys
// are "series|x" addresses; repeats share a key and are averaged in
// trial-ID order by the figure assemblers.
//
// Trial enumeration is pure — it never trains a baseline — so `plan` and
// shard agreement are free; workers train (or load cached) baselines
// lazily on first use.

// CampaignNames lists the campaign-backed sweeps, in figure order.
// "mitigation" is the shared Fig. 6/7/8 study.
func CampaignNames() []string {
	return []string{"fig2", "fig5a", "fig5b", "fig5c", "mitigation"}
}

// Campaign returns the named sweep as a campaign.
func (s *Suite) Campaign(name string) (campaign.Campaign, error) {
	meta := s.campaignMeta()
	switch name {
	case "fig2":
		return campaign.NewWithMeta(name, meta, s.fig2Trials(), func(lane int) (campaign.Worker, error) {
			return campaign.WorkerFunc(s.runFig2Trial), nil
		}), nil
	case "fig5a":
		return campaign.NewWithMeta(name, meta, s.fig5aTrials(), s.vulnWorkerFactory(s.runFig5aTrial)), nil
	case "fig5b":
		return campaign.NewWithMeta(name, meta, s.fig5bTrials(), s.vulnWorkerFactory(s.runFig5bTrial)), nil
	case "fig5c":
		return campaign.NewWithMeta(name, meta, s.fig5cTrials(), s.vulnWorkerFactory(s.runFig5cTrial)), nil
	case "mitigation":
		return campaign.NewWithMeta(name, meta, s.mitigationTrials(), func(lane int) (campaign.Worker, error) {
			return campaign.WorkerFunc(s.runMitigationTrial), nil
		}), nil
	}
	return nil, fmt.Errorf("experiments: unknown campaign %q (want one of %v)", name, CampaignNames())
}

// campaignMeta fingerprints the options that determine trial semantics;
// checkpoints refuse to resume or merge across differing fingerprints.
func (s *Suite) campaignMeta() map[string]string {
	return map[string]string{
		"quick":   strconv.FormatBool(s.Opt.Quick),
		"seed":    strconv.FormatInt(s.Opt.Seed, 10),
		"array":   fmt.Sprintf("%dx%d", s.Opt.ArrayRows, s.Opt.ArrayCols),
		"repeats": strconv.Itoa(s.Opt.Repeats),
		"epochs":  strconv.Itoa(s.Opt.RetrainEpochs),
		"eval":    strconv.Itoa(s.Opt.EvalSamples),
	}
}

// RunCampaign executes the named campaign (or a shard of it) and
// returns its results; the campaign.Options select shard, checkpoint
// and runner.
func (s *Suite) RunCampaign(name string, opt campaign.Options) (*campaign.RunResult, error) {
	c, err := s.Campaign(name)
	if err != nil {
		return nil, err
	}
	if opt.Log == nil {
		opt.Log = s.Opt.Log
	}
	return campaign.Run(c, opt)
}

// campaignFigures runs the named campaign to completion in-process and
// assembles its figures — the path behind the Fig* convenience methods.
func (s *Suite) campaignFigures(name string) ([]*Figure, error) {
	rr, err := s.RunCampaign(name, campaign.Options{})
	if err != nil {
		return nil, err
	}
	return s.Figures(name, rr.Results)
}

// Figures assembles the named campaign's figures from merged results
// (complete coverage required). For "mitigation" the order is the
// paper's: Fig. 6 per dataset, Fig. 7, Fig. 8 per dataset.
func (s *Suite) Figures(name string, results []campaign.Result) ([]*Figure, error) {
	switch name {
	case "fig2":
		f, err := s.fig2Figure(results)
		return wrapFigure(f, err)
	case "fig5a":
		f, err := s.fig5aFigure(results)
		return wrapFigure(f, err)
	case "fig5b":
		f, err := s.fig5bFigure(results)
		return wrapFigure(f, err)
	case "fig5c":
		f, err := s.fig5cFigure(results)
		return wrapFigure(f, err)
	case "mitigation":
		r, err := s.mitigationFigures(results)
		if err != nil {
			return nil, err
		}
		var out []*Figure
		out = append(out, r.fig6...)
		out = append(out, r.fig7)
		out = append(out, r.fig8...)
		return out, nil
	}
	return nil, fmt.Errorf("experiments: unknown campaign %q", name)
}

func wrapFigure(f *Figure, err error) ([]*Figure, error) {
	if err != nil {
		return nil, err
	}
	return []*Figure{f}, nil
}

// datasetNames returns the suite's dataset names in plan order without
// training anything.
func (s *Suite) datasetNames() []string {
	var names []string
	for _, p := range s.plans() {
		names = append(names, p.name)
	}
	return names
}

func parsePolarity(s string) (faults.Polarity, error) {
	switch s {
	case "sa0":
		return faults.StuckAt0, nil
	case "sa1":
		return faults.StuckAt1, nil
	}
	return 0, fmt.Errorf("experiments: bad polarity tag %q", s)
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case core.FaP.String():
		return core.FaP, nil
	case core.FaPIT.String():
		return core.FaPIT, nil
	case core.FalVolt.String():
		return core.FalVolt, nil
	}
	return 0, fmt.Errorf("experiments: bad method tag %q", s)
}

func atoiTag(t campaign.Trial, key string) (int, error) {
	v, err := strconv.Atoi(t.Tags[key])
	if err != nil {
		return 0, fmt.Errorf("experiments: trial %d has bad %s tag %q", t.ID, key, t.Tags[key])
	}
	return v, nil
}

func atofTag(t campaign.Trial, key string) (float64, error) {
	v, err := strconv.ParseFloat(t.Tags[key], 64)
	if err != nil {
		return 0, fmt.Errorf("experiments: trial %d has bad %s tag %q", t.ID, key, t.Tags[key])
	}
	return v, nil
}

// ftag round-trips a float through its shortest decimal form (ParseFloat
// recovers the identical bits, keeping seed arithmetic like
// int64(rate*1000) exact across processes).
func ftag(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// --- vulnerability campaigns (Fig. 5a/5b/5c) ---

// fig5aFaultyPEs is the fixed faulty-PE count of the Fig. 5a sweep.
const fig5aFaultyPEs = 16

// fig5cFaultyPEs is the fixed faulty-PE count of the Fig. 5c sweep.
const fig5cFaultyPEs = 4

// vulnJob is one (dataset, polarity) series of Fig. 5a, or one dataset
// series of Fig. 5b/5c.
type vulnJob struct {
	ds  string
	pol faults.Polarity
}

func (s *Suite) fig5aJobs() []vulnJob {
	var jobs []vulnJob
	for _, name := range s.datasetNames() {
		for _, pol := range []faults.Polarity{faults.StuckAt0, faults.StuckAt1} {
			jobs = append(jobs, vulnJob{ds: name, pol: pol})
		}
	}
	return jobs
}

func (s *Suite) fig5aTrials() []campaign.Trial {
	var trials []campaign.Trial
	for j, jb := range s.fig5aJobs() {
		for i, bit := range Fig5aBits {
			for rep := 0; rep < s.Opt.Repeats; rep++ {
				trials = append(trials, campaign.Trial{
					ID:   len(trials),
					Key:  fmt.Sprintf("%s-%s|%d", jb.pol, jb.ds, bit),
					Seed: s.Opt.Seed + int64(j*1000+i*10+rep),
					Tags: map[string]string{
						"dataset": jb.ds, "pol": jb.pol.String(),
						"bit": strconv.Itoa(int(bit)), "rep": strconv.Itoa(rep),
					},
				})
			}
		}
	}
	return trials
}

func (s *Suite) fig5bTrials() []campaign.Trial {
	var trials []campaign.Trial
	for j, name := range s.datasetNames() {
		for i, count := range Fig5bCounts {
			for rep := 0; rep < s.Opt.Repeats; rep++ {
				trials = append(trials, campaign.Trial{
					ID:   len(trials),
					Key:  fmt.Sprintf("%s|%d", name, count),
					Seed: s.Opt.Seed + int64(j*1000+i*10+rep),
					Tags: map[string]string{
						"dataset": name, "count": strconv.Itoa(count), "rep": strconv.Itoa(rep),
					},
				})
			}
		}
	}
	return trials
}

func (s *Suite) fig5cTrials() []campaign.Trial {
	var trials []campaign.Trial
	for j, name := range s.datasetNames() {
		for i, side := range Fig5cSides {
			for rep := 0; rep < s.Opt.Repeats; rep++ {
				trials = append(trials, campaign.Trial{
					ID:   len(trials),
					Key:  fmt.Sprintf("%s|%d", name, side),
					Seed: s.Opt.Seed + int64(j*1000+i*10+rep),
					Tags: map[string]string{
						"dataset": name, "side": strconv.Itoa(side), "rep": strconv.Itoa(rep),
					},
				})
			}
		}
	}
	return trials
}

// vulnWorker is one lane's private state for the vulnerability
// campaigns: per-dataset model replicas plus per-side arrays (Fig. 5c).
// Results are bit-identical whichever lane evaluates a trial, because
// every replica restores the same baseline snapshot.
type vulnWorker struct {
	s     *Suite
	evals map[string]*evalWorker
	tests map[string][]snn.Sample
	arrs  map[int]*systolic.Array
}

func (s *Suite) vulnWorkerFactory(run func(*vulnWorker, campaign.Trial) (campaign.Result, error)) func(int) (campaign.Worker, error) {
	return func(lane int) (campaign.Worker, error) {
		w := &vulnWorker{
			s:     s,
			evals: make(map[string]*evalWorker),
			tests: make(map[string][]snn.Sample),
			arrs:  make(map[int]*systolic.Array),
		}
		return campaign.WorkerFunc(func(t campaign.Trial) (campaign.Result, error) {
			return run(w, t)
		}), nil
	}
}

// eval returns the lane-private worker for a dataset, training the
// shared baseline on first use (suite-wide, mutex-guarded).
func (w *vulnWorker) eval(ds string) (*evalWorker, []snn.Sample, error) {
	if ew, ok := w.evals[ds]; ok {
		return ew, w.tests[ds], nil
	}
	bl, err := w.s.Dataset(ds)
	if err != nil {
		return nil, nil, err
	}
	m, err := bl.BuildModel()
	if err != nil {
		return nil, nil, err
	}
	if err := m.Net.LoadState(bl.State); err != nil {
		return nil, nil, err
	}
	ew := &evalWorker{model: m, arr: w.s.NewArray()}
	w.evals[ds] = ew
	w.tests[ds] = bl.TestSlice(w.s.Opt.EvalSamples)
	return ew, w.tests[ds], nil
}

// arrFor returns the lane-private side x side array (Fig. 5c).
func (w *vulnWorker) arrFor(side int) *systolic.Array {
	if a, ok := w.arrs[side]; ok {
		return a
	}
	a := systolic.MustNew(systolic.Config{
		Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true,
	})
	w.arrs[side] = a
	return a
}

func (s *Suite) runFig5aTrial(w *vulnWorker, t campaign.Trial) (campaign.Result, error) {
	ew, test, err := w.eval(t.Tags["dataset"])
	if err != nil {
		return campaign.Result{}, err
	}
	bit, err := atoiTag(t, "bit")
	if err != nil {
		return campaign.Result{}, err
	}
	pol, err := parsePolarity(t.Tags["pol"])
	if err != nil {
		return campaign.Result{}, err
	}
	fm, err := faults.Generate(s.Opt.ArrayRows, s.Opt.ArrayCols, faults.GenSpec{
		NumFaulty: fig5aFaultyPEs, BitMode: faults.FixedBit, Bit: uint(bit),
		Pol: pol, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(t.Seed)))
	if err != nil {
		return campaign.Result{}, err
	}
	acc, err := faultyAccuracy(ew, fm, test)
	if err != nil {
		return campaign.Result{}, err
	}
	s.logf("fig5a %s %s bit %d rep %s: %.3f\n", t.Tags["dataset"], pol, bit, t.Tags["rep"], acc)
	return campaign.Result{TrialID: t.ID, Key: t.Key, Metrics: map[string]float64{"acc": acc}}, nil
}

func (s *Suite) runFig5bTrial(w *vulnWorker, t campaign.Trial) (campaign.Result, error) {
	ew, test, err := w.eval(t.Tags["dataset"])
	if err != nil {
		return campaign.Result{}, err
	}
	count, err := atoiTag(t, "count")
	if err != nil {
		return campaign.Result{}, err
	}
	fm, err := faults.Generate(s.Opt.ArrayRows, s.Opt.ArrayCols, faults.GenSpec{
		NumFaulty: count, BitMode: faults.MSBBits,
		Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(t.Seed)))
	if err != nil {
		return campaign.Result{}, err
	}
	acc, err := faultyAccuracy(ew, fm, test)
	if err != nil {
		return campaign.Result{}, err
	}
	s.logf("fig5b %s n=%d rep %s: %.3f\n", t.Tags["dataset"], count, t.Tags["rep"], acc)
	return campaign.Result{TrialID: t.ID, Key: t.Key, Metrics: map[string]float64{"acc": acc}}, nil
}

func (s *Suite) runFig5cTrial(w *vulnWorker, t campaign.Trial) (campaign.Result, error) {
	ew, test, err := w.eval(t.Tags["dataset"])
	if err != nil {
		return campaign.Result{}, err
	}
	side, err := atoiTag(t, "side")
	if err != nil {
		return campaign.Result{}, err
	}
	fm, err := faults.Generate(side, side, faults.GenSpec{
		NumFaulty: fig5cFaultyPEs, BitMode: faults.MSBBits,
		Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(t.Seed)))
	if err != nil {
		return campaign.Result{}, err
	}
	sideWorker := &evalWorker{model: ew.model, arr: w.arrFor(side)}
	acc, err := faultyAccuracy(sideWorker, fm, test)
	if err != nil {
		return campaign.Result{}, err
	}
	s.logf("fig5c %s %dx%d rep %s: %.3f\n", t.Tags["dataset"], side, side, t.Tags["rep"], acc)
	return campaign.Result{TrialID: t.ID, Key: t.Key, Metrics: map[string]float64{"acc": acc}}, nil
}

func (s *Suite) fig5aFigure(results []campaign.Result) (*Figure, error) {
	accs := campaign.GroupMean(results, "acc")
	fig := &Figure{
		ID: "Fig5a", Title: "Accuracy vs fault bit location",
		XLabel: "bit", YLabel: "accuracy",
		Notes: []string{
			fmt.Sprintf("%d faulty PEs on a %dx%d array, averaged over %d fault maps",
				fig5aFaultyPEs, s.Opt.ArrayRows, s.Opt.ArrayCols, s.Opt.Repeats),
		},
	}
	xs := make([]float64, len(Fig5aBits))
	for i, b := range Fig5aBits {
		xs[i] = float64(b)
	}
	for _, jb := range s.fig5aJobs() {
		ys := make([]float64, len(Fig5aBits))
		for i, bit := range Fig5aBits {
			key := fmt.Sprintf("%s-%s|%d", jb.pol, jb.ds, bit)
			acc, ok := accs[key]
			if !ok {
				return nil, fmt.Errorf("experiments: fig5a results missing %q (incomplete merge?)", key)
			}
			ys[i] = acc
		}
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("%s-%s", jb.pol, jb.ds), X: xs, Y: ys,
		})
	}
	return fig, nil
}

func (s *Suite) fig5bFigure(results []campaign.Result) (*Figure, error) {
	accs := campaign.GroupMean(results, "acc")
	fig := &Figure{
		ID: "Fig5b", Title: "Accuracy vs number of faulty PEs",
		XLabel: "faultyPEs", YLabel: "accuracy",
		Notes: []string{
			fmt.Sprintf("MSB (bits 24-31) stuck-at-1 faults on a %dx%d array, %d maps/point",
				s.Opt.ArrayRows, s.Opt.ArrayCols, s.Opt.Repeats),
		},
	}
	xs := make([]float64, len(Fig5bCounts))
	for i, c := range Fig5bCounts {
		xs[i] = float64(c)
	}
	for _, name := range s.datasetNames() {
		ys := make([]float64, len(Fig5bCounts))
		for i, count := range Fig5bCounts {
			key := fmt.Sprintf("%s|%d", name, count)
			acc, ok := accs[key]
			if !ok {
				return nil, fmt.Errorf("experiments: fig5b results missing %q (incomplete merge?)", key)
			}
			ys[i] = acc
		}
		fig.Series = append(fig.Series, Series{Label: name, X: xs, Y: ys})
	}
	return fig, nil
}

func (s *Suite) fig5cFigure(results []campaign.Result) (*Figure, error) {
	accs := campaign.GroupMean(results, "acc")
	fig := &Figure{
		ID: "Fig5c", Title: "Accuracy vs size of systolic array",
		XLabel: "totalPEs", YLabel: "accuracy",
		Notes: []string{
			fmt.Sprintf("%d faulty PEs (MSB stuck-at-1), %d maps/point", fig5cFaultyPEs, s.Opt.Repeats),
		},
	}
	xs := make([]float64, len(Fig5cSides))
	for i, side := range Fig5cSides {
		xs[i] = float64(side * side)
	}
	for _, name := range s.datasetNames() {
		ys := make([]float64, len(Fig5cSides))
		for i, side := range Fig5cSides {
			key := fmt.Sprintf("%s|%d", name, side)
			acc, ok := accs[key]
			if !ok {
				return nil, fmt.Errorf("experiments: fig5c results missing %q (incomplete merge?)", key)
			}
			ys[i] = acc
		}
		fig.Series = append(fig.Series, Series{Label: name, X: xs, Y: ys})
	}
	return fig, nil
}

// --- mitigation campaigns (Fig. 2 and the shared Fig. 6/7/8 study) ---

// fig2Datasets are the datasets of the motivational sweep.
var fig2Datasets = []string{"MNIST", "DVSGesture"}

// fig2Rates are its faulty-PE fractions.
var fig2Rates = []float64{0.30, 0.60}

// fig2Epochs is the reduced retraining budget of the sweep.
func (s *Suite) fig2Epochs() int {
	epochs := s.Opt.RetrainEpochs / 2
	if epochs < 2 {
		epochs = 2
	}
	return epochs
}

func (s *Suite) fig2Trials() []campaign.Trial {
	var trials []campaign.Trial
	for d, name := range fig2Datasets {
		for _, rate := range fig2Rates {
			for _, vth := range Fig2Vths {
				j := len(trials)
				trials = append(trials, campaign.Trial{
					ID:   j,
					Key:  fmt.Sprintf("%s@%.0f%%|%.2f", name, rate*100, vth),
					Seed: s.Opt.Seed + int64(j),
					Tags: map[string]string{
						"dataset": name, "dsidx": strconv.Itoa(d),
						"rate": ftag(rate), "vth": ftag(vth),
					},
				})
			}
		}
	}
	return trials
}

func (s *Suite) runFig2Trial(t campaign.Trial) (campaign.Result, error) {
	bl, err := s.Dataset(t.Tags["dataset"])
	if err != nil {
		return campaign.Result{}, err
	}
	dsIdx, err := atoiTag(t, "dsidx")
	if err != nil {
		return campaign.Result{}, err
	}
	rate, err := atofTag(t, "rate")
	if err != nil {
		return campaign.Result{}, err
	}
	vth, err := atofTag(t, "vth")
	if err != nil {
		return campaign.Result{}, err
	}
	fm, err := s.mitigationFaultMap(dsIdx, rate)
	if err != nil {
		return campaign.Result{}, err
	}
	rep, err := s.mitigateJob(bl, fm, core.Config{
		Method: core.FaPIT, Epochs: s.fig2Epochs(), FixedVth: vth,
		Rng: rand.New(rand.NewSource(t.Seed)),
	})
	if err != nil {
		return campaign.Result{}, err
	}
	s.logf("fig2 %s rate %.0f%% vth %.2f: %.3f\n", bl.Name, rate*100, vth, rep.Accuracy)
	return campaign.Result{TrialID: t.ID, Key: t.Key, Metrics: map[string]float64{"acc": rep.Accuracy}}, nil
}

func (s *Suite) fig2Figure(results []campaign.Result) (*Figure, error) {
	accs := campaign.GroupMean(results, "acc")
	fig := &Figure{
		ID: "Fig2", Title: "Fixed-threshold retraining sweep (motivation)",
		XLabel: "Vth", YLabel: "accuracy",
		Notes: []string{fmt.Sprintf("FaPIT with forced global threshold, %d retrain epochs, MSB sa1 fault maps", s.fig2Epochs())},
	}
	xs := append([]float64(nil), Fig2Vths...)
	for _, name := range fig2Datasets {
		for _, rate := range fig2Rates {
			ys := make([]float64, 0, len(Fig2Vths))
			for _, vth := range Fig2Vths {
				key := fmt.Sprintf("%s@%.0f%%|%.2f", name, rate*100, vth)
				acc, ok := accs[key]
				if !ok {
					return nil, fmt.Errorf("experiments: fig2 results missing %q (incomplete merge?)", key)
				}
				ys = append(ys, acc)
			}
			fig.Series = append(fig.Series, Series{
				Label: fmt.Sprintf("%s@%.0f%%", name, rate*100),
				X:     xs, Y: ys,
			})
		}
	}
	return fig, nil
}

// mitigationMethods is the method order of the Fig. 6/7/8 study.
var mitigationMethods = []core.Method{core.FaP, core.FaPIT, core.FalVolt}

func (s *Suite) mitigationTrials() []campaign.Trial {
	var trials []campaign.Trial
	for d, name := range s.datasetNames() {
		for _, rate := range MitigationRates {
			for _, m := range mitigationMethods {
				j := len(trials)
				track := rate == 0.30 && m != core.FaP
				trials = append(trials, campaign.Trial{
					ID:   j,
					Key:  fmt.Sprintf("%s|%s|%s", name, ftag(rate), m),
					Seed: s.Opt.Seed + int64(j*17),
					Tags: map[string]string{
						"dataset": name, "dsidx": strconv.Itoa(d),
						"rate": ftag(rate), "method": m.String(),
						"curve": strconv.FormatBool(track),
					},
				})
			}
		}
	}
	return trials
}

func (s *Suite) runMitigationTrial(t campaign.Trial) (campaign.Result, error) {
	bl, err := s.Dataset(t.Tags["dataset"])
	if err != nil {
		return campaign.Result{}, err
	}
	dsIdx, err := atoiTag(t, "dsidx")
	if err != nil {
		return campaign.Result{}, err
	}
	rate, err := atofTag(t, "rate")
	if err != nil {
		return campaign.Result{}, err
	}
	method, err := parseMethod(t.Tags["method"])
	if err != nil {
		return campaign.Result{}, err
	}
	fm, err := s.mitigationFaultMap(dsIdx, rate)
	if err != nil {
		return campaign.Result{}, err
	}
	rep, err := s.mitigateJob(bl, fm, core.Config{
		Method: method, Epochs: s.Opt.RetrainEpochs,
		Rng: rand.New(rand.NewSource(t.Seed)),
		// Curves for Fig. 8 at the paper's 30% operating point.
		TrackCurve:    t.Tags["curve"] == "true",
		CurveEvalSize: s.Opt.EvalSamples,
	})
	if err != nil {
		return campaign.Result{}, err
	}
	s.logf("fig7 %s %s rate %.0f%%: acc %.3f (pruned %.1f%%)\n",
		bl.Name, method, rate*100, rep.Accuracy, rep.PrunedFraction*100)
	res := campaign.Result{
		TrialID: t.ID, Key: t.Key,
		Metrics: map[string]float64{"acc": rep.Accuracy, "pruned": rep.PrunedFraction},
		Series:  map[string][]float64{"vth": rep.Vths},
	}
	if len(rep.Curve) > 0 {
		var es, ls, as []float64
		for _, p := range rep.Curve {
			es = append(es, float64(p.Epoch))
			ls = append(ls, p.Loss)
			as = append(as, p.Accuracy)
		}
		res.Series["curveEpoch"], res.Series["curveLoss"], res.Series["curveAcc"] = es, ls, as
	}
	return res, nil
}

// mitigationFigures assembles Fig. 6/7/8 from merged study results. It
// needs the trained baselines (layer names, baseline accuracies) — in a
// merge-only process use Options.CacheDir to avoid retraining.
func (s *Suite) mitigationFigures(results []campaign.Result) (*mitigationResults, error) {
	bls, err := s.AllDatasets()
	if err != nil {
		return nil, err
	}
	byKey := campaign.GroupByKey(results)
	find := func(name string, rate float64, m core.Method) *campaign.Result {
		rs := byKey[fmt.Sprintf("%s|%s|%s", name, ftag(rate), m)]
		if len(rs) == 0 {
			return nil
		}
		return &rs[0]
	}
	res := &mitigationResults{}

	// Fig. 7: accuracy per method per rate, one series per (dataset, method).
	fig7 := &Figure{
		ID: "Fig7", Title: "Mitigation comparison: FaP vs FaPIT vs FalVolt",
		XLabel: "faultRate", YLabel: "accuracy",
		Notes: []string{fmt.Sprintf("%d retrain epochs, MSB sa1 fault maps shared across methods", s.Opt.RetrainEpochs)},
	}
	xs := append([]float64(nil), MitigationRates...)
	for _, bl := range bls {
		for _, m := range mitigationMethods {
			ys := make([]float64, len(MitigationRates))
			for i, rate := range MitigationRates {
				r := find(bl.Name, rate, m)
				if r == nil {
					return nil, fmt.Errorf("experiments: mitigation results missing %s|%s|%s (incomplete merge?)",
						bl.Name, ftag(rate), m)
				}
				ys[i] = r.Metrics["acc"]
			}
			fig7.Series = append(fig7.Series, Series{
				Label: fmt.Sprintf("%s-%s", bl.Name, m), X: xs, Y: ys,
			})
		}
	}
	res.fig7 = fig7

	// Fig. 6: FalVolt's optimized per-layer thresholds, one figure per
	// dataset (hidden layers only, as the paper reports).
	for _, bl := range bls {
		names := bl.Model.SpikingNames
		fig := &Figure{
			ID:     "Fig6-" + bl.Name,
			Title:  fmt.Sprintf("Optimized threshold voltages per layer (%s)", bl.Name),
			XLabel: "layer", YLabel: "Vth",
			XTicks: names[1:], // hidden layers; encoder excluded per paper
		}
		xsl := make([]float64, len(names)-1)
		for i := range xsl {
			xsl[i] = float64(i)
		}
		for _, rate := range MitigationRates {
			r := find(bl.Name, rate, core.FalVolt)
			if r == nil || len(r.Series["vth"]) != len(names) {
				continue
			}
			fig.Series = append(fig.Series, Series{
				Label: fmt.Sprintf("%.0f%%", rate*100), X: xsl, Y: r.Series["vth"][1:],
			})
		}
		res.fig6 = append(res.fig6, fig)
	}

	// Fig. 8: convergence curves at 30% faults, one figure per dataset.
	for _, bl := range bls {
		fig := &Figure{
			ID:     "Fig8-" + bl.Name,
			Title:  fmt.Sprintf("Retraining convergence at 30%% faulty PEs (%s)", bl.Name),
			XLabel: "epoch", YLabel: "accuracy",
			Notes: []string{fmt.Sprintf("baseline accuracy %.3f", bl.Acc)},
		}
		for _, m := range []core.Method{core.FaPIT, core.FalVolt} {
			r := find(bl.Name, 0.30, m)
			if r == nil {
				continue
			}
			fig.Series = append(fig.Series, Series{
				Label: m.String(),
				X:     append([]float64(nil), r.Series["curveEpoch"]...),
				Y:     append([]float64(nil), r.Series["curveAcc"]...),
			})
		}
		res.fig8 = append(res.fig8, fig)
	}
	return res, nil
}

// --- in-memory campaigns for small sweeps (ablations) ---

// runLocal executes n single-value trials through the campaign engine
// on the process-default runner and returns the values in trial order —
// the replacement for the ad-hoc parallel loops the ablations used.
func runLocal(name string, n int, run func(i int) (float64, error)) ([]float64, error) {
	trials := make([]campaign.Trial, n)
	for i := range trials {
		trials[i] = campaign.Trial{ID: i, Key: fmt.Sprintf("%s/%d", name, i)}
	}
	c := campaign.New(name, trials, func(lane int) (campaign.Worker, error) {
		return campaign.WorkerFunc(func(t campaign.Trial) (campaign.Result, error) {
			v, err := run(t.ID)
			if err != nil {
				return campaign.Result{}, err
			}
			return campaign.Result{TrialID: t.ID, Key: t.Key, Metrics: map[string]float64{"value": v}}, nil
		}), nil
	})
	rr, err := campaign.Run(c, campaign.Options{})
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for _, r := range rr.Results {
		out[r.TrialID] = r.Metrics["value"]
	}
	return out, nil
}
