package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Series is one labelled line of a figure: paired X/Y values.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the data behind one of the paper's plots, printable as a
// table whose rows are X values and columns are series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// XTicks optionally names the X positions (e.g. layer names, Fig. 6).
	XTicks []string
	Series []Series
	// Notes records experiment parameters worth keeping with the data.
	Notes []string
}

// Print renders the figure as an aligned text table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "   (no data)")
		return
	}
	// Header.
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for i := range f.Series[0].X {
		row := make([]string, 0, len(cols))
		if f.XTicks != nil && i < len(f.XTicks) {
			row = append(row, f.XTicks[i])
		} else {
			row = append(row, trimFloat(f.Series[0].X[i]))
		}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var sb strings.Builder
		for c, cell := range row {
			if c > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[c]))
		}
		fmt.Fprintln(w, "   "+sb.String())
		if ri == 0 {
			fmt.Fprintln(w, "   "+strings.Repeat("-", lineWidth(widths)))
		}
	}
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2
	}
	return total
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
