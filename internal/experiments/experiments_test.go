package experiments

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"falvolt/internal/core"
)

func TestNewSuiteFillsDefaults(t *testing.T) {
	s := NewSuite(Options{})
	if s.Opt.ArrayRows != 64 || s.Opt.ArrayCols != 64 {
		t.Errorf("default array %dx%d, want 64x64", s.Opt.ArrayRows, s.Opt.ArrayCols)
	}
	if s.Opt.Repeats != 8 {
		t.Errorf("default repeats %d, want 8", s.Opt.Repeats)
	}
	if s.Opt.RetrainEpochs != 20 {
		t.Errorf("default retrain epochs %d, want 20", s.Opt.RetrainEpochs)
	}
	if s.Opt.Seed == 0 {
		t.Error("seed should default non-zero")
	}
}

func TestQuickOptionsSmaller(t *testing.T) {
	q, d := QuickOptions(), DefaultOptions()
	if !q.Quick {
		t.Error("QuickOptions must set Quick")
	}
	if q.Repeats >= d.Repeats || q.RetrainEpochs >= d.RetrainEpochs {
		t.Error("quick mode should use fewer repeats and epochs")
	}
}

func TestUnknownDatasetErrors(t *testing.T) {
	s := NewSuite(QuickOptions())
	if _, err := s.Dataset("imagenet"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestPlansCoverPaperDatasets(t *testing.T) {
	s := NewSuite(QuickOptions())
	var names []string
	for _, p := range s.plans() {
		names = append(names, p.name)
	}
	want := []string{"MNIST", "N-MNIST", "DVSGesture"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("plans = %v, want %v", names, want)
	}
}

func TestMitigationFaultMapDeterministicAndRated(t *testing.T) {
	s := NewSuite(QuickOptions())
	a, err := s.mitigationFaultMap(1, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.mitigationFaultMap(1, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("same cell should give identical fault maps")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatal("fault maps differ for identical cell")
		}
	}
	rate := 0.30
	wantPEs := int(rate*float64(64*64) + 0.5)
	if got := a.NumFaultyPEs(); got != wantPEs {
		t.Errorf("30%% of 64x64 = %d faulty PEs, want %d", got, wantPEs)
	}
	c, err := s.mitigationFaultMap(2, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Faults) == len(c.Faults)
	if same {
		identical := true
		for i := range a.Faults {
			if a.Faults[i] != c.Faults[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different datasets should draw different fault maps")
		}
	}
}

func TestFigurePrintAlignment(t *testing.T) {
	fig := &Figure{
		ID: "FigX", Title: "demo", XLabel: "x", YLabel: "acc",
		Notes:  []string{"a note"},
		Series: []Series{{Label: "s1", X: []float64{0, 10}, Y: []float64{0.5, 0.25}}},
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	for _, want := range []string{"FigX", "demo", "a note", "s1", "0.500", "0.250", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed figure missing %q:\n%s", want, out)
		}
	}
}

func TestFigurePrintXTicks(t *testing.T) {
	fig := &Figure{
		ID: "Fig6-demo", Title: "vth", XLabel: "layer",
		XTicks: []string{"Conv1", "FC1"},
		Series: []Series{{Label: "30%", X: []float64{0, 1}, Y: []float64{0.7, 0.9}}},
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	if !strings.Contains(buf.String(), "Conv1") || !strings.Contains(buf.String(), "FC1") {
		t.Errorf("XTicks not rendered:\n%s", buf.String())
	}
}

func TestFigurePrintEmpty(t *testing.T) {
	fig := &Figure{ID: "FigE", Title: "empty"}
	var buf bytes.Buffer
	fig.Print(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty figure should say so")
	}
}

func TestFigurePrintRaggedSeries(t *testing.T) {
	fig := &Figure{
		ID: "FigR", Title: "ragged", XLabel: "x",
		Series: []Series{
			{Label: "long", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}},
			{Label: "short", X: []float64{1, 2, 3}, Y: []float64{0.9}},
		},
	}
	var buf bytes.Buffer
	fig.Print(&buf) // must not panic
	if !strings.Contains(buf.String(), "-") {
		t.Error("missing placeholder for short series")
	}
}

func TestParallelMapCoversAllIndices(t *testing.T) {
	var hits [57]int32
	parallelMap(len(hits), func(worker, i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
	// n smaller than worker count.
	var single int32
	parallelMap(1, func(worker, i int) { atomic.AddInt32(&single, 1) })
	if single != 1 {
		t.Errorf("single job executed %d times", single)
	}
	// n == 0 is a no-op.
	parallelMap(0, func(worker, i int) { t.Error("should not run") })
}

func TestEpochsToReachTarget(t *testing.T) {
	curve := []core.EpochPoint{
		{Epoch: 0, Accuracy: 0.3},
		{Epoch: 1, Accuracy: 0.6},
		{Epoch: 2, Accuracy: 0.9},
	}
	if e := core.EpochsToReachTarget(curve, 0.55); e != 1 {
		t.Errorf("target 0.55 reached at %d, want 1", e)
	}
	if e := core.EpochsToReachTarget(curve, 0.95); e != -1 {
		t.Errorf("unreached target should give -1, got %d", e)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Errorf("trimFloat(3) = %q", trimFloat(3))
	}
	if trimFloat(0.5) != "0.5" {
		t.Errorf("trimFloat(0.5) = %q", trimFloat(0.5))
	}
}
