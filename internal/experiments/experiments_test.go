package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"falvolt/internal/campaign"
	"falvolt/internal/core"
)

func TestNewSuiteFillsDefaults(t *testing.T) {
	s := NewSuite(Options{})
	if s.Opt.ArrayRows != 64 || s.Opt.ArrayCols != 64 {
		t.Errorf("default array %dx%d, want 64x64", s.Opt.ArrayRows, s.Opt.ArrayCols)
	}
	if s.Opt.Repeats != 8 {
		t.Errorf("default repeats %d, want 8", s.Opt.Repeats)
	}
	if s.Opt.RetrainEpochs != 20 {
		t.Errorf("default retrain epochs %d, want 20", s.Opt.RetrainEpochs)
	}
	if s.Opt.Seed == 0 {
		t.Error("seed should default non-zero")
	}
}

func TestQuickOptionsSmaller(t *testing.T) {
	q, d := QuickOptions(), DefaultOptions()
	if !q.Quick {
		t.Error("QuickOptions must set Quick")
	}
	if q.Repeats >= d.Repeats || q.RetrainEpochs >= d.RetrainEpochs {
		t.Error("quick mode should use fewer repeats and epochs")
	}
}

func TestUnknownDatasetErrors(t *testing.T) {
	s := NewSuite(QuickOptions())
	if _, err := s.Dataset("imagenet"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestPlansCoverPaperDatasets(t *testing.T) {
	s := NewSuite(QuickOptions())
	var names []string
	for _, p := range s.plans() {
		names = append(names, p.name)
	}
	want := []string{"MNIST", "N-MNIST", "DVSGesture"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("plans = %v, want %v", names, want)
	}
}

func TestMitigationFaultMapDeterministicAndRated(t *testing.T) {
	s := NewSuite(QuickOptions())
	a, err := s.mitigationFaultMap(1, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.mitigationFaultMap(1, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("same cell should give identical fault maps")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatal("fault maps differ for identical cell")
		}
	}
	rate := 0.30
	wantPEs := int(rate*float64(64*64) + 0.5)
	if got := a.NumFaultyPEs(); got != wantPEs {
		t.Errorf("30%% of 64x64 = %d faulty PEs, want %d", got, wantPEs)
	}
	c, err := s.mitigationFaultMap(2, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Faults) == len(c.Faults)
	if same {
		identical := true
		for i := range a.Faults {
			if a.Faults[i] != c.Faults[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different datasets should draw different fault maps")
		}
	}
}

func TestFigurePrintAlignment(t *testing.T) {
	fig := &Figure{
		ID: "FigX", Title: "demo", XLabel: "x", YLabel: "acc",
		Notes:  []string{"a note"},
		Series: []Series{{Label: "s1", X: []float64{0, 10}, Y: []float64{0.5, 0.25}}},
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	for _, want := range []string{"FigX", "demo", "a note", "s1", "0.500", "0.250", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed figure missing %q:\n%s", want, out)
		}
	}
}

func TestFigurePrintXTicks(t *testing.T) {
	fig := &Figure{
		ID: "Fig6-demo", Title: "vth", XLabel: "layer",
		XTicks: []string{"Conv1", "FC1"},
		Series: []Series{{Label: "30%", X: []float64{0, 1}, Y: []float64{0.7, 0.9}}},
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	if !strings.Contains(buf.String(), "Conv1") || !strings.Contains(buf.String(), "FC1") {
		t.Errorf("XTicks not rendered:\n%s", buf.String())
	}
}

func TestFigurePrintEmpty(t *testing.T) {
	fig := &Figure{ID: "FigE", Title: "empty"}
	var buf bytes.Buffer
	fig.Print(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty figure should say so")
	}
}

func TestFigurePrintRaggedSeries(t *testing.T) {
	fig := &Figure{
		ID: "FigR", Title: "ragged", XLabel: "x",
		Series: []Series{
			{Label: "long", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}},
			{Label: "short", X: []float64{1, 2, 3}, Y: []float64{0.9}},
		},
	}
	var buf bytes.Buffer
	fig.Print(&buf) // must not panic
	if !strings.Contains(buf.String(), "-") {
		t.Error("missing placeholder for short series")
	}
}

func TestRunLocalCoversAllIndices(t *testing.T) {
	var hits [57]int32
	vals, err := runLocal("cover", len(hits), func(i int) (float64, error) {
		atomic.AddInt32(&hits[i], 1)
		return float64(i) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
		if vals[i] != float64(i)*2 {
			t.Fatalf("value %d = %v", i, vals[i])
		}
	}
	// n smaller than worker count.
	var single int32
	if _, err := runLocal("single", 1, func(i int) (float64, error) {
		atomic.AddInt32(&single, 1)
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if single != 1 {
		t.Errorf("single job executed %d times", single)
	}
	// n == 0 is a no-op.
	if _, err := runLocal("empty", 0, func(i int) (float64, error) {
		t.Error("should not run")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Errors propagate.
	if _, err := runLocal("failing", 3, func(i int) (float64, error) {
		if i == 1 {
			return 0, errBoom
		}
		return 0, nil
	}); err == nil {
		t.Error("runLocal should surface trial errors")
	}
}

var errBoom = fmt.Errorf("boom")

// TestCampaignTrialEnumeration checks the sharding preconditions of
// every suite campaign without training anything: enumeration is pure
// (identical across calls), IDs are dense, and seeds/keys are stable.
func TestCampaignTrialEnumeration(t *testing.T) {
	s := NewSuite(QuickOptions())
	for _, name := range CampaignNames() {
		c, err := s.Campaign(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Errorf("campaign %q reports name %q", name, c.Name())
		}
		a, err := c.Trials()
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Trials()
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("%s: %d/%d trials", name, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != i {
				t.Fatalf("%s: trial %d has id %d", name, i, a[i].ID)
			}
			if a[i].Key != b[i].Key || a[i].Seed != b[i].Seed {
				t.Fatalf("%s: enumeration not pure at trial %d", name, i)
			}
			if a[i].Key == "" {
				t.Fatalf("%s: trial %d has empty key", name, i)
			}
		}
	}
	if _, err := s.Campaign("nope"); err == nil {
		t.Error("unknown campaign should error")
	}
}

// TestFig5aTrialSeedsMatchLegacyFormula pins the seed addressing of the
// fig5a sweep: seeds must stay Seed + j*1000 + i*10 + rep so results
// remain comparable with pre-campaign runs.
func TestFig5aTrialSeedsMatchLegacyFormula(t *testing.T) {
	s := NewSuite(QuickOptions())
	trials := s.fig5aTrials()
	wantLen := 6 * len(Fig5aBits) * s.Opt.Repeats
	if len(trials) != wantLen {
		t.Fatalf("fig5a enumerates %d trials, want %d", len(trials), wantLen)
	}
	id := 0
	for j := 0; j < 6; j++ {
		for i := range Fig5aBits {
			for rep := 0; rep < s.Opt.Repeats; rep++ {
				want := s.Opt.Seed + int64(j*1000+i*10+rep)
				if trials[id].Seed != want {
					t.Fatalf("trial %d seed %d, want %d", id, trials[id].Seed, want)
				}
				id++
			}
		}
	}
}

// TestCampaignShardsPartitionTrials: interleaved shards cover every
// trial exactly once for each suite campaign.
func TestCampaignShardsPartitionTrials(t *testing.T) {
	s := NewSuite(QuickOptions())
	for _, name := range CampaignNames() {
		c, err := s.Campaign(name)
		if err != nil {
			t.Fatal(err)
		}
		trials, err := c.Trials()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]int{}
		for i := 0; i < 3; i++ {
			for _, tr := range (campaign.Shard{Index: i, Count: 3}).Of(trials) {
				seen[tr.ID]++
			}
		}
		if len(seen) != len(trials) {
			t.Fatalf("%s: shards cover %d of %d trials", name, len(seen), len(trials))
		}
	}
}

func TestEpochsToReachTarget(t *testing.T) {
	curve := []core.EpochPoint{
		{Epoch: 0, Accuracy: 0.3},
		{Epoch: 1, Accuracy: 0.6},
		{Epoch: 2, Accuracy: 0.9},
	}
	if e := core.EpochsToReachTarget(curve, 0.55); e != 1 {
		t.Errorf("target 0.55 reached at %d, want 1", e)
	}
	if e := core.EpochsToReachTarget(curve, 0.95); e != -1 {
		t.Errorf("unreached target should give -1, got %d", e)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Errorf("trimFloat(3) = %q", trimFloat(3))
	}
	if trimFloat(0.5) != "0.5" {
		t.Errorf("trimFloat(0.5) = %q", trimFloat(0.5))
	}
}
