package experiments

import (
	"fmt"
	"io"
	"strconv"

	"falvolt/internal/campaign"
	"falvolt/internal/core"
	"falvolt/internal/spec"
)

// The "salvage" figure family: head-to-head (fault model × mitigation)
// comparison built on the core salvage campaign. One accuracy figure
// per fault model (rates on X, one series per mitigation plus the
// unmitigated floor), one retraining-cost figure and one
// per-inference-overhead figure across the whole grid. Registered here
// rather than in core because figures are an experiments concept; the
// campaign machinery itself lives in core so cluster workers build it
// without the figure layer.

// salvageKey reproduces the trial Key of one (model, mit, rate) cell.
func salvageKey(model, mit string, rate float64) string {
	return fmt.Sprintf("model=%s|mit=%s|rate=%s", model, mit,
		strconv.FormatFloat(rate, 'g', -1, 64))
}

// SalvageFigures folds merged salvage results into the figure family.
// Means fold per cell via campaign.GroupMean and combine in spec order,
// so the figures are bit-identical however the grid was sharded.
func SalvageFigures(d spec.SalvageCampaignSpec, results []campaign.Result) ([]*Figure, error) {
	d = d.Defaulted()
	labels := core.SalvageMitLabels(d.Mitigations)
	acc := campaign.GroupMean(results, "acc")
	raw := campaign.GroupMean(results, "raw")
	epochs := campaign.GroupMean(results, "epochs")
	mac := campaign.GroupMean(results, "mac")

	note := fmt.Sprintf("array=%dx%d repeats=%d batch=%d", d.Array, d.Array, d.Repeats, d.Batch)
	var figs []*Figure
	for _, model := range d.Models {
		fig := &Figure{
			ID:     "salvage-" + model,
			Title:  fmt.Sprintf("Salvaged accuracy vs %s fault rate, by mitigation", model),
			XLabel: "fault rate",
			YLabel: "accuracy",
			Notes:  []string{note},
		}
		// Unmitigated floor: the raw metric averaged over every
		// mitigation's cells at the same (model, rate) — each cell
		// injects its own seed-addressed instance, so this is the mean
		// over all of them, folded in spec order.
		floor := Series{Label: "unmitigated"}
		for _, rate := range d.Rates {
			sum := 0.0
			for _, mit := range labels {
				sum += raw[salvageKey(model, mit, rate)]
			}
			floor.X = append(floor.X, rate)
			floor.Y = append(floor.Y, sum/float64(len(labels)))
		}
		fig.Series = append(fig.Series, floor)
		for _, mit := range labels {
			s := Series{Label: mit}
			for _, rate := range d.Rates {
				s.X = append(s.X, rate)
				s.Y = append(s.Y, acc[salvageKey(model, mit, rate)])
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}

	// Cost figures: per-mitigation means across the whole grid.
	gridMean := func(m map[string]float64, mit string) float64 {
		sum, n := 0.0, 0
		for _, model := range d.Models {
			for _, rate := range d.Rates {
				sum += m[salvageKey(model, mit, rate)]
				n++
			}
		}
		return sum / float64(n)
	}
	costFig := func(id, title, ylabel string, m map[string]float64) *Figure {
		fig := &Figure{
			ID:     id,
			Title:  title,
			XLabel: "mitigation",
			YLabel: ylabel,
			XTicks: labels,
			Notes:  []string{note},
		}
		s := Series{Label: ylabel}
		for i, mit := range labels {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, gridMean(m, mit))
		}
		fig.Series = append(fig.Series, s)
		return fig
	}
	figs = append(figs,
		costFig("salvage-epochs", "Retraining epochs spent per salvage", "epochs", epochs),
		costFig("salvage-mac", "Per-inference MAC cycles after salvage", "mac-cycles", mac),
	)
	return figs, nil
}

func init() {
	spec.Register("salvage", func(s *spec.Spec, opt spec.BuildOpts) (*spec.Built, error) {
		if s.Salvage == nil {
			return nil, fmt.Errorf("experiments: spec kind %q needs a salvage section", s.Kind)
		}
		d := s.Salvage.Defaulted()
		cam, err := core.SalvageCampaign(*s.Salvage, s.EffectiveSeed(),
			core.SyntheticYieldFingerprint(d.BaseEpochs),
			core.SyntheticSalvageBuild(d, s.EffectiveSeed(), opt.Log))
		if err != nil {
			return nil, err
		}
		figures := func(results []campaign.Result) ([]*Figure, error) {
			return SalvageFigures(d, results)
		}
		return &spec.Built{
			Campaign: cam,
			Render: func(w io.Writer, results []campaign.Result) error {
				figs, err := figures(results)
				if err != nil {
					return err
				}
				for _, f := range figs {
					f.Print(w)
				}
				return nil
			},
			JSON: func(results []campaign.Result) (any, error) {
				return figures(results)
			},
		}, nil
	})
}
