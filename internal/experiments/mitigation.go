package experiments

import (
	"fmt"
	"math/rand"

	"falvolt/internal/core"
	"falvolt/internal/faults"
)

// MitigationRates are the faulty-PE fractions of the mitigation study.
var MitigationRates = []float64{0.10, 0.30, 0.60}

// Fig2Vths is the fixed-threshold sweep of the motivational case study.
var Fig2Vths = []float64{0.45, 0.5, 0.55, 0.7}

// mitigationFaultMap draws the fault map shared by all methods for one
// (dataset, rate) cell so the comparison is apples-to-apples: worst-case
// MSB stuck-at-1 faults, rate fraction of PEs.
func (s *Suite) mitigationFaultMap(datasetIdx int, rate float64) (*faults.Map, error) {
	return faults.GenerateRate(s.Opt.ArrayRows, s.Opt.ArrayCols, rate, faults.GenSpec{
		BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(s.Opt.Seed+int64(4000+datasetIdx*100)+int64(rate*1000))))
}

// mitigateJob runs one Mitigate call on a private model copy.
func (s *Suite) mitigateJob(bl *Baseline, fm *faults.Map, cfg core.Config) (*core.Report, error) {
	model, err := bl.BuildModel()
	if err != nil {
		return nil, err
	}
	if err := model.Net.LoadState(bl.State); err != nil {
		return nil, err
	}
	arr := s.NewArray()
	test := bl.TestSlice(s.Opt.EvalSamples)
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	cfg.Silent = true
	return core.Mitigate(model, arr, fm, bl.Data.Train, test, cfg)
}

// Fig2 reproduces the motivational case study: retraining with a fixed
// global threshold voltage at several candidate values, with 30% and 60%
// of PEs faulty, on MNIST and DVS Gesture. The spread across thresholds
// motivates learning the threshold instead of sweeping it.
func (s *Suite) Fig2() (*Figure, error) {
	names := []string{"MNIST", "DVSGesture"}
	epochs := s.Opt.RetrainEpochs / 2
	if epochs < 2 {
		epochs = 2
	}
	fig := &Figure{
		ID: "Fig2", Title: "Fixed-threshold retraining sweep (motivation)",
		XLabel: "Vth", YLabel: "accuracy",
		Notes: []string{fmt.Sprintf("FaPIT with forced global threshold, %d retrain epochs, MSB sa1 fault maps", epochs)},
	}
	type job struct {
		dsIdx int
		bl    *Baseline
		rate  float64
		vth   float64
	}
	var jobs []job
	for d, name := range names {
		bl, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		for _, rate := range []float64{0.30, 0.60} {
			for _, vth := range Fig2Vths {
				jobs = append(jobs, job{d, bl, rate, vth})
			}
		}
	}
	results := make([]float64, len(jobs))
	errs := make([]error, len(jobs))
	parallelMap(len(jobs), func(worker, j int) {
		jb := jobs[j]
		fm, err := s.mitigationFaultMap(jb.dsIdx, jb.rate)
		if err != nil {
			errs[j] = err
			return
		}
		rep, err := s.mitigateJob(jb.bl, fm, core.Config{
			Method: core.FaPIT, Epochs: epochs, FixedVth: jb.vth,
			Rng: rand.New(rand.NewSource(s.Opt.Seed + int64(j))),
		})
		if err != nil {
			errs[j] = err
			return
		}
		results[j] = rep.Accuracy
		s.logf("fig2 %s rate %.0f%% vth %.2f: %.3f\n", jb.bl.Name, jb.rate*100, jb.vth, rep.Accuracy)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Group into series keyed by (dataset, rate).
	xs := append([]float64(nil), Fig2Vths...)
	for d, name := range names {
		for _, rate := range []float64{0.30, 0.60} {
			ys := make([]float64, 0, len(Fig2Vths))
			for j, jb := range jobs {
				if jb.dsIdx == d && jb.rate == rate {
					ys = append(ys, results[j])
				}
			}
			fig.Series = append(fig.Series, Series{
				Label: fmt.Sprintf("%s@%.0f%%", name, rate*100),
				X:     xs, Y: ys,
			})
		}
	}
	return fig, nil
}

// mitigationResults caches the shared Fig. 6/7/8 computation.
type mitigationResults struct {
	fig6 []*Figure
	fig7 *Figure
	fig8 []*Figure
}

// runMitigations executes the full mitigation study once: for every
// dataset and fault rate, FaP, FaPIT and FalVolt from the same baseline
// and the same fault map; convergence curves tracked at the 30% rate.
func (s *Suite) runMitigations() (*mitigationResults, error) {
	s.mitOnce.Do(func() {
		s.mitRes, s.mitErr = s.computeMitigations()
	})
	return s.mitRes, s.mitErr
}

func (s *Suite) computeMitigations() (*mitigationResults, error) {
	bls, err := s.AllDatasets()
	if err != nil {
		return nil, err
	}
	type job struct {
		dsIdx  int
		bl     *Baseline
		rate   float64
		method core.Method
	}
	var jobs []job
	for d, bl := range bls {
		for _, rate := range MitigationRates {
			for _, m := range []core.Method{core.FaP, core.FaPIT, core.FalVolt} {
				jobs = append(jobs, job{d, bl, rate, m})
			}
		}
	}
	reports := make([]*core.Report, len(jobs))
	errs := make([]error, len(jobs))
	parallelMap(len(jobs), func(worker, j int) {
		jb := jobs[j]
		fm, err := s.mitigationFaultMap(jb.dsIdx, jb.rate)
		if err != nil {
			errs[j] = err
			return
		}
		cfg := core.Config{
			Method: jb.method, Epochs: s.Opt.RetrainEpochs,
			Rng: rand.New(rand.NewSource(s.Opt.Seed + int64(j*17))),
			// Curves for Fig. 8 at the paper's 30% operating point.
			TrackCurve:    jb.rate == 0.30 && jb.method != core.FaP,
			CurveEvalSize: s.Opt.EvalSamples,
		}
		rep, err := s.mitigateJob(jb.bl, fm, cfg)
		if err != nil {
			errs[j] = err
			return
		}
		reports[j] = rep
		s.logf("fig7 %s %s rate %.0f%%: acc %.3f (pruned %.1f%%)\n",
			jb.bl.Name, jb.method, jb.rate*100, rep.Accuracy, rep.PrunedFraction*100)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	find := func(d int, rate float64, m core.Method) *core.Report {
		for j, jb := range jobs {
			if jb.dsIdx == d && jb.rate == rate && jb.method == m {
				return reports[j]
			}
		}
		return nil
	}

	res := &mitigationResults{}

	// Fig. 7: accuracy per method per rate, one series per (dataset, method).
	fig7 := &Figure{
		ID: "Fig7", Title: "Mitigation comparison: FaP vs FaPIT vs FalVolt",
		XLabel: "faultRate", YLabel: "accuracy",
		Notes: []string{fmt.Sprintf("%d retrain epochs, MSB sa1 fault maps shared across methods", s.Opt.RetrainEpochs)},
	}
	xs := append([]float64(nil), MitigationRates...)
	for d, bl := range bls {
		for _, m := range []core.Method{core.FaP, core.FaPIT, core.FalVolt} {
			ys := make([]float64, len(MitigationRates))
			for i, rate := range MitigationRates {
				if rep := find(d, rate, m); rep != nil {
					ys[i] = rep.Accuracy
				}
			}
			fig7.Series = append(fig7.Series, Series{
				Label: fmt.Sprintf("%s-%s", bl.Name, m), X: xs, Y: ys,
			})
		}
	}
	res.fig7 = fig7

	// Fig. 6: FalVolt's optimized per-layer thresholds, one figure per
	// dataset (hidden layers only, as the paper reports).
	for d, bl := range bls {
		names := bl.Model.SpikingNames
		fig := &Figure{
			ID:     "Fig6-" + bl.Name,
			Title:  fmt.Sprintf("Optimized threshold voltages per layer (%s)", bl.Name),
			XLabel: "layer", YLabel: "Vth",
			XTicks: names[1:], // hidden layers; encoder excluded per paper
		}
		xsl := make([]float64, len(names)-1)
		for i := range xsl {
			xsl[i] = float64(i)
		}
		for _, rate := range MitigationRates {
			rep := find(d, rate, core.FalVolt)
			if rep == nil || len(rep.Vths) != len(names) {
				continue
			}
			fig.Series = append(fig.Series, Series{
				Label: fmt.Sprintf("%.0f%%", rate*100), X: xsl, Y: rep.Vths[1:],
			})
		}
		res.fig6 = append(res.fig6, fig)
	}

	// Fig. 8: convergence curves at 30% faults, one figure per dataset.
	for d, bl := range bls {
		fig := &Figure{
			ID:     "Fig8-" + bl.Name,
			Title:  fmt.Sprintf("Retraining convergence at 30%% faulty PEs (%s)", bl.Name),
			XLabel: "epoch", YLabel: "accuracy",
			Notes: []string{fmt.Sprintf("baseline accuracy %.3f", bl.Acc)},
		}
		for _, m := range []core.Method{core.FaPIT, core.FalVolt} {
			rep := find(d, 0.30, m)
			if rep == nil {
				continue
			}
			var xsc, ysc []float64
			for _, p := range rep.Curve {
				xsc = append(xsc, float64(p.Epoch))
				ysc = append(ysc, p.Accuracy)
			}
			fig.Series = append(fig.Series, Series{Label: m.String(), X: xsc, Y: ysc})
		}
		res.fig8 = append(res.fig8, fig)
	}
	return res, nil
}

// Fig6 returns the optimized-threshold figures (one per dataset).
func (s *Suite) Fig6() ([]*Figure, error) {
	r, err := s.runMitigations()
	if err != nil {
		return nil, err
	}
	return r.fig6, nil
}

// Fig7 returns the mitigation-comparison figure.
func (s *Suite) Fig7() (*Figure, error) {
	r, err := s.runMitigations()
	if err != nil {
		return nil, err
	}
	return r.fig7, nil
}

// Fig8 returns the convergence-curve figures (one per dataset).
func (s *Suite) Fig8() ([]*Figure, error) {
	r, err := s.runMitigations()
	if err != nil {
		return nil, err
	}
	return r.fig8, nil
}
