package experiments

import (
	"math/rand"

	"falvolt/internal/campaign"
	"falvolt/internal/core"
	"falvolt/internal/faults"
)

// MitigationRates are the faulty-PE fractions of the mitigation study.
var MitigationRates = []float64{0.10, 0.30, 0.60}

// Fig2Vths is the fixed-threshold sweep of the motivational case study.
var Fig2Vths = []float64{0.45, 0.5, 0.55, 0.7}

// mitigationFaultMap draws the fault map shared by all methods for one
// (dataset, rate) cell so the comparison is apples-to-apples: worst-case
// MSB stuck-at-1 faults, rate fraction of PEs.
func (s *Suite) mitigationFaultMap(datasetIdx int, rate float64) (*faults.Map, error) {
	return faults.GenerateRate(s.Opt.ArrayRows, s.Opt.ArrayCols, rate, faults.GenSpec{
		BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(s.Opt.Seed+int64(4000+datasetIdx*100)+int64(rate*1000))))
}

// mitigateJob runs one Mitigate call on a private model copy.
func (s *Suite) mitigateJob(bl *Baseline, fm *faults.Map, cfg core.Config) (*core.Report, error) {
	model, err := bl.BuildModel()
	if err != nil {
		return nil, err
	}
	if err := model.Net.LoadState(bl.State); err != nil {
		return nil, err
	}
	arr := s.NewArray()
	test := bl.TestSlice(s.Opt.EvalSamples)
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	cfg.Replicas = s.Opt.TrainReplicas
	cfg.MicroBatch = s.Opt.TrainMicroBatch
	return core.Mitigate(model, arr, fm, bl.Data.Train, test, cfg)
}

// Fig2 reproduces the motivational case study: retraining with a fixed
// global threshold voltage at several candidate values, with 30% and 60%
// of PEs faulty, on MNIST and DVS Gesture. The spread across thresholds
// motivates learning the threshold instead of sweeping it. Runs as the
// "fig2" campaign (see campaign.go); use RunCampaign/Figures directly to
// shard or checkpoint it.
func (s *Suite) Fig2() (*Figure, error) {
	return oneFigure(s.campaignFigures("fig2"))
}

// mitigationResults caches the shared Fig. 6/7/8 computation.
type mitigationResults struct {
	fig6 []*Figure
	fig7 *Figure
	fig8 []*Figure
}

// runMitigations executes the full mitigation study once: for every
// dataset and fault rate, FaP, FaPIT and FalVolt from the same baseline
// and the same fault map; convergence curves tracked at the 30% rate.
// The study runs as the "mitigation" campaign.
func (s *Suite) runMitigations() (*mitigationResults, error) {
	s.mitOnce.Do(func() {
		s.mitRes, s.mitErr = s.computeMitigations()
	})
	return s.mitRes, s.mitErr
}

func (s *Suite) computeMitigations() (*mitigationResults, error) {
	rr, err := s.RunCampaign("mitigation", campaign.Options{})
	if err != nil {
		return nil, err
	}
	return s.mitigationFigures(rr.Results)
}

// Fig6 returns the optimized-threshold figures (one per dataset).
func (s *Suite) Fig6() ([]*Figure, error) {
	r, err := s.runMitigations()
	if err != nil {
		return nil, err
	}
	return r.fig6, nil
}

// Fig7 returns the mitigation-comparison figure.
func (s *Suite) Fig7() (*Figure, error) {
	r, err := s.runMitigations()
	if err != nil {
		return nil, err
	}
	return r.fig7, nil
}

// Fig8 returns the convergence-curve figures (one per dataset).
func (s *Suite) Fig8() ([]*Figure, error) {
	r, err := s.runMitigations()
	if err != nil {
		return nil, err
	}
	return r.fig8, nil
}
