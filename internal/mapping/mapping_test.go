package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"falvolt/internal/faults"
	"falvolt/internal/tensor"
)

func TestDeriveSingleTile(t *testing.T) {
	// 4x4 array, 4x4 weights: weight (m,k) maps to PE(k, m) one-to-one.
	fm := faults.NewMap(4, 4)
	_ = fm.Add(faults.StuckAtFault{Row: 2, Col: 1, Bit: 31, Pol: faults.StuckAt1})
	mask, err := Derive(fm, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mask.Count() != 1 {
		t.Fatalf("Count = %d, want 1", mask.Count())
	}
	// Weight w[m=1][k=2] is the only pruned one.
	if !mask.Pruned[1*4+2] {
		t.Error("expected weight (m=1,k=2) pruned")
	}
}

func TestDeriveReusePrunesMultipleWeights(t *testing.T) {
	// K=8 on a 4x4 array: two K tiles, so one faulty PE prunes two weights
	// per mapped output column (the paper's array-reuse effect).
	fm := faults.NewMap(4, 4)
	_ = fm.Add(faults.StuckAtFault{Row: 1, Col: 0, Bit: 31, Pol: faults.StuckAt1})
	mask, err := Derive(fm, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Columns m ∈ {0, 4} map to PE col 0; rows k ∈ {1, 5} map to PE row 1.
	want := map[[2]int]bool{{0, 1}: true, {0, 5}: true, {4, 1}: true, {4, 5}: true}
	if mask.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", mask.Count(), len(want))
	}
	for key := range want {
		if !mask.Pruned[key[0]*8+key[1]] {
			t.Errorf("expected weight (m=%d,k=%d) pruned", key[0], key[1])
		}
	}
}

func TestDeriveErrors(t *testing.T) {
	fm := faults.NewMap(4, 4)
	if _, err := Derive(fm, 0, 4); err == nil {
		t.Error("zero M should error")
	}
	if _, err := Derive(fm, 4, -1); err == nil {
		t.Error("negative K should error")
	}
}

func TestFractionMatchesFaultRateSingleTileFullUse(t *testing.T) {
	// When the weight matrix exactly covers the array once, the pruned
	// fraction equals the PE fault rate.
	rng := rand.New(rand.NewSource(11))
	fm, err := faults.Generate(8, 8, faults.GenSpec{NumFaulty: 16, BitMode: faults.MSBBits}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := Derive(fm, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mask.Fraction() != fm.FaultRate() {
		t.Errorf("pruned fraction %v != fault rate %v", mask.Fraction(), fm.FaultRate())
	}
}

func TestApplyZeroesOnlyPruned(t *testing.T) {
	fm := faults.NewMap(2, 2)
	_ = fm.Add(faults.StuckAtFault{Row: 0, Col: 0, Bit: 5, Pol: faults.StuckAt0})
	mask, err := Derive(fm, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	mask.Apply(w)
	// Pruned: (m=0,k=0) only.
	if w.Data[0] != 0 {
		t.Error("pruned weight not zeroed")
	}
	if w.Data[1] != 2 || w.Data[2] != 3 || w.Data[3] != 4 {
		t.Errorf("unpruned weights modified: %v", w.Data)
	}
}

func TestApplyPanicsOnSizeMismatch(t *testing.T) {
	mask := &PruneMask{M: 2, K: 2, Pruned: make([]bool, 4)}
	defer func() {
		if recover() == nil {
			t.Error("size mismatch should panic")
		}
	}()
	mask.Apply(tensor.New(3, 3))
}

func TestUnion(t *testing.T) {
	a := &PruneMask{M: 1, K: 3, Pruned: []bool{true, false, false}}
	b := &PruneMask{M: 1, K: 3, Pruned: []bool{false, false, true}}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 {
		t.Errorf("union count = %d, want 2", a.Count())
	}
	c := &PruneMask{M: 2, K: 2, Pruned: make([]bool, 4)}
	if err := a.Union(c); err == nil {
		t.Error("shape mismatch union should error")
	}
}

func TestDeriveConsistentWithPERowCol(t *testing.T) {
	// Property: a weight is pruned iff its PE (k mod R, m mod C) is faulty.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 4+rng.Intn(5), 4+rng.Intn(5)
		fm, err := faults.Generate(rows, cols, faults.GenSpec{NumFaulty: 1 + rng.Intn(rows*cols/2), BitMode: faults.RandomBit, PolMode: faults.RandomPol}, rng)
		if err != nil {
			return false
		}
		faulty := make(map[[2]int]bool)
		for _, f := range fm.Faults {
			faulty[[2]int{f.Row, f.Col}] = true
		}
		m, k := 1+rng.Intn(20), 1+rng.Intn(20)
		mask, err := Derive(fm, m, k)
		if err != nil {
			return false
		}
		for mi := 0; mi < m; mi++ {
			for ki := 0; ki < k; ki++ {
				want := faulty[[2]int{ki % rows, mi % cols}]
				if mask.Pruned[mi*k+ki] != want {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}
