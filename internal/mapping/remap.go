package mapping

import (
	"sort"

	"falvolt/internal/faults"
	"falvolt/internal/tensor"
)

// Remap is a fault-aware weight-to-PE permutation in the style of
// ReSpawn (Putra et al.): significant weight rows/columns are steered
// away from faulty cells by reordering which logical GEMM line each
// physical array slot serves. MPerm[j] is the logical output row stored
// in physical column slot j; KPerm[i] is the logical input streamed
// into physical row slot i. A nil perm is the identity on that axis.
type Remap struct {
	MPerm []int
	KPerm []int
}

// Identity reports whether the remap leaves the layout unchanged.
func (r *Remap) Identity() bool {
	return r == nil || (r.MPerm == nil && r.KPerm == nil)
}

// DeriveRemap computes a remap for one GEMM layer of shape m x k mapped
// onto the faulted array described by fm (logical row ki -> PE row
// ki%fm.Rows, logical column mi -> PE column mi%fm.Cols, matching
// Derive). Fault severity per PE line is the sum of 2^Bit over its
// stuck bits, so a fault in the sign or integer bits outweighs any
// number of fractional-bit faults. Weight significance per logical line
// is the sum of |w|; the most significant lines are assigned to the
// least severe slots. Axes with no faulty line keep the identity so a
// clean array yields an identity remap (the no-op invariant).
func DeriveRemap(fm *faults.Map, m, k int, w *tensor.Tensor) *Remap {
	if fm == nil || len(fm.Faults) == 0 {
		return &Remap{}
	}
	rowSev := make([]float64, fm.Rows)
	colSev := make([]float64, fm.Cols)
	for _, f := range fm.Faults {
		sev := float64(uint64(1) << f.Bit)
		rowSev[f.Row] += sev
		colSev[f.Col] += sev
	}
	r := &Remap{}
	if anyPositive(colSev) {
		sigM := make([]float64, m)
		for mi := 0; mi < m; mi++ {
			row := w.Data[mi*k : (mi+1)*k]
			for _, v := range row {
				sigM[mi] += abs(v)
			}
		}
		r.MPerm = assign(m, fm.Cols, colSev, sigM)
	}
	if anyPositive(rowSev) {
		sigK := make([]float64, k)
		for mi := 0; mi < m; mi++ {
			row := w.Data[mi*k : (mi+1)*k]
			for ki, v := range row {
				sigK[ki] += abs(v)
			}
		}
		r.KPerm = assign(k, fm.Rows, rowSev, sigK)
	}
	return r
}

// assign pairs the n logical lines with the n physical slots: slots
// sorted by ascending severity of the PE line they land on, logicals by
// descending significance, ties broken by index so the result is
// deterministic. Returns perm with perm[slot] = logical.
func assign(n, lines int, lineSev, sig []float64) []int {
	slots := make([]int, n)
	for i := range slots {
		slots[i] = i
	}
	sort.SliceStable(slots, func(a, b int) bool {
		return lineSev[slots[a]%lines] < lineSev[slots[b]%lines]
	})
	logical := make([]int, n)
	for i := range logical {
		logical[i] = i
	}
	sort.SliceStable(logical, func(a, b int) bool {
		return sig[logical[a]] > sig[logical[b]]
	})
	perm := make([]int, n)
	for i, s := range slots {
		perm[s] = logical[i]
	}
	return perm
}

func anyPositive(xs []float64) bool {
	for _, x := range xs {
		if x > 0 {
			return true
		}
	}
	return false
}

func abs(x float32) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}
