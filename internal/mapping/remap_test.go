package mapping

import (
	"reflect"
	"sort"
	"testing"

	"falvolt/internal/faults"
	"falvolt/internal/tensor"
)

// ramp builds an m x k weight tensor whose row significance strictly
// increases with the row index: row mi is filled with mi+1.
func ramp(m, k int) *tensor.Tensor {
	w := tensor.New(m, k)
	for mi := 0; mi < m; mi++ {
		for ki := 0; ki < k; ki++ {
			w.Data[mi*k+ki] = float32(mi + 1)
		}
	}
	return w
}

func TestDeriveRemapIdentityOnCleanMap(t *testing.T) {
	w := ramp(8, 8)
	if r := DeriveRemap(nil, 8, 8, w); !r.Identity() {
		t.Fatalf("nil fault map should give identity remap, got %+v", r)
	}
	if r := DeriveRemap(faults.NewMap(4, 4), 8, 8, w); !r.Identity() {
		t.Fatalf("empty fault map should give identity remap, got %+v", r)
	}
	var nilRemap *Remap
	if !nilRemap.Identity() {
		t.Fatal("nil *Remap should report identity")
	}
}

func validPerm(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation of 0..%d: %v", n-1, perm)
		}
		seen[v] = true
	}
}

func TestDeriveRemapPermutationAndAxes(t *testing.T) {
	fm := faults.NewMap(4, 4)
	// Column-only fault: row axis stays identity.
	if err := fm.Add(faults.StuckAtFault{Row: 0, Col: 2, Bit: 30, Pol: faults.StuckAt1}); err != nil {
		t.Fatal(err)
	}
	// A fault touches both a row line and a column line, so both severity
	// vectors pick it up; MPerm and KPerm are both derived here.
	m, k := 9, 7
	r := DeriveRemap(fm, m, k, ramp(m, k))
	validPerm(t, r.MPerm, m)
	validPerm(t, r.KPerm, k)
	if r.Identity() {
		t.Fatal("faulted map should not derive the identity")
	}
}

// TestDeriveRemapSeverityOrdering checks the core ReSpawn-style property:
// the most significant logical lines land on the least severe physical
// lines. With a single high-bit fault in column 2 of a 4-wide array and a
// strictly increasing row-significance ramp, the logical rows assigned to
// physical slots mapping onto column 2 (slots 2, 6, ...) must be exactly
// the least significant ones.
func TestDeriveRemapSeverityOrdering(t *testing.T) {
	fm := faults.NewMap(4, 4)
	if err := fm.Add(faults.StuckAtFault{Row: 3, Col: 2, Bit: 31, Pol: faults.StuckAt1}); err != nil {
		t.Fatal(err)
	}
	const m, k = 8, 8
	w := ramp(m, k)
	r := DeriveRemap(fm, m, k, w)
	validPerm(t, r.MPerm, m)

	var onFaulty, onClean []int
	for slot, logical := range r.MPerm {
		if slot%fm.Cols == 2 {
			onFaulty = append(onFaulty, logical)
		} else {
			onClean = append(onClean, logical)
		}
	}
	// Significance of row mi is mi+1, so the two least significant logical
	// rows (0 and 1) must absorb the faulty column's two slots.
	sort.Ints(onFaulty)
	if !reflect.DeepEqual(onFaulty, []int{0, 1}) {
		t.Fatalf("faulty column got logical rows %v, want the least significant [0 1]", onFaulty)
	}
	for _, logical := range onClean {
		if logical < 2 {
			t.Fatalf("clean slots received low-significance row %d; MPerm=%v", logical, r.MPerm)
		}
	}

	// KPerm: the fault is in PE row 3, so logical inputs on slots hitting
	// row 3 (slots 3 and 7) must be the least significant columns. The ramp
	// gives every column equal significance, so ordering falls back to the
	// deterministic index tie-break — just require a valid permutation and
	// determinism across repeated derivations.
	validPerm(t, r.KPerm, k)
	again := DeriveRemap(fm, m, k, w)
	if !reflect.DeepEqual(r, again) {
		t.Fatalf("DeriveRemap not deterministic: %+v vs %+v", r, again)
	}
}

// TestDeriveRemapTieBreakDeterminism: with every line equally significant
// and equally severe faults on two columns, the assignment must still be a
// stable, reproducible permutation (SliceStable + index tie-breaks).
func TestDeriveRemapTieBreakDeterminism(t *testing.T) {
	fm := faults.NewMap(4, 4)
	for _, col := range []int{1, 3} {
		if err := fm.Add(faults.StuckAtFault{Row: 0, Col: col, Bit: 5, Pol: faults.StuckAt0}); err != nil {
			t.Fatal(err)
		}
	}
	w := tensor.New(6, 6)
	for i := range w.Data {
		w.Data[i] = 1
	}
	first := DeriveRemap(fm, 6, 6, w)
	for i := 0; i < 3; i++ {
		if got := DeriveRemap(fm, 6, 6, w); !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d differs: %+v vs %+v", i, first, got)
		}
	}
	validPerm(t, first.MPerm, 6)
	validPerm(t, first.KPerm, 6)
}
