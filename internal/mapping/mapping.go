// Package mapping derives which logical network weights land on faulty
// processing elements of a systolic array, producing the prune masks that
// drive fault-aware pruning (FaP) and the FalVolt retraining pipeline.
//
// Under the weight-stationary dataflow (see internal/systolic), the weight
// w[m][k] of a layer lowered to a GEMM with M outputs and K reduction
// inputs is pre-stored in PE(k mod Rows, m mod Cols) for every tile that
// covers it. Because the array is reused across tiles — and across layers,
// timesteps and samples — bypassing one faulty PE prunes ⌈K/Rows⌉·⌈M/Cols⌉
// weights of every layer mapped onto it (paper §IV).
package mapping

import (
	"fmt"

	"falvolt/internal/faults"
	"falvolt/internal/tensor"
)

// PruneMask marks, for one layer's [M, K] weight matrix, the weights that
// map onto faulty PEs and must be pruned (set to zero, PE bypassed).
type PruneMask struct {
	M, K   int
	Pruned []bool // row-major [M*K]
}

// Derive computes the prune mask of an [m, k] weight matrix for the given
// fault map, using the same weight-stationary placement as the simulator.
func Derive(fm *faults.Map, m, k int) (*PruneMask, error) {
	if m <= 0 || k <= 0 {
		return nil, fmt.Errorf("mapping: invalid GEMM shape %dx%d", m, k)
	}
	if fm.Rows <= 0 || fm.Cols <= 0 {
		return nil, fmt.Errorf("mapping: invalid array %dx%d", fm.Rows, fm.Cols)
	}
	faultyPE := make([]bool, fm.Rows*fm.Cols)
	for _, f := range fm.Faults {
		faultyPE[f.Row*fm.Cols+f.Col] = true
	}
	// Precompute per-k faulty rows and per-m faulty columns once, then
	// combine; avoids the full M*K*faults scan.
	rowOf := make([]int, k)
	for ki := 0; ki < k; ki++ {
		rowOf[ki] = ki % fm.Rows
	}
	mask := &PruneMask{M: m, K: k, Pruned: make([]bool, m*k)}
	for mi := 0; mi < m; mi++ {
		col := mi % fm.Cols
		base := mi * k
		for ki := 0; ki < k; ki++ {
			if faultyPE[rowOf[ki]*fm.Cols+col] {
				mask.Pruned[base+ki] = true
			}
		}
	}
	return mask, nil
}

// Count returns the number of pruned weights.
func (p *PruneMask) Count() int {
	n := 0
	for _, b := range p.Pruned {
		if b {
			n++
		}
	}
	return n
}

// Fraction returns the pruned fraction of the layer's weights.
func (p *PruneMask) Fraction() float64 {
	if len(p.Pruned) == 0 {
		return 0
	}
	return float64(p.Count()) / float64(len(p.Pruned))
}

// Apply zeroes the pruned entries of a weight tensor shaped [M, K]
// (Algorithm 1 lines 2 and 13: before retraining and at the end of every
// retraining epoch).
func (p *PruneMask) Apply(w *tensor.Tensor) {
	if w.Len() != len(p.Pruned) {
		panic(fmt.Sprintf("mapping: weight size %d does not match mask %dx%d", w.Len(), p.M, p.K))
	}
	for i, pr := range p.Pruned {
		if pr {
			w.Data[i] = 0
		}
	}
}

// ApplyToGrad zeroes gradients of pruned weights so optimizer steps cannot
// resurrect them between epoch-end re-prunings.
func (p *PruneMask) ApplyToGrad(g *tensor.Tensor) { p.Apply(g) }

// Union merges another mask over the same shape into p (weights pruned by
// either mask end up pruned).
func (p *PruneMask) Union(o *PruneMask) error {
	if p.M != o.M || p.K != o.K {
		return fmt.Errorf("mapping: cannot union masks %dx%d and %dx%d", p.M, p.K, o.M, o.K)
	}
	for i, b := range o.Pruned {
		if b {
			p.Pruned[i] = true
		}
	}
	return nil
}
