package faults

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransientStrikeActiveWindow(t *testing.T) {
	s := TransientStrike{Row: 1, Col: 1, Bit: 30, Pol: StuckAt1, Start: 3, Duration: 2}
	for tt, want := range map[int]bool{0: false, 2: false, 3: true, 4: true, 5: false, 100: false} {
		if got := s.ActiveAt(tt); got != want {
			t.Errorf("ActiveAt(%d) = %v, want %v", tt, got, want)
		}
	}
}

func TestTransientScheduleAddValidation(t *testing.T) {
	s := NewTransientSchedule(4, 4)
	bad := []TransientStrike{
		{Row: 4, Col: 0, Duration: 1},                     // row out of range
		{Row: 0, Col: -1, Duration: 1},                    // negative col
		{Row: 0, Col: 0, Bit: 32, Duration: 1},            // bit outside word
		{Row: 0, Col: 0, Start: -1, Duration: 1},          // negative start
		{Row: 0, Col: 0, Duration: 0},                     // zero duration
		{Row: 3, Col: 3, Bit: 31, Start: 5, Duration: -2}, // negative duration
	}
	for _, st := range bad {
		if err := s.Add(st); err == nil {
			t.Errorf("Add(%+v) should error", st)
		}
	}
	if err := s.Add(TransientStrike{Row: 3, Col: 3, Bit: 31, Pol: StuckAt0, Start: 0, Duration: 1}); err != nil {
		t.Errorf("valid strike rejected: %v", err)
	}
	// Validate must catch the same defects on hand-built schedules.
	hand := &TransientSchedule{Rows: 4, Cols: 4, Strikes: []TransientStrike{{Row: 0, Col: 0, Duration: 0}}}
	if err := hand.Validate(); err == nil {
		t.Error("Validate accepted a zero-duration strike")
	}
	if err := (&TransientSchedule{Rows: 0, Cols: 4}).Validate(); err == nil {
		t.Error("Validate accepted an empty grid")
	}
}

func TestTransientScheduleCountsAndHorizon(t *testing.T) {
	s := NewTransientSchedule(8, 8)
	must := func(st TransientStrike) {
		t.Helper()
		if err := s.Add(st); err != nil {
			t.Fatal(err)
		}
	}
	must(TransientStrike{Row: 0, Col: 0, Bit: 31, Pol: StuckAt1, Start: 1, Duration: 2}) // active t1,t2
	must(TransientStrike{Row: 1, Col: 2, Bit: 30, Pol: StuckAt0, Start: 2, Duration: 1}) // active t2
	must(TransientStrike{Row: 7, Col: 7, Bit: 24, Pol: StuckAt1, Start: 5, Duration: 3}) // active t5..t7
	for tt, want := range map[int]int{0: 0, 1: 1, 2: 2, 3: 0, 5: 1, 7: 1, 8: 0} {
		if got := s.ActiveCount(tt); got != want {
			t.Errorf("ActiveCount(%d) = %d, want %d", tt, got, want)
		}
	}
	if got := s.Horizon(); got != 8 {
		t.Errorf("Horizon = %d, want 8", got)
	}
	if got := NewTransientSchedule(4, 4).Horizon(); got != 0 {
		t.Errorf("empty schedule Horizon = %d, want 0", got)
	}
}

func TestActiveMasksComposeAndZero(t *testing.T) {
	s := NewTransientSchedule(2, 2)
	must := func(st TransientStrike) {
		t.Helper()
		if err := s.Add(st); err != nil {
			t.Fatal(err)
		}
	}
	// Two strikes on the same PE active at t=0: bits compose; one sa0
	// strike elsewhere.
	must(TransientStrike{Row: 0, Col: 1, Bit: 2, Pol: StuckAt1, Start: 0, Duration: 1})
	must(TransientStrike{Row: 0, Col: 1, Bit: 5, Pol: StuckAt1, Start: 0, Duration: 2})
	must(TransientStrike{Row: 1, Col: 0, Bit: 4, Pol: StuckAt0, Start: 0, Duration: 1})
	or := make([]uint32, 4)
	cl := make([]uint32, 4)
	s.ActiveMasks(0, or, cl)
	if or[1] != 1<<2|1<<5 {
		t.Errorf("or[0,1] = %#x, want bits 2+5", or[1])
	}
	if cl[2] != 1<<4 {
		t.Errorf("clear[1,0] = %#x, want bit 4", cl[2])
	}
	// At t=1 only the duration-2 strike remains, and stale entries from
	// the previous fill must be zeroed.
	s.ActiveMasks(1, or, cl)
	if or[1] != 1<<5 {
		t.Errorf("t=1 or[0,1] = %#x, want bit 5 only", or[1])
	}
	if cl[2] != 0 {
		t.Errorf("t=1 clear[1,0] = %#x, want 0 (stale mask not cleared)", cl[2])
	}
}

func TestGenerateTransientDeterministicDistinct(t *testing.T) {
	spec := TransientSpec{Strikes: 20, BitMode: MSBBits, Pol: StuckAt1, PolMode: RandomPol, Start: 3, MaxDuration: 4}
	a, err := GenerateTransient(8, 8, spec, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTransient(8, 8, spec, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Strikes) != 20 || len(b.Strikes) != 20 {
		t.Fatalf("strike counts %d/%d, want 20", len(a.Strikes), len(b.Strikes))
	}
	seen := map[[2]int]bool{}
	for i, st := range a.Strikes {
		if st != b.Strikes[i] {
			t.Errorf("strike %d differs under same seed: %v vs %v", i, st, b.Strikes[i])
		}
		pe := [2]int{st.Row, st.Col}
		if seen[pe] {
			t.Errorf("PE (%d,%d) struck twice", st.Row, st.Col)
		}
		seen[pe] = true
		if st.Start != 3 {
			t.Errorf("strike %d start %d, want 3", i, st.Start)
		}
		if st.Duration < 1 || st.Duration > 4 {
			t.Errorf("strike %d duration %d outside [1,4]", i, st.Duration)
		}
		if st.Bit < 24 || st.Bit > 31 {
			t.Errorf("strike %d bit %d outside MSB range", i, st.Bit)
		}
	}
}

func TestGenerateTransientErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateTransient(2, 2, TransientSpec{Strikes: 5}, rng); err == nil {
		t.Error("more strikes than PEs should error")
	}
	if _, err := GenerateTransient(2, 2, TransientSpec{Strikes: -1}, rng); err == nil {
		t.Error("negative strike count should error")
	}
	if _, err := GenerateTransient(2, 2, TransientSpec{Strikes: 1, Start: -1}, rng); err == nil {
		t.Error("negative start should error")
	}
	if _, err := GenerateTransient(2, 2, TransientSpec{Strikes: 1, MaxDuration: -1}, rng); err == nil {
		t.Error("negative max duration should error")
	}
}

// TestGenerateTransientPropertyDecays: every generated schedule has a
// finite horizon bounded by Start+MaxDuration, and no strike is active
// at or past it — the "soft" in soft error.
func TestGenerateTransientPropertyDecays(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw, durRaw uint8) bool {
		n := int(nRaw) % 65
		maxDur := 1 + int(durRaw)%5
		s, err := GenerateTransient(8, 8, TransientSpec{
			Strikes: n, BitMode: RandomBit, PolMode: RandomPol, Start: 2, MaxDuration: maxDur,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if n > 0 && (s.Horizon() <= 2 || s.Horizon() > 2+maxDur) {
			return false
		}
		return s.ActiveCount(s.Horizon()) == 0 && (n == 0 || s.ActiveCount(2) == n)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestTransientCloneIndependence(t *testing.T) {
	s := NewTransientSchedule(4, 4)
	if err := s.Add(TransientStrike{Row: 1, Col: 1, Bit: 3, Pol: StuckAt1, Start: 0, Duration: 1}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Add(TransientStrike{Row: 2, Col: 2, Bit: 4, Pol: StuckAt0, Start: 0, Duration: 1}); err != nil {
		t.Fatal(err)
	}
	if len(s.Strikes) != 1 {
		t.Error("Clone must not share the strike slice")
	}
}
