package faults

import (
	"reflect"
	"testing"
)

// fakeTarget records what a FaultModel injects — the lightweight Target
// the seam was designed to admit.
type fakeTarget struct {
	rows, cols int
	fm         *Map
	mem        *MemoryFaults
	ts         *TransientSchedule
}

func (f *fakeTarget) Dims() (int, int)                           { return f.rows, f.cols }
func (f *fakeTarget) InjectFaults(m *Map) error                  { f.fm = m; return nil }
func (f *fakeTarget) InjectMemoryFaults(m *MemoryFaults) error   { f.mem = m; return nil }
func (f *fakeTarget) InjectTransient(s *TransientSchedule) error { f.ts = s; return nil }

func TestModelByName(t *testing.T) {
	for _, name := range append(ModelNames(), "") {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "stuckat"
		}
		if m.Name() != want {
			t.Errorf("ModelByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ModelByName("cosmic"); err == nil {
		t.Error("unknown model name should error")
	}
	names := ModelNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("ModelNames not sorted: %v", names)
		}
	}
}

// TestModelInjectMatchesDescribe: for every model, the instance Describe
// reports is exactly what Inject installs — the property that lets the
// harness reason about campaign cells without running them.
func TestModelInjectMatchesDescribe(t *testing.T) {
	models := []FaultModel{
		StuckAtModel{Gen: GenSpec{BitMode: MSBBits, Pol: StuckAt1, PolMode: RandomPol}},
		BitFlipModel{Profile: ProfileDecay},
		BitFlipModel{Profile: ProfileMSB},
		TransientModel{Gen: GenSpec{BitMode: RandomBit, PolMode: RandomPol}, Start: 2, MaxDuration: 3},
	}
	for _, m := range models {
		for _, rate := range []float64{0, 0.1, 0.5, 1} {
			tgt := &fakeTarget{rows: 8, cols: 8}
			if err := m.Inject(tgt, rate, 77); err != nil {
				t.Fatalf("%s rate %g: %v", m.Name(), rate, err)
			}
			desc, err := m.Describe(8, 8, rate, 77)
			if err != nil {
				t.Fatalf("%s rate %g describe: %v", m.Name(), rate, err)
			}
			var installed any
			switch m.Name() {
			case "stuckat":
				if tgt.fm == nil || tgt.mem != nil || tgt.ts != nil {
					t.Fatalf("stuckat injected wrong class: %+v", tgt)
				}
				installed = tgt.fm
			case "bitflip":
				if tgt.mem == nil || tgt.fm != nil || tgt.ts != nil {
					t.Fatalf("bitflip injected wrong class: %+v", tgt)
				}
				installed = tgt.mem
			case "transient":
				if tgt.ts == nil || tgt.fm != nil || tgt.mem != nil {
					t.Fatalf("transient injected wrong class: %+v", tgt)
				}
				installed = tgt.ts
			}
			if !reflect.DeepEqual(installed, desc) {
				t.Errorf("%s rate %g: Inject installed %+v, Describe returned %+v",
					m.Name(), rate, installed, desc)
			}
		}
	}
}

// TestModelDescribeDeterministic: Describe is a pure function of
// (rows, cols, rate, seed) — two calls agree, and different seeds
// realize different instances (for rates that actually place faults).
func TestModelDescribeDeterministic(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := m.Describe(8, 8, 0.25, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Describe(8, 8, 0.25, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeated Describe differs", name)
		}
		c, err := m.Describe(8, 8, 0.25, 6)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: seeds 5 and 6 realized identical instances", name)
		}
	}
}

func TestModelRateValidation(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tgt := &fakeTarget{rows: 4, cols: 4}
		if err := m.Inject(tgt, 1.5, 1); err == nil {
			t.Errorf("%s: rate 1.5 should error", name)
		}
		if err := m.Inject(tgt, -0.1, 1); err == nil {
			t.Errorf("%s: negative rate should error", name)
		}
	}
}

// TestModelRateScaling: the PE-count models honor the rate axis as a
// fraction of the grid.
func TestModelRateScaling(t *testing.T) {
	stuck := StuckAtModel{Gen: GenSpec{BitMode: MSBBits, Pol: StuckAt1}}
	d, err := stuck.Describe(8, 8, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.(*Map).NumFaultyPEs(); got != 16 {
		t.Errorf("stuckat rate 0.25 on 8x8 placed %d PEs, want 16", got)
	}
	trans := TransientModel{Gen: GenSpec{BitMode: MSBBits, Pol: StuckAt1}, Start: 1}
	dt, err := trans.Describe(8, 8, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := dt.(*TransientSchedule)
	if len(ts.Strikes) != 32 {
		t.Errorf("transient rate 0.5 on 8x8 struck %d PEs, want 32", len(ts.Strikes))
	}
	for _, st := range ts.Strikes {
		if st.Duration < 1 || st.Duration > DefaultMaxDuration {
			t.Errorf("zero MaxDuration should default to %d, got duration %d", DefaultMaxDuration, st.Duration)
		}
	}
}
