// Package faults models hardware faults in a systolic-array SNN
// accelerator and generates the fault instances used throughout the
// experiments. Three fault classes are covered, unified behind the
// FaultModel interface so campaigns, spec files and tools can address
// any of them by name the way they already address a tensor.Backend or
// a campaign.Planner:
//
//   - "stuckat" (StuckAtModel): the paper's fault class. Permanent
//     stuck-at bits on PE accumulator (or weight-register) outputs,
//     recorded in a Map. In a real flow the map comes from
//     post-fabrication scan testing of each manufactured chip; here it
//     is generated pseudo-randomly (seeded, reproducible) or
//     constructed explicitly, and systolic.ScanTest models the post-fab
//     march test that recovers it from the faulty hardware alone.
//
//   - "bitflip" (BitFlipModel): memory bit-flips in the weight SRAM at
//     per-bit-significance rates, after ReSpawn
//     (https://arxiv.org/pdf/2108.10271): approximate/low-power SRAM
//     trades retention for energy, so low-order bits flip more often
//     than high-order ones. A MemoryFaults value decides each
//     (word, bit) flip by a pure counter-based hash of (Seed, word,
//     bit), so the instance is fully determined by (seed, rates) —
//     independent of array, engine, shard or evaluation order — and
//     flips hit exactly what the accelerator stores: they are applied
//     on the compiled-tile path (systolic/compile.go) that materializes
//     the weight words the PEs hold.
//
//   - "transient" (TransientModel): transient soft errors, after
//     SoftSNN (https://arxiv.org/pdf/2203.05523): a particle strike
//     upsets an accumulator bit at a chosen inference timestep, holds
//     for a short per-strike duration, and then the PE recovers. A
//     TransientSchedule answers "which bits are forced at timestep t";
//     systolic.Array.SetTimestep threads the timestep through Forward
//     so mid-inference strikes corrupt only the steps inside their
//     window.
//
// A FaultModel realizes one (rate, seed) cell on any injection Target
// (Inject) and can also Describe the exact fault instance it would
// inject — the deterministic, JSON-marshalable value the SpikeFI-style
// test harness byte-compares across shard splits and worker counts.
// Site enumeration (EnumerateSites/SampleSites) provides the
// deterministic fault-site universe for exhaustive or sampled
// campaigns, after SpikeFI (https://arxiv.org/pdf/2412.06795).
package faults
