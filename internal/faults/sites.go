package faults

import (
	"fmt"
	"math/rand"

	"falvolt/internal/fixed"
)

// SpikeFI-style fault-site enumeration: a campaign that wants exhaustive
// (or sampled-without-replacement) coverage of the stuck-at fault space
// needs the universe of injectable sites in a deterministic order, so
// that shard i of n over the sites is the same set of experiments on
// every worker and every run.

// Site is one injectable stuck-at fault site: (PE, bit, polarity).
type Site struct {
	Row, Col int
	Bit      uint
	Pol      Polarity
}

// Fault converts the site to its StuckAtFault.
func (s Site) Fault() StuckAtFault {
	return StuckAtFault{Row: s.Row, Col: s.Col, Bit: s.Bit, Pol: s.Pol}
}

// EnumerateSites returns every (PE × bit × polarity) site of a
// rows x cols array in deterministic order: PEs row-major, then bits in
// the order given, then polarities in the order given. Passing nil bits
// selects all word bits ascending; nil pols selects {sa0, sa1}.
func EnumerateSites(rows, cols int, bits []uint, pols []Polarity) ([]Site, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("faults: invalid grid %dx%d", rows, cols)
	}
	if bits == nil {
		bits = make([]uint, fixed.WordBits)
		for b := range bits {
			bits[b] = uint(b)
		}
	}
	for _, b := range bits {
		if b >= fixed.WordBits {
			return nil, fmt.Errorf("faults: bit %d outside %d-bit word", b, fixed.WordBits)
		}
	}
	if pols == nil {
		pols = []Polarity{StuckAt0, StuckAt1}
	}
	sites := make([]Site, 0, rows*cols*len(bits)*len(pols))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for _, b := range bits {
				for _, p := range pols {
					sites = append(sites, Site{Row: r, Col: c, Bit: b, Pol: p})
				}
			}
		}
	}
	return sites, nil
}

// SampleSites draws n distinct sites from the list, seed-addressed:
// the same (sites, n, seed) always selects the same subset in the same
// order, on any machine or shard. It errors if n exceeds the universe.
func SampleSites(sites []Site, n int, seed int64) ([]Site, error) {
	if n < 0 || n > len(sites) {
		return nil, fmt.Errorf("faults: cannot sample %d of %d sites", n, len(sites))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Site, 0, n)
	for _, idx := range rng.Perm(len(sites))[:n] {
		out = append(out, sites[idx])
	}
	return out, nil
}

// SiteMap builds the single-fault Map that injects exactly one site —
// the unit of an exhaustive SpikeFI-style sweep.
func SiteMap(rows, cols int, s Site) (*Map, error) {
	m := NewMap(rows, cols)
	if err := m.Add(s.Fault()); err != nil {
		return nil, err
	}
	return m, nil
}
