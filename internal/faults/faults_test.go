package faults

import (
	"math/rand"
	"testing"
	"testing/quick"

	"falvolt/internal/fixed"
)

func TestPolarityString(t *testing.T) {
	if StuckAt0.String() != "sa0" || StuckAt1.String() != "sa1" {
		t.Errorf("polarity strings wrong: %v %v", StuckAt0, StuckAt1)
	}
}

func TestStuckAtFaultApply(t *testing.T) {
	f := StuckAtFault{Row: 0, Col: 0, Bit: 3, Pol: StuckAt1}
	if got := f.Apply(0); got != 8 {
		t.Errorf("sa1 bit3 on 0 = %d, want 8", got)
	}
	f.Pol = StuckAt0
	if got := f.Apply(0xF); got != 0x7 {
		t.Errorf("sa0 bit3 on 0xF = %d, want 7", got)
	}
}

func TestMapAddValidation(t *testing.T) {
	m := NewMap(4, 4)
	if err := m.Add(StuckAtFault{Row: 4, Col: 0}); err == nil {
		t.Error("row out of range should error")
	}
	if err := m.Add(StuckAtFault{Row: 0, Col: -1}); err == nil {
		t.Error("negative col should error")
	}
	if err := m.Add(StuckAtFault{Row: 0, Col: 0, Bit: 32}); err == nil {
		t.Error("bit 32 should error")
	}
	if err := m.Add(StuckAtFault{Row: 3, Col: 3, Bit: 31}); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
}

func TestNumFaultyPEsDedup(t *testing.T) {
	m := NewMap(4, 4)
	_ = m.Add(StuckAtFault{Row: 1, Col: 1, Bit: 0, Pol: StuckAt0})
	_ = m.Add(StuckAtFault{Row: 1, Col: 1, Bit: 5, Pol: StuckAt1})
	_ = m.Add(StuckAtFault{Row: 2, Col: 0, Bit: 3, Pol: StuckAt1})
	if got := m.NumFaultyPEs(); got != 2 {
		t.Errorf("NumFaultyPEs = %d, want 2 (two bits on one PE dedup)", got)
	}
	if got := m.FaultRate(); got != 2.0/16.0 {
		t.Errorf("FaultRate = %v, want 0.125", got)
	}
}

func TestFaultyPEsSorted(t *testing.T) {
	m := NewMap(4, 4)
	_ = m.Add(StuckAtFault{Row: 3, Col: 1})
	_ = m.Add(StuckAtFault{Row: 0, Col: 2})
	_ = m.Add(StuckAtFault{Row: 0, Col: 1})
	pes := m.FaultyPEs()
	want := [][2]int{{0, 1}, {0, 2}, {3, 1}}
	if len(pes) != len(want) {
		t.Fatalf("FaultyPEs len = %d, want %d", len(pes), len(want))
	}
	for i := range want {
		if pes[i] != want[i] {
			t.Errorf("FaultyPEs[%d] = %v, want %v", i, pes[i], want[i])
		}
	}
}

func TestMasksComposition(t *testing.T) {
	m := NewMap(2, 2)
	_ = m.Add(StuckAtFault{Row: 0, Col: 1, Bit: 2, Pol: StuckAt1})
	_ = m.Add(StuckAtFault{Row: 0, Col: 1, Bit: 4, Pol: StuckAt0})
	or, clear := m.Masks()
	idx := 0*2 + 1
	if or[idx] != 1<<2 {
		t.Errorf("orMask = %b, want bit2", or[idx])
	}
	if clear[idx] != 1<<4 {
		t.Errorf("clearMask = %b, want bit4", clear[idx])
	}
	// The composed transform: force bit2 high, bit4 low.
	w := fixed.ForceBits(0b10000, or[idx], clear[idx])
	if w != 0b00100 {
		t.Errorf("composed transform = %b, want 00100", w)
	}
}

func TestGenerateCountAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := Generate(16, 16, GenSpec{NumFaulty: 40, BitMode: RandomBit, PolMode: RandomPol}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumFaultyPEs(); got != 40 {
		t.Errorf("NumFaultyPEs = %d, want 40 (sampling without replacement)", got)
	}
	for _, f := range m.Faults {
		if f.Row < 0 || f.Row >= 16 || f.Col < 0 || f.Col >= 16 {
			t.Errorf("fault out of bounds: %v", f)
		}
		if f.Bit >= fixed.WordBits {
			t.Errorf("bit out of range: %v", f)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(8, 8, GenSpec{NumFaulty: 10, BitMode: MSBBits, Pol: StuckAt1}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(8, 8, GenSpec{NumFaulty: 10, BitMode: MSBBits, Pol: StuckAt1}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("same seed produced different fault counts")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Errorf("fault %d differs: %v vs %v", i, a.Faults[i], b.Faults[i])
		}
	}
}

func TestGenerateMSBBitsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := Generate(8, 8, GenSpec{NumFaulty: 30, BitMode: MSBBits}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Faults {
		if f.Bit < 24 || f.Bit > 31 {
			t.Errorf("MSBBits produced bit %d outside [24,31]", f.Bit)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(2, 2, GenSpec{NumFaulty: 5}, rng); err == nil {
		t.Error("more faults than PEs should error")
	}
	if _, err := Generate(2, 2, GenSpec{NumFaulty: -1}, rng); err == nil {
		t.Error("negative fault count should error")
	}
	if _, err := GenerateRate(2, 2, 1.5, GenSpec{}, rng); err == nil {
		t.Error("rate > 1 should error")
	}
}

func TestGenerateRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := GenerateRate(16, 16, 0.25, GenSpec{BitMode: FixedBit, Bit: 30, Pol: StuckAt1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumFaultyPEs(); got != 64 {
		t.Errorf("25%% of 256 = %d PEs, want 64", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMap(4, 4)
	_ = m.Add(StuckAtFault{Row: 1, Col: 1, Bit: 2, Pol: StuckAt1})
	c := m.Clone()
	_ = c.Add(StuckAtFault{Row: 2, Col: 2, Bit: 3, Pol: StuckAt0})
	if len(m.Faults) != 1 {
		t.Error("Clone must not share fault slice")
	}
}

func TestGeneratePropertyDistinctPEs(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 65
		m, err := Generate(8, 8, GenSpec{NumFaulty: n, BitMode: RandomBit, PolMode: RandomPol}, rng)
		if err != nil {
			return false
		}
		return m.NumFaultyPEs() == n && len(m.Faults) == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
