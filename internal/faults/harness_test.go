package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"falvolt/internal/campaign"
)

// SpikeFI-style harness: every (model × rate × seed) campaign cell is
// fully described by a deterministic, JSON-marshalable fault instance
// (FaultModel.Describe). This file proves the property sharded
// campaigns rest on — however the cell grid is split into interleaved
// shards, in whatever order the shards run, the merged set of instance
// descriptions is byte-identical to a single-process enumeration.

// harnessCell is one cell of the (model × rate × seed) grid.
type harnessCell struct {
	id    int
	model string
	rate  float64
	seed  int64
}

func harnessGrid() []harnessCell {
	var cells []harnessCell
	id := 0
	for _, model := range ModelNames() {
		for _, rate := range []float64{0.05, 0.2, 0.5} {
			for rep := 0; rep < 3; rep++ {
				cells = append(cells, harnessCell{
					id: id, model: model, rate: rate, seed: 1000 + 7919*int64(id),
				})
				id++
			}
		}
	}
	return cells
}

// describeCell realizes one cell's fault instance as canonical JSON.
func describeCell(t *testing.T, c harnessCell) []byte {
	t.Helper()
	m, err := ModelByName(c.model)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Describe(8, 8, c.rate, c.seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// mergeShards runs the grid split into n interleaved shards (executed
// in the given shard order) and merges the per-cell descriptions back
// into one id-ordered blob.
func mergeShards(t *testing.T, cells []harnessCell, n int, order []int) []byte {
	t.Helper()
	byID := make(map[int][]byte, len(cells))
	for _, shard := range order {
		sh := campaign.Shard{Index: shard, Count: n}
		if err := sh.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if c.id%n != shard {
				continue
			}
			byID[c.id] = describeCell(t, c)
		}
	}
	var merged bytes.Buffer
	for id := 0; id < len(cells); id++ {
		b, ok := byID[id]
		if !ok {
			t.Fatalf("shard split %d dropped cell %d", n, id)
		}
		fmt.Fprintf(&merged, "%d\t%s\n", id, b)
	}
	return merged.Bytes()
}

// TestHarnessShardSplitsMergeByteIdentical: the same cells produce
// byte-identical merged instance sets under every shard split and
// execution order.
func TestHarnessShardSplitsMergeByteIdentical(t *testing.T) {
	cells := harnessGrid()
	want := mergeShards(t, cells, 1, []int{0})
	splits := []struct {
		n     int
		order []int
	}{
		{2, []int{0, 1}},
		{2, []int{1, 0}},
		{3, []int{2, 0, 1}},
		{5, []int{4, 3, 2, 1, 0}},
	}
	for _, sp := range splits {
		got := mergeShards(t, cells, sp.n, sp.order)
		if !bytes.Equal(want, got) {
			t.Errorf("shard split %d (order %v) merged differently from single-process run", sp.n, sp.order)
		}
	}
}

// TestHarnessCellsAddressable: each cell's description depends only on
// its own (model, rate, seed) — distinct cells of one model realize
// distinct instances, so a campaign's repeats genuinely resample.
func TestHarnessCellsAddressable(t *testing.T) {
	cells := harnessGrid()
	seen := make(map[string]harnessCell)
	for _, c := range cells {
		key := c.model + "\x00" + string(describeCell(t, c))
		if prev, dup := seen[key]; dup {
			t.Errorf("cells %d and %d (model %s) realized identical instances", prev.id, c.id, c.model)
		}
		seen[key] = c
	}
}

// TestHarnessSiteSweepReproducible: the exhaustive single-site sweep —
// SpikeFI's unit experiment — enumerates, shards and reassembles
// without loss, and every site's single-fault map round-trips through
// JSON unchanged.
func TestHarnessSiteSweepReproducible(t *testing.T) {
	sites, err := EnumerateSites(4, 4, []uint{24, 31}, nil)
	if err != nil {
		t.Fatal(err)
	}
	trials := make([]campaign.Trial, len(sites))
	for i := range sites {
		trials[i] = campaign.Trial{ID: i, Key: sites[i].Fault().String()}
	}
	var whole []string
	for _, tr := range trials {
		whole = append(whole, tr.Key)
	}
	for _, n := range []int{2, 4} {
		got := make([]string, len(trials))
		for idx := 0; idx < n; idx++ {
			for _, tr := range (campaign.Shard{Index: idx, Count: n}).Of(trials) {
				m, err := SiteMap(4, 4, sites[tr.ID])
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
				var back Map
				if err := json.Unmarshal(blob, &back); err != nil {
					t.Fatal(err)
				}
				if len(back.Faults) != 1 || back.Faults[0] != sites[tr.ID].Fault() {
					t.Fatalf("site %d did not round-trip: %+v", tr.ID, back)
				}
				got[tr.ID] = back.Faults[0].String()
			}
		}
		for i := range whole {
			if got[i] != whole[i] {
				t.Fatalf("%d-shard sweep site %d = %q, want %q", n, i, got[i], whole[i])
			}
		}
	}
}
