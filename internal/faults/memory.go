package faults

import (
	"fmt"
	"math"

	"falvolt/internal/fixed"
)

// MemoryFaults models bit-flips in the weight SRAM at per-bit rates
// (the ReSpawn fault class): stored weight words are corrupted by the
// memory itself, before they ever reach a PE. Whether bit b of word w
// flips is decided by a pure hash of (Seed, w, b) compared against
// BitRate[b], so an instance is fully determined by its fields — the
// same (seed, rates) flips the same bits of the same words on every
// array, engine, shard and worker, in any evaluation order. Flips are
// XOR (a flipped bit inverts), unlike the stuck-at Map's forced bits.
//
// The word index is the flat position in the stored weight matrix
// (w[m][k] has index m*K+k, matching systolic.Matrix.Words), which is
// what the SRAM actually addresses.
type MemoryFaults struct {
	// Seed selects the flip instance.
	Seed int64 `json:"seed"`
	// BitRate[b] is the probability that bit b (0 = LSB) of any stored
	// word is flipped. All entries must lie in [0, 1].
	BitRate [fixed.WordBits]float64 `json:"bitRate"`
}

// Validate checks every per-bit rate is a probability.
func (m *MemoryFaults) Validate() error {
	for b, r := range m.BitRate {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("faults: bit %d flip rate %v outside [0,1]", b, r)
		}
	}
	return nil
}

// Clone returns a copy (MemoryFaults is a value type; this keeps the
// injection API symmetric with Map.Clone so callers can mutate their
// original freely).
func (m *MemoryFaults) Clone() *MemoryFaults {
	c := *m
	return &c
}

// FlipMask returns the XOR mask for stored word index w: bit b is set
// iff the hash draw for (Seed, w, b) lands under BitRate[b].
func (m *MemoryFaults) FlipMask(word int) uint32 {
	var mask uint32
	for b := uint(0); b < fixed.WordBits; b++ {
		r := m.BitRate[b]
		if r <= 0 {
			continue
		}
		if r >= 1 || hashUnit(m.Seed, word, b) < r {
			mask |= uint32(1) << b
		}
	}
	return mask
}

// FlipWord applies the word's flip mask: the value the SRAM returns
// for stored word index w whose intended content is v.
func (m *MemoryFaults) FlipWord(word int, v fixed.Word) fixed.Word {
	mask := m.FlipMask(word)
	if mask == 0 {
		return v
	}
	return fixed.Word(uint32(v) ^ mask)
}

// CountFlips returns the total number of flipped bits over the first n
// stored words — the realized corruption of an n-word weight memory.
func (m *MemoryFaults) CountFlips(n int) int {
	total := 0
	for w := 0; w < n; w++ {
		total += bitsOn(m.FlipMask(w))
	}
	return total
}

func bitsOn(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// String summarises the instance.
func (m *MemoryFaults) String() string {
	var minR, maxR float64 = 1, 0
	for _, r := range m.BitRate {
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	return fmt.Sprintf("MemoryFaults{seed=%d, bit rates %.2g..%.2g}", m.Seed, minR, maxR)
}

// hashUnit maps (seed, word, bit) to a uniform draw in [0, 1) with a
// splitmix64-style finalizer. Counter-based rather than sequential RNG
// on purpose: every (word, bit) cell has its own independent draw, so
// the flip decision never depends on which other words were examined
// or in what order.
func hashUnit(seed int64, word int, bit uint) float64 {
	x := uint64(seed)
	x ^= uint64(word)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	x ^= uint64(bit) * 0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// BitProfile shapes a scalar fault rate into per-bit SRAM flip rates.
type BitProfile uint8

const (
	// ProfileDecay is the ReSpawn-style approximate-SRAM profile: the
	// LSB flips at the full rate and each higher bit is progressively
	// better retained (rate × 2^(-bit/4), ≈210× safer at the MSB).
	ProfileDecay BitProfile = iota
	// ProfileUniform flips every bit position at the same rate.
	ProfileUniform
	// ProfileMSB concentrates all flips on the high-order bits
	// [24, 32) — the worst-case regime, mirroring faults.MSBBits.
	ProfileMSB
)

// String implements fmt.Stringer.
func (p BitProfile) String() string {
	switch p {
	case ProfileUniform:
		return "uniform"
	case ProfileMSB:
		return "msb"
	}
	return "decay"
}

// ParseBitProfile maps a profile name ("" = "decay") to its value.
func ParseBitProfile(s string) (BitProfile, error) {
	switch s {
	case "", "decay":
		return ProfileDecay, nil
	case "uniform":
		return ProfileUniform, nil
	case "msb":
		return ProfileMSB, nil
	}
	return 0, fmt.Errorf("faults: unknown bit profile %q (want decay, uniform or msb)", s)
}

// BitRates expands a scalar rate into the profile's per-bit rates.
func BitRates(p BitProfile, rate float64) ([fixed.WordBits]float64, error) {
	var rates [fixed.WordBits]float64
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		return rates, fmt.Errorf("faults: rate %v outside [0,1]", rate)
	}
	switch p {
	case ProfileUniform:
		for b := range rates {
			rates[b] = rate
		}
	case ProfileMSB:
		for b := 24; b < fixed.WordBits; b++ {
			rates[b] = rate
		}
	case ProfileDecay:
		for b := range rates {
			rates[b] = rate * math.Pow(2, -float64(b)/4)
		}
	default:
		return rates, fmt.Errorf("faults: unknown bit profile %d", p)
	}
	return rates, nil
}
