package faults

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fault maps")

// goldenGenCases pins the realized fault map for representative
// (seed, rate, GenSpec) cells. Generate's draws come from math/rand,
// whose stream is part of Go's compatibility promise, so these maps
// are stable across platforms — any drift here means previously
// published campaign cells no longer reproduce.
func goldenGenCases() []struct {
	name string
	seed int64
	rate float64
	spec GenSpec
} {
	return []struct {
		name string
		seed int64
		rate float64
		spec GenSpec
	}{
		{"msb-sa1-r10", 1, 0.10, GenSpec{BitMode: MSBBits, Pol: StuckAt1}},
		{"msb-sa1-r25", 2, 0.25, GenSpec{BitMode: MSBBits, Pol: StuckAt1}},
		{"randbit-randpol-r20", 3, 0.20, GenSpec{BitMode: RandomBit, PolMode: RandomPol}},
		{"fixedbit30-sa0-r50", 4, 0.50, GenSpec{BitMode: FixedBit, Bit: 30, Pol: StuckAt0}},
	}
}

func TestGenerateRateGoldenMaps(t *testing.T) {
	for _, tc := range goldenGenCases() {
		t.Run(tc.name, func(t *testing.T) {
			m, err := GenerateRate(8, 8, tc.rate, tc.spec, rand.New(rand.NewSource(tc.seed)))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fault map for (seed=%d rate=%g %+v) drifted from golden %s:\n%s",
					tc.seed, tc.rate, tc.spec, path, got)
			}
		})
	}
}

// TestGenerateShardInterleaveInvariant: realizing the golden cells in
// any interleaved order yields the same per-cell maps — each cell's rng
// is private to its seed, so shard scheduling cannot perturb results.
func TestGenerateShardInterleaveInvariant(t *testing.T) {
	cases := goldenGenCases()
	realize := func(order []int) map[string]string {
		out := make(map[string]string, len(cases))
		for _, i := range order {
			tc := cases[i]
			m, err := GenerateRate(8, 8, tc.rate, tc.spec, rand.New(rand.NewSource(tc.seed)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			out[tc.name] = string(b)
		}
		return out
	}
	want := realize([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}} {
		got := realize(order)
		for name := range want {
			if got[name] != want[name] {
				t.Errorf("order %v: cell %s realized differently", order, name)
			}
		}
	}
}

// TestGenerateRateRounding: the rate→count mapping is the documented
// round-half-up, so a published rate names an exact fault count.
func TestGenerateRateRounding(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want int
	}{
		{0, 0}, {0.10, 6}, {0.25, 16}, {0.5, 32}, {1, 64},
	} {
		m, err := GenerateRate(8, 8, tc.rate, GenSpec{BitMode: MSBBits, Pol: StuckAt1}, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if got := m.NumFaultyPEs(); got != tc.want {
			t.Errorf("rate %g on 8x8 placed %d PEs, want %d", tc.rate, got, tc.want)
		}
	}
	if _, err := GenerateRate(8, 8, 1.5, GenSpec{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("rate 1.5 should error")
	}
	if _, err := GenerateRate(8, 8, -0.1, GenSpec{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative rate should error")
	}
}
