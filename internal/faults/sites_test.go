package faults

import (
	"testing"

	"falvolt/internal/fixed"
)

func TestEnumerateSitesUniverse(t *testing.T) {
	sites, err := EnumerateSites(4, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 3 * int(fixed.WordBits) * 2
	if len(sites) != want {
		t.Fatalf("universe size %d, want %d", len(sites), want)
	}
	// Deterministic order: PEs row-major, bits ascending, sa0 before sa1.
	if sites[0] != (Site{Row: 0, Col: 0, Bit: 0, Pol: StuckAt0}) {
		t.Errorf("first site %+v", sites[0])
	}
	if sites[1] != (Site{Row: 0, Col: 0, Bit: 0, Pol: StuckAt1}) {
		t.Errorf("second site %+v", sites[1])
	}
	last := sites[len(sites)-1]
	if last != (Site{Row: 3, Col: 2, Bit: fixed.WordBits - 1, Pol: StuckAt1}) {
		t.Errorf("last site %+v", last)
	}
	// Every site distinct.
	seen := make(map[Site]bool, len(sites))
	for _, s := range sites {
		if seen[s] {
			t.Fatalf("site %+v enumerated twice", s)
		}
		seen[s] = true
	}
}

func TestEnumerateSitesRestricted(t *testing.T) {
	sites, err := EnumerateSites(2, 2, []uint{31, 24}, []Polarity{StuckAt1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2*2*2 {
		t.Fatalf("restricted universe size %d, want 8", len(sites))
	}
	// Bit order is as given (31 before 24), polarity fixed.
	if sites[0].Bit != 31 || sites[1].Bit != 24 || sites[0].Pol != StuckAt1 {
		t.Errorf("restricted order wrong: %+v %+v", sites[0], sites[1])
	}
}

func TestEnumerateSitesErrors(t *testing.T) {
	if _, err := EnumerateSites(0, 4, nil, nil); err == nil {
		t.Error("empty grid should error")
	}
	if _, err := EnumerateSites(2, 2, []uint{32}, nil); err == nil {
		t.Error("bit 32 should error")
	}
}

func TestSampleSitesSeedAddressed(t *testing.T) {
	sites, err := EnumerateSites(8, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SampleSites(sites, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleSites(sites, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Site]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs under same seed: %+v vs %+v", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("site %+v sampled twice", a[i])
		}
		seen[a[i]] = true
	}
	c, err := SampleSites(sites, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds drew identical samples")
	}
	if _, err := SampleSites(sites, len(sites)+1, 0); err == nil {
		t.Error("oversampling should error")
	}
	if _, err := SampleSites(sites, -1, 0); err == nil {
		t.Error("negative sample count should error")
	}
}

func TestSiteMapSingleFault(t *testing.T) {
	s := Site{Row: 2, Col: 3, Bit: 30, Pol: StuckAt1}
	m, err := SiteMap(4, 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Faults) != 1 || m.Faults[0] != s.Fault() {
		t.Errorf("SiteMap faults %+v, want exactly %+v", m.Faults, s.Fault())
	}
	if _, err := SiteMap(2, 2, s); err == nil {
		t.Error("site outside grid should error")
	}
}

// TestSiteShardsPartitionUniverse: interleaved index shards of the site
// list form an exact partition — the property that lets an exhaustive
// SpikeFI sweep split across workers with no site run twice or dropped.
func TestSiteShardsPartitionUniverse(t *testing.T) {
	sites, err := EnumerateSites(6, 5, []uint{24, 28, 31}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 7} {
		seen := make(map[Site]int)
		for shard := 0; shard < n; shard++ {
			for i, s := range sites {
				if i%n == shard {
					seen[s]++
				}
			}
		}
		if len(seen) != len(sites) {
			t.Fatalf("%d shards covered %d of %d sites", n, len(seen), len(sites))
		}
		for s, c := range seen {
			if c != 1 {
				t.Fatalf("%d shards ran site %+v %d times", n, s, c)
			}
		}
	}
}
