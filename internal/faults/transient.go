package faults

import (
	"fmt"
	"math/rand"

	"falvolt/internal/fixed"
)

// TransientStrike is one soft-error event (the SoftSNN fault class): a
// particle strike upsets output bit Bit of PE (Row, Col)'s accumulator
// at inference timestep Start. The upset holds — the bit reads as
// forced to Pol on every accumulation — for Duration timesteps, then
// the PE recovers completely. A permanent fault is the Duration → ∞
// limit of this.
type TransientStrike struct {
	Row, Col int
	Bit      uint
	Pol      Polarity
	// Start is the first affected timestep; Duration the number of
	// consecutive timesteps the upset persists (at least 1).
	Start, Duration int
}

// ActiveAt reports whether the strike corrupts timestep t.
func (s TransientStrike) ActiveAt(t int) bool {
	return t >= s.Start && t < s.Start+s.Duration
}

// String implements fmt.Stringer.
func (s TransientStrike) String() string {
	return fmt.Sprintf("PE(%d,%d) bit%d %s @t%d+%d", s.Row, s.Col, s.Bit, s.Pol, s.Start, s.Duration)
}

// TransientSchedule is the full soft-error scenario of one inference:
// every strike that will occur, against a rows x cols array. It answers
// "which accumulator bits are forced at timestep t" — the question
// systolic.Array.SetTimestep asks once per timestep.
type TransientSchedule struct {
	Rows, Cols int
	Strikes    []TransientStrike
}

// NewTransientSchedule returns an empty schedule for a rows x cols array.
func NewTransientSchedule(rows, cols int) *TransientSchedule {
	return &TransientSchedule{Rows: rows, Cols: cols}
}

// Add appends a strike after validating coordinates, bit and window.
func (s *TransientSchedule) Add(st TransientStrike) error {
	if st.Row < 0 || st.Row >= s.Rows || st.Col < 0 || st.Col >= s.Cols {
		return fmt.Errorf("faults: PE(%d,%d) outside %dx%d array", st.Row, st.Col, s.Rows, s.Cols)
	}
	if st.Bit >= fixed.WordBits {
		return fmt.Errorf("faults: bit %d outside %d-bit word", st.Bit, fixed.WordBits)
	}
	if st.Start < 0 || st.Duration < 1 {
		return fmt.Errorf("faults: strike window t%d+%d invalid (start >= 0, duration >= 1)", st.Start, st.Duration)
	}
	s.Strikes = append(s.Strikes, st)
	return nil
}

// Validate re-checks every strike (for schedules built by hand or
// decoded from JSON rather than through Add).
func (s *TransientSchedule) Validate() error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("faults: invalid schedule grid %dx%d", s.Rows, s.Cols)
	}
	probe := &TransientSchedule{Rows: s.Rows, Cols: s.Cols}
	for _, st := range s.Strikes {
		if err := probe.Add(st); err != nil {
			return err
		}
	}
	return nil
}

// ActiveCount returns how many strikes corrupt timestep t.
func (s *TransientSchedule) ActiveCount(t int) int {
	n := 0
	for _, st := range s.Strikes {
		if st.ActiveAt(t) {
			n++
		}
	}
	return n
}

// Horizon returns the first timestep at which every strike has decayed
// (0 for an empty schedule): from Horizon() on, the array is clean.
func (s *TransientSchedule) Horizon() int {
	h := 0
	for _, st := range s.Strikes {
		if end := st.Start + st.Duration; end > h {
			h = end
		}
	}
	return h
}

// ActiveMasks fills per-PE OR/AND-clear force masks (row-major,
// row*Cols+col, like Map.Masks) with the strikes active at timestep t.
// The slices must each hold Rows*Cols entries; they are zeroed first.
func (s *TransientSchedule) ActiveMasks(t int, orMask, clearMask []uint32) {
	clear(orMask)
	clear(clearMask)
	for _, st := range s.Strikes {
		if !st.ActiveAt(t) {
			continue
		}
		idx := st.Row*s.Cols + st.Col
		bit := uint32(1) << st.Bit
		if st.Pol == StuckAt1 {
			orMask[idx] |= bit
		} else {
			clearMask[idx] |= bit
		}
	}
}

// Clone returns a deep copy of the schedule.
func (s *TransientSchedule) Clone() *TransientSchedule {
	c := NewTransientSchedule(s.Rows, s.Cols)
	c.Strikes = append([]TransientStrike(nil), s.Strikes...)
	return c
}

// String summarises the schedule.
func (s *TransientSchedule) String() string {
	return fmt.Sprintf("TransientSchedule{%dx%d, %d strikes, horizon t%d}",
		s.Rows, s.Cols, len(s.Strikes), s.Horizon())
}

// TransientSpec describes a randomly generated soft-error burst,
// mirroring GenSpec's knobs plus the time dimension.
type TransientSpec struct {
	// Strikes is the number of distinct PEs struck.
	Strikes int
	// Bit / BitMode / Pol / PolMode choose each strike's upset bit and
	// polarity exactly as in GenSpec.
	Bit     uint
	BitMode BitMode
	Pol     Polarity
	PolMode PolMode
	// Start is the timestep the burst lands on.
	Start int
	// MaxDuration bounds the per-strike decay: each strike holds for
	// 1 + rng.Intn(MaxDuration) timesteps (0 or 1 = every strike decays
	// after a single timestep).
	MaxDuration int
}

// GenerateTransient draws a random schedule for a rows x cols array
// according to spec, using rng for reproducibility. Distinct PEs are
// struck (sampled without replacement, like Generate); it errors if
// Strikes exceeds the array size or the window is invalid.
func GenerateTransient(rows, cols int, spec TransientSpec, rng *rand.Rand) (*TransientSchedule, error) {
	total := rows * cols
	if spec.Strikes < 0 || spec.Strikes > total {
		return nil, fmt.Errorf("faults: cannot strike %d PEs in %dx%d array", spec.Strikes, rows, cols)
	}
	if spec.Start < 0 {
		return nil, fmt.Errorf("faults: strike timestep %d negative", spec.Start)
	}
	if spec.MaxDuration < 0 {
		return nil, fmt.Errorf("faults: max duration %d negative", spec.MaxDuration)
	}
	maxDur := spec.MaxDuration
	if maxDur < 1 {
		maxDur = 1
	}
	s := NewTransientSchedule(rows, cols)
	perm := rng.Perm(total)[:spec.Strikes]
	for _, idx := range perm {
		st := TransientStrike{Row: idx / cols, Col: idx % cols, Start: spec.Start}
		switch spec.BitMode {
		case RandomBit:
			st.Bit = uint(rng.Intn(fixed.WordBits))
		case MSBBits:
			st.Bit = uint(24 + rng.Intn(8))
		default:
			st.Bit = spec.Bit
		}
		switch spec.PolMode {
		case RandomPol:
			if rng.Intn(2) == 1 {
				st.Pol = StuckAt1
			} else {
				st.Pol = StuckAt0
			}
		default:
			st.Pol = spec.Pol
		}
		st.Duration = 1 + rng.Intn(maxDur)
		if err := s.Add(st); err != nil {
			return nil, err
		}
	}
	return s, nil
}
