package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// Clustered defect generation and a yield model.
//
// Manufacturing defects are not uniformly distributed: lithography and
// particle defects cluster spatially, which is why classic yield models
// (negative binomial / Stapper) outperform Poisson. A clustered fault map
// stresses mitigation differently from a uniform one of equal rate — a
// cluster takes out whole neighbouring rows/columns of the PE grid,
// concentrating pruning in a few weight-matrix stripes.

// ClusterSpec describes clustered stuck-at fault generation: defects are
// drawn as cluster centres, and each cluster kills PEs around its centre
// with a Gaussian fall-off.
type ClusterSpec struct {
	// Clusters is the number of defect clusters.
	Clusters int
	// MeanSize is the expected number of faulty PEs per cluster.
	MeanSize int
	// Radius is the Gaussian radius (in PEs) of each cluster.
	Radius float64
	// BitMode / Bit / Pol / PolMode mirror GenSpec for stuck-bit drawing.
	Bit     uint
	BitMode BitMode
	Pol     Polarity
	PolMode PolMode
}

// GenerateClustered draws a clustered fault map for a rows x cols array.
func GenerateClustered(rows, cols int, spec ClusterSpec, rng *rand.Rand) (*Map, error) {
	if spec.Clusters < 0 || spec.MeanSize <= 0 {
		return nil, fmt.Errorf("faults: invalid cluster spec %+v", spec)
	}
	if spec.Radius <= 0 {
		spec.Radius = 1.5
	}
	m := NewMap(rows, cols)
	seen := make(map[[2]int]bool)
	for c := 0; c < spec.Clusters; c++ {
		cy := rng.Float64() * float64(rows)
		cx := rng.Float64() * float64(cols)
		// Poisson-ish cluster size around the mean.
		size := 1 + rng.Intn(2*spec.MeanSize-1)
		for k := 0; k < size; k++ {
			// Sample a PE near the centre; retry a few times if it falls
			// off the die or is already faulty.
			for attempt := 0; attempt < 8; attempt++ {
				y := int(math.Round(cy + rng.NormFloat64()*spec.Radius))
				x := int(math.Round(cx + rng.NormFloat64()*spec.Radius))
				if y < 0 || y >= rows || x < 0 || x >= cols || seen[[2]int{y, x}] {
					continue
				}
				seen[[2]int{y, x}] = true
				f := StuckAtFault{Row: y, Col: x}
				switch spec.BitMode {
				case RandomBit:
					f.Bit = uint(rng.Intn(32))
				case MSBBits:
					f.Bit = uint(24 + rng.Intn(8))
				default:
					f.Bit = spec.Bit
				}
				switch spec.PolMode {
				case RandomPol:
					if rng.Intn(2) == 1 {
						f.Pol = StuckAt1
					}
				default:
					f.Pol = spec.Pol
				}
				if err := m.Add(f); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	return m, nil
}

// ClusteringIndex quantifies spatial clustering of a fault map: the mean
// nearest-neighbour distance of faulty PEs divided by the expectation for
// a uniform distribution of the same density (Clark–Evans ratio). Values
// well below 1 indicate clustering; ≈1 indicates uniformity.
func ClusteringIndex(m *Map) float64 {
	pes := m.FaultyPEs()
	n := len(pes)
	if n < 2 {
		return 1
	}
	var sum float64
	for i, p := range pes {
		best := math.Inf(1)
		for j, q := range pes {
			if i == j {
				continue
			}
			dy := float64(p[0] - q[0])
			dx := float64(p[1] - q[1])
			if d := math.Sqrt(dy*dy + dx*dx); d < best {
				best = d
			}
		}
		sum += best
	}
	observed := sum / float64(n)
	density := float64(n) / float64(m.Rows*m.Cols)
	expected := 0.5 / math.Sqrt(density)
	if expected == 0 {
		return 1
	}
	return observed / expected
}

// DefectModel is a die-level defect-rate model for yield estimation:
// the number of faulty PEs per manufactured chip follows a negative
// binomial distribution (Stapper's model) with the given mean and
// clustering parameter alpha (smaller alpha = heavier clustering).
type DefectModel struct {
	MeanFaulty float64
	Alpha      float64
}

// SampleFaultyCount draws the number of faulty PEs on one chip.
func (d DefectModel) SampleFaultyCount(rng *rand.Rand) int {
	if d.MeanFaulty <= 0 {
		return 0
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	// Negative binomial as Gamma-Poisson mixture:
	// lambda ~ Gamma(alpha, mean/alpha), count ~ Poisson(lambda).
	lambda := gammaSample(rng, alpha) * d.MeanFaulty / alpha
	return poissonSample(rng, lambda)
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost and correct: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// poissonSample draws Poisson(lambda) (Knuth for small lambda, normal
// approximation for large).
func poissonSample(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
