package faults

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateClusteredBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := GenerateClustered(32, 32, ClusterSpec{
		Clusters: 4, MeanSize: 6, Radius: 1.5,
		BitMode: MSBBits, Pol: StuckAt1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFaultyPEs() == 0 {
		t.Fatal("clustered generation produced no faults")
	}
	for _, f := range m.Faults {
		if f.Row < 0 || f.Row >= 32 || f.Col < 0 || f.Col >= 32 {
			t.Errorf("fault out of bounds: %v", f)
		}
		if f.Bit < 24 {
			t.Errorf("MSBBits produced low bit %d", f.Bit)
		}
	}
}

func TestGenerateClusteredValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GenerateClustered(8, 8, ClusterSpec{Clusters: -1, MeanSize: 3}, rng); err == nil {
		t.Error("negative clusters should error")
	}
	if _, err := GenerateClustered(8, 8, ClusterSpec{Clusters: 1, MeanSize: 0}, rng); err == nil {
		t.Error("zero mean size should error")
	}
}

func TestClusteredIsMoreClusteredThanUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clustered, err := GenerateClustered(64, 64, ClusterSpec{
		Clusters: 3, MeanSize: 10, Radius: 1.2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := clustered.NumFaultyPEs()
	uniform, err := Generate(64, 64, GenSpec{NumFaulty: n}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ci, cu := ClusteringIndex(clustered), ClusteringIndex(uniform)
	if ci >= cu {
		t.Errorf("clustered map should have lower Clark-Evans ratio: clustered %.3f vs uniform %.3f", ci, cu)
	}
	if ci >= 0.8 {
		t.Errorf("clustered map not clustered enough: %.3f", ci)
	}
}

func TestClusteringIndexDegenerate(t *testing.T) {
	m := NewMap(8, 8)
	if ClusteringIndex(m) != 1 {
		t.Error("empty map should report 1")
	}
	_ = m.Add(StuckAtFault{Row: 1, Col: 1})
	if ClusteringIndex(m) != 1 {
		t.Error("single fault should report 1")
	}
}

func TestDefectModelMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := DefectModel{MeanFaulty: 12, Alpha: 2}
	var sum float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		sum += float64(d.SampleFaultyCount(rng))
	}
	mean := sum / trials
	if math.Abs(mean-12) > 1.2 {
		t.Errorf("sampled mean %.2f, want ~12", mean)
	}
}

func TestDefectModelClusteringIncreasesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	variance := func(alpha float64) float64 {
		d := DefectModel{MeanFaulty: 10, Alpha: alpha}
		const trials = 4000
		var sum, sq float64
		for i := 0; i < trials; i++ {
			v := float64(d.SampleFaultyCount(rng))
			sum += v
			sq += v * v
		}
		mean := sum / trials
		return sq/trials - mean*mean
	}
	heavy := variance(0.5) // heavier clustering
	light := variance(8)   // near-Poisson
	if heavy <= light {
		t.Errorf("smaller alpha should give larger variance: %.1f vs %.1f", heavy, light)
	}
}

func TestDefectModelZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := DefectModel{MeanFaulty: 0}
	if d.SampleFaultyCount(rng) != 0 {
		t.Error("zero-mean model must produce zero faults")
	}
}

func TestPoissonSampleSmallAndLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var small float64
	for i := 0; i < 2000; i++ {
		small += float64(poissonSample(rng, 3))
	}
	if m := small / 2000; math.Abs(m-3) > 0.3 {
		t.Errorf("Poisson(3) mean %.2f", m)
	}
	var large float64
	for i := 0; i < 2000; i++ {
		large += float64(poissonSample(rng, 200))
	}
	if m := large / 2000; math.Abs(m-200) > 3 {
		t.Errorf("Poisson(200) mean %.2f", m)
	}
	if poissonSample(rng, 0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
}

func TestGammaSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, shape := range []float64{0.5, 1, 3} {
		var sum float64
		const trials = 5000
		for i := 0; i < trials; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / trials
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Errorf("Gamma(%v) mean %.3f, want ~%v", shape, mean, shape)
		}
	}
}
