package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"falvolt/internal/fixed"
)

// Polarity is the stuck value of a faulty bit.
type Polarity uint8

const (
	// StuckAt0 forces the bit low on every cycle.
	StuckAt0 Polarity = iota
	// StuckAt1 forces the bit high on every cycle.
	StuckAt1
)

// String implements fmt.Stringer ("sa0"/"sa1" per the paper's figures).
func (p Polarity) String() string {
	if p == StuckAt1 {
		return "sa1"
	}
	return "sa0"
}

// StuckAtFault is a single permanent fault: PE at (Row, Col) has
// accumulator output bit Bit stuck at Pol. Bit 0 is the LSB; bit 31 the
// MSB/sign bit of the 32-bit fixed-point word.
type StuckAtFault struct {
	Row, Col int
	Bit      uint
	Pol      Polarity
}

// Apply forces the fault's bit on a word, the elementary corruption
// applied at the accumulator output on every accumulation step.
func (f StuckAtFault) Apply(w fixed.Word) fixed.Word {
	return fixed.ForceBit(w, f.Bit, f.Pol == StuckAt1)
}

// String implements fmt.Stringer.
func (f StuckAtFault) String() string {
	return fmt.Sprintf("PE(%d,%d) bit%d %s", f.Row, f.Col, f.Bit, f.Pol)
}

// Map is a fault map for an NxN systolic array: the set of faulty PEs with
// their stuck bits. Multiple faults may target the same PE (multiple stuck
// bits); their bit-forcing composes.
type Map struct {
	Rows, Cols int
	Faults     []StuckAtFault
}

// NewMap returns an empty fault map for a rows x cols array.
func NewMap(rows, cols int) *Map {
	return &Map{Rows: rows, Cols: cols}
}

// Add appends a fault after validating its coordinates and bit.
func (m *Map) Add(f StuckAtFault) error {
	if f.Row < 0 || f.Row >= m.Rows || f.Col < 0 || f.Col >= m.Cols {
		return fmt.Errorf("faults: PE(%d,%d) outside %dx%d array", f.Row, f.Col, m.Rows, m.Cols)
	}
	if f.Bit >= fixed.WordBits {
		return fmt.Errorf("faults: bit %d outside %d-bit word", f.Bit, fixed.WordBits)
	}
	m.Faults = append(m.Faults, f)
	return nil
}

// NumFaultyPEs returns the number of distinct faulty PEs (several stuck
// bits on one PE count once).
func (m *Map) NumFaultyPEs() int {
	seen := make(map[[2]int]struct{}, len(m.Faults))
	for _, f := range m.Faults {
		seen[[2]int{f.Row, f.Col}] = struct{}{}
	}
	return len(seen)
}

// FaultRate returns the fraction of PEs that are faulty.
func (m *Map) FaultRate() float64 {
	total := m.Rows * m.Cols
	if total == 0 {
		return 0
	}
	return float64(m.NumFaultyPEs()) / float64(total)
}

// FaultyPEs returns the sorted distinct (row, col) coordinates of faulty PEs.
func (m *Map) FaultyPEs() [][2]int {
	seen := make(map[[2]int]struct{}, len(m.Faults))
	for _, f := range m.Faults {
		seen[[2]int{f.Row, f.Col}] = struct{}{}
	}
	out := make([][2]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Masks compacts the map into per-PE OR/AND-clear mask pairs for fast
// application inside the systolic inner loop. The returned slices are
// indexed row*Cols+col; orMask bits are forced high, clearMask bits low.
func (m *Map) Masks() (orMask, clearMask []uint32) {
	n := m.Rows * m.Cols
	orMask = make([]uint32, n)
	clearMask = make([]uint32, n)
	for _, f := range m.Faults {
		idx := f.Row*m.Cols + f.Col
		bit := uint32(1) << f.Bit
		if f.Pol == StuckAt1 {
			orMask[idx] |= bit
		} else {
			clearMask[idx] |= bit
		}
	}
	return orMask, clearMask
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	c := NewMap(m.Rows, m.Cols)
	c.Faults = append([]StuckAtFault(nil), m.Faults...)
	return c
}

// String summarises the map.
func (m *Map) String() string {
	return fmt.Sprintf("FaultMap{%dx%d, %d faulty PEs (%.3f%%), %d stuck bits}",
		m.Rows, m.Cols, m.NumFaultyPEs(), 100*m.FaultRate(), len(m.Faults))
}

// GenSpec describes a randomly generated fault map, mirroring the paper's
// experimental knobs: how many PEs are faulty, which bit positions are
// targeted, and the stuck polarity.
type GenSpec struct {
	// NumFaulty is the number of distinct faulty PEs to place.
	NumFaulty int
	// Bit is the stuck bit position used when BitMode is FixedBit.
	Bit uint
	// BitMode selects how the stuck bit of each faulty PE is chosen.
	BitMode BitMode
	// Pol is the stuck polarity used when PolMode is FixedPol.
	Pol Polarity
	// PolMode selects how polarity is chosen.
	PolMode PolMode
}

// BitMode selects the stuck-bit position policy for generated faults.
type BitMode uint8

const (
	// FixedBit uses GenSpec.Bit for every fault.
	FixedBit BitMode = iota
	// RandomBit draws the bit uniformly from [0, 32).
	RandomBit
	// MSBBits draws from the high-order bits [24, 32), the paper's
	// worst-case regime for Fig. 5b/5c.
	MSBBits
)

// PolMode selects the polarity policy for generated faults.
type PolMode uint8

const (
	// FixedPol uses GenSpec.Pol for every fault.
	FixedPol PolMode = iota
	// RandomPol draws sa0/sa1 with equal probability.
	RandomPol
)

// Generate draws a random fault map for a rows x cols array according to
// spec, using rng for reproducibility. Distinct PEs are sampled without
// replacement; it errors if NumFaulty exceeds the array size.
func Generate(rows, cols int, spec GenSpec, rng *rand.Rand) (*Map, error) {
	total := rows * cols
	if spec.NumFaulty < 0 || spec.NumFaulty > total {
		return nil, fmt.Errorf("faults: cannot place %d faults in %dx%d array", spec.NumFaulty, rows, cols)
	}
	m := NewMap(rows, cols)
	// Sample distinct PE indices without replacement (partial Fisher-Yates
	// over a lazily-materialized permutation; fine for the sizes used here).
	perm := rng.Perm(total)[:spec.NumFaulty]
	for _, idx := range perm {
		f := StuckAtFault{Row: idx / cols, Col: idx % cols}
		switch spec.BitMode {
		case RandomBit:
			f.Bit = uint(rng.Intn(fixed.WordBits))
		case MSBBits:
			f.Bit = uint(24 + rng.Intn(8))
		default:
			f.Bit = spec.Bit
		}
		switch spec.PolMode {
		case RandomPol:
			if rng.Intn(2) == 1 {
				f.Pol = StuckAt1
			} else {
				f.Pol = StuckAt0
			}
		default:
			f.Pol = spec.Pol
		}
		if err := m.Add(f); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// GenerateRate places round(rate*rows*cols) faulty PEs; convenience wrapper
// for the paper's "% of faulty PEs" axis.
func GenerateRate(rows, cols int, rate float64, spec GenSpec, rng *rand.Rand) (*Map, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faults: rate %v outside [0,1]", rate)
	}
	spec.NumFaulty = int(rate*float64(rows*cols) + 0.5)
	return Generate(rows, cols, spec, rng)
}
