package faults

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"falvolt/internal/fixed"
)

func uniformRates(rate float64) [fixed.WordBits]float64 {
	var r [fixed.WordBits]float64
	for b := range r {
		r[b] = rate
	}
	return r
}

func TestMemoryFaultsValidate(t *testing.T) {
	m := &MemoryFaults{Seed: 1}
	if err := m.Validate(); err != nil {
		t.Errorf("zero rates rejected: %v", err)
	}
	m.BitRate[5] = 1.5
	if err := m.Validate(); err == nil {
		t.Error("rate > 1 should error")
	}
	m.BitRate[5] = -0.1
	if err := m.Validate(); err == nil {
		t.Error("negative rate should error")
	}
	m.BitRate[5] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN rate should error")
	}
}

func TestFlipMaskRateEdges(t *testing.T) {
	zero := &MemoryFaults{Seed: 17}
	ones := &MemoryFaults{Seed: 17, BitRate: uniformRates(1)}
	for w := 0; w < 200; w++ {
		if got := zero.FlipMask(w); got != 0 {
			t.Fatalf("rate 0: word %d mask %#x, want 0", w, got)
		}
		if got := ones.FlipMask(w); got != ^uint32(0) {
			t.Fatalf("rate 1: word %d mask %#x, want all bits", w, got)
		}
	}
}

// TestFlipWordInvolution: flips are XOR, so reading the same word twice
// through the same instance undoes the corruption — and never depends on
// any other word having been read.
func TestFlipWordInvolution(t *testing.T) {
	m := &MemoryFaults{Seed: 5, BitRate: uniformRates(0.3)}
	err := quick.Check(func(word int32, v fixed.Word) bool {
		w := int(word & 0xFFFF)
		once := m.FlipWord(w, v)
		mask := m.FlipMask(w)
		return fixed.Word(uint32(once)^mask) == v
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestFlipMaskCounterBased: the flip decision for a (word, bit) cell is
// a pure function of (Seed, word, bit) — identical however many other
// cells are queried, in whatever order. This is the property the
// shard-split reproducibility of bitflip campaigns rests on.
func TestFlipMaskCounterBased(t *testing.T) {
	a := &MemoryFaults{Seed: 23, BitRate: uniformRates(0.2)}
	b := &MemoryFaults{Seed: 23, BitRate: uniformRates(0.2)}
	// Query a forward, b backward and twice; masks must agree per word.
	const n = 500
	fwd := make([]uint32, n)
	for w := 0; w < n; w++ {
		fwd[w] = a.FlipMask(w)
	}
	for w := n - 1; w >= 0; w-- {
		if got := b.FlipMask(w); got != fwd[w] {
			t.Fatalf("word %d: reverse-order mask %#x, forward %#x", w, got, fwd[w])
		}
		if got := b.FlipMask(w); got != fwd[w] {
			t.Fatalf("word %d: repeat mask %#x, forward %#x", w, got, fwd[w])
		}
	}
	// Different seeds must realize different instances.
	c := &MemoryFaults{Seed: 24, BitRate: uniformRates(0.2)}
	same := true
	for w := 0; w < n; w++ {
		if c.FlipMask(w) != fwd[w] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 23 and 24 realized identical flip instances")
	}
}

// TestCountFlipsTracksRate: realized flip density over many words should
// sit near the configured rate (law of large numbers; the hash is only
// useful if it is roughly uniform).
func TestCountFlipsTracksRate(t *testing.T) {
	const rate, words = 0.1, 4000
	m := &MemoryFaults{Seed: 101, BitRate: uniformRates(rate)}
	got := float64(m.CountFlips(words)) / float64(words*fixed.WordBits)
	if math.Abs(got-rate) > 0.01 {
		t.Errorf("realized flip density %.4f, configured rate %.4f", got, rate)
	}
}

func TestBitRatesProfiles(t *testing.T) {
	const rate = 0.25
	uni, err := BitRates(ProfileUniform, rate)
	if err != nil {
		t.Fatal(err)
	}
	for b, r := range uni {
		if r != rate {
			t.Fatalf("uniform bit %d rate %v, want %v", b, r, rate)
		}
	}
	msb, err := BitRates(ProfileMSB, rate)
	if err != nil {
		t.Fatal(err)
	}
	for b, r := range msb {
		want := 0.0
		if b >= 24 {
			want = rate
		}
		if r != want {
			t.Fatalf("msb bit %d rate %v, want %v", b, r, want)
		}
	}
	decay, err := BitRates(ProfileDecay, rate)
	if err != nil {
		t.Fatal(err)
	}
	if decay[0] != rate {
		t.Errorf("decay LSB rate %v, want full rate %v", decay[0], rate)
	}
	for b := 1; b < fixed.WordBits; b++ {
		if decay[b] >= decay[b-1] {
			t.Fatalf("decay profile not strictly decreasing at bit %d: %v >= %v", b, decay[b], decay[b-1])
		}
	}
	if _, err := BitRates(ProfileUniform, 1.2); err == nil {
		t.Error("rate > 1 should error")
	}
	if _, err := BitRates(ProfileUniform, math.NaN()); err == nil {
		t.Error("NaN rate should error")
	}
}

func TestParseBitProfile(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want BitProfile
	}{
		{"", ProfileDecay}, {"decay", ProfileDecay},
		{"uniform", ProfileUniform}, {"msb", ProfileMSB},
	} {
		got, err := ParseBitProfile(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBitProfile(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("profile %v String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseBitProfile("gaussian"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestMemoryFaultsCloneIndependence(t *testing.T) {
	m := &MemoryFaults{Seed: 1, BitRate: uniformRates(0.5)}
	c := m.Clone()
	c.Seed = 2
	c.BitRate[0] = 0
	if m.Seed != 1 || m.BitRate[0] != 0.5 {
		t.Error("Clone shares state with the original")
	}
}

// TestHashUnitUniform: coarse uniformity check of the (seed, word, bit)
// hash — decile occupancy over many draws should be flat within a few
// percent, and draws must stay in [0, 1).
func TestHashUnitUniform(t *testing.T) {
	var buckets [10]int
	const n = 20000
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		u := hashUnit(rng.Int63(), rng.Intn(1<<20), uint(rng.Intn(32)))
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit outside [0,1): %v", u)
		}
		buckets[int(u*10)]++
	}
	for d, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.02 {
			t.Errorf("decile %d occupancy %.3f, want ~0.1", d, frac)
		}
	}
}
