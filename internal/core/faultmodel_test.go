package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
	"falvolt/internal/tensor"
)

func faultModelTestSpec(kind string) spec.FaultModelCampaignSpec {
	return spec.FaultModelCampaignSpec{
		Model:     spec.FaultModelSpec{Kind: kind},
		Array:     8,
		Rates:     []float64{0.05, 0.2},
		Repeats:   2,
		Batch:     2,
		Timesteps: 2,
		Density:   0.3,
	}
}

func TestFaultModelTrialsDeterministic(t *testing.T) {
	cfg := faultModelTestSpec("bitflip").Defaulted()
	a := FaultModelTrials(cfg, 42)
	b := FaultModelTrials(cfg, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trial enumeration is not deterministic")
	}
	if len(a) != len(cfg.Rates)*cfg.Repeats {
		t.Fatalf("got %d trials, want %d", len(a), len(cfg.Rates)*cfg.Repeats)
	}
	seen := make(map[int64]bool)
	for i, tr := range a {
		if tr.ID != i {
			t.Fatalf("trial %d has ID %d — IDs must be dense", i, tr.ID)
		}
		if seen[tr.Seed] {
			t.Fatalf("trial %d reuses seed %d", i, tr.Seed)
		}
		seen[tr.Seed] = true
	}
}

// TestFaultModelCampaignShardMergeBitIdentical: for every registered
// fault model, a campaign split into 2 shards (separately checkpointed)
// and merged produces byte-identical results — and an identical JSON
// report — to the single-process run. This is the property the cluster
// relies on to farm (model × rate × seed) grids across workers.
func TestFaultModelCampaignShardMergeBitIdentical(t *testing.T) {
	for _, kind := range []string{"stuckat", "bitflip", "transient"} {
		t.Run(kind, func(t *testing.T) {
			cfg := faultModelTestSpec(kind)
			dir := t.TempDir()

			whole, err := FaultModelCampaign(cfg, 42)
			if err != nil {
				t.Fatal(err)
			}
			rrWhole, err := campaign.Run(whole, campaign.Options{
				Runner: campaign.PoolRunner{Engine: tensor.Serial()},
			})
			if err != nil {
				t.Fatal(err)
			}
			want, err := campaign.MarshalResults(rrWhole.Results)
			if err != nil {
				t.Fatal(err)
			}
			wantRep, err := faultModelJSON(cfg.Defaulted(), rrWhole.Results)
			if err != nil {
				t.Fatal(err)
			}

			var paths []string
			for i := 0; i < 2; i++ {
				c, err := FaultModelCampaign(cfg, 42)
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join(dir, fmt.Sprintf("fm-shard%d.jsonl", i))
				rr, err := campaign.Run(c, campaign.Options{
					Shard:      campaign.Shard{Index: i, Count: 2},
					Checkpoint: path,
					Runner:     campaign.PoolRunner{Engine: tensor.NewParallel(2)},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !rr.Complete {
					t.Fatalf("shard %d incomplete", i)
				}
				paths = append(paths, path)
			}
			_, merged, err := campaign.MergeFiles(paths...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := campaign.MarshalResults(merged)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("sharded+merged results differ from single-process run:\n--- merged ---\n%s\n--- single ---\n%s", got, want)
			}
			gotRep, err := faultModelJSON(cfg.Defaulted(), merged)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("merged report %+v != single-process report %+v", gotRep, wantRep)
			}
		})
	}
}

// TestFaultModelCampaignCorruptsAtHighRate: sanity on the metric — a
// clean model run reports zero corruption, and a saturating bit-flip
// rate corrupts a nonzero output fraction. Guards against a campaign
// that silently compares a faulty array to itself.
func TestFaultModelCampaignCorruptsAtHighRate(t *testing.T) {
	cfg := faultModelTestSpec("bitflip")
	cfg.Rates = []float64{0, 0.5}
	cam, err := FaultModelCampaign(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := campaign.Run(cam, campaign.Options{
		Runner: campaign.PoolRunner{Engine: tensor.Serial()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := faultModelJSON(cfg.Defaulted(), rr.Results)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points[0].Corrupt != 0 {
		t.Errorf("rate 0 corrupted %.4f of outputs, want 0", rep.Points[0].Corrupt)
	}
	if rep.Points[1].Corrupt == 0 {
		t.Error("rate 0.5 bit-flips corrupted nothing — faulty path not exercised")
	}
}

func TestFaultModelCampaignRejectsBadSpec(t *testing.T) {
	bad := []spec.FaultModelCampaignSpec{
		{Model: spec.FaultModelSpec{Kind: "cosmic"}, Rates: []float64{0.1}},
		{Model: spec.FaultModelSpec{Kind: "bitflip"}, Rates: []float64{1.5}},
		{Model: spec.FaultModelSpec{Kind: "bitflip"}, Rates: []float64{0.1}, Array: 1},
	}
	for i, cfg := range bad {
		if _, err := FaultModelCampaign(cfg, 1); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
