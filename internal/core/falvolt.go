// Package core implements the paper's contribution: FalVolt, fault-aware
// retraining with per-layer threshold-voltage optimization for
// systolic-array SNN accelerators, together with the two baselines it is
// compared against:
//
//   - FaP    — fault-aware pruning: zero the weights mapped onto faulty
//     PEs and bypass those PEs; no retraining (Algorithm 1 with
//     trEpochs = 0).
//   - FaPIT  — fault-aware pruning plus retraining of the surviving
//     weights with the threshold voltage frozen (conventionally
//     at 1.0).
//   - FalVolt — fault-aware pruning plus retraining in which every spiking
//     layer's threshold voltage is optimized by backpropagation
//     alongside the weights (Algorithm 1).
//
// The pipeline follows the paper's tool flow (Fig. 4): derive the pruned
// weight indices from the chip's fault map, zero them, retrain (re-zeroing
// at the end of every epoch, Algorithm 1 line 13), then evaluate on the
// faulty array with bypass enabled.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"falvolt/internal/faults"
	"falvolt/internal/mapping"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// Method selects the mitigation strategy.
type Method int

const (
	// FaP is fault-aware pruning only.
	FaP Method = iota
	// FaPIT is fault-aware pruning with retraining, fixed threshold.
	FaPIT
	// FalVolt is fault-aware pruning with retraining and per-layer
	// threshold-voltage optimization.
	FalVolt
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case FaP:
		return "FaP"
	case FaPIT:
		return "FaPIT"
	case FalVolt:
		return "FalVolt"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config controls a mitigation run.
type Config struct {
	Method Method
	// Epochs is the retraining budget (ignored for FaP).
	Epochs int
	// BatchSize and LR configure the retraining loop.
	BatchSize int
	LR        float64
	// FixedVth, when non-zero, forces every spiking layer to this
	// threshold before retraining — the Fig. 2 fixed-threshold sweeps.
	// FaPIT conventionally uses 1.0 (the training default).
	FixedVth float64
	// ClipNorm caps the global gradient norm during retraining.
	ClipNorm float64
	// Rng drives batch shuffling. When nil, a generator seeded with Seed
	// is constructed, so runs are reproducible from the config alone —
	// never from the wall clock.
	Rng *rand.Rand
	// Seed seeds the default Rng (0 selects seed 1). Ignored when Rng is
	// supplied.
	Seed int64
	// Engine is the compute backend retraining and evaluation run on
	// (nil selects tensor.Default()). Mitigate installs it on the model's
	// network (part of the "model is modified in place" contract) and it
	// remains in effect afterwards; call Network.SetEngine to change it.
	// Results are bit-identical on every engine; only wall-clock changes.
	Engine tensor.Backend
	// TrackCurve records float-path test accuracy after every retraining
	// epoch (the Fig. 8 convergence curves). Costs one evaluation/epoch.
	TrackCurve bool
	// CurveEvalSize limits how many test samples the per-epoch curve uses
	// (0 = all).
	CurveEvalSize int
	// Silent suppresses progress output.
	Silent bool
}

// EpochPoint is one point of a retraining convergence curve.
type EpochPoint struct {
	Epoch    int
	Loss     float64
	Accuracy float64
}

// Report summarises a mitigation run.
type Report struct {
	Method    Method
	FaultRate float64
	// PrunedFraction is the overall fraction of weights pruned across all
	// GEMM layers (array reuse can make this exceed the PE fault rate).
	PrunedFraction float64
	// PrunedPerLayer gives the pruned fraction of each GEMM layer.
	PrunedPerLayer []float64
	// Accuracy is the final test accuracy on the faulty array with bypass
	// enabled and the retrained weights deployed.
	Accuracy float64
	// Vths is the per-spiking-layer threshold voltage after mitigation
	// (the Fig. 6 quantities).
	Vths []float64
	// Curve is the per-epoch convergence trace when TrackCurve is set.
	Curve []EpochPoint
	// RetrainDuration is the wall-clock time spent retraining.
	RetrainDuration time.Duration
}

// EpochsToReachTarget returns the first epoch at which a convergence curve
// reaches the target accuracy, or -1 if it never does — the quantity
// behind the paper's "FalVolt is 2x faster than FaPIT" claim (Fig. 8).
func EpochsToReachTarget(curve []EpochPoint, target float64) int {
	for _, p := range curve {
		if p.Accuracy >= target {
			return p.Epoch
		}
	}
	return -1
}

// Mitigate runs Algorithm 1 on model against the fault map, retraining on
// train and reporting accuracy on test. The model is modified in place
// (snapshot with Network.State first if the original is still needed).
// The array must have the same dimensions as the fault map; it is left
// fault-injected with bypass enabled and the network deployed onto it.
func Mitigate(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	train, test []snn.Sample, cfg Config) (*Report, error) {
	net := model.Net
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.Rng == nil {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		cfg.Rng = rand.New(rand.NewSource(seed))
	}
	eng := cfg.Engine
	if eng == nil {
		eng = tensor.Default()
	}
	net.SetEngine(eng)

	// Lines 1–2: derive pruned-weight indices from the fault map and zero
	// them. One mask per GEMM layer.
	gemms := net.GEMMLayers()
	masks := make([]*mapping.PruneMask, len(gemms))
	report := &Report{Method: cfg.Method, FaultRate: fm.FaultRate()}
	totalW, totalP := 0, 0
	for i, g := range gemms {
		m, k := g.GEMMShape()
		mask, err := mapping.Derive(fm, m, k)
		if err != nil {
			return nil, fmt.Errorf("core: mask for layer %d: %w", i, err)
		}
		masks[i] = mask
		mask.Apply(g.WeightMatrix())
		report.PrunedPerLayer = append(report.PrunedPerLayer, mask.Fraction())
		totalW += m * k
		totalP += mask.Count()
	}
	if totalW > 0 {
		report.PrunedFraction = float64(totalP) / float64(totalW)
	}
	applyMasks := func() {
		for i, g := range gemms {
			masks[i].Apply(g.WeightMatrix())
		}
	}

	// Line 3: threshold-voltage initialization. FalVolt learns V per
	// layer; the others freeze it (optionally at a swept fixed value).
	net.SetLearnVth(cfg.Method == FalVolt)
	if cfg.FixedVth > 0 {
		net.SetVths(cfg.FixedVth)
	}

	// Lines 4–14: retraining with epoch-end re-pruning.
	epochs := cfg.Epochs
	if cfg.Method == FaP {
		epochs = 0
	}
	if epochs > 0 {
		curveTest := test
		if cfg.TrackCurve && cfg.CurveEvalSize > 0 && cfg.CurveEvalSize < len(test) {
			curveTest = test[:cfg.CurveEvalSize]
		}
		start := time.Now()
		_, err := snn.Train(net, train, snn.TrainConfig{
			Epochs:    epochs,
			BatchSize: cfg.BatchSize,
			LR:        cfg.LR,
			Classes:   model.Spec.Classes,
			ClipNorm:  cfg.ClipNorm,
			Rng:       cfg.Rng,
			Silent:    true,
			Engine:    eng,
			AfterEpoch: func(epoch int, loss float64) {
				// Algorithm 1 line 13: re-zero pruned weights.
				applyMasks()
				if cfg.TrackCurve {
					acc := snn.EvaluateWith(eng, net, curveTest, cfg.BatchSize)
					report.Curve = append(report.Curve, EpochPoint{Epoch: epoch, Loss: loss, Accuracy: acc})
				}
				if !cfg.Silent {
					fmt.Printf("  [%s] epoch %2d loss %.4f\n", cfg.Method, epoch, loss)
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("core: retraining: %w", err)
		}
		report.RetrainDuration = time.Since(start)
	}
	applyMasks()

	// Line 15: inference accuracy on the faulty hardware, bypass enabled.
	if err := arr.InjectFaults(fm); err != nil {
		return nil, fmt.Errorf("core: inject faults: %w", err)
	}
	arr.SetBypass(true)
	restoreArr := installEngine(arr, cfg.Engine)
	defer restoreArr()
	net.Deploy(arr)
	net.Redeploy() // quantize the retrained weights
	report.Accuracy = snn.EvaluateWith(eng, net, test, cfg.BatchSize)
	report.Vths = net.Vths()
	return report, nil
}

// EvalOptions configures a faulty-array evaluation.
type EvalOptions struct {
	// Bypass selects whether faulty PEs are bypassed (pruned
	// contribution, no corruption) or left corrupting.
	Bypass bool
	// BatchSize is the evaluation batch size (0 selects 32).
	BatchSize int
	// Engine is the compute backend for the evaluation. When nil, the
	// network's and array's own engines apply (tensor.Default() if those
	// are unset too). When non-nil it is installed on both for the
	// duration and restored afterwards.
	Engine tensor.Backend
}

// EvaluateFaulty measures test accuracy of an unmitigated model deployed
// on an array with the given fault map — the vulnerability analysis path
// (Fig. 5 family). The model's float weights are not modified; the
// deployment is removed before returning.
func EvaluateFaulty(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, bypass bool, batchSize int) (float64, error) {
	return EvaluateFaultyOpts(model, arr, fm, test, EvalOptions{Bypass: bypass, BatchSize: batchSize})
}

// EvaluateFaultyOpts is EvaluateFaulty with the full option set. A
// non-nil Engine is installed on the network and the array for the
// duration of the evaluation (previous engines restored), so every
// layer of the deployed compute runs on it.
func EvaluateFaultyOpts(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, opt EvalOptions) (float64, error) {
	if err := arr.InjectFaults(fm); err != nil {
		return 0, fmt.Errorf("core: inject faults: %w", err)
	}
	arr.SetBypass(opt.Bypass)
	restore := installEngine(arr, opt.Engine)
	defer restore()
	model.Net.Deploy(arr)
	acc := snn.EvaluateWith(opt.Engine, model.Net, test, opt.BatchSize)
	model.Net.Undeploy()
	return acc, nil
}

// installEngine routes the array through eng (when non-nil), returning a
// restore function.
func installEngine(arr *systolic.Array, eng tensor.Backend) func() {
	if eng == nil {
		return func() {}
	}
	prev := arr.Config().Engine
	arr.SetEngine(eng)
	return func() { arr.SetEngine(prev) }
}

// EvaluateWeightFaulty is EvaluateFaulty for stuck bits in the PE weight
// registers instead of the accumulator outputs (an extension to the
// paper's accumulator-output fault model; both registers exist in the
// Fig. 3a datapath). Weight-register faults only corrupt when a spike
// gates the faulty weight in, so at equal counts they are milder than
// accumulator faults — the Ablation-FaultSite experiment quantifies this.
func EvaluateWeightFaulty(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, bypass bool, batchSize int) (float64, error) {
	return EvaluateWeightFaultyOpts(model, arr, fm, test, EvalOptions{Bypass: bypass, BatchSize: batchSize})
}

// EvaluateWeightFaultyOpts is EvaluateWeightFaulty with the full option
// set.
func EvaluateWeightFaultyOpts(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, opt EvalOptions) (float64, error) {
	arr.ClearFaults()
	if err := arr.InjectWeightFaults(fm); err != nil {
		return 0, fmt.Errorf("core: inject weight faults: %w", err)
	}
	arr.SetBypass(opt.Bypass)
	restore := installEngine(arr, opt.Engine)
	defer restore()
	model.Net.Deploy(arr)
	acc := snn.EvaluateWith(opt.Engine, model.Net, test, opt.BatchSize)
	model.Net.Undeploy()
	arr.ClearFaults()
	return acc, nil
}

// EvaluateModelFaulty measures deployed test accuracy under an
// arbitrary pluggable fault model at one (rate, seed) cell — the
// model-agnostic generalization of EvaluateFaulty. Any previous fault
// state is cleared first, and all fault state is cleared on return, so
// one array can sweep many (model × rate × seed) cells.
func EvaluateModelFaulty(model *snn.Model, arr *systolic.Array, fm faults.FaultModel,
	rate float64, seed int64, test []snn.Sample, opt EvalOptions) (float64, error) {
	arr.ClearFaults()
	if err := fm.Inject(arr, rate, seed); err != nil {
		return 0, fmt.Errorf("core: inject %s faults: %w", fm.Name(), err)
	}
	arr.SetBypass(opt.Bypass)
	restore := installEngine(arr, opt.Engine)
	defer restore()
	model.Net.Deploy(arr)
	acc := snn.EvaluateWith(opt.Engine, model.Net, test, opt.BatchSize)
	model.Net.Undeploy()
	arr.ClearFaults()
	return acc, nil
}

// TrainBaseline trains a freshly built model to its fault-free baseline
// (the paper's initial-training stage) and returns test accuracy. It
// runs on the process-default engine; use snn.Train directly for an
// explicit engine.
func TrainBaseline(model *snn.Model, train, test []snn.Sample,
	epochs int, lr float64, rng *rand.Rand, silent bool) (float64, error) {
	_, err := snn.Train(model.Net, train, snn.TrainConfig{
		Epochs:    epochs,
		BatchSize: 16,
		LR:        lr,
		Classes:   model.Spec.Classes,
		ClipNorm:  5,
		Rng:       rng,
		Silent:    silent,
	})
	if err != nil {
		return 0, fmt.Errorf("core: baseline training: %w", err)
	}
	return snn.Evaluate(model.Net, test, 32), nil
}
